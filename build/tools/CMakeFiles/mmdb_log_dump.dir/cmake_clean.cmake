file(REMOVE_RECURSE
  "CMakeFiles/mmdb_log_dump.dir/mmdb_log_dump.cc.o"
  "CMakeFiles/mmdb_log_dump.dir/mmdb_log_dump.cc.o.d"
  "mmdb_log_dump"
  "mmdb_log_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_log_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
