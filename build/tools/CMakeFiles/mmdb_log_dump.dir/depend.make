# Empty dependencies file for mmdb_log_dump.
# This may be replaced when dependencies are built.
