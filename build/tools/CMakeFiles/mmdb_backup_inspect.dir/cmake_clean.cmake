file(REMOVE_RECURSE
  "CMakeFiles/mmdb_backup_inspect.dir/mmdb_backup_inspect.cc.o"
  "CMakeFiles/mmdb_backup_inspect.dir/mmdb_backup_inspect.cc.o.d"
  "mmdb_backup_inspect"
  "mmdb_backup_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_backup_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
