# Empty dependencies file for mmdb_backup_inspect.
# This may be replaced when dependencies are built.
