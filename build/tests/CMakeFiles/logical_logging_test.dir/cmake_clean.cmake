file(REMOVE_RECURSE
  "CMakeFiles/logical_logging_test.dir/logical_logging_test.cc.o"
  "CMakeFiles/logical_logging_test.dir/logical_logging_test.cc.o.d"
  "logical_logging_test"
  "logical_logging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
