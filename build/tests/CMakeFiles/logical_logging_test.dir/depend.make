# Empty dependencies file for logical_logging_test.
# This may be replaced when dependencies are built.
