file(REMOVE_RECURSE
  "CMakeFiles/cou_test.dir/cou_test.cc.o"
  "CMakeFiles/cou_test.dir/cou_test.cc.o.d"
  "cou_test"
  "cou_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cou_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
