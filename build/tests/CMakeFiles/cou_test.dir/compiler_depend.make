# Empty compiler generated dependencies file for cou_test.
# This may be replaced when dependencies are built.
