# Empty compiler generated dependencies file for two_color_test.
# This may be replaced when dependencies are built.
