file(REMOVE_RECURSE
  "CMakeFiles/two_color_test.dir/two_color_test.cc.o"
  "CMakeFiles/two_color_test.dir/two_color_test.cc.o.d"
  "two_color_test"
  "two_color_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_color_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
