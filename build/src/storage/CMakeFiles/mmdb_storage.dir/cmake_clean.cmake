file(REMOVE_RECURSE
  "CMakeFiles/mmdb_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/mmdb_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/database.cc.o"
  "CMakeFiles/mmdb_storage.dir/database.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/segment_table.cc.o"
  "CMakeFiles/mmdb_storage.dir/segment_table.cc.o.d"
  "libmmdb_storage.a"
  "libmmdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
