file(REMOVE_RECURSE
  "CMakeFiles/mmdb_tools.dir/inspect.cc.o"
  "CMakeFiles/mmdb_tools.dir/inspect.cc.o.d"
  "libmmdb_tools.a"
  "libmmdb_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
