file(REMOVE_RECURSE
  "libmmdb_tools.a"
)
