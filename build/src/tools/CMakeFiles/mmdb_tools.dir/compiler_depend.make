# Empty compiler generated dependencies file for mmdb_tools.
# This may be replaced when dependencies are built.
