file(REMOVE_RECURSE
  "CMakeFiles/mmdb_txn.dir/lock_manager.cc.o"
  "CMakeFiles/mmdb_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/mmdb_txn.dir/txn_manager.cc.o"
  "CMakeFiles/mmdb_txn.dir/txn_manager.cc.o.d"
  "libmmdb_txn.a"
  "libmmdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
