file(REMOVE_RECURSE
  "libmmdb_checkpoint.a"
)
