# Empty compiler generated dependencies file for mmdb_checkpoint.
# This may be replaced when dependencies are built.
