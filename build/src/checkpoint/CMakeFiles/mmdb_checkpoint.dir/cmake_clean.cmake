file(REMOVE_RECURSE
  "CMakeFiles/mmdb_checkpoint.dir/checkpointer.cc.o"
  "CMakeFiles/mmdb_checkpoint.dir/checkpointer.cc.o.d"
  "CMakeFiles/mmdb_checkpoint.dir/cou.cc.o"
  "CMakeFiles/mmdb_checkpoint.dir/cou.cc.o.d"
  "CMakeFiles/mmdb_checkpoint.dir/fuzzy.cc.o"
  "CMakeFiles/mmdb_checkpoint.dir/fuzzy.cc.o.d"
  "CMakeFiles/mmdb_checkpoint.dir/two_color.cc.o"
  "CMakeFiles/mmdb_checkpoint.dir/two_color.cc.o.d"
  "libmmdb_checkpoint.a"
  "libmmdb_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
