file(REMOVE_RECURSE
  "CMakeFiles/mmdb_sim.dir/cost_model.cc.o"
  "CMakeFiles/mmdb_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/mmdb_sim.dir/cpu_meter.cc.o"
  "CMakeFiles/mmdb_sim.dir/cpu_meter.cc.o.d"
  "CMakeFiles/mmdb_sim.dir/disk_model.cc.o"
  "CMakeFiles/mmdb_sim.dir/disk_model.cc.o.d"
  "libmmdb_sim.a"
  "libmmdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
