file(REMOVE_RECURSE
  "CMakeFiles/mmdb_core.dir/engine.cc.o"
  "CMakeFiles/mmdb_core.dir/engine.cc.o.d"
  "CMakeFiles/mmdb_core.dir/workload.cc.o"
  "CMakeFiles/mmdb_core.dir/workload.cc.o.d"
  "libmmdb_core.a"
  "libmmdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
