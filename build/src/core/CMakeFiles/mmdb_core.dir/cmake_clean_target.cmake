file(REMOVE_RECURSE
  "libmmdb_core.a"
)
