# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("env")
subdirs("sim")
subdirs("storage")
subdirs("wal")
subdirs("backup")
subdirs("txn")
subdirs("checkpoint")
subdirs("recovery")
subdirs("core")
subdirs("model")
subdirs("tools")
