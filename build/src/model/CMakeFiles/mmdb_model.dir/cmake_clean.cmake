file(REMOVE_RECURSE
  "CMakeFiles/mmdb_model.dir/analytic_model.cc.o"
  "CMakeFiles/mmdb_model.dir/analytic_model.cc.o.d"
  "libmmdb_model.a"
  "libmmdb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
