# Empty dependencies file for mmdb_model.
# This may be replaced when dependencies are built.
