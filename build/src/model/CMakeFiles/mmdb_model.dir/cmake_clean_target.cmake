file(REMOVE_RECURSE
  "libmmdb_model.a"
)
