file(REMOVE_RECURSE
  "libmmdb_backup.a"
)
