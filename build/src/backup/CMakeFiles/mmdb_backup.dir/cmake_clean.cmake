file(REMOVE_RECURSE
  "CMakeFiles/mmdb_backup.dir/backup_store.cc.o"
  "CMakeFiles/mmdb_backup.dir/backup_store.cc.o.d"
  "libmmdb_backup.a"
  "libmmdb_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
