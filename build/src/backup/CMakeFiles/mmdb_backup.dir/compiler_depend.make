# Empty compiler generated dependencies file for mmdb_backup.
# This may be replaced when dependencies are built.
