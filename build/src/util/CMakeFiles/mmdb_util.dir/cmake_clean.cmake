file(REMOVE_RECURSE
  "CMakeFiles/mmdb_util.dir/coding.cc.o"
  "CMakeFiles/mmdb_util.dir/coding.cc.o.d"
  "CMakeFiles/mmdb_util.dir/crc32c.cc.o"
  "CMakeFiles/mmdb_util.dir/crc32c.cc.o.d"
  "CMakeFiles/mmdb_util.dir/histogram.cc.o"
  "CMakeFiles/mmdb_util.dir/histogram.cc.o.d"
  "CMakeFiles/mmdb_util.dir/status.cc.o"
  "CMakeFiles/mmdb_util.dir/status.cc.o.d"
  "CMakeFiles/mmdb_util.dir/string_util.cc.o"
  "CMakeFiles/mmdb_util.dir/string_util.cc.o.d"
  "libmmdb_util.a"
  "libmmdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
