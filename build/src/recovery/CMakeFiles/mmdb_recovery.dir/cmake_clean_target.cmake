file(REMOVE_RECURSE
  "libmmdb_recovery.a"
)
