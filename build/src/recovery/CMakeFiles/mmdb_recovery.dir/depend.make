# Empty dependencies file for mmdb_recovery.
# This may be replaced when dependencies are built.
