file(REMOVE_RECURSE
  "CMakeFiles/mmdb_recovery.dir/recovery_manager.cc.o"
  "CMakeFiles/mmdb_recovery.dir/recovery_manager.cc.o.d"
  "libmmdb_recovery.a"
  "libmmdb_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
