file(REMOVE_RECURSE
  "CMakeFiles/mmdb_wal.dir/log_manager.cc.o"
  "CMakeFiles/mmdb_wal.dir/log_manager.cc.o.d"
  "CMakeFiles/mmdb_wal.dir/log_reader.cc.o"
  "CMakeFiles/mmdb_wal.dir/log_reader.cc.o.d"
  "CMakeFiles/mmdb_wal.dir/log_record.cc.o"
  "CMakeFiles/mmdb_wal.dir/log_record.cc.o.d"
  "libmmdb_wal.a"
  "libmmdb_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
