file(REMOVE_RECURSE
  "libmmdb_wal.a"
)
