# Empty dependencies file for mmdb_wal.
# This may be replaced when dependencies are built.
