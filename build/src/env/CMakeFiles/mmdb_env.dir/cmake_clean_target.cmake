file(REMOVE_RECURSE
  "libmmdb_env.a"
)
