# Empty compiler generated dependencies file for mmdb_env.
# This may be replaced when dependencies are built.
