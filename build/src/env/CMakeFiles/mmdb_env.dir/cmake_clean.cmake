file(REMOVE_RECURSE
  "CMakeFiles/mmdb_env.dir/env.cc.o"
  "CMakeFiles/mmdb_env.dir/env.cc.o.d"
  "CMakeFiles/mmdb_env.dir/mem_env.cc.o"
  "CMakeFiles/mmdb_env.dir/mem_env.cc.o.d"
  "CMakeFiles/mmdb_env.dir/posix_env.cc.o"
  "CMakeFiles/mmdb_env.dir/posix_env.cc.o.d"
  "libmmdb_env.a"
  "libmmdb_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
