# Empty compiler generated dependencies file for telecom_billing.
# This may be replaced when dependencies are built.
