file(REMOVE_RECURSE
  "CMakeFiles/telecom_billing.dir/telecom_billing.cpp.o"
  "CMakeFiles/telecom_billing.dir/telecom_billing.cpp.o.d"
  "telecom_billing"
  "telecom_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telecom_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
