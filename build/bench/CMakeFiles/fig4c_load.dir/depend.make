# Empty dependencies file for fig4c_load.
# This may be replaced when dependencies are built.
