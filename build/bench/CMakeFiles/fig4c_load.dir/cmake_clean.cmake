file(REMOVE_RECURSE
  "CMakeFiles/fig4c_load.dir/fig4c_load.cc.o"
  "CMakeFiles/fig4c_load.dir/fig4c_load.cc.o.d"
  "fig4c_load"
  "fig4c_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
