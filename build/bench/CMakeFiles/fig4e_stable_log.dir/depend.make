# Empty dependencies file for fig4e_stable_log.
# This may be replaced when dependencies are built.
