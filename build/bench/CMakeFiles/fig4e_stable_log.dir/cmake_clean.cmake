file(REMOVE_RECURSE
  "CMakeFiles/fig4e_stable_log.dir/fig4e_stable_log.cc.o"
  "CMakeFiles/fig4e_stable_log.dir/fig4e_stable_log.cc.o.d"
  "fig4e_stable_log"
  "fig4e_stable_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4e_stable_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
