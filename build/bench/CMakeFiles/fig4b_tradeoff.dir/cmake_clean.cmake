file(REMOVE_RECURSE
  "CMakeFiles/fig4b_tradeoff.dir/fig4b_tradeoff.cc.o"
  "CMakeFiles/fig4b_tradeoff.dir/fig4b_tradeoff.cc.o.d"
  "fig4b_tradeoff"
  "fig4b_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
