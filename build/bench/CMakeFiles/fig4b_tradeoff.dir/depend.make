# Empty dependencies file for fig4b_tradeoff.
# This may be replaced when dependencies are built.
