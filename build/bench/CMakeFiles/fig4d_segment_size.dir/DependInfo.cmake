
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4d_segment_size.cc" "bench/CMakeFiles/fig4d_segment_size.dir/fig4d_segment_size.cc.o" "gcc" "bench/CMakeFiles/fig4d_segment_size.dir/fig4d_segment_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mmdb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/mmdb_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/mmdb_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/mmdb_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/mmdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/mmdb_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/mmdb_env.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mmdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mmdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
