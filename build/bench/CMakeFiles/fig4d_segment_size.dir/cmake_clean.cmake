file(REMOVE_RECURSE
  "CMakeFiles/fig4d_segment_size.dir/fig4d_segment_size.cc.o"
  "CMakeFiles/fig4d_segment_size.dir/fig4d_segment_size.cc.o.d"
  "fig4d_segment_size"
  "fig4d_segment_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4d_segment_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
