# Empty compiler generated dependencies file for fig4d_segment_size.
# This may be replaced when dependencies are built.
