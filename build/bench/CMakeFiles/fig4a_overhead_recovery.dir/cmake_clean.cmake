file(REMOVE_RECURSE
  "CMakeFiles/fig4a_overhead_recovery.dir/fig4a_overhead_recovery.cc.o"
  "CMakeFiles/fig4a_overhead_recovery.dir/fig4a_overhead_recovery.cc.o.d"
  "fig4a_overhead_recovery"
  "fig4a_overhead_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_overhead_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
