# Empty compiler generated dependencies file for fig4a_overhead_recovery.
# This may be replaced when dependencies are built.
