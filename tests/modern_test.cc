// Modern consistent-snapshot algorithm specifics (DESIGN.md section 15):
// the Zigzag / Ping-Pong / Hourglass backup must equal the database as it
// stood at Begin, without quiescing or aborting anybody; the shadow
// emulation's preservation counters and buffer lifecycle; degrade under
// buffer exhaustion; the partial-mode abort-and-retry path; and the
// Abort() trace-timestamp regression.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint/modern.h"
#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

constexpr Algorithm kModernAlgorithms[] = {
    Algorithm::kZigzag, Algorithm::kPingPong, Algorithm::kHourglass};

class ModernTest : public testing::TestWithParam<Algorithm> {
 protected:
  void Open(CheckpointMode mode = CheckpointMode::kFull,
            uint32_t max_buffers = 0) {
    EngineOptions opt = TinyOptions();
    opt.algorithm = GetParam();
    opt.checkpoint_mode = mode;
    opt.max_snapshot_buffers = max_buffers;
    env_ = NewMemEnv();
    auto engine = Engine::Open(opt, env_.get());
    MMDB_ASSERT_OK(engine);
    engine_ = std::move(*engine);
  }

  std::string Image(RecordId r, uint64_t m) {
    return MakeRecordImage(engine_->db().record_bytes(), r, m);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
};

// The headline property, same exercise as CouTest: updates racing the
// sweep must not leak into the backup — it equals the Begin-time image
// byte for byte.
TEST_P(ModernTest, SnapshotIsStateAtCheckpointBegin) {
  Open();
  const uint32_t rps = engine_->params().db.records_per_segment();
  for (SegmentId s = 0; s < engine_->db().num_segments(); ++s) {
    MMDB_ASSERT_OK(
        engine_->Apply({{s * rps, Image(s * rps, 100 + s)}}).status());
  }
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  std::string snapshot(engine_->db().data(), engine_->db().size_bytes());

  uint64_t marker = 1000;
  while (engine_->CheckpointInProgress()) {
    MMDB_ASSERT_OK(engine_->StepCheckpoint());
    RecordId r = (marker * 37) % engine_->db().num_records();
    MMDB_ASSERT_OK(engine_->Apply({{r, Image(r, marker)}}).status());
    ++marker;
  }

  auto meta = engine_->backup()->ReadMeta();
  MMDB_ASSERT_OK(meta);
  std::string segment;
  for (SegmentId s = 0; s < engine_->db().num_segments(); ++s) {
    MMDB_ASSERT_OK(engine_->backup()->ReadSegment(meta->copy, s, &segment));
    EXPECT_EQ(segment, snapshot.substr(s * engine_->db().segment_bytes(),
                                       engine_->db().segment_bytes()))
        << "segment " << s << " is not the begin-time image";
  }
}

// Unlike COU, Begin never quiesces: a transaction left open across
// StartCheckpoint is legal, commits land mid-sweep without aborts, and no
// quiesce stall is ever recorded.
TEST_P(ModernTest, NoQuiesceNoAborts) {
  Open();
  RecordId low = 0, high = engine_->db().num_records() - 1;
  Transaction* t = engine_->Begin();
  MMDB_ASSERT_OK(engine_->Write(t, low, Image(low, 1)));
  // COU would refuse here (FAILED_PRECONDITION: open transactions); the
  // modern algorithms must not.
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 4; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  MMDB_ASSERT_OK(engine_->Write(t, high, Image(high, 1)));
  MMDB_ASSERT_OK(engine_->Commit(t).status());

  MMDB_ASSERT_OK(engine_->Apply({{low, Image(low, 2)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->txns().color_aborts(), 0u);
  EXPECT_DOUBLE_EQ(engine_->checkpointer().last_stats().quiesce_seconds, 0.0);
}

// Old-image preservation fires only for post-Begin updates to unswept
// segments, once per segment (Zigzag/Ping-Pong) or once per record
// (Hourglass), and everything is released by completion.
TEST_P(ModernTest, PreservationOnlyForUnsweptSegments) {
  Open();
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 4; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  ASSERT_TRUE(engine_->CheckpointInProgress());

  // Update the LAST segment (unswept): must preserve exactly once.
  RecordId last = engine_->db().num_records() - 1;
  MMDB_ASSERT_OK(engine_->Apply({{last, Image(last, 1)}}).status());
  // A second update to the same RECORD must not preserve again.
  MMDB_ASSERT_OK(engine_->Apply({{last, Image(last, 2)}}).status());
  if (GetParam() == Algorithm::kHourglass) {
    // Record-granularity: overlays live on the checkpointer's heap, the
    // segment-sized snapshot pool is never touched.
    EXPECT_EQ(engine_->buffers().allocated(), 0u);
    const auto& hourglass = dynamic_cast<const HourglassCheckpointer&>(
        engine_->checkpointer());
    EXPECT_EQ(hourglass.preserved_records(), 1u);
  } else {
    EXPECT_EQ(engine_->buffers().allocated(), 1u);
    // Nor does a second update to a DIFFERENT record of that segment.
    MMDB_ASSERT_OK(engine_->Apply({{last - 1, Image(last - 1, 3)}}).status());
    EXPECT_EQ(engine_->buffers().allocated(), 1u);
  }

  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->buffers().allocated(), 0u);
  EXPECT_GE(engine_->checkpointer().last_stats().cou_copies, 1u);

  // And an update to an already-swept segment preserves nothing.
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 5; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  ASSERT_TRUE(engine_->CheckpointInProgress());
  MMDB_ASSERT_OK(engine_->Apply({{0, Image(0, 4)}}).status());
  EXPECT_EQ(engine_->buffers().allocated(), 0u);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->checkpointer().last_stats().cou_copies, 0u);
}

// Segment-granularity emulation under a 1-buffer pool degrades to fuzzy
// content for the overflow segments (recovery stays exact); Hourglass
// never needs the pool at all, so its snapshot stays exact.
TEST_P(ModernTest, BufferExhaustionDegradesGracefully) {
  Open(CheckpointMode::kFull, /*max_buffers=*/1);
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 3; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  const uint32_t rps = engine_->params().db.records_per_segment();
  uint64_t n_seg = engine_->db().num_segments();
  for (SegmentId s = n_seg - 4; s < n_seg; ++s) {
    RecordId r = s * rps;
    MMDB_ASSERT_OK(engine_->Apply({{r, Image(r, 50 + s)}}).status());
  }
  EXPECT_LE(engine_->buffers().allocated(),
            GetParam() == Algorithm::kHourglass ? 0u : 1u);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());
  for (SegmentId s = n_seg - 4; s < n_seg; ++s) {
    RecordId r = s * rps;
    EXPECT_EQ(engine_->ReadRecordRaw(r), std::string_view(Image(r, 50 + s)))
        << "record " << r;
  }
}

// The cold-update invariant inherited from COU: when the sweep flushes a
// preserved PRE-update image, the post-update content must still reach
// this ping-pong copy at the next checkpoint that writes it.
TEST_P(ModernTest, OldImageFlushDoesNotLoseColdUpdates) {
  Open(CheckpointMode::kPartial);
  const uint64_t n_seg = engine_->db().num_segments();
  const uint32_t rps = engine_->params().db.records_per_segment();
  RecordId cold = (n_seg - 1) * rps;
  std::string image = Image(cold, 4242);

  for (SegmentId s = 0; s < n_seg; ++s) {
    RecordId r = s * rps;
    MMDB_ASSERT_OK(engine_->Apply({{r, Image(r, 1000 + s)}}).status());
  }

  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 3; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  ASSERT_TRUE(engine_->CheckpointInProgress());
  MMDB_ASSERT_OK(engine_->Apply({{cold, image}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  ASSERT_GE(engine_->checkpointer().last_stats().cou_copies, 1u);

  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());
  EXPECT_EQ(engine_->ReadRecordRaw(cold), std::string_view(image))
      << "cold update lost: stale old image survived in one ping-pong copy";
}

// Partial-mode abort-and-retry: a backup device fault mid-sweep aborts the
// attempt; the retry (same id, same copy) must rewrite every segment the
// failed attempt cleared — including ones whose preserved old image was
// already flushed — and recovery must land on the durable state.
TEST_P(ModernTest, PartialModeAbortRetryRedirties) {
  EngineOptions opt = TinyOptions();
  opt.algorithm = GetParam();
  opt.checkpoint_mode = CheckpointMode::kPartial;
  std::unique_ptr<Env> base = NewMemEnv();
  FaultInjectionEnv fenv(base.get());
  auto engine_or = Engine::Open(opt, &fenv);
  MMDB_ASSERT_OK(engine_or);
  Engine& engine = **engine_or;
  auto image = [&](RecordId r, uint64_t m) {
    return MakeRecordImage(engine.db().record_bytes(), r, m);
  };

  // Dirty every segment, then fail backup writes mid-sweep.
  const uint32_t rps = engine.params().db.records_per_segment();
  const uint64_t n_seg = engine.db().num_segments();
  for (SegmentId s = 0; s < n_seg; ++s) {
    RecordId r = s * rps;
    MMDB_ASSERT_OK(engine.Apply({{r, image(r, 10 + s)}}).status());
  }
  MMDB_ASSERT_OK(engine.StartCheckpoint());
  for (int i = 0; i < 3; ++i) MMDB_ASSERT_OK(engine.StepCheckpoint());
  ASSERT_TRUE(engine.CheckpointInProgress());
  // Update an unswept segment so the attempt holds a preserved old image,
  // then let the device start failing.
  RecordId late = (n_seg - 1) * rps;
  MMDB_ASSERT_OK(engine.Apply({{late, image(late, 99)}}).status());
  fenv.InjectFault({FaultKind::kWriteError, "backup", 0, /*times=*/0});
  uint64_t aborted_before = engine.checkpointer().aborted_count();
  while (engine.CheckpointInProgress()) {
    Status st = engine.StepCheckpoint();
    if (!st.ok()) break;  // surfaced device error; Abort already ran
  }
  EXPECT_FALSE(engine.CheckpointInProgress());
  EXPECT_EQ(engine.checkpointer().aborted_count(), aborted_before + 1);
  // Preserved old images were released by the abort.
  EXPECT_EQ(engine.buffers().allocated(), 0u);

  // Clear the fault and retry: the same copy is rewritten in full.
  fenv.ClearFaults();
  MMDB_ASSERT_OK(engine.RunCheckpointToCompletion());

  engine.FlushLog();
  MMDB_ASSERT_OK(engine.AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine.Crash());
  MMDB_ASSERT_OK(engine.Recover());
  for (SegmentId s = 0; s < n_seg; ++s) {
    RecordId r = s * rps;
    uint64_t m = (r == late) ? 99 : 10 + s;
    EXPECT_EQ(engine.ReadRecordRaw(r), std::string_view(image(r, m)))
        << "record " << r << " after abort-and-retry";
  }
}

INSTANTIATE_TEST_SUITE_P(AllModern, ModernTest,
                         testing::ValuesIn(kModernAlgorithms),
                         [](const testing::TestParamInfo<Algorithm>& info) {
                           return std::string(AlgorithmName(info.param));
                         });

// --- Abort() trace-timestamp regression ----------------------------------
// A checkpointer driven without an engine (the facade pattern) may abort
// with no clock: Abort() must fall back to the begin time and never trace
// a negative timestamp, even for a checkpoint begun at time zero.

class BareCheckpointerTest : public testing::TestWithParam<Algorithm> {
 protected:
  void Open(Algorithm a) {
    env_ = NewMemEnv();
    EngineOptions opt = TinyOptions();
    opt.stable_log_tail = a == Algorithm::kFastFuzzy;
    const SystemParams& p = opt.params;
    MMDB_ASSERT_OK(env_->CreateDirIfMissing(opt.dir));
    db_ = std::make_unique<Database>(p.db);
    segments_ = std::make_unique<SegmentTable>(p.db.num_segments());
    buffers_ = std::make_unique<BufferPool>(p.db.segment_bytes(), 0);
    log_ = std::make_unique<LogManager>(env_.get(), opt.dir + "/wal.log", p,
                                        &meter_, opt.stable_log_tail);
    MMDB_ASSERT_OK(log_->Open());
    disks_.emplace(p.disk);
    backup_ = std::make_unique<BackupStore>(env_.get(), opt.dir, p,
                                            &*disks_);
    MMDB_ASSERT_OK(backup_->Open());
    txns_ = std::make_unique<TxnManager>(db_.get(), segments_.get(),
                                         log_.get(), &timestamps_, &meter_,
                                         p);
    tracer_ = std::make_unique<Tracer>();

    Checkpointer::Context ctx;
    ctx.db = db_.get();
    ctx.segments = segments_.get();
    ctx.buffers = buffers_.get();
    ctx.log = log_.get();
    ctx.backup = backup_.get();
    ctx.txns = txns_.get();
    ctx.timestamps = &timestamps_;
    ctx.meter = &meter_;
    ctx.params = p;
    ctx.tracer = tracer_.get();
    auto ck = Checkpointer::Create(a, ctx, CheckpointMode::kFull);
    MMDB_ASSERT_OK(ck);
    checkpointer_ = std::move(*ck);
    txns_->set_hooks(checkpointer_.get());
  }

  std::unique_ptr<Env> env_;
  CpuMeter meter_;
  TimestampOracle timestamps_;
  std::optional<DiskArrayModel> disks_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<SegmentTable> segments_;
  std::unique_ptr<BufferPool> buffers_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<BackupStore> backup_;
  std::unique_ptr<TxnManager> txns_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Checkpointer> checkpointer_;
};

TEST_P(BareCheckpointerTest, AbortAtTimeZeroTracesNonNegativeTimestamp) {
  Open(GetParam());
  MMDB_ASSERT_OK(checkpointer_->Begin(1, 0.0));
  ASSERT_TRUE(checkpointer_->InProgress());
  checkpointer_->Abort();  // no clock: the -1.0 "no time" sentinel
  EXPECT_FALSE(checkpointer_->InProgress());
  EXPECT_EQ(checkpointer_->aborted_count(), 1u);

  bool abort_seen = false;
  for (const TraceEvent& e : tracer_->Snapshot()) {
    EXPECT_GE(e.time, 0.0) << "negative trace timestamp, event type "
                           << static_cast<int>(e.type);
    if (e.type == TraceEventType::kCheckpointAbort) {
      abort_seen = true;
      EXPECT_DOUBLE_EQ(e.time, 0.0);  // begin-time fallback, clamped
    }
  }
  EXPECT_TRUE(abort_seen);
}

TEST_P(BareCheckpointerTest, BeginRejectsNegativeTime) {
  Open(GetParam());
  Status st = checkpointer_->Begin(1, -0.25);
  EXPECT_TRUE(st.IsInvalidArgument()) << st;
  EXPECT_FALSE(checkpointer_->InProgress());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BareCheckpointerTest,
                         testing::ValuesIn(kAllAlgorithms),
                         [](const testing::TestParamInfo<Algorithm>& info) {
                           return std::string(AlgorithmName(info.param));
                         });

}  // namespace
}  // namespace mmdb
