// Tests for backup/: ping-pong copies, segment checksums, atomic metadata
// publication, and torn writes at crash.

#include <memory>
#include <string>

#include "backup/backup_store.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

class BackupStoreTest : public testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    params_ = SystemParams::TestDefaults();
    params_.db.db_words = 8 * 1024;  // 8 segments of 1024 words
    params_.db.segment_words = 1024;
    disks_ = std::make_unique<DiskArrayModel>(params_.disk);
    store_ = std::make_unique<BackupStore>(env_.get(), "bk", params_,
                                           disks_.get());
    MMDB_ASSERT_OK(store_->Open());
  }

  std::string Segment(char fill) {
    return std::string(params_.db.segment_bytes(), fill);
  }

  std::unique_ptr<Env> env_;
  SystemParams params_;
  std::unique_ptr<DiskArrayModel> disks_;
  std::unique_ptr<BackupStore> store_;
};

TEST_F(BackupStoreTest, FreshCopiesReadBackAsZeros) {
  std::string out;
  MMDB_ASSERT_OK(store_->ReadSegment(0, 3, &out));
  EXPECT_EQ(out, Segment('\0'));
  MMDB_ASSERT_OK(store_->ReadSegment(1, 7, &out));
  EXPECT_EQ(out, Segment('\0'));
}

TEST_F(BackupStoreTest, WriteReadRoundTripPerCopy) {
  auto done = store_->WriteSegment(0, 2, Segment('a'), 0.0);
  MMDB_ASSERT_OK(done);
  EXPECT_GT(*done, 0.0);
  std::string out;
  MMDB_ASSERT_OK(store_->ReadSegment(0, 2, &out));
  EXPECT_EQ(out, Segment('a'));
  // The other copy is untouched.
  MMDB_ASSERT_OK(store_->ReadSegment(1, 2, &out));
  EXPECT_EQ(out, Segment('\0'));
}

TEST_F(BackupStoreTest, CopyForAlternates) {
  EXPECT_EQ(BackupStore::CopyFor(1), 1u);
  EXPECT_EQ(BackupStore::CopyFor(2), 0u);
  EXPECT_EQ(BackupStore::CopyFor(3), 1u);
}

TEST_F(BackupStoreTest, RejectsBadArguments) {
  EXPECT_FALSE(store_->WriteSegment(2, 0, Segment('x'), 0.0).ok());
  EXPECT_FALSE(store_->WriteSegment(0, 99, Segment('x'), 0.0).ok());
  EXPECT_FALSE(store_->WriteSegment(0, 0, "short", 0.0).ok());
  std::string out;
  EXPECT_FALSE(store_->ReadSegment(0, 99, &out).ok());
}

TEST_F(BackupStoreTest, MetaRoundTripAndAtomicReplace) {
  EXPECT_TRUE(store_->ReadMeta().status().IsNotFound());
  CheckpointMeta meta;
  meta.checkpoint_id = 5;
  meta.copy = 1;
  meta.log_offset = 1234;
  meta.begin_lsn = 77;
  meta.tau = 9;
  MMDB_ASSERT_OK(store_->CommitCheckpoint(meta));
  auto read = store_->ReadMeta();
  MMDB_ASSERT_OK(read);
  EXPECT_EQ(*read, meta);

  meta.checkpoint_id = 6;
  meta.copy = 0;
  MMDB_ASSERT_OK(store_->CommitCheckpoint(meta));
  read = store_->ReadMeta();
  MMDB_ASSERT_OK(read);
  EXPECT_EQ(read->checkpoint_id, 6u);
}

TEST_F(BackupStoreTest, MetaCorruptionDetected) {
  CheckpointMeta meta;
  meta.checkpoint_id = 1;
  MMDB_ASSERT_OK(store_->CommitCheckpoint(meta));
  std::string contents;
  MMDB_ASSERT_OK(env_->ReadFileToString(store_->MetaPath(), &contents));
  contents[5] ^= 0x01;
  MMDB_ASSERT_OK(env_->WriteStringToFile(store_->MetaPath(), contents, false));
  EXPECT_TRUE(store_->ReadMeta().status().IsCorruption());
}

TEST_F(BackupStoreTest, CrashTearsInFlightWrites) {
  auto done = store_->WriteSegment(0, 1, Segment('z'), 0.0);
  MMDB_ASSERT_OK(done);
  // Crash before the modeled completion: the slot must fail verification.
  MMDB_ASSERT_OK(store_->Crash(*done - 1e-6));
  std::string out;
  EXPECT_TRUE(store_->ReadSegment(0, 1, &out).IsCorruption());
}

TEST_F(BackupStoreTest, CrashKeepsCompletedWrites) {
  auto done = store_->WriteSegment(0, 1, Segment('z'), 0.0);
  MMDB_ASSERT_OK(done);
  MMDB_ASSERT_OK(store_->Crash(*done));  // exactly at completion: landed
  std::string out;
  MMDB_ASSERT_OK(store_->ReadSegment(0, 1, &out));
  EXPECT_EQ(out, Segment('z'));
}

TEST_F(BackupStoreTest, BitRotDetectedByChecksum) {
  MMDB_ASSERT_OK(store_->WriteSegment(0, 4, Segment('m'), 0.0).status());
  // Flip one byte of the stored image directly.
  auto file = env_->NewRandomWriteFile(store_->CopyPath(0));
  MMDB_ASSERT_OK(file);
  auto size = env_->FileSize(store_->CopyPath(0));
  MMDB_ASSERT_OK(size);
  MMDB_ASSERT_OK((*file)->WriteAt(*size - 10, "X"));
  std::string out;
  EXPECT_TRUE(store_->ReadSegment(0, 7, &out).IsCorruption());
}

TEST_F(BackupStoreTest, WritesPaceOnTheDiskArray) {
  double last = 0.0;
  for (int i = 0; i < 40; ++i) {
    auto done = store_->WriteSegment(0, i % 8, Segment('a' + i % 8), 0.0);
    MMDB_ASSERT_OK(done);
    last = std::max(last, *done);
  }
  // 40 writes of 1024 words on 20 disks: two serial rounds.
  EXPECT_NEAR(last, 2 * params_.disk.IoSeconds(1024), 1e-9);
  EXPECT_EQ(store_->segments_written(), 40u);
}

}  // namespace
}  // namespace mmdb
