// Tests for the offline inspection library behind mmdb_log_dump and
// mmdb_backup_inspect.

#include <cstdio>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "tools/inspect.h"
#include "wal/log_manager.h"

namespace mmdb {
namespace {

class InspectTest : public testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto engine = Engine::Open(TinyOptions(), env_.get());
    MMDB_ASSERT_OK(engine);
    engine_ = std::move(*engine);
  }

  std::string Image(RecordId r, uint64_t m) {
    return MakeRecordImage(engine_->db().record_bytes(), r, m);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(InspectTest, SummarizeLogCountsRecordTypes) {
  MMDB_ASSERT_OK(engine_->Apply({{1, Image(1, 1)}, {2, Image(2, 1)}})
                     .status());
  Transaction* t = engine_->Begin();
  MMDB_ASSERT_OK(engine_->Write(t, 3, Image(3, 2)));
  engine_->Abort(t);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->Crash());

  auto summary = SummarizeLog(env_.get(), engine_->LogPath());
  MMDB_ASSERT_OK(summary);
  EXPECT_EQ(summary->updates, 2u);  // the aborted write is never logged
  EXPECT_EQ(summary->commits, 1u);
  EXPECT_EQ(summary->aborts, 1u);
  EXPECT_EQ(summary->begin_markers, 1u);
  EXPECT_EQ(summary->end_markers, 1u);
  EXPECT_EQ(summary->distinct_txns, 2u);
  ASSERT_EQ(summary->checkpoints.size(), 1u);
  EXPECT_EQ(summary->checkpoints[0].id, 1u);
  EXPECT_TRUE(summary->checkpoints[0].complete);
  EXPECT_FALSE(summary->torn_tail);
  EXPECT_FALSE(summary->ToString().empty());
}

TEST_F(InspectTest, SummaryFlagsInProgressCheckpoint) {
  MMDB_ASSERT_OK(engine_->Apply({{1, Image(1, 1)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->Apply({{2, Image(2, 2)}}).status());
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 3; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  ASSERT_TRUE(engine_->CheckpointInProgress());
  MMDB_ASSERT_OK(engine_->Crash());

  auto summary = SummarizeLog(env_.get(), engine_->LogPath());
  MMDB_ASSERT_OK(summary);
  ASSERT_EQ(summary->checkpoints.size(), 2u);
  EXPECT_TRUE(summary->checkpoints[0].complete);
  EXPECT_FALSE(summary->checkpoints[1].complete);
}

TEST_F(InspectTest, DumpLogPrintsEveryRecord) {
  MMDB_ASSERT_OK(engine_->Apply({{1, Image(1, 1)}}).status());
  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());

  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  auto printed = DumpLog(env_.get(), engine_->LogPath(), 0, sink);
  MMDB_ASSERT_OK(printed);
  EXPECT_EQ(*printed, 2u);  // one update + one commit
  std::fclose(sink);
}

TEST_F(InspectTest, InspectBackupReportsGeometryMetaAndChecksums) {
  MMDB_ASSERT_OK(engine_->Apply({{1, Image(1, 1)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->Crash());

  auto summary = InspectBackup(env_.get(), engine_->options().dir);
  MMDB_ASSERT_OK(summary);
  EXPECT_EQ(summary->geometry.db_words, engine_->params().db.db_words);
  EXPECT_EQ(summary->geometry.segment_words,
            engine_->params().db.segment_words);
  ASSERT_TRUE(summary->has_meta);
  EXPECT_EQ(summary->meta.checkpoint_id, 1u);
  for (uint32_t c = 0; c < 2; ++c) {
    ASSERT_TRUE(summary->copies[c].present);
    EXPECT_EQ(summary->copies[c].valid_segments,
              engine_->db().num_segments());
    EXPECT_EQ(summary->copies[c].corrupt_segments, 0u);
  }
  EXPECT_FALSE(summary->ToString().empty());
}

TEST_F(InspectTest, InspectBackupCountsTornSegments) {
  MMDB_ASSERT_OK(engine_->Apply({{1, Image(1, 1)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  // Dirty every segment, start a second checkpoint, and crash with writes
  // in flight: the OTHER copy tears.
  const uint32_t rps = engine_->params().db.records_per_segment();
  for (SegmentId s = 0; s < engine_->db().num_segments(); ++s) {
    RecordId r = s * rps;
    MMDB_ASSERT_OK(engine_->Apply({{r, Image(r, 100 + s)}}).status());
  }
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 6; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  ASSERT_TRUE(engine_->CheckpointInProgress());
  MMDB_ASSERT_OK(engine_->Crash());

  auto summary = InspectBackup(env_.get(), engine_->options().dir);
  MMDB_ASSERT_OK(summary);
  ASSERT_TRUE(summary->has_meta);
  uint32_t named = summary->meta.copy;
  uint32_t other = 1 - named;
  // The copy named by the metadata is intact; the one being written may
  // have torn in-flight segments.
  EXPECT_EQ(summary->copies[named].corrupt_segments, 0u);
  EXPECT_GE(summary->copies[other].corrupt_segments, 1u);
}

TEST_F(InspectTest, InspectMissingDirIsNotFound) {
  auto summary = InspectBackup(env_.get(), "nope");
  EXPECT_TRUE(summary.status().IsNotFound());
}

// The error paths the command-line tools ride on: a missing or unreadable
// file must produce a clean NOT_FOUND / CORRUPTION status (which the mains
// print to stderr with a non-zero exit), never a crash or a silently empty
// summary.

TEST_F(InspectTest, SummarizeMissingLogIsNotFound) {
  auto summary = SummarizeLog(env_.get(), "no/such/wal.log");
  EXPECT_TRUE(summary.status().IsNotFound());
  EXPECT_FALSE(summary.status().ToString().empty());
}

TEST_F(InspectTest, DumpMissingLogIsNotFound) {
  auto count = DumpLog(env_.get(), "no/such/wal.log", 0, stdout);
  EXPECT_TRUE(count.status().IsNotFound());
}

TEST_F(InspectTest, SummarizeRejectsNonLogFile) {
  MMDB_ASSERT_OK(env_->WriteStringToFile("junk.bin",
                                         "this is not a log file at all",
                                         /*sync=*/false));
  auto summary = SummarizeLog(env_.get(), "junk.bin");
  EXPECT_TRUE(summary.status().IsCorruption());
}

TEST_F(InspectTest, SummarizeSurfacesMidLogCorruption) {
  MMDB_ASSERT_OK(engine_->Apply({{1, Image(1, 1)}}).status());
  MMDB_ASSERT_OK(engine_->Apply({{2, Image(2, 2)}}).status());
  MMDB_ASSERT_OK(engine_->Apply({{3, Image(3, 3)}}).status());
  MMDB_ASSERT_OK(engine_->FlushLog());
  // Let the flush complete on the virtual timeline, otherwise the crash
  // legitimately discards the still-in-flight tail and leaves nothing on
  // disk to corrupt.
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());

  // Flip a byte early in the file body: later frames stay intact, so this
  // is mid-log damage, which both tools must refuse to summarize quietly.
  std::string bytes;
  MMDB_ASSERT_OK(env_->ReadFileToString(engine_->LogPath(), &bytes));
  bytes[kLogFileHeaderBytes + 6] ^= 0x20;
  MMDB_ASSERT_OK(
      env_->WriteStringToFile(engine_->LogPath(), bytes, /*sync=*/false));

  auto summary = SummarizeLog(env_.get(), engine_->LogPath());
  EXPECT_TRUE(summary.status().IsCorruption()) << summary.status().ToString();
  auto count = DumpLog(env_.get(), engine_->LogPath(), 0, stdout);
  EXPECT_TRUE(count.status().IsCorruption()) << count.status().ToString();
}

}  // namespace
}  // namespace mmdb
