// Bench regression gate (obs/bench_diff.h): identical sidecars compare
// equal, the "run" member is the only sanctioned drift, timing leaves get
// tolerance while deterministic leaves must match exactly, and structural
// drift (missing keys, new keys, array-length or type changes) always
// fails.

#include <string>

#include "gtest/gtest.h"
#include "obs/bench_diff.h"

namespace mmdb {
namespace {

const char kSidecar[] =
    R"({"bench":"fig4a","points":[)"
    R"({"label":"FUZZYCOPY","engine":{)"
    R"("now":2.839446,"metrics":{"counters":{"txn.committed":23002},)"
    R"("timers":{"ckpt.flush":{"count":12,"mean":0.031,"p90":0.035,)"
    R"("p99":0.04,"p999":0.044}}},)"
    R"("trace":{"recorded":320,"dropped":256,"events":[)"
    R"({"seq":300,"kind":"log.flush","t":2.71,"durable_at":2.72,)"
    R"("durable_lsn":900,"bytes":4096}]}},)"
    R"("validation":{"overhead_per_txn":{"predicted":3756.8,)"
    R"("measured":2682.7,"residual":-0.286}}},)"
    R"({"label":"BAD","error":"INTERNAL: deterministic failure"}],)"
    R"("validation_summary":{"points":1,"overhead_per_txn":)"
    R"({"mean_abs_residual":0.286,"max_abs_residual":0.286}},)"
    R"("run":{"jobs":4,"wall_seconds":12.5}})";

std::string Mutated(const std::string& from, const std::string& to) {
  std::string doc = kSidecar;
  auto pos = doc.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  doc.replace(pos, from.size(), to);
  return doc;
}

TEST(BenchDiffTest, IdenticalDocumentsMatch) {
  auto result = DiffBenchJson(kSidecar, kSidecar);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->equal());
  EXPECT_EQ(result->mismatches, 0u);
  EXPECT_GT(result->leaves_compared, 10u);
}

TEST(BenchDiffTest, RunMemberIsIgnored) {
  std::string other = Mutated(R"("run":{"jobs":4,"wall_seconds":12.5})",
                              R"("run":{"jobs":1,"wall_seconds":99.0})");
  auto result = DiffBenchJson(kSidecar, other);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->equal());
  // ... even when one side has no "run" at all (sidecar without SetRun).
  std::string no_run =
      Mutated(R"(,"run":{"jobs":4,"wall_seconds":12.5})", "");
  auto missing = DiffBenchJson(kSidecar, no_run);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->equal());
}

TEST(BenchDiffTest, TimingDriftWithinToleranceMatches) {
  // +2% on a timing leaf ("now") passes at the default 5% tolerance.
  std::string drifted = Mutated("\"now\":2.839446", "\"now\":2.896235");
  auto result = DiffBenchJson(kSidecar, drifted);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->equal());
}

TEST(BenchDiffTest, TailPercentileLeavesGetTolerance) {
  // p90/p999 are timing leaves: +2% drift passes, +15% fails.
  std::string small = Mutated(R"("p999":0.044)", R"("p999":0.0449)");
  auto ok = DiffBenchJson(kSidecar, small);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->equal());
  std::string large = Mutated(R"("p999":0.044)", R"("p999":0.0506)");
  auto bad = DiffBenchJson(kSidecar, large);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->equal());
}

TEST(BenchDiffTest, TimingDriftBeyondToleranceFails) {
  std::string drifted = Mutated("\"now\":2.839446", "\"now\":3.475482");
  auto result = DiffBenchJson(kSidecar, drifted);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equal());
  ASSERT_EQ(result->reports.size(), 1u);
  EXPECT_NE(result->reports[0].find("points[0].engine.now"),
            std::string::npos);
}

TEST(BenchDiffTest, ResidualsGetToleranceToo) {
  std::string drifted =
      Mutated("\"residual\":-0.286}}}", "\"residual\":-0.290}}}");
  auto result = DiffBenchJson(kSidecar, drifted);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->equal());
}

TEST(BenchDiffTest, DeterministicLeafMustMatchExactly) {
  // A one-transaction difference in a counter is a real regression even
  // though it is far under 5% relatively.
  std::string drifted = Mutated("23002", "23003");
  auto result = DiffBenchJson(kSidecar, drifted);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equal());
  // Same for strings (an error message or trace kind changing).
  std::string error_drift = Mutated("deterministic failure", "other failure");
  result = DiffBenchJson(kSidecar, error_drift);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equal());
}

TEST(BenchDiffTest, StrictModeDemandsExactTimings) {
  BenchDiffOptions strict;
  strict.rel_tol = 0;
  strict.abs_tol = 0;
  std::string drifted = Mutated("\"now\":2.839446", "\"now\":2.839447");
  auto result = DiffBenchJson(kSidecar, drifted, strict);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equal());
  auto same = DiffBenchJson(kSidecar, kSidecar, strict);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same->equal());
}

TEST(BenchDiffTest, StructuralDriftFails) {
  // Missing member.
  std::string missing = Mutated(R"("dropped":256,)", "");
  auto result = DiffBenchJson(kSidecar, missing);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equal());
  // New member only the current run has.
  std::string added = Mutated(R"("recorded":320,)",
                              R"("recorded":320,"extra":1,)");
  result = DiffBenchJson(kSidecar, added);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equal());
  // Array length change (a point disappeared).
  std::string fewer =
      Mutated(R"(,{"label":"BAD","error":"INTERNAL: deterministic failure"})",
              "");
  result = DiffBenchJson(kSidecar, fewer);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equal());
  // Type change.
  std::string retyped = Mutated("\"residual\":-0.286", "\"residual\":null");
  result = DiffBenchJson(kSidecar, retyped);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equal());
}

TEST(BenchDiffTest, MismatchCountKeepsGoingPastReportCap) {
  BenchDiffOptions capped;
  capped.max_reports = 1;
  std::string drifted = Mutated("23002", "23003");
  drifted = [&] {
    std::string d = drifted;
    auto pos = d.find("\"count\":12");
    EXPECT_NE(pos, std::string::npos);
    d.replace(pos, 10, "\"count\":13");
    return d;
  }();
  auto result = DiffBenchJson(kSidecar, drifted, capped);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->mismatches, 2u);
  EXPECT_EQ(result->reports.size(), 1u);
}

TEST(BenchDiffTest, MalformedInputsAreErrorsNotMismatches) {
  EXPECT_FALSE(DiffBenchJson("{bad", kSidecar).ok());
  EXPECT_FALSE(DiffBenchJson(kSidecar, "{bad").ok());
  EXPECT_FALSE(DiffBenchJson("[1,2]", kSidecar).ok());  // non-object root
}

TEST(BenchDiffTest, TimingFieldClassification) {
  for (const char* timing :
       {"t", "done", "durable_at", "until", "now", "begin", "end", "mean",
        "min", "max", "p50", "p90", "p99", "p999", "predicted", "measured",
        "residual", "wall_seconds", "total_seconds", "lock_held_seconds",
        "mean_abs_residual", "max_abs_residual", "overhead_s"}) {
    EXPECT_TRUE(IsTimingField(timing)) << timing;
  }
  for (const char* exact :
       {"count", "jobs", "label", "bytes", "lsn", "segments_flushed",
        "recorded", "dropped", "seq", "kind", "points", "checkpoint"}) {
    EXPECT_FALSE(IsTimingField(exact)) << exact;
  }
}

}  // namespace
}  // namespace mmdb
