// Algorithm-independent checkpointer behaviour: sweep lifecycle, markers,
// metadata publication, WAL gating, cost accounting, and the scheduler.

#include <cctype>
#include <cmath>
#include <memory>
#include <string>

#include "checkpoint/scheduler.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "wal/log_reader.h"

namespace mmdb {
namespace {

class CheckpointTest : public testing::TestWithParam<Algorithm> {
 protected:
  void Open(CheckpointMode mode = CheckpointMode::kPartial) {
    EngineOptions opt = TinyOptions();
    opt.algorithm = GetParam();
    opt.checkpoint_mode = mode;
    opt.stable_log_tail = GetParam() == Algorithm::kFastFuzzy;
    env_ = NewMemEnv();
    auto engine = Engine::Open(opt, env_.get());
    MMDB_ASSERT_OK(engine);
    engine_ = std::move(*engine);
  }

  std::string Image(RecordId r, uint64_t m) {
    return MakeRecordImage(engine_->db().record_bytes(), r, m);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(CheckpointTest, WritesMarkersAndMetadata) {
  Open();
  MMDB_ASSERT_OK(engine_->Apply({{0, Image(0, 1)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  auto meta = engine_->backup()->ReadMeta();
  MMDB_ASSERT_OK(meta);
  EXPECT_EQ(meta->checkpoint_id, 1u);

  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());
  auto reader = LogReader::Open(env_.get(), engine_->LogPath());
  MMDB_ASSERT_OK(reader);
  auto marker = reader->FindLastCompleteCheckpoint();
  MMDB_ASSERT_OK(marker);
  EXPECT_EQ(marker->checkpoint_id, 1u);
  EXPECT_EQ(marker->begin_offset, meta->log_offset);
  EXPECT_EQ(marker->begin_record.lsn, meta->begin_lsn);
}

TEST_P(CheckpointTest, BackupContainsCommittedDataAfterCheckpoint) {
  Open();
  std::string image = Image(10, 5);
  MMDB_ASSERT_OK(engine_->Apply({{10, image}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  auto meta = engine_->backup()->ReadMeta();
  MMDB_ASSERT_OK(meta);
  SegmentId seg = engine_->db().SegmentOf(10);
  std::string segment;
  MMDB_ASSERT_OK(engine_->backup()->ReadSegment(meta->copy, seg, &segment));
  size_t offset = (10 % engine_->params().db.records_per_segment()) *
                  engine_->db().record_bytes();
  EXPECT_EQ(segment.substr(offset, image.size()), image);
}

TEST_P(CheckpointTest, WalGateHoldsSegmentsUntilCommitDurable) {
  Open();
  // Commit without letting the log flush land, then checkpoint: the
  // checkpoint must internally wait for commit durability, so after it
  // completes the log on disk must contain the commit record.
  MMDB_ASSERT_OK(engine_->Apply({{0, Image(0, 9)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->Crash());
  auto reader = LogReader::Open(env_.get(), engine_->LogPath());
  MMDB_ASSERT_OK(reader);
  bool commit_found = false;
  MMDB_ASSERT_OK(reader->ScanForward(0, [&](const LogRecord& r, uint64_t) {
    if (r.type == LogRecordType::kCommit) commit_found = true;
    return true;
  }));
  EXPECT_TRUE(commit_found)
      << "segment images reached the backup before the covering commit";
}

TEST_P(CheckpointTest, StepIsIdempotentWhenIdle) {
  Open();
  EXPECT_FALSE(engine_->CheckpointInProgress());
  MMDB_ASSERT_OK(engine_->StepCheckpoint());
  EXPECT_FALSE(engine_->CheckpointInProgress());
}

TEST_P(CheckpointTest, BeginWhileRunningFails) {
  Open();
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  EXPECT_TRUE(engine_->StartCheckpoint().IsFailedPrecondition());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
}

TEST_P(CheckpointTest, AsyncCostsAreCharged) {
  Open(CheckpointMode::kFull);
  double before = engine_->meter().AsynchronousOverhead();
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  double charged = engine_->meter().AsynchronousOverhead() - before;
  const SystemParams& p = engine_->params();
  uint64_t n = p.db.num_segments();
  // Every algorithm initiates at least one I/O per segment.
  EXPECT_GE(charged, static_cast<double>(n * p.costs.io));
  // Copy-based algorithms also move whole segments.
  if (GetParam() == Algorithm::kFuzzyCopy ||
      GetParam() == Algorithm::kTwoColorCopy ||
      GetParam() == Algorithm::kCouCopy) {
    EXPECT_GE(charged,
              static_cast<double>(n) * (p.costs.io + p.db.segment_words));
  }
  // FASTFUZZY charges nothing but the I/O initiations.
  if (GetParam() == Algorithm::kFastFuzzy) {
    EXPECT_DOUBLE_EQ(charged, static_cast<double>(n * p.costs.io));
  }
}

TEST_P(CheckpointTest, HistoryAccumulatesStats) {
  Open();
  MMDB_ASSERT_OK(engine_->Apply({{0, Image(0, 1)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->Apply({{64, Image(64, 2)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  const auto& history = engine_->checkpointer().history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].id, 1u);
  EXPECT_EQ(history[1].id, 2u);
  EXPECT_GT(history[0].end_time, history[0].begin_time);
  EXPECT_LE(history[0].end_time, history[1].begin_time);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CheckpointTest, testing::ValuesIn(kAllAlgorithms),
    [](const testing::TestParamInfo<Algorithm>& info) {
      std::string name(AlgorithmName(info.param));
      return name;
    });

TEST(AlgorithmNameTest, RoundTrips) {
  for (Algorithm a : kAllAlgorithms) {
    auto parsed = AlgorithmFromName(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(AlgorithmFromName("NOPE").ok());
}

TEST(AlgorithmNameTest, ParsesCaseInsensitively) {
  for (Algorithm a : kAllAlgorithms) {
    std::string lower(AlgorithmName(a));
    for (char& ch : lower) ch = static_cast<char>(std::tolower(ch));
    auto parsed = AlgorithmFromName(lower);
    MMDB_ASSERT_OK(parsed);
    EXPECT_EQ(*parsed, a) << lower;
  }
  auto mixed = AlgorithmFromName("ZigZag");
  MMDB_ASSERT_OK(mixed);
  EXPECT_EQ(*mixed, Algorithm::kZigzag);
}

TEST(AlgorithmNameTest, UnknownNameErrorListsEverySpelling) {
  auto parsed = AlgorithmFromName("COWCOPY");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
  std::string msg = parsed.status().ToString();
  EXPECT_NE(msg.find("COWCOPY"), std::string::npos) << msg;
  for (Algorithm a : kAllAlgorithms) {
    EXPECT_NE(msg.find(std::string(AlgorithmName(a))), std::string::npos)
        << "missing " << AlgorithmName(a) << " in: " << msg;
  }
}

TEST(SchedulerTest, FirstCheckpointImmediately) {
  CheckpointScheduler s(10.0);
  EXPECT_EQ(s.NextId(), 1u);
  EXPECT_DOUBLE_EQ(s.NextBeginTime(), 0.0);
}

TEST(SchedulerTest, SpacingRespectsIntervalAndCompletion) {
  CheckpointScheduler s(10.0);
  s.OnBegin(0.0);
  s.OnComplete(3.0);
  EXPECT_DOUBLE_EQ(s.NextBeginTime(), 10.0);  // interval dominates
  s.OnBegin(10.0);
  s.OnComplete(25.0);  // slow checkpoint: completion dominates
  EXPECT_DOUBLE_EQ(s.NextBeginTime(), 25.0);
  EXPECT_EQ(s.NextId(), 3u);
  EXPECT_EQ(s.completed(), 2u);
}

TEST(SchedulerTest, ZeroIntervalRunsBackToBack) {
  CheckpointScheduler s(0.0);
  s.OnBegin(0.0);
  s.OnComplete(2.5);
  EXPECT_DOUBLE_EQ(s.NextBeginTime(), 2.5);
}

}  // namespace
}  // namespace mmdb
