// Tests for wal/: record encoding, framing, the LogManager's modeled
// durability and crash semantics, and the LogReader's scans.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "gtest/gtest.h"
#include "sim/cpu_meter.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace mmdb {
namespace {

TEST(LogRecordTest, UpdateRoundTrip) {
  LogRecord r = LogRecord::Update(7, 123, std::string(128, 'q'));
  r.lsn = 99;
  std::string payload;
  r.EncodeTo(&payload);
  LogRecord out;
  MMDB_ASSERT_OK(LogRecord::DecodeFrom(payload, &out));
  EXPECT_EQ(out, r);
}

TEST(LogRecordTest, CommitAbortRoundTrip) {
  for (LogRecord r : {LogRecord::Commit(5), LogRecord::Abort(6)}) {
    r.lsn = 3;
    std::string payload;
    r.EncodeTo(&payload);
    LogRecord out;
    MMDB_ASSERT_OK(LogRecord::DecodeFrom(payload, &out));
    EXPECT_EQ(out, r);
  }
}

TEST(LogRecordTest, BeginCheckpointWithActiveList) {
  LogRecord r = LogRecord::BeginCheckpoint(
      4, 1000, {{10, kInvalidLsn}, {11, 55}});
  r.lsn = 77;
  std::string payload;
  r.EncodeTo(&payload);
  LogRecord out;
  MMDB_ASSERT_OK(LogRecord::DecodeFrom(payload, &out));
  EXPECT_EQ(out, r);
  ASSERT_EQ(out.active_txns.size(), 2u);
  EXPECT_EQ(out.active_txns[1].first_lsn, 55u);
}

TEST(LogRecordTest, EndCheckpointRoundTrip) {
  LogRecord r = LogRecord::EndCheckpoint(9);
  r.lsn = 80;
  std::string payload;
  r.EncodeTo(&payload);
  LogRecord out;
  MMDB_ASSERT_OK(LogRecord::DecodeFrom(payload, &out));
  EXPECT_EQ(out, r);
}

std::vector<LogRecord> AllRecordShapes() {
  std::vector<LogRecord> records = {
      LogRecord::Update(7, 123, std::string(128, 'q')),
      LogRecord::Update(1, 0, ""),
      LogRecord::Delta(9, 456, 24, -17),
      LogRecord::Commit(5),
      LogRecord::Abort(6),
      LogRecord::BeginCheckpoint(4, 1000, {{10, kInvalidLsn}, {11, 55}}),
      LogRecord::BeginCheckpoint(2, 0, {}),
      LogRecord::EndCheckpoint(9),
  };
  Lsn lsn = 1;
  for (LogRecord& r : records) r.lsn = (lsn += 1000000);  // multi-byte varints
  return records;
}

TEST(LogRecordTest, EncodedSizeMatchesEncodeToForEveryShape) {
  // EncodedSize is computed arithmetically (the append path pre-reserves
  // with it); it must agree exactly with the bytes EncodeTo produces.
  for (const LogRecord& r : AllRecordShapes()) {
    std::string payload;
    r.EncodeTo(&payload);
    EXPECT_EQ(r.EncodedSize(), payload.size()) << r.DebugString();
  }
}

TEST(LogRecordTest, EncodeLogFrameLayoutAndAppendBehavior) {
  // The frame encoder writes [u32 len][payload][u32 masked-crc][u32 len]
  // and APPENDS: pre-existing bytes in dst (the log tail) stay untouched.
  for (const LogRecord& r : AllRecordShapes()) {
    std::string payload;
    r.EncodeTo(&payload);
    std::string frame;
    frame.append("PREFIX");
    EncodeLogFrame(r, &frame);
    ASSERT_EQ(frame.size(), 6 + payload.size() + kLogFrameOverhead)
        << r.DebugString();
    EXPECT_EQ(frame.substr(0, 6), "PREFIX");
    std::string_view body(frame.data() + 6, frame.size() - 6);
    EXPECT_EQ(DecodeFixed32(body.data()), payload.size());
    EXPECT_EQ(body.substr(4, payload.size()), payload);
    uint32_t stored_crc = DecodeFixed32(body.data() + 4 + payload.size());
    EXPECT_EQ(crc32c::Unmask(stored_crc), crc32c::Value(payload));
    EXPECT_EQ(DecodeFixed32(body.data() + 8 + payload.size()),
              payload.size());
  }
}

TEST(LogRecordTest, DecodeRejectsGarbage) {
  LogRecord out;
  EXPECT_TRUE(LogRecord::DecodeFrom("", &out).IsCorruption());
  EXPECT_TRUE(LogRecord::DecodeFrom("\x63", &out).IsCorruption());
  // Valid record with trailing junk.
  LogRecord r = LogRecord::Commit(1);
  std::string payload;
  r.EncodeTo(&payload);
  payload += "junk";
  EXPECT_TRUE(LogRecord::DecodeFrom(payload, &out).IsCorruption());
}

class LogManagerTest : public testing::Test {
 protected:
  void Open(bool stable = false) {
    env_ = NewMemEnv();
    log_ = std::make_unique<LogManager>(env_.get(), "wal.log",
                                        SystemParams::TestDefaults(), &meter_,
                                        stable);
    MMDB_ASSERT_OK(log_->Open());
  }

  Lsn Append(TxnId txn) {
    LogRecord r = LogRecord::Commit(txn);
    return log_->Append(&r);
  }

  std::unique_ptr<Env> env_;
  CpuMeter meter_;
  std::unique_ptr<LogManager> log_;
};

TEST_F(LogManagerTest, LsnsAreDense) {
  Open();
  EXPECT_EQ(Append(1), 1u);
  EXPECT_EQ(Append(2), 2u);
  EXPECT_EQ(log_->NextLsn(), 3u);
  EXPECT_EQ(log_->LastLsn(), 2u);
}

TEST_F(LogManagerTest, DurabilityTracksFlushCompletion) {
  Open();
  Append(1);
  EXPECT_EQ(log_->DurableLsn(0.0), kInvalidLsn);
  double done = *log_->Flush(0.0);
  EXPECT_GT(done, 0.0);
  EXPECT_EQ(log_->DurableLsn(done - 1e-9), kInvalidLsn);
  EXPECT_EQ(log_->DurableLsn(done), 1u);
  // WhenDurable: already durable -> now; future flush -> completion.
  Append(2);
  EXPECT_EQ(log_->WhenDurable(1, done + 1.0), done + 1.0);
  EXPECT_TRUE(std::isinf(log_->WhenDurable(2, done + 1.0)));
  double done2 = *log_->Flush(done + 1.0);
  EXPECT_EQ(log_->WhenDurable(2, done + 1.0), done2);
}

TEST_F(LogManagerTest, StableTailDurableImmediately) {
  Open(/*stable=*/true);
  Lsn lsn = Append(1);
  EXPECT_EQ(log_->DurableLsn(0.0), lsn);
  EXPECT_EQ(log_->WhenDurable(lsn, 0.0), 0.0);
}

TEST_F(LogManagerTest, CrashDropsUnflushedAndUnlandedBytes) {
  Open();
  Append(1);
  double done1 = *log_->Flush(0.0);  // lands at done1
  Append(2);
  MMDB_ASSERT_OK(log_->Flush(done1));  // lands later
  Append(3);           // never flushed
  // Crash after the first flush landed but before the second.
  MMDB_ASSERT_OK(log_->Crash(done1));
  auto reader = LogReader::Open(env_.get(), "wal.log");
  MMDB_ASSERT_OK(reader);
  EXPECT_EQ(reader->num_records(), 1u);
}

TEST_F(LogManagerTest, StableCrashKeepsEverything) {
  Open(/*stable=*/true);
  Append(1);
  MMDB_ASSERT_OK(log_->Flush(0.0));
  Append(2);
  Append(3);
  MMDB_ASSERT_OK(log_->Crash(0.0));
  auto reader = LogReader::Open(env_.get(), "wal.log");
  MMDB_ASSERT_OK(reader);
  EXPECT_EQ(reader->num_records(), 3u);
}

TEST_F(LogManagerTest, OpenExistingContinuesLsnsAndOffsets) {
  Open();
  Append(1);
  Append(2);
  MMDB_ASSERT_OK(log_->Flush(0.0));
  MMDB_ASSERT_OK(log_->Crash(100.0));  // everything landed

  auto reader = LogReader::Open(env_.get(), "wal.log");
  MMDB_ASSERT_OK(reader);
  ASSERT_EQ(reader->num_records(), 2u);

  LogManager reopened(env_.get(), "wal.log", SystemParams::TestDefaults(),
                      &meter_, false);
  MMDB_ASSERT_OK(reopened.OpenExisting(reader->valid_bytes(), 3));
  EXPECT_EQ(reopened.NextLsn(), 3u);
  EXPECT_EQ(reopened.NextOffset(), reader->valid_bytes());
  // The recovered prefix counts as durable.
  EXPECT_EQ(reopened.DurableLsn(0.0), 2u);
  EXPECT_EQ(reopened.WhenDurable(2, 5.0), 5.0);
  // New appends work and survive their own flush.
  LogRecord r = LogRecord::Commit(9);
  EXPECT_EQ(reopened.Append(&r), 3u);
  MMDB_ASSERT_OK(reopened.Flush(0.0));
  MMDB_ASSERT_OK(reopened.Crash(1000.0));
  auto reader2 = LogReader::Open(env_.get(), "wal.log");
  MMDB_ASSERT_OK(reader2);
  EXPECT_EQ(reader2->num_records(), 3u);
}

TEST_F(LogManagerTest, TruncateBeforeDropsPrefixKeepsOffsets) {
  Open();
  Lsn l1 = Append(1);
  (void)l1;
  MMDB_ASSERT_OK(log_->Flush(0.0));
  uint64_t cut = log_->NextOffset();
  Lsn l2 = Append(2);
  MMDB_ASSERT_OK(log_->Flush(10.0));
  MMDB_ASSERT_OK(log_->Crash(1000.0));  // settle everything into the file

  LogManager reopened(env_.get(), "wal.log", SystemParams::TestDefaults(),
                      &meter_, false);
  MMDB_ASSERT_OK(reopened.OpenExisting(log_->NextOffset(), 3));
  auto dropped = reopened.TruncateBefore(cut);
  MMDB_ASSERT_OK(dropped);
  EXPECT_EQ(*dropped, cut);
  EXPECT_EQ(reopened.BaseOffset(), cut);
  // Idempotent / already-truncated cuts are no-ops.
  auto again = reopened.TruncateBefore(cut);
  MMDB_ASSERT_OK(again);
  EXPECT_EQ(*again, 0u);
  // Past-the-end cuts are rejected.
  EXPECT_FALSE(reopened.TruncateBefore(reopened.NextOffset() + 100).ok());

  // The surviving record is still readable at its ORIGINAL offset.
  auto reader = LogReader::Open(env_.get(), "wal.log");
  MMDB_ASSERT_OK(reader);
  EXPECT_EQ(reader->base_offset(), cut);
  EXPECT_EQ(reader->num_records(), 1u);
  auto rec = reader->RecordAt(cut);
  MMDB_ASSERT_OK(rec);
  EXPECT_EQ(rec->lsn, l2);
  EXPECT_TRUE(reader->RecordAt(0).status().IsNotFound());
}

TEST_F(LogManagerTest, AppendsAfterTruncationSurvive) {
  Open();
  Append(1);
  MMDB_ASSERT_OK(log_->Flush(0.0));
  uint64_t cut = log_->NextOffset();
  MMDB_ASSERT_OK(log_->TruncateBefore(cut).status());
  Lsn l2 = Append(2);
  MMDB_ASSERT_OK(log_->Flush(100.0));
  MMDB_ASSERT_OK(log_->Crash(10000.0));
  auto reader = LogReader::Open(env_.get(), "wal.log");
  MMDB_ASSERT_OK(reader);
  ASSERT_EQ(reader->num_records(), 1u);
  auto rec = reader->RecordAt(cut);
  MMDB_ASSERT_OK(rec);
  EXPECT_EQ(rec->lsn, l2);
}

class LogReaderTest : public testing::Test {
 protected:
  std::string MakeLog(const std::vector<LogRecord>& records) {
    std::string bytes;
    Lsn lsn = 1;
    for (LogRecord r : records) {
      r.lsn = lsn++;
      EncodeLogFrame(r, &bytes);
    }
    return bytes;
  }
};

TEST_F(LogReaderTest, ForwardScanSeesAllRecords) {
  LogReader reader(MakeLog({LogRecord::Commit(1), LogRecord::Commit(2),
                            LogRecord::Commit(3)}));
  EXPECT_FALSE(reader.truncated_tail());
  std::vector<TxnId> seen;
  MMDB_ASSERT_OK(reader.ScanForward(0, [&](const LogRecord& r, uint64_t) {
    seen.push_back(r.txn_id);
    return true;
  }));
  EXPECT_EQ(seen, (std::vector<TxnId>{1, 2, 3}));
}

TEST_F(LogReaderTest, BackwardScanReverses) {
  LogReader reader(MakeLog({LogRecord::Commit(1), LogRecord::Commit(2)}));
  std::vector<TxnId> seen;
  MMDB_ASSERT_OK(reader.ScanBackward([&](const LogRecord& r, uint64_t) {
    seen.push_back(r.txn_id);
    return true;
  }));
  EXPECT_EQ(seen, (std::vector<TxnId>{2, 1}));
}

TEST_F(LogReaderTest, ScanFromSavedOffset) {
  std::string bytes = MakeLog({LogRecord::Commit(1)});
  uint64_t offset = bytes.size();
  LogRecord marker = LogRecord::BeginCheckpoint(1, 0, {});
  marker.lsn = 2;
  EncodeLogFrame(marker, &bytes);
  LogRecord after = LogRecord::Commit(3);
  after.lsn = 3;
  EncodeLogFrame(after, &bytes);

  LogReader reader(std::move(bytes));
  std::vector<Lsn> seen;
  MMDB_ASSERT_OK(
      reader.ScanForward(offset, [&](const LogRecord& r, uint64_t) {
        seen.push_back(r.lsn);
        return true;
      }));
  EXPECT_EQ(seen, (std::vector<Lsn>{2, 3}));
  // Non-boundary offsets are rejected.
  EXPECT_FALSE(reader.ScanForward(offset + 1, [](const LogRecord&, uint64_t) {
    return true;
  }).ok());
}

TEST_F(LogReaderTest, TornTailStopsCleanly) {
  std::string bytes = MakeLog({LogRecord::Commit(1), LogRecord::Commit(2)});
  uint64_t good = bytes.size();
  bytes += MakeLog({LogRecord::Commit(3)}).substr(0, 7);  // partial frame
  LogReader reader(std::move(bytes));
  EXPECT_TRUE(reader.truncated_tail());
  EXPECT_EQ(reader.num_records(), 2u);
  EXPECT_EQ(reader.valid_bytes(), good);
}

TEST_F(LogReaderTest, CorruptPayloadStopsAtCrc) {
  std::string bytes = MakeLog({LogRecord::Commit(1), LogRecord::Commit(2)});
  bytes[6] ^= 0x40;  // flip a payload bit in the first frame
  LogReader reader(std::move(bytes));
  EXPECT_TRUE(reader.truncated_tail());
  EXPECT_EQ(reader.num_records(), 0u);
}

TEST_F(LogReaderTest, FindLastCompleteCheckpoint) {
  std::string bytes;
  Lsn lsn = 1;
  auto append = [&](LogRecord r) {
    r.lsn = lsn++;
    size_t at = bytes.size();
    EncodeLogFrame(r, &bytes);
    return at;
  };
  append(LogRecord::Commit(1));
  uint64_t begin1 = append(LogRecord::BeginCheckpoint(1, 0, {}));
  append(LogRecord::EndCheckpoint(1));
  uint64_t begin2 = append(LogRecord::BeginCheckpoint(2, 0, {}));
  append(LogRecord::EndCheckpoint(2));
  append(LogRecord::BeginCheckpoint(3, 0, {}));  // incomplete: no end

  LogReader reader(std::move(bytes));
  auto marker = reader.FindLastCompleteCheckpoint();
  MMDB_ASSERT_OK(marker);
  EXPECT_EQ(marker->checkpoint_id, 2u);
  EXPECT_EQ(marker->begin_offset, begin2);
  EXPECT_NE(marker->begin_offset, begin1);
}

TEST_F(LogReaderTest, NoCompleteCheckpointIsNotFound) {
  LogReader reader(
      MakeLog({LogRecord::Commit(1), LogRecord::BeginCheckpoint(1, 0, {})}));
  EXPECT_TRUE(reader.FindLastCompleteCheckpoint().status().IsNotFound());
}

TEST_F(LogReaderTest, RecordAtExactOffsets) {
  std::string bytes = MakeLog({LogRecord::Commit(1)});
  uint64_t second = bytes.size();
  LogRecord r2 = LogRecord::Commit(2);
  r2.lsn = 2;
  EncodeLogFrame(r2, &bytes);
  LogReader reader(std::move(bytes));
  auto rec = reader.RecordAt(second);
  MMDB_ASSERT_OK(rec);
  EXPECT_EQ(rec->txn_id, 2u);
  EXPECT_TRUE(reader.RecordAt(second + 1).status().IsNotFound());
}

// LogReader::Open against real, then deliberately damaged, engine-written
// log files. The dividing line under test: damage at the END of the file
// (a torn flush) is expected and survivable, while damage in the MIDDLE —
// with intact frames after it — means committed transactions would be
// silently dropped, and must surface as Corruption.
class DamagedLogFileTest : public testing::Test {
 protected:
  // Writes a real log file with three identically-sized commit frames and
  // returns its raw bytes (16-byte file header + 3 frames).
  void WriteLog() {
    env_ = NewMemEnv();
    LogManager log(env_.get(), "wal.log", SystemParams::TestDefaults(),
                   &meter_, /*stable_log_tail=*/false);
    MMDB_ASSERT_OK(log.Open());
    for (TxnId t = 1; t <= 3; ++t) {
      LogRecord r = LogRecord::Commit(t);
      log.Append(&r);
    }
    MMDB_ASSERT_OK(log.Flush(0.0));
    MMDB_ASSERT_OK(env_->ReadFileToString("wal.log", &bytes_));
    frame_bytes_ = (bytes_.size() - kLogFileHeaderBytes) / 3;
    ASSERT_EQ(bytes_.size(), kLogFileHeaderBytes + 3 * frame_bytes_);
  }

  void Rewrite() {
    MMDB_ASSERT_OK(env_->WriteStringToFile("wal.log", bytes_, /*sync=*/true));
  }

  std::unique_ptr<Env> env_;
  CpuMeter meter_;
  std::string bytes_;
  uint64_t frame_bytes_ = 0;
};

TEST_F(DamagedLogFileTest, MissingFileIsNotFound) {
  auto env = NewMemEnv();
  auto reader = LogReader::Open(env.get(), "nope.log");
  EXPECT_TRUE(reader.status().IsNotFound());
}

TEST_F(DamagedLogFileTest, FlippedHeaderBitIsCorruptionNotEmptyLog) {
  WriteLog();
  bytes_[1] ^= 0x08;  // damage the magic number
  Rewrite();
  auto reader = LogReader::Open(env_.get(), "wal.log");
  EXPECT_TRUE(reader.status().IsCorruption());
  EXPECT_NE(reader.status().ToString().find("not a log file"),
            std::string::npos);
}

TEST_F(DamagedLogFileTest, UnsupportedVersionIsCorruption) {
  WriteLog();
  bytes_[4] = static_cast<char>(0x7f);  // version field
  Rewrite();
  auto reader = LogReader::Open(env_.get(), "wal.log");
  EXPECT_TRUE(reader.status().IsCorruption());
  EXPECT_NE(reader.status().ToString().find("version"), std::string::npos);
}

TEST_F(DamagedLogFileTest, MidLogBitFlipIsCorruptionNotATornTail) {
  WriteLog();
  // Flip one payload bit of the SECOND frame: the first and third frames
  // are intact, so resuming at the last good frame would drop commit 3.
  bytes_[kLogFileHeaderBytes + frame_bytes_ + 6] ^= 0x10;
  Rewrite();
  auto reader = LogReader::Open(env_.get(), "wal.log");
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST_F(DamagedLogFileTest, OverrunLengthFieldIsCorruption) {
  WriteLog();
  // An absurd length in the second frame's header makes the frame overrun
  // the file; with frame 3 intact after it, this is mid-log damage, not a
  // short final write.
  bytes_[kLogFileHeaderBytes + frame_bytes_ + 0] = static_cast<char>(0xff);
  bytes_[kLogFileHeaderBytes + frame_bytes_ + 1] = static_cast<char>(0xff);
  bytes_[kLogFileHeaderBytes + frame_bytes_ + 2] = static_cast<char>(0xff);
  Rewrite();
  auto reader = LogReader::Open(env_.get(), "wal.log");
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST_F(DamagedLogFileTest, TruncatedFinalFrameIsASurvivableTornTail) {
  WriteLog();
  bytes_.resize(bytes_.size() - 5);  // tear the last frame
  Rewrite();
  auto reader = LogReader::Open(env_.get(), "wal.log");
  MMDB_ASSERT_OK(reader);
  EXPECT_TRUE(reader->truncated_tail());
  EXPECT_EQ(reader->num_records(), 2u);
  EXPECT_EQ(reader->valid_bytes(), 2 * frame_bytes_);
}

TEST_F(DamagedLogFileTest, CorruptTailFrameIsAlsoSurvivable) {
  WriteLog();
  // Damage confined to the LAST frame reads as a torn tail even at full
  // length: nothing valid follows it, so nothing committed is lost beyond
  // the tail itself.
  bytes_[kLogFileHeaderBytes + 2 * frame_bytes_ + 6] ^= 0x10;
  Rewrite();
  auto reader = LogReader::Open(env_.get(), "wal.log");
  MMDB_ASSERT_OK(reader);
  EXPECT_TRUE(reader->truncated_tail());
  EXPECT_EQ(reader->num_records(), 2u);
}

}  // namespace
}  // namespace mmdb
