// Cold-restart (Engine::OpenExisting) and log-truncation tests: a new
// engine process picking up the files an earlier one left behind, and
// bounded log growth across checkpoints.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "wal/log_reader.h"

namespace mmdb {
namespace {

struct RestartCase {
  Algorithm algorithm;
  uint32_t shards;
};

// Parameterized over every algorithm x {1, 4} shards: restart and
// truncation invariants (checkpoint numbering, ping-pong alternation, log
// base handling) must be algorithm-independent and hold identically when
// the log is split into per-shard streams, and the modern snapshot
// algorithms reuse backup state across restarts just like the 1989 six.
class RestartTest : public testing::TestWithParam<RestartCase> {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  EngineOptions Options() const {
    EngineOptions opt = TinyOptions();
    opt.algorithm = GetParam().algorithm;
    opt.stable_log_tail = GetParam().algorithm == Algorithm::kFastFuzzy;
    opt.shards = GetParam().shards;
    return opt;
  }

  std::unique_ptr<Engine> MustOpen(const EngineOptions& opt) {
    auto engine = Engine::Open(opt, env_.get());
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(*engine);
  }

  std::unique_ptr<Env> env_;
};

TEST_P(RestartTest, OpenExistingRequiresPriorState) {
  EngineOptions opt = Options();
  auto engine = Engine::OpenExisting(opt, env_.get());
  EXPECT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsNotFound());
}

TEST_P(RestartTest, RestartRecoversDurableStateAndContinues) {
  EngineOptions opt = Options();
  std::string image1, image2, image3;
  Lsn last_lsn = 0;
  {
    auto engine = MustOpen(opt);
    image1 = MakeRecordImage(engine->db().record_bytes(), 1, 11);
    image2 = MakeRecordImage(engine->db().record_bytes(), 2, 22);
    MMDB_ASSERT_OK(engine->Apply({{1, image1}}).status());
    MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
    auto lsn = engine->Apply({{2, image2}});  // post-checkpoint, log-only
    MMDB_ASSERT_OK(lsn);
    last_lsn = *lsn;
    engine->FlushLog();
    MMDB_ASSERT_OK(engine->AdvanceTime(1.0));
    // Engine object destroyed without a clean shutdown: volatile state
    // (primary memory) is simply gone, like a process kill.
  }

  auto reopened = Engine::OpenExisting(opt, env_.get());
  MMDB_ASSERT_OK(reopened);
  Engine& engine = **reopened;
  EXPECT_EQ(engine.ReadRecordRaw(1), std::string_view(image1));
  EXPECT_EQ(engine.ReadRecordRaw(2), std::string_view(image2));

  // LSNs continue past the old log's records.
  image3 = MakeRecordImage(engine.db().record_bytes(), 3, 33);
  auto lsn = engine.Apply({{3, image3}});
  MMDB_ASSERT_OK(lsn);
  EXPECT_GT(*lsn, last_lsn);

  // Checkpoint numbering continues, so the ping-pong alternation holds:
  // checkpoint 1 wrote copy 1, the next must be id 2 -> copy 0.
  MMDB_ASSERT_OK(engine.RunCheckpointToCompletion());
  auto meta = engine.backup()->ReadMeta();
  MMDB_ASSERT_OK(meta);
  EXPECT_EQ(meta->checkpoint_id, 2u);
  EXPECT_EQ(meta->copy, 0u);
  VerifyAuditTrail(&engine);
}

TEST_P(RestartTest, SecondRestartAfterMoreWork) {
  EngineOptions opt = Options();
  std::string a, b;
  {
    auto engine = MustOpen(opt);
    a = MakeRecordImage(engine->db().record_bytes(), 10, 1);
    MMDB_ASSERT_OK(engine->Apply({{10, a}}).status());
    MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
  }
  {
    auto engine = Engine::OpenExisting(opt, env_.get());
    MMDB_ASSERT_OK(engine);
    b = MakeRecordImage((*engine)->db().record_bytes(), 11, 2);
    MMDB_ASSERT_OK((*engine)->Apply({{11, b}}).status());
    MMDB_ASSERT_OK((*engine)->RunCheckpointToCompletion());
  }
  auto engine = Engine::OpenExisting(opt, env_.get());
  MMDB_ASSERT_OK(engine);
  EXPECT_EQ((*engine)->ReadRecordRaw(10), std::string_view(a));
  EXPECT_EQ((*engine)->ReadRecordRaw(11), std::string_view(b));
  VerifyAuditTrail(engine->get());
}

TEST_P(RestartTest, GeometryMismatchRejected) {
  EngineOptions opt = Options();
  {
    auto engine = MustOpen(opt);
    MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
  }
  EngineOptions other = opt;
  other.params.db.segment_words = 2048;  // different geometry, same dir
  auto engine = Engine::OpenExisting(other, env_.get());
  EXPECT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument()) << engine.status();
}

TEST_P(RestartTest, RestartAfterPowerFailureMatchesOracle) {
  EngineOptions opt = Options();
  WorkloadOptions wopt;
  wopt.duration = 1.0;
  wopt.seed = 31;

  auto engine = MustOpen(opt);
  WorkloadDriver driver(engine.get(), wopt);
  MMDB_ASSERT_OK(driver.Run());
  Lsn durable = engine->DurableLsn();
  // Power failure, then the process dies: Crash() strips everything whose
  // modeled I/O had not completed, so the restart sees exactly the durable
  // state.
  MMDB_ASSERT_OK(engine->Crash());
  engine.reset();

  auto reopened = Engine::OpenExisting(opt, env_.get());
  MMDB_ASSERT_OK(reopened);
  VerifyRecovered(**reopened, driver, durable);
  VerifyAuditTrail(reopened->get());
}

TEST_P(RestartTest, RestartWithoutPowerFailureRecoversAtLeastDurable) {
  // Destroying the engine WITHOUT Crash() models a process kill where
  // issued log writes still reach the disk: the restart may legitimately
  // recover MORE than the durability floor, but never less, and never a
  // value that was not committed.
  if (Options().stable_log_tail) {
    // With a stable tail, DurableLsn() counts commits living in stable RAM
    // that have no file backing yet; Crash() models the NVRAM surviving,
    // but a bare destructor drops it, which is outside the stable-tail
    // failure model. The power-failure variant above covers this config.
    GTEST_SKIP();
  }
  EngineOptions opt = Options();
  WorkloadOptions wopt;
  wopt.duration = 1.0;
  wopt.seed = 33;

  auto engine = MustOpen(opt);
  WorkloadDriver driver(engine.get(), wopt);
  MMDB_ASSERT_OK(driver.Run());
  Lsn durable = engine->DurableLsn();
  engine.reset();

  auto reopened = Engine::OpenExisting(opt, env_.get());
  MMDB_ASSERT_OK(reopened);
  const std::string zeros((*reopened)->db().record_bytes(), '\0');
  for (const auto& [record, commits] : driver.history()) {
    std::string_view actual = (*reopened)->ReadRecordRaw(record);
    // The recovered value must be one of the committed images (or zeros if
    // nothing durable), and at least as new as the newest durable one.
    Lsn newest_durable = kInvalidLsn;
    Lsn actual_lsn = kInvalidLsn;
    bool found = actual == std::string_view(zeros);
    for (const auto& commit : commits) {
      if (commit.lsn <= durable) newest_durable = commit.lsn;
      if (actual == std::string_view(commit.image)) {
        actual_lsn = commit.lsn;
        found = true;
      }
    }
    ASSERT_TRUE(found) << "record " << record
                       << " holds a value that was never committed";
    ASSERT_GE(actual_lsn, newest_durable)
        << "record " << record << " regressed below the durable state";
  }
  VerifyAuditTrail(reopened->get());
}

TEST_P(RestartTest, TruncationBoundsLogAndKeepsRecoveryWorking) {
  EngineOptions opt = Options();
  opt.truncate_log_at_checkpoint = true;

  auto engine = MustOpen(opt);
  WorkloadOptions wopt;
  wopt.duration = 1.5;
  wopt.seed = 37;
  WorkloadDriver driver(engine.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  ASSERT_GE(result->checkpoints_completed, 2u);

  // The log's base moved: the stream files together hold only the
  // replayable suffix (physically smaller than the logical history).
  EXPECT_GT(engine->log()->BaseOffset(), 0u);
  uint64_t physical = 0;
  for (const std::string& path : engine->LogPaths()) {
    auto file_size = env_->FileSize(path);
    MMDB_ASSERT_OK(file_size);
    physical += *file_size;
  }
  EXPECT_LT(physical, engine->log()->NextOffset());

  // Metadata offsets still resolve against the truncated file.
  Lsn durable = engine->DurableLsn();
  MMDB_ASSERT_OK(engine->Crash());
  MMDB_ASSERT_OK(engine->Recover());
  VerifyRecovered(*engine, driver, durable);
  VerifyAuditTrail(engine.get());
}

TEST_P(RestartTest, TruncationThenRestart) {
  EngineOptions opt = Options();
  opt.truncate_log_at_checkpoint = true;
  std::string image;
  {
    auto engine = MustOpen(opt);
    image = MakeRecordImage(engine->db().record_bytes(), 5, 55);
    MMDB_ASSERT_OK(engine->Apply({{5, image}}).status());
    MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
    MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
    EXPECT_GT(engine->log()->BaseOffset(), 0u);
  }
  auto engine = Engine::OpenExisting(opt, env_.get());
  MMDB_ASSERT_OK(engine);
  EXPECT_EQ((*engine)->ReadRecordRaw(5), std::string_view(image));
  // And the reopened log carries the base forward.
  EXPECT_GT((*engine)->log()->BaseOffset(), 0u);
  VerifyAuditTrail(engine->get());
}

TEST_P(RestartTest, TruncatedPrefixIsGoneFromTheReader) {
  EngineOptions opt = Options();
  opt.truncate_log_at_checkpoint = true;
  auto engine = MustOpen(opt);
  // Touch one record per segment so every shard's stream takes frames and
  // the truncation cut moves every stream's base, not just stream 0's.
  const uint32_t rps = engine->params().db.records_per_segment();
  for (SegmentId s = 0; s < engine->db().num_segments(); ++s) {
    RecordId rec = s * rps;
    MMDB_ASSERT_OK(
        engine
            ->Apply(
                {{rec, MakeRecordImage(engine->db().record_bytes(), rec, 1)}})
            .status());
  }
  MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
  uint64_t base = engine->log()->BaseOffset();
  ASSERT_GT(base, 0u);
  MMDB_ASSERT_OK(engine->Crash());

  // The merged view of the stream files (the plain single-file reader at
  // one shard) carries the global base forward; offsets below it are gone.
  // Branch on the engine's EFFECTIVE layout, not the configured case: the
  // MMDB_SHARDS override (check.sh's tsan shard lane) can widen a
  // nominally single-shard case, and stream 0 alone is then not the log.
  auto reader =
      engine->shards().shards == 1
          ? LogReader::Open(env_.get(), engine->LogPath())
          : LogReader::OpenStreams(env_.get(), engine->LogPaths(), nullptr);
  MMDB_ASSERT_OK(reader);
  EXPECT_EQ(reader->base_offset(), base);
  // Scanning from 0 is now invalid; scanning from the base works.
  EXPECT_FALSE(
      reader->ScanForward(0, [](const LogRecord&, uint64_t) { return true; })
          .ok());
  MMDB_EXPECT_OK(reader->ScanForward(
      base, [](const LogRecord&, uint64_t) { return true; }));
}

std::vector<RestartCase> AllRestartCases() {
  std::vector<RestartCase> cases;
  for (Algorithm a : kAllAlgorithms) {
    for (uint32_t shards : {1u, 4u}) cases.push_back({a, shards});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, RestartTest, testing::ValuesIn(AllRestartCases()),
    [](const testing::TestParamInfo<RestartCase>& info) {
      std::string name(AlgorithmName(info.param.algorithm));
      if (info.param.shards > 1) {
        name += "_shards" + std::to_string(info.param.shards);
      }
      return name;
    });

}  // namespace
}  // namespace mmdb
