// Workload driver tests: arrival statistics, metric plumbing, determinism,
// and qualitative overhead ordering across algorithms at engine scale.

#include <memory>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

std::unique_ptr<Engine> OpenEngine(std::unique_ptr<Env>& env,
                                   Algorithm algorithm,
                                   bool stable = false) {
  EngineOptions opt = TinyOptions();
  opt.algorithm = algorithm;
  opt.stable_log_tail = stable;
  env = NewMemEnv();
  auto engine = Engine::Open(opt, env.get());
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(*engine);
}

TEST(WorkloadTest, ArrivalRateApproximatesLambda) {
  std::unique_ptr<Env> env;
  auto engine = OpenEngine(env, Algorithm::kFuzzyCopy);
  WorkloadOptions wopt;
  wopt.duration = 2.0;
  wopt.run_checkpoints = false;
  WorkloadDriver driver(engine.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  // lambda = 1000/s over 2s: expect ~2000 +- 10%.
  EXPECT_NEAR(static_cast<double>(result->committed), 2000.0, 200.0);
  EXPECT_EQ(result->attempts, result->committed);  // no checkpoint, no aborts
  EXPECT_EQ(result->color_restarts, 0u);
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  uint64_t commits[2];
  double overhead[2];
  for (int run = 0; run < 2; ++run) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, Algorithm::kCouCopy);
    WorkloadOptions wopt;
    wopt.duration = 0.5;
    wopt.seed = 99;
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    MMDB_ASSERT_OK(result);
    commits[run] = result->committed;
    overhead[run] = result->overhead_per_txn;
  }
  EXPECT_EQ(commits[0], commits[1]);
  EXPECT_DOUBLE_EQ(overhead[0], overhead[1]);
}

TEST(WorkloadTest, CheckpointsRunBackToBack) {
  std::unique_ptr<Env> env;
  auto engine = OpenEngine(env, Algorithm::kFuzzyCopy);
  WorkloadOptions wopt;
  wopt.duration = 4.0;
  WorkloadDriver driver(engine.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  EXPECT_GE(result->checkpoints_completed, 3u);
  EXPECT_GT(result->avg_checkpoint_duration, 0.0);
  EXPECT_GT(result->segments_flushed_per_ckpt, 0.0);
  EXPECT_GT(result->overhead_per_txn, 0.0);
}

TEST(WorkloadTest, TwoColorRestartsOnlyUnderTwoColor) {
  for (Algorithm a : {Algorithm::kFuzzyCopy, Algorithm::kCouCopy,
                      Algorithm::kTwoColorCopy}) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, a);
    WorkloadOptions wopt;
    wopt.duration = 0.5;
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    MMDB_ASSERT_OK(result);
    if (a == Algorithm::kTwoColorCopy) {
      EXPECT_GT(result->color_restarts, 0u);
    } else {
      EXPECT_EQ(result->color_restarts, 0u) << AlgorithmName(a);
    }
  }
}

TEST(WorkloadTest, TwoColorCostsMoreThanCouAndFuzzy) {
  // The paper's headline qualitative result (Figure 4a) at engine scale:
  // two-color overhead >> COU ~ fuzzy. A 256-segment database keeps the
  // sweep (and hence the color-conflict window) long enough for restarts
  // to dominate, as at paper scale.
  double overhead_fuzzy, overhead_cou, overhead_2c;
  auto measure = [&](Algorithm a) {
    EngineOptions opt = TinyOptions();
    opt.params.db.db_words = 256 * 1024;  // 256 segments
    opt.algorithm = a;
    auto env = NewMemEnv();
    auto engine = Engine::Open(opt, env.get());
    EXPECT_TRUE(engine.ok()) << engine.status();
    WorkloadOptions wopt;
    wopt.duration = 1.5;
    WorkloadDriver driver(engine->get(), wopt);
    auto result = driver.Run();
    EXPECT_TRUE(result.ok());
    return result->overhead_per_txn;
  };
  overhead_fuzzy = measure(Algorithm::kFuzzyCopy);
  overhead_cou = measure(Algorithm::kCouCopy);
  overhead_2c = measure(Algorithm::kTwoColorCopy);
  EXPECT_GT(overhead_2c, 2.0 * overhead_fuzzy);
  EXPECT_GT(overhead_2c, 2.0 * overhead_cou);
  // COU within a factor ~2.5 of fuzzy ("no more costly than fuzzy" up to
  // sync locking differences at this tiny scale).
  EXPECT_LT(overhead_cou, 2.5 * overhead_fuzzy);
}

TEST(WorkloadTest, FastFuzzyIsCheapest) {
  auto measure = [&](Algorithm a, bool stable) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, a, stable);
    WorkloadOptions wopt;
    wopt.duration = 1.0;
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    EXPECT_TRUE(result.ok());
    return result->overhead_per_txn;
  };
  double fast = measure(Algorithm::kFastFuzzy, true);
  double fuzzy = measure(Algorithm::kFuzzyCopy, false);
  EXPECT_LT(fast, fuzzy);
}

TEST(WorkloadTest, LongerIntervalLowersOverhead) {
  auto measure = [&](double interval) {
    EngineOptions opt = TinyOptions();
    opt.algorithm = Algorithm::kCouCopy;
    opt.checkpoint_interval = interval;
    auto env = NewMemEnv();
    auto engine = Engine::Open(opt, env.get());
    EXPECT_TRUE(engine.ok());
    WorkloadOptions wopt;
    wopt.duration = 2.0;
    WorkloadDriver driver(engine->get(), wopt);
    auto result = driver.Run();
    EXPECT_TRUE(result.ok());
    return result->overhead_per_txn;
  };
  double fast = measure(0.0);
  double slow = measure(0.5);
  EXPECT_LT(slow, fast);
}

TEST(WorkloadTest, MakeRecordImageDeterministicAndDistinct) {
  std::string a1 = MakeRecordImage(128, 7, 42);
  std::string a2 = MakeRecordImage(128, 7, 42);
  std::string b = MakeRecordImage(128, 7, 43);
  std::string c = MakeRecordImage(128, 8, 42);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_NE(a1, c);
  EXPECT_EQ(a1.size(), 128u);
}

}  // namespace
}  // namespace mmdb
