// Workload driver tests: arrival statistics, metric plumbing, determinism,
// and qualitative overhead ordering across algorithms at engine scale.

#include <algorithm>
#include <memory>
#include <tuple>
#include <utility>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

std::unique_ptr<Engine> OpenEngine(std::unique_ptr<Env>& env,
                                   Algorithm algorithm,
                                   bool stable = false) {
  EngineOptions opt = TinyOptions();
  opt.algorithm = algorithm;
  opt.stable_log_tail = stable;
  env = NewMemEnv();
  auto engine = Engine::Open(opt, env.get());
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(*engine);
}

TEST(WorkloadTest, ArrivalRateApproximatesLambda) {
  std::unique_ptr<Env> env;
  auto engine = OpenEngine(env, Algorithm::kFuzzyCopy);
  WorkloadOptions wopt;
  wopt.duration = 2.0;
  wopt.run_checkpoints = false;
  WorkloadDriver driver(engine.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  // lambda = 1000/s over 2s: expect ~2000 +- 10%.
  EXPECT_NEAR(static_cast<double>(result->committed), 2000.0, 200.0);
  EXPECT_EQ(result->attempts, result->committed);  // no checkpoint, no aborts
  EXPECT_EQ(result->color_restarts, 0u);
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  uint64_t commits[2];
  double overhead[2];
  for (int run = 0; run < 2; ++run) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, Algorithm::kCouCopy);
    WorkloadOptions wopt;
    wopt.duration = 0.5;
    wopt.seed = 99;
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    MMDB_ASSERT_OK(result);
    commits[run] = result->committed;
    overhead[run] = result->overhead_per_txn;
  }
  EXPECT_EQ(commits[0], commits[1]);
  EXPECT_DOUBLE_EQ(overhead[0], overhead[1]);
}

TEST(WorkloadTest, CheckpointsRunBackToBack) {
  std::unique_ptr<Env> env;
  auto engine = OpenEngine(env, Algorithm::kFuzzyCopy);
  WorkloadOptions wopt;
  wopt.duration = 4.0;
  WorkloadDriver driver(engine.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  EXPECT_GE(result->checkpoints_completed, 3u);
  EXPECT_GT(result->avg_checkpoint_duration, 0.0);
  EXPECT_GT(result->segments_flushed_per_ckpt, 0.0);
  EXPECT_GT(result->overhead_per_txn, 0.0);
}

TEST(WorkloadTest, TwoColorRestartsOnlyUnderTwoColor) {
  for (Algorithm a : {Algorithm::kFuzzyCopy, Algorithm::kCouCopy,
                      Algorithm::kTwoColorCopy}) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, a);
    WorkloadOptions wopt;
    wopt.duration = 0.5;
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    MMDB_ASSERT_OK(result);
    if (a == Algorithm::kTwoColorCopy) {
      EXPECT_GT(result->color_restarts, 0u);
    } else {
      EXPECT_EQ(result->color_restarts, 0u) << AlgorithmName(a);
    }
  }
}

TEST(WorkloadTest, TwoColorCostsMoreThanCouAndFuzzy) {
  // The paper's headline qualitative result (Figure 4a) at engine scale:
  // two-color overhead >> COU ~ fuzzy. A 256-segment database keeps the
  // sweep (and hence the color-conflict window) long enough for restarts
  // to dominate, as at paper scale.
  double overhead_fuzzy, overhead_cou, overhead_2c;
  auto measure = [&](Algorithm a) {
    EngineOptions opt = TinyOptions();
    opt.params.db.db_words = 256 * 1024;  // 256 segments
    opt.algorithm = a;
    auto env = NewMemEnv();
    auto engine = Engine::Open(opt, env.get());
    EXPECT_TRUE(engine.ok()) << engine.status();
    WorkloadOptions wopt;
    wopt.duration = 1.5;
    WorkloadDriver driver(engine->get(), wopt);
    auto result = driver.Run();
    EXPECT_TRUE(result.ok());
    return result->overhead_per_txn;
  };
  overhead_fuzzy = measure(Algorithm::kFuzzyCopy);
  overhead_cou = measure(Algorithm::kCouCopy);
  overhead_2c = measure(Algorithm::kTwoColorCopy);
  EXPECT_GT(overhead_2c, 2.0 * overhead_fuzzy);
  EXPECT_GT(overhead_2c, 2.0 * overhead_cou);
  // COU within a factor ~2.5 of fuzzy ("no more costly than fuzzy" up to
  // sync locking differences at this tiny scale).
  EXPECT_LT(overhead_cou, 2.5 * overhead_fuzzy);
}

TEST(WorkloadTest, FastFuzzyIsCheapest) {
  auto measure = [&](Algorithm a, bool stable) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, a, stable);
    WorkloadOptions wopt;
    wopt.duration = 1.0;
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    EXPECT_TRUE(result.ok());
    return result->overhead_per_txn;
  };
  double fast = measure(Algorithm::kFastFuzzy, true);
  double fuzzy = measure(Algorithm::kFuzzyCopy, false);
  EXPECT_LT(fast, fuzzy);
}

TEST(WorkloadTest, LongerIntervalLowersOverhead) {
  auto measure = [&](double interval) {
    EngineOptions opt = TinyOptions();
    opt.algorithm = Algorithm::kCouCopy;
    opt.checkpoint_interval = interval;
    auto env = NewMemEnv();
    auto engine = Engine::Open(opt, env.get());
    EXPECT_TRUE(engine.ok());
    WorkloadOptions wopt;
    wopt.duration = 2.0;
    WorkloadDriver driver(engine->get(), wopt);
    auto result = driver.Run();
    EXPECT_TRUE(result.ok());
    return result->overhead_per_txn;
  };
  double fast = measure(0.0);
  double slow = measure(0.5);
  EXPECT_LT(slow, fast);
}

// The virtual-clock attribution identity: for every algorithm, the five
// per-cause components must reproduce the summed arrival-to-commit latency
// (the clock only advances between arrival and commit during admission
// stalls, retry waits, and head-of-line queueing behind a stalled
// predecessor).
TEST(WorkloadTest, AttributionIdentityHoldsPerAlgorithm) {
  for (Algorithm a : kAllAlgorithms) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, a, /*stable=*/a == Algorithm::kFastFuzzy);
    WorkloadOptions wopt;
    wopt.duration = 1.0;
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    MMDB_ASSERT_OK(result);
    const double sum =
        result->stall_quiesce_seconds + result->stall_ckpt_lock_seconds +
        result->stall_recovery_wait_seconds + result->backoff_color_seconds +
        result->backoff_lock_seconds + result->queue_seconds;
    EXPECT_NEAR(sum, result->latency_total_seconds,
                1e-9 * std::max(1.0, result->latency_total_seconds))
        << AlgorithmName(a);
    // The histogram records the same population (in microseconds).
    EXPECT_EQ(result->latency.count(), result->committed) << AlgorithmName(a);
    EXPECT_NEAR(result->latency.sum() / 1e6, result->latency_total_seconds,
                1e-6 * std::max(1.0, result->latency_total_seconds))
        << AlgorithmName(a);
  }
}

TEST(WorkloadTest, QuiesceStallsAttributedOnlyToCou) {
  // COUCOPY is the only quiesce-at-begin algorithm: its checkpoints drain
  // transactions behind an admission barrier, which must surface as the
  // quiesce cause — and never as color backoff (COU has no color aborts).
  std::unique_ptr<Env> env;
  auto engine = OpenEngine(env, Algorithm::kCouCopy);
  WorkloadOptions wopt;
  wopt.duration = 1.0;
  WorkloadDriver driver(engine.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  EXPECT_GT(result->stall_quiesce_seconds, 0.0);
  EXPECT_EQ(result->backoff_color_seconds, 0.0);
  EXPECT_EQ(result->color_restarts, 0u);
}

TEST(WorkloadTest, ColorBackoffAttributedToTwoColor) {
  std::unique_ptr<Env> env;
  auto engine = OpenEngine(env, Algorithm::kTwoColorCopy);
  WorkloadOptions wopt;
  wopt.duration = 1.0;
  WorkloadDriver driver(engine.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  EXPECT_GT(result->color_restarts, 0u);
  EXPECT_GT(result->backoff_color_seconds, 0.0);
  EXPECT_EQ(result->stall_quiesce_seconds, 0.0);
}

TEST(WorkloadTest, AdversarialZipfDeterministicAndSkewed) {
  // Two-color checkpointing reacts to key placement (aborts depend on the
  // sweep position vs the written segments), so zipf skew must visibly
  // change the run, and replaying it must be bit-for-bit identical.
  auto run = [](WorkloadOptions::KeyDist dist) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, Algorithm::kTwoColorCopy);
    WorkloadOptions wopt;
    wopt.duration = 1.0;
    wopt.key_dist = dist;
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    EXPECT_TRUE(result.ok());
    return std::make_tuple(result->committed, result->color_restarts,
                           result->latency_total_seconds);
  };
  auto zipf1 = run(WorkloadOptions::KeyDist::kZipf);
  auto zipf2 = run(WorkloadOptions::KeyDist::kZipf);
  auto uniform = run(WorkloadOptions::KeyDist::kUniform);
  EXPECT_EQ(zipf1, zipf2);  // bit-for-bit replayable
  // Skew changes the draw stream, so the runs must actually differ.
  EXPECT_NE(zipf1, uniform);
}

TEST(WorkloadTest, AdversarialModesKeepAttributionIdentity) {
  // Zipf skew + hot churn + read mix together, under the most
  // interference-prone algorithms.
  for (Algorithm a : {Algorithm::kCouCopy, Algorithm::kTwoColorCopy}) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, a);
    WorkloadOptions wopt;
    wopt.duration = 1.0;
    wopt.key_dist = WorkloadOptions::KeyDist::kZipf;
    wopt.zipf_theta = 0.99;
    wopt.hot_churn_interval = 0.25;
    wopt.read_fraction = 0.3;
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    MMDB_ASSERT_OK(result);
    EXPECT_GT(result->committed, 0u);
    EXPECT_GT(result->read_txns, 0u);
    EXPECT_LT(result->read_txns, result->committed);
    const double sum =
        result->stall_quiesce_seconds + result->stall_ckpt_lock_seconds +
        result->stall_recovery_wait_seconds + result->backoff_color_seconds +
        result->backoff_lock_seconds + result->queue_seconds;
    EXPECT_NEAR(sum, result->latency_total_seconds,
                1e-9 * std::max(1.0, result->latency_total_seconds))
        << AlgorithmName(a);
  }
}

TEST(WorkloadTest, QueueingAmplifiesCheckpointStalls) {
  // Flush-during-lock algorithms hold segment locks across disk writes; in
  // the serial open-loop driver one such stall delays every arrival queued
  // behind it, so the aggregate queueing time must dwarf the stalls that
  // caused it — the interference amplification the queueing attribution
  // component exists to expose.
  std::unique_ptr<Env> env;
  auto engine = OpenEngine(env, Algorithm::kTwoColorFlush);
  WorkloadOptions wopt;
  wopt.duration = 1.0;
  WorkloadDriver driver(engine.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  EXPECT_GT(result->stall_ckpt_lock_seconds, 0.0);
  EXPECT_GT(result->queue_seconds, result->stall_ckpt_lock_seconds);
}

TEST(WorkloadTest, ReadOnlyTxnsLeaveNoHistory) {
  // A 100% read workload commits transactions but never updates the
  // oracle: recovery verification would expect an all-zero database.
  std::unique_ptr<Env> env;
  auto engine = OpenEngine(env, Algorithm::kFuzzyCopy);
  WorkloadOptions wopt;
  wopt.duration = 0.5;
  wopt.read_fraction = 1.0;
  wopt.run_checkpoints = false;
  WorkloadDriver driver(engine.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  EXPECT_GT(result->committed, 0u);
  EXPECT_EQ(result->read_txns, result->committed);
  EXPECT_TRUE(driver.history().empty());
}

TEST(WorkloadTest, DefaultDrawStreamUnchangedByAdversarialPlumbing) {
  // The adversarial controls must not perturb the default workload's RNG
  // stream: explicit defaults and the implicit ones must agree exactly.
  auto run = [](bool set_defaults_explicitly) {
    std::unique_ptr<Env> env;
    auto engine = OpenEngine(env, Algorithm::kTwoColorCopy);
    WorkloadOptions wopt;
    wopt.duration = 0.5;
    if (set_defaults_explicitly) {
      wopt.key_dist = WorkloadOptions::KeyDist::kUniform;
      wopt.hot_churn_interval = 0.0;
      wopt.read_fraction = 0.0;
    }
    WorkloadDriver driver(engine.get(), wopt);
    auto result = driver.Run();
    EXPECT_TRUE(result.ok());
    return std::make_pair(result->committed, result->latency_total_seconds);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(WorkloadTest, MakeRecordImageDeterministicAndDistinct) {
  std::string a1 = MakeRecordImage(128, 7, 42);
  std::string a2 = MakeRecordImage(128, 7, 42);
  std::string b = MakeRecordImage(128, 7, 43);
  std::string c = MakeRecordImage(128, 8, 42);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_NE(a1, c);
  EXPECT_EQ(a1.size(), 128u);
}

}  // namespace
}  // namespace mmdb
