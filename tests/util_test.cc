// Unit tests for util/: Status, StatusOr, coding, CRC32C, Random,
// Histogram, string helpers.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "tests/test_util.h"

#include "gtest/gtest.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/json.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"

namespace mmdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = AbortedError("two-color violation");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(s.ToString(), "ABORTED: two-color violation");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(InvalidArgumentError("x").IsInvalidArgument());
  EXPECT_TRUE(NotFoundError("x").IsNotFound());
  EXPECT_TRUE(CorruptionError("x").IsCorruption());
  EXPECT_TRUE(IoError("x").IsIoError());
  EXPECT_TRUE(FailedPreconditionError("x").IsFailedPrecondition());
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(NotSupportedError("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> bad = NotFoundError("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(bad.value_or(-1), -1);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  MMDB_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseHalf(7, &out).IsInvalidArgument());
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefull);
  std::string_view in = buf;
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,           1,          127,
                            128,         16383,      16384,
                            (1ull << 32) - 1, 1ull << 32, UINT64_MAX};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    std::string_view in = buf;
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, (1ull << 32));
  std::string_view in = buf;
  uint32_t out;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(CodingTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  std::string_view in = buf;
  uint64_t out;
  EXPECT_FALSE(GetVarint64(&in, &out));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'x'));
  std::string_view in = buf;
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(300, 'x'));
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: CRC-32C of 32 zero bytes.
  char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);
  // "123456789" -> 0xe3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
}

TEST(Crc32cTest, Rfc3720Vectors) {
  // RFC 3720 §B.4 CRC32C test patterns (CRC bytes there are the
  // little-endian encoding of these values).
  char buf[32];
  std::memset(buf, 0, sizeof(buf));
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x8a9136aau);
  std::memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x62a8ab43u);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x46dd794eu);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x113fdb5cu);
  unsigned char iscsi_read_pdu[48] = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x04, 0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00};
  EXPECT_EQ(crc32c::Value(reinterpret_cast<char*>(iscsi_read_pdu),
                          sizeof(iscsi_read_pdu)),
            0xd9963a56u);
}

TEST(Crc32cTest, SlicedKernelMatchesBytewiseReference) {
  // The slice-by-8 production kernel must agree with the byte-at-a-time
  // reference on every length (covering the 8-byte block boundary), every
  // alignment, and under arbitrary init_crc continuation.
  Random rng(301);
  std::string data;
  for (int i = 0; i < 4096; ++i) {
    data.push_back(static_cast<char>(rng.Uniform(256)));
  }
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                     size_t{15}, size_t{16}, size_t{63}, size_t{64},
                     size_t{100}, size_t{1000}, size_t{4096}}) {
    for (size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{5}}) {
      if (offset + len > data.size()) continue;
      EXPECT_EQ(crc32c::Extend(0, data.data() + offset, len),
                crc32c::ExtendBytewise(0, data.data() + offset, len))
          << "len=" << len << " offset=" << offset;
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    size_t offset = rng.Uniform(64);
    size_t len = rng.Uniform(static_cast<uint32_t>(data.size() - offset));
    uint32_t init = rng.Next();
    EXPECT_EQ(crc32c::Extend(init, data.data() + offset, len),
              crc32c::ExtendBytewise(init, data.data() + offset, len))
        << "trial=" << trial;
  }
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string data = "hello world, checkpointing";
  uint32_t whole = crc32c::Value(data);
  uint32_t split = crc32c::Extend(crc32c::Value(data.substr(0, 10)),
                                  data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskUnmaskInverse) {
  for (uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(v)), v);
    EXPECT_NE(crc32c::Mask(v), v);
  }
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(17);
    EXPECT_LT(v, 17u);
  }
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(17));
  EXPECT_EQ(seen.size(), 17u);  // all values hit
}

TEST(RandomTest, ExponentialMeanApproximatelyCorrect) {
  Random rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.25);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_NEAR(h.StandardDeviation(), std::sqrt(2.0), 1e-9);
}

TEST(HistogramTest, PercentilesMonotone) {
  Histogram h;
  Random rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextDouble() * 1000.0);
  double last = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_NEAR(h.Percentile(50), 500.0, 60.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram h;
  h.Add(42.0);
  // A single sample is every percentile, and out-of-range p clamps to the
  // exact extremes rather than extrapolating.
  for (double p : {-5.0, 0.0, 1.0, 50.0, 99.9, 100.0, 250.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 42.0) << "p=" << p;
  }
  Histogram two;
  two.Add(1.0);
  two.Add(1000.0);
  EXPECT_DOUBLE_EQ(two.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(two.Percentile(100), 1000.0);
  double p50 = two.Percentile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 1000.0);
  // Negative samples clamp to zero (the underflow bucket) and stay the
  // minimum at every percentile below the next sample.
  Histogram neg;
  neg.Add(-3.0);
  neg.Add(5.0);
  EXPECT_DOUBLE_EQ(neg.min(), 0.0);
  EXPECT_DOUBLE_EQ(neg.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(neg.Percentile(100), 5.0);
}

TEST(HistogramTest, MergeEdgeCases) {
  // Merging an empty histogram is a no-op, in both directions: the empty
  // side's sentinel min must not leak through.
  Histogram a, empty;
  a.Add(2.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);

  Histogram b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.Percentile(50), 2.0);

  // Merge must equal adding the same samples to one histogram, including
  // the bucketed percentile state.
  Histogram left, right, combined;
  Random rng(7);
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble() * 100.0;
    left.Add(v);
    combined.Add(v);
  }
  for (int i = 0; i < 500; ++i) {
    double v = 100.0 + rng.NextDouble() * 900.0;
    right.Add(v);
    combined.Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_DOUBLE_EQ(left.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(left.Percentile(p), combined.Percentile(p)) << p;
  }
}

TEST(HistogramTest, ShardOrderMergeIsBitExact) {
  // The workload driver's per-shard latency histograms are merged in shard
  // order into the global histogram. Because Merge adds bucket counts and
  // running sums, partitioning samples across any number of histograms and
  // merging them back must reproduce the direct accumulation bit-for-bit —
  // the property the shards=1-vs-N determinism gate relies on. Exercised at
  // the latency ratio, the exact production configuration.
  constexpr int kShards = 4;
  std::vector<Histogram> parts(kShards, Histogram(Histogram::kLatencyRatio));
  Histogram direct(Histogram::kLatencyRatio);
  Random rng(11);
  for (int i = 0; i < 2000; ++i) {
    // Heavy body with a sparse far tail, like a real latency population.
    double v = rng.NextDouble() < 0.99 ? rng.NextDouble() * 50.0
                                       : 1e4 + rng.NextDouble() * 1e6;
    parts[i % kShards].Add(v);
    direct.Add(v);
  }
  Histogram merged(Histogram::kLatencyRatio);
  for (const Histogram& h : parts) merged.Merge(h);
  // Bucket counts, count, and extremes are integers/order statistics:
  // partitioning cannot perturb them, so percentiles match bit-for-bit.
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_DOUBLE_EQ(merged.min(), direct.min());
  EXPECT_DOUBLE_EQ(merged.max(), direct.max());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), direct.Percentile(p)) << p;
  }
  // The running sums are accumulated in a different order, so they are
  // only near-exact (float addition is not associative).
  EXPECT_NEAR(merged.sum(), direct.sum(), 1e-9 * direct.sum());
  EXPECT_NEAR(merged.Mean(), direct.Mean(), 1e-9 * direct.Mean());
  EXPECT_NEAR(merged.StandardDeviation(), direct.StandardDeviation(),
              1e-9 * direct.StandardDeviation());
}

TEST(HistogramTest, FinerRatioBoundsTailError) {
  // The geometric bucket ratio bounds the relative percentile error: a
  // reported percentile lies within a factor of `ratio` of the true order
  // statistic. Verify the bound for both ratios on an exact-value
  // population (every sample identical), where any reported percentile
  // must sit inside the sample's bucket.
  for (double ratio : {Histogram::kDefaultRatio, Histogram::kLatencyRatio}) {
    Histogram h(ratio);
    EXPECT_DOUBLE_EQ(h.bucket_ratio(), ratio);
    const double v = 12345.0;
    for (int i = 0; i < 1000; ++i) h.Add(v);
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
      double got = h.Percentile(p);
      EXPECT_GE(got, v / ratio) << "ratio=" << ratio << " p=" << p;
      EXPECT_LE(got, v * ratio) << "ratio=" << ratio << " p=" << p;
    }
  }
}

TEST(HistogramTest, LatencyRatioResolvesDistinctTailValues) {
  // At the coarse default ratio, 1000 and 1015 share a bucket; the latency
  // ratio (1.02) must keep p999 within ~1% even for a heavy-bodied
  // distribution with a sparse tail.
  Histogram h(Histogram::kLatencyRatio);
  for (int i = 0; i < 9990; ++i) h.Add(10.0);
  for (int i = 0; i < 10; ++i) h.Add(1000.0);
  double p999 = h.Percentile(99.9);
  EXPECT_GE(p999, 1000.0 / Histogram::kLatencyRatio);
  EXPECT_LE(p999, 1000.0 * Histogram::kLatencyRatio);
  // The body stays put.
  EXPECT_NEAR(h.Percentile(50), 10.0, 10.0 * (Histogram::kLatencyRatio - 1.0) * 2);
}

TEST(HistogramTest, RatiosCoverTheSameRange) {
  // Both resolutions must absorb the full value range without losing the
  // max to bucket clamping.
  for (double ratio : {Histogram::kDefaultRatio, Histogram::kLatencyRatio}) {
    Histogram h(ratio);
    h.Add(0.5);
    h.Add(1e15);
    EXPECT_DOUBLE_EQ(h.max(), 1e15);
    EXPECT_DOUBLE_EQ(h.Percentile(100), 1e15);
    EXPECT_DOUBLE_EQ(h.Percentile(0), 0.5);
  }
}

TEST(ZipfTest, DeterministicAcrossInstances) {
  ZipfGenerator a(1000, 0.99), b(1000, 0.99);
  Random ra(42), rb(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(&ra), b.Next(&rb));
}

TEST(ZipfTest, RanksInRange) {
  ZipfGenerator zipf(37, 0.8);
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    uint64_t r = zipf.Next(&rng);
    EXPECT_LT(r, 37u);
    seen.insert(r);
  }
  EXPECT_EQ(seen.size(), 37u);  // theta 0.8 still touches every rank
}

TEST(ZipfTest, RankFrequencyShape) {
  // P(rank k) ~ 1/(k+1)^theta: rank 0 over rank 9 should be close to
  // 10^theta ~ 9.8 at theta 0.99. Wide bounds — this is a shape sanity
  // check, not a goodness-of-fit test.
  ZipfGenerator zipf(1000, 0.99);
  Random rng(11);
  std::vector<int> freq(1000, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++freq[zipf.Next(&rng)];
  EXPECT_GT(freq[0], freq[9]);
  EXPECT_GT(freq[9], freq[99]);
  double ratio = static_cast<double>(freq[0]) / std::max(freq[9], 1);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 20.0);
  // The hot head carries a large share of all draws.
  int head = 0;
  for (int i = 0; i < 10; ++i) head += freq[i];
  EXPECT_GT(static_cast<double>(head) / draws, 0.3);
}

TEST(ZipfTest, ConsumesExactlyOneDrawPerNext) {
  // The generator must consume exactly one uniform variate per draw so
  // interleaved consumers stay replayable.
  ZipfGenerator zipf(100, 0.5);
  Random with_zipf(123), reference(123);
  for (int i = 0; i < 100; ++i) {
    zipf.Next(&with_zipf);
    reference.NextDouble();
  }
  EXPECT_EQ(with_zipf.Next(), reference.Next());
}

TEST(JsonTest, WriterEscapesAndHandlesNonFinite) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("a\"b\\c\n\t\x01");
  w.Key("inf");
  w.Double(std::numeric_limits<double>::infinity());
  w.Key("nan");
  w.Double(std::nan(""));
  w.Key("n");
  w.Int(-42);
  w.Key("b");
  w.Bool(true);
  w.EndObject();
  StatusOr<JsonValue> doc = JsonValue::Parse(w.str());
  MMDB_ASSERT_OK(doc);
  EXPECT_EQ(doc->Find("s")->string_value(), "a\"b\\c\n\t\x01");
  // The simulator's +infinity sentinels have no JSON representation.
  EXPECT_TRUE(doc->Find("inf")->is_null());
  EXPECT_TRUE(doc->Find("nan")->is_null());
  EXPECT_EQ(doc->Find("n")->number_value(), -42.0);
  EXPECT_TRUE(doc->Find("b")->bool_value());
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  // Note the parser is deliberately lenient about number spellings
  // ("01", "+1" parse via strtod); structural damage must still be
  // CORRUPTION.
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "{\"a\":1} x",
        "1e", "{'a':1}"}) {
    StatusOr<JsonValue> doc = JsonValue::Parse(bad);
    EXPECT_FALSE(doc.ok()) << "accepted: " << bad;
    if (!doc.ok()) EXPECT_TRUE(doc.status().IsCorruption()) << bad;
  }
}

TEST(JsonTest, DumpRoundTrips) {
  const char* text =
      "{\"a\":[1,2.5,null,true,\"x\"],\"b\":{\"c\":-3e2},\"d\":false}";
  StatusOr<JsonValue> doc = JsonValue::Parse(text);
  MMDB_ASSERT_OK(doc);
  StatusOr<JsonValue> again = JsonValue::Parse(doc->Dump());
  MMDB_ASSERT_OK(again);
  EXPECT_EQ(again->Dump(), doc->Dump());
  EXPECT_EQ(again->FindPath({"b", "c"})->number_value(), -300.0);
  EXPECT_EQ(again->Find("a")->array_items().size(), 5u);
  // FindPath degrades to nullptr on a miss anywhere along the chain.
  EXPECT_EQ(again->FindPath({"b", "missing"}), nullptr);
  EXPECT_EQ(again->FindPath({"d", "c"}), nullptr);
}

TEST(StringUtilTest, StringPrintfHandlesLongOutput) {
  std::string big(1000, 'a');
  std::string out = StringPrintf("[%s]", big.c_str());
  EXPECT_EQ(out.size(), 1002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StringUtilTest, StrSplit) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("backup_0.db", "backup_"));
  EXPECT_FALSE(StartsWith("db", "backup_"));
  EXPECT_TRUE(EndsWith("wal.log", ".log"));
  EXPECT_FALSE(EndsWith("wal.log", ".db"));
}

}  // namespace
}  // namespace mmdb
