// Unit tests for the observability layer: MetricsRegistry instruments
// (including concurrent updates), the bounded Tracer ring, the MeteredEnv
// device accounting, and the JSON round-trips that mmdb_stats and the
// bench sidecars rely on.

#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "gtest/gtest.h"
#include "obs/metered_env.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/histogram.h"
#include "tests/test_util.h"
#include "util/json.h"

namespace mmdb {
namespace {

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  MetricsRegistry reg;
  Counter* c = reg.counter("a");
  for (int i = 0; i < 100; ++i) {
    reg.counter("pad." + std::to_string(i));
  }
  EXPECT_EQ(c, reg.counter("a"));
  EXPECT_NE(c, reg.counter("b"));
  // One namespace per instrument kind: a counter and a gauge may share a
  // name without clashing.
  EXPECT_NE(static_cast<void*>(reg.counter("x")),
            static_cast<void*>(reg.gauge("x")));
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSum) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Find-or-create races with the other threads on purpose.
      Counter* c = reg.counter("shared");
      Gauge* g = reg.gauge("level");
      Timer* h = reg.timer("lat");
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        g->Add(1.0);
        if (i % 100 == 0) h->Record(static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(reg.gauge("level")->value(),
                   static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(reg.timer("lat")->count(),
            static_cast<uint64_t>(kThreads) * (kPerThread / 100));
}

TEST(MetricsRegistryTest, JsonRoundTrips) {
  MetricsRegistry reg;
  reg.counter("ops")->Increment(7);
  reg.gauge("cap")->Set(256.0);
  Timer* t = reg.timer("dur");
  t->Record(1.0);
  t->Record(3.0);
  StatusOr<JsonValue> doc = JsonValue::Parse(reg.ToJsonString());
  MMDB_ASSERT_OK(doc);
  EXPECT_EQ(doc->FindPath({"counters", "ops"})->number_value(), 7.0);
  EXPECT_EQ(doc->FindPath({"gauges", "cap"})->number_value(), 256.0);
  EXPECT_EQ(doc->FindPath({"timers", "dur", "count"})->number_value(), 2.0);
  EXPECT_DOUBLE_EQ(doc->FindPath({"timers", "dur", "mean"})->number_value(),
                   2.0);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.Record(TraceEventType::kLogAppend, /*time=*/i, 0.0, /*a=*/i);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, static_cast<int64_t>(6 + i));
  }
  tracer.Clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, JsonCarriesSequenceAcrossDrops) {
  Tracer tracer(/*capacity=*/2);
  tracer.Record(TraceEventType::kLogAppend, 0.0, 0.0, 1);
  tracer.Record(TraceEventType::kLogAppend, 1.0, 0.0, 2);
  tracer.Record(TraceEventType::kLogAppend, 2.0, 0.0, 3);
  StatusOr<JsonValue> doc = JsonValue::Parse(tracer.ToJsonString());
  MMDB_ASSERT_OK(doc);
  EXPECT_EQ(doc->Find("recorded")->number_value(), 3.0);
  EXPECT_EQ(doc->Find("dropped")->number_value(), 1.0);
  const auto& events = doc->Find("events")->array_items();
  ASSERT_EQ(events.size(), 2u);
  // The seq of the first retained event exposes the gap.
  EXPECT_EQ(events[0].Find("seq")->number_value(), 1.0);
  EXPECT_EQ(events[1].Find("seq")->number_value(), 2.0);
}

TEST(TracerTest, EventFormatterNamesTypedFields) {
  JsonWriter w;
  TraceEventToJson(
      TraceEvent{TraceEventType::kCheckpointBegin, 1.5, 0.0, /*id=*/3,
                 /*algorithm=*/0, /*mode=*/1},
      /*seq=*/0, &w);
  StatusOr<JsonValue> doc = JsonValue::Parse(w.str());
  MMDB_ASSERT_OK(doc);
  EXPECT_EQ(doc->Find("kind")->string_value(), "checkpoint.begin");
  EXPECT_EQ(doc->Find("algorithm")->string_value(), "FUZZYCOPY");
  EXPECT_EQ(doc->Find("mode")->string_value(), "partial");
  EXPECT_EQ(doc->Find("checkpoint")->number_value(), 3.0);
}

TEST(MeteredEnvTest, ClassifiesPathsByDevice) {
  EXPECT_EQ(ClassifyPath("mmdb_data/wal.log"), DeviceClass::kLog);
  EXPECT_EQ(ClassifyPath("mmdb_data/backup_0.db"), DeviceClass::kBackup);
  EXPECT_EQ(ClassifyPath("mmdb_data/CHECKPOINT"), DeviceClass::kMeta);
  EXPECT_EQ(std::string(DeviceClassName(DeviceClass::kLog)), "log");
}

TEST(MeteredEnvTest, AccountsOpsBytesPerDeviceClass) {
  std::unique_ptr<Env> base = NewMemEnv();
  MetricsRegistry reg;
  MeteredEnv env(base.get(), &reg);

  auto log = env.NewWritableFile("dir/wal.log");
  MMDB_ASSERT_OK(log);
  MMDB_EXPECT_OK((*log)->Append("0123456789"));
  MMDB_EXPECT_OK((*log)->Sync());

  auto backup = env.NewRandomWriteFile("dir/backup_1.db");
  MMDB_ASSERT_OK(backup);
  MMDB_EXPECT_OK((*backup)->WriteAt(0, "abcd"));
  std::string out;
  MMDB_EXPECT_OK((*backup)->Read(0, 4, &out));
  EXPECT_EQ(out, "abcd");

  EXPECT_EQ(reg.counter("env.log.write_ops")->value(), 1u);
  EXPECT_EQ(reg.counter("env.log.write_bytes")->value(), 10u);
  EXPECT_EQ(reg.counter("env.log.sync_ops")->value(), 1u);
  EXPECT_EQ(reg.counter("env.backup.write_ops")->value(), 1u);
  EXPECT_EQ(reg.counter("env.backup.write_bytes")->value(), 4u);
  EXPECT_EQ(reg.counter("env.backup.read_ops")->value(), 1u);
  EXPECT_EQ(reg.counter("env.backup.read_bytes")->value(), 4u);
  // No cross-charging: the log's ops never land on the backup class.
  EXPECT_EQ(reg.counter("env.backup.sync_ops")->value(), 0u);
  EXPECT_EQ(reg.counter("env.log.read_ops")->value(), 0u);
}

TEST(MeteredEnvTest, CountsErrors) {
  std::unique_ptr<Env> base = NewMemEnv();
  MetricsRegistry reg;
  MeteredEnv env(base.get(), &reg);
  auto missing = env.NewRandomAccessFile("dir/backup_0.db");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(reg.counter("env.backup.errors")->value(), 1u);
}

TEST(TimerRatioTest, FirstCallerPinsBucketRatio) {
  MetricsRegistry reg;
  Timer* fine = reg.timer("lat", Histogram::kLatencyRatio);
  EXPECT_EQ(fine, reg.timer("lat"));  // same instrument either way
  EXPECT_DOUBLE_EQ(fine->Snapshot().bucket_ratio(), Histogram::kLatencyRatio);
  // Plain timers keep the coarse default.
  EXPECT_DOUBLE_EQ(reg.timer("other")->Snapshot().bucket_ratio(),
                   Histogram::kDefaultRatio);
}

TEST(TimeSeriesSamplerTest, SamplesOnEpochBoundaries) {
  MetricsRegistry reg;
  Counter* c = reg.counter("commits");
  TimeSeriesSampler::Options opt;
  opt.epoch = 0.1;
  TimeSeriesSampler sampler(opt);
  sampler.AddCounter("commits", c);
  double g = 0.0;
  sampler.AddGauge("depth", [&g] { return g; });

  sampler.SampleUpTo(0.05);  // before the first boundary: nothing
  EXPECT_EQ(sampler.num_samples(), 0u);
  c->Increment(3);
  g = 7.0;
  sampler.SampleUpTo(0.1);  // exactly on the boundary
  EXPECT_EQ(sampler.num_samples(), 1u);
  c->Increment(2);
  sampler.SampleUpTo(0.45);  // crosses 0.2, 0.3, 0.4 at once
  EXPECT_EQ(sampler.num_samples(), 4u);
  EXPECT_EQ(sampler.recorded(), 4u);
  EXPECT_EQ(sampler.dropped(), 0u);

  JsonWriter w;
  sampler.ToJson(&w);
  auto doc = JsonValue::Parse(w.str());
  MMDB_ASSERT_OK(doc);
  const auto& samples = doc->Find("samples")->array_items();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples[0].Find("t")->number_value(), 0.1);
  EXPECT_DOUBLE_EQ(samples[3].Find("t")->number_value(), 0.4);
  // First sample sees the values at the first clock movement past its
  // boundary; the catch-up samples repeat the then-current values.
  EXPECT_DOUBLE_EQ(samples[0].Find("v")->array_items()[0].number_value(), 3.0);
  EXPECT_DOUBLE_EQ(samples[0].Find("v")->array_items()[1].number_value(), 7.0);
  EXPECT_DOUBLE_EQ(samples[1].Find("v")->array_items()[0].number_value(), 5.0);
  const auto& series = doc->Find("series")->array_items();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].string_value(), "commits");
  EXPECT_EQ(series[1].string_value(), "depth");
  // Wall-clock cost lives under "wall" so sidecar stripping removes it.
  EXPECT_TRUE(doc->Find("wall")->Find("sample_seconds")->is_number());
}

TEST(TimeSeriesSamplerTest, RingDropsOldestBeyondCapacity) {
  MetricsRegistry reg;
  Counter* c = reg.counter("n");
  TimeSeriesSampler::Options opt;
  opt.epoch = 1.0;
  opt.capacity = 3;
  TimeSeriesSampler sampler(opt);
  sampler.AddCounter("n", c);
  for (int t = 1; t <= 5; ++t) {
    c->Increment(1);
    sampler.SampleUpTo(static_cast<double>(t));
  }
  EXPECT_EQ(sampler.num_samples(), 3u);
  EXPECT_EQ(sampler.recorded(), 5u);
  EXPECT_EQ(sampler.dropped(), 2u);
  JsonWriter w;
  sampler.ToJson(&w);
  auto doc = JsonValue::Parse(w.str());
  MMDB_ASSERT_OK(doc);
  const auto& samples = doc->Find("samples")->array_items();
  ASSERT_EQ(samples.size(), 3u);
  // Oldest first, and only the newest three boundaries survive.
  EXPECT_DOUBLE_EQ(samples[0].Find("t")->number_value(), 3.0);
  EXPECT_DOUBLE_EQ(samples[2].Find("t")->number_value(), 5.0);
  EXPECT_DOUBLE_EQ(doc->Find("dropped")->number_value(), 2.0);
}

}  // namespace
}  // namespace mmdb
