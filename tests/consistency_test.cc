// End-to-end durability property suite (DESIGN.md section 7, properties 1
// and 4): for every checkpoint algorithm x {full, partial} x {volatile,
// stable} log tail, across crash points including mid-checkpoint and
// repeated crash/recover cycles, the recovered database must equal exactly
// the durably-committed state.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

struct ConsistencyCase {
  Algorithm algorithm;
  CheckpointMode mode;
  bool stable_tail;
  uint32_t shards = 1;
};

std::string CaseName(const testing::TestParamInfo<ConsistencyCase>& info) {
  std::string name(AlgorithmName(info.param.algorithm));
  for (char& ch : name) {
    if (ch == '-' || ch == ' ') ch = '_';
  }
  name += info.param.mode == CheckpointMode::kFull ? "_full" : "_partial";
  name += info.param.stable_tail ? "_stable" : "_volatile";
  if (info.param.shards > 1) {
    name += "_shards" + std::to_string(info.param.shards);
  }
  return name;
}

class ConsistencyTest : public testing::TestWithParam<ConsistencyCase> {
 protected:
  EngineOptions MakeOptions() const {
    EngineOptions opt = TinyOptions();
    opt.algorithm = GetParam().algorithm;
    opt.checkpoint_mode = GetParam().mode;
    opt.stable_log_tail = GetParam().stable_tail;
    opt.shards = GetParam().shards;
    return opt;
  }
};

// Workload, checkpoints, crash between checkpoints, recover, verify.
TEST_P(ConsistencyTest, CrashAfterWorkloadRecoversDurableState) {
  std::unique_ptr<Env> env = NewMemEnv();
  auto engine_or = Engine::Open(MakeOptions(), env.get());
  MMDB_ASSERT_OK(engine_or);
  Engine& engine = **engine_or;

  WorkloadOptions wopt;
  wopt.duration = 2.0;  // several checkpoints at tiny scale
  wopt.seed = 7;
  WorkloadDriver driver(&engine, wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  ASSERT_GT(result->committed, 100u);
  ASSERT_GE(result->checkpoints_completed, 2u);

  Lsn durable = engine.DurableLsn();
  MMDB_ASSERT_OK(engine.Crash());
  auto stats = engine.Recover();
  MMDB_ASSERT_OK(stats);
  EXPECT_GT(stats->segments_loaded, 0u);
  VerifyRecovered(engine, driver, durable);
}

// Crash in the middle of a checkpoint: the previous complete checkpoint
// must carry recovery (the ping-pong guarantee), in-flight backup writes
// tear harmlessly.
TEST_P(ConsistencyTest, CrashMidCheckpointUsesPreviousCheckpoint) {
  std::unique_ptr<Env> env = NewMemEnv();
  auto engine_or = Engine::Open(MakeOptions(), env.get());
  MMDB_ASSERT_OK(engine_or);
  Engine& engine = **engine_or;

  WorkloadOptions wopt;
  wopt.duration = 0.6;
  wopt.seed = 11;
  WorkloadDriver driver(&engine, wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  ASSERT_GE(result->checkpoints_completed, 1u);

  // Start a FRESH checkpoint (finishing any in-flight one) and crash
  // partway through its sweep.
  if (engine.CheckpointInProgress()) {
    MMDB_ASSERT_OK(engine.RunCheckpointToCompletion());
  }
  // Dirty a few segments so even partial mode has a sweep to interrupt;
  // track the extra updates so verification knows about them.
  std::map<RecordId, std::pair<Lsn, std::string>> extra;
  const uint32_t rps = engine.params().db.records_per_segment();
  for (SegmentId s = 0; s < engine.db().num_segments(); s += 2) {
    RecordId rec = s * rps;
    std::string image =
        MakeRecordImage(engine.db().record_bytes(), rec, 777 + s);
    auto lsn = engine.Apply({{rec, image}});
    MMDB_ASSERT_OK(lsn);
    extra[rec] = {*lsn, std::move(image)};
  }
  MMDB_ASSERT_OK(engine.StartCheckpoint());
  for (int i = 0; i < 5 && engine.CheckpointInProgress(); ++i) {
    MMDB_ASSERT_OK(engine.StepCheckpoint());
  }
  ASSERT_TRUE(engine.CheckpointInProgress())
      << "sweep finished too quickly to test a mid-checkpoint crash";

  Lsn durable = engine.DurableLsn();
  MMDB_ASSERT_OK(engine.Crash());
  auto stats = engine.Recover();
  MMDB_ASSERT_OK(stats);
  VerifyRecovered(engine, driver, durable, extra);
}

// Two full crash/recover cycles with new work in between: exercises log
// reopening (OpenExisting), LSN continuity and re-checkpointing after
// recovery.
TEST_P(ConsistencyTest, RepeatedCrashRecoverCycles) {
  std::unique_ptr<Env> env = NewMemEnv();
  auto engine_or = Engine::Open(MakeOptions(), env.get());
  MMDB_ASSERT_OK(engine_or);
  Engine& engine = **engine_or;

  WorkloadOptions wopt;
  wopt.duration = 0.5;
  wopt.seed = 13;
  WorkloadDriver driver1(&engine, wopt);
  MMDB_ASSERT_OK(driver1.Run());

  Lsn durable1 = engine.DurableLsn();
  MMDB_ASSERT_OK(engine.Crash());
  MMDB_ASSERT_OK(engine.Recover());
  VerifyRecovered(engine, driver1, durable1);

  // More work after recovery, then crash again. The second driver's
  // oracle only covers its own writes; verify those plus survivors.
  wopt.seed = 17;
  WorkloadDriver driver2(&engine, wopt);
  auto r2 = driver2.Run();
  MMDB_ASSERT_OK(r2);
  ASSERT_GT(r2->committed, 50u);

  Lsn durable2 = engine.DurableLsn();
  MMDB_ASSERT_OK(engine.Crash());
  MMDB_ASSERT_OK(engine.Recover());

  const auto& h2 = driver2.history();
  for (const auto& [record, commits] : h2) {
    std::string expected;
    for (const auto& c : commits) {
      if (c.lsn <= durable2) expected = c.image;
    }
    if (!expected.empty()) {
      EXPECT_EQ(engine.ReadRecordRaw(record), std::string_view(expected))
          << "record " << record << " after second recovery";
    }
  }
}

// Crash before any checkpoint completed: cold-start recovery replays the
// whole log against an empty image.
TEST_P(ConsistencyTest, ColdStartRecoveryFromLogOnly) {
  std::unique_ptr<Env> env = NewMemEnv();
  auto engine_or = Engine::Open(MakeOptions(), env.get());
  MMDB_ASSERT_OK(engine_or);
  Engine& engine = **engine_or;

  WorkloadOptions wopt;
  wopt.duration = 0.05;
  wopt.run_checkpoints = false;
  wopt.seed = 19;
  WorkloadDriver driver(&engine, wopt);
  MMDB_ASSERT_OK(driver.Run());
  engine.FlushLog();
  MMDB_ASSERT_OK(engine.AdvanceTime(1.0));  // let the flush land

  Lsn durable = engine.DurableLsn();
  ASSERT_GT(durable, 0u);
  MMDB_ASSERT_OK(engine.Crash());
  auto stats = engine.Recover();
  MMDB_ASSERT_OK(stats);
  EXPECT_EQ(stats->checkpoint_id, 0u);
  EXPECT_EQ(stats->segments_loaded, 0u);
  VerifyRecovered(engine, driver, durable);
}

// A commit whose log flush had no time to land must NOT survive a crash —
// unless the tail is stable, in which case it must.
TEST_P(ConsistencyTest, VolatileCommitsAreLostStableCommitsSurvive) {
  std::unique_ptr<Env> env = NewMemEnv();
  auto engine_or = Engine::Open(MakeOptions(), env.get());
  MMDB_ASSERT_OK(engine_or);
  Engine& engine = **engine_or;

  // One checkpoint so recovery has a base image.
  MMDB_ASSERT_OK(engine.RunCheckpointToCompletion());

  const size_t rec_bytes = engine.db().record_bytes();
  std::string image = MakeRecordImage(rec_bytes, 3, 999);
  auto lsn = engine.Apply({{3, image}});
  MMDB_ASSERT_OK(lsn);
  // Crash immediately: the group flush (if any) cannot have completed.
  Lsn durable = engine.DurableLsn();
  MMDB_ASSERT_OK(engine.Crash());
  MMDB_ASSERT_OK(engine.Recover());
  if (GetParam().stable_tail) {
    EXPECT_EQ(engine.ReadRecordRaw(3), std::string_view(image));
  } else {
    EXPECT_LT(durable, *lsn);
    EXPECT_NE(engine.ReadRecordRaw(3), std::string_view(image));
  }
}

// Every algorithm in {partial, full} with a volatile log tail (stable for
// FASTFUZZY, which requires it), plus a stable-tail partial spot-check per
// algorithm so the LSN-cost-free path stays covered, plus a 4-shard
// partial case per algorithm so record routing across per-shard WAL
// streams and the k-way merged recovery scan hold the same durability
// properties. Generated from kAllAlgorithms so a new enum value is
// exercised here automatically.
std::vector<ConsistencyCase> AllConsistencyCases() {
  std::vector<ConsistencyCase> cases;
  for (Algorithm a : kAllAlgorithms) {
    const bool needs_stable = a == Algorithm::kFastFuzzy;
    cases.push_back({a, CheckpointMode::kPartial, needs_stable});
    cases.push_back({a, CheckpointMode::kFull, needs_stable});
    if (!needs_stable) {
      cases.push_back({a, CheckpointMode::kPartial, true});
    }
    cases.push_back({a, CheckpointMode::kPartial, needs_stable, 4});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ConsistencyTest,
                         testing::ValuesIn(AllConsistencyCases()), CaseName);

}  // namespace
}  // namespace mmdb
