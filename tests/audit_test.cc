// Provenance-journal tests (DESIGN.md §18): the journal format itself
// (self-checksummed lines, contiguous sequencing, torn-tail and resume
// semantics), the lifecycle grammar, the engine-level cross-check that
// `mmdb_audit verify --dump=` runs, segment explanation, and the
// bit-identity guarantee that auditing never perturbs modeled results.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "obs/audit.h"
#include "tests/test_util.h"
#include "util/json.h"

namespace mmdb {
namespace {

// ---------------------------------------------------------------------------
// The journal format.
// ---------------------------------------------------------------------------

class AuditJournalTest : public testing::Test {
 protected:
  AuditJournalTest() : env_(NewMemEnv()) {}

  // Appends `n` well-formed ckpt.log_cut events (the one event legal
  // anywhere) and returns the journal text.
  std::string WriteEvents(int n) {
    AuditJournal journal(env_.get(), "audit.log");
    journal.Open(/*fresh=*/true);
    EXPECT_TRUE(journal.enabled());
    for (int i = 0; i < n; ++i) {
      journal.Record("ckpt.log_cut", 0.5 * i, [&](JsonWriter& w) {
        w.Key("cut");
        w.Uint(100 * i);
        w.Key("reclaimed");
        w.Uint(64);
        w.Key("stream_bases");
        w.BeginArray();
        w.Uint(100 * i);
        w.EndArray();
      });
    }
    std::string text;
    EXPECT_TRUE(env_->ReadFileToString("audit.log", &text).ok());
    return text;
  }

  std::unique_ptr<Env> env_;
};

TEST_F(AuditJournalTest, RecordsSelfChecksummedContiguousLines) {
  std::string text = WriteEvents(3);
  auto entries = ParseAuditJournal(text);
  MMDB_ASSERT_OK(entries);
  ASSERT_EQ(entries->size(), 3u);
  for (size_t i = 0; i < entries->size(); ++i) {
    EXPECT_EQ((*entries)[i].seq, i + 1);
    EXPECT_EQ((*entries)[i].event, "ckpt.log_cut");
    EXPECT_DOUBLE_EQ((*entries)[i].t, 0.5 * static_cast<double>(i));
  }
  MMDB_EXPECT_OK(VerifyAuditStructure(*entries));
}

TEST_F(AuditJournalTest, CorruptedByteFailsTheLineCrc) {
  std::string text = WriteEvents(3);
  // Flip one byte inside the second line's payload: the line may still be
  // valid JSON, but the checksum no longer covers it.
  size_t second = text.find('\n') + 1;
  size_t cut_pos = text.find("\"cut\":", second);
  ASSERT_NE(cut_pos, std::string::npos);
  text[cut_pos + 6] = text[cut_pos + 6] == '1' ? '2' : '1';
  auto entries = ParseAuditJournal(text);
  EXPECT_TRUE(entries.status().IsCorruption()) << entries.status();
}

TEST_F(AuditJournalTest, MissingLineIsASequenceGap) {
  std::string text = WriteEvents(3);
  size_t first_nl = text.find('\n');
  size_t second_nl = text.find('\n', first_nl + 1);
  std::string spliced =
      text.substr(0, first_nl + 1) + text.substr(second_nl + 1);
  auto entries = ParseAuditJournal(spliced);
  EXPECT_TRUE(entries.status().IsCorruption()) << entries.status();
}

TEST_F(AuditJournalTest, TornTrailingLineIsIgnored) {
  std::string text = WriteEvents(3);
  // Chop the final newline and a few bytes before it: a torn append.
  std::string torn = text.substr(0, text.size() - 5);
  auto entries = ParseAuditJournal(torn);
  MMDB_ASSERT_OK(entries);
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(AuditJournalTest, ReopenDropsTornTailAndResumesNumbering) {
  std::string text = WriteEvents(2);
  // A crash tore a third line mid-append.
  MMDB_ASSERT_OK(env_->WriteStringToFile(
      "audit.log", text + "{\"seq\":3,\"t\":9.0,\"event\":\"ckp", false));

  AuditJournal journal(env_.get(), "audit.log");
  journal.Open(/*fresh=*/false);
  ASSERT_TRUE(journal.enabled());
  EXPECT_EQ(journal.next_seq(), 3u);
  journal.Record("ckpt.log_cut", 2.0, [&](JsonWriter& w) {
    w.Key("cut");
    w.Uint(300);
    w.Key("reclaimed");
    w.Uint(64);
    w.Key("stream_bases");
    w.BeginArray();
    w.EndArray();
  });

  std::string resumed;
  MMDB_ASSERT_OK(env_->ReadFileToString("audit.log", &resumed));
  auto entries = ParseAuditJournal(resumed);
  MMDB_ASSERT_OK(entries);
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[2].seq, 3u);
  EXPECT_DOUBLE_EQ((*entries)[2].t, 2.0);
}

TEST_F(AuditJournalTest, FirstAppendErrorDisablesTheJournal) {
  FaultInjectionEnv fenv(env_.get());
  AuditJournal journal(&fenv, "audit.log");
  journal.Open(/*fresh=*/true);
  ASSERT_TRUE(journal.enabled());
  fenv.InjectFault({FaultKind::kWriteError, "audit", fenv.op_count(),
                    /*times=*/1});
  journal.Record("ckpt.log_cut", 1.0);
  EXPECT_FALSE(journal.enabled());
  EXPECT_EQ(journal.counters().append_errors, 1u);
  // A torn line must never be followed by more lines.
  journal.Record("ckpt.log_cut", 2.0);
  EXPECT_EQ(journal.counters().entries, 0u);
}

// ---------------------------------------------------------------------------
// Lifecycle grammar.
// ---------------------------------------------------------------------------

class AuditGrammarTest : public testing::Test {
 protected:
  AuditGrammarTest() : env_(NewMemEnv()) {}

  // Runs `script` against a fresh journal and returns the structural
  // verdict over what it wrote.
  Status Verdict(const std::function<void(AuditJournal&)>& script) {
    AuditJournal journal(env_.get(), "audit.log");
    journal.Open(/*fresh=*/true);
    script(journal);
    std::string text;
    EXPECT_TRUE(env_->ReadFileToString("audit.log", &text).ok());
    auto entries = ParseAuditJournal(text);
    if (!entries.ok()) return entries.status();
    return VerifyAuditStructure(*entries);
  }

  std::unique_ptr<Env> env_;
};

TEST_F(AuditGrammarTest, FlushOutsideACheckpointChainIsRejected) {
  Status st = Verdict([](AuditJournal& j) {
    j.Record("ckpt.flush", 1.0, [](JsonWriter& w) {
      w.Key("ckpt");
      w.Uint(1);
      w.Key("segment");
      w.Uint(0);
      w.Key("copy");
      w.Uint(1);
      w.Key("lsn");
      w.Uint(5);
      w.Key("bytes");
      w.Uint(4096);
    });
  });
  EXPECT_TRUE(st.IsCorruption()) << st;
}

TEST_F(AuditGrammarTest, MissingRequiredFieldIsRejected) {
  Status st = Verdict([](AuditJournal& j) {
    j.Record("recovery.begin", 1.0);  // no "restart"
  });
  EXPECT_TRUE(st.IsCorruption()) << st;
}

TEST_F(AuditGrammarTest, UnknownEventIsRejected) {
  Status st = Verdict(
      [](AuditJournal& j) { j.Record("ckpt.telepathy", 1.0); });
  EXPECT_TRUE(st.IsCorruption()) << st;
}

// ---------------------------------------------------------------------------
// Engine-level: the cross-check `mmdb_audit verify --dump=` runs.
// ---------------------------------------------------------------------------

class AuditEngineTest : public testing::Test {
 protected:
  AuditEngineTest() : env_(NewMemEnv()) {}

  std::unique_ptr<Engine> MustOpen(const EngineOptions& opt) {
    auto engine = Engine::Open(opt, env_.get());
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(*engine);
  }

  // Scripted life: populate, checkpoint, more commits, crash, recover.
  void RunLife(Engine* engine) {
    const size_t rec_bytes = engine->db().record_bytes();
    const uint32_t rps = engine->params().db.records_per_segment();
    for (SegmentId s = 0; s < engine->db().num_segments(); ++s) {
      RecordId r = s * rps;
      MMDB_ASSERT_OK(
          engine->Apply({{r, MakeRecordImage(rec_bytes, r, 1)}}).status());
    }
    MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
    // Post-checkpoint commits in the first and the middle segment, so
    // replay has work in more than one shard at any shard count.
    const RecordId mid =
        static_cast<RecordId>(engine->db().num_segments() / 2) * rps;
    MMDB_ASSERT_OK(
        engine->Apply({{0, MakeRecordImage(rec_bytes, 0, 2)}}).status());
    MMDB_ASSERT_OK(
        engine->Apply({{mid, MakeRecordImage(rec_bytes, mid, 2)}}).status());
    engine->FlushLog();
    MMDB_ASSERT_OK(engine->AdvanceTime(1.0));
    MMDB_ASSERT_OK(engine->Crash());
    MMDB_ASSERT_OK(engine->Recover());
    // Under the instant lane the lineage and recovery.end land when the
    // on-demand drain completes; blocking recovery makes this a no-op.
    MMDB_ASSERT_OK(engine->DrainRecovery());
  }

  std::string JournalText(Engine* engine) {
    std::string text;
    EXPECT_TRUE(
        env_->ReadFileToString(engine->AuditLogPath(), &text).ok());
    return text;
  }

  std::unique_ptr<Env> env_;
};

TEST_F(AuditEngineTest, FullLifeVerifiesAgainstTheEngineDump) {
  auto engine = MustOpen(TinyOptions());
  RunLife(engine.get());

  std::string text = JournalText(engine.get());
  auto entries = ParseAuditJournal(text);
  MMDB_ASSERT_OK(entries);

  // Every lifecycle stage left its event.
  for (const char* want :
       {"ckpt.begin", "ckpt.flush", "ckpt.end", "recovery.begin",
        "recovery.streams", "recovery.plan", "recovery.lineage",
        "recovery.end"}) {
    bool found = false;
    for (const AuditEntry& e : *entries) {
      if (e.event == want) found = true;
    }
    EXPECT_TRUE(found) << "journal never recorded " << want;
  }

  auto dump = JsonValue::Parse(engine->DumpMetricsJson());
  MMDB_ASSERT_OK(dump);
  MMDB_EXPECT_OK(VerifyAuditJournal(text, &*dump));
}

TEST_F(AuditEngineTest, InstantOnDemandLineageRecordsFirstTouchOrder) {
  // Explicit instant-recovery restart: every segment's materialization is
  // journaled once, in first-materialization order, and the segments a
  // mid-restart transaction touches lead that order.
  EngineOptions opt = TinyOptions();
  opt.instant_recovery = true;
  auto engine = MustOpen(opt);
  ASSERT_TRUE(engine->instant_recovery_enabled());

  const size_t rec_bytes = engine->db().record_bytes();
  const uint32_t rps = engine->params().db.records_per_segment();
  const SegmentId nsegs = engine->db().num_segments();
  for (SegmentId s = 0; s < nsegs; ++s) {
    RecordId r = s * rps;
    MMDB_ASSERT_OK(
        engine->Apply({{r, MakeRecordImage(rec_bytes, r, 1)}}).status());
  }
  MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
  engine->FlushLog();
  MMDB_ASSERT_OK(engine->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine->Crash());
  MMDB_ASSERT_OK(engine->Recover());

  // Mid-restart transactions in a deliberately non-sequential order; each
  // first access stalls on the recovery latch and materializes its segment.
  const SegmentId touch_order[] = {nsegs - 1, 1, nsegs / 2};
  for (SegmentId s : touch_order) {
    RecordId r = s * rps;
    MMDB_ASSERT_OK(
        engine->Apply({{r, MakeRecordImage(rec_bytes, r, 2)}}).status());
  }
  MMDB_ASSERT_OK(engine->DrainRecovery());
  EXPECT_GT(engine->time_to_first_txn(), 0.0);
  EXPECT_LT(engine->time_to_first_txn(), engine->time_to_full_recovery());

  std::string text = JournalText(engine.get());
  auto entries = ParseAuditJournal(text);
  MMDB_ASSERT_OK(entries);

  auto num = [](const AuditEntry& e, const char* key) -> uint64_t {
    const JsonValue* v = e.object.Find(key);
    return v != nullptr && v->is_number()
               ? static_cast<uint64_t>(v->number_value())
               : ~0ull;
  };
  auto str = [](const AuditEntry& e, const char* key) -> std::string {
    const JsonValue* v = e.object.Find(key);
    return v != nullptr ? v->string_value() : std::string();
  };

  // Exactly one on-demand event per segment, the journal's own `order`
  // field counting 0..nsegs-1 in journal order, no segment repeated.
  std::vector<const AuditEntry*> loads;
  for (const AuditEntry& e : *entries) {
    if (e.event == "recovery.segment_on_demand") loads.push_back(&e);
  }
  ASSERT_EQ(loads.size(), static_cast<size_t>(nsegs));
  std::vector<bool> seen(nsegs, false);
  for (size_t i = 0; i < loads.size(); ++i) {
    EXPECT_EQ(num(*loads[i], "order"), i);
    const uint64_t seg = num(*loads[i], "segment");
    ASSERT_LT(seg, nsegs);
    EXPECT_FALSE(seen[seg]) << "segment " << seg << " materialized twice";
    seen[seg] = true;
  }

  // The very first materialization is the first touch: admission
  // materializes the touched segment before any background reload lands.
  EXPECT_EQ(num(*loads[0], "segment"), nsegs - 1);
  EXPECT_EQ(str(*loads[0], "trigger"), "touch");

  // Later planned touches can be pre-empted by a background reload that
  // completes during an earlier stall (then they journal as "background"),
  // but the touch-triggered events that DO exist for our touched segments
  // must appear in touch order.
  std::vector<SegmentId> touched_in_journal;
  for (const AuditEntry* e : loads) {
    if (str(*e, "trigger") != "touch") continue;
    const SegmentId seg = static_cast<SegmentId>(num(*e, "segment"));
    for (SegmentId t : touch_order) {
      if (t == seg) touched_in_journal.push_back(seg);
    }
  }
  ASSERT_FALSE(touched_in_journal.empty());
  size_t cursor = 0;
  for (SegmentId seg : touched_in_journal) {
    while (cursor < std::size(touch_order) && touch_order[cursor] != seg) {
      ++cursor;
    }
    EXPECT_LT(cursor, std::size(touch_order))
        << "touch events out of touch order at segment " << seg;
  }

  // The mid-restart story still verifies against the engine dump.
  auto dump = JsonValue::Parse(engine->DumpMetricsJson());
  MMDB_ASSERT_OK(dump);
  MMDB_EXPECT_OK(VerifyAuditJournal(text, &*dump));
}

TEST_F(AuditEngineTest, CorruptedJournalEntryFailsVerify) {
  auto engine = MustOpen(TinyOptions());
  RunLife(engine.get());

  std::string text = JournalText(engine.get());
  auto dump = JsonValue::Parse(engine->DumpMetricsJson());
  MMDB_ASSERT_OK(dump);
  MMDB_ASSERT_OK(VerifyAuditJournal(text, &*dump));

  // One flipped byte in a complete line must fail verification.
  size_t pos = text.find("\"event\":\"ckpt.");
  ASSERT_NE(pos, std::string::npos);
  std::string tampered = text;
  tampered[pos + 9] = 'x';  // ckpt. -> xkpt.
  EXPECT_FALSE(VerifyAuditJournal(tampered, &*dump).ok());

  // So must a silently dropped tail (the engine's sequence runs past it).
  std::string truncated = text;
  truncated.resize(truncated.rfind('\n', truncated.size() - 2) + 1);
  EXPECT_FALSE(VerifyAuditJournal(truncated, &*dump).ok());
}

TEST_F(AuditEngineTest, ExplainSegmentTellsTheWholeStory) {
  auto engine = MustOpen(TinyOptions());

  // Before any recovery there is nothing to explain.
  {
    auto entries = ParseAuditJournal(JournalText(engine.get()));
    MMDB_ASSERT_OK(entries);
    auto none = ExplainSegment(*entries, 0);
    EXPECT_TRUE(none.status().IsNotFound()) << none.status();
  }

  RunLife(engine.get());
  auto entries = ParseAuditJournal(JournalText(engine.get()));
  MMDB_ASSERT_OK(entries);

  // Segment 0 took a post-checkpoint commit: restored from checkpoint 1,
  // then repainted by replay, and the checkpoint's own chain is in the
  // same journal.
  auto p = ExplainSegment(*entries, 0);
  MMDB_ASSERT_OK(p);
  EXPECT_EQ(p->lineage.checkpoint_id, 1u);
  EXPECT_EQ(p->lineage.copy, 1u);
  EXPECT_FALSE(p->lineage.retried);
  EXPECT_GT(p->lineage.frames, 0u);
  EXPECT_NE(p->lineage.first_lsn, kInvalidLsn);
  EXPECT_TRUE(p->checkpoint_in_journal);
  EXPECT_EQ(p->checkpoint_aborted_attempts, 0u);
  EXPECT_FALSE(p->checkpoint_algorithm.empty());

  // A segment nothing touched after the checkpoint: same provenance, no
  // replay.
  auto quiet = ExplainSegment(*entries, engine->db().num_segments() - 1);
  MMDB_ASSERT_OK(quiet);
  EXPECT_EQ(quiet->lineage.checkpoint_id, 1u);
  EXPECT_EQ(quiet->lineage.frames, 0u);

  auto oor = ExplainSegment(*entries, engine->db().num_segments());
  EXPECT_EQ(oor.status().code(), StatusCode::kOutOfRange) << oor.status();
}

TEST_F(AuditEngineTest, ShardedRecoveryAttributesStreams) {
  EngineOptions opt = TinyOptions();
  opt.shards = 4;
  auto engine = MustOpen(opt);
  RunLife(engine.get());

  // The lineage must name real stream ids: with four streams and commits
  // in every segment, replay touched more than stream 0.
  bool beyond_stream0 = false;
  uint64_t replayed = 0;
  for (const SegmentLineage& l : engine->last_lineage()) {
    if (l.frames > 0) ++replayed;
    for (uint32_t s : l.streams) {
      EXPECT_LT(s, 4u);
      if (s > 0) beyond_stream0 = true;
    }
  }
  EXPECT_GT(replayed, 0u);
  EXPECT_TRUE(beyond_stream0);
  VerifyAuditTrail(engine.get());
}

TEST_F(AuditEngineTest, AuditingNeverPerturbsModeledResults) {
  // Identical lives with the journal on and off: everything outside the
  // dump's "audit" member — metrics registry, trace, recovery stats,
  // shard accounting — must be byte-identical. This is the determinism
  // contract that lets bench_diff treat "audit" as the only sanctioned
  // drift.
  auto run = [&](bool audit_on) {
    EngineOptions opt = TinyOptions();
    opt.audit_journal = audit_on;
    opt.dir = audit_on ? "with_audit" : "without_audit";
    auto engine = MustOpen(opt);
    RunLife(engine.get());
    return engine->DumpMetricsJson();
  };
  // Drop "audit" (the one sanctioned difference) and "wall" (real
  // wall-clock timings, stripped by every determinism gate) at any depth.
  std::function<std::string(const JsonValue&)> strip_value =
      [&](const JsonValue& v) -> std::string {
    JsonWriter w;
    if (v.is_object()) {
      w.BeginObject();
      for (const auto& [key, value] : v.object_items()) {
        if (key == "audit" || key == "wall") continue;
        w.Key(key);
        w.RawValue(strip_value(value));
      }
      w.EndObject();
    } else if (v.is_array()) {
      w.BeginArray();
      for (const JsonValue& item : v.array_items()) {
        w.RawValue(strip_value(item));
      }
      w.EndArray();
    } else {
      return v.Dump();
    }
    return w.TakeString();
  };
  auto strip_audit = [&](const std::string& dump_text) {
    auto doc = JsonValue::Parse(dump_text);
    EXPECT_TRUE(doc.ok()) << doc.status();
    return strip_value(*doc);
  };
  const std::string with = run(true);
  const std::string without = run(false);
  EXPECT_TRUE(JsonValue::Parse(with)->Find("audit") != nullptr);
  EXPECT_EQ(strip_audit(with), strip_audit(without));
}

}  // namespace
}  // namespace mmdb
