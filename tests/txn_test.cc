// Tests for txn/: lock manager semantics, the transaction manager's
// shadow-copy commit protocol, logging, and abort accounting.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "storage/database.h"
#include "storage/segment_table.h"
#include "tests/test_util.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "wal/log_reader.h"

namespace mmdb {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  MMDB_ASSERT_OK(lm.Acquire(1, 10, LockManager::Mode::kShared));
  MMDB_ASSERT_OK(lm.Acquire(2, 10, LockManager::Mode::kShared));
  EXPECT_TRUE(lm.Holds(1, 10, LockManager::Mode::kShared));
  EXPECT_TRUE(lm.Holds(2, 10, LockManager::Mode::kShared));
}

TEST(LockManagerTest, ExclusiveConflictsAbort) {
  LockManager lm;
  MMDB_ASSERT_OK(lm.Acquire(1, 10, LockManager::Mode::kExclusive));
  EXPECT_TRUE(lm.Acquire(2, 10, LockManager::Mode::kExclusive).IsAborted());
  EXPECT_TRUE(lm.Acquire(2, 10, LockManager::Mode::kShared).IsAborted());
  // Re-entrant for the holder.
  MMDB_ASSERT_OK(lm.Acquire(1, 10, LockManager::Mode::kExclusive));
  MMDB_ASSERT_OK(lm.Acquire(1, 10, LockManager::Mode::kShared));
}

TEST(LockManagerTest, UpgradeOnlyForSoleSharer) {
  LockManager lm;
  MMDB_ASSERT_OK(lm.Acquire(1, 10, LockManager::Mode::kShared));
  MMDB_ASSERT_OK(lm.Acquire(1, 10, LockManager::Mode::kExclusive));
  EXPECT_TRUE(lm.Holds(1, 10, LockManager::Mode::kExclusive));

  MMDB_ASSERT_OK(lm.Acquire(2, 11, LockManager::Mode::kShared));
  MMDB_ASSERT_OK(lm.Acquire(3, 11, LockManager::Mode::kShared));
  EXPECT_TRUE(lm.Acquire(2, 11, LockManager::Mode::kExclusive).IsAborted());
}

TEST(LockManagerTest, ReleaseAllFreesTable) {
  LockManager lm;
  MMDB_ASSERT_OK(lm.Acquire(1, 10, LockManager::Mode::kExclusive));
  MMDB_ASSERT_OK(lm.Acquire(1, 11, LockManager::Mode::kShared));
  EXPECT_EQ(lm.num_locked_records(), 2u);
  lm.ReleaseAll(1, {10, 11, 12});  // 12 not held: ignored
  EXPECT_EQ(lm.num_locked_records(), 0u);
  EXPECT_FALSE(lm.IsLocked(10));
  MMDB_ASSERT_OK(lm.Acquire(2, 10, LockManager::Mode::kExclusive));
}

class TxnManagerTest : public testing::Test {
 protected:
  void SetUp() override {
    params_ = SystemParams::TestDefaults();
    params_.db.db_words = 4 * 1024;
    params_.db.segment_words = 1024;
    env_ = NewMemEnv();
    db_ = std::make_unique<Database>(params_.db);
    segments_ = std::make_unique<SegmentTable>(params_.db.num_segments());
    log_ = std::make_unique<LogManager>(env_.get(), "wal.log", params_,
                                        &meter_, false);
    MMDB_ASSERT_OK(log_->Open());
    txns_ = std::make_unique<TxnManager>(db_.get(), segments_.get(),
                                         log_.get(), &timestamps_, &meter_,
                                         params_);
  }

  std::string Image(char fill) {
    return std::string(db_->record_bytes(), fill);
  }

  SystemParams params_;
  std::unique_ptr<Env> env_;
  CpuMeter meter_;
  TimestampOracle timestamps_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<SegmentTable> segments_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<TxnManager> txns_;
};

TEST_F(TxnManagerTest, CommitInstallsLogsAndMarksControlState) {
  Transaction* t = txns_->Begin(0.0);
  EXPECT_EQ(t->id, 1u);
  EXPECT_GT(t->start_ts, 0u);
  Timestamp start_ts = t->start_ts;  // `t` dies at Commit
  MMDB_ASSERT_OK(txns_->Write(t, 40, Image('a'), 0.0));  // segment 1
  auto lsn = txns_->Commit(t, 0.0);
  MMDB_ASSERT_OK(lsn);

  EXPECT_EQ(db_->ReadRecord(40), std::string_view(Image('a')));
  EXPECT_TRUE(segments_->dirty(1, 0));
  EXPECT_TRUE(segments_->dirty(1, 1));
  EXPECT_EQ(segments_->update_lsn(1), *lsn);
  EXPECT_EQ(segments_->timestamp(1), start_ts);
  EXPECT_EQ(txns_->commits(), 1u);

  // The log holds the update group then the commit, contiguously.
  log_->Flush(0.0);
  MMDB_ASSERT_OK(log_->Crash(1000.0));
  auto reader = LogReader::Open(env_.get(), "wal.log");
  MMDB_ASSERT_OK(reader);
  ASSERT_EQ(reader->num_records(), 2u);
  auto first = reader->RecordAt(0);
  MMDB_ASSERT_OK(first);
  EXPECT_EQ(first->type, LogRecordType::kUpdate);
  EXPECT_EQ(first->record_id, 40u);
  EXPECT_EQ(first->image, Image('a'));
}

TEST_F(TxnManagerTest, ReadYourWritesAndSnapshotOfOthers) {
  Transaction* t = txns_->Begin(0.0);
  std::string value;
  MMDB_ASSERT_OK(txns_->Read(t, 5, &value, 0.0));
  EXPECT_EQ(value, Image('\0'));
  MMDB_ASSERT_OK(txns_->Write(t, 5, Image('x'), 0.0));
  MMDB_ASSERT_OK(txns_->Read(t, 5, &value, 0.0));
  EXPECT_EQ(value, Image('x'));
  // Database unchanged until commit.
  EXPECT_EQ(db_->ReadRecord(5), std::string_view(Image('\0')));
  MMDB_ASSERT_OK(txns_->Commit(t, 0.0).status());
  EXPECT_EQ(db_->ReadRecord(5), std::string_view(Image('x')));
}

TEST_F(TxnManagerTest, AbortDiscardsAndLogsAbortRecord) {
  Transaction* t = txns_->Begin(0.0);
  MMDB_ASSERT_OK(txns_->Write(t, 5, Image('x'), 0.0));
  txns_->Abort(t, AbortReason::kUser, 0.0);
  EXPECT_EQ(db_->ReadRecord(5), std::string_view(Image('\0')));
  EXPECT_EQ(txns_->user_aborts(), 1u);
  EXPECT_FALSE(segments_->dirty_any(0));
  EXPECT_EQ(txns_->num_active(), 0u);
}

TEST_F(TxnManagerTest, ColorAbortChargesRerun) {
  Transaction* t = txns_->Begin(0.0);
  MMDB_ASSERT_OK(txns_->Write(t, 5, Image('x'), 0.0));
  double before = meter_.Count(CpuCategory::kTxnRerun);
  txns_->Abort(t, AbortReason::kColorViolation, 0.0);
  EXPECT_EQ(txns_->color_aborts(), 1u);
  EXPECT_DOUBLE_EQ(meter_.Count(CpuCategory::kTxnRerun) - before,
                   params_.txn.instructions);
}

TEST_F(TxnManagerTest, WriteValidatesArguments) {
  Transaction* t = txns_->Begin(0.0);
  EXPECT_TRUE(txns_->Write(t, 1u << 20, Image('x'), 0.0).code() ==
              StatusCode::kOutOfRange);
  EXPECT_TRUE(
      txns_->Write(t, 1, "short", 0.0).IsInvalidArgument());
  txns_->Abort(t, AbortReason::kUser, 0.0);
}

TEST_F(TxnManagerTest, ConflictingWritersAbort) {
  Transaction* a = txns_->Begin(0.0);
  Transaction* b = txns_->Begin(0.0);
  MMDB_ASSERT_OK(txns_->Write(a, 7, Image('a'), 0.0));
  EXPECT_TRUE(txns_->Write(b, 7, Image('b'), 0.0).IsAborted());
  txns_->Abort(b, AbortReason::kLockConflict, 0.0);
  MMDB_ASSERT_OK(txns_->Commit(a, 0.0).status());
  EXPECT_EQ(txns_->lock_aborts(), 1u);
  // After a's release, a new writer proceeds.
  Transaction* c = txns_->Begin(0.0);
  MMDB_ASSERT_OK(txns_->Write(c, 7, Image('c'), 0.0));
  MMDB_ASSERT_OK(txns_->Commit(c, 0.0).status());
  EXPECT_EQ(db_->ReadRecord(7), std::string_view(Image('c')));
}

TEST_F(TxnManagerTest, ActiveTxnListSortedAndLsnFree) {
  Transaction* a = txns_->Begin(0.0);
  Transaction* b = txns_->Begin(0.0);
  auto list = txns_->ActiveTxnList();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].txn_id, a->id);
  EXPECT_EQ(list[1].txn_id, b->id);
  EXPECT_EQ(list[0].first_lsn, kInvalidLsn);
  txns_->Abort(a, AbortReason::kUser, 0.0);
  txns_->Abort(b, AbortReason::kUser, 0.0);
}

TEST_F(TxnManagerTest, TimestampsIncreaseAcrossTransactions) {
  Transaction* a = txns_->Begin(0.0);
  Timestamp ta = a->start_ts;
  MMDB_ASSERT_OK(txns_->Commit(a, 0.0).status());
  Transaction* b = txns_->Begin(0.0);
  EXPECT_GT(b->start_ts, ta);
  txns_->Abort(b, AbortReason::kUser, 0.0);
}

}  // namespace
}  // namespace mmdb
