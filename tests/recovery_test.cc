// RecoveryManager-focused tests: marker location, metadata cross-checks,
// REDO filtering of uncommitted transactions, timing accounting, and
// corruption handling.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "recovery/recovery_manager.h"
#include "tests/test_util.h"
#include "wal/log_reader.h"

namespace mmdb {
namespace {

class RecoveryTest : public testing::Test {
 protected:
  void Open(EngineOptions opt) {
    env_ = NewMemEnv();
    auto engine = Engine::Open(opt, env_.get());
    MMDB_ASSERT_OK(engine);
    engine_ = std::move(*engine);
  }

  std::string Image(RecordId r, uint64_t marker) {
    return MakeRecordImage(engine_->db().record_bytes(), r, marker);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(RecoveryTest, ReplaysCommittedSkipsUncommitted) {
  Open(TinyOptions());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  std::string durable_image = Image(1, 100);
  MMDB_ASSERT_OK(engine_->Apply({{1, durable_image}}).status());
  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));

  // A transaction whose commit record never reaches the disk.
  std::string lost_image = Image(2, 200);
  MMDB_ASSERT_OK(engine_->Apply({{2, lost_image}}).status());

  MMDB_ASSERT_OK(engine_->Crash());
  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  EXPECT_EQ(engine_->ReadRecordRaw(1), std::string_view(durable_image));
  EXPECT_NE(engine_->ReadRecordRaw(2), std::string_view(lost_image));
  EXPECT_GE(stats->updates_applied, 1u);
  EXPECT_GE(stats->txns_redone, 1u);
}

TEST_F(RecoveryTest, RecoveryTimeScalesWithLogBulk) {
  Open(TinyOptions());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  // Small log.
  WorkloadOptions wopt;
  wopt.duration = 0.05;
  wopt.run_checkpoints = false;
  WorkloadDriver d1(engine_.get(), wopt);
  MMDB_ASSERT_OK(d1.Run());
  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());
  auto small = engine_->Recover();
  MMDB_ASSERT_OK(small);

  // Much bigger log on a fresh engine (no intervening checkpoints).
  Open(TinyOptions());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  wopt.duration = 1.0;
  WorkloadDriver d2(engine_.get(), wopt);
  MMDB_ASSERT_OK(d2.Run());
  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());
  auto big = engine_->Recover();
  MMDB_ASSERT_OK(big);

  EXPECT_GT(big->log_bytes_read, small->log_bytes_read * 5);
  EXPECT_GT(big->log_read_seconds, small->log_read_seconds);
  EXPECT_GT(big->total_seconds, small->total_seconds);
  // Backup read time is identical: same database size, same disks.
  EXPECT_NEAR(big->backup_read_seconds, small->backup_read_seconds, 1e-9);
}

TEST_F(RecoveryTest, UsesLatestCompleteCheckpointAfterSeveral) {
  Open(TinyOptions());
  WorkloadOptions wopt;
  wopt.duration = 4.0;
  WorkloadDriver driver(engine_.get(), wopt);
  auto r = driver.Run();
  MMDB_ASSERT_OK(r);
  ASSERT_GE(r->checkpoints_completed, 3u);

  Lsn durable = engine_->DurableLsn();
  CheckpointId last = engine_->scheduler().completed();
  MMDB_ASSERT_OK(engine_->Crash());
  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  // The restored checkpoint is the last *complete* one (the in-progress
  // checkpoint, if any, is skipped).
  EXPECT_GE(stats->checkpoint_id + 1, last);
  VerifyRecovered(*engine_, driver, durable);
}

TEST_F(RecoveryTest, MetadataLogMismatchIsCorruption) {
  Open(TinyOptions());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->Crash());

  // Corrupt the metadata to point at a bogus offset.
  CheckpointMeta bogus;
  bogus.checkpoint_id = 1;
  bogus.copy = 1;
  bogus.log_offset = 4;  // not a frame boundary / wrong marker
  bogus.begin_lsn = 1;
  MMDB_ASSERT_OK(engine_->backup()->CommitCheckpoint(bogus));

  auto stats = engine_->Recover();
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption()) << stats.status();
}

TEST_F(RecoveryTest, TruncatedLogTailIsTolerated) {
  Open(TinyOptions());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  std::string image = Image(3, 7);
  MMDB_ASSERT_OK(engine_->Apply({{3, image}}).status());
  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());

  // Chop bytes off the end of the log file: a torn final flush.
  std::string contents;
  MMDB_ASSERT_OK(env_->ReadFileToString(engine_->LogPath(), &contents));
  contents.resize(contents.size() - 5);
  MMDB_ASSERT_OK(
      env_->WriteStringToFile(engine_->LogPath(), contents, false));

  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  // The torn transaction is simply not recovered.
  EXPECT_NE(engine_->ReadRecordRaw(3), std::string_view(image));
}

TEST_F(RecoveryTest, EngineContinuesAfterRecoveryNewCommitsWork) {
  Open(TinyOptions());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());

  std::string image = Image(9, 42);
  MMDB_ASSERT_OK(engine_->Apply({{9, image}}).status());
  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());
  EXPECT_EQ(engine_->ReadRecordRaw(9), std::string_view(image));
}

TEST_F(RecoveryTest, RecoveryClockAdvancesByModeledTime) {
  Open(TinyOptions());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->Crash());
  double before = engine_->now();
  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  if (engine_->instant_recovery_enabled()) {
    // Instant recovery admits transactions after the log-read phase only;
    // the backup reloads complete on the virtual timeline during the
    // drain (replay CPU is absorbed into on-demand materialization).
    EXPECT_NEAR(engine_->now() - before, stats->log_read_seconds, 1e-12);
    EXPECT_NEAR(engine_->time_to_first_txn(), stats->log_read_seconds,
                1e-12);
    MMDB_ASSERT_OK(engine_->DrainRecovery());
    EXPECT_NEAR(engine_->now() - before,
                stats->log_read_seconds + stats->backup_read_seconds, 1e-12);
    EXPECT_NEAR(engine_->time_to_full_recovery(),
                stats->log_read_seconds + stats->backup_read_seconds, 1e-12);
  } else {
    EXPECT_NEAR(engine_->now() - before, stats->total_seconds, 1e-12);
  }
  EXPECT_GT(stats->backup_read_seconds, 0.0);
}

}  // namespace
}  // namespace mmdb
