// Model-oracle validation (model/model_oracle.h): the analytic model and
// the executable engine stay within a documented envelope of each other on
// a reference configuration, and the residual plumbing (MakeResidual,
// ResidualSummary, JSON shapes) behaves at the edges.
//
// Tolerances (documented in EXPERIMENTS.md): the engine is a discrete
// executable simulation of formulas the paper derives in steady state, so
// residuals are expected but bounded. On the reference config (1 Mword
// database, partial checkpoints, lambda=1000 txn/s, 2.0 virtual seconds,
// seed 42) the FUZZYCOPY/COUCOPY pair currently sits near 0.40 mean
// absolute overhead residual and 0.22 mean absolute recovery residual;
// the asserts leave headroom at 0.55 / 0.35. A breach means either the
// engine or the model moved — investigate, don't widen.

#include <cmath>
#include <string>

#include "bench/figure_util.h"
#include "gtest/gtest.h"
#include "model/model_oracle.h"
#include "util/json.h"

namespace mmdb {
namespace {

constexpr double kMeanAbsOverheadTolerance = 0.55;
constexpr double kMeanAbsRecoveryTolerance = 0.35;

TEST(ModelValidationTest, ReferenceConfigResidualsWithinTolerance) {
  ResidualSummary summary;
  for (Algorithm a : {Algorithm::kFuzzyCopy, Algorithm::kCouCopy}) {
    auto point = bench::MeasureEngine(
        bench::MeasuredOptions(a, CheckpointMode::kPartial,
                               /*stable_tail=*/false),
        /*seconds=*/2.0, /*seed=*/42);
    ASSERT_TRUE(point.ok()) << point.status().ToString();
    ASSERT_TRUE(point->has_validation) << AlgorithmName(a);
    // Sanity: both sides of every pair are populated.
    EXPECT_GT(point->validation.overhead_per_txn.predicted, 0.0);
    EXPECT_GT(point->validation.overhead_per_txn.measured, 0.0);
    EXPECT_GT(point->validation.recovery_seconds.predicted, 0.0);
    EXPECT_GT(point->validation.recovery_seconds.measured, 0.0);
    summary.Add(point->validation);
  }
  ASSERT_EQ(summary.points(), 2u);
  EXPECT_LT(summary.mean_abs_overhead_residual(), kMeanAbsOverheadTolerance)
      << summary.ToJsonString();
  EXPECT_LT(summary.mean_abs_recovery_residual(), kMeanAbsRecoveryTolerance)
      << summary.ToJsonString();
  // The summary JSON carries all four metrics for the sidecar.
  std::string json = summary.ToJsonString();
  for (const char* member :
       {"\"points\":2", "\"overhead_per_txn\"", "\"sync_per_txn\"",
        "\"async_per_txn\"", "\"recovery_seconds\"", "\"mean_abs_residual\"",
        "\"max_abs_residual\""}) {
    EXPECT_NE(json.find(member), std::string::npos) << member;
  }
}

TEST(ModelValidationTest, MakeResidualEdgeCases) {
  ResidualEntry plain = MakeResidual(100.0, 80.0);
  EXPECT_DOUBLE_EQ(plain.residual, -0.2);
  ResidualEntry exact = MakeResidual(50.0, 50.0);
  EXPECT_DOUBLE_EQ(exact.residual, 0.0);
  // Model predicts zero, engine measured zero: agreement, not a blowup.
  ResidualEntry both_zero = MakeResidual(0.0, 0.0);
  EXPECT_DOUBLE_EQ(both_zero.residual, 0.0);
  // Model predicts zero but the engine measured something: the +infinity
  // sentinel, which the JSON layer renders as null.
  ResidualEntry blowup = MakeResidual(0.0, 3.0);
  EXPECT_TRUE(std::isinf(blowup.residual));
  JsonWriter w;
  blowup.ToJson(&w);
  EXPECT_NE(w.str().find("\"residual\":null"), std::string::npos) << w.str();
}

TEST(ModelValidationTest, SummaryAccumulatesMeanAndMax) {
  ModelValidation a;
  a.overhead_per_txn = MakeResidual(100.0, 90.0);    // -0.1
  a.recovery_seconds = MakeResidual(1.0, 1.3);       // +0.3
  ModelValidation b;
  b.overhead_per_txn = MakeResidual(100.0, 130.0);   // +0.3
  b.recovery_seconds = MakeResidual(1.0, 0.9);       // -0.1
  ResidualSummary summary;
  summary.Add(a);
  summary.Add(b);
  EXPECT_EQ(summary.points(), 2u);
  EXPECT_NEAR(summary.mean_abs_overhead_residual(), 0.2, 1e-12);
  EXPECT_NEAR(summary.max_abs_overhead_residual(), 0.3, 1e-12);
  EXPECT_NEAR(summary.mean_abs_recovery_residual(), 0.2, 1e-12);
  EXPECT_NEAR(summary.max_abs_recovery_residual(), 0.3, 1e-12);
  // Empty summary: well-defined zeros, no division by zero.
  ResidualSummary empty;
  EXPECT_EQ(empty.points(), 0u);
  EXPECT_DOUBLE_EQ(empty.mean_abs_overhead_residual(), 0.0);
}

TEST(ModelValidationTest, ValidationJsonShape) {
  MeasuredMetrics measured;
  measured.overhead_per_txn = 2682.7;
  measured.sync_per_txn = 2067.2;
  measured.async_per_txn = 615.5;
  measured.recovery_seconds = 0.749;
  auto validation = CompareToModel(
      bench::ModelInputsFromOptions(bench::MeasuredOptions(
          Algorithm::kCouCopy, CheckpointMode::kPartial, false)),
      measured);
  ASSERT_TRUE(validation.ok()) << validation.status().ToString();
  std::string json = validation->ToJsonString();
  StatusOr<JsonValue> doc = JsonValue::Parse(json);
  ASSERT_TRUE(doc.ok()) << json;
  for (const char* metric : {"overhead_per_txn", "sync_per_txn",
                             "async_per_txn", "recovery_seconds"}) {
    const JsonValue* block = doc->Find(metric);
    ASSERT_NE(block, nullptr) << metric;
    EXPECT_NE(block->Find("predicted"), nullptr) << metric;
    EXPECT_NE(block->Find("measured"), nullptr) << metric;
    EXPECT_NE(block->Find("residual"), nullptr) << metric;
  }
}

}  // namespace
}  // namespace mmdb
