// End-to-end observability: run checkpoints, a crash and recovery against
// a real engine, then validate the exported JSON — the trace must parse,
// checkpoint begin/end events must pair up, and the recovery phase
// breakdown (backup reload vs log read vs replay) must be present and
// consistent with the RecoveryStats the engine returned.

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/workload.h"
#include "env/env.h"
#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "obs/metered_env.h"
#include "tests/test_util.h"
#include "util/json.h"

namespace mmdb {
namespace {

StatusOr<JsonValue> DumpAndParse(const Engine& engine) {
  return JsonValue::Parse(engine.DumpMetricsJson());
}

TEST(ObsE2eTest, CheckpointCrashRecoveryTraceIsWellFormed) {
  auto env = NewMemEnv();
  EngineOptions opt = TinyOptions();
  auto engine = Engine::Open(opt, env.get());
  MMDB_ASSERT_OK(engine);
  Engine& e = **engine;

  WorkloadOptions wopt;
  wopt.duration = 0.4;
  WorkloadDriver driver(&e, wopt);
  MMDB_ASSERT_OK(driver.Run());
  MMDB_ASSERT_OK(e.RunCheckpointToCompletion());
  MMDB_ASSERT_OK(e.Crash());
  auto recovery = e.Recover();
  MMDB_ASSERT_OK(recovery);
  // Instant recovery publishes its phase events and timers when the
  // on-demand drain completes; blocking recovery makes this a no-op.
  MMDB_ASSERT_OK(e.DrainRecovery());

  StatusOr<JsonValue> doc = DumpAndParse(e);
  MMDB_ASSERT_OK(doc);

  // Checkpoint begin/end events pair by id (the trace ring is large enough
  // that nothing was dropped in this short run).
  const JsonValue* trace = doc->Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->Find("dropped")->number_value(), 0.0);
  std::map<int64_t, int> begins, ends;
  int recovery_begin = 0, recovery_end = 0;
  std::map<std::string, int> recovery_phases;
  for (const JsonValue& ev : trace->Find("events")->array_items()) {
    const std::string& kind = ev.Find("kind")->string_value();
    if (kind == "checkpoint.begin") {
      ++begins[static_cast<int64_t>(ev.Find("checkpoint")->number_value())];
    } else if (kind == "checkpoint.end") {
      ++ends[static_cast<int64_t>(ev.Find("checkpoint")->number_value())];
    } else if (kind == "recovery.begin") {
      ++recovery_begin;
      EXPECT_FALSE(ev.Find("restart")->bool_value());
    } else if (kind == "recovery.phase") {
      ++recovery_phases[ev.Find("phase")->string_value()];
    } else if (kind == "recovery.end") {
      ++recovery_end;
      EXPECT_NEAR(ev.Find("seconds")->number_value(),
                  recovery->total_seconds, 1e-9);
    }
  }
  EXPECT_FALSE(begins.empty());
  EXPECT_EQ(begins, ends) << "every checkpoint.begin needs a matching end";

  // Recovery: one begin, one end, and the full phase breakdown.
  EXPECT_EQ(recovery_begin, 1);
  EXPECT_EQ(recovery_end, 1);
  EXPECT_EQ(recovery_phases["backup_load"], 1);
  EXPECT_EQ(recovery_phases["log_read"], 1);
  EXPECT_EQ(recovery_phases["replay"], 1);

  // Registry: per-phase checkpoint timers, log flush stats, and the
  // recovery reload-vs-replay split all present.
  const JsonValue* metrics = doc->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const char* timer :
       {"ckpt.duration_seconds", "ckpt.flush_io_seconds",
        "ckpt.log_wait_seconds", "ckpt.copy_seconds",
        "recovery.backup_read_seconds", "recovery.log_read_seconds",
        "recovery.replay_cpu_seconds", "recovery.total_seconds"}) {
    const JsonValue* t = metrics->FindPath({"timers", timer});
    ASSERT_NE(t, nullptr) << timer;
    EXPECT_GE(t->Find("count")->number_value(), 1.0) << timer;
  }
  EXPECT_GE(metrics->FindPath({"counters", "log.flush_batches"})
                ->number_value(),
            1.0);
  EXPECT_GE(metrics->FindPath({"counters", "log.append_bytes"})
                ->number_value(),
            1.0);
  EXPECT_GE(metrics->FindPath({"counters", "ckpt.completed"})->number_value(),
            1.0);
  EXPECT_GE(metrics->FindPath({"counters", "recovery.segments_loaded"})
                ->number_value(),
            1.0);

  // Checkpoint history carries the per-phase breakdown per checkpoint.
  const auto& history =
      doc->FindPath({"checkpoints", "history"})->array_items();
  ASSERT_FALSE(history.empty());
  for (const JsonValue& c : history) {
    EXPECT_GE(c.Find("flush_io_seconds")->number_value(), 0.0);
    EXPECT_GE(c.Find("end")->number_value(),
              c.Find("begin")->number_value());
  }
}

TEST(ObsE2eTest, HistoryCapBoundsRetainedCheckpoints) {
  auto env = NewMemEnv();
  EngineOptions opt = TinyOptions();
  opt.checkpoint_history_cap = 2;
  auto engine = Engine::Open(opt, env.get());
  MMDB_ASSERT_OK(engine);
  Engine& e = **engine;
  for (int i = 0; i < 5; ++i) {
    MMDB_ASSERT_OK(e.RunCheckpointToCompletion());
  }
  EXPECT_EQ(e.checkpointer().history().size(), 2u);
  EXPECT_EQ(e.checkpointer().history_dropped(), 3u);
  // Retained entries are the newest, in order.
  EXPECT_EQ(e.checkpointer().history().back().id,
            e.checkpointer().history().front().id + 1);

  StatusOr<JsonValue> doc = DumpAndParse(e);
  MMDB_ASSERT_OK(doc);
  EXPECT_EQ(doc->FindPath({"checkpoints", "history_cap"})->number_value(),
            2.0);
  EXPECT_EQ(doc->FindPath({"checkpoints", "history_dropped"})->number_value(),
            3.0);
  EXPECT_EQ(doc->FindPath({"metrics", "counters", "ckpt.history_dropped"})
                ->number_value(),
            3.0);
}

TEST(ObsE2eTest, MetricsDisabledStillDumpsValidJson) {
  auto env = NewMemEnv();
  EngineOptions opt = TinyOptions();
  opt.enable_metrics = false;
  auto engine = Engine::Open(opt, env.get());
  MMDB_ASSERT_OK(engine);
  Engine& e = **engine;
  EXPECT_EQ(e.metrics(), nullptr);
  EXPECT_EQ(e.tracer(), nullptr);
  MMDB_ASSERT_OK(e.RunCheckpointToCompletion());
  StatusOr<JsonValue> doc = DumpAndParse(e);
  MMDB_ASSERT_OK(doc);
  EXPECT_TRUE(doc->Find("metrics")->is_null());
  EXPECT_TRUE(doc->Find("trace")->is_null());
  EXPECT_FALSE(
      doc->FindPath({"checkpoints", "history"})->array_items().empty());
}

TEST(ObsE2eTest, FaultInjectionAppearsInTraceThroughMeteredEnv) {
  // The documented composition: FaultInjectionEnv(MeteredEnv(base)), with
  // the fault env outermost so the engine finds it and the meter only sees
  // operations that reach the device.
  auto base = NewMemEnv();
  MetricsRegistry shared;
  MeteredEnv metered(base.get(), &shared);
  FaultInjectionEnv faults(&metered);

  EngineOptions opt = TinyOptions();
  opt.shared_metrics = &shared;
  auto engine = Engine::Open(opt, &faults);
  MMDB_ASSERT_OK(engine);
  Engine& e = **engine;
  EXPECT_EQ(e.metrics(), &shared);

  FaultRule rule;
  rule.kind = FaultKind::kWriteError;
  rule.path_substring = "wal";
  faults.InjectFault(rule);

  // Commit only buffers the records; the explicit flush is the first
  // device write on the log and hits the injected error.
  Transaction* t = e.Begin();
  MMDB_ASSERT_OK(e.Write(t, 0, std::string(e.db().record_bytes(), 'x')));
  MMDB_ASSERT_OK(e.Commit(t).status());
  EXPECT_FALSE(e.FlushLog().ok());

  EXPECT_EQ(shared.counter("faults.injected")->value(), 1u);
  bool saw_fault = false, saw_flush_error = false;
  for (const TraceEvent& ev : e.tracer()->Snapshot()) {
    if (ev.type == TraceEventType::kFaultInjected) {
      saw_fault = true;
      EXPECT_EQ(static_cast<FaultKind>(ev.a), FaultKind::kWriteError);
    }
    if (ev.type == TraceEventType::kLogFlushError) saw_flush_error = true;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_flush_error);
  // The meter saw the log traffic underneath.
  EXPECT_GE(shared.counter("env.log.write_ops")->value(), 1u);
}

}  // namespace
}  // namespace mmdb
