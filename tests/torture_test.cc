// Randomized torture suite: long mixed histories of transactions,
// checkpoints, crashes at arbitrary points (including mid-sweep and
// mid-flush), recoveries and cold restarts — each followed by an exact
// durability audit against an independently maintained oracle.
//
// Where the structured suites pin down one behaviour each, this one walks
// random interleavings looking for anything the others missed. Failures
// print the seed; reruns are fully deterministic.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace mmdb {
namespace {

struct TortureCase {
  Algorithm algorithm;
  bool stable_tail;
  uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<TortureCase>& info) {
  return std::string(AlgorithmName(info.param.algorithm)) +
         (info.param.stable_tail ? "_stable_" : "_volatile_") + "seed" +
         std::to_string(info.param.seed);
}

// Oracle entry: every committed image for a record, in commit order.
struct Commit {
  Lsn lsn;
  std::string image;
};

class TortureTest : public testing::TestWithParam<TortureCase> {};

TEST_P(TortureTest, RandomHistoryNeverLosesDurableData) {
  const TortureCase& param = GetParam();
  Random rng(param.seed * 0x9e3779b97f4a7c15ull + 1);

  EngineOptions opt = TinyOptions();
  opt.algorithm = param.algorithm;
  opt.stable_log_tail = param.stable_tail;
  opt.checkpoint_mode =
      rng.Bernoulli(0.5) ? CheckpointMode::kPartial : CheckpointMode::kFull;
  opt.truncate_log_at_checkpoint = rng.Bernoulli(0.5);
  if (rng.Bernoulli(0.3)) opt.max_snapshot_buffers = 4;

  std::unique_ptr<Env> env = NewMemEnv();
  auto engine_or = Engine::Open(opt, env.get());
  MMDB_ASSERT_OK(engine_or);
  std::unique_ptr<Engine> engine = std::move(*engine_or);

  const uint64_t n = engine->db().num_records();
  const size_t rec_bytes = engine->db().record_bytes();
  std::map<RecordId, std::vector<Commit>> oracle;
  uint64_t marker = 1;

  // A crash discards every commit whose log records had not landed; their
  // LSNs are reused by post-recovery transactions, so stale oracle entries
  // must be dropped or they would alias new ones.
  auto prune_oracle = [&](Lsn durable_at_crash) {
    for (auto& [record, commits] : oracle) {
      std::erase_if(commits, [&](const Commit& c) {
        return c.lsn > durable_at_crash;
      });
    }
  };

  auto audit = [&](const char* when) {
    Lsn durable = engine->DurableLsn();
    const std::string zeros(rec_bytes, '\0');
    for (const auto& [record, commits] : oracle) {
      std::string_view actual = engine->ReadRecordRaw(record);
      // Find the newest durable image; after crash+recovery the record
      // must hold exactly it (volatile-only commits died with memory).
      std::string_view expected = zeros;
      for (const Commit& c : commits) {
        if (c.lsn <= durable) expected = c.image;
      }
      ASSERT_EQ(actual, expected)
          << when << ": record " << record << ", durable lsn " << durable
          << ", seed " << param.seed;
    }
  };

  const int kSteps = 600;
  for (int step = 0; step < kSteps; ++step) {
    uint64_t dice = rng.Uniform(100);
    if (dice < 55) {
      // A transaction of 1..6 updates (possibly retried on two-color
      // conflicts with a fresh record set, like the workload driver).
      for (int attempt = 0; attempt < 200; ++attempt) {
        uint32_t k = 1 + rng.Uniform(6);
        std::vector<std::pair<RecordId, std::string>> updates;
        for (uint32_t i = 0; i < k; ++i) {
          RecordId r = rng.Uniform(n);
          updates.emplace_back(r, MakeRecordImage(rec_bytes, r, marker));
        }
        Transaction* txn = engine->Begin();
        Status st = Status::OK();
        for (const auto& [r, image] : updates) {
          st = engine->Write(txn, r, image);
          if (!st.ok()) break;
        }
        if (!st.ok()) {
          engine->Abort(txn, st.IsAborted() ? AbortReason::kColorViolation
                                            : AbortReason::kUser);
          ASSERT_TRUE(st.IsAborted()) << st << " seed " << param.seed;
          MMDB_ASSERT_OK(engine->AdvanceTime(0.002));
          continue;
        }
        auto lsn = engine->Commit(txn);
        MMDB_ASSERT_OK(lsn);
        for (auto& [r, image] : updates) {
          // Within one txn the later write to a duplicate record wins;
          // emplace order preserves that (map scan finds the last).
          oracle[r].push_back(Commit{*lsn, image});
        }
        ++marker;
        break;
      }
    } else if (dice < 70) {
      MMDB_ASSERT_OK(engine->AdvanceTime(rng.NextDouble() * 0.05));
    } else if (dice < 80) {
      if (!engine->CheckpointInProgress()) {
        MMDB_ASSERT_OK(engine->StartCheckpoint());
      } else {
        MMDB_ASSERT_OK(engine->StepCheckpoint());
      }
    } else if (dice < 90) {
      if (engine->CheckpointInProgress() && rng.Bernoulli(0.5)) {
        MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
      } else {
        engine->FlushLog();
      }
    } else if (dice < 97) {
      // Crash at whatever state we're in, then recover in-process.
      prune_oracle(engine->DurableLsn());
      MMDB_ASSERT_OK(engine->Crash());
      MMDB_ASSERT_OK(engine->Recover());
      audit("after crash/recover");
    } else {
      // Cold restart: power failure, process dies, new engine opens the
      // directory.
      prune_oracle(engine->DurableLsn());
      MMDB_ASSERT_OK(engine->Crash());
      engine.reset();
      auto reopened = Engine::OpenExisting(opt, env.get());
      MMDB_ASSERT_OK(reopened);
      engine = std::move(*reopened);
      audit("after cold restart");
    }
  }

  // Final audit after settling all in-flight I/O.
  engine->FlushLog();
  MMDB_ASSERT_OK(engine->AdvanceTime(1.0));
  prune_oracle(engine->DurableLsn());
  MMDB_ASSERT_OK(engine->Crash());
  MMDB_ASSERT_OK(engine->Recover());
  audit("final");
  // The journal saw every checkpoint, crash and recovery of the whole
  // walk; one structural + cross-check pass at the end covers them all.
  VerifyAuditTrail(engine.get());
}

std::vector<TortureCase> AllCases() {
  std::vector<TortureCase> cases;
  for (Algorithm a : kAllAlgorithms) {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      bool needs_stable = a == Algorithm::kFastFuzzy;
      cases.push_back(TortureCase{a, needs_stable || seed == 3, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomHistories, TortureTest,
                         testing::ValuesIn(AllCases()), CaseName);

// The same random walk with a hostile device layer: every so often a single
// transient fault (failed write, short write, failed sync) is armed a few
// I/O operations in the future and lands wherever it lands — mid-commit,
// mid-sweep, during metadata rewrites, during log truncation. The engine
// may surface IO_ERROR to the caller at those points, but the durability
// contract must hold unconditionally: after faults are cleared and the
// engine crashes and recovers, every record holds exactly its newest
// durably-logged image.
class FaultTortureTest : public testing::TestWithParam<TortureCase> {};

TEST_P(FaultTortureTest, TransientDeviceFaultsNeverLoseDurableData) {
  const TortureCase& param = GetParam();
  Random rng(param.seed * 0xc2b2ae3d27d4eb4full + 7);

  EngineOptions opt = TinyOptions();
  opt.algorithm = param.algorithm;
  opt.stable_log_tail = param.stable_tail;
  opt.checkpoint_mode =
      rng.Bernoulli(0.5) ? CheckpointMode::kPartial : CheckpointMode::kFull;
  opt.truncate_log_at_checkpoint = rng.Bernoulli(0.5);

  std::unique_ptr<Env> base = NewMemEnv();
  FaultInjectionEnv fenv(base.get());
  auto engine_or = Engine::Open(opt, &fenv);
  MMDB_ASSERT_OK(engine_or);
  std::unique_ptr<Engine> engine = std::move(*engine_or);

  const uint64_t n = engine->db().num_records();
  const size_t rec_bytes = engine->db().record_bytes();
  std::map<RecordId, std::vector<Commit>> oracle;
  uint64_t marker = 1;

  auto prune_oracle = [&](Lsn durable_at_crash) {
    for (auto& [record, commits] : oracle) {
      std::erase_if(commits, [&](const Commit& c) {
        return c.lsn > durable_at_crash;
      });
    }
  };

  auto audit = [&](const char* when) {
    Lsn durable = engine->DurableLsn();
    const std::string zeros(rec_bytes, '\0');
    for (const auto& [record, commits] : oracle) {
      std::string_view actual = engine->ReadRecordRaw(record);
      std::string_view expected = zeros;
      for (const Commit& c : commits) {
        if (c.lsn <= durable) expected = c.image;
      }
      ASSERT_EQ(actual, expected)
          << when << ": record " << record << ", durable lsn " << durable
          << ", seed " << param.seed;
    }
  };

  auto ok_or_io_error = [&](const Status& st, const char* what) {
    ASSERT_TRUE(st.ok() || st.IsIoError())
        << what << ": " << st << " seed " << param.seed;
  };

  const FaultKind kKinds[3] = {FaultKind::kWriteError, FaultKind::kShortWrite,
                               FaultKind::kSyncError};
  const int kSteps = 400;
  for (int step = 0; step < kSteps; ++step) {
    if (rng.Bernoulli(0.05)) {
      // Arm one transient fault a few device operations in the future, on
      // whatever file that operation happens to hit.
      fenv.InjectFault(FaultRule{kKinds[rng.Uniform(3)], "",
                                 fenv.op_count() + rng.Uniform(40),
                                 /*times=*/1});
    }
    uint64_t dice = rng.Uniform(100);
    if (dice < 55) {
      for (int attempt = 0; attempt < 200; ++attempt) {
        uint32_t k = 1 + rng.Uniform(6);
        std::vector<std::pair<RecordId, std::string>> updates;
        for (uint32_t i = 0; i < k; ++i) {
          RecordId r = rng.Uniform(n);
          updates.emplace_back(r, MakeRecordImage(rec_bytes, r, marker));
        }
        Transaction* txn = engine->Begin();
        Status st = Status::OK();
        for (const auto& [r, image] : updates) {
          st = engine->Write(txn, r, image);
          if (!st.ok()) break;
        }
        if (!st.ok()) {
          engine->Abort(txn, st.IsAborted() ? AbortReason::kColorViolation
                                            : AbortReason::kUser);
          ASSERT_TRUE(st.IsAborted()) << st << " seed " << param.seed;
          ASSERT_NO_FATAL_FAILURE(
              ok_or_io_error(engine->AdvanceTime(0.002), "backoff"));
          continue;
        }
        auto lsn = engine->Commit(txn);
        Lsn committed;
        if (lsn.ok()) {
          committed = *lsn;
        } else {
          // A failed group flush: the transaction IS applied in memory at
          // the LSN the log assigned; a later successful flush makes it
          // durable. The audit decides survival by durable LSN either way.
          ASSERT_TRUE(lsn.status().IsIoError())
              << lsn.status() << " seed " << param.seed;
          committed = engine->log()->LastLsn();
        }
        for (auto& [r, image] : updates) {
          oracle[r].push_back(Commit{committed, image});
        }
        ++marker;
        break;
      }
    } else if (dice < 70) {
      ASSERT_NO_FATAL_FAILURE(ok_or_io_error(
          engine->AdvanceTime(rng.NextDouble() * 0.05), "advance"));
    } else if (dice < 80) {
      if (!engine->CheckpointInProgress()) {
        ASSERT_NO_FATAL_FAILURE(
            ok_or_io_error(engine->StartCheckpoint(), "start ckpt"));
      } else {
        ASSERT_NO_FATAL_FAILURE(
            ok_or_io_error(engine->StepCheckpoint(), "step ckpt"));
      }
    } else if (dice < 90) {
      if (engine->CheckpointInProgress() && rng.Bernoulli(0.5)) {
        ASSERT_NO_FATAL_FAILURE(ok_or_io_error(
            engine->RunCheckpointToCompletion(), "run ckpt"));
      } else {
        ASSERT_NO_FATAL_FAILURE(
            ok_or_io_error(engine->FlushLog(), "flush"));
      }
    } else {
      // Crash and recover. Faults are cleared first: recovery under live
      // faults (backup fallback, refusal on double damage) has its own
      // deterministic suite in fault_injection_test.cc.
      fenv.ClearFaults();
      prune_oracle(engine->DurableLsn());
      MMDB_ASSERT_OK(engine->Crash());
      MMDB_ASSERT_OK(engine->Recover());
      audit("after crash/recover");
    }
  }

  // Heal the device, settle everything, and audit one last time.
  fenv.ClearFaults();
  MMDB_ASSERT_OK(engine->FlushLog());
  MMDB_ASSERT_OK(engine->AdvanceTime(1.0));
  prune_oracle(engine->DurableLsn());
  MMDB_ASSERT_OK(engine->Crash());
  MMDB_ASSERT_OK(engine->Recover());
  audit("final");
  VerifyAuditTrail(engine.get());
}

std::vector<TortureCase> FaultCases() {
  std::vector<TortureCase> cases;
  // One representative per mechanism family: plain fuzzy, paint bits,
  // copy-on-update, segment-shadow emulation, record-overlay snapshot.
  for (Algorithm a : {Algorithm::kFuzzyCopy, Algorithm::kTwoColorFlush,
                      Algorithm::kCouCopy, Algorithm::kZigzag,
                      Algorithm::kHourglass}) {
    for (uint64_t seed : {1ull, 2ull}) {
      cases.push_back(TortureCase{a, /*stable_tail=*/false, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FaultyDevices, FaultTortureTest,
                         testing::ValuesIn(FaultCases()), CaseName);

}  // namespace
}  // namespace mmdb
