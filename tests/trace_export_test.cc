// Perfetto/Chrome trace_event exporter (obs/trace_export.h): the name
// table is complete and collision-free, a scripted ring covering every
// TraceEventType exports to the committed golden file byte for byte, and
// the emitted document is structurally valid trace_event JSON (the
// contract chrome://tracing and ui.perfetto.dev load).
//
// Regenerate the golden after an intentional format change with
//   MMDB_REGENERATE_GOLDEN=1 ./trace_export_test

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "checkpoint/checkpointer.h"
#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "util/json.h"
#include "wal/log_record.h"

namespace mmdb {
namespace {

TEST(TraceEventTableTest, NamesNonEmptyAndUnique) {
  std::set<std::string> seen;
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    auto type = static_cast<TraceEventType>(i);
    std::string name(TraceEventTypeName(type));
    EXPECT_FALSE(name.empty()) << "enumerator " << i;
    EXPECT_NE(name, "unknown") << "enumerator " << i;
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate name '" << name << "' at enumerator " << i;
  }
  EXPECT_EQ(seen.size(), kNumTraceEventTypes);
}

TEST(TraceEventTableTest, FieldTableConsistent) {
  std::set<std::string> json_names;
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    auto type = static_cast<TraceEventType>(i);
    const TraceEventFields& fields = TraceEventFieldsFor(type);
    // t2_is_end_time only makes sense when the type has a t2 member.
    if (fields.t2_name == nullptr) {
      EXPECT_FALSE(fields.t2_is_end_time) << i;
    }
    json_names.clear();
    if (fields.t2_name != nullptr) json_names.insert(fields.t2_name);
    size_t named = json_names.size();
    for (const TraceFieldSpec* spec : {&fields.a, &fields.b, &fields.c}) {
      // A field is either fully specified or fully absent.
      EXPECT_EQ(spec->name == nullptr,
                spec->coding == TraceFieldCoding::kNone)
          << "enumerator " << i;
      if (spec->name != nullptr) {
        json_names.insert(spec->name);
        ++named;
      }
    }
    // No two members of one event may share a JSON spelling.
    EXPECT_EQ(json_names.size(), named) << "enumerator " << i;
  }
  // Out-of-range lookups clamp instead of reading past the table.
  EXPECT_EQ(&TraceEventFieldsFor(static_cast<TraceEventType>(255)),
            &TraceEventFieldsFor(static_cast<TraceEventType>(0)));
}

// One scripted event per TraceEventType (plus the degraded unmatched-end
// path), at exact binary-fraction times so the golden bytes carry no
// floating-point noise.
void Script(Tracer* t) {
  t->Record(TraceEventType::kCheckpointBegin, 0.125, 0, 1,
                static_cast<int64_t>(Algorithm::kFuzzyCopy),
                static_cast<int64_t>(CheckpointMode::kPartial));
  t->Record(TraceEventType::kCheckpointSegmentWrite, 0.25, 0.375, 7, 0,
                65536);
  t->Record(TraceEventType::kLogAppend, 0.5, 0, 41,
                static_cast<int64_t>(LogRecordType::kUpdate), 48);
  t->Record(TraceEventType::kLogFlush, 0.5, 0.625, 41, 4096);
  t->Record(TraceEventType::kLogFlushError, 0.75, 0, 42);
  t->Record(TraceEventType::kLockWait, 0.875, 1.0);
  t->Record(TraceEventType::kLockConflict, 1.0, 0, 9, 123);
  t->Record(TraceEventType::kFaultInjected, 1.125, 0,
                static_cast<int64_t>(FaultKind::kWriteError), 5);
  t->Record(TraceEventType::kCheckpointEnd, 1.25, 0, 1, 100, 28);
  t->Record(TraceEventType::kCheckpointBegin, 1.3125, 0, 2,
                static_cast<int64_t>(Algorithm::kCouCopy),
                static_cast<int64_t>(CheckpointMode::kFull));
  t->Record(TraceEventType::kCheckpointAbort, 1.375, 0, 2, 17, 0);
  // A begin that fell out of the ring: its end degrades to an instant.
  t->Record(TraceEventType::kCheckpointEnd, 1.4375, 0, 3, 0, 0);
  t->Record(TraceEventType::kRecoveryBegin, 1.5, 0, 1);
  t->Record(TraceEventType::kRecoveryPhase, 1.5, 0.125,
                static_cast<int64_t>(RecoveryPhase::kBackupLoad), 128, 2);
  t->Record(TraceEventType::kRecoveryPhase, 1.5, 0.0625,
                static_cast<int64_t>(RecoveryPhase::kLogRead), 8192, 0);
  t->Record(TraceEventType::kRecoveryPhase, 1.5, 0.3125,
                static_cast<int64_t>(RecoveryPhase::kReplay), 200, 12);
  t->Record(TraceEventType::kRecoveryFanout, 1.5, 0, 4, 128, 12);
  t->Record(TraceEventType::kRecoveryEnd, 1.5, 0.5, 2);
  // Instant recovery: a touch-triggered on-demand reload (flows from the
  // stalling transaction on the lock track) and a background one.
  t->Record(TraceEventType::kRecoverySegmentOnDemand, 2.0, 2.25, 5, 0, 0);
  t->Record(TraceEventType::kRecoverySegmentOnDemand, 2.0, 2.5, 9, 1, 1);
}

std::string GoldenPath() {
  return std::string(MMDB_TESTDATA_DIR) + "/trace_export_golden.json";
}

TEST(TraceExportTest, MatchesGoldenFile) {
  Tracer tracer(64);
  Script(&tracer);
  StatusOr<std::string> exported = ChromeTraceFromTracer(tracer, "scripted");
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  std::string produced = *exported + "\n";
  if (std::getenv("MMDB_REGENERATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(GoldenPath().c_str(), "wb");
    ASSERT_NE(f, nullptr) << GoldenPath();
    std::fwrite(produced.data(), 1, produced.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }
  std::FILE* f = std::fopen(GoldenPath().c_str(), "rb");
  ASSERT_NE(f, nullptr) << GoldenPath()
                        << " missing; run with MMDB_REGENERATE_GOLDEN=1";
  std::string golden;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) golden.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(produced, golden)
      << "exporter output drifted from the committed golden; regenerate "
         "with MMDB_REGENERATE_GOLDEN=1 if the change is intentional";
}

TEST(TraceExportTest, OutputIsStructurallyValidTraceEventJson) {
  Tracer tracer(64);
  Script(&tracer);
  StatusOr<std::string> exported = ChromeTraceFromTracer(tracer, "scripted");
  ASSERT_TRUE(exported.ok());
  StatusOr<JsonValue> doc = JsonValue::Parse(*exported);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  const JsonValue* unit = doc->Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string_value(), "ms");

  std::set<std::string> cats;
  std::set<std::string> thread_names;
  int begins = 0, ends = 0, flow_starts = 0, flow_finishes = 0;
  for (const JsonValue& e : events->array_items()) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    const std::string& phase = ph->string_value();
    ASSERT_TRUE(phase == "M" || phase == "B" || phase == "E" ||
                phase == "X" || phase == "i" || phase == "s" || phase == "f")
        << phase;
    ASSERT_NE(e.Find("pid"), nullptr);
    if (phase == "s" || phase == "f") {
      // Flow events: checkpoint provenance (checkpoint id binds start to
      // finish) or an on-demand recovery arrow (1000000 + segment); either
      // way the finish attaches to the enclosing slice's end.
      ASSERT_NE(e.Find("id"), nullptr);
      EXPECT_GT(e.Find("id")->number_value(), 0.0);
      EXPECT_EQ(e.Find("cat")->string_value(), "flow");
      const std::string& flow_name = e.Find("name")->string_value();
      EXPECT_TRUE(flow_name == "checkpoint_provenance" ||
                  flow_name == "recovery_on_demand")
          << flow_name;
      if (phase == "f") {
        ASSERT_NE(e.Find("bp"), nullptr);
        EXPECT_EQ(e.Find("bp")->string_value(), "e");
        ++flow_finishes;
      } else {
        ++flow_starts;
      }
      continue;
    }
    ASSERT_NE(e.Find("args"), nullptr);
    if (phase == "M") {
      const JsonValue* name = e.Find("name");
      ASSERT_NE(name, nullptr);
      if (name->string_value() == "thread_name") {
        thread_names.insert(e.FindPath({"args", "name"})->string_value());
      }
      continue;
    }
    // Every non-metadata event sits on the virtual timeline in µs.
    const JsonValue* ts = e.Find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is_number());
    EXPECT_GE(ts->number_value(), 0.0);
    ASSERT_NE(e.Find("tid"), nullptr);
    cats.insert(e.Find("cat")->string_value());
    if (phase == "X") {
      const JsonValue* dur = e.Find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number_value(), 0.0);
    }
    if (phase == "i") {
      ASSERT_NE(e.Find("s"), nullptr);  // instants need a scope
    }
    if (phase == "B") ++begins;
    if (phase == "E") ++ends;
  }
  // The scripted ring covers every component the acceptance criteria name.
  for (const char* cat : {"checkpoint", "log", "lock", "fault", "recovery"}) {
    EXPECT_EQ(cats.count(cat), 1u) << cat;
  }
  for (const char* track : {"checkpoint", "checkpoint.io", "log", "lock",
                            "fault", "recovery", "recovery.on_demand"}) {
    EXPECT_EQ(thread_names.count(track), 1u) << track;
  }
  // Slices balance: B/E pairs match (unmatched ends degrade to instants).
  EXPECT_EQ(begins, ends);
  // Both scripted kCheckpointEnds start a flow and the single kRecoveryEnd
  // (which restored checkpoint 2) finishes one; the touch-triggered
  // on-demand reload starts and finishes its own arrow.
  EXPECT_EQ(flow_starts, 3);
  EXPECT_EQ(flow_finishes, 2);
}

TEST(TraceExportTest, RecoveryPhasesLaidOutSequentially) {
  Tracer tracer(64);
  Script(&tracer);
  StatusOr<std::string> exported = ChromeTraceFromTracer(tracer, "scripted");
  ASSERT_TRUE(exported.ok());
  StatusOr<JsonValue> doc = JsonValue::Parse(*exported);
  ASSERT_TRUE(doc.ok());
  // The three phases are recorded at the same virtual instant (1.5 s) with
  // durations 0.125/0.0625/0.3125; the exporter must chain them.
  double expect_ts = 1.5e6;
  int phases = 0;
  for (const JsonValue& e : doc->Find("traceEvents")->array_items()) {
    const JsonValue* name = e.Find("name");
    if (name == nullptr || name->string_value() != "recovery.phase") continue;
    EXPECT_DOUBLE_EQ(e.Find("ts")->number_value(), expect_ts) << phases;
    expect_ts += e.Find("dur")->number_value();
    ++phases;
  }
  EXPECT_EQ(phases, 3);
  EXPECT_DOUBLE_EQ(expect_ts, 2.0e6);  // == kRecoveryEnd's close time
}

TEST(TraceExportTest, SidecarBecomesOneProcessPerPoint) {
  Tracer tracer(64);
  Script(&tracer);
  std::string trace_json = tracer.ToJsonString();
  std::string sidecar =
      R"({"bench":"t","points":[)"
      R"({"label":"A","engine":{"trace":)" + trace_json + R"(}},)"
      R"({"label":"broken","error":"INTERNAL: nope"},)"
      R"({"label":"no_trace","engine":{"trace":null}},)"
      R"({"label":"B","engine":{"trace":)" + trace_json + R"(}}]})";
  TraceExportStats stats;
  StatusOr<std::string> exported = ChromeTraceFromMetricsJson(sidecar, &stats);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  StatusOr<JsonValue> doc = JsonValue::Parse(*exported);
  ASSERT_TRUE(doc.ok());
  std::set<double> pids;
  std::set<std::string> process_names;
  for (const JsonValue& e : doc->Find("traceEvents")->array_items()) {
    pids.insert(e.Find("pid")->number_value());
    const JsonValue* name = e.Find("name");
    if (name->string_value() == "process_name") {
      process_names.insert(e.FindPath({"args", "name"})->string_value());
    }
  }
  // Points 1 and 4 export; the error point and the trace-less point skip.
  EXPECT_EQ(pids, (std::set<double>{1.0, 4.0}));
  EXPECT_EQ(process_names, (std::set<std::string>{"A", "B"}));
  EXPECT_GT(stats.events_exported, 0u);
  EXPECT_EQ(stats.events_skipped, 0u);
}

// TraceExportOptions::shard_tracks routes segment writes onto per-shard
// checkpoint.io tracks using the same range partition as core/shard.h:
// with 8 segments over 4 shards, segments {0,1} -> shard0, {2,3} ->
// shard1, {4,5} -> shard2, {6,7} -> shard3.
TEST(TraceExportTest, ShardTracksRouteSegmentWritesByRangePartition) {
  Tracer tracer(64);
  for (uint32_t seg : {0u, 2u, 5u, 7u}) {
    tracer.Record(TraceEventType::kCheckpointSegmentWrite, 0.125 * (seg + 1),
                  0.125 * (seg + 2), seg, 0, 4096);
  }
  std::string doc_json = tracer.ToJsonString();
  StatusOr<JsonValue> parsed = JsonValue::Parse(doc_json);
  ASSERT_TRUE(parsed.ok());

  TraceExportOptions options;
  options.shard_tracks = 4;
  options.num_segments = 8;
  JsonWriter w;
  w.BeginArray();
  TraceExportStats stats;
  ASSERT_TRUE(
      AppendChromeTraceEvents(*parsed, 1, &w, &stats, options).ok());
  w.EndArray();
  StatusOr<JsonValue> events = JsonValue::Parse(w.str());
  ASSERT_TRUE(events.ok());

  std::set<std::string> thread_names;
  std::map<double, double> segment_to_tid;
  double shard_io_base = -1;
  for (const JsonValue& e : events->array_items()) {
    const JsonValue* name = e.Find("name");
    if (name->string_value() == "thread_name") {
      std::string track = e.FindPath({"args", "name"})->string_value();
      thread_names.insert(track);
      if (track == "checkpoint.io.shard0") {
        shard_io_base = e.Find("tid")->number_value();
      }
      continue;
    }
    if (name->string_value() != "checkpoint.segment_write") continue;
    segment_to_tid[e.FindPath({"args", "segment"})->number_value()] =
        e.Find("tid")->number_value();
  }
  // The single checkpoint.io track is replaced by one track per shard.
  EXPECT_EQ(thread_names.count("checkpoint.io"), 0u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(thread_names.count("checkpoint.io.shard" + std::to_string(k)),
              1u)
        << k;
  }
  ASSERT_GE(shard_io_base, 0);
  ASSERT_EQ(segment_to_tid.size(), 4u);
  EXPECT_DOUBLE_EQ(segment_to_tid[0], shard_io_base + 0);  // shard 0
  EXPECT_DOUBLE_EQ(segment_to_tid[2], shard_io_base + 1);  // shard 1
  EXPECT_DOUBLE_EQ(segment_to_tid[5], shard_io_base + 2);  // shard 2
  EXPECT_DOUBLE_EQ(segment_to_tid[7], shard_io_base + 3);  // shard 3

  // With num_segments left to be inferred, the max segment observed (7)
  // yields the same 8-segment partition.
  TraceExportOptions inferred;
  inferred.shard_tracks = 4;
  JsonWriter w2;
  w2.BeginArray();
  ASSERT_TRUE(
      AppendChromeTraceEvents(*parsed, 1, &w2, nullptr, inferred).ok());
  w2.EndArray();
  EXPECT_EQ(w2.str(), w.str());

  // Default options keep the classic single-track layout byte for byte.
  JsonWriter classic_opt, classic;
  classic_opt.BeginArray();
  classic.BeginArray();
  ASSERT_TRUE(AppendChromeTraceEvents(*parsed, 1, &classic_opt, nullptr,
                                      TraceExportOptions{})
                  .ok());
  ASSERT_TRUE(AppendChromeTraceEvents(*parsed, 1, &classic).ok());
  classic_opt.EndArray();
  classic.EndArray();
  EXPECT_EQ(classic_opt.str(), classic.str());
  EXPECT_NE(classic.str().find("checkpoint.io"), std::string::npos);
}

TEST(TraceExportTest, RejectsDocumentsWithoutTraceData) {
  auto no_trace = ChromeTraceFromMetricsJson(R"({"algorithm":"FUZZYCOPY"})");
  ASSERT_FALSE(no_trace.ok());
  EXPECT_TRUE(no_trace.status().IsInvalidArgument());
  auto all_errors = ChromeTraceFromMetricsJson(
      R"({"bench":"t","points":[{"label":"x","error":"boom"}]})");
  EXPECT_FALSE(all_errors.ok());
  auto bad_json = ChromeTraceFromMetricsJson("{nope");
  EXPECT_FALSE(bad_json.ok());
}

TEST(TraceExportTest, UnknownKindsAreCountedNotExported) {
  std::string doc =
      R"({"events":[{"seq":0,"kind":"not.a.kind","t":1.0},)"
      R"({"seq":1,"kind":"log.append","t":2.0,"lsn":1,)"
      R"("record_type":"UPDATE","bytes":8},{"seq":2}]})";
  JsonWriter w;
  w.BeginArray();
  TraceExportStats stats;
  StatusOr<JsonValue> parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(AppendChromeTraceEvents(*parsed, 1, &w, &stats).ok());
  w.EndArray();
  EXPECT_EQ(stats.events_exported, 1u);
  EXPECT_EQ(stats.events_skipped, 2u);
}

TEST(TraceExportTest, CounterTrackEventsFromTimeseries) {
  std::string ts_doc =
      R"({"epoch":0.1,"capacity":8,"series":["txn.commits","ckpt.in_progress"],)"
      R"("samples":[{"t":0.1,"v":[5,0]},{"t":0.2,"v":[11,1]},)"
      R"({"t":0.3,"v":[11]}],)"  // malformed width: skipped, not exported
      R"("recorded":3,"dropped":0,"wall":{"sample_seconds":0.001}})";
  StatusOr<JsonValue> parsed = JsonValue::Parse(ts_doc);
  ASSERT_TRUE(parsed.ok());
  JsonWriter w;
  w.BeginArray();
  TraceExportStats stats;
  ASSERT_TRUE(AppendCounterTrackEvents(*parsed, 3, &w, &stats).ok());
  w.EndArray();
  StatusOr<JsonValue> events = JsonValue::Parse(w.str());
  ASSERT_TRUE(events.ok());
  const auto& items = events->array_items();
  // Two well-formed samples * two series = four counter events.
  ASSERT_EQ(items.size(), 4u);
  for (const JsonValue& e : items) {
    EXPECT_EQ(e.Find("ph")->string_value(), "C");
    EXPECT_EQ(e.Find("cat")->string_value(), "timeseries");
    EXPECT_DOUBLE_EQ(e.Find("pid")->number_value(), 3.0);
    ASSERT_NE(e.FindPath({"args", "value"}), nullptr);
  }
  EXPECT_EQ(items[0].Find("name")->string_value(), "txn.commits");
  EXPECT_DOUBLE_EQ(items[0].Find("ts")->number_value(), 0.1e6);  // µs
  EXPECT_DOUBLE_EQ(items[0].FindPath({"args", "value"})->number_value(), 5.0);
  EXPECT_DOUBLE_EQ(items[3].FindPath({"args", "value"})->number_value(), 1.0);
  EXPECT_EQ(stats.events_skipped, 1u);  // the short sample
}

TEST(TraceExportTest, SidecarPointsCarryCounterTracks) {
  Tracer tracer(64);
  Script(&tracer);
  std::string trace_json = tracer.ToJsonString();
  std::string ts_doc =
      R"({"epoch":0.5,"capacity":4,"series":["txn.commits"],)"
      R"("samples":[{"t":0.5,"v":[9]}],"recorded":1,"dropped":0,)"
      R"("wall":{"sample_seconds":0}})";
  std::string sidecar =
      R"({"bench":"t","points":[{"label":"A","engine":{"trace":)" +
      trace_json + R"(,"timeseries":)" + ts_doc +
      R"(}},{"label":"no_ts","engine":{"trace":)" + trace_json +
      R"(,"timeseries":null}}]})";
  StatusOr<std::string> exported = ChromeTraceFromMetricsJson(sidecar);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  StatusOr<JsonValue> doc = JsonValue::Parse(*exported);
  ASSERT_TRUE(doc.ok());
  int counter_events = 0;
  for (const JsonValue& e : doc->Find("traceEvents")->array_items()) {
    if (e.Find("ph")->string_value() != "C") continue;
    ++counter_events;
    // Counter tracks live in the same per-point process as the slices.
    EXPECT_DOUBLE_EQ(e.Find("pid")->number_value(), 1.0);
    EXPECT_EQ(e.Find("name")->string_value(), "txn.commits");
    EXPECT_DOUBLE_EQ(e.FindPath({"args", "value"})->number_value(), 9.0);
  }
  EXPECT_EQ(counter_events, 1);  // the null-timeseries point adds none
}

}  // namespace
}  // namespace mmdb
