// Tests for storage/: the primary database, segment control table, and
// buffer pool.

#include <string>

#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/segment_table.h"

namespace mmdb {
namespace {

DatabaseParams SmallDb() {
  DatabaseParams p;
  p.db_words = 4 * 1024;  // 4 segments of 1024 words
  p.segment_words = 1024;
  p.record_words = 32;
  return p;
}

TEST(DatabaseTest, GeometryAndAddressing) {
  Database db(SmallDb());
  EXPECT_EQ(db.num_segments(), 4u);
  EXPECT_EQ(db.num_records(), 128u);
  EXPECT_EQ(db.record_bytes(), 128u);
  EXPECT_EQ(db.segment_bytes(), 4096u);
  EXPECT_EQ(db.SegmentOf(0), 0u);
  EXPECT_EQ(db.SegmentOf(31), 0u);
  EXPECT_EQ(db.SegmentOf(32), 1u);
  EXPECT_EQ(db.SegmentOf(127), 3u);
}

TEST(DatabaseTest, RecordReadWriteRoundTrip) {
  Database db(SmallDb());
  std::string image(db.record_bytes(), 'A');
  db.WriteRecord(5, image);
  EXPECT_EQ(db.ReadRecord(5), std::string_view(image));
  // Neighbors untouched.
  std::string zeros(db.record_bytes(), '\0');
  EXPECT_EQ(db.ReadRecord(4), std::string_view(zeros));
  EXPECT_EQ(db.ReadRecord(6), std::string_view(zeros));
}

TEST(DatabaseTest, SegmentContainsItsRecords) {
  Database db(SmallDb());
  std::string image(db.record_bytes(), 'B');
  db.WriteRecord(33, image);  // record 1 of segment 1
  std::string_view seg = db.ReadSegment(1);
  EXPECT_EQ(seg.substr(db.record_bytes(), db.record_bytes()),
            std::string_view(image));
}

TEST(DatabaseTest, SegmentWriteAndClear) {
  Database db(SmallDb());
  std::string seg(db.segment_bytes(), 'C');
  db.WriteSegment(2, seg);
  EXPECT_EQ(db.ReadSegment(2), std::string_view(seg));
  uint32_t sum_before = db.Checksum();
  db.Clear();
  EXPECT_NE(db.Checksum(), sum_before);
  std::string zeros(db.segment_bytes(), '\0');
  EXPECT_EQ(db.ReadSegment(2), std::string_view(zeros));
}

TEST(SegmentTableTest, DualDirtyBitsForPingPong) {
  SegmentTable t(8);
  EXPECT_FALSE(t.dirty_any(3));
  t.MarkDirty(3);
  EXPECT_TRUE(t.dirty(3, 0));
  EXPECT_TRUE(t.dirty(3, 1));
  t.ClearDirty(3, 0);
  EXPECT_FALSE(t.dirty(3, 0));
  EXPECT_TRUE(t.dirty(3, 1));
  EXPECT_TRUE(t.dirty_any(3));
  t.ClearDirty(3, 1);
  EXPECT_FALSE(t.dirty_any(3));
  t.MarkDirty(3);
  t.MarkDirty(5);
  EXPECT_EQ(t.CountDirty(0), 2u);
  t.MarkAllDirty();
  EXPECT_EQ(t.CountDirty(1), 8u);
}

TEST(SegmentTableTest, PaintAndFlip) {
  SegmentTable t(4);
  for (SegmentId s = 0; s < 4; ++s) {
    EXPECT_EQ(t.color(s), PaintColor::kWhite);
  }
  t.Paint(1, PaintColor::kBlack);
  EXPECT_EQ(t.color(1), PaintColor::kBlack);
  EXPECT_EQ(t.color(0), PaintColor::kWhite);
  // Paint everything black, then flip: all white in O(1).
  for (SegmentId s = 0; s < 4; ++s) t.Paint(s, PaintColor::kBlack);
  t.FlipColors();
  for (SegmentId s = 0; s < 4; ++s) {
    EXPECT_EQ(t.color(s), PaintColor::kWhite);
  }
  // Painting still works under the flipped interpretation.
  t.Paint(2, PaintColor::kBlack);
  EXPECT_EQ(t.color(2), PaintColor::kBlack);
  EXPECT_EQ(t.color(3), PaintColor::kWhite);
}

TEST(SegmentTableTest, LsnTimestampOldCopy) {
  SegmentTable t(4);
  EXPECT_EQ(t.update_lsn(0), kInvalidLsn);
  t.set_update_lsn(0, 42);
  EXPECT_EQ(t.update_lsn(0), 42u);
  t.set_timestamp(0, 7);
  EXPECT_EQ(t.timestamp(0), 7u);
  EXPECT_FALSE(t.has_old_copy(0));
  t.set_old_copy(0, 3);
  EXPECT_TRUE(t.has_old_copy(0));
  EXPECT_EQ(t.old_copy(0), 3u);
  t.clear_old_copy(0);
  EXPECT_FALSE(t.has_old_copy(0));
  t.set_ckpt_locked(1, true);
  EXPECT_TRUE(t.ckpt_locked(1));
  t.Reset();
  EXPECT_EQ(t.update_lsn(0), kInvalidLsn);
  EXPECT_FALSE(t.ckpt_locked(1));
  EXPECT_EQ(t.color(2), PaintColor::kWhite);
}

TEST(BufferPoolTest, AllocateWriteReadFree) {
  BufferPool pool(256, 0);
  auto h = pool.Allocate();
  ASSERT_TRUE(h.ok());
  std::string data(256, 'x');
  pool.Write(*h, data);
  EXPECT_EQ(pool.Read(*h), std::string_view(data));
  EXPECT_EQ(pool.allocated(), 1u);
  pool.Free(*h);
  EXPECT_EQ(pool.allocated(), 0u);
  EXPECT_EQ(pool.high_water_mark(), 1u);
}

TEST(BufferPoolTest, RecyclesFreedBuffers) {
  BufferPool pool(64, 0);
  auto a = pool.Allocate();
  ASSERT_TRUE(a.ok());
  pool.Free(*a);
  auto b = pool.Allocate();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // same slot reused
}

TEST(BufferPoolTest, CapacityEnforced) {
  BufferPool pool(64, 2);
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.Allocate();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  pool.Free(*a);
  auto d = pool.Allocate();
  EXPECT_TRUE(d.ok());
}

TEST(BufferPoolTest, HighWaterTracksPeak) {
  BufferPool pool(64, 0);
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  auto c = pool.Allocate();
  pool.Free(*b);
  pool.Free(*a);
  EXPECT_EQ(pool.high_water_mark(), 3u);
  EXPECT_EQ(pool.allocated(), 1u);
  (void)c;
}

}  // namespace
}  // namespace mmdb
