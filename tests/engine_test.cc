// Engine facade behaviour: transactions, durability timing, checkpoint
// driving, and option validation.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

class EngineTest : public testing::Test {
 protected:
  void Open(EngineOptions opt) {
    env_ = NewMemEnv();
    auto engine = Engine::Open(opt, env_.get());
    MMDB_ASSERT_OK(engine);
    engine_ = std::move(*engine);
  }

  std::string Image(RecordId r, uint64_t marker) {
    return MakeRecordImage(engine_->db().record_bytes(), r, marker);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineTest, OpenValidatesOptions) {
  EngineOptions opt = TinyOptions();
  opt.params.db.segment_words = 100;  // not a multiple of record size
  auto env = NewMemEnv();
  auto engine = Engine::Open(opt, env.get());
  EXPECT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
}

TEST_F(EngineTest, FastFuzzyRequiresStableTail) {
  EngineOptions opt = TinyOptions();
  opt.algorithm = Algorithm::kFastFuzzy;
  opt.stable_log_tail = false;
  auto env = NewMemEnv();
  auto engine = Engine::Open(opt, env.get());
  EXPECT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsFailedPrecondition());
}

TEST_F(EngineTest, CommitInstallsAndReadsBack) {
  Open(TinyOptions());
  Transaction* t = engine_->Begin();
  std::string image = Image(5, 1);
  MMDB_ASSERT_OK(engine_->Write(t, 5, image));
  // Read-your-writes before commit.
  std::string value;
  MMDB_ASSERT_OK(engine_->Read(t, 5, &value));
  EXPECT_EQ(value, image);
  auto lsn = engine_->Commit(t);
  MMDB_ASSERT_OK(lsn);
  EXPECT_GT(*lsn, 0u);
  EXPECT_EQ(engine_->ReadRecordRaw(5), std::string_view(image));
}

TEST_F(EngineTest, AbortDiscardsShadowUpdates) {
  Open(TinyOptions());
  Transaction* t = engine_->Begin();
  MMDB_ASSERT_OK(engine_->Write(t, 5, Image(5, 1)));
  engine_->Abort(t);
  const std::string zeros(engine_->db().record_bytes(), '\0');
  EXPECT_EQ(engine_->ReadRecordRaw(5), std::string_view(zeros));
}

TEST_F(EngineTest, UncommittedDataNeverVisibleToOthers) {
  Open(TinyOptions());
  Transaction* t1 = engine_->Begin();
  MMDB_ASSERT_OK(engine_->Write(t1, 7, Image(7, 1)));
  // A concurrent reader conflicts on the no-wait lock (serializability).
  Transaction* t2 = engine_->Begin();
  std::string value;
  Status st = engine_->Read(t2, 7, &value);
  EXPECT_TRUE(st.IsAborted());
  engine_->Abort(t2);
  MMDB_ASSERT_OK(engine_->Commit(t1).status());
}

TEST_F(EngineTest, DurabilityFollowsLogFlushCompletion) {
  Open(TinyOptions());
  auto lsn = engine_->Apply({{0, Image(0, 1)}});
  MMDB_ASSERT_OK(lsn);
  // Not yet flushed: nothing durable.
  EXPECT_LT(engine_->DurableLsn(), *lsn);
  engine_->FlushLog();
  // Flush issued but the I/O has not completed on the virtual timeline.
  EXPECT_LT(engine_->DurableLsn(), *lsn);
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  EXPECT_GE(engine_->DurableLsn(), *lsn);
}

TEST_F(EngineTest, StableTailIsDurableImmediately) {
  EngineOptions opt = TinyOptions();
  opt.stable_log_tail = true;
  Open(opt);
  auto lsn = engine_->Apply({{0, Image(0, 1)}});
  MMDB_ASSERT_OK(lsn);
  EXPECT_GE(engine_->DurableLsn(), *lsn);
}

TEST_F(EngineTest, CheckpointAlternatesPingPongCopies) {
  Open(TinyOptions());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  auto meta1 = engine_->backup()->ReadMeta();
  MMDB_ASSERT_OK(meta1);
  EXPECT_EQ(meta1->checkpoint_id, 1u);
  EXPECT_EQ(meta1->copy, 1u);  // id 1 -> copy 1

  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  auto meta2 = engine_->backup()->ReadMeta();
  MMDB_ASSERT_OK(meta2);
  EXPECT_EQ(meta2->checkpoint_id, 2u);
  EXPECT_EQ(meta2->copy, 0u);
}

TEST_F(EngineTest, PartialCheckpointFlushesOnlyDirtySegments) {
  Open(TinyOptions());
  // First two checkpoints write everything (all segments start dirty from
  // nothing? they start clean; a fresh engine has no updates, so a partial
  // checkpoint flushes nothing).
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->checkpointer().last_stats().segments_flushed, 0u);

  // Touch exactly one segment.
  MMDB_ASSERT_OK(engine_->Apply({{0, Image(0, 2)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->checkpointer().last_stats().segments_flushed, 1u);
  // The update dirtied both copies: the next checkpoint (other copy)
  // flushes it again, after which both copies are clean.
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->checkpointer().last_stats().segments_flushed, 1u);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->checkpointer().last_stats().segments_flushed, 0u);
}

TEST_F(EngineTest, FullCheckpointFlushesEverySegment) {
  EngineOptions opt = TinyOptions();
  opt.checkpoint_mode = CheckpointMode::kFull;
  Open(opt);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->checkpointer().last_stats().segments_flushed,
            engine_->db().num_segments());
}

TEST_F(EngineTest, CheckpointDurationMatchesDiskModel) {
  EngineOptions opt = TinyOptions();
  opt.checkpoint_mode = CheckpointMode::kFull;
  Open(opt);
  double t0 = engine_->now();
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  double dur = engine_->now() - t0;
  // 16 segments of 4096 words over 20 disks: N * (T_seek + T_trans*S) / 20,
  // plus log-flush latency at begin/end.
  const SystemParams& p = engine_->params();
  double expect =
      p.disk.ArraySeconds(p.db.num_segments(), p.db.segment_words);
  EXPECT_GT(dur, expect * 0.9);
  EXPECT_LT(dur, expect + 0.2);
}

TEST_F(EngineTest, ScheduterSpacesCheckpointsByInterval) {
  EngineOptions opt = TinyOptions();
  opt.checkpoint_interval = 0.5;
  Open(opt);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_GE(engine_->scheduler().NextBeginTime(), 0.5);
}

TEST_F(EngineTest, CrashThenOperationsFail) {
  Open(TinyOptions());
  MMDB_ASSERT_OK(engine_->Crash());
  Transaction* t = nullptr;
  (void)t;
  std::string value;
  EXPECT_TRUE(engine_->StartCheckpoint().IsFailedPrecondition());
  EXPECT_TRUE(engine_->Crash().IsFailedPrecondition());
}

TEST_F(EngineTest, RecoverWithoutCrashFails) {
  Open(TinyOptions());
  EXPECT_TRUE(engine_->Recover().status().IsFailedPrecondition());
}

TEST_F(EngineTest, CouRefusesCheckpointWithOpenTransactions) {
  EngineOptions opt = TinyOptions();
  opt.algorithm = Algorithm::kCouCopy;
  Open(opt);
  Transaction* t = engine_->Begin();
  MMDB_ASSERT_OK(engine_->Write(t, 1, Image(1, 1)));
  Status st = engine_->StartCheckpoint();
  EXPECT_TRUE(st.IsFailedPrecondition());
  MMDB_ASSERT_OK(engine_->Commit(t).status());
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
}

// Regression: Engine::Commit deduplicates the touched-segment list before
// waiting on checkpoint admission. A transaction writing several records of
// ONE segment must wait on (and be accounted against) that segment's
// checkpoint lock once, not once per record — so it commits at exactly the
// same virtual time as a single-record transaction, and the checkpointer's
// lock accounting is identical in both runs.
TEST_F(EngineTest, CommitWaitsOncePerSegmentNotOncePerRecord) {
  struct RunResult {
    double end_time = -1;
    double ckpt_lock = -1;
    bool ok = false;
  };
  // Writes `nrecords` records of segment 0 in one transaction, commits it
  // while segment 0 is checkpoint-locked through its backup I/O (2CFLUSH
  // holds the lock until the write completes), and reports when the commit
  // finished plus the checkpointer's lock charges up to that point.
  auto run = [](int nrecords) {
    RunResult out;
    auto env = NewMemEnv();
    EngineOptions opt = TinyOptions();
    opt.algorithm = Algorithm::kTwoColorFlush;
    opt.checkpoint_mode = CheckpointMode::kFull;
    auto engine = Engine::Open(opt, env.get());
    if (!engine.ok()) return out;
    Engine& e = **engine;
    Transaction* t = e.Begin();
    for (RecordId r = 0; r < static_cast<RecordId>(nrecords); ++r) {
      if (!e.Write(t, r, MakeRecordImage(e.db().record_bytes(), r, 7)).ok()) {
        return out;
      }
    }
    // Begin the sweep and issue segment 0's backup write; the segment is
    // now locked until that I/O completes.
    if (!e.StartCheckpoint().ok()) return out;
    if (!e.StepCheckpoint().ok()) return out;  // reach sweep_start_
    if (!e.StepCheckpoint().ok()) return out;  // issue segment 0's write
    if (!e.Commit(t).ok()) return out;
    out.end_time = e.now();
    out.ckpt_lock = e.meter().Count(CpuCategory::kCkptLock);
    out.ok = true;
    return out;
  };

  RunResult one = run(1);
  RunResult three = run(3);
  ASSERT_TRUE(one.ok);
  ASSERT_TRUE(three.ok);
  // The admission wait is per segment: more records in the same segment
  // must not change when the commit completes...
  EXPECT_DOUBLE_EQ(one.end_time, three.end_time);
  // ...nor how much checkpointer lock work had run by then (a duplicated
  // wait would service extra checkpoint events before committing).
  EXPECT_DOUBLE_EQ(one.ckpt_lock, three.ckpt_lock);
}

TEST_F(EngineTest, ApplyRetriesTwoColorAborts) {
  EngineOptions opt = TinyOptions();
  opt.algorithm = Algorithm::kTwoColorCopy;
  opt.checkpoint_mode = CheckpointMode::kFull;
  Open(opt);
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  // Step partway so the database is split white/black.
  for (int i = 0; i < 6; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  // Records in first and last segment: spans the boundary; Apply must
  // retry (advancing time) until the sweep finishes.
  RecordId low = 0;
  RecordId high = engine_->db().num_records() - 1;
  // The fixed record set conflicts until the sweep finishes (~0.3s of
  // virtual time) while each retry backs off ~1ms; allow enough attempts.
  auto lsn = engine_->Apply({{low, Image(low, 9)}, {high, Image(high, 9)}},
                            /*max_attempts=*/2000);
  MMDB_ASSERT_OK(lsn);
  EXPECT_GT(engine_->txns().color_aborts(), 0u);
}

}  // namespace
}  // namespace mmdb
