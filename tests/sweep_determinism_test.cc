// The sweep runner's central promise (DESIGN.md §12): a measured sweep
// produces byte-identical results and sidecar documents no matter how many
// workers execute it, because every point owns a private deterministic
// MemEnv + Engine and the merge happens in declared point order. Only the
// sidecar's trailing "run" member (jobs, wall_seconds) may differ;
// MetricsSidecar::DeterministicView strips it for comparison.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/figure_util.h"
#include "gtest/gtest.h"
#include "obs/bench_diff.h"

namespace mmdb {
namespace bench {
namespace {

// Small, fast engine points: 64 Kword database, 0.3 virtual seconds.
EngineOptions SmallOptions(Algorithm a, uint64_t /*seed*/) {
  EngineOptions opt;
  opt.params.db.db_words = 64 * 1024;
  opt.algorithm = a;
  opt.checkpoint_mode = CheckpointMode::kPartial;
  return opt;
}

std::vector<SweepPoint> TestPoints() {
  std::vector<SweepPoint> points;
  int idx = 0;
  for (Algorithm a : {Algorithm::kFuzzyCopy, Algorithm::kCouCopy,
                      Algorithm::kTwoColorFlush, Algorithm::kZigzag,
                      Algorithm::kHourglass}) {
    for (uint64_t seed : {1u, 2u}) {
      points.push_back(SweepPoint{
          std::string(AlgorithmName(a)) + "/seed=" + std::to_string(seed) +
              "/" + std::to_string(idx++),
          [a, seed] {
            return MeasureEngine(SmallOptions(a, seed), /*seconds=*/0.3,
                                 seed);
          }});
    }
  }
  // An adversarial-workload point with the time-series sampler on: the
  // zipf/churn/read-mix draw streams are deterministic, and the sampler's
  // wall-clock member must be stripped rather than leak nondeterminism
  // into the compared view.
  points.push_back(
      SweepPoint{"adversarial/zipf", []() -> StatusOr<MeasuredPoint> {
                   EngineOptions opt =
                       SmallOptions(Algorithm::kTwoColorCopy, 3);
                   opt.timeseries_epoch = 0.05;
                   std::unique_ptr<Env> env = NewMemEnv();
                   MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                                         Engine::Open(opt, env.get()));
                   WorkloadOptions wopt;
                   wopt.duration = 0.3;
                   wopt.key_dist = WorkloadOptions::KeyDist::kZipf;
                   wopt.zipf_theta = 0.99;
                   wopt.hot_churn_interval = 0.1;
                   wopt.read_fraction = 0.25;
                   WorkloadDriver driver(engine.get(), wopt);
                   MeasuredPoint point;
                   MMDB_ASSIGN_OR_RETURN(point.workload, driver.Run());
                   point.metrics_json = engine->DumpMetricsJson();
                   return point;
                 }});
  // A deterministically failing point: must print/merge identically at any
  // width (skipped by the sidecar, reported via AnyFailed) in both runs.
  points.push_back(SweepPoint{"always_fails", []() -> StatusOr<MeasuredPoint> {
                                return InternalError("deterministic failure");
                              }});
  return points;
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Runs the point list at the given width, returns the raw sidecar bytes.
std::string RunAtWidth(std::size_t jobs, const std::string& sidecar_path,
                       std::vector<StatusOr<MeasuredPoint>>* results_out,
                       bool* any_failed_out) {
  EXPECT_EQ(setenv("MMDB_METRICS_SIDECAR", sidecar_path.c_str(), 1), 0);
  MetricsSidecar sidecar("sweep_determinism");
  SweepRunner runner(jobs);
  std::vector<SweepPoint> points = TestPoints();
  *results_out = runner.Run(points, &sidecar);
  *any_failed_out = runner.AnyFailed();
  runner.ReportValidation(&sidecar);
  sidecar.SetRun(jobs, 0.125);  // arbitrary; stripped by DeterministicView
  sidecar.Write();
  return ReadFileOrDie(sidecar_path);
}

TEST(SweepDeterminismTest, Jobs4SidecarEqualsJobs1) {
  std::string dir = ::testing::TempDir();
  std::vector<StatusOr<MeasuredPoint>> serial_results, parallel_results;
  bool serial_failed = false, parallel_failed = false;
  std::string serial = RunAtWidth(1, dir + "/sweep_jobs1.json",
                                  &serial_results, &serial_failed);
  std::string parallel = RunAtWidth(4, dir + "/sweep_jobs4.json",
                                    &parallel_results, &parallel_failed);
  ASSERT_FALSE(serial.empty());
  ASSERT_FALSE(parallel.empty());

  // Same per-point outcomes, in the same order.
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    ASSERT_EQ(serial_results[i].ok(), parallel_results[i].ok()) << i;
    if (serial_results[i].ok()) {
      EXPECT_EQ(serial_results[i]->workload.committed,
                parallel_results[i]->workload.committed)
          << i;
      EXPECT_EQ(serial_results[i]->workload.overhead_per_txn,
                parallel_results[i]->workload.overhead_per_txn)
          << i;
      EXPECT_EQ(serial_results[i]->recovery.total_seconds,
                parallel_results[i]->recovery.total_seconds)
          << i;
    }
  }
  EXPECT_TRUE(serial_failed);  // the always_fails point
  EXPECT_TRUE(parallel_failed);

  // Sidecar documents: byte-identical once the "run" member (jobs +
  // wall_seconds — the only sanctioned difference) is stripped.
  auto serial_view = MetricsSidecar::DeterministicView(serial);
  auto parallel_view = MetricsSidecar::DeterministicView(parallel);
  ASSERT_TRUE(serial_view.ok()) << serial_view.status().ToString();
  ASSERT_TRUE(parallel_view.ok()) << parallel_view.status().ToString();
  EXPECT_FALSE(serial_view->empty());
  EXPECT_EQ(*serial_view, *parallel_view);
  // And the stripped portion is substantial: all six ok points present,
  // each with its model-oracle validation block, plus the figure summary.
  EXPECT_NE(serial_view->find("\"points\""), std::string::npos);
  EXPECT_NE(serial_view->find("FUZZYCOPY/seed=1"), std::string::npos);
  EXPECT_NE(serial_view->find("\"validation\""), std::string::npos);
  EXPECT_NE(serial_view->find("\"validation_summary\""), std::string::npos);
  EXPECT_NE(serial_view->find("\"residual\""), std::string::npos);
  // The failed point is recorded with its Status message (identically at
  // both widths, since the whole views already compared equal above).
  EXPECT_NE(serial_view->find("always_fails"), std::string::npos);
  EXPECT_NE(serial_view->find("deterministic failure"), std::string::npos);
  // The adversarial point's time series survives, minus its wall cost.
  EXPECT_NE(serial_view->find("adversarial/zipf"), std::string::npos);
  EXPECT_NE(serial_view->find("\"timeseries\""), std::string::npos);
  EXPECT_NE(serial_view->find("\"samples\""), std::string::npos);
  EXPECT_EQ(serial_view->find("sample_seconds"), std::string::npos);
}

// Removes the top-level "shards" member from an engine dump — the one
// member that legitimately differs between shard counts (it carries the
// per-shard breakdown). It sits immediately before "checkpoints" in
// Engine::DumpMetricsJson's fixed key order.
std::string StripShardsMember(const std::string& json) {
  size_t begin = json.find("\"shards\":");
  size_t end = json.find("\"checkpoints\":");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  EXPECT_LT(begin, end);
  if (begin == std::string::npos || end == std::string::npos || begin >= end) {
    return json;
  }
  std::string out = json;
  out.erase(begin, end - begin);
  return out;
}

TEST(SweepDeterminismTest, ShardCountDoesNotChangeModeledResults) {
  // N-way sharding partitions only the mechanical subsystems — per-shard
  // WAL stream files, lock-table stripes, per-shard tallies. The logical
  // engine still executes in one deterministic order on one virtual clock,
  // so every modeled quantity must be bit-identical between shards=1 and
  // shards=4, for every algorithm, through crash and multi-stream-merged
  // recovery.
  ASSERT_EQ(unsetenv("MMDB_SHARDS"), 0);
  for (Algorithm a : kAllAlgorithms) {
    SCOPED_TRACE(AlgorithmName(a));
    auto run = [a](uint32_t shards) {
      EngineOptions opt = SmallOptions(a, 1);
      opt.stable_log_tail = (a == Algorithm::kFastFuzzy);
      opt.shards = shards;
      return MeasureEngine(opt, /*seconds=*/0.2, /*seed=*/1);
    };
    StatusOr<MeasuredPoint> one = run(1);
    StatusOr<MeasuredPoint> four = run(4);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    ASSERT_TRUE(four.ok()) << four.status().ToString();

    const WorkloadResult& w1 = one->workload;
    const WorkloadResult& w4 = four->workload;
    EXPECT_EQ(w1.committed, w4.committed);
    EXPECT_EQ(w1.attempts, w4.attempts);
    EXPECT_EQ(w1.color_restarts, w4.color_restarts);
    EXPECT_EQ(w1.lock_restarts, w4.lock_restarts);
    EXPECT_EQ(w1.checkpoints_completed, w4.checkpoints_completed);
    EXPECT_EQ(w1.overhead_per_txn, w4.overhead_per_txn);
    EXPECT_EQ(w1.sync_per_txn, w4.sync_per_txn);
    EXPECT_EQ(w1.async_per_txn, w4.async_per_txn);
    EXPECT_EQ(w1.latency_total_seconds, w4.latency_total_seconds);
    EXPECT_EQ(w1.stall_quiesce_seconds, w4.stall_quiesce_seconds);
    EXPECT_EQ(w1.stall_ckpt_lock_seconds, w4.stall_ckpt_lock_seconds);
    EXPECT_EQ(w1.queue_seconds, w4.queue_seconds);

    // The global latency histogram is the shard-order merge of the
    // per-shard histograms: bucket-exact, so percentiles match to the bit.
    EXPECT_EQ(w1.latency.count(), w4.latency.count());
    for (double p : {50.0, 99.0, 99.9}) {
      EXPECT_EQ(w1.latency.Percentile(p), w4.latency.Percentile(p)) << p;
    }
    ASSERT_EQ(w1.shard_latency.size(), 1u);
    ASSERT_EQ(w4.shard_latency.size(), 4u);
    uint64_t shard_sum = 0;
    for (const Histogram& h : w4.shard_latency) shard_sum += h.count();
    EXPECT_EQ(shard_sum, w4.latency.count());

    // Modeled recovery is invariant through the k-way merged log scan.
    EXPECT_EQ(one->recovery.total_seconds, four->recovery.total_seconds);
    EXPECT_EQ(one->recovery.updates_applied, four->recovery.updates_applied);
    EXPECT_EQ(one->recovery.txns_redone, four->recovery.txns_redone);
    EXPECT_EQ(one->recovery.log_bytes_read, four->recovery.log_bytes_read);

    // The whole engine dump — registry metrics, trace ring, checkpoint
    // history, recovery block — must match exactly once the per-shard
    // breakdown and the machine-dependent wall fields are stripped.
    BenchDiffOptions exact;
    exact.rel_tol = 0.0;
    exact.abs_tol = 0.0;
    auto diff = DiffBenchJson(StripShardsMember(one->metrics_json),
                              StripShardsMember(four->metrics_json), exact);
    ASSERT_TRUE(diff.ok()) << diff.status().ToString();
    EXPECT_TRUE(diff->equal()) << diff->mismatches << " mismatches; first: "
                               << (diff->reports.empty() ? ""
                                                         : diff->reports[0]);
  }
}

TEST(SweepDeterminismTest, InstantRecoveryConvergesToBlockingState) {
  // The tentpole's equivalence contract (DESIGN.md §19): instant recovery
  // is a pure rescheduling of the same restart work, so after the drain
  // the engine must be bit-identical to a blocking restart — every record
  // byte, every modeled RecoveryStats field, every lineage entry — even
  // when transactions were served mid-restart. The post-crash workload is
  // checkpoint-free and uniform, so both engines commit the exact same
  // update history; only WHEN the instant engine's segments came back
  // differs, which is exactly what must not leak into state.
  ASSERT_EQ(unsetenv("MMDB_INSTANT_RECOVERY"), 0);
  struct Outcome {
    RecoveryStats stats;
    std::vector<SegmentLineage> lineage;
    std::vector<std::string> records;
    WorkloadResult post;
  };
  auto run = [](bool instant) -> StatusOr<Outcome> {
    EngineOptions opt = SmallOptions(Algorithm::kFuzzyCopy, 1);
    opt.instant_recovery = instant;
    std::unique_ptr<Env> env = NewMemEnv();
    MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                          Engine::Open(opt, env.get()));
    MMDB_RETURN_IF_ERROR(engine->RunCheckpointToCompletion());
    WorkloadOptions wopt;
    wopt.duration = 0.2;
    wopt.run_checkpoints = false;
    {
      WorkloadDriver driver(engine.get(), wopt);
      MMDB_RETURN_IF_ERROR(driver.Run().status());
    }
    MMDB_RETURN_IF_ERROR(engine->FlushLog());
    MMDB_RETURN_IF_ERROR(engine->AdvanceTime(1.0));
    MMDB_RETURN_IF_ERROR(engine->Crash());
    MMDB_RETURN_IF_ERROR(engine->Recover().status());
    // Blocking: everything is back before this workload starts. Instant:
    // this exact workload runs against the half-recovered store, stalling
    // on first touches while untouched segments reload in the background.
    Outcome out;
    wopt.seed = 7;
    WorkloadDriver post_driver(engine.get(), wopt);
    MMDB_ASSIGN_OR_RETURN(out.post, post_driver.Run());
    MMDB_RETURN_IF_ERROR(engine->DrainRecovery());
    out.stats = engine->last_recovery();
    out.lineage = engine->last_lineage();
    const uint64_t n = engine->params().db.num_records();
    out.records.reserve(n);
    for (uint64_t r = 0; r < n; ++r) {
      out.records.emplace_back(engine->ReadRecordRaw(r));
    }
    return out;
  };
  StatusOr<Outcome> blocking = run(false);
  StatusOr<Outcome> on_demand = run(true);
  ASSERT_TRUE(blocking.ok()) << blocking.status().ToString();
  ASSERT_TRUE(on_demand.ok()) << on_demand.status().ToString();

  // Both lanes committed the same history...
  EXPECT_EQ(blocking->post.committed, on_demand->post.committed);
  EXPECT_EQ(blocking->post.attempts, on_demand->post.attempts);
  // ...but only the instant lane ever waited on the recovery latch.
  EXPECT_EQ(blocking->post.stall_recovery_wait_seconds, 0.0);
  EXPECT_GT(on_demand->post.stall_recovery_wait_seconds, 0.0);

  // Modeled recovery stats: zero tolerance.
  const RecoveryStats& a = blocking->stats;
  const RecoveryStats& b = on_demand->stats;
  EXPECT_EQ(a.checkpoint_id, b.checkpoint_id);
  EXPECT_EQ(a.copy, b.copy);
  EXPECT_EQ(a.backup_read_seconds, b.backup_read_seconds);
  EXPECT_EQ(a.log_read_seconds, b.log_read_seconds);
  EXPECT_EQ(a.replay_cpu_seconds, b.replay_cpu_seconds);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.segments_loaded, b.segments_loaded);
  EXPECT_EQ(a.segments_retried, b.segments_retried);
  EXPECT_EQ(a.log_bytes_read, b.log_bytes_read);
  EXPECT_EQ(a.records_scanned, b.records_scanned);
  EXPECT_EQ(a.updates_applied, b.updates_applied);
  EXPECT_EQ(a.txns_redone, b.txns_redone);
  EXPECT_EQ(a.fell_back_to_older_copy, b.fell_back_to_older_copy);

  // Lineage: same provenance per segment regardless of load order.
  ASSERT_EQ(blocking->lineage.size(), on_demand->lineage.size());
  for (std::size_t s = 0; s < blocking->lineage.size(); ++s) {
    const SegmentLineage& la = blocking->lineage[s];
    const SegmentLineage& lb = on_demand->lineage[s];
    EXPECT_EQ(la.checkpoint_id, lb.checkpoint_id) << s;
    EXPECT_EQ(la.copy, lb.copy) << s;
    EXPECT_EQ(la.retried, lb.retried) << s;
    EXPECT_EQ(la.frames, lb.frames) << s;
    EXPECT_EQ(la.first_lsn, lb.first_lsn) << s;
    EXPECT_EQ(la.last_lsn, lb.last_lsn) << s;
    EXPECT_EQ(la.streams, lb.streams) << s;
  }

  // Every record byte.
  ASSERT_EQ(blocking->records.size(), on_demand->records.size());
  std::size_t mismatched = 0;
  for (std::size_t r = 0; r < blocking->records.size(); ++r) {
    if (blocking->records[r] != on_demand->records[r]) ++mismatched;
  }
  EXPECT_EQ(mismatched, 0u);
}

TEST(SweepDeterminismTest, DeterministicViewStripsOnlyRun) {
  std::string doc =
      R"({"bench":"x","points":[{"label":"a","engine":{"v":1}}],)"
      R"("run":{"jobs":8,"wall_seconds":0.5}})";
  auto view = MetricsSidecar::DeterministicView(doc);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->find("run"), std::string::npos);
  EXPECT_NE(view->find("\"bench\""), std::string::npos);
  EXPECT_NE(view->find("\"points\""), std::string::npos);
  auto bad = MetricsSidecar::DeterministicView("{not json");
  EXPECT_FALSE(bad.ok());
}

TEST(SweepDeterminismTest, ParseJobsPrecedence) {
  // --jobs beats the environment beats the hardware default.
  ASSERT_EQ(setenv("MMDB_BENCH_JOBS", "2", 1), 0);
  char prog[] = "bench";
  char flag[] = "--jobs=3";
  char* argv_flag[] = {prog, flag};
  EXPECT_EQ(ParseJobs(2, argv_flag), 3u);
  char* argv_plain[] = {prog};
  EXPECT_EQ(ParseJobs(1, argv_plain), 2u);
  ASSERT_EQ(unsetenv("MMDB_BENCH_JOBS"), 0);
  EXPECT_GE(ParseJobs(1, argv_plain), 1u);
}

}  // namespace
}  // namespace bench
}  // namespace mmdb
