// Logical (operation) logging: compact delta REDO records, their safety
// constraint (copy-on-update checkpoints only — the backup must be an
// exact snapshot at the replay start point), and demonstrations of the
// corruption that replaying non-idempotent records against fuzzy or
// boundary-consistent backups produces. This is the paper's Section 3.2
// remark — "consistent backups permit the use of logical logging" — made
// executable, with the sharper observation that among the paper's TC
// algorithms only COU's consistency point lines up with the log marker.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/coding.h"
#include "wal/log_record.h"

namespace mmdb {
namespace {

int64_t FieldAt(std::string_view image, uint32_t offset) {
  return static_cast<int64_t>(DecodeFixed64(image.data() + offset));
}

class LogicalLoggingTest : public testing::Test {
 protected:
  void Open(Algorithm a, bool unsafe = false) {
    EngineOptions opt = TinyOptions();
    opt.algorithm = a;
    opt.unsafe_allow_logical_logging = unsafe;
    env_ = NewMemEnv();
    auto engine = Engine::Open(opt, env_.get());
    MMDB_ASSERT_OK(engine);
    engine_ = std::move(*engine);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
};

TEST(DeltaRecordTest, RoundTrip) {
  LogRecord r = LogRecord::Delta(7, 123, 16, -5000);
  r.lsn = 42;
  std::string payload;
  r.EncodeTo(&payload);
  LogRecord out;
  ASSERT_TRUE(LogRecord::DecodeFrom(payload, &out).ok());
  EXPECT_EQ(out, r);
  // A delta record is an order of magnitude smaller than an after-image.
  LogRecord update = LogRecord::Update(7, 123, std::string(128, 'x'));
  update.lsn = 42;
  EXPECT_LT(r.EncodedSize() * 5, update.EncodedSize());
}

TEST_F(LogicalLoggingTest, DeltaCommitAndReadYourDeltas) {
  Open(Algorithm::kCouCopy);
  Transaction* t = engine_->Begin();
  MMDB_ASSERT_OK(engine_->WriteDelta(t, 5, 0, 100));
  MMDB_ASSERT_OK(engine_->WriteDelta(t, 5, 0, 20));   // accumulates
  MMDB_ASSERT_OK(engine_->WriteDelta(t, 5, 8, -7));   // second field
  std::string value;
  MMDB_ASSERT_OK(engine_->Read(t, 5, &value));
  EXPECT_EQ(FieldAt(value, 0), 120);
  EXPECT_EQ(FieldAt(value, 8), -7);
  MMDB_ASSERT_OK(engine_->Commit(t).status());
  EXPECT_EQ(FieldAt(engine_->ReadRecordRaw(5), 0), 120);
  EXPECT_EQ(FieldAt(engine_->ReadRecordRaw(5), 8), -7);
}

TEST_F(LogicalLoggingTest, MixingImageAndDeltaOnOneRecordRejected) {
  Open(Algorithm::kCouCopy);
  const std::string image(engine_->db().record_bytes(), 'x');
  Transaction* t = engine_->Begin();
  MMDB_ASSERT_OK(engine_->Write(t, 5, image));
  EXPECT_TRUE(engine_->WriteDelta(t, 5, 0, 1).IsFailedPrecondition());
  engine_->Abort(t);

  Transaction* u = engine_->Begin();
  MMDB_ASSERT_OK(engine_->WriteDelta(u, 6, 0, 1));
  EXPECT_TRUE(engine_->Write(u, 6, image).IsFailedPrecondition());
  engine_->Abort(u);
}

TEST_F(LogicalLoggingTest, AcceptedIffAlgorithmSupportsLogicalLogging) {
  // Derived from the canonical predicate rather than a hand-kept list: a
  // new algorithm is covered on both sides of the rule automatically.
  for (Algorithm a : kAllAlgorithms) {
    if (a == Algorithm::kFastFuzzy) continue;  // needs a stable tail; fuzzy
    Open(a);
    Transaction* t = engine_->Begin();
    Status st = engine_->WriteDelta(t, 5, 0, 1);
    if (SupportsLogicalLogging(a)) {
      MMDB_EXPECT_OK(st);
    } else {
      EXPECT_TRUE(st.IsFailedPrecondition()) << AlgorithmName(a) << ": " << st;
    }
    engine_->Abort(t);
  }
}

TEST_F(LogicalLoggingTest, ModernRecoveryReplaysDeltasExactlyOnce) {
  // The same once-and-only-once exercise as the COU variant below, under
  // each modern snapshot algorithm: deltas racing a sweep must replay
  // exactly once because the backup is exact at the begin marker.
  for (Algorithm a : {Algorithm::kZigzag, Algorithm::kPingPong,
                      Algorithm::kHourglass}) {
    SCOPED_TRACE(AlgorithmName(a));
    Open(a);
    MMDB_ASSERT_OK(engine_->ApplyDelta(7, 0, 1000).status());
    MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

    MMDB_ASSERT_OK(engine_->ApplyDelta(7, 0, 50).status());
    MMDB_ASSERT_OK(engine_->StartCheckpoint());
    for (int i = 0; i < 3; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
    MMDB_ASSERT_OK(engine_->ApplyDelta(7, 0, 3).status());  // mid-sweep
    MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
    MMDB_ASSERT_OK(engine_->ApplyDelta(7, 0, 200).status());

    engine_->FlushLog();
    MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
    MMDB_ASSERT_OK(engine_->Crash());
    MMDB_ASSERT_OK(engine_->Recover());
    EXPECT_EQ(FieldAt(engine_->ReadRecordRaw(7), 0), 1253)
        << "a delta was replayed zero or multiple times";
  }
}

TEST_F(LogicalLoggingTest, DeltaValidation) {
  Open(Algorithm::kCouFlush);
  Transaction* t = engine_->Begin();
  EXPECT_EQ(engine_->WriteDelta(t, 1u << 30, 0, 1).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(engine_
                  ->WriteDelta(t, 5, engine_->db().record_bytes() - 4, 1)
                  .IsInvalidArgument());
  engine_->Abort(t);
}

TEST_F(LogicalLoggingTest, CouRecoveryReplaysDeltasExactlyOnce) {
  Open(Algorithm::kCouCopy);
  // Base value via physical write, checkpoint, then deltas racing a
  // second checkpoint: updates land both before and during the sweep.
  MMDB_ASSERT_OK(engine_->ApplyDelta(7, 0, 1000).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  MMDB_ASSERT_OK(engine_->ApplyDelta(7, 0, 50).status());  // pre-checkpoint
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 3; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  MMDB_ASSERT_OK(engine_->ApplyDelta(7, 0, 3).status());   // mid-sweep
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->ApplyDelta(7, 0, 200).status()); // post-checkpoint

  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());
  EXPECT_EQ(FieldAt(engine_->ReadRecordRaw(7), 0), 1253)
      << "a delta was replayed zero or multiple times";
}

TEST_F(LogicalLoggingTest, RepeatedCrashesNeverDoubleApply) {
  Open(Algorithm::kCouFlush);
  int64_t expected = 0;
  for (int round = 0; round < 5; ++round) {
    MMDB_ASSERT_OK(engine_->ApplyDelta(3, 0, 7).status());
    expected += 7;
    if (round % 2 == 0) {
      MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
    }
    engine_->FlushLog();
    MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
    MMDB_ASSERT_OK(engine_->Crash());
    MMDB_ASSERT_OK(engine_->Recover());
    ASSERT_EQ(FieldAt(engine_->ReadRecordRaw(3), 0), expected)
        << "round " << round;
  }
}

// The demonstration the safety rule exists for: force deltas under a FUZZY
// checkpoint and catch the double-apply. The fuzzy backup may already
// contain a delta's effect (segment flushed after the install) while the
// delta's log record sits after the begin marker — replay applies it
// again.
TEST_F(LogicalLoggingTest, UnsafeFuzzyDeltasDoubleApplyOnRecovery) {
  Open(Algorithm::kFuzzyCopy, /*unsafe=*/true);
  // Deltas spread across every segment so some land before their segment
  // flushes (those get double-applied on replay).
  const uint32_t rps = engine_->params().db.records_per_segment();
  const uint64_t n_seg = engine_->db().num_segments();
  int64_t expected_total = 0;
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (SegmentId s = 0; s < n_seg; ++s) {
    MMDB_ASSERT_OK(engine_->ApplyDelta(s * rps, 0, 10).status());
    expected_total += 10;
    MMDB_ASSERT_OK(engine_->StepCheckpoint());
  }
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());

  int64_t recovered_total = 0;
  for (SegmentId s = 0; s < n_seg; ++s) {
    recovered_total += FieldAt(engine_->ReadRecordRaw(s * rps), 0);
  }
  EXPECT_GT(recovered_total, expected_total)
      << "expected the fuzzy backup to double-apply at least one delta; "
         "if this ever fails the interleaving needs adjusting, not the "
         "safety rule";
}

}  // namespace
}  // namespace mmdb
