// Env tests, run against both MemEnv and PosixEnv (in a temp directory)
// through a shared parameterized suite.

#include <cstdlib>
#include <memory>
#include <string>

#include "env/env.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

enum class EnvKind { kMem, kPosix };

class EnvTest : public testing::TestWithParam<EnvKind> {
 protected:
  void SetUp() override {
    if (GetParam() == EnvKind::kMem) {
      owned_ = NewMemEnv();
      env_ = owned_.get();
      dir_ = "testdir";
    } else {
      env_ = Env::Posix();
      char tmpl[] = "/tmp/mmdb_env_test_XXXXXX";
      char* d = mkdtemp(tmpl);
      ASSERT_NE(d, nullptr);
      dir_ = d;
    }
    MMDB_ASSERT_OK(env_->CreateDirIfMissing(dir_));
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::unique_ptr<Env> owned_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  MMDB_ASSERT_OK(env_->WriteStringToFile(Path("a"), "hello", true));
  std::string out;
  MMDB_ASSERT_OK(env_->ReadFileToString(Path("a"), &out));
  EXPECT_EQ(out, "hello");
}

TEST_P(EnvTest, AppendAccumulates) {
  auto file = env_->NewWritableFile(Path("log"));
  MMDB_ASSERT_OK(file);
  MMDB_ASSERT_OK((*file)->Append("abc"));
  MMDB_ASSERT_OK((*file)->Append("def"));
  EXPECT_EQ((*file)->Size(), 6u);
  MMDB_ASSERT_OK((*file)->Sync());
  MMDB_ASSERT_OK((*file)->Close());
  std::string out;
  MMDB_ASSERT_OK(env_->ReadFileToString(Path("log"), &out));
  EXPECT_EQ(out, "abcdef");
}

TEST_P(EnvTest, AppendableFilePreservesContents) {
  MMDB_ASSERT_OK(env_->WriteStringToFile(Path("log"), "abc", true));
  auto file = env_->NewAppendableFile(Path("log"));
  MMDB_ASSERT_OK(file);
  MMDB_ASSERT_OK((*file)->Append("def"));
  MMDB_ASSERT_OK((*file)->Close());
  std::string out;
  MMDB_ASSERT_OK(env_->ReadFileToString(Path("log"), &out));
  EXPECT_EQ(out, "abcdef");
}

TEST_P(EnvTest, RandomAccessReadsAtOffsets) {
  MMDB_ASSERT_OK(env_->WriteStringToFile(Path("f"), "0123456789", true));
  auto file = env_->NewRandomAccessFile(Path("f"));
  MMDB_ASSERT_OK(file);
  std::string out;
  MMDB_ASSERT_OK((*file)->Read(3, 4, &out));
  EXPECT_EQ(out, "3456");
  // Short read at EOF.
  MMDB_ASSERT_OK((*file)->Read(8, 10, &out));
  EXPECT_EQ(out, "89");
  // Past EOF: empty, not an error.
  MMDB_ASSERT_OK((*file)->Read(50, 4, &out));
  EXPECT_EQ(out, "");
  auto size = (*file)->Size();
  MMDB_ASSERT_OK(size);
  EXPECT_EQ(*size, 10u);
}

TEST_P(EnvTest, RandomWriteInPlaceAndGrow) {
  auto file = env_->NewRandomWriteFile(Path("seg"));
  MMDB_ASSERT_OK(file);
  MMDB_ASSERT_OK((*file)->Truncate(16));
  MMDB_ASSERT_OK((*file)->WriteAt(4, "XYZ"));
  std::string out;
  MMDB_ASSERT_OK((*file)->Read(0, 16, &out));
  ASSERT_EQ(out.size(), 16u);
  EXPECT_EQ(out.substr(4, 3), "XYZ");
  EXPECT_EQ(out[0], '\0');
  // Write past the end grows the file.
  MMDB_ASSERT_OK((*file)->WriteAt(30, "AB"));
  MMDB_ASSERT_OK((*file)->Read(30, 2, &out));
  EXPECT_EQ(out, "AB");
  MMDB_ASSERT_OK((*file)->Sync());
  MMDB_ASSERT_OK((*file)->Close());
}

TEST_P(EnvTest, TruncateNeverShrinks) {
  auto file = env_->NewRandomWriteFile(Path("g"));
  MMDB_ASSERT_OK(file);
  MMDB_ASSERT_OK((*file)->WriteAt(0, "0123456789"));
  MMDB_ASSERT_OK((*file)->Truncate(4));
  std::string out;
  MMDB_ASSERT_OK((*file)->Read(0, 10, &out));
  EXPECT_EQ(out, "0123456789");
}

TEST_P(EnvTest, FileExistsDeleteRename) {
  EXPECT_FALSE(env_->FileExists(Path("x")));
  MMDB_ASSERT_OK(env_->WriteStringToFile(Path("x"), "1", false));
  EXPECT_TRUE(env_->FileExists(Path("x")));
  MMDB_ASSERT_OK(env_->RenameFile(Path("x"), Path("y")));
  EXPECT_FALSE(env_->FileExists(Path("x")));
  EXPECT_TRUE(env_->FileExists(Path("y")));
  auto size = env_->FileSize(Path("y"));
  MMDB_ASSERT_OK(size);
  EXPECT_EQ(*size, 1u);
  MMDB_ASSERT_OK(env_->DeleteFile(Path("y")));
  EXPECT_FALSE(env_->FileExists(Path("y")));
  EXPECT_TRUE(env_->DeleteFile(Path("y")).IsNotFound() ||
              env_->DeleteFile(Path("y")).IsIoError());
}

TEST_P(EnvTest, RenameReplacesTarget) {
  MMDB_ASSERT_OK(env_->WriteStringToFile(Path("from"), "new", false));
  MMDB_ASSERT_OK(env_->WriteStringToFile(Path("to"), "old", false));
  MMDB_ASSERT_OK(env_->RenameFile(Path("from"), Path("to")));
  std::string out;
  MMDB_ASSERT_OK(env_->ReadFileToString(Path("to"), &out));
  EXPECT_EQ(out, "new");
}

TEST_P(EnvTest, ListDirSeesDirectChildren) {
  MMDB_ASSERT_OK(env_->WriteStringToFile(Path("a.txt"), "", false));
  MMDB_ASSERT_OK(env_->WriteStringToFile(Path("b.txt"), "", false));
  std::vector<std::string> children;
  MMDB_ASSERT_OK(env_->ListDir(dir_, &children));
  EXPECT_GE(children.size(), 2u);
  EXPECT_NE(std::find(children.begin(), children.end(), "a.txt"),
            children.end());
}

TEST_P(EnvTest, ReadMissingFileFails) {
  std::string out;
  Status st = env_->ReadFileToString(Path("missing"), &out);
  EXPECT_FALSE(st.ok());
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvTest,
                         testing::Values(EnvKind::kMem, EnvKind::kPosix),
                         [](const testing::TestParamInfo<EnvKind>& info) {
                           return info.param == EnvKind::kMem ? "Mem"
                                                              : "Posix";
                         });

}  // namespace
}  // namespace mmdb
