// Two-color (Pu) algorithm specifics: the color constraint, painting,
// lock-through-I/O behaviour of 2CFLUSH, and restart accounting.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/coding.h"
#include "util/random.h"

namespace mmdb {
namespace {

class TwoColorTest : public testing::TestWithParam<Algorithm> {
 protected:
  void Open(CheckpointMode mode = CheckpointMode::kFull) {
    EngineOptions opt = TinyOptions();
    opt.algorithm = GetParam();
    opt.checkpoint_mode = mode;
    env_ = NewMemEnv();
    auto engine = Engine::Open(opt, env_.get());
    MMDB_ASSERT_OK(engine);
    engine_ = std::move(*engine);
  }

  std::string Image(RecordId r, uint64_t m) {
    return MakeRecordImage(engine_->db().record_bytes(), r, m);
  }

  // Steps the checkpoint until roughly half the segments are processed.
  void StepToMidSweep() {
    MMDB_ASSERT_OK(engine_->StartCheckpoint());
    uint64_t half = engine_->db().num_segments() / 2;
    // Each productive Step handles one segment; a few extra cover the
    // begin-marker flush wait.
    for (uint64_t i = 0; i < half + 2; ++i) {
      MMDB_ASSERT_OK(engine_->StepCheckpoint());
    }
    ASSERT_TRUE(engine_->CheckpointInProgress());
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(TwoColorTest, MixedColorAccessAborts) {
  Open();
  StepToMidSweep();
  RecordId low = 0;                                  // black by now
  RecordId high = engine_->db().num_records() - 1;  // still white
  Transaction* t = engine_->Begin();
  Status st = engine_->Write(t, low, Image(low, 1));
  if (st.ok()) st = engine_->Write(t, high, Image(high, 1));
  EXPECT_TRUE(st.IsAborted()) << st;
  engine_->Abort(t, AbortReason::kColorViolation);
  EXPECT_EQ(engine_->txns().color_aborts(), 1u);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
}

TEST_P(TwoColorTest, SameColorAccessSucceedsMidSweep) {
  Open();
  StepToMidSweep();
  // Two records in the last segment: both white.
  RecordId a = engine_->db().num_records() - 1;
  RecordId b = engine_->db().num_records() - 2;
  Transaction* t = engine_->Begin();
  MMDB_ASSERT_OK(engine_->Write(t, a, Image(a, 1)));
  MMDB_ASSERT_OK(engine_->Write(t, b, Image(b, 1)));
  MMDB_ASSERT_OK(engine_->Commit(t).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
}

TEST_P(TwoColorTest, NoConstraintBetweenCheckpoints) {
  Open();
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  // After completion colors flip back to uniform: any spread of records
  // commits fine.
  RecordId low = 0;
  RecordId high = engine_->db().num_records() - 1;
  auto lsn = engine_->Apply({{low, Image(low, 2)}, {high, Image(high, 2)}});
  MMDB_ASSERT_OK(lsn);
  EXPECT_EQ(engine_->txns().color_aborts(), 0u);
}

TEST_P(TwoColorTest, ConstraintReactivatesNextCheckpoint) {
  Open();
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  // Dirty everything again so the second sweep has work.
  for (SegmentId s = 0; s < engine_->db().num_segments(); ++s) {
    RecordId r = s * engine_->params().db.records_per_segment();
    MMDB_ASSERT_OK(engine_->Apply({{r, Image(r, 3)}}).status());
  }
  StepToMidSweep();
  Transaction* t = engine_->Begin();
  Status st = engine_->Write(t, 0, Image(0, 4));
  if (st.ok()) {
    st = engine_->Write(t, engine_->db().num_records() - 1,
                        Image(engine_->db().num_records() - 1, 4));
  }
  EXPECT_TRUE(st.IsAborted());
  engine_->Abort(t, AbortReason::kColorViolation);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
}

TEST_P(TwoColorTest, TwoColorBackupIsTransactionConsistent) {
  // Transactions only ever commit within one color side, so the backup —
  // assembled from segments flushed at different times — must still
  // reflect each transaction entirely or not at all. Run a workload and
  // recover: per-transaction atomicity is checked by VerifyRecovered's
  // exact image comparison (a torn transaction would leave a stale image
  // for some record).
  Open(CheckpointMode::kPartial);
  WorkloadOptions wopt;
  wopt.duration = 0.5;
  wopt.seed = 23;
  WorkloadDriver driver(engine_.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  EXPECT_GT(result->color_restarts, 0u)
      << "workload never hit the two-color constraint; the test is vacuous";
  Lsn durable = engine_->DurableLsn();
  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());
  VerifyRecovered(*engine_, driver, durable);
}

TEST_P(TwoColorTest, RestartsRecordedAsRerunOverhead) {
  Open();
  WorkloadOptions wopt;
  wopt.duration = 0.3;
  wopt.seed = 29;
  WorkloadDriver driver(engine_.get(), wopt);
  auto result = driver.Run();
  MMDB_ASSERT_OK(result);
  ASSERT_GT(result->color_restarts, 0u);
  // Each restart charges one C_trans of rerun work.
  EXPECT_GE(engine_->meter().Count(CpuCategory::kTxnRerun),
            static_cast<double>(result->color_restarts) *
                engine_->params().txn.instructions);
}

TEST(TwoColorFlushTest, LockHeldThroughIoBlocksWriters) {
  EngineOptions opt = TinyOptions();
  opt.algorithm = Algorithm::kTwoColorFlush;
  opt.checkpoint_mode = CheckpointMode::kFull;
  auto env = NewMemEnv();
  auto engine_or = Engine::Open(opt, env.get());
  MMDB_ASSERT_OK(engine_or);
  Engine& engine = **engine_or;

  MMDB_ASSERT_OK(engine.StartCheckpoint());
  // Step until the first segment write is in flight.
  MMDB_ASSERT_OK(engine.StepCheckpoint());
  MMDB_ASSERT_OK(engine.StepCheckpoint());
  double before = engine.now();
  // Updating a record in a segment the checkpointer has locked must wait
  // for the I/O to finish: the engine's clock jumps forward.
  std::string image =
      MakeRecordImage(engine.db().record_bytes(), 0, 1);
  auto lsn = engine.Apply({{0, image}});
  MMDB_ASSERT_OK(lsn);
  // Either we waited (clock advanced by ~a segment I/O) or the segment had
  // already been flushed before we got there; the first Step after the
  // begin flush issues segment 0, so a wait is expected.
  EXPECT_GT(engine.now(), before);
  MMDB_ASSERT_OK(engine.RunCheckpointToCompletion());
}

// The TC property itself, as an invariant rather than a recovery check:
// transfer transactions conserve a total; since no committed transaction
// may span the color boundary, the completed backup image — assembled
// from segments flushed at different times — must still conserve it.
// (A fuzzy checkpoint under the same interleaving can catch a transfer
// half-applied; see the bank_ledger example.)
TEST_P(TwoColorTest, BackupImageConservesTransferredTotal) {
  Open(CheckpointMode::kFull);
  const size_t rb = engine_->db().record_bytes();
  const uint64_t n = engine_->db().num_records();
  auto encode = [&](int64_t v) {
    std::string image;
    PutFixed64(&image, static_cast<uint64_t>(v));
    image.resize(rb, '\0');
    return image;
  };
  // Fund every account with 100, checkpoint a baseline.
  for (RecordId r = 0; r < n; ++r) {
    MMDB_ASSERT_OK(engine_->Apply({{r, encode(100)}}).status());
  }
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  // Transfers race the next sweep; two-color aborts are retried with the
  // same endpoints until the pair lands on one side of the boundary.
  Random rng(41);
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  int transfers = 0;
  while (engine_->CheckpointInProgress()) {
    MMDB_ASSERT_OK(engine_->StepCheckpoint());
    RecordId from = rng.Uniform(n);
    RecordId to = rng.Uniform(n);
    if (from == to) continue;
    for (int attempt = 0; attempt < 5000; ++attempt) {
      Transaction* t = engine_->Begin();
      std::string a, b;
      Status st = engine_->Read(t, from, &a);
      if (st.ok()) st = engine_->Read(t, to, &b);
      if (st.ok()) {
        st = engine_->Write(
            t, from,
            encode(static_cast<int64_t>(DecodeFixed64(a.data())) - 5));
      }
      if (st.ok()) {
        st = engine_->Write(
            t, to,
            encode(static_cast<int64_t>(DecodeFixed64(b.data())) + 5));
      }
      if (st.ok()) {
        MMDB_ASSERT_OK(engine_->Commit(t).status());
        ++transfers;
        break;
      }
      engine_->Abort(t, AbortReason::kColorViolation);
      MMDB_ASSERT_OK(engine_->AdvanceTime(0.002));
    }
  }
  ASSERT_GT(transfers, 10);

  // The raw backup image conserves the total exactly.
  auto meta = engine_->backup()->ReadMeta();
  MMDB_ASSERT_OK(meta);
  int64_t total = 0;
  std::string segment;
  const uint32_t rps = engine_->params().db.records_per_segment();
  for (SegmentId s = 0; s < engine_->db().num_segments(); ++s) {
    MMDB_ASSERT_OK(engine_->backup()->ReadSegment(meta->copy, s, &segment));
    for (uint32_t i = 0; i < rps; ++i) {
      total += static_cast<int64_t>(DecodeFixed64(segment.data() + i * rb));
    }
  }
  EXPECT_EQ(total, static_cast<int64_t>(n) * 100)
      << "the two-color backup caught a transaction mid-flight";
}

INSTANTIATE_TEST_SUITE_P(BothVariants, TwoColorTest,
                         testing::Values(Algorithm::kTwoColorFlush,
                                         Algorithm::kTwoColorCopy),
                         [](const testing::TestParamInfo<Algorithm>& info) {
                           return std::string(AlgorithmName(info.param)) ==
                                          "2CFLUSH"
                                      ? "Flush"
                                      : "Copy";
                         });

}  // namespace
}  // namespace mmdb
