// Fault-injection suite. Three layers:
//
//  1. Unit tests for FaultInjectionEnv itself (deterministic scheduling,
//     path filtering, each fault shape's on-disk effect).
//  2. Targeted protocol tests: recovery falling back to the older
//     ping-pong copy when the newer one is unreadable, torn backup and
//     log writes, and crashes around post-checkpoint log truncation.
//  3. The fault sweep: for every algorithm x {full, partial} mode, run a
//     fixed scripted history and inject a single fault at every k-th
//     data-path I/O operation. A single transient device fault must never
//     lose a durably-committed transaction, never leave the engine
//     without a readable complete backup copy, and the aborted checkpoint
//     must be retried successfully once the fault clears.
//
// Everything is deterministic: a failing (kind, k) pair replays exactly.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "backup/backup_store.h"
#include "env/env.h"
#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "wal/log_reader.h"

namespace mmdb {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: the decorator itself.
// ---------------------------------------------------------------------------

class FaultEnvTest : public testing::Test {
 protected:
  FaultEnvTest() : base_(NewMemEnv()), fenv_(base_.get()) {}

  std::unique_ptr<WritableFile> Writable(const std::string& path) {
    auto f = fenv_.NewWritableFile(path);
    EXPECT_TRUE(f.ok());
    return std::move(*f);
  }

  std::string Contents(const std::string& path) {
    std::string out;
    EXPECT_TRUE(base_->ReadFileToString(path, &out).ok());
    return out;
  }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv fenv_;
};

TEST_F(FaultEnvTest, RuleArmsAtOpCountAndDisarmsAfterTimes) {
  auto f = Writable("a");
  fenv_.InjectFault({FaultKind::kWriteError, "", /*after_ops=*/2,
                     /*times=*/1});
  MMDB_EXPECT_OK(f->Append("x"));  // op 0
  MMDB_EXPECT_OK(f->Append("y"));  // op 1
  EXPECT_TRUE(f->Append("z").IsIoError());  // op 2: fires
  MMDB_EXPECT_OK(f->Append("w"));  // op 3: rule spent
  EXPECT_EQ(fenv_.op_count(), 4u);
  EXPECT_EQ(fenv_.faults_fired(), 1u);
  EXPECT_EQ(Contents("a"), "xyw");
}

TEST_F(FaultEnvTest, PathSubstringFiltersRules) {
  fenv_.InjectFault({FaultKind::kWriteError, "victim", 0, /*times=*/0});
  auto a = Writable("bystander");
  auto b = Writable("dir/victim.db");
  MMDB_EXPECT_OK(a->Append("ok"));
  EXPECT_TRUE(b->Append("no").IsIoError());
  EXPECT_EQ(Contents("bystander"), "ok");
}

TEST_F(FaultEnvTest, ClearFaultsDisarmsUnlimitedRule) {
  fenv_.InjectFault({FaultKind::kWriteError, "", 0, /*times=*/0});
  auto f = Writable("a");
  EXPECT_TRUE(f->Append("x").IsIoError());
  EXPECT_TRUE(f->Append("y").IsIoError());
  fenv_.ClearFaults();
  MMDB_EXPECT_OK(f->Append("z"));
  EXPECT_EQ(Contents("a"), "z");
}

TEST_F(FaultEnvTest, ShortWritePersistsPrefixAndReportsError) {
  auto f = Writable("a");
  fenv_.InjectFault({FaultKind::kShortWrite, "", 0, 1});
  EXPECT_TRUE(f->Append("abcdefgh").IsIoError());
  EXPECT_EQ(Contents("a"), "abcd");
}

TEST_F(FaultEnvTest, TornWritePersistsPrefixSilently) {
  auto f = Writable("a");
  fenv_.InjectFault({FaultKind::kTornWrite, "", 0, 1});
  MMDB_EXPECT_OK(f->Append("abcdefgh"));  // lies
  EXPECT_EQ(Contents("a"), "abcd");
}

TEST_F(FaultEnvTest, SyncErrorDoesNotConsumeWriteRules) {
  auto f = Writable("a");
  fenv_.InjectFault({FaultKind::kSyncError, "", 0, 1});
  MMDB_EXPECT_OK(f->Append("data"));  // write op, sync rule doesn't match
  EXPECT_TRUE(f->Sync().IsIoError());
  MMDB_EXPECT_OK(f->Sync());
}

TEST_F(FaultEnvTest, ReadFaults) {
  MMDB_EXPECT_OK(base_->WriteStringToFile("a", "hello world", false));
  auto file = fenv_.NewRandomAccessFile("a");
  MMDB_ASSERT_OK(file);
  std::string out;
  fenv_.InjectFault({FaultKind::kReadError, "", 0, 1});
  EXPECT_TRUE((*file)->Read(0, 11, &out).IsIoError());
  fenv_.InjectFault({FaultKind::kCorruptRead, "", 0, 1});
  MMDB_EXPECT_OK((*file)->Read(0, 11, &out));
  EXPECT_NE(out, "hello world");  // one bit flipped in the middle
  EXPECT_EQ(out.size(), 11u);
  MMDB_EXPECT_OK((*file)->Read(0, 11, &out));
  EXPECT_EQ(out, "hello world");  // the file itself is undamaged
}

TEST_F(FaultEnvTest, RandomWriteFaultShapes) {
  auto f = fenv_.NewRandomWriteFile("a");
  MMDB_ASSERT_OK(f);
  MMDB_EXPECT_OK((*f)->Truncate(8));
  fenv_.InjectFault({FaultKind::kShortWrite, "", fenv_.op_count(), 1});
  EXPECT_TRUE((*f)->WriteAt(0, "abcdefgh").IsIoError());
  std::string out;
  MMDB_EXPECT_OK((*f)->Read(0, 8, &out));
  EXPECT_EQ(out, std::string("abcd") + std::string(4, '\0'));
}

// ---------------------------------------------------------------------------
// Shared engine-level plumbing.
// ---------------------------------------------------------------------------

// Committed images per record, in commit order.
using Oracle = std::map<RecordId, std::vector<std::pair<Lsn, std::string>>>;

// Small geometry so a whole checkpoint is a handful of I/Os: 16 segments
// of 1024 words, 32-word records.
EngineOptions SweepOptions(Algorithm algorithm, CheckpointMode mode) {
  EngineOptions opt = TinyOptions();
  opt.params.db.db_words = 16 * 1024;
  opt.algorithm = algorithm;
  opt.checkpoint_mode = mode;
  opt.stable_log_tail = algorithm == Algorithm::kFastFuzzy;
  return opt;
}

// Runs one transaction of `k` updates, retrying two-color aborts with a
// shifted record set, and records the committed images in the oracle. A
// commit whose group flush hit the injected fault still committed in
// memory — its records sit in the retained log tail at the LSNs the
// engine assigned — so it enters the oracle too; the durability audit
// decides later whether it survived.
void CommitTxn(Engine* engine, Oracle* oracle, RecordId base, int k,
               uint64_t marker) {
  const uint64_t n = engine->db().num_records();
  const size_t rec_bytes = engine->db().record_bytes();
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<std::pair<RecordId, std::string>> updates;
    for (int i = 0; i < k; ++i) {
      RecordId r = (base + static_cast<uint64_t>(attempt) * 37 +
                    static_cast<uint64_t>(i) * 5) %
                   n;
      updates.emplace_back(r, MakeRecordImage(rec_bytes, r, marker));
    }
    Transaction* txn = engine->Begin();
    Status st = Status::OK();
    for (const auto& [r, image] : updates) {
      st = engine->Write(txn, r, image);
      if (!st.ok()) break;
    }
    if (!st.ok()) {
      ASSERT_TRUE(st.IsAborted()) << st;
      engine->Abort(txn, AbortReason::kColorViolation);
      MMDB_ASSERT_OK(engine->AdvanceTime(0.002));
      continue;
    }
    StatusOr<Lsn> lsn = engine->Commit(txn);
    Lsn committed;
    if (lsn.ok()) {
      committed = *lsn;
    } else {
      ASSERT_TRUE(lsn.status().IsIoError()) << lsn.status();
      committed = engine->log()->LastLsn();
    }
    for (const auto& [r, image] : updates) {
      (*oracle)[r].push_back({committed, image});
    }
    return;
  }
  FAIL() << "transaction never admitted after 200 attempts";
}

// Device errors on checkpoint or flush paths are exactly what the sweep
// injects; anything else is a real bug.
void ExpectOkOrIoError(const Status& st) {
  EXPECT_TRUE(st.ok() || st.IsIoError()) << st;
}

// The scripted history every sweep point replays: populate, checkpoint,
// update, leave a checkpoint mid-sweep, update against it, finish.
void RunScript(Engine* engine, Oracle* oracle) {
  uint64_t marker = 1;
  for (int i = 0; i < 6; ++i) {
    ASSERT_NO_FATAL_FAILURE(
        CommitTxn(engine, oracle, i * 31, 1 + (i % 3), marker++));
  }
  ExpectOkOrIoError(engine->RunCheckpointToCompletion());
  for (int i = 0; i < 6; ++i) {
    ASSERT_NO_FATAL_FAILURE(
        CommitTxn(engine, oracle, 7 * i + 3, 1 + (i % 2), marker++));
  }
  ExpectOkOrIoError(engine->StartCheckpoint());
  for (int i = 0; i < 4; ++i) {
    ExpectOkOrIoError(engine->StepCheckpoint());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_NO_FATAL_FAILURE(
        CommitTxn(engine, oracle, 11 * i + 5, 1, marker++));
  }
  ExpectOkOrIoError(engine->RunCheckpointToCompletion());
  ExpectOkOrIoError(engine->FlushLog());
  MMDB_ASSERT_OK(engine->AdvanceTime(0.2));
}

// Every oracle record must hold its newest image committed at or below
// `durable`, or zeros if none is.
void Audit(const Engine& engine, const Oracle& oracle, Lsn durable) {
  const std::string zeros(engine.db().record_bytes(), '\0');
  for (const auto& [record, commits] : oracle) {
    std::string_view expected = zeros;
    for (const auto& [lsn, image] : commits) {
      if (lsn <= durable) expected = image;
    }
    ASSERT_EQ(engine.ReadRecordRaw(record), expected)
        << "record " << record << ", durable lsn " << durable;
  }
}

// ---------------------------------------------------------------------------
// Layer 3: the sweep.
// ---------------------------------------------------------------------------

struct FaultSweepCase {
  Algorithm algorithm;
  CheckpointMode mode;
};

std::string SweepCaseName(const testing::TestParamInfo<FaultSweepCase>& info) {
  return std::string(AlgorithmName(info.param.algorithm)) +
         (info.param.mode == CheckpointMode::kFull ? "_full" : "_partial");
}

class FaultSweepTest : public testing::TestWithParam<FaultSweepCase> {
 protected:
  // Runs the script with a single `kind` fault armed at the k-th data-path
  // operation after engine open (no fault if `inject` is false), then
  // verifies the engine heals completely: flush and checkpoint succeed
  // once the fault clears, a complete backup copy is readable, and
  // crash+recovery reproduces exactly the durably-committed state.
  void RunFaultPoint(FaultKind kind, uint64_t k, bool inject,
                     uint64_t* ops_used) {
    const FaultSweepCase& c = GetParam();
    std::unique_ptr<Env> base = NewMemEnv();
    FaultInjectionEnv fenv(base.get());
    auto engine_or = Engine::Open(SweepOptions(c.algorithm, c.mode), &fenv);
    MMDB_ASSERT_OK(engine_or);
    std::unique_ptr<Engine> engine = std::move(*engine_or);

    const uint64_t start_ops = fenv.op_count();
    if (inject) {
      fenv.InjectFault({kind, "", start_ops + k, /*times=*/1});
    }
    Oracle oracle;
    ASSERT_NO_FATAL_FAILURE(RunScript(engine.get(), &oracle));
    if (ops_used != nullptr) *ops_used = fenv.op_count() - start_ops;

    // The fault was transient (times=1); with a clear device everything
    // must heal: the retained log tail flushes (repairing any partial
    // frame), and the aborted checkpoint's retry completes.
    fenv.ClearFaults();
    MMDB_ASSERT_OK(engine->FlushLog());
    MMDB_ASSERT_OK(engine->RunCheckpointToCompletion());
    MMDB_ASSERT_OK(engine->AdvanceTime(1.0));

    // The ping-pong invariant: a complete, CRC-valid backup copy named by
    // the metadata always exists.
    auto meta = engine->backup()->ReadMeta();
    MMDB_ASSERT_OK(meta);
    std::string image;
    for (SegmentId s = 0; s < engine->db().num_segments(); ++s) {
      MMDB_ASSERT_OK(engine->backup()->ReadSegment(meta->copy, s, &image));
    }

    const Lsn durable = engine->DurableLsn();
    MMDB_ASSERT_OK(engine->Crash());
    MMDB_ASSERT_OK(engine->Recover());
    ASSERT_NO_FATAL_FAILURE(Audit(*engine, oracle, durable));
  }
};

TEST_P(FaultSweepTest, SingleFaultNeverLosesDurableData) {
  // Dry run to size the sweep.
  uint64_t total_ops = 0;
  ASSERT_NO_FATAL_FAILURE(
      RunFaultPoint(FaultKind::kWriteError, 0, /*inject=*/false, &total_ops));
  ASSERT_GT(total_ops, 0u);

  for (FaultKind kind :
       {FaultKind::kWriteError, FaultKind::kShortWrite,
        FaultKind::kSyncError}) {
    // ~10 points per kind, offset per kind so the union covers more
    // distinct operations.
    uint64_t stride = std::max<uint64_t>(1, total_ops / 9);
    uint64_t offset = static_cast<uint64_t>(kind) % stride;
    for (uint64_t k = offset; k <= total_ops; k += stride) {
      SCOPED_TRACE(testing::Message()
                   << "fault kind " << static_cast<int>(kind) << " at op "
                   << k << " of " << total_ops);
      ASSERT_NO_FATAL_FAILURE(RunFaultPoint(kind, k, /*inject=*/true,
                                            nullptr));
    }
  }
}

std::vector<FaultSweepCase> AllSweepCases() {
  std::vector<FaultSweepCase> cases;
  for (Algorithm a : kAllAlgorithms) {
    for (CheckpointMode m : {CheckpointMode::kFull, CheckpointMode::kPartial}) {
      cases.push_back(FaultSweepCase{a, m});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Algorithms, FaultSweepTest,
                         testing::ValuesIn(AllSweepCases()), SweepCaseName);

// ---------------------------------------------------------------------------
// Layer 2: targeted protocol tests.
// ---------------------------------------------------------------------------

class RecoveryFallbackTest : public testing::Test {
 protected:
  RecoveryFallbackTest() : base_(NewMemEnv()), fenv_(base_.get()) {}

  void OpenEngine() {
    auto engine_or = Engine::Open(
        SweepOptions(Algorithm::kFuzzyCopy, CheckpointMode::kPartial), &fenv_);
    MMDB_ASSERT_OK(engine_or);
    engine_ = std::move(*engine_or);
  }

  void Commit(RecordId r, uint64_t marker) {
    ASSERT_NO_FATAL_FAILURE(CommitTxn(engine_.get(), &oracle_, r, 1, marker));
  }

  void Settle() {
    MMDB_ASSERT_OK(engine_->FlushLog());
    MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  }

  // Flips one byte inside segment `s`'s data slot of `path`, leaving the
  // stored CRC stale.
  void CorruptSegment(const std::string& path, SegmentId s) {
    auto file = base_->NewRandomWriteFile(path);
    MMDB_ASSERT_OK(file);
    const uint64_t off =
        BackupStore::SlotOffsetFor(engine_->params().db, s) + 17;
    std::string byte;
    MMDB_ASSERT_OK((*file)->Read(off, 1, &byte));
    byte[0] = static_cast<char>(byte[0] ^ 0x40);
    MMDB_ASSERT_OK((*file)->WriteAt(off, byte));
    MMDB_ASSERT_OK((*file)->Close());
  }

  std::string BackupPath(uint32_t copy) {
    return engine_->options().dir + "/backup_" + std::to_string(copy) + ".db";
  }

  // Reads the provenance journal through the base env so an armed fault
  // cannot interfere with the inspection itself.
  std::vector<AuditEntry> JournalEntries() {
    std::string text;
    EXPECT_TRUE(
        base_->ReadFileToString(engine_->AuditLogPath(), &text).ok());
    auto entries = ParseAuditJournal(text);
    EXPECT_TRUE(entries.ok()) << entries.status();
    return entries.ok() ? std::move(*entries) : std::vector<AuditEntry>{};
  }

  static uint64_t Field(const AuditEntry& e, const char* key) {
    const JsonValue* v = e.object.Find(key);
    return v != nullptr && v->is_number()
               ? static_cast<uint64_t>(v->number_value())
               : ~0ull;
  }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv fenv_;
  std::unique_ptr<Engine> engine_;
  Oracle oracle_;
};

TEST_F(RecoveryFallbackTest, FallsBackToOlderCopyOnCrcMismatch) {
  OpenEngine();
  Commit(1, 1);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());  // id 1 -> copy 1
  Commit(40, 2);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());  // id 2 -> copy 0
  Commit(80, 3);
  Settle();
  const Lsn durable = engine_->DurableLsn();
  MMDB_ASSERT_OK(engine_->Crash());

  // Checkpoint 2's copy rots on disk; recovery must notice (CRC) and fall
  // back to checkpoint 1's copy, replaying the longer log suffix.
  CorruptSegment(BackupPath(0), 0);
  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  // Under the instant lane the corruption is only discovered when the
  // damaged segment reloads on demand; the drained stats must match the
  // blocking path's exactly.
  MMDB_ASSERT_OK(engine_->DrainRecovery());
  EXPECT_TRUE(engine_->last_recovery().fell_back_to_older_copy);
  EXPECT_EQ(engine_->last_recovery().checkpoint_id, 1u);
  EXPECT_EQ(engine_->last_recovery().copy, 1u);
  ASSERT_NO_FATAL_FAILURE(Audit(*engine_, oracle_, durable));

  // The journal must tell the whole fallback story: the plan named the
  // newest checkpoint (the attempt that then failed), and the fallback
  // event records both that failed source and the older copy recovery
  // actually used, with the damaged segment called out.
  {
    std::vector<AuditEntry> entries = JournalEntries();
    const AuditEntry* plan = nullptr;
    const AuditEntry* fallback = nullptr;
    for (const AuditEntry& e : entries) {
      if (e.event == "recovery.plan") plan = &e;
      if (e.event == "recovery.fallback") fallback = &e;
    }
    ASSERT_NE(plan, nullptr);
    ASSERT_NE(fallback, nullptr);
    EXPECT_EQ(Field(*plan, "checkpoint"), 2u);
    EXPECT_EQ(Field(*fallback, "from_checkpoint"), 2u);
    EXPECT_EQ(Field(*fallback, "from_copy"), 0u);
    EXPECT_EQ(Field(*fallback, "to_checkpoint"), 1u);
    EXPECT_EQ(Field(*fallback, "to_copy"), 1u);
    const JsonValue* trigger = fallback->object.Find("trigger");
    ASSERT_NE(trigger, nullptr);
    EXPECT_FALSE(trigger->string_value().empty());
    const JsonValue* failed = fallback->object.Find("failed_segments");
    ASSERT_NE(failed, nullptr);
    bool names_segment0 = false;
    for (const JsonValue& s : failed->array_items()) {
      if (s.number_value() == 0) names_segment0 = true;
    }
    EXPECT_TRUE(names_segment0);
  }

  // The next checkpoint must skip past the stale end marker (id 2) so its
  // completion record can never be paired with the half-overwritten copy:
  // parity is preserved, so id 4 rewrites the bad copy 0.
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  auto meta = engine_->backup()->ReadMeta();
  MMDB_ASSERT_OK(meta);
  EXPECT_EQ(meta->checkpoint_id, 4u);
  EXPECT_EQ(meta->copy, 0u);

  // With the copy rewritten, the next crash recovers cleanly from it.
  Settle();
  const Lsn durable2 = engine_->DurableLsn();
  MMDB_ASSERT_OK(engine_->Crash());
  auto stats2 = engine_->Recover();
  MMDB_ASSERT_OK(stats2);
  MMDB_ASSERT_OK(engine_->DrainRecovery());
  EXPECT_FALSE(engine_->last_recovery().fell_back_to_older_copy);
  EXPECT_EQ(engine_->last_recovery().checkpoint_id, 4u);
  ASSERT_NO_FATAL_FAILURE(Audit(*engine_, oracle_, durable2));
  VerifyAuditTrail(engine_.get());
}

TEST_F(RecoveryFallbackTest, FallsBackToOlderCopyOnReadError) {
  OpenEngine();
  Commit(1, 1);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());  // id 1 -> copy 1
  Commit(40, 2);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());  // id 2 -> copy 0
  Settle();
  const Lsn durable = engine_->DurableLsn();
  MMDB_ASSERT_OK(engine_->Crash());

  // The device, not the data, fails: the first read of copy 0 errors.
  fenv_.InjectFault(
      {FaultKind::kReadError, "backup_0.db", fenv_.op_count(), 1});
  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  // With instant recovery the armed device error fires at the first
  // on-demand reload of copy 0, mid-service, and must take the same
  // fallback path.
  MMDB_ASSERT_OK(engine_->DrainRecovery());
  EXPECT_TRUE(engine_->last_recovery().fell_back_to_older_copy);
  EXPECT_EQ(engine_->last_recovery().checkpoint_id, 1u);
  ASSERT_NO_FATAL_FAILURE(Audit(*engine_, oracle_, durable));
  // A device read error (as opposed to rotten bytes) takes the same
  // fallback path and must leave the same journal trail.
  {
    std::vector<AuditEntry> entries = JournalEntries();
    const AuditEntry* fallback = nullptr;
    for (const AuditEntry& e : entries) {
      if (e.event == "recovery.fallback") fallback = &e;
    }
    ASSERT_NE(fallback, nullptr);
    EXPECT_EQ(Field(*fallback, "from_checkpoint"), 2u);
    EXPECT_EQ(Field(*fallback, "to_checkpoint"), 1u);
  }
  VerifyAuditTrail(engine_.get());
}

TEST_F(RecoveryFallbackTest, InstantOnDemandCrcErrorFallsBackMidService) {
  // Explicit instant-recovery restart (not the env lane): the corrupted
  // backup segment is discovered by the FIRST TRANSACTION that touches it
  // while the engine is already serving — the older-copy fallback must
  // happen inside that transaction's admission stall, journal itself
  // immediately, and leave the transaction (and the engine) running.
  {
    EngineOptions opt =
        SweepOptions(Algorithm::kFuzzyCopy, CheckpointMode::kPartial);
    opt.instant_recovery = true;
    auto engine_or = Engine::Open(opt, &fenv_);
    MMDB_ASSERT_OK(engine_or);
    engine_ = std::move(*engine_or);
  }
  ASSERT_TRUE(engine_->instant_recovery_enabled());
  Commit(1, 1);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());  // id 1 -> copy 1
  Commit(40, 2);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());  // id 2 -> copy 0
  Commit(80, 3);
  Settle();
  MMDB_ASSERT_OK(engine_->Crash());

  CorruptSegment(BackupPath(0), 0);
  MMDB_ASSERT_OK(engine_->Recover().status());
  EXPECT_TRUE(engine_->recovery_pending());

  // Record 2 lives in segment 0: its commit stalls on the recovery latch,
  // hits the CRC mismatch, and rides the fallback — mid-service, with the
  // restart still draining in the background.
  Commit(2, 4);
  EXPECT_FALSE(engine_->crashed());
  {
    std::vector<AuditEntry> entries = JournalEntries();
    const AuditEntry* fallback = nullptr;
    const AuditEntry* on_demand = nullptr;
    for (const AuditEntry& e : entries) {
      if (e.event == "recovery.fallback") fallback = &e;
      if (e.event == "recovery.segment_on_demand" && on_demand == nullptr) {
        on_demand = &e;
      }
    }
    ASSERT_NE(fallback, nullptr)
        << "fallback must be journaled at the triggering touch, not at "
           "the drain";
    EXPECT_EQ(Field(*fallback, "from_checkpoint"), 2u);
    EXPECT_EQ(Field(*fallback, "to_checkpoint"), 1u);
    // The very first on-demand load is the touched, damaged segment.
    ASSERT_NE(on_demand, nullptr);
    EXPECT_EQ(Field(*on_demand, "segment"), 0u);
    const JsonValue* trigger = on_demand->object.Find("trigger");
    ASSERT_NE(trigger, nullptr);
    EXPECT_EQ(trigger->string_value(), "touch");
  }

  MMDB_ASSERT_OK(engine_->DrainRecovery());
  EXPECT_TRUE(engine_->last_recovery().fell_back_to_older_copy);
  EXPECT_EQ(engine_->last_recovery().checkpoint_id, 1u);
  EXPECT_EQ(engine_->last_recovery().copy, 1u);

  // Durability audit over the whole oracle, including the mid-service
  // commit once it is durable.
  Settle();
  ASSERT_NO_FATAL_FAILURE(Audit(*engine_, oracle_, engine_->DurableLsn()));
  VerifyAuditTrail(engine_.get());
}

TEST_F(RecoveryFallbackTest, FailsWhenNoOlderCompleteCheckpointExists) {
  OpenEngine();
  Commit(1, 1);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());  // id 1 -> copy 1
  Settle();
  MMDB_ASSERT_OK(engine_->Crash());

  // The only complete checkpoint's copy is bad and there is no older one:
  // recovery must fail loudly, not fabricate state.
  CorruptSegment(BackupPath(1), 0);
  auto stats = engine_->Recover();
  if (engine_->instant_recovery_enabled()) {
    // The plan builds fine — the rot is only discovered when segment 0
    // reloads on demand, and with nothing to fall back to the drain halts
    // the engine.
    MMDB_ASSERT_OK(stats);
    Status drained = engine_->DrainRecovery();
    EXPECT_TRUE(drained.IsCorruption()) << drained;
    EXPECT_TRUE(engine_->crashed());
  } else {
    EXPECT_TRUE(stats.status().IsCorruption()) << stats.status();
  }

  // Even the refusal is journaled: the chain ends in recovery.error, not a
  // dangling recovery.begin.
  std::vector<AuditEntry> entries = JournalEntries();
  ASSERT_FALSE(entries.empty());
  const AuditEntry* last_recovery = nullptr;
  for (const AuditEntry& e : entries) {
    if (e.event.rfind("recovery.", 0) == 0) last_recovery = &e;
  }
  ASSERT_NE(last_recovery, nullptr);
  EXPECT_EQ(last_recovery->event, "recovery.error");
  MMDB_EXPECT_OK(VerifyAuditStructure(entries));
}

TEST_F(RecoveryFallbackTest, TornBackupWriteIsCaughtAtRecovery) {
  OpenEngine();
  Commit(1, 1);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());  // id 1 -> copy 1
  Commit(40, 2);
  // Record 20 lives in the SECOND half of segment 0's slot: the torn write
  // below persists only the first half, so this record's bytes are what
  // make the tear visible (a tear across untouched all-zero bytes would be
  // indistinguishable from a complete write).
  Commit(20, 3);

  // Checkpoint 2 "succeeds" but one of its segment writes silently tore:
  // the slot holds half new, half old bytes under a CRC of the full new
  // image. Nothing notices until recovery reads it back.
  fenv_.InjectFault(
      {FaultKind::kTornWrite, "backup_0.db", fenv_.op_count(), 1});
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());  // id 2 -> copy 0
  auto meta = engine_->backup()->ReadMeta();
  MMDB_ASSERT_OK(meta);
  EXPECT_EQ(meta->checkpoint_id, 2u);

  Settle();
  const Lsn durable = engine_->DurableLsn();
  MMDB_ASSERT_OK(engine_->Crash());
  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  MMDB_ASSERT_OK(engine_->DrainRecovery());
  EXPECT_TRUE(engine_->last_recovery().fell_back_to_older_copy);
  EXPECT_EQ(engine_->last_recovery().checkpoint_id, 1u);
  ASSERT_NO_FATAL_FAILURE(Audit(*engine_, oracle_, durable));
  VerifyAuditTrail(engine_.get());
}

TEST_F(RecoveryFallbackTest, AbortedCheckpointRetryChainIsJournaled) {
  OpenEngine();
  Commit(1, 1);
  Settle();

  // The first backup write dies mid-sweep: the checkpoint aborts, with the
  // device error as the journaled cause. Once the (transient) fault is
  // spent, the retry runs to completion — the journal must hold the whole
  // chain: begin, abort, then the retry's begin and end.
  fenv_.InjectFault(
      {FaultKind::kWriteError, "backup_", fenv_.op_count(), /*times=*/1});
  Status failed = engine_->RunCheckpointToCompletion();
  EXPECT_TRUE(failed.IsIoError()) << failed;
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  std::vector<AuditEntry> entries = JournalEntries();
  const AuditEntry* abort = nullptr;
  const AuditEntry* retry_end = nullptr;
  uint64_t begins = 0;
  for (const AuditEntry& e : entries) {
    if (e.event == "ckpt.begin") ++begins;
    if (e.event == "ckpt.abort" && abort == nullptr) abort = &e;
    if (e.event == "ckpt.end" && abort != nullptr) retry_end = &e;
  }
  ASSERT_NE(abort, nullptr);
  ASSERT_NE(retry_end, nullptr);
  EXPECT_GE(begins, 2u);  // the aborted attempt and its retry
  EXPECT_GT(retry_end->seq, abort->seq);
  const JsonValue* cause = abort->object.Find("cause");
  ASSERT_NE(cause, nullptr);
  EXPECT_NE(cause->string_value().find("IO"), std::string::npos)
      << cause->string_value();
  VerifyAuditTrail(engine_.get());
}

TEST_F(RecoveryFallbackTest, TornLogAppendLosesOnlyTheTornSuffix) {
  OpenEngine();
  Commit(1, 1);
  Settle();
  const Lsn durable_before_tear = engine_->DurableLsn();

  // A later flush tears silently: the device claims success but only half
  // the batch landed. The engine believes the commit is durable; the torn
  // half-frame must read as a torn tail (not mid-log corruption), so
  // recovery still succeeds and every commit before the tear survives.
  fenv_.InjectFault({FaultKind::kTornWrite, "wal.log", fenv_.op_count(), 1});
  Commit(40, 2);
  MMDB_ASSERT_OK(engine_->FlushLog());
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());
  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  // Everything durable before the tear is intact; the torn transaction is
  // gone (that is precisely the damage a silent tear does).
  ASSERT_NO_FATAL_FAILURE(
      Audit(*engine_, oracle_, durable_before_tear));
  const std::string zeros(engine_->db().record_bytes(), '\0');
  EXPECT_EQ(engine_->ReadRecordRaw(40), zeros);
}

// --- crashes and faults around post-checkpoint log truncation ------------

class TruncationFaultTest : public testing::Test {
 protected:
  TruncationFaultTest() : base_(NewMemEnv()), fenv_(base_.get()) {}

  void OpenEngine() {
    EngineOptions opt =
        SweepOptions(Algorithm::kFuzzyCopy, CheckpointMode::kPartial);
    opt.truncate_log_at_checkpoint = true;
    auto engine_or = Engine::Open(opt, &fenv_);
    MMDB_ASSERT_OK(engine_or);
    engine_ = std::move(*engine_or);
  }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv fenv_;
  std::unique_ptr<Engine> engine_;
  Oracle oracle_;
};

TEST_F(TruncationFaultTest, FailedTruncationRewriteDegradesToLongerLog) {
  OpenEngine();
  ASSERT_NO_FATAL_FAILURE(CommitTxn(engine_.get(), &oracle_, 1, 2, 1));

  // The truncation rewrite targets wal.log.tmp; fail it. Truncation is an
  // optimization, so the checkpoint itself must still report success and
  // the log keeps its full history.
  fenv_.InjectFault({FaultKind::kWriteError, "wal.log.tmp",
                     fenv_.op_count(), 1});
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->log()->BaseOffset(), 0u);

  // Crash now — mid-"truncation window" — and recover: the untruncated
  // log still replays from the begin marker.
  ASSERT_NO_FATAL_FAILURE(CommitTxn(engine_.get(), &oracle_, 40, 1, 2));
  MMDB_ASSERT_OK(engine_->FlushLog());
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  const Lsn durable = engine_->DurableLsn();
  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());
  ASSERT_NO_FATAL_FAILURE(Audit(*engine_, oracle_, durable));

  // The next checkpoint retries the truncation and succeeds.
  ASSERT_NO_FATAL_FAILURE(CommitTxn(engine_.get(), &oracle_, 80, 1, 3));
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_GT(engine_->log()->BaseOffset(), 0u);
}

TEST_F(TruncationFaultTest, CrashRightAfterFailedTruncationWrite) {
  OpenEngine();
  ASSERT_NO_FATAL_FAILURE(CommitTxn(engine_.get(), &oracle_, 1, 1, 1));

  // Half the rewritten file lands in wal.log.tmp, then the machine dies:
  // the rename never happened, wal.log is untouched, and the stray tmp
  // file must not confuse recovery.
  fenv_.InjectFault({FaultKind::kShortWrite, "wal.log.tmp",
                     fenv_.op_count(), 1});
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->log()->BaseOffset(), 0u);
  const Lsn durable = engine_->DurableLsn();
  MMDB_ASSERT_OK(engine_->Crash());
  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  EXPECT_EQ(stats->checkpoint_id, 1u);
  ASSERT_NO_FATAL_FAILURE(Audit(*engine_, oracle_, durable));
}

TEST_F(TruncationFaultTest, RecoveryFindsMarkerAfterSuccessfulTruncation) {
  OpenEngine();
  ASSERT_NO_FATAL_FAILURE(CommitTxn(engine_.get(), &oracle_, 1, 2, 1));
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  const uint64_t base = engine_->log()->BaseOffset();
  EXPECT_GT(base, 0u);

  // Commits after the truncation, then a crash: the begin marker now sits
  // at a logical offset past the dropped prefix and must still be found.
  ASSERT_NO_FATAL_FAILURE(CommitTxn(engine_.get(), &oracle_, 40, 1, 2));
  MMDB_ASSERT_OK(engine_->FlushLog());
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  const Lsn durable = engine_->DurableLsn();
  MMDB_ASSERT_OK(engine_->Crash());
  auto stats = engine_->Recover();
  MMDB_ASSERT_OK(stats);
  EXPECT_EQ(stats->checkpoint_id, 1u);
  ASSERT_NO_FATAL_FAILURE(Audit(*engine_, oracle_, durable));

  // A successful truncation leaves a ckpt.log_cut record naming the cut
  // and the reclaimed bytes, and the journal survives the crash/recovery
  // cross-check.
  std::string text;
  MMDB_ASSERT_OK(base_->ReadFileToString(engine_->AuditLogPath(), &text));
  auto entries = ParseAuditJournal(text);
  MMDB_ASSERT_OK(entries);
  bool saw_cut = false;
  for (const AuditEntry& e : *entries) {
    if (e.event == "ckpt.log_cut") saw_cut = true;
  }
  EXPECT_TRUE(saw_cut);
  VerifyAuditTrail(engine_.get());
}

// --- log-manager damage/repair under flush faults -------------------------

TEST(LogRepairTest, FailedFlushKeepsTailAndRepairsOnRetry) {
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get());
  CpuMeter meter;
  LogManager log(&fenv, "wal.log", SystemParams::TestDefaults(), &meter,
                 /*stable_log_tail=*/false);
  MMDB_ASSERT_OK(log.Open());
  LogRecord r1 = LogRecord::Commit(1);
  LogRecord r2 = LogRecord::Commit(2);
  log.Append(&r1);
  log.Append(&r2);

  // A short write deposits a partial frame; the flush reports the error,
  // keeps the whole tail, and promises nothing.
  fenv.InjectFault({FaultKind::kShortWrite, "wal.log", fenv.op_count(), 1});
  auto failed = log.Flush(0.0);
  ASSERT_TRUE(failed.status().IsIoError()) << failed.status();
  EXPECT_EQ(log.DurableLsn(1000.0), kInvalidLsn);

  // The retry repairs the file (cutting the partial frame) and lands the
  // full tail; both records become durable.
  auto done = log.Flush(1.0);
  MMDB_ASSERT_OK(done);
  EXPECT_EQ(log.DurableLsn(*done), 2u);
  MMDB_ASSERT_OK(log.Crash(*done));
  auto reader = LogReader::Open(&fenv, "wal.log");
  MMDB_ASSERT_OK(reader);
  EXPECT_EQ(reader->num_records(), 2u);
  EXPECT_FALSE(reader->truncated_tail());
}

TEST(LogRepairTest, PersistentFlushFailureNeverFalselyAdvancesDurability) {
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get());
  CpuMeter meter;
  LogManager log(&fenv, "wal.log", SystemParams::TestDefaults(), &meter,
                 /*stable_log_tail=*/false);
  MMDB_ASSERT_OK(log.Open());
  LogRecord r1 = LogRecord::Commit(1);
  log.Append(&r1);

  fenv.InjectFault({FaultKind::kWriteError, "wal.log", fenv.op_count(),
                    /*times=*/0});
  for (double t = 0.0; t < 0.5; t += 0.1) {
    EXPECT_TRUE(log.Flush(t).status().IsIoError());
    EXPECT_EQ(log.DurableLsn(1000.0), kInvalidLsn);
  }
  fenv.ClearFaults();
  auto done = log.Flush(1.0);
  MMDB_ASSERT_OK(done);
  EXPECT_EQ(log.DurableLsn(*done), 1u);
}

}  // namespace
}  // namespace mmdb
