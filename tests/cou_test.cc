// Copy-on-update algorithm specifics: quiesce, tau bookkeeping, old-copy
// preservation, buffer lifecycle, and the headline transaction-consistency
// property of the COU snapshot.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

class CouTest : public testing::TestWithParam<Algorithm> {
 protected:
  void Open(CheckpointMode mode = CheckpointMode::kFull,
            uint32_t max_buffers = 0) {
    EngineOptions opt = TinyOptions();
    opt.algorithm = GetParam();
    opt.checkpoint_mode = mode;
    opt.max_snapshot_buffers = max_buffers;
    env_ = NewMemEnv();
    auto engine = Engine::Open(opt, env_.get());
    MMDB_ASSERT_OK(engine);
    engine_ = std::move(*engine);
  }

  std::string Image(RecordId r, uint64_t m) {
    return MakeRecordImage(engine_->db().record_bytes(), r, m);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(CouTest, SnapshotIsStateAtCheckpointBegin) {
  Open();
  // Populate every segment, then start a checkpoint and keep updating
  // WHILE it runs. The completed backup copy must equal the database as it
  // stood at Begin — byte for byte — no matter which updates raced the
  // sweep. This is the paper's transaction-consistency claim for COU.
  const uint32_t rps = engine_->params().db.records_per_segment();
  for (SegmentId s = 0; s < engine_->db().num_segments(); ++s) {
    MMDB_ASSERT_OK(engine_->Apply({{s * rps, Image(s * rps, 100 + s)}})
                       .status());
  }
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  std::string snapshot(engine_->db().data(), engine_->db().size_bytes());

  // Interleave updates across the whole database with sweep progress.
  uint64_t marker = 1000;
  while (engine_->CheckpointInProgress()) {
    MMDB_ASSERT_OK(engine_->StepCheckpoint());
    RecordId r = (marker * 37) % engine_->db().num_records();
    MMDB_ASSERT_OK(engine_->Apply({{r, Image(r, marker)}}).status());
    ++marker;
  }

  auto meta = engine_->backup()->ReadMeta();
  MMDB_ASSERT_OK(meta);
  std::string segment;
  for (SegmentId s = 0; s < engine_->db().num_segments(); ++s) {
    MMDB_ASSERT_OK(engine_->backup()->ReadSegment(meta->copy, s, &segment));
    EXPECT_EQ(segment,
              snapshot.substr(s * engine_->db().segment_bytes(),
                              engine_->db().segment_bytes()))
        << "segment " << s << " is not the begin-time image";
  }
}

TEST_P(CouTest, NeverAbortsTransactionsOnceStarted) {
  Open();
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 4; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  // Updates spanning "both ends" of the database are fine under COU.
  RecordId low = 0, high = engine_->db().num_records() - 1;
  Transaction* t = engine_->Begin();
  MMDB_ASSERT_OK(engine_->Write(t, low, Image(low, 1)));
  MMDB_ASSERT_OK(engine_->Write(t, high, Image(high, 1)));
  MMDB_ASSERT_OK(engine_->Commit(t).status());
  EXPECT_EQ(engine_->txns().color_aborts(), 0u);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
}

TEST_P(CouTest, OldCopiesAreMadeOnlyForUnvisitedPreCheckpointSegments) {
  Open();
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  // Let the sweep pass the first few segments.
  for (int i = 0; i < 4; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  ASSERT_TRUE(engine_->CheckpointInProgress());

  uint64_t copies_before = engine_->checkpointer().last_stats().cou_copies;
  (void)copies_before;
  // Update the LAST segment (not yet visited): must trigger one COU copy.
  RecordId last = engine_->db().num_records() - 1;
  MMDB_ASSERT_OK(engine_->Apply({{last, Image(last, 1)}}).status());
  EXPECT_GE(engine_->buffers().allocated(), 1u);
  // A second update to the same segment must NOT copy again.
  RecordId last2 = last - 1;
  MMDB_ASSERT_OK(engine_->Apply({{last2, Image(last2, 2)}}).status());
  EXPECT_EQ(engine_->buffers().allocated(), 1u);

  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  // Old copies are flushed and released by the end of the sweep.
  EXPECT_EQ(engine_->buffers().allocated(), 0u);
  EXPECT_GE(engine_->checkpointer().last_stats().cou_copies, 1u);
}

TEST_P(CouTest, UpdateToAlreadyDumpedSegmentMakesNoCopy) {
  Open();
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 5; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  ASSERT_TRUE(engine_->CheckpointInProgress());
  // Segment 0 was processed first; updating it now needs no preservation.
  MMDB_ASSERT_OK(engine_->Apply({{0, Image(0, 3)}}).status());
  EXPECT_EQ(engine_->buffers().allocated(), 0u);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->checkpointer().last_stats().cou_copies, 0u);
}

TEST_P(CouTest, QuiesceDelaysTransactionsUntilSweepStart) {
  Open();
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  double t0 = engine_->now();
  // The first transaction after Begin waits for the begin-marker flush.
  MMDB_ASSERT_OK(engine_->Apply({{0, Image(0, 1)}}).status());
  EXPECT_GT(engine_->now(), t0);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_GT(engine_->checkpointer().last_stats().quiesce_seconds, 0.0);
}

TEST_P(CouTest, BufferExhaustionDegradesGracefully) {
  // With a 1-buffer cap, concurrent updates overflow the snapshot pool;
  // the checkpoint must still complete and recovery must stay correct.
  Open(CheckpointMode::kFull, /*max_buffers=*/1);
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 3; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  // Touch several distinct unvisited segments: only one can be preserved.
  const uint32_t rps = engine_->params().db.records_per_segment();
  uint64_t n_seg = engine_->db().num_segments();
  for (SegmentId s = n_seg - 4; s < n_seg; ++s) {
    RecordId r = s * rps;
    MMDB_ASSERT_OK(engine_->Apply({{r, Image(r, 50 + s)}}).status());
  }
  EXPECT_LE(engine_->buffers().allocated(), 1u);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  // Durability is unaffected (the degraded segments are merely fuzzy).
  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  Lsn durable = engine_->DurableLsn();
  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());
  for (SegmentId s = n_seg - 4; s < n_seg; ++s) {
    RecordId r = s * rps;
    EXPECT_EQ(engine_->ReadRecordRaw(r), std::string_view(Image(r, 50 + s)))
        << "record " << r;
  }
  (void)durable;
}

TEST_P(CouTest, TimestampsGateNextCheckpoint) {
  Open(CheckpointMode::kPartial);
  MMDB_ASSERT_OK(engine_->Apply({{0, Image(0, 1)}}).status());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  uint64_t flushed1 = engine_->checkpointer().last_stats().segments_flushed;
  EXPECT_EQ(flushed1, 1u);
  // No updates in between: the next sweep (other copy) still owes one
  // flush, the one after that none.
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->checkpointer().last_stats().segments_flushed, 1u);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  EXPECT_EQ(engine_->checkpointer().last_stats().segments_flushed, 0u);
}

// Regression: an update racing the sweep forces an old-image flush; the
// post-snapshot content must still reach THIS ping-pong copy at the next
// checkpoint that writes it. (Bug found via the telecom example: clearing
// the dirty bit when the OLD image was flushed left cold segments stale in
// one copy forever, surfacing as lost updates two checkpoints later.)
TEST_P(CouTest, OldImageFlushDoesNotLoseColdUpdates) {
  Open(CheckpointMode::kPartial);
  const uint64_t n_seg = engine_->db().num_segments();
  const uint32_t rps = engine_->params().db.records_per_segment();
  // Cold record in the LAST segment.
  RecordId cold = (n_seg - 1) * rps;
  std::string image = Image(cold, 4242);

  // Dirty every segment so the sweep has real work (a fresh partial
  // checkpoint would skip everything instantly).
  for (SegmentId s = 0; s < n_seg; ++s) {
    RecordId r = s * rps;
    MMDB_ASSERT_OK(engine_->Apply({{r, Image(r, 1000 + s)}}).status());
  }

  // Start a checkpoint and update the cold record while the sweep has not
  // reached its segment: COU preserves the pre-update image and flushes
  // THAT.
  MMDB_ASSERT_OK(engine_->StartCheckpoint());
  for (int i = 0; i < 3; ++i) MMDB_ASSERT_OK(engine_->StepCheckpoint());
  ASSERT_TRUE(engine_->CheckpointInProgress());
  MMDB_ASSERT_OK(engine_->Apply({{cold, image}}).status());
  ASSERT_GE(engine_->buffers().allocated(), 1u);
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  // Two more checkpoints with NO further updates: both copies must pick up
  // the post-snapshot content.
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());
  MMDB_ASSERT_OK(engine_->RunCheckpointToCompletion());

  engine_->FlushLog();
  MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  MMDB_ASSERT_OK(engine_->Crash());
  MMDB_ASSERT_OK(engine_->Recover());
  EXPECT_EQ(engine_->ReadRecordRaw(cold), std::string_view(image))
      << "cold update lost: stale old image survived in one ping-pong copy";
}

INSTANTIATE_TEST_SUITE_P(BothVariants, CouTest,
                         testing::Values(Algorithm::kCouFlush,
                                         Algorithm::kCouCopy),
                         [](const testing::TestParamInfo<Algorithm>& info) {
                           return std::string(AlgorithmName(info.param)) ==
                                          "COUFLUSH"
                                      ? "Flush"
                                      : "Copy";
                         });

}  // namespace
}  // namespace mmdb
