// Parallel-recovery equivalence suite (DESIGN.md §14): recovery with a
// worker pool must be observably identical to the legacy serial path —
// same restored database bytes, same deterministic RecoveryStats, same
// segment-table state afterwards — for the clean path AND for the
// older-copy fallback paths (CRC rot, device read errors), where the
// parallel reload collects per-segment failures concurrently.
//
// Every scenario is replayed from scratch per thread count on a fresh
// in-memory Env, so the two runs share nothing but the script.

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backup/backup_store.h"
#include "env/env.h"
#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "recovery/recovery_manager.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

// Everything a recovery run produces that must not depend on the thread
// count. Wall-clock members of RecoveryStats are deliberately absent.
struct Outcome {
  RecoveryStats stats;
  uint32_t db_checksum = 0;
  std::string db_bytes;
  // The first post-recovery checkpoint's shape — a proxy for the restored
  // SegmentTable state (recovery marks everything dirty either way).
  uint64_t post_ckpt_flushed = 0;
  uint64_t post_ckpt_skipped = 0;
};

void ExpectEquivalent(const Outcome& serial, const Outcome& parallel) {
  EXPECT_EQ(serial.stats.checkpoint_id, parallel.stats.checkpoint_id);
  EXPECT_EQ(serial.stats.copy, parallel.stats.copy);
  EXPECT_EQ(serial.stats.segments_loaded, parallel.stats.segments_loaded);
  EXPECT_EQ(serial.stats.segments_retried, parallel.stats.segments_retried);
  EXPECT_EQ(serial.stats.log_bytes_read, parallel.stats.log_bytes_read);
  EXPECT_EQ(serial.stats.records_scanned, parallel.stats.records_scanned);
  EXPECT_EQ(serial.stats.updates_applied, parallel.stats.updates_applied);
  EXPECT_EQ(serial.stats.txns_redone, parallel.stats.txns_redone);
  EXPECT_EQ(serial.stats.fell_back_to_older_copy,
            parallel.stats.fell_back_to_older_copy);
  // Modeled times are BIT-identical, not merely close: the cost model runs
  // on integer tallies that parallel decomposition cannot reorder.
  EXPECT_EQ(serial.stats.backup_read_seconds,
            parallel.stats.backup_read_seconds);
  EXPECT_EQ(serial.stats.log_read_seconds, parallel.stats.log_read_seconds);
  EXPECT_EQ(serial.stats.replay_cpu_seconds,
            parallel.stats.replay_cpu_seconds);
  EXPECT_EQ(serial.stats.total_seconds, parallel.stats.total_seconds);
  EXPECT_EQ(serial.db_checksum, parallel.db_checksum);
  EXPECT_EQ(serial.db_bytes, parallel.db_bytes);
  EXPECT_EQ(serial.post_ckpt_flushed, parallel.post_ckpt_flushed);
  EXPECT_EQ(serial.post_ckpt_skipped, parallel.post_ckpt_skipped);
}

class RecoveryParallelTest : public testing::Test {
 protected:
  void SetUp() override {
    // The env override would pin both runs to one width and make the
    // comparison vacuous.
    unsetenv("MMDB_RECOVERY_THREADS");
  }

  void Open(uint32_t recovery_threads) {
    engine_.reset();  // must go before the Env it references
    fenv_.reset();
    base_ = NewMemEnv();
    fenv_ = std::make_unique<FaultInjectionEnv>(base_.get());
    EngineOptions opt = TinyOptions();
    opt.recovery_threads = recovery_threads;
    auto engine = Engine::Open(opt, fenv_.get());
    MMDB_ASSERT_OK(engine);
    engine_ = std::move(*engine);
    expected_.clear();
  }

  // One-shot committed transaction, recorded for the final image audit.
  void Commit(RecordId r, uint64_t marker) {
    std::string image = MakeRecordImage(engine_->db().record_bytes(), r,
                                        marker);
    MMDB_ASSERT_OK(engine_->Apply({{r, image}}).status());
    expected_[r] = std::move(image);
  }

  void Settle() {
    MMDB_ASSERT_OK(engine_->FlushLog());
    MMDB_ASSERT_OK(engine_->AdvanceTime(1.0));
  }

  // Flips one byte in segment `s`'s data slot, leaving the CRC stale.
  void CorruptSegment(uint32_t copy, SegmentId s) {
    std::string path = engine_->options().dir + "/backup_" +
                       std::to_string(copy) + ".db";
    auto file = base_->NewRandomWriteFile(path);
    MMDB_ASSERT_OK(file);
    const uint64_t off =
        BackupStore::SlotOffsetFor(engine_->params().db, s) + 17;
    std::string byte;
    MMDB_ASSERT_OK((*file)->Read(off, 1, &byte));
    byte[0] = static_cast<char>(byte[0] ^ 0x40);
    MMDB_ASSERT_OK((*file)->WriteAt(off, byte));
    MMDB_ASSERT_OK((*file)->Close());
  }

  Outcome FinishRecovery(uint32_t want_threads) {
    Outcome out;
    auto stats = engine_->Recover();
    MMDB_EXPECT_OK(stats);
    // Under the MMDB_INSTANT_RECOVERY=1 lane Recover() returns before the
    // segments reload; drain so the captured stats and bytes are the
    // final state — which must be bit-identical to blocking recovery's
    // (an on-demand fallback refines the provisional stats).
    MMDB_EXPECT_OK(engine_->DrainRecovery());
    if (stats.ok()) {
      out.stats = engine_->last_recovery();
      EXPECT_EQ(stats->threads_used, want_threads);
      EXPECT_EQ(stats->thread_busy_seconds.size(), want_threads);
    }
    out.db_checksum = engine_->db().Checksum();
    out.db_bytes.assign(engine_->db().data(), engine_->db().size_bytes());
    // Audit committed images before mutating anything further.
    for (const auto& [r, image] : expected_) {
      EXPECT_EQ(engine_->ReadRecordRaw(r), std::string_view(image))
          << "record " << r;
    }
    MMDB_EXPECT_OK(engine_->RunCheckpointToCompletion());
    out.post_ckpt_flushed = engine_->checkpointer().last_stats().segments_flushed;
    out.post_ckpt_skipped = engine_->checkpointer().last_stats().segments_skipped;
    return out;
  }

  // --- scenarios ---------------------------------------------------------

  // Bulk workload with checkpoints running, plus a post-checkpoint tail.
  Outcome RunClean(uint32_t threads) {
    Open(threads);
    WorkloadOptions wopt;
    wopt.duration = 1.0;
    WorkloadDriver driver(engine_.get(), wopt);
    MMDB_EXPECT_OK(driver.Run().status());
    Commit(1, 901);
    Commit(1500, 902);
    Settle();
    MMDB_EXPECT_OK(engine_->Crash());
    return FinishRecovery(threads);
  }

  // Newest copy has CRC-rotted segments: the parallel reload must collect
  // exactly that failed set and re-read it from the older copy.
  Outcome RunCrcFallback(uint32_t threads) {
    Open(threads);
    for (RecordId r = 0; r < 2048; r += 64) Commit(r, 1);
    MMDB_EXPECT_OK(engine_->RunCheckpointToCompletion());  // id 1 -> copy 1
    for (RecordId r = 16; r < 2048; r += 128) Commit(r, 2);
    MMDB_EXPECT_OK(engine_->RunCheckpointToCompletion());  // id 2 -> copy 0
    Commit(70, 3);
    Commit(700, 4);
    Settle();
    MMDB_EXPECT_OK(engine_->Crash());
    for (SegmentId s : {SegmentId{0}, SegmentId{3}, SegmentId{7}}) {
      CorruptSegment(/*copy=*/0, s);
    }
    Outcome out = FinishRecovery(threads);
    EXPECT_TRUE(out.stats.fell_back_to_older_copy);
    EXPECT_EQ(out.stats.checkpoint_id, 1u);
    EXPECT_EQ(out.stats.copy, 1u);
    EXPECT_EQ(out.stats.segments_retried, 3u);
    // 64 segments: 61 first-attempt survivors + 3 older-copy re-reads.
    EXPECT_EQ(out.stats.segments_loaded, 64u);
    return out;
  }

  // The device, not the data, fails once mid-reload. Which segment's read
  // takes the hit depends on scheduling, but every deterministic outcome —
  // restore point, retry count, replayed suffix, final bytes — must not.
  Outcome RunReadErrorFallback(uint32_t threads) {
    Open(threads);
    Commit(5, 1);
    MMDB_EXPECT_OK(engine_->RunCheckpointToCompletion());  // id 1 -> copy 1
    Commit(600, 2);
    MMDB_EXPECT_OK(engine_->RunCheckpointToCompletion());  // id 2 -> copy 0
    Commit(1200, 3);
    Settle();
    MMDB_EXPECT_OK(engine_->Crash());
    fenv_->InjectFault(
        {FaultKind::kReadError, "backup_0.db", fenv_->op_count(), 1});
    Outcome out = FinishRecovery(threads);
    EXPECT_TRUE(out.stats.fell_back_to_older_copy);
    EXPECT_EQ(out.stats.checkpoint_id, 1u);
    EXPECT_EQ(out.stats.segments_retried, 1u);
    return out;
  }

  std::unique_ptr<Env> base_;
  std::unique_ptr<FaultInjectionEnv> fenv_;
  std::unique_ptr<Engine> engine_;
  std::map<RecordId, std::string> expected_;
};

TEST_F(RecoveryParallelTest, CleanPathIsBitIdenticalAcrossThreadCounts) {
  Outcome serial = RunClean(1);
  Outcome parallel = RunClean(4);
  ASSERT_GT(serial.stats.updates_applied, 0u);
  ASSERT_GT(serial.stats.segments_loaded, 0u);
  ExpectEquivalent(serial, parallel);
}

TEST_F(RecoveryParallelTest, CrcFallbackIsBitIdenticalAcrossThreadCounts) {
  Outcome serial = RunCrcFallback(1);
  Outcome parallel = RunCrcFallback(4);
  ExpectEquivalent(serial, parallel);
}

TEST_F(RecoveryParallelTest, ReadErrorFallbackIsEquivalentAcrossThreadCounts) {
  Outcome serial = RunReadErrorFallback(1);
  Outcome parallel = RunReadErrorFallback(4);
  ExpectEquivalent(serial, parallel);
}

TEST_F(RecoveryParallelTest, RepeatedParallelRecoveriesReuseThePool) {
  // Crash/recover twice on one engine: the lazily built pool serves both
  // rounds (and the second recovery still matches a fresh serial run).
  Open(4);
  Commit(10, 1);
  MMDB_EXPECT_OK(engine_->RunCheckpointToCompletion());
  Commit(20, 2);
  Settle();
  MMDB_EXPECT_OK(engine_->Crash());
  auto first = engine_->Recover();
  MMDB_ASSERT_OK(first);
  EXPECT_EQ(first->threads_used, 4u);
  Commit(30, 3);
  Settle();
  MMDB_EXPECT_OK(engine_->Crash());
  auto second = engine_->Recover();
  MMDB_ASSERT_OK(second);
  EXPECT_EQ(second->threads_used, 4u);
  for (const auto& [r, image] : expected_) {
    EXPECT_EQ(engine_->ReadRecordRaw(r), std::string_view(image));
  }
}

TEST_F(RecoveryParallelTest, ResolveThreadsHonorsEnvThenOptionThenHardware) {
  unsetenv("MMDB_RECOVERY_THREADS");
  EXPECT_EQ(RecoveryManager::ResolveThreads(3), 3u);
  EXPECT_EQ(RecoveryManager::ResolveThreads(1), 1u);
  EXPECT_GE(RecoveryManager::ResolveThreads(0), 1u);  // hardware width
  setenv("MMDB_RECOVERY_THREADS", "2", 1);
  EXPECT_EQ(RecoveryManager::ResolveThreads(8), 2u);
  setenv("MMDB_RECOVERY_THREADS", "not-a-number", 1);
  EXPECT_EQ(RecoveryManager::ResolveThreads(8), 8u);
  setenv("MMDB_RECOVERY_THREADS", "-4", 1);
  EXPECT_EQ(RecoveryManager::ResolveThreads(8), 8u);
  unsetenv("MMDB_RECOVERY_THREADS");
}

}  // namespace
}  // namespace mmdb
