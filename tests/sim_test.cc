// Tests for the simulation substrate: cost-model parameters and
// validation, the virtual clock, the CPU meter, and the disk-array model.

#include "gtest/gtest.h"
#include "sim/cost_model.h"
#include "sim/cpu_meter.h"
#include "sim/disk_model.h"
#include "sim/virtual_clock.h"

namespace mmdb {
namespace {

TEST(CostModelTest, PaperDefaultsMatchTables) {
  SystemParams p = SystemParams::PaperDefaults();
  // Table 2a.
  EXPECT_EQ(p.costs.lock, 20u);
  EXPECT_EQ(p.costs.alloc, 100u);
  EXPECT_EQ(p.costs.io, 1000u);
  EXPECT_EQ(p.costs.lsn, 20u);
  EXPECT_DOUBLE_EQ(p.costs.move_per_word, 1.0);
  // Table 2b.
  EXPECT_DOUBLE_EQ(p.disk.seek_seconds, 0.03);
  EXPECT_DOUBLE_EQ(p.disk.transfer_seconds_per_word, 3e-6);
  EXPECT_EQ(p.disk.num_disks, 20);
  // Table 2c.
  EXPECT_EQ(p.db.db_words, 256ull << 20);
  EXPECT_EQ(p.db.record_words, 32u);
  EXPECT_EQ(p.db.segment_words, 8192u);
  // Table 2d.
  EXPECT_DOUBLE_EQ(p.txn.arrival_rate, 1000.0);
  EXPECT_EQ(p.txn.updates_per_txn, 5u);
  EXPECT_EQ(p.txn.instructions, 25000u);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(CostModelTest, DerivedGeometry) {
  SystemParams p = SystemParams::PaperDefaults();
  EXPECT_EQ(p.db.num_segments(), 32768u);
  EXPECT_EQ(p.db.records_per_segment(), 256u);
  EXPECT_EQ(p.db.num_records(), 8388608u);
  EXPECT_EQ(p.db.segment_bytes(), 32768u);
  // Segment I/O: 0.03 + 3e-6 * 8192 = 54.576 ms.
  EXPECT_NEAR(p.disk.IoSeconds(8192), 0.054576, 1e-9);
  // Per-segment update rate: 1000*5*8192/2^28.
  EXPECT_NEAR(p.SegmentUpdateRate(), 0.152587890625, 1e-12);
}

TEST(CostModelTest, ValidationCatchesBadGeometry) {
  SystemParams p = SystemParams::TestDefaults();
  p.db.segment_words = 100;  // not a multiple of 32
  EXPECT_FALSE(p.Validate().ok());
  p = SystemParams::TestDefaults();
  p.db.db_words = p.db.segment_words * 3 + 1;
  EXPECT_FALSE(p.Validate().ok());
  p = SystemParams::TestDefaults();
  p.disk.num_disks = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = SystemParams::TestDefaults();
  p.txn.arrival_rate = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = SystemParams::TestDefaults();
  p.cpu_mips = -5;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CostModelTest, InstructionConversion) {
  SystemParams p;
  p.cpu_mips = 50;
  EXPECT_DOUBLE_EQ(p.InstructionsToSeconds(50e6), 1.0);
  EXPECT_DOUBLE_EQ(p.InstructionsToSeconds(25000), 0.0005);
}

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.AdvanceBy(1.5);
  clock.AdvanceTo(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(CpuMeterTest, ChargesByCategory) {
  CpuMeter m;
  m.Charge(CpuCategory::kTxnLogic, 25000);
  m.Charge(CpuCategory::kSyncLsn, 100);
  m.Charge(CpuCategory::kCkptIo, 1000);
  m.Charge(CpuCategory::kCkptCopy, 8192);
  EXPECT_DOUBLE_EQ(m.Count(CpuCategory::kTxnLogic), 25000);
  EXPECT_DOUBLE_EQ(m.Total(), 25000 + 100 + 1000 + 8192);
  // Overhead splits: txn logic is base work, not overhead.
  EXPECT_DOUBLE_EQ(m.SynchronousOverhead(), 100);
  EXPECT_DOUBLE_EQ(m.AsynchronousOverhead(), 9192);
  m.Reset();
  EXPECT_DOUBLE_EQ(m.Total(), 0);
}

TEST(CpuMeterTest, RerunsCountAsSynchronousOverhead) {
  CpuMeter m;
  m.Charge(CpuCategory::kTxnRerun, 25000);
  EXPECT_DOUBLE_EQ(m.SynchronousOverhead(), 25000);
  EXPECT_DOUBLE_EQ(m.AsynchronousOverhead(), 0);
}

TEST(DiskModelTest, SingleRequestTiming) {
  DiskParams dp;
  dp.num_disks = 1;
  DiskArrayModel disks(dp);
  double done = disks.Submit(0.0, 8192);
  EXPECT_NEAR(done, 0.03 + 3e-6 * 8192, 1e-12);
  EXPECT_EQ(disks.RequestCount(), 1u);
}

TEST(DiskModelTest, ParallelismAcrossDevices) {
  DiskParams dp;
  dp.num_disks = 4;
  DiskArrayModel disks(dp);
  // 4 requests at t=0 run fully in parallel.
  double last = 0;
  for (int i = 0; i < 4; ++i) last = disks.Submit(0.0, 8192);
  EXPECT_NEAR(last, dp.IoSeconds(8192), 1e-12);
  // A 5th queues behind the earliest device.
  double fifth = disks.Submit(0.0, 8192);
  EXPECT_NEAR(fifth, 2 * dp.IoSeconds(8192), 1e-12);
}

TEST(DiskModelTest, ThroughputScalesWithDisks) {
  DiskParams one;
  one.num_disks = 1;
  DiskParams twenty;
  twenty.num_disks = 20;
  DiskArrayModel a(one), b(twenty);
  for (int i = 0; i < 100; ++i) {
    a.Submit(0.0, 8192);
    b.Submit(0.0, 8192);
  }
  EXPECT_NEAR(a.AllIdleTime() / b.AllIdleTime(), 20.0, 0.01);
}

TEST(DiskModelTest, NextAvailableAndIdle) {
  DiskParams dp;
  dp.num_disks = 2;
  DiskArrayModel disks(dp);
  EXPECT_DOUBLE_EQ(disks.NextAvailable(5.0), 5.0);
  EXPECT_TRUE(disks.IdleAt(0.0));
  disks.Submit(0.0, 1000);
  disks.Submit(0.0, 1000);
  EXPECT_GT(disks.NextAvailable(0.0), 0.0);
  EXPECT_FALSE(disks.IdleAt(0.0));
  EXPECT_TRUE(disks.IdleAt(disks.AllIdleTime()));
  disks.Reset();
  EXPECT_TRUE(disks.IdleAt(0.0));
  EXPECT_EQ(disks.RequestCount(), 0u);
}

TEST(DiskModelTest, ArraySecondsFormula) {
  DiskParams dp;  // 20 disks
  // 32768 segments of 8192 words: the paper-scale full sweep.
  double t = dp.ArraySeconds(32768, 8192);
  EXPECT_NEAR(t, 32768 * 0.054576 / 20.0, 1e-6);
}

TEST(DiskModelTest, BusyAccounting) {
  DiskParams dp;
  dp.num_disks = 2;
  DiskArrayModel disks(dp);
  disks.Submit(0.0, 1000);
  disks.Submit(0.0, 1000);
  EXPECT_NEAR(disks.BusySeconds(), 2 * dp.IoSeconds(1000), 1e-12);
}

TEST(CpuCategoryTest, NamesAreStable) {
  EXPECT_EQ(CpuCategoryName(CpuCategory::kTxnRerun), "txn_rerun");
  EXPECT_EQ(CpuCategoryName(CpuCategory::kCkptCopy), "ckpt_copy");
  EXPECT_EQ(CpuCategoryName(CpuCategory::kRecovery), "recovery");
}

}  // namespace
}  // namespace mmdb
