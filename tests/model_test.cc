// Analytic-model tests: internal math, paper-scale magnitudes, the
// qualitative shapes of Figures 4a-4e, and agreement in ordering with the
// executable engine.

#include <cmath>

#include "gtest/gtest.h"
#include "model/analytic_model.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

ModelInputs PaperInputs(Algorithm a) {
  ModelInputs in;
  in.params = SystemParams::PaperDefaults();
  in.algorithm = a;
  in.mode = CheckpointMode::kPartial;
  return in;
}

double Overhead(ModelInputs in) {
  AnalyticModel model(in);
  auto out = model.Evaluate();
  EXPECT_TRUE(out.ok()) << out.status();
  return out->overhead_per_txn;
}

TEST(AnalyticMathTest, MeanConflictProbability) {
  // 1 - 2/(k+1).
  EXPECT_DOUBLE_EQ(AnalyticModel::MeanConflictProbability(1), 0.0);
  EXPECT_DOUBLE_EQ(AnalyticModel::MeanConflictProbability(5), 1.0 - 2.0 / 6);
  EXPECT_NEAR(AnalyticModel::MeanConflictProbability(100), 1.0, 0.02);
}

TEST(AnalyticMathTest, RerunsGrowWithK) {
  EXPECT_DOUBLE_EQ(AnalyticModel::ExpectedRerunsPerActiveArrival(1), 0.0);
  double k2 = AnalyticModel::ExpectedRerunsPerActiveArrival(2);
  double k5 = AnalyticModel::ExpectedRerunsPerActiveArrival(5);
  double k10 = AnalyticModel::ExpectedRerunsPerActiveArrival(10);
  EXPECT_GT(k2, 0.0);
  EXPECT_GT(k5, k2);
  EXPECT_GT(k10, k5);
  // k=2: E_z[v/(1-v)] with v = 2z(1-z): integral of 2z(1-z)/(1-2z+2z^2)
  // over [0,1] = pi/2 - 1.
  EXPECT_NEAR(k2, M_PI / 2 - 1.0, 1e-4);
}

TEST(AnalyticMathTest, LogWordsPerTxnMatchesEncodedSizes) {
  SystemParams p = SystemParams::PaperDefaults();
  double words = AnalyticModel::LogWordsPerTxn(p);
  // 5 updates of a 128-byte record (+ header + framing) plus a commit:
  // roughly 5*152 + 20 bytes = ~195 words; bound it loosely.
  EXPECT_GT(words, 150.0);
  EXPECT_LT(words, 250.0);
}

TEST(AnalyticModelTest, PaperScaleGeometry) {
  AnalyticModel model(PaperInputs(Algorithm::kFuzzyCopy));
  auto out = model.Evaluate();
  MMDB_ASSERT_OK(out);
  // Full sweep of 32768 segments at 54.576 ms over 20 disks ~ 89.4 s; at
  // the minimum interval the dirty fraction is ~1, so D_min is close to
  // that.
  EXPECT_GT(out->min_interval, 60.0);
  EXPECT_LT(out->min_interval, 95.0);
  EXPECT_NEAR(out->active_fraction, 1.0, 0.05);
  // Recovery: reload 1 GB + read the log: minutes, not hours.
  EXPECT_GT(out->recovery_seconds, 80.0);
  EXPECT_LT(out->recovery_seconds, 400.0);
}

TEST(AnalyticModelTest, Figure4aOrdering) {
  // Two-color algorithms are by far the most expensive (reruns); COU is
  // comparable to fuzzy; recovery times are nearly equal with two-color
  // slightly longer.
  double fuzzy = Overhead(PaperInputs(Algorithm::kFuzzyCopy));
  double cou_c = Overhead(PaperInputs(Algorithm::kCouCopy));
  double cou_f = Overhead(PaperInputs(Algorithm::kCouFlush));
  double tc_c = Overhead(PaperInputs(Algorithm::kTwoColorCopy));
  double tc_f = Overhead(PaperInputs(Algorithm::kTwoColorFlush));

  EXPECT_GT(tc_c, 4.0 * fuzzy);
  EXPECT_GT(tc_f, 4.0 * fuzzy);
  EXPECT_LT(cou_c, 1.5 * fuzzy);
  EXPECT_LT(cou_f, 1.5 * fuzzy);
  EXPECT_GT(cou_c, 0.3 * fuzzy);

  auto recovery = [&](Algorithm a) {
    AnalyticModel m(PaperInputs(a));
    auto out = m.Evaluate();
    EXPECT_TRUE(out.ok());
    return out->recovery_seconds;
  };
  double r_fuzzy = recovery(Algorithm::kFuzzyCopy);
  double r_tc = recovery(Algorithm::kTwoColorCopy);
  double r_cou = recovery(Algorithm::kCouCopy);
  EXPECT_GE(r_tc, r_fuzzy);          // aborted attempts add log bulk
  EXPECT_LT(r_tc, 1.2 * r_fuzzy);    // ... but only slightly
  EXPECT_NEAR(r_cou, r_fuzzy, 0.05 * r_fuzzy);
}

TEST(AnalyticModelTest, Figure4bTradeoffAndBandwidth) {
  // Longer intervals: overhead falls, recovery time rises.
  ModelInputs in = PaperInputs(Algorithm::kCouCopy);
  AnalyticModel m0(in);
  auto base = m0.Evaluate();
  MMDB_ASSERT_OK(base);
  in.checkpoint_interval = 3.0 * base->min_interval;
  AnalyticModel m1(in);
  auto stretched = m1.Evaluate();
  MMDB_ASSERT_OK(stretched);
  EXPECT_LT(stretched->overhead_per_txn, base->overhead_per_txn);
  EXPECT_GT(stretched->recovery_seconds, base->recovery_seconds);

  // Doubling the disks reduces the minimum interval; comparing at the
  // SAME duration (the 20-disk minimum), the extra bandwidth helps 2CCOPY
  // (shorter active fraction, fewer reruns) much more than COUCOPY.
  auto with_disks = [&](Algorithm a, int disks, double interval) {
    ModelInputs i2 = PaperInputs(a);
    i2.params.disk.num_disks = disks;
    i2.checkpoint_interval = interval;
    AnalyticModel m(i2);
    auto out = m.Evaluate();
    EXPECT_TRUE(out.ok());
    return *out;
  };
  double d20 = with_disks(Algorithm::kTwoColorCopy, 20, 0).min_interval;
  ModelOutputs cou20 = with_disks(Algorithm::kCouCopy, 20, d20);
  ModelOutputs cou40 = with_disks(Algorithm::kCouCopy, 40, d20);
  ModelOutputs tc20 = with_disks(Algorithm::kTwoColorCopy, 20, d20);
  ModelOutputs tc40 = with_disks(Algorithm::kTwoColorCopy, 40, d20);
  EXPECT_LT(with_disks(Algorithm::kCouCopy, 40, 0).min_interval,
            with_disks(Algorithm::kCouCopy, 20, 0).min_interval);
  EXPECT_LT(tc40.active_fraction, 0.7 * tc20.active_fraction);
  double tc_gain = tc20.overhead_per_txn - tc40.overhead_per_txn;
  double cou_gain = cou20.overhead_per_txn - cou40.overhead_per_txn;
  EXPECT_GT(tc_gain, 4.0 * std::abs(cou_gain));
}

TEST(AnalyticModelTest, Figure4cLoadTrends) {
  // Per-transaction overhead falls as load rises (fixed checkpoint cost is
  // shared). 2CFLUSH is the cheapest at low load but among the most
  // costly at high load.
  auto at_load = [&](Algorithm a, double lambda) {
    ModelInputs in = PaperInputs(a);
    in.params.txn.arrival_rate = lambda;
    return Overhead(in);
  };
  for (Algorithm a : {Algorithm::kFuzzyCopy, Algorithm::kCouCopy,
                      Algorithm::kTwoColorFlush}) {
    EXPECT_GT(at_load(a, 100), at_load(a, 3000)) << AlgorithmName(a);
  }
  // Low load: 2CFLUSH (no copies ever) beats the copy-based algorithms.
  EXPECT_LT(at_load(Algorithm::kTwoColorFlush, 50),
            at_load(Algorithm::kFuzzyCopy, 50));
  EXPECT_LT(at_load(Algorithm::kTwoColorFlush, 50),
            at_load(Algorithm::kCouCopy, 50));
  // High load: reruns dominate; 2CFLUSH costs more than fuzzy/COU.
  EXPECT_GT(at_load(Algorithm::kTwoColorFlush, 3000),
            at_load(Algorithm::kFuzzyCopy, 3000));
  EXPECT_GT(at_load(Algorithm::kTwoColorFlush, 3000),
            at_load(Algorithm::kCouCopy, 3000));
}

TEST(AnalyticModelTest, Figure4dSegmentSizeTrends) {
  // Run-as-fast-as-possible: copy-heavy algorithms get worse with bigger
  // segments, 2CFLUSH gets better.
  auto at_seg = [&](Algorithm a, uint32_t seg_words, double interval) {
    ModelInputs in = PaperInputs(a);
    in.params.db.segment_words = seg_words;
    in.checkpoint_interval = interval;
    return Overhead(in);
  };
  EXPECT_GT(at_seg(Algorithm::kTwoColorCopy, 32768, 0),
            at_seg(Algorithm::kTwoColorCopy, 2048, 0));
  EXPECT_GT(at_seg(Algorithm::kCouCopy, 32768, 0),
            at_seg(Algorithm::kCouCopy, 2048, 0));
  EXPECT_LT(at_seg(Algorithm::kTwoColorFlush, 32768, 0),
            at_seg(Algorithm::kTwoColorFlush, 2048, 0));
  // Fixed 300s interval: the two-color algorithms improve with segment
  // size (shorter active fraction, fewer aborts).
  EXPECT_LT(at_seg(Algorithm::kTwoColorCopy, 32768, 300),
            at_seg(Algorithm::kTwoColorCopy, 2048, 300));
  EXPECT_LT(at_seg(Algorithm::kTwoColorFlush, 32768, 300),
            at_seg(Algorithm::kTwoColorFlush, 2048, 300));
}

TEST(AnalyticModelTest, Figure4eStableLogTail) {
  // FASTFUZZY with a stable tail costs only a few hundred instructions;
  // the others barely change.
  ModelInputs fast = PaperInputs(Algorithm::kFastFuzzy);
  fast.stable_log_tail = true;
  double fast_cost = Overhead(fast);
  EXPECT_LT(fast_cost, 600.0);
  EXPECT_GT(fast_cost, 0.0);

  for (Algorithm a : {Algorithm::kFuzzyCopy, Algorithm::kCouCopy,
                      Algorithm::kTwoColorCopy}) {
    ModelInputs v = PaperInputs(a);
    double volatile_cost = Overhead(v);
    ModelInputs s = PaperInputs(a);
    s.stable_log_tail = true;
    double stable_cost = Overhead(s);
    EXPECT_LT(stable_cost, volatile_cost + 1.0) << AlgorithmName(a);
    EXPECT_GT(stable_cost, 0.85 * volatile_cost) << AlgorithmName(a);
    EXPECT_GT(fast_cost * 5, 0.0);
  }
  // FASTFUZZY without the stable tail is rejected.
  ModelInputs bad = PaperInputs(Algorithm::kFastFuzzy);
  AnalyticModel m(bad);
  EXPECT_TRUE(m.Evaluate().status().IsFailedPrecondition());
}

TEST(AnalyticModelTest, FullCostsAtLeastPartialAtEqualInterval) {
  // Compared at the same checkpoint duration, a full checkpoint flushes a
  // superset of the partial one's segments. (At run-as-fast-as-possible
  // intervals the comparison is meaningless: a lightly-loaded partial
  // checkpointer spins through near-empty sweeps, burning its dirty-bit
  // scan on almost no transactions - see EXPERIMENTS.md.)
  for (Algorithm a : {Algorithm::kFuzzyCopy, Algorithm::kCouCopy}) {
    ModelInputs full = PaperInputs(a);
    full.mode = CheckpointMode::kFull;
    full.params.txn.arrival_rate = 20;
    AnalyticModel fm(full);
    auto fout = fm.Evaluate();
    ASSERT_TRUE(fout.ok());
    ModelInputs partial = PaperInputs(a);
    partial.params.txn.arrival_rate = 20;
    partial.checkpoint_interval = fout->interval;
    EXPECT_GE(fout->overhead_per_txn, Overhead(partial)) << AlgorithmName(a);
  }
}

TEST(AnalyticModelTest, LogicalLoggingShrinksLogAndRecovery) {
  ModelInputs physical = PaperInputs(Algorithm::kCouCopy);
  ModelInputs logical = physical;
  logical.logical_logging = true;
  AnalyticModel pm(physical), lm(logical);
  auto p = pm.Evaluate();
  auto l = lm.Evaluate();
  MMDB_ASSERT_OK(p);
  MMDB_ASSERT_OK(l);
  EXPECT_LT(l->log_words_per_txn * 3, p->log_words_per_txn);
  EXPECT_LT(l->recovery_log_seconds, p->recovery_log_seconds);
  EXPECT_LT(l->recovery_seconds, p->recovery_seconds);
  // Same CPU overhead: the logging style changes bytes, not checkpointing.
  EXPECT_DOUBLE_EQ(l->overhead_per_txn, p->overhead_per_txn);

  // Not available for fuzzy/two-color backups.
  ModelInputs bad = PaperInputs(Algorithm::kFuzzyCopy);
  bad.logical_logging = true;
  AnalyticModel bm(bad);
  EXPECT_TRUE(bm.Evaluate().status().IsFailedPrecondition());
}

TEST(AnalyticModelTest, ModelAndEngineAgreeOnOrdering) {
  // The engine at test scale and the model at the same scale must rank the
  // algorithms identically: 2C >> fuzzy, COU ~ fuzzy.
  auto model_overhead = [&](Algorithm a) {
    ModelInputs in;
    in.params = TinyOptions().params;
    in.algorithm = a;
    return Overhead(in);
  };
  double m_fuzzy = model_overhead(Algorithm::kFuzzyCopy);
  double m_cou = model_overhead(Algorithm::kCouCopy);
  double m_tc = model_overhead(Algorithm::kTwoColorCopy);
  EXPECT_GT(m_tc, m_fuzzy);
  EXPECT_GT(m_tc, m_cou);
  EXPECT_LT(std::abs(m_cou - m_fuzzy), m_tc - std::max(m_cou, m_fuzzy));
}

}  // namespace
}  // namespace mmdb
