#ifndef MMDB_TESTS_TEST_UTIL_H_
#define MMDB_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/options.h"
#include "core/workload.h"
#include "env/env.h"
#include "gtest/gtest.h"
#include "obs/audit.h"
#include "util/json.h"

// Fails the current test if `expr` (a Status or StatusOr) is not OK.
// Binds by const reference so move-only StatusOr payloads work.
#define MMDB_ASSERT_OK(expr)                                   \
  do {                                                         \
    const auto& _assert_ok = (expr);                           \
    ASSERT_TRUE(_assert_ok.ok()) << StatusOf(_assert_ok);      \
  } while (0)

#define MMDB_EXPECT_OK(expr)                                   \
  do {                                                         \
    const auto& _expect_ok = (expr);                           \
    EXPECT_TRUE(_expect_ok.ok()) << StatusOf(_expect_ok);      \
  } while (0)

namespace mmdb {

inline std::string StatusOf(const Status& s) { return s.ToString(); }
template <typename T>
std::string StatusOf(const StatusOr<T>& s) {
  return s.status().ToString();
}

// A tiny engine configuration: 256 KiB database as 64 segments of 1024
// words (32-word records), paper cost parameters otherwise. 64 segments
// across 20 disks gives the sweep a real pipeline (several disk rounds), so
// mid-sweep states - color boundaries, held locks, in-flight writes - are
// observable; a full sweep costs ~64 * 0.033s / 20 disks of virtual time
// and microseconds of real time.
inline EngineOptions TinyOptions() {
  EngineOptions opt;
  opt.params.db.db_words = 64 * 1024;   // 64 segments
  opt.params.db.segment_words = 1024;   // 4 KiB
  opt.params.db.record_words = 32;
  return opt;
}

// Verifies the recovered primary copy exactly: each record must hold its
// newest committed image whose commit LSN was durable at crash time, or
// zeros if it was never durably updated. This is the paper's durability
// contract — commits are durable once their log records reach the disk,
// volatile-only commits are legitimately lost.
// `overrides` holds updates a test applied outside the driver (after the
// driver finished), newest-last per record.
inline void VerifyRecovered(
    const Engine& engine, const WorkloadDriver& driver, Lsn durable_lsn,
    const std::map<RecordId, std::pair<Lsn, std::string>>& overrides = {}) {
  const auto& oracle = driver.history();
  const std::string zeros(engine.db().record_bytes(), '\0');
  for (RecordId r = 0; r < engine.db().num_records(); ++r) {
    std::string_view expected = zeros;
    auto it = oracle.find(r);
    if (it != oracle.end()) {
      for (const auto& commit : it->second) {
        if (commit.lsn <= durable_lsn) {
          expected = commit.image;  // history is in commit-LSN order
        }
      }
    }
    auto ov = overrides.find(r);
    if (ov != overrides.end() && ov->second.first <= durable_lsn) {
      expected = ov->second.second;
    }
    ASSERT_EQ(engine.ReadRecordRaw(r), expected)
        << "record " << r << " (durable lsn " << durable_lsn << ")";
  }
}

// Cross-checks the engine's provenance journal against its own metrics
// dump (VerifyAuditJournal) — the same check `mmdb_audit verify --dump=`
// runs offline. Call after any recovery. A journal that cannot be read
// (auditing disabled, or an armed fault ate the write) is skipped, not a
// failure: the journal is an audit artifact, never a recovery input.
//
// When MMDB_AUDIT_EXPORT_DIR is set, the journal and dump are also copied
// to <dir>/<name>/ {audit.log, dump.json} via the real filesystem so CI
// can re-verify every crash/recovery with the mmdb_audit binary.
inline void VerifyAuditTrail(Engine* engine, const std::string& name) {
  if (engine == nullptr || engine->audit() == nullptr) return;
  std::string journal;
  if (!engine->env()->ReadFileToString(engine->AuditLogPath(), &journal).ok()) {
    return;
  }
  const std::string dump_text = engine->DumpMetricsJson();
  StatusOr<JsonValue> dump = JsonValue::Parse(dump_text);
  MMDB_ASSERT_OK(dump);
  Status verdict = VerifyAuditJournal(journal, &*dump);
  EXPECT_TRUE(verdict.ok()) << "audit verify (" << name
                            << "): " << verdict.ToString();

  const char* export_dir = std::getenv("MMDB_AUDIT_EXPORT_DIR");
  if (export_dir == nullptr || export_dir[0] == '\0') return;
  std::string safe = name;
  for (char& c : safe) {
    if (c == '/' || c == ' ') c = '_';
  }
  Env* posix = Env::Posix();
  const std::string dir = std::string(export_dir) + "/" + safe;
  if (!posix->CreateDirIfMissing(std::string(export_dir)).ok()) return;
  if (!posix->CreateDirIfMissing(dir).ok()) return;
  (void)posix->WriteStringToFile(dir + "/audit.log", journal, false);
  (void)posix->WriteStringToFile(dir + "/dump.json", dump_text, false);
}

// Same, named after the running gtest case.
inline void VerifyAuditTrail(Engine* engine) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  VerifyAuditTrail(engine, info != nullptr ? std::string(info->test_suite_name()) +
                                                 "." + info->name()
                                           : "unknown");
}

}  // namespace mmdb

#endif  // MMDB_TESTS_TEST_UTIL_H_
