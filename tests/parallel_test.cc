#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "parallel/parallel.h"
#include "parallel/thread_pool.h"

namespace mmdb {
namespace {

TEST(ThreadPoolTest, RunsSubmittedWork) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  // More slow tasks than workers, then destroy the pool immediately: the
  // graceful-shutdown contract is that everything already queued still
  // runs (nothing is dropped on the floor).
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      }));
    }
  }  // ~ThreadPool: drain + join
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(1);
  pool.Shutdown();
  std::atomic<int> ran{0};
  EXPECT_FALSE(pool.Submit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();  // must not hang or crash; dtor adds a third call
}

TEST(ThreadPoolTest, SubmitFromInsideATask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<bool> nested_accepted{false};
  ASSERT_TRUE(pool.Submit([&] {
    nested_accepted = pool.Submit([&ran] { ran.fetch_add(1); });
  }));
  // Drain: nested task was queued before Shutdown stops intake (the outer
  // task may race with Shutdown; accept either outcome coherently).
  pool.Shutdown();
  if (nested_accepted) {
    EXPECT_EQ(ran.load(), 1);
  }
}

TEST(RunSweepTest, ResultsComeBackInSubmissionOrder) {
  // Later-submitted tasks finish first (they sleep less); the result slots
  // must still line up with submission order.
  const std::size_t n = 16;
  std::vector<std::function<StatusOr<std::size_t>()>> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([i]() -> StatusOr<std::size_t> {
      std::this_thread::sleep_for(std::chrono::microseconds(200 * (n - i)));
      return i;
    });
  }
  std::vector<StatusOr<std::size_t>> results = RunSweep<std::size_t>(4, tasks);
  ASSERT_EQ(results.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(*results[i], i);
  }
}

TEST(RunSweepTest, SerialPathMatchesParallelPath) {
  std::vector<std::function<StatusOr<int>()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i]() -> StatusOr<int> { return i * i; });
  }
  std::vector<StatusOr<int>> serial = RunSweep<int>(1, tasks);
  std::vector<StatusOr<int>> parallel = RunSweep<int>(4, tasks);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(parallel[i].ok());
    EXPECT_EQ(*serial[i], *parallel[i]);
  }
}

TEST(RunSweepTest, StatusFailuresStayInTheirSlot) {
  std::vector<std::function<StatusOr<int>()>> tasks;
  tasks.push_back([]() -> StatusOr<int> { return 1; });
  tasks.push_back(
      []() -> StatusOr<int> { return InternalError("point 1 exploded"); });
  tasks.push_back([]() -> StatusOr<int> { return 3; });
  std::vector<StatusOr<int>> results = RunSweep<int>(2, tasks);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_NE(results[1].status().ToString().find("point 1 exploded"),
            std::string::npos);
  EXPECT_TRUE(results[2].ok());
}

TEST(RunSweepTest, ThrownExceptionsBecomeInternalStatus) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::function<StatusOr<int>()>> tasks;
    tasks.push_back([]() -> StatusOr<int> { return 7; });
    tasks.push_back([]() -> StatusOr<int> {
      throw std::runtime_error("boom");
    });
    std::vector<StatusOr<int>> results = RunSweep<int>(jobs, tasks);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok());
    ASSERT_FALSE(results[1].ok());
    EXPECT_NE(results[1].status().ToString().find("boom"),
              std::string::npos);
  }
}

TEST(RunSweepTest, EmptySweepIsANoop) {
  std::vector<std::function<StatusOr<int>()>> tasks;
  EXPECT_TRUE(RunSweep<int>(4, tasks).empty());
}

TEST(RunSweepTest, ManyMoreTasksThanWorkers) {
  const std::size_t n = 200;
  std::atomic<int> ran{0};
  std::vector<std::function<StatusOr<int>()>> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([&ran, i]() -> StatusOr<int> {
      ran.fetch_add(1);
      return static_cast<int>(i);
    });
  }
  std::vector<StatusOr<int>> results = RunSweep<int>(3, tasks);
  EXPECT_EQ(ran.load(), static_cast<int>(n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(*results[i], static_cast<int>(i));
  }
}

TEST(ParallelForTest, ReturnsFirstErrorInIndexOrder) {
  std::atomic<int> ran{0};
  Status s = ParallelFor(4, 10, [&ran](std::size_t i) -> Status {
    ran.fetch_add(1);
    if (i == 3) return InternalError("i=3");
    if (i == 7) return InternalError("i=7");
    return Status::OK();
  });
  EXPECT_EQ(ran.load(), 10);  // all iterations still ran
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("i=3"), std::string::npos);
}

TEST(ParallelForTest, OkWhenEveryIterationSucceeds) {
  std::atomic<uint64_t> sum{0};
  Status s = ParallelFor(2, 100, [&sum](std::size_t i) -> Status {
    sum.fetch_add(i);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(DefaultSweepWidthTest, BoundedByHardwareAndN) {
  EXPECT_EQ(DefaultSweepWidth(0), 1u);  // never 0
  EXPECT_EQ(DefaultSweepWidth(1), 1u);
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  EXPECT_EQ(DefaultSweepWidth(1u << 20), hw);
}

}  // namespace
}  // namespace mmdb
