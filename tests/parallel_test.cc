#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "parallel/parallel.h"
#include "parallel/thread_pool.h"

namespace mmdb {
namespace {

TEST(ThreadPoolTest, RunsSubmittedWork) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  // More slow tasks than workers, then destroy the pool immediately: the
  // graceful-shutdown contract is that everything already queued still
  // runs (nothing is dropped on the floor).
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      }));
    }
  }  // ~ThreadPool: drain + join
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(1);
  pool.Shutdown();
  std::atomic<int> ran{0};
  EXPECT_FALSE(pool.Submit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();  // must not hang or crash; dtor adds a third call
}

TEST(ThreadPoolTest, SubmitFromInsideATask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<bool> nested_accepted{false};
  ASSERT_TRUE(pool.Submit([&] {
    nested_accepted = pool.Submit([&ran] { ran.fetch_add(1); });
  }));
  // Drain: nested task was queued before Shutdown stops intake (the outer
  // task may race with Shutdown; accept either outcome coherently).
  pool.Shutdown();
  if (nested_accepted) {
    EXPECT_EQ(ran.load(), 1);
  }
}

TEST(RunSweepTest, ResultsComeBackInSubmissionOrder) {
  // Later-submitted tasks finish first (they sleep less); the result slots
  // must still line up with submission order.
  const std::size_t n = 16;
  std::vector<std::function<StatusOr<std::size_t>()>> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([i]() -> StatusOr<std::size_t> {
      std::this_thread::sleep_for(std::chrono::microseconds(200 * (n - i)));
      return i;
    });
  }
  std::vector<StatusOr<std::size_t>> results = RunSweep<std::size_t>(4, tasks);
  ASSERT_EQ(results.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(*results[i], i);
  }
}

TEST(RunSweepTest, SerialPathMatchesParallelPath) {
  std::vector<std::function<StatusOr<int>()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i]() -> StatusOr<int> { return i * i; });
  }
  std::vector<StatusOr<int>> serial = RunSweep<int>(1, tasks);
  std::vector<StatusOr<int>> parallel = RunSweep<int>(4, tasks);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(parallel[i].ok());
    EXPECT_EQ(*serial[i], *parallel[i]);
  }
}

TEST(RunSweepTest, StatusFailuresStayInTheirSlot) {
  std::vector<std::function<StatusOr<int>()>> tasks;
  tasks.push_back([]() -> StatusOr<int> { return 1; });
  tasks.push_back(
      []() -> StatusOr<int> { return InternalError("point 1 exploded"); });
  tasks.push_back([]() -> StatusOr<int> { return 3; });
  std::vector<StatusOr<int>> results = RunSweep<int>(2, tasks);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_NE(results[1].status().ToString().find("point 1 exploded"),
            std::string::npos);
  EXPECT_TRUE(results[2].ok());
}

TEST(RunSweepTest, ThrownExceptionsBecomeInternalStatus) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::function<StatusOr<int>()>> tasks;
    tasks.push_back([]() -> StatusOr<int> { return 7; });
    tasks.push_back([]() -> StatusOr<int> {
      throw std::runtime_error("boom");
    });
    std::vector<StatusOr<int>> results = RunSweep<int>(jobs, tasks);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok());
    ASSERT_FALSE(results[1].ok());
    EXPECT_NE(results[1].status().ToString().find("boom"),
              std::string::npos);
  }
}

TEST(RunSweepTest, EmptySweepIsANoop) {
  std::vector<std::function<StatusOr<int>()>> tasks;
  EXPECT_TRUE(RunSweep<int>(4, tasks).empty());
}

TEST(RunSweepTest, ManyMoreTasksThanWorkers) {
  const std::size_t n = 200;
  std::atomic<int> ran{0};
  std::vector<std::function<StatusOr<int>()>> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([&ran, i]() -> StatusOr<int> {
      ran.fetch_add(1);
      return static_cast<int>(i);
    });
  }
  std::vector<StatusOr<int>> results = RunSweep<int>(3, tasks);
  EXPECT_EQ(ran.load(), static_cast<int>(n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(*results[i], static_cast<int>(i));
  }
}

TEST(ParallelForTest, ReturnsFirstErrorInIndexOrder) {
  std::atomic<int> ran{0};
  Status s = ParallelFor(4, 10, [&ran](std::size_t i) -> Status {
    ran.fetch_add(1);
    if (i == 3) return InternalError("i=3");
    if (i == 7) return InternalError("i=7");
    return Status::OK();
  });
  EXPECT_EQ(ran.load(), 10);  // all iterations still ran
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("i=3"), std::string::npos);
}

TEST(ParallelForTest, OkWhenEveryIterationSucceeds) {
  std::atomic<uint64_t> sum{0};
  Status s = ParallelFor(2, 100, [&sum](std::size_t i) -> Status {
    sum.fetch_add(i);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIdentifiesWorkers) {
  // Off-pool threads report -1; each worker reports a stable index in
  // [0, num_threads). BusyMeter-style per-thread accounting relies on it.
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
  ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(3);
  for (auto& s : seen) s.store(0);
  std::atomic<int> bad{0};
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      int idx = ThreadPool::CurrentWorkerIndex();
      if (idx < 0 || idx >= 3) {
        bad.fetch_add(1);
      } else {
        seen[idx].fetch_add(1);
      }
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(bad.load(), 0);
  int total = 0;
  for (auto& s : seen) total += s.load();
  EXPECT_EQ(total, 64);
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
}

TEST(RunSweepTest, PoolIsReusableAcrossSweeps) {
  // One pool serving several RunSweep rounds (the engine reuses its
  // recovery pool this way): each round must see every slot filled and
  // results in submission order.
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::function<StatusOr<int>()>> tasks;
    for (int i = 0; i < 12; ++i) {
      tasks.push_back(
          [round, i]() -> StatusOr<int> { return round * 100 + i; });
    }
    std::vector<StatusOr<int>> results = RunSweep<int>(&pool, tasks);
    ASSERT_EQ(results.size(), 12u);
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(results[i].ok());
      EXPECT_EQ(*results[i], round * 100 + i);
    }
  }
}

TEST(RunSweepTest, NullPoolRunsInline) {
  std::vector<std::function<StatusOr<int>()>> tasks;
  tasks.push_back([]() -> StatusOr<int> {
    return ThreadPool::CurrentWorkerIndex();  // -1 when inline
  });
  std::vector<StatusOr<int>> results = RunSweep<int>(nullptr, tasks);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(*results[0], -1);
}

TEST(ChunkedParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Chunk sizes that do and don't divide n, plus degenerate 0 (clamped
  // to 1) and oversize (one chunk).
  for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{25}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h.store(0);
    Status s = ParallelFor(&pool, 100, chunk,
                           [&](std::size_t begin, std::size_t end) -> Status {
                             for (std::size_t i = begin; i < end; ++i) {
                               hits[i].fetch_add(1);
                             }
                             return Status::OK();
                           });
    ASSERT_TRUE(s.ok()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "chunk=" << chunk << " i=" << i;
    }
  }
}

TEST(ChunkedParallelForTest, SerialAndParallelUseTheSameDecomposition) {
  // The determinism contract: a null pool must walk the exact same
  // [begin, end) chunks in the same order a pool would hand out.
  auto collect = [](ThreadPool* pool) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    Status s = ParallelFor(pool, 23, 5,
                           [&](std::size_t begin, std::size_t end) -> Status {
                             std::lock_guard<std::mutex> lock(mu);
                             chunks.emplace_back(begin, end);
                             return Status::OK();
                           });
    EXPECT_TRUE(s.ok());
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  ThreadPool pool(4);
  auto parallel = collect(&pool);
  auto serial = collect(nullptr);
  EXPECT_EQ(parallel, serial);
  ASSERT_EQ(serial.size(), 5u);  // ceil(23/5)
  EXPECT_EQ(serial.back(), (std::pair<std::size_t, std::size_t>{20, 23}));
}

TEST(ChunkedParallelForTest, FirstErrorInChunkOrderWins) {
  ThreadPool pool(4);
  Status s = ParallelFor(&pool, 40, 10,
                         [](std::size_t begin, std::size_t) -> Status {
                           if (begin == 10) return InternalError("chunk 1");
                           if (begin == 30) return InternalError("chunk 3");
                           return Status::OK();
                         });
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("chunk 1"), std::string::npos);
}

TEST(ChunkedParallelForTest, ThrownExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  for (ThreadPool* p : {&pool, static_cast<ThreadPool*>(nullptr)}) {
    Status s = ParallelFor(p, 10, 3,
                           [](std::size_t begin, std::size_t) -> Status {
                             if (begin == 3) throw std::runtime_error("boom");
                             return Status::OK();
                           });
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("boom"), std::string::npos);
  }
}

TEST(ChunkedParallelForTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  Status s = ParallelFor(&pool, 0, 8,
                         [&ran](std::size_t, std::size_t) -> Status {
                           ran.fetch_add(1);
                           return Status::OK();
                         });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(ran.load(), 0);
}

TEST(DefaultSweepWidthTest, BoundedByHardwareAndN) {
  EXPECT_EQ(DefaultSweepWidth(0), 1u);  // never 0
  EXPECT_EQ(DefaultSweepWidth(1), 1u);
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  EXPECT_EQ(DefaultSweepWidth(1u << 20), hw);
}

}  // namespace
}  // namespace mmdb
