// Telecom billing: a skewed, high-rate workload — the application class
// that motivated memory-resident databases (the paper cites IMS/Fastpath).
//
//   build/examples/telecom_billing
//
// Call-accounting transactions debit subscriber balances and append usage
// counters at 1000 TPS of virtual time, with 10% of subscribers receiving
// 90% of the traffic (hot segments stress the checkpointer's write-ahead
// gates and the COU old-copy machinery far more than a uniform load).
// The example runs the same load under three checkpointing algorithms and
// reports the paper's metrics plus client-visible latency, then verifies
// durability with a crash/recovery pass.

#include <cinttypes>
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "env/env.h"
#include "util/coding.h"
#include "util/histogram.h"
#include "util/random.h"

using namespace mmdb;

namespace {

struct Subscriber {
  int64_t balance_millicents;
  uint64_t calls;
  uint64_t seconds;
};

std::string Encode(size_t record_bytes, const Subscriber& s) {
  std::string image;
  PutFixed64(&image, static_cast<uint64_t>(s.balance_millicents));
  PutFixed64(&image, s.calls);
  PutFixed64(&image, s.seconds);
  image.resize(record_bytes, '\0');
  return image;
}

Subscriber Decode(std::string_view image) {
  Subscriber s;
  s.balance_millicents = static_cast<int64_t>(DecodeFixed64(image.data()));
  s.calls = DecodeFixed64(image.data() + 8);
  s.seconds = DecodeFixed64(image.data() + 16);
  return s;
}

void RunCarrier(Algorithm algorithm) {
  EngineOptions options;
  options.params.db.db_words = 1 << 20;  // 32768 subscribers
  options.algorithm = algorithm;
  options.stable_log_tail = algorithm == Algorithm::kFastFuzzy;
  std::unique_ptr<Env> env = NewMemEnv();
  auto engine = Engine::Open(options, env.get());
  Engine& db = **engine;
  const size_t record_bytes = db.db().record_bytes();
  const uint64_t subscribers = db.db().num_records();
  const uint64_t hot = subscribers / 10;

  Random rng(7);
  const double duration = 2.0;
  const double rate = 1000.0;
  double next_call = 0.0;
  Histogram latency_us;
  uint64_t calls = 0, rejected = 0, retries = 0;
  int64_t revenue = 0;

  double sync0 = db.meter().SynchronousOverhead();
  double async0 = db.meter().AsynchronousOverhead();

  while (next_call < duration) {
    if (db.now() < next_call) (void)db.AdvanceTime(next_call - db.now());
    if (!db.CheckpointInProgress() &&
        db.scheduler().NextBeginTime() <= db.now()) {
      (void)db.StartCheckpoint();
    }
    // 90% of calls hit the hot 10% of subscribers.
    RecordId who = rng.Bernoulli(0.9) ? rng.Uniform(hot)
                                      : hot + rng.Uniform(subscribers - hot);
    int64_t cost = 50 + static_cast<int64_t>(rng.Uniform(2000));
    uint64_t secs = 10 + rng.Uniform(590);
    double arrival = next_call;
    next_call += rng.Exponential(1.0 / rate);

    bool done = false;
    for (int attempt = 0; attempt < 5000 && !done; ++attempt) {
      Transaction* t = db.Begin();
      std::string image;
      Status st = db.Read(t, who, &image);
      if (st.ok()) {
        Subscriber s = Decode(image);
        if (s.balance_millicents - cost < -100000) {
          db.Abort(t);
          ++rejected;
          done = true;
          break;
        }
        s.balance_millicents -= cost;
        s.calls += 1;
        s.seconds += secs;
        st = db.Write(t, who, Encode(record_bytes, s));
      }
      if (st.ok()) {
        (void)db.Commit(t);
        latency_us.Add((db.now() - arrival) * 1e6);
        revenue += cost;
        ++calls;
        done = true;
      } else {
        db.Abort(t, AbortReason::kColorViolation);
        ++retries;
        (void)db.AdvanceTime(0.002);
      }
    }
  }

  double sync = db.meter().SynchronousOverhead() - sync0;
  double async = db.meter().AsynchronousOverhead() - async0;

  // Durability check: crash, recover, make sure billed usage survived
  // (everything durably committed; the group flush cadence bounds loss).
  db.FlushLog();
  (void)db.AdvanceTime(0.5);
  uint64_t billed_before = 0;
  for (RecordId r = 0; r < subscribers; ++r) {
    billed_before += Decode(db.ReadRecordRaw(r)).calls;
  }
  (void)db.Crash();
  auto recovery = db.Recover();
  uint64_t billed_after = 0;
  for (RecordId r = 0; r < subscribers; ++r) {
    billed_after += Decode(db.ReadRecordRaw(r)).calls;
  }

  std::printf(
      "%-10s calls=%-6" PRIu64 " rejected=%-4" PRIu64 " retries=%-5" PRIu64
      " overhead/txn=%7.1f (sync %6.1f async %6.1f) "
      "p50=%6.0fus p99=%8.0fus recovery=%.3fs billed %" PRIu64 "/%" PRIu64
      "\n",
      std::string(AlgorithmName(algorithm)).c_str(), calls, rejected,
      retries, calls ? (sync + async) / calls : 0.0,
      calls ? sync / calls : 0.0, calls ? async / calls : 0.0,
      latency_us.Percentile(50), latency_us.Percentile(99),
      recovery.ok() ? recovery->total_seconds : -1.0, billed_after,
      billed_before);
}

}  // namespace

int main() {
  std::printf(
      "telecom billing, 32768 subscribers, 1000 calls/s (90%% of traffic on "
      "10%% of subscribers), 2.0 virtual seconds per algorithm\n\n");
  for (Algorithm a :
       {Algorithm::kCouCopy, Algorithm::kFuzzyCopy,
        Algorithm::kTwoColorCopy, Algorithm::kFastFuzzy}) {
    RunCarrier(a);
  }
  std::printf(
      "\nNote the latency tails: two-color restarts defer conflicting calls "
      "past the sweep; COU never aborts but stalls arrivals at each "
      "checkpoint's quiesce point.\n");
  return 0;
}
