// Bank ledger: money conservation under concurrent checkpointing.
//
//   build/examples/bank_ledger
//
// A classic consistency scenario from the paper's problem domain: account
// records hold balances; transfer transactions move money between two
// random accounts while a checkpointer maintains the backup. The invariant
// is conservation — the total balance never changes.
//
// The example shows the difference between a transaction-consistent and a
// fuzzy backup directly: with COUCOPY every completed backup copy balances
// exactly; with FUZZYCOPY the raw backup image can be caught mid-transfer
// (money apparently created or destroyed), and only REDO replay at
// recovery restores the invariant. Either way, the RECOVERED database
// always balances — the recovery path repairs fuzziness, as Section 3.3
// promises.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "env/env.h"
#include "util/coding.h"
#include "util/random.h"

using namespace mmdb;

namespace {

constexpr int64_t kInitialBalance = 1000;

std::string EncodeBalance(size_t record_bytes, int64_t balance) {
  std::string image;
  PutFixed64(&image, static_cast<uint64_t>(balance));
  image.resize(record_bytes, '\0');
  return image;
}

int64_t DecodeBalance(std::string_view image) {
  return static_cast<int64_t>(DecodeFixed64(image.data()));
}

// Sums balances in a full database image (primary or backup copy).
int64_t TotalOf(const Engine& db, bool from_backup, uint32_t copy) {
  int64_t total = 0;
  std::string segment;
  for (RecordId r = 0; r < db.db().num_records(); ++r) {
    if (from_backup) {
      SegmentId s = db.db().SegmentOf(r);
      // (Re-reads the segment per record for clarity, not speed.)
      if (!const_cast<Engine&>(db).backup()->ReadSegment(copy, s, &segment)
               .ok()) {
        return -1;
      }
      size_t offset = (r % db.params().db.records_per_segment()) *
                      db.db().record_bytes();
      total += DecodeBalance(
          std::string_view(segment).substr(offset, db.db().record_bytes()));
    } else {
      total += DecodeBalance(db.ReadRecordRaw(r));
    }
  }
  return total;
}

struct RunResult {
  int64_t primary_total;
  int64_t backup_total;
  int64_t recovered_total;
  uint64_t transfers;
  uint64_t restarts;
};

RunResult RunBank(Algorithm algorithm, uint64_t seed) {
  EngineOptions options;
  options.params.db.db_words = 256 * 1024;  // 256 segments, 8192 accounts
  options.params.db.segment_words = 1024;
  options.algorithm = algorithm;
  std::unique_ptr<Env> env = NewMemEnv();
  auto engine = Engine::Open(options, env.get());
  Engine& db = **engine;
  const size_t record_bytes = db.db().record_bytes();
  const uint64_t accounts = db.db().num_records();

  // Fund every account, then baseline-checkpoint.
  for (RecordId r = 0; r < accounts; ++r) {
    (void)db.Apply({{r, EncodeBalance(record_bytes, kInitialBalance)}});
  }
  (void)db.RunCheckpointToCompletion();

  // Transfers race the next checkpoint.
  Random rng(seed);
  (void)db.StartCheckpoint();
  uint64_t transfers = 0, restarts = 0;
  while (db.CheckpointInProgress()) {
    (void)db.StepCheckpoint();
    RecordId from = rng.Uniform(accounts);
    RecordId to = rng.Uniform(accounts);
    if (from == to) continue;
    int64_t amount = 1 + static_cast<int64_t>(rng.Uniform(100));
    // Read-modify-write both accounts in one transaction; retry two-color
    // aborts (transfers spanning the paint boundary).
    for (int attempt = 0; attempt < 10000; ++attempt) {
      Transaction* t = db.Begin();
      std::string a, b;
      Status st = db.Read(t, from, &a);
      if (st.ok()) st = db.Read(t, to, &b);
      if (st.ok()) {
        st = db.Write(t, from, EncodeBalance(record_bytes,
                                             DecodeBalance(a) - amount));
      }
      if (st.ok()) {
        st = db.Write(
            t, to, EncodeBalance(record_bytes, DecodeBalance(b) + amount));
      }
      if (st.ok()) {
        (void)db.Commit(t);
        ++transfers;
        break;
      }
      db.Abort(t, AbortReason::kColorViolation);
      ++restarts;
      (void)db.AdvanceTime(0.002);
    }
  }

  RunResult result;
  result.transfers = transfers;
  result.restarts = restarts;
  result.primary_total = TotalOf(db, false, 0);
  uint32_t copy = db.backup()->ReadMeta()->copy;
  result.backup_total = TotalOf(db, true, copy);

  // Crash and recover: the recovered image must balance regardless of the
  // algorithm (REDO replay repairs fuzzy backups).
  db.FlushLog();
  (void)db.AdvanceTime(0.5);
  (void)db.Crash();
  (void)db.Recover();
  result.recovered_total = TotalOf(db, false, 0);
  return result;
}

}  // namespace

int main() {
  const int64_t expected = kInitialBalance * 8192;
  std::printf("invariant: total balance must stay %" PRId64 "\n\n", expected);
  std::printf("%-10s %12s %14s %14s %14s %9s\n", "algorithm", "transfers",
              "primary", "backup_copy", "recovered", "restarts");
  bool all_recovered_ok = true;
  for (Algorithm a :
       {Algorithm::kCouCopy, Algorithm::kTwoColorCopy,
        Algorithm::kFuzzyCopy}) {
    RunResult r = RunBank(a, 17);
    std::printf("%-10s %12" PRIu64 " %14" PRId64 " %14" PRId64
                " %14" PRId64 " %9" PRIu64 "%s\n",
                std::string(AlgorithmName(a)).c_str(), r.transfers,
                r.primary_total, r.backup_total, r.recovered_total,
                r.restarts,
                r.backup_total != expected ? "   <- fuzzy backup image!"
                                           : "");
    all_recovered_ok &= (r.recovered_total == expected) &&
                        (r.primary_total == expected);
  }
  std::printf(
      "\nTC backups (COUCOPY, 2CCOPY) balance as raw images; a FUZZYCOPY\n"
      "image may not — yet every RECOVERED database balances: %s\n",
      all_recovered_ok ? "confirmed" : "VIOLATED");
  return all_recovered_ok ? 0 : 1;
}
