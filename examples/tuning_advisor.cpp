// Tuning advisor: choose a checkpoint interval from a recovery-time budget.
//
//   build/examples/tuning_advisor [recovery_budget_seconds]
//
// The paper's central operational insight (Figure 4b) is that the
// checkpoint duration is a knob: stretch it and per-transaction overhead
// falls while recovery time grows. This example turns the reconstructed
// analytic model into a small capacity-planning tool — given the paper's
// full 1 GB configuration and a recovery-time objective, it sweeps the
// feasible durations for every algorithm, prints the trade-off curve, and
// recommends the cheapest configuration meeting the objective.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "model/analytic_model.h"

using namespace mmdb;

namespace {

struct Option {
  Algorithm algorithm;
  ModelOutputs outputs;
};

// Every algorithm the analytic model covers, in canonical order. HOURGLASS
// drops out automatically (model-exempt: no closed form); a future model
// extension adds it to the advisor with no edit here.
std::vector<Algorithm> AdvisorAlgorithms() {
  std::vector<Algorithm> out;
  for (Algorithm a : kAllAlgorithms) {
    if (ModelSupportsAlgorithm(a)) out.push_back(a);
  }
  return out;
}

ModelInputs InputsFor(Algorithm a) {
  ModelInputs in;
  in.params = SystemParams::PaperDefaults();
  in.algorithm = a;
  in.mode = CheckpointMode::kPartial;
  // FASTFUZZY is only defined with a stable log tail; grant it one so its
  // curve is comparable (the paper's Section 4 premise).
  in.stable_log_tail = a == Algorithm::kFastFuzzy;
  return in;
}

void PrintCurve(Algorithm a, double budget) {
  ModelInputs in = InputsFor(a);
  AnalyticModel base(in);
  double d_min = base.Evaluate()->min_interval;
  std::printf("\n%s (min duration %.1fs)\n",
              std::string(AlgorithmName(a)).c_str(), d_min);
  std::printf("  %10s %12s %14s %8s\n", "duration_s", "recovery_s",
              "overhead/txn", "fits?");
  for (double m : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    in.checkpoint_interval = m * d_min;
    AnalyticModel model(in);
    ModelOutputs out = *model.Evaluate();
    std::printf("  %10.1f %12.1f %14.1f %8s\n", out.interval,
                out.recovery_seconds, out.overhead_per_txn,
                out.recovery_seconds <= budget ? "yes" : "no");
  }
}

// Largest interval (cheapest overhead) whose recovery time fits `budget`,
// found by bisection on the monotone recovery-time curve.
bool BestWithinBudget(Algorithm a, double budget, Option* best) {
  ModelInputs in = InputsFor(a);
  AnalyticModel base(in);
  double lo = base.Evaluate()->min_interval;
  if (base.Evaluate()->recovery_seconds > budget) return false;  // infeasible
  double hi = lo;
  while (true) {
    in.checkpoint_interval = hi * 2;
    AnalyticModel model(in);
    if (model.Evaluate()->recovery_seconds > budget || hi > 1e6) break;
    hi *= 2;
  }
  for (int i = 0; i < 60; ++i) {
    double mid = 0.5 * (lo + hi);
    in.checkpoint_interval = mid;
    AnalyticModel model(in);
    if (model.Evaluate()->recovery_seconds <= budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  in.checkpoint_interval = lo;
  AnalyticModel model(in);
  best->algorithm = a;
  best->outputs = *model.Evaluate();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double budget = argc > 1 ? std::atof(argv[1]) : 300.0;
  std::printf(
      "configuration: the paper's 1 GB database, 20 backup disks, 1000 TPS\n"
      "objective: recover from a system failure within %.0f seconds\n",
      budget);

  const std::vector<Algorithm> algorithms = AdvisorAlgorithms();
  for (Algorithm a : algorithms) PrintCurve(a, budget);

  std::printf("\n--- recommendation ---\n");
  bool any = false;
  Option best{};
  for (Algorithm a : algorithms) {
    Option option;
    if (!BestWithinBudget(a, budget, &option)) continue;
    if (!any ||
        option.outputs.overhead_per_txn < best.outputs.overhead_per_txn) {
      best = option;
      any = true;
    }
  }
  if (!any) {
    std::printf(
        "no configuration meets the objective: even back-to-back "
        "checkpoints recover too slowly — add backup disks (bandwidth "
        "shortens both the reload and the feasible duration).\n");
    return 1;
  }
  std::printf(
      "%s with a %.0f s checkpoint duration: %.1f instructions/transaction "
      "of checkpoint overhead, %.1f s expected recovery "
      "(%.1f s reload + %.1f s log).\n",
      std::string(AlgorithmName(best.algorithm)).c_str(),
      best.outputs.interval, best.outputs.overhead_per_txn,
      best.outputs.recovery_seconds, best.outputs.recovery_backup_seconds,
      best.outputs.recovery_log_seconds);
  if (best.algorithm == Algorithm::kFastFuzzy) {
    std::printf(
        "note: FASTFUZZY presumes stable (non-volatile) log-tail hardware; "
        "without it the cheapest alternative above applies.\n");
  }
  std::printf(
      "(COU produces transaction-consistent backups at fuzzy-like cost — "
      "the paper's Section 5 conclusion.)\n");
  return 0;
}
