// Quickstart: open a memory-resident database, commit transactions, take a
// checkpoint, crash the machine, and recover.
//
//   build/examples/quickstart
//
// Demonstrates the whole public API surface in ~100 lines: EngineOptions,
// transactions (Begin/Write/Commit and the one-shot Apply), explicit
// checkpointing, durability timing on the virtual clock, and crash
// recovery from the ping-pong backup plus the REDO log.

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/workload.h"
#include "env/env.h"

using namespace mmdb;  // Example code; library code never does this.

int main() {
  // 4 MiB database: 128 segments of 8192 words, 32-word (128-byte)
  // records — the paper's geometry at 1/256 scale. COUCOPY produces
  // transaction-consistent backups without ever aborting anybody.
  EngineOptions options;
  options.params.db.db_words = 1 << 20;
  options.algorithm = Algorithm::kCouCopy;
  options.checkpoint_mode = CheckpointMode::kPartial;

  std::unique_ptr<Env> env = NewMemEnv();  // or Env::Posix() for real files
  auto engine_or = Engine::Open(options, env.get());
  if (!engine_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  Engine& db = **engine_or;
  const size_t record_bytes = db.db().record_bytes();

  // --- a hand-rolled transaction ----------------------------------------
  Transaction* txn = db.Begin();
  std::string alice(record_bytes, '\0');
  alice.replace(0, 5, "alice");
  if (!db.Write(txn, /*record=*/1, alice).ok()) return 1;
  auto lsn = db.Commit(txn);
  std::printf("committed txn at lsn %llu (in memory)\n",
              static_cast<unsigned long long>(*lsn));

  // Commits become durable when the group-commit flush lands on the
  // (simulated) log disks; a crash right now would lose the update.
  std::printf("durable lsn before flush lands: %llu\n",
              static_cast<unsigned long long>(db.DurableLsn()));
  db.FlushLog();
  (void)db.AdvanceTime(0.1);  // let the I/O complete on the virtual clock
  std::printf("durable lsn after flush landed: %llu\n",
              static_cast<unsigned long long>(db.DurableLsn()));

  // --- a batch of one-shot transactions ----------------------------------
  for (RecordId r = 100; r < 160; ++r) {
    std::string image = MakeRecordImage(record_bytes, r, /*marker=*/7);
    if (!db.Apply({{r, image}}).ok()) return 1;
  }

  // --- checkpoint ---------------------------------------------------------
  if (!db.RunCheckpointToCompletion().ok()) return 1;
  const CheckpointStats& stats = db.checkpointer().last_stats();
  std::printf("checkpoint %llu: %llu segments flushed in %.3f virtual s\n",
              static_cast<unsigned long long>(stats.id),
              static_cast<unsigned long long>(stats.segments_flushed),
              stats.duration());

  // --- more work after the checkpoint, then a crash -----------------------
  std::string post(record_bytes, '\0');
  post.replace(0, 4, "post");
  (void)db.Apply({{2, post}});
  db.FlushLog();
  (void)db.AdvanceTime(0.1);

  std::printf("simulating power failure...\n");
  if (!db.Crash().ok()) return 1;
  auto recovery = db.Recover();
  if (!recovery.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovery.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "recovered from checkpoint %llu: %.3f virtual s "
      "(backup %.3f + log %.3f), %llu updates replayed\n",
      static_cast<unsigned long long>(recovery->checkpoint_id),
      recovery->total_seconds, recovery->backup_read_seconds,
      recovery->log_read_seconds,
      static_cast<unsigned long long>(recovery->updates_applied));

  // Both the checkpointed and the post-checkpoint (log-replayed) data are
  // back.
  bool ok = db.ReadRecordRaw(1).substr(0, 5) == "alice" &&
            db.ReadRecordRaw(2).substr(0, 4) == "post";
  std::printf("data intact after recovery: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
