// Microbenchmarks (google-benchmark, real wall-clock time) for the hot
// paths of the engine: transaction commit, log append/encode, CRC, segment
// staging, checkpoint sweeps, and recovery replay. These measure the
// implementation itself, complementing the figure benches which measure
// the modeled (virtual-time) behaviour.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "benchmark/benchmark.h"
#include "core/engine.h"
#include "core/workload.h"
#include "env/env.h"
#include "txn/lock_manager.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace mmdb {
namespace {

EngineOptions BenchOptions(Algorithm a = Algorithm::kFuzzyCopy) {
  EngineOptions opt;
  opt.params.db.db_words = 1ull << 20;  // 128 segments of 8192 words
  opt.algorithm = a;
  return opt;
}

// The production kernel (slice-by-8) and the byte-at-a-time reference it
// replaced, side by side: the bytes/second ratio is the satellite win the
// WAL frame path (one CRC per appended record) inherits.
void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel("slice_by_8");
}
BENCHMARK(BM_Crc32c)->Arg(128)->Arg(4096)->Arg(32768);

void BM_Crc32cBytewise(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crc32c::ExtendBytewise(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel("bytewise_reference");
}
BENCHMARK(BM_Crc32cBytewise)->Arg(128)->Arg(4096)->Arg(32768);

void BM_LogRecordEncode(benchmark::State& state) {
  LogRecord record = LogRecord::Update(12345, 67890, std::string(128, 'q'));
  record.lsn = 1u << 20;
  std::string out;
  for (auto _ : state) {
    out.clear();
    EncodeLogFrame(record, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LogRecordEncode);

void BM_LogRecordDecode(benchmark::State& state) {
  LogRecord record = LogRecord::Update(12345, 67890, std::string(128, 'q'));
  record.lsn = 1u << 20;
  std::string payload;
  record.EncodeTo(&payload);
  LogRecord out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogRecord::DecodeFrom(payload, &out));
  }
}
BENCHMARK(BM_LogRecordDecode);

void BM_MakeRecordImage(benchmark::State& state) {
  uint64_t marker = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeRecordImage(128, 42, marker++));
  }
}
BENCHMARK(BM_MakeRecordImage);

// Arg 0: updates per transaction. Arg 1: observability on (1) or off (0) —
// the pairs quantify the registry/trace cost on the hottest path (the
// acceptance bar is "no measurable difference").
void BM_TxnCommit(benchmark::State& state) {
  auto env = NewMemEnv();
  EngineOptions opt = BenchOptions();
  opt.enable_metrics = state.range(1) != 0;
  auto engine = Engine::Open(opt, env.get());
  if (!engine.ok()) {
    state.SkipWithError(engine.status().ToString().c_str());
    return;
  }
  state.SetLabel(opt.enable_metrics ? "metrics_on" : "metrics_off");
  Engine& e = **engine;
  Random rng(1);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  std::string image = MakeRecordImage(e.db().record_bytes(), 0, 0);
  for (auto _ : state) {
    Transaction* t = e.Begin();
    for (uint32_t i = 0; i < k; ++i) {
      RecordId r = rng.Uniform(e.db().num_records());
      (void)e.Write(t, r, image);
    }
    benchmark::DoNotOptimize(e.Commit(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxnCommit)
    ->Args({1, 1})
    ->Args({5, 1})
    ->Args({20, 1})
    ->Args({1, 0})
    ->Args({5, 0})
    ->Args({20, 0});

// Lock-table striping under real multi-threaded contention (the shard
// satellite): every thread acquires and releases an exclusive lock on a
// random record, with the stripe count as the swept axis. Stripes are
// keyed by segment, so at 1 stripe all threads serialize on one mutex
// while at 16 stripes mostly-disjoint segments hit disjoint mutexes —
// the throughput ratio at Threads(4) is the striping win. Single-threaded
// rows measure the striping overhead on the uncontended fast path.
void BM_LockStripeContention(benchmark::State& state) {
  static LockManager* locks = nullptr;
  constexpr uint64_t kRecordsPerSegment = 64;
  constexpr uint64_t kSegments = 256;
  if (state.thread_index() == 0) {
    locks = new LockManager(static_cast<uint32_t>(state.range(0)),
                            kRecordsPerSegment);
  }
  Random rng(1 + static_cast<uint64_t>(state.thread_index()));
  const TxnId txn = static_cast<TxnId>(state.thread_index() + 1);
  std::vector<RecordId> held(1);
  for (auto _ : state) {
    RecordId r = rng.Uniform(kSegments) * kRecordsPerSegment +
                 rng.Uniform(kRecordsPerSegment);
    if (locks->Acquire(txn, r, LockManager::Mode::kExclusive).ok()) {
      held[0] = r;
      locks->ReleaseAll(txn, held);
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel("stripes=" + std::to_string(state.range(0)));
    delete locks;
    locks = nullptr;
  }
}
BENCHMARK(BM_LockStripeContention)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

void BM_CheckpointFull(benchmark::State& state) {
  auto env = NewMemEnv();
  EngineOptions opt = BenchOptions();
  opt.checkpoint_mode = CheckpointMode::kFull;
  auto engine = Engine::Open(opt, env.get());
  if (!engine.ok()) {
    state.SkipWithError(engine.status().ToString().c_str());
    return;
  }
  Engine& e = **engine;
  for (auto _ : state) {
    if (!e.RunCheckpointToCompletion().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(e.db().size_bytes()));
}
BENCHMARK(BM_CheckpointFull)->Unit(benchmark::kMillisecond);

void BM_CheckpointAlgorithms(benchmark::State& state) {
  const Algorithm algorithms[] = {
      Algorithm::kFuzzyCopy, Algorithm::kTwoColorFlush,
      Algorithm::kTwoColorCopy, Algorithm::kCouFlush, Algorithm::kCouCopy};
  Algorithm a = algorithms[state.range(0)];
  state.SetLabel(std::string(AlgorithmName(a)));
  auto env = NewMemEnv();
  EngineOptions opt = BenchOptions(a);
  opt.checkpoint_mode = CheckpointMode::kFull;
  auto engine = Engine::Open(opt, env.get());
  if (!engine.ok()) {
    state.SkipWithError(engine.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    if (!(*engine)->RunCheckpointToCompletion().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
  }
}
BENCHMARK(BM_CheckpointAlgorithms)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

void BM_RecoveryReplay(benchmark::State& state) {
  // Build a crashed engine state once per iteration batch is too slow;
  // instead rebuild per iteration on a small database.
  for (auto _ : state) {
    state.PauseTiming();
    auto env = NewMemEnv();
    EngineOptions opt = BenchOptions();
    opt.params.db.db_words = 64 * 1024;
    opt.params.db.segment_words = 1024;
    auto engine = Engine::Open(opt, env.get());
    if (!engine.ok()) {
      state.SkipWithError("open failed");
      return;
    }
    Engine& e = **engine;
    (void)e.RunCheckpointToCompletion();
    WorkloadOptions wopt;
    wopt.duration = 0.2;
    wopt.run_checkpoints = false;
    WorkloadDriver driver(&e, wopt);
    (void)driver.Run();
    e.FlushLog();
    (void)e.AdvanceTime(1.0);
    (void)e.Crash();
    state.ResumeTiming();
    benchmark::DoNotOptimize(e.Recover());
  }
}
BENCHMARK(BM_RecoveryReplay)->Unit(benchmark::kMillisecond);

void BM_WorkloadSecond(benchmark::State& state) {
  // Real seconds to simulate one virtual second of the paper's workload.
  for (auto _ : state) {
    state.PauseTiming();
    auto env = NewMemEnv();
    auto engine = Engine::Open(BenchOptions(), env.get());
    if (!engine.ok()) {
      state.SkipWithError("open failed");
      return;
    }
    WorkloadOptions wopt;
    wopt.duration = 1.0;
    WorkloadDriver driver(engine->get(), wopt);
    state.ResumeTiming();
    benchmark::DoNotOptimize(driver.Run());
  }
}
BENCHMARK(BM_WorkloadSecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mmdb

// Like BENCHMARK_MAIN(), plus the harness-wide wall_seconds/jobs report
// every bench emits. google-benchmark times each case on the calling
// thread, so the measured cases always run serially (jobs=1 here by
// design — concurrent timing would contaminate the numbers; the sweep
// parallelism lives in the figure benches, see DESIGN.md §12).
int main(int argc, char** argv) {
  auto start = std::chrono::steady_clock::now();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  std::fprintf(stderr, "micro_engine: wall_seconds=%.3f jobs=1\n",
               wall.count());
  return 0;
}
