// Shard scaling: throughput and checkpoint-interference tail at shards in
// {1, 2, 4, 8}, for a classic fuzzy checkpointer, the quiesce-heavy COU
// copier, and a modern snapshot algorithm.
//
// Every point runs the adversarial Zipf workload (skewed keys concentrate
// traffic on the low shards — the worst case for range partitioning), then
// crashes and recovers through the k-way merged per-shard log streams.
//
// The headline claim this bench gates: sharding partitions only the
// MECHANICAL subsystems (per-shard WAL stream files, lock-table stripes,
// per-shard tallies) while the logical engine executes in one
// deterministic order on one virtual clock — so every modeled column
// (commits, overhead/txn, latency percentiles, recovery seconds) must be
// BIT-IDENTICAL down each algorithm's shard block. The bench exits nonzero
// if any column varies with the shard count. What sharding is allowed to
// change is physical layout (N stream files, per-shard balance columns)
// and real wall time, which is reported on stderr and stripped from every
// determinism comparison.
//
// NOTE on wall-clock expectations: the bench hosts pinned by check.sh are
// 1-CPU containers (see EXPERIMENTS.md), so shards>1 cannot show a wall
// speedup there; the per-shard balance and modeled-invariance columns are
// the portable signal.
//
//   --quick    shards {1, 4} and a shorter workload (sanitizer lanes)
//   --jobs=N   sweep width (stdout and sidecar are byte-identical at any N)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/figure_util.h"
#include "util/string_util.h"

namespace mmdb {
namespace bench {
namespace {

StatusOr<MeasuredPoint> MeasureShardPoint(Algorithm a, uint32_t shards,
                                          double seconds) {
  EngineOptions opt = MeasuredOptions(a, CheckpointMode::kPartial,
                                      /*stable=*/a == Algorithm::kFastFuzzy);
  opt.shards = shards;
  std::unique_ptr<Env> env = NewMemEnv();
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                        Engine::Open(opt, env.get()));
  WorkloadOptions wopt;
  wopt.duration = seconds;
  wopt.seed = 42;
  wopt.key_dist = WorkloadOptions::KeyDist::kZipf;
  wopt.zipf_theta = 0.99;
  wopt.hot_churn_interval = seconds / 4.0;
  wopt.read_fraction = 0.25;
  WorkloadDriver driver(engine.get(), wopt);
  MeasuredPoint point;
  MMDB_ASSIGN_OR_RETURN(point.workload, driver.Run());
  // Crash + recover so every point also proves the merged-stream REDO path
  // at measurement scale, and the sidecar carries the recovery split.
  MMDB_RETURN_IF_ERROR(engine->Crash());
  MMDB_ASSIGN_OR_RETURN(point.recovery, engine->Recover());
  point.metrics_json = engine->DumpMetricsJson();
  return point;
}

// Per-shard commit balance: hottest shard's share of commits (percent).
// 100/N is perfect balance; Zipf skew concentrates on the low shards.
double HottestShardShare(const WorkloadResult& w) {
  uint64_t total = 0, hottest = 0;
  for (const Histogram& h : w.shard_latency) {
    total += h.count();
    if (h.count() > hottest) hottest = h.count();
  }
  return total > 0 ? 100.0 * static_cast<double>(hottest) /
                         static_cast<double>(total)
                   : 0.0;
}

void ShardSeries(const std::vector<uint32_t>& shard_counts, double seconds,
                 SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Shard scaling (adversarial zipf, engine at 1 Mword scale)",
              "modeled columns must be identical down each shard block");
  std::printf("%-20s %8s %9s %8s %8s %8s %8s %8s %7s\n", "algorithm/shards",
              "commits", "tput/s", "p50ms", "p99ms", "p999ms", "ovh/txn",
              "rec_s", "hot%");

  const std::vector<Algorithm> algorithms = {
      Algorithm::kFuzzyCopy, Algorithm::kCouCopy, Algorithm::kZigzag};
  std::vector<SweepPoint> points;
  for (Algorithm a : algorithms) {
    for (uint32_t shards : shard_counts) {
      points.push_back(SweepPoint{
          std::string(AlgorithmName(a)) + "/shards=" + std::to_string(shards),
          [a, shards, seconds] {
            return MeasureShardPoint(a, shards, seconds);
          }});
    }
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("%-20s %8s\n", points[i].label.c_str(), "ERR");
      continue;
    }
    const WorkloadResult& w = results[i]->workload;
    std::printf(
        "%-20s %8llu %9.0f %8.3f %8.3f %8.3f %8.1f %8.4f %7.1f\n",
        points[i].label.c_str(), static_cast<unsigned long long>(w.committed),
        w.measured_seconds > 0.0
            ? static_cast<double>(w.committed) / w.measured_seconds
            : 0.0,
        w.latency.Percentile(50) / 1e3, w.latency.Percentile(99) / 1e3,
        w.latency.Percentile(99.9) / 1e3, w.overhead_per_txn,
        results[i]->recovery.total_seconds, HottestShardShare(w));
  }

  // The shard-invariance gate: within an algorithm's block, every modeled
  // column must match the shards=1 row bit-for-bit.
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const std::size_t base_idx = a * shard_counts.size();
    if (!results[base_idx].ok()) continue;
    const MeasuredPoint& base = *results[base_idx];
    for (std::size_t s = 1; s < shard_counts.size(); ++s) {
      const std::size_t idx = base_idx + s;
      if (!results[idx].ok()) continue;
      const MeasuredPoint& got = *results[idx];
      const bool equal =
          got.workload.committed == base.workload.committed &&
          got.workload.attempts == base.workload.attempts &&
          got.workload.overhead_per_txn == base.workload.overhead_per_txn &&
          got.workload.latency.Percentile(50) ==
              base.workload.latency.Percentile(50) &&
          got.workload.latency.Percentile(99) ==
              base.workload.latency.Percentile(99) &&
          got.workload.latency.Percentile(99.9) ==
              base.workload.latency.Percentile(99.9) &&
          got.recovery.total_seconds == base.recovery.total_seconds &&
          got.recovery.updates_applied == base.recovery.updates_applied;
      if (!equal) {
        runner->NoteFailure(
            points[idx].label.c_str(),
            InternalError(StringPrintf(
                "modeled results vary with shard count: "
                "commits %llu vs %llu, overhead %.9f vs %.9f, "
                "recovery %.9f vs %.9f",
                static_cast<unsigned long long>(got.workload.committed),
                static_cast<unsigned long long>(base.workload.committed),
                got.workload.overhead_per_txn,
                base.workload.overhead_per_txn, got.recovery.total_seconds,
                base.recovery.total_seconds)),
            sidecar);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) {
  // The shard count is this bench's swept axis: the MMDB_SHARDS override
  // (which beats EngineOptions::shards) must not flatten it.
  unsetenv("MMDB_SHARDS");
  mmdb::bench::BenchWallClock wall;
  std::size_t jobs = mmdb::bench::ParseJobs(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  mmdb::MetricsSidecar sidecar("fig_shard_scaling");
  mmdb::bench::SweepRunner runner(jobs);
  const std::vector<uint32_t> shard_counts =
      quick ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 2, 4, 8};
  mmdb::bench::ShardSeries(shard_counts, quick ? 0.5 : 1.5, &runner,
                           &sidecar);
  wall.Report("fig_shard_scaling", jobs, &sidecar);
  sidecar.Write();
  return runner.AnyFailed() ? 1 : 0;
}
