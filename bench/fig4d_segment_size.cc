// Figure 4d - Effect of Varying Segment Size.
//
// Two regimes, as in the paper:
//  * fixed 300 s checkpoint interval (dotted curves): larger segments give
//    higher backup bandwidth, so the sweep occupies less of each interval —
//    the two-color algorithms abort fewer transactions and improve;
//    COUCOPY barely moves.
//  * run-as-fast-as-possible (solid curves): bigger segments mean fewer,
//    larger transfers (less per-segment overhead) but a shorter interval,
//    so the whole checkpoint amortizes over fewer transactions. The
//    copy-heavy algorithms (2CCOPY, COUCOPY, FUZZYCOPY) get worse as
//    segments grow; 2CFLUSH — which never copies — gets better.

#include <cstdio>

#include "bench/figure_util.h"

namespace mmdb {
namespace bench {
namespace {

constexpr uint32_t kSegmentWords[] = {1024, 2048, 4096,  8192,
                                      16384, 32768, 65536};

void AnalyticSeries(double interval, const char* label) {
  PrintHeader("Figure 4d (analytic, paper scale)", label);
  const Algorithm algorithms[] = {Algorithm::kTwoColorFlush,
                                  Algorithm::kTwoColorCopy,
                                  Algorithm::kCouCopy,
                                  Algorithm::kFuzzyCopy};
  std::printf("%-10s", "seg_words");
  for (Algorithm a : algorithms) {
    std::printf(" %12s", std::string(AlgorithmName(a)).c_str());
  }
  std::printf("\n");
  for (uint32_t seg : kSegmentWords) {
    std::printf("%-10u", seg);
    for (Algorithm a : algorithms) {
      ModelInputs in;
      in.params = SystemParams::PaperDefaults();
      in.params.db.segment_words = seg;
      in.algorithm = a;
      in.mode = CheckpointMode::kPartial;
      in.checkpoint_interval = interval;
      std::printf(" %12.1f", Evaluate(in).overhead_per_txn);
    }
    std::printf("\n");
  }
}

void MeasuredSeries(SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Figure 4d (measured, engine at 1 Mword scale)",
              "run-as-fast-as-possible, overhead vs segment size");
  const Algorithm algorithms[] = {Algorithm::kTwoColorFlush,
                                  Algorithm::kCouCopy};
  const uint32_t segments[] = {2048u, 8192u, 32768u};
  std::printf("%-10s", "seg_words");
  for (Algorithm a : algorithms) {
    std::printf(" %12s", std::string(AlgorithmName(a)).c_str());
  }
  std::printf("\n");
  std::vector<SweepPoint> points;
  for (uint32_t seg : segments) {
    for (Algorithm a : algorithms) {
      points.push_back(SweepPoint{
          std::string(AlgorithmName(a)) + "/seg_words=" +
              std::to_string(seg),
          [a, seg] {
            EngineOptions opt =
                MeasuredOptions(a, CheckpointMode::kPartial, false);
            opt.params.db.segment_words = seg;
            return MeasureEngine(opt, /*seconds=*/2.0);
          }});
    }
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  std::size_t i = 0;
  for (uint32_t seg : segments) {
    std::printf("%-10u", seg);
    for (Algorithm a : algorithms) {
      (void)a;
      const StatusOr<MeasuredPoint>& point = results[i++];
      if (point.ok()) {
        std::printf(" %12.1f", point->workload.overhead_per_txn);
      } else {
        std::printf(" %12s", "ERR");
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) {
  mmdb::bench::BenchWallClock wall;
  std::size_t jobs = mmdb::bench::ParseJobs(argc, argv);
  mmdb::bench::AnalyticSeries(0.0,
                              "minimum interval (solid curves), overhead");
  mmdb::bench::AnalyticSeries(
      300.0, "fixed 300 s interval (dotted curves), overhead");
  mmdb::MetricsSidecar sidecar("fig4d");
  mmdb::bench::SweepRunner runner(jobs);
  mmdb::bench::MeasuredSeries(&runner, &sidecar);
  runner.ReportValidation(&sidecar);
  wall.Report("fig4d", jobs, &sidecar);
  sidecar.Write();
  return runner.AnyFailed() ? 1 : 0;
}
