// Figure 4c - Effect of Varying Transaction Load.
//
// Per-transaction overhead falls as the load rises, because a checkpoint's
// (largely fixed) cost amortizes over more transactions. The effect is not
// uniform: 2CFLUSH — the only algorithm that never copies data in memory —
// is the cheapest alternative at low loads yet among the most costly at
// high loads, where transaction reruns dominate.

#include <cstdio>

#include "bench/figure_util.h"

namespace mmdb {
namespace bench {
namespace {

constexpr double kPaperLoads[] = {50, 100, 200, 500, 1000, 2000, 3000, 5000};

void AnalyticSeries() {
  PrintHeader("Figure 4c (analytic, paper scale)",
              "overhead per transaction vs arrival rate");
  std::printf("%-10s", "lambda");
  for (Algorithm a : MainAlgorithms()) {
    std::printf(" %12s", std::string(AlgorithmName(a)).c_str());
  }
  std::printf("\n");
  for (double lambda : kPaperLoads) {
    std::printf("%-10.0f", lambda);
    for (Algorithm a : MainAlgorithms()) {
      ModelInputs in;
      in.params = SystemParams::PaperDefaults();
      in.params.txn.arrival_rate = lambda;
      in.algorithm = a;
      in.mode = CheckpointMode::kPartial;
      std::printf(" %12.1f", Evaluate(in).overhead_per_txn);
    }
    std::printf("\n");
  }
}

void MeasuredSeries(SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Figure 4c (measured, engine at 1 Mword scale)",
              "overhead per transaction vs arrival rate");
  const Algorithm algorithms[] = {Algorithm::kFuzzyCopy,
                                  Algorithm::kTwoColorFlush,
                                  Algorithm::kCouCopy};
  const double loads[] = {250.0, 1000.0, 3000.0};
  std::printf("%-10s", "lambda");
  for (Algorithm a : algorithms) {
    std::printf(" %12s", std::string(AlgorithmName(a)).c_str());
  }
  std::printf("\n");
  std::vector<SweepPoint> points;
  for (double lambda : loads) {
    for (Algorithm a : algorithms) {
      points.push_back(SweepPoint{
          std::string(AlgorithmName(a)) + "/lambda=" +
              std::to_string(static_cast<int>(lambda)),
          [a, lambda] {
            EngineOptions opt =
                MeasuredOptions(a, CheckpointMode::kPartial, false);
            opt.params.txn.arrival_rate = lambda;
            return MeasureEngine(opt, /*seconds=*/2.0);
          }});
    }
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  std::size_t i = 0;
  for (double lambda : loads) {
    std::printf("%-10.0f", lambda);
    for (Algorithm a : algorithms) {
      (void)a;
      const StatusOr<MeasuredPoint>& point = results[i++];
      if (point.ok()) {
        std::printf(" %12.1f", point->workload.overhead_per_txn);
      } else {
        std::printf(" %12s", "ERR");
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) {
  mmdb::bench::BenchWallClock wall;
  std::size_t jobs = mmdb::bench::ParseJobs(argc, argv);
  mmdb::bench::AnalyticSeries();
  mmdb::MetricsSidecar sidecar("fig4c");
  mmdb::bench::SweepRunner runner(jobs);
  mmdb::bench::MeasuredSeries(&runner, &sidecar);
  runner.ReportValidation(&sidecar);
  wall.Report("fig4c", jobs, &sidecar);
  sidecar.Write();
  return runner.AnyFailed() ? 1 : 0;
}
