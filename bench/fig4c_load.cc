// Figure 4c - Effect of Varying Transaction Load.
//
// Per-transaction overhead falls as the load rises, because a checkpoint's
// (largely fixed) cost amortizes over more transactions. The effect is not
// uniform: 2CFLUSH — the only algorithm that never copies data in memory —
// is the cheapest alternative at low loads yet among the most costly at
// high loads, where transaction reruns dominate.

#include <cstdio>

#include "bench/figure_util.h"

namespace mmdb {
namespace bench {
namespace {

constexpr double kPaperLoads[] = {50, 100, 200, 500, 1000, 2000, 3000, 5000};

void AnalyticSeries() {
  PrintHeader("Figure 4c (analytic, paper scale)",
              "overhead per transaction vs arrival rate");
  std::printf("%-10s", "lambda");
  for (Algorithm a : MainAlgorithms()) {
    std::printf(" %12s", std::string(AlgorithmName(a)).c_str());
  }
  std::printf("\n");
  for (double lambda : kPaperLoads) {
    std::printf("%-10.0f", lambda);
    for (Algorithm a : MainAlgorithms()) {
      ModelInputs in;
      in.params = SystemParams::PaperDefaults();
      in.params.txn.arrival_rate = lambda;
      in.algorithm = a;
      in.mode = CheckpointMode::kPartial;
      std::printf(" %12.1f", Evaluate(in).overhead_per_txn);
    }
    std::printf("\n");
  }
}

void MeasuredSeries(MetricsSidecar* sidecar) {
  PrintHeader("Figure 4c (measured, engine at 1 Mword scale)",
              "overhead per transaction vs arrival rate");
  const Algorithm algorithms[] = {Algorithm::kFuzzyCopy,
                                  Algorithm::kTwoColorFlush,
                                  Algorithm::kCouCopy};
  std::printf("%-10s", "lambda");
  for (Algorithm a : algorithms) {
    std::printf(" %12s", std::string(AlgorithmName(a)).c_str());
  }
  std::printf("\n");
  for (double lambda : {250.0, 1000.0, 3000.0}) {
    std::printf("%-10.0f", lambda);
    for (Algorithm a : algorithms) {
      EngineOptions opt =
          MeasuredOptions(a, CheckpointMode::kPartial, false);
      opt.params.txn.arrival_rate = lambda;
      auto point = MeasureEngine(opt, /*seconds=*/2.0);
      if (point.ok()) {
        sidecar->Add(std::string(AlgorithmName(a)) + "/lambda=" +
                         std::to_string(static_cast<int>(lambda)),
                     std::move(point->metrics_json));
      }
      std::printf(" %12.1f",
                  point.ok() ? point->workload.overhead_per_txn : -1.0);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main() {
  mmdb::bench::AnalyticSeries();
  mmdb::bench::MetricsSidecar sidecar("fig4c");
  mmdb::bench::MeasuredSeries(&sidecar);
  sidecar.Write();
  return 0;
}
