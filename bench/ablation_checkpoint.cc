// Ablation studies for the design choices DESIGN.md calls out, measured on
// the executable engine:
//   1. partial vs full checkpoints (the dirty-bit machinery's payoff),
//   2. LSN maintenance on/off (what the stable log tail actually saves),
//   3. group-commit flush cadence (log-device seeks vs commit latency),
//   4. the COU snapshot-buffer cap (graceful degradation under pressure),
//   5. logical (delta) vs physical (after-image) logging.
//
// Every study runs its points through the sweep runner (--jobs=N /
// MMDB_BENCH_JOBS): each point owns a private MemEnv + Engine, results are
// printed in declared order, and a failed point prints ERR and makes the
// bench exit nonzero.

#include <cstdio>

#include "bench/figure_util.h"

namespace mmdb {
namespace bench {
namespace {

void PartialVsFull(SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Ablation 1", "partial vs full checkpoints (FUZZYCOPY)");
  std::printf("%-8s %14s %14s %14s\n", "mode", "overhead/txn",
              "flushed/ckpt", "ckpt_dur_s");
  const CheckpointMode modes[] = {CheckpointMode::kPartial,
                                  CheckpointMode::kFull};
  std::vector<SweepPoint> points;
  for (CheckpointMode mode : modes) {
    points.push_back(SweepPoint{
        std::string("partial_vs_full/") +
            (mode == CheckpointMode::kPartial ? "partial" : "full"),
        [mode] {
          EngineOptions opt =
              MeasuredOptions(Algorithm::kFuzzyCopy, mode, false);
          // A light load leaves most segments clean, so partial mode has
          // something to skip.
          opt.params.txn.arrival_rate = 200;
          return MeasureEngine(opt, 3.0);
        }});
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const char* mode_name =
        modes[i] == CheckpointMode::kPartial ? "partial" : "full";
    if (!results[i].ok()) {
      std::printf("%-8s %14s\n", mode_name, "ERR");
      continue;
    }
    std::printf("%-8s %14.1f %14.1f %14.3f\n", mode_name,
                results[i]->workload.overhead_per_txn,
                results[i]->workload.segments_flushed_per_ckpt,
                results[i]->workload.avg_checkpoint_duration);
  }
}

void LsnMaintenance(SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Ablation 2",
              "LSN maintenance cost: volatile vs stable log tail");
  std::printf("%-10s %14s %14s\n", "algorithm", "volatile", "stable");
  const Algorithm algorithms[] = {Algorithm::kFuzzyCopy,
                                  Algorithm::kTwoColorCopy,
                                  Algorithm::kCouCopy};
  std::vector<SweepPoint> points;
  for (Algorithm a : algorithms) {
    for (bool stable : {false, true}) {
      points.push_back(SweepPoint{
          std::string("lsn/") + std::string(AlgorithmName(a)) +
              (stable ? "/stable" : "/volatile"),
          [a, stable] {
            EngineOptions opt =
                MeasuredOptions(a, CheckpointMode::kPartial, stable);
            return MeasureEngine(opt, 2.0);
          }});
    }
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  std::size_t i = 0;
  for (Algorithm a : algorithms) {
    double costs[2];
    bool ok[2];
    for (int s = 0; s < 2; ++s, ++i) {
      ok[s] = results[i].ok();
      costs[s] = ok[s] ? results[i]->workload.sync_per_txn : -1;
    }
    std::printf("%-10s ", std::string(AlgorithmName(a)).c_str());
    for (int s = 0; s < 2; ++s) {
      if (ok[s]) {
        std::printf("%14.1f ", costs[s]);
      } else {
        std::printf("%14s ", "ERR");
      }
    }
    std::printf("  (sync instructions/txn)\n");
  }
}

void FlushCadence(SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Ablation 3", "group-commit cadence (FUZZYCOPY)");
  std::printf("%-12s %14s %14s %12s\n", "interval_s", "overhead/txn",
              "ckpt_dur_s", "flushes");
  struct CadenceResult {
    double overhead_per_txn;
    double avg_checkpoint_duration;
    uint64_t flushes;
  };
  const double cadences[] = {0.01, 0.05, 0.2};
  std::vector<std::function<StatusOr<CadenceResult>()>> tasks;
  for (double cadence : cadences) {
    tasks.push_back([cadence]() -> StatusOr<CadenceResult> {
      EngineOptions opt = MeasuredOptions(
          Algorithm::kFuzzyCopy, CheckpointMode::kPartial, false);
      opt.log_flush_interval = cadence;
      std::unique_ptr<Env> env = NewMemEnv();
      MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                            Engine::Open(opt, env.get()));
      WorkloadOptions wopt;
      wopt.duration = 2.0;
      WorkloadDriver driver(engine.get(), wopt);
      MMDB_ASSIGN_OR_RETURN(WorkloadResult result, driver.Run());
      return CadenceResult{result.overhead_per_txn,
                           result.avg_checkpoint_duration,
                           engine->log()->FlushCount()};
    });
  }
  std::vector<StatusOr<CadenceResult>> results =
      RunSweep<CadenceResult>(runner->jobs(), tasks);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      runner->NoteFailure(
          ("flush_cadence/" + std::to_string(cadences[i])).c_str(),
          results[i].status(), sidecar);
      std::printf("%-12.2f %14s\n", cadences[i], "ERR");
      continue;
    }
    std::printf("%-12.2f %14.1f %14.3f %12llu\n", cadences[i],
                results[i]->overhead_per_txn,
                results[i]->avg_checkpoint_duration,
                static_cast<unsigned long long>(results[i]->flushes));
  }
}

void CouBufferCap(SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Ablation 4", "COU snapshot-buffer cap (COUCOPY)");
  std::printf("%-10s %14s %14s\n", "max_bufs", "overhead/txn",
              "cou_copies/ckpt");
  const uint32_t caps[] = {0u, 16u, 2u};
  std::vector<SweepPoint> points;
  for (uint32_t cap : caps) {
    points.push_back(SweepPoint{
        "cou_cap/" + std::to_string(cap), [cap] {
          EngineOptions opt = MeasuredOptions(
              Algorithm::kCouCopy, CheckpointMode::kPartial, false);
          opt.max_snapshot_buffers = cap;
          return MeasureEngine(opt, 2.0);
        }});
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("%-10u %14s\n", caps[i], "ERR");
      continue;
    }
    std::printf("%-10u %14.1f %14.1f\n", caps[i],
                results[i]->workload.overhead_per_txn,
                results[i]->workload.cou_copies_per_ckpt);
  }
  std::printf("(0 = unbounded; recovery correctness under exhaustion is "
              "covered by cou_test)\n");
}

void LogicalVsPhysicalLogging(SweepRunner* runner,
                              MetricsSidecar* sidecar) {
  PrintHeader("Ablation 5",
              "logical (delta) vs physical (after-image) logging, COUCOPY");
  std::printf("%-10s %14s %14s %14s\n", "logging", "log_words/txn",
              "log_read_s", "recovery_s");
  // Measured: identical counter-increment workloads, one encoded as full
  // after-images, one as compact delta records.
  struct LoggingResult {
    double log_words_per_txn;
    double log_read_seconds;
    double recovery_seconds;
  };
  const bool modes[] = {false, true};
  std::vector<std::function<StatusOr<LoggingResult>()>> tasks;
  for (bool logical : modes) {
    tasks.push_back([logical]() -> StatusOr<LoggingResult> {
      EngineOptions opt = MeasuredOptions(
          Algorithm::kCouCopy, CheckpointMode::kPartial, false);
      std::unique_ptr<Env> env = NewMemEnv();
      MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine_or,
                            Engine::Open(opt, env.get()));
      Engine& engine = *engine_or;
      MMDB_RETURN_IF_ERROR(engine.RunCheckpointToCompletion());
      uint64_t words0 = engine.log()->AppendedWords();
      const uint64_t n = engine.db().num_records();
      const size_t rb = engine.db().record_bytes();
      const int kTxns = 2000;
      for (int i = 0; i < kTxns; ++i) {
        RecordId r = (static_cast<uint64_t>(i) * 2654435761u) % n;
        if (logical) {
          (void)engine.ApplyDelta(r, 0, 1);
        } else {
          (void)engine.Apply({{r, MakeRecordImage(rb, r, i)}});
        }
        (void)engine.AdvanceTime(0.001);
      }
      double log_words =
          static_cast<double>(engine.log()->AppendedWords() - words0) /
          kTxns;
      engine.FlushLog();
      (void)engine.AdvanceTime(1.0);
      MMDB_RETURN_IF_ERROR(engine.Crash());
      MMDB_ASSIGN_OR_RETURN(RecoveryStats stats, engine.Recover());
      return LoggingResult{log_words, stats.log_read_seconds,
                           stats.total_seconds};
    });
  }
  std::vector<StatusOr<LoggingResult>> results =
      RunSweep<LoggingResult>(runner->jobs(), tasks);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const char* label = modes[i] ? "logical" : "physical";
    if (!results[i].ok()) {
      runner->NoteFailure((std::string("logical_vs_physical/") + label).c_str(),
                          results[i].status(), sidecar);
      std::printf("%-10s %14s\n", label, "ERR");
      continue;
    }
    std::printf("%-10s %14.1f %14.3f %14.3f\n", label,
                results[i]->log_words_per_txn,
                results[i]->log_read_seconds,
                results[i]->recovery_seconds);
  }
  // Analytic at paper scale: the recovery-time payoff of the smaller log.
  std::printf("\nanalytic, paper scale (COUCOPY, min duration):\n");
  std::printf("%-10s %14s %14s\n", "logging", "log_words/txn",
              "recovery_s");
  for (bool logical : modes) {
    ModelInputs in;
    in.params = SystemParams::PaperDefaults();
    in.algorithm = Algorithm::kCouCopy;
    in.mode = CheckpointMode::kPartial;
    in.logical_logging = logical;
    ModelOutputs out = Evaluate(in);
    std::printf("%-10s %14.1f %14.2f\n", logical ? "logical" : "physical",
                out.log_words_per_txn, out.recovery_seconds);
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) {
  mmdb::bench::BenchWallClock wall;
  std::size_t jobs = mmdb::bench::ParseJobs(argc, argv);
  mmdb::MetricsSidecar sidecar("ablation_checkpoint");
  mmdb::bench::SweepRunner runner(jobs);
  mmdb::bench::PartialVsFull(&runner, &sidecar);
  mmdb::bench::LsnMaintenance(&runner, &sidecar);
  mmdb::bench::FlushCadence(&runner, &sidecar);
  mmdb::bench::CouBufferCap(&runner, &sidecar);
  mmdb::bench::LogicalVsPhysicalLogging(&runner, &sidecar);
  runner.ReportValidation(&sidecar);
  wall.Report("ablation_checkpoint", jobs, &sidecar);
  sidecar.Write();
  return runner.AnyFailed() ? 1 : 0;
}
