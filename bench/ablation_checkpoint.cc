// Ablation studies for the design choices DESIGN.md calls out, measured on
// the executable engine:
//   1. partial vs full checkpoints (the dirty-bit machinery's payoff),
//   2. LSN maintenance on/off (what the stable log tail actually saves),
//   3. group-commit flush cadence (log-device seeks vs commit latency),
//   4. the COU snapshot-buffer cap (graceful degradation under pressure).

#include <cstdio>

#include "bench/figure_util.h"

namespace mmdb {
namespace bench {
namespace {

void PartialVsFull() {
  PrintHeader("Ablation 1", "partial vs full checkpoints (FUZZYCOPY)");
  std::printf("%-8s %14s %14s %14s\n", "mode", "overhead/txn",
              "flushed/ckpt", "ckpt_dur_s");
  for (CheckpointMode mode :
       {CheckpointMode::kPartial, CheckpointMode::kFull}) {
    EngineOptions opt = MeasuredOptions(Algorithm::kFuzzyCopy, mode, false);
    // A light load leaves most segments clean, so partial mode has
    // something to skip.
    opt.params.txn.arrival_rate = 200;
    auto point = MeasureEngine(opt, 3.0);
    if (!point.ok()) continue;
    std::printf("%-8s %14.1f %14.1f %14.3f\n",
                mode == CheckpointMode::kPartial ? "partial" : "full",
                point->workload.overhead_per_txn,
                point->workload.segments_flushed_per_ckpt,
                point->workload.avg_checkpoint_duration);
  }
}

void LsnMaintenance() {
  PrintHeader("Ablation 2",
              "LSN maintenance cost: volatile vs stable log tail");
  std::printf("%-10s %14s %14s\n", "algorithm", "volatile", "stable");
  for (Algorithm a :
       {Algorithm::kFuzzyCopy, Algorithm::kTwoColorCopy,
        Algorithm::kCouCopy}) {
    double costs[2] = {0, 0};
    int i = 0;
    for (bool stable : {false, true}) {
      EngineOptions opt =
          MeasuredOptions(a, CheckpointMode::kPartial, stable);
      auto point = MeasureEngine(opt, 2.0);
      costs[i++] = point.ok() ? point->workload.sync_per_txn : -1;
    }
    std::printf("%-10s %14.1f %14.1f   (sync instructions/txn)\n",
                std::string(AlgorithmName(a)).c_str(), costs[0], costs[1]);
  }
}

void FlushCadence() {
  PrintHeader("Ablation 3", "group-commit cadence (FUZZYCOPY)");
  std::printf("%-12s %14s %14s %12s\n", "interval_s", "overhead/txn",
              "ckpt_dur_s", "flushes");
  for (double cadence : {0.01, 0.05, 0.2}) {
    EngineOptions opt =
        MeasuredOptions(Algorithm::kFuzzyCopy, CheckpointMode::kPartial,
                        false);
    opt.log_flush_interval = cadence;
    std::unique_ptr<Env> env = NewMemEnv();
    auto engine = Engine::Open(opt, env.get());
    if (!engine.ok()) continue;
    WorkloadOptions wopt;
    wopt.duration = 2.0;
    WorkloadDriver driver(engine->get(), wopt);
    auto result = driver.Run();
    if (!result.ok()) continue;
    std::printf("%-12.2f %14.1f %14.3f %12llu\n", cadence,
                result->overhead_per_txn, result->avg_checkpoint_duration,
                static_cast<unsigned long long>(
                    (*engine)->log()->FlushCount()));
  }
}

void CouBufferCap() {
  PrintHeader("Ablation 4", "COU snapshot-buffer cap (COUCOPY)");
  std::printf("%-10s %14s %14s\n", "max_bufs", "overhead/txn",
              "cou_copies/ckpt");
  for (uint32_t cap : {0u, 16u, 2u}) {
    EngineOptions opt =
        MeasuredOptions(Algorithm::kCouCopy, CheckpointMode::kPartial,
                        false);
    opt.max_snapshot_buffers = cap;
    auto point = MeasureEngine(opt, 2.0);
    if (!point.ok()) continue;
    std::printf("%-10u %14.1f %14.1f\n", cap,
                point->workload.overhead_per_txn,
                point->workload.cou_copies_per_ckpt);
  }
  std::printf("(0 = unbounded; recovery correctness under exhaustion is "
              "covered by cou_test)\n");
}

void LogicalVsPhysicalLogging() {
  PrintHeader("Ablation 5",
              "logical (delta) vs physical (after-image) logging, COUCOPY");
  std::printf("%-10s %14s %14s %14s\n", "logging", "log_words/txn",
              "log_read_s", "recovery_s");
  // Measured: identical counter-increment workloads, one encoded as full
  // after-images, one as compact delta records.
  for (bool logical : {false, true}) {
    EngineOptions opt =
        MeasuredOptions(Algorithm::kCouCopy, CheckpointMode::kPartial,
                        false);
    std::unique_ptr<Env> env = NewMemEnv();
    auto engine_or = Engine::Open(opt, env.get());
    if (!engine_or.ok()) continue;
    Engine& engine = **engine_or;
    if (!engine.RunCheckpointToCompletion().ok()) continue;
    uint64_t words0 = engine.log()->AppendedWords();
    const uint64_t n = engine.db().num_records();
    const size_t rb = engine.db().record_bytes();
    const int kTxns = 2000;
    for (int i = 0; i < kTxns; ++i) {
      RecordId r = (static_cast<uint64_t>(i) * 2654435761u) % n;
      if (logical) {
        (void)engine.ApplyDelta(r, 0, 1);
      } else {
        (void)engine.Apply({{r, MakeRecordImage(rb, r, i)}});
      }
      (void)engine.AdvanceTime(0.001);
    }
    double log_words =
        static_cast<double>(engine.log()->AppendedWords() - words0) / kTxns;
    engine.FlushLog();
    (void)engine.AdvanceTime(1.0);
    (void)engine.Crash();
    auto stats = engine.Recover();
    std::printf("%-10s %14.1f %14.3f %14.3f\n",
                logical ? "logical" : "physical", log_words,
                stats.ok() ? stats->log_read_seconds : -1.0,
                stats.ok() ? stats->total_seconds : -1.0);
  }
  // Analytic at paper scale: the recovery-time payoff of the smaller log.
  std::printf("\nanalytic, paper scale (COUCOPY, min duration):\n");
  std::printf("%-10s %14s %14s\n", "logging", "log_words/txn",
              "recovery_s");
  for (bool logical : {false, true}) {
    ModelInputs in;
    in.params = SystemParams::PaperDefaults();
    in.algorithm = Algorithm::kCouCopy;
    in.mode = CheckpointMode::kPartial;
    in.logical_logging = logical;
    ModelOutputs out = Evaluate(in);
    std::printf("%-10s %14.1f %14.2f\n", logical ? "logical" : "physical",
                out.log_words_per_txn, out.recovery_seconds);
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main() {
  mmdb::bench::PartialVsFull();
  mmdb::bench::LsnMaintenance();
  mmdb::bench::FlushCadence();
  mmdb::bench::CouBufferCap();
  mmdb::bench::LogicalVsPhysicalLogging();
  return 0;
}