#ifndef MMDB_BENCH_FIGURE_UTIL_H_
#define MMDB_BENCH_FIGURE_UTIL_H_

// Shared helpers for the figure-regeneration benches: each bench prints the
// paper's series twice — from the reconstructed analytic model at the
// paper's full 256 Mword scale, and measured from the executable engine at
// a scaled-down database (the shapes must agree; see EXPERIMENTS.md).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/workload.h"
#include "env/env.h"
#include "model/analytic_model.h"
#include "util/json.h"

namespace mmdb {
namespace bench {

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s - %s\n", figure, what);
  std::printf("================================================================\n");
}

inline void PrintParams(const SystemParams& p) {
  std::printf("params: %s\n", p.ToString().c_str());
}

// Engine-scale defaults for measured series: 1 Mword database (128
// segments of 8192 words, as in the paper's geometry, just fewer of them).
inline EngineOptions MeasuredOptions(Algorithm a, CheckpointMode mode,
                                     bool stable_tail) {
  EngineOptions opt;
  opt.params.db.db_words = 1ull << 20;  // 128 segments of 8192 words
  opt.algorithm = a;
  opt.checkpoint_mode = mode;
  opt.stable_log_tail = stable_tail;
  return opt;
}

struct MeasuredPoint {
  WorkloadResult workload;
  RecoveryStats recovery;
  // Full Engine::DumpMetricsJson() snapshot taken after recovery (registry
  // counters/timers, trace ring, checkpoint history), for the sidecar.
  std::string metrics_json;
};

// Runs `seconds` of the paper's workload against a fresh engine, then
// crashes and recovers to measure recovery time.
inline StatusOr<MeasuredPoint> MeasureEngine(const EngineOptions& options,
                                             double seconds,
                                             uint64_t seed = 42) {
  std::unique_ptr<Env> env = NewMemEnv();
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                        Engine::Open(options, env.get()));
  WorkloadOptions wopt;
  wopt.duration = seconds;
  wopt.seed = seed;
  WorkloadDriver driver(engine.get(), wopt);
  MeasuredPoint point;
  MMDB_ASSIGN_OR_RETURN(point.workload, driver.Run());
  MMDB_RETURN_IF_ERROR(engine->Crash());
  MMDB_ASSIGN_OR_RETURN(point.recovery, engine->Recover());
  point.metrics_json = engine->DumpMetricsJson();
  return point;
}

// Collects one DumpMetricsJson snapshot per measured point and writes them
// beside the bench's stdout tables as a single machine-readable document:
//   {"bench":"fig4a","points":[{"label":"FUZZYCOPY","engine":{...}},...]}
// The destination defaults to "<bench>_metrics.json" in the working
// directory; the MMDB_METRICS_SIDECAR environment variable overrides the
// path, and setting it to the empty string disables the sidecar entirely.
class MetricsSidecar {
 public:
  explicit MetricsSidecar(const char* bench) : bench_(bench) {
    const char* override_path = std::getenv("MMDB_METRICS_SIDECAR");
    path_ = override_path != nullptr ? override_path
                                     : bench_ + "_metrics.json";
  }

  void Add(std::string label, std::string engine_json) {
    if (path_.empty() || engine_json.empty()) return;
    points_.emplace_back(std::move(label), std::move(engine_json));
  }

  // Writes the collected points (call once, after the measured series).
  void Write() const {
    if (path_.empty()) return;
    JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.String(bench_);
    w.Key("points");
    w.BeginArray();
    for (const auto& [label, engine_json] : points_) {
      w.BeginObject();
      w.Key("label");
      w.String(label);
      w.Key("engine");
      w.RawValue(engine_json);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "metrics sidecar: cannot open %s\n",
                   path_.c_str());
      return;
    }
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("metrics sidecar: %s (%zu points)\n", path_.c_str(),
                points_.size());
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> points_;
};

inline ModelOutputs Evaluate(const ModelInputs& in) {
  AnalyticModel model(in);
  auto out = model.Evaluate();
  if (!out.ok()) {
    std::fprintf(stderr, "model error: %s\n",
                 out.status().ToString().c_str());
    return ModelOutputs{};
  }
  return *out;
}

inline const std::vector<Algorithm>& MainAlgorithms() {
  static const std::vector<Algorithm> kAlgorithms = {
      Algorithm::kFuzzyCopy, Algorithm::kTwoColorFlush,
      Algorithm::kTwoColorCopy, Algorithm::kCouFlush, Algorithm::kCouCopy};
  return kAlgorithms;
}

}  // namespace bench
}  // namespace mmdb

#endif  // MMDB_BENCH_FIGURE_UTIL_H_
