#ifndef MMDB_BENCH_FIGURE_UTIL_H_
#define MMDB_BENCH_FIGURE_UTIL_H_

// Shared helpers for the figure-regeneration benches: each bench prints the
// paper's series twice — from the reconstructed analytic model at the
// paper's full 256 Mword scale, and measured from the executable engine at
// a scaled-down database (the shapes must agree; see EXPERIMENTS.md).
//
// The measured series run through SweepRunner: every point is an
// independent deterministic engine in its own MemEnv, so the sweep fans
// out across a ThreadPool (--jobs=N / MMDB_BENCH_JOBS; 1 = the old serial
// loop) while results, stdout rows, and sidecar entries are merged in
// declared point order — the tables are byte-identical at any width.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/workload.h"
#include "env/env.h"
#include "model/analytic_model.h"
#include "model/model_oracle.h"
#include "obs/sidecar.h"
#include "parallel/parallel.h"

namespace mmdb {
namespace bench {

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s - %s\n", figure, what);
  std::printf("================================================================\n");
}

inline void PrintParams(const SystemParams& p) {
  std::printf("params: %s\n", p.ToString().c_str());
}

// Engine-scale defaults for measured series: 1 Mword database (128
// segments of 8192 words, as in the paper's geometry, just fewer of them).
inline EngineOptions MeasuredOptions(Algorithm a, CheckpointMode mode,
                                     bool stable_tail) {
  EngineOptions opt;
  opt.params.db.db_words = 1ull << 20;  // 128 segments of 8192 words
  opt.algorithm = a;
  opt.checkpoint_mode = mode;
  opt.stable_log_tail = stable_tail;
  return opt;
}

struct MeasuredPoint {
  WorkloadResult workload;
  RecoveryStats recovery;
  // Full Engine::DumpMetricsJson() snapshot taken after recovery (registry
  // counters/timers, trace ring, checkpoint history), for the sidecar.
  std::string metrics_json;
  // Model-oracle comparison: the analytic model evaluated at the *same*
  // SystemParams as this engine, against the measured headline numbers.
  // has_validation is false only if the model rejected the inputs.
  ModelValidation validation;
  bool has_validation = false;
};

// The analytic model's inputs for the configuration an engine measured,
// so every measured point can be checked against the paper's formulas.
inline ModelInputs ModelInputsFromOptions(const EngineOptions& options) {
  ModelInputs in;
  in.params = options.params;
  in.algorithm = options.algorithm;
  in.mode = options.checkpoint_mode;
  in.checkpoint_interval = options.checkpoint_interval;
  in.stable_log_tail = options.stable_log_tail;
  return in;
}

// Runs `seconds` of the paper's workload against a fresh engine, then
// crashes and recovers to measure recovery time. Also evaluates the
// analytic model as an oracle for the same parameters (the sidecar's
// predicted/measured/residual block).
inline StatusOr<MeasuredPoint> MeasureEngine(const EngineOptions& options,
                                             double seconds,
                                             uint64_t seed = 42) {
  std::unique_ptr<Env> env = NewMemEnv();
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                        Engine::Open(options, env.get()));
  WorkloadOptions wopt;
  wopt.duration = seconds;
  wopt.seed = seed;
  WorkloadDriver driver(engine.get(), wopt);
  MeasuredPoint point;
  MMDB_ASSIGN_OR_RETURN(point.workload, driver.Run());
  MMDB_RETURN_IF_ERROR(engine->Crash());
  MMDB_ASSIGN_OR_RETURN(point.recovery, engine->Recover());
  point.metrics_json = engine->DumpMetricsJson();
  MeasuredMetrics measured;
  measured.overhead_per_txn = point.workload.overhead_per_txn;
  measured.sync_per_txn = point.workload.sync_per_txn;
  measured.async_per_txn = point.workload.async_per_txn;
  measured.recovery_seconds = point.recovery.total_seconds;
  StatusOr<ModelValidation> validation =
      CompareToModel(ModelInputsFromOptions(options), measured);
  if (validation.ok()) {
    point.validation = *validation;
    point.has_validation = true;
  }
  return point;
}

// Sweep width for this bench process: --jobs=N beats MMDB_BENCH_JOBS beats
// min(points, hardware_concurrency). 1 selects the serial path (no worker
// threads at all).
inline std::size_t ParseJobs(int argc, char** argv) {
  long parsed = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      parsed = std::strtol(argv[i] + 7, nullptr, 10);
    }
  }
  if (parsed < 0) {
    const char* env_jobs = std::getenv("MMDB_BENCH_JOBS");
    if (env_jobs != nullptr && *env_jobs != '\0') {
      parsed = std::strtol(env_jobs, nullptr, 10);
    }
  }
  if (parsed >= 1) return static_cast<std::size_t>(parsed);
  return DefaultSweepWidth(~std::size_t{0});
}

// One declarative sweep point: a sidecar label plus the closure producing
// its measurement. The closure must be self-contained (it builds its own
// MemEnv + Engine) — workers share nothing but the pool queue.
struct SweepPoint {
  std::string label;
  std::function<StatusOr<MeasuredPoint>()> work;
};

// Executes the declared points across `jobs` workers and merges the ok
// results into `sidecar` in declared order. Results come back indexed like
// `points`; the caller formats its table rows from them (printing ERR for
// failed cells) and must exit nonzero if AnyFailed().
class SweepRunner {
 public:
  explicit SweepRunner(std::size_t jobs) : jobs_(jobs) {}

  std::vector<StatusOr<MeasuredPoint>> Run(
      const std::vector<SweepPoint>& points, MetricsSidecar* sidecar) {
    std::vector<std::function<StatusOr<MeasuredPoint>()>> tasks;
    tasks.reserve(points.size());
    for (const SweepPoint& p : points) tasks.push_back(p.work);
    std::vector<StatusOr<MeasuredPoint>> results =
        RunSweep<MeasuredPoint>(PoolFor(points.size()), tasks);
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        // The Status message goes to the sidecar too, so ERR cells stay
        // diagnosable from the artifact alone.
        NoteFailure(points[i].label.c_str(), results[i].status(), sidecar);
        continue;
      }
      std::string validation_json;
      if (results[i]->has_validation) {
        summary_.Add(results[i]->validation);
        validation_json = results[i]->validation.ToJsonString();
      }
      if (sidecar != nullptr) {
        sidecar->Add(points[i].label, std::move(results[i]->metrics_json),
                     std::move(validation_json));
      }
    }
    return results;
  }

  std::size_t jobs() const { return jobs_; }
  bool AnyFailed() const { return any_failed_; }

  // Model-oracle residuals accumulated across every Run() so far.
  const ResidualSummary& validation_summary() const { return summary_; }

  // Writes the accumulated residual summary into the sidecar's
  // "validation_summary" member. Call once, after the measured series and
  // before MetricsSidecar::Write.
  void ReportValidation(MetricsSidecar* sidecar) const {
    if (sidecar == nullptr || summary_.points() == 0) return;
    sidecar->SetValidationSummary(summary_.ToJsonString());
  }

  // For sweeps a bench runs through RunSweep() directly (custom result
  // types): fold their failures into this runner's exit status, and record
  // the failure in the sidecar when one is in use.
  void NoteFailure(const char* what, const Status& status,
                   MetricsSidecar* sidecar = nullptr) {
    any_failed_ = true;
    std::string message = status.ToString();
    std::fprintf(stderr, "sweep point %s failed: %s\n", what,
                 message.c_str());
    if (sidecar != nullptr) sidecar->AddError(what, std::move(message));
  }

 private:
  // Lazily builds — then reuses — one pool for every Run() this runner
  // serves, instead of spinning threads up and down per sweep. Serial
  // (jobs <= 1) and single-point sweeps get nullptr: the inline path.
  ThreadPool* PoolFor(std::size_t num_points) {
    if (jobs_ <= 1 || num_points <= 1) return nullptr;
    std::size_t want = std::min(jobs_, num_points);
    if (pool_ == nullptr || pool_->num_threads() < want) {
      pool_ = std::make_unique<ThreadPool>(want);
    }
    return pool_.get();
  }

  std::size_t jobs_;
  std::unique_ptr<ThreadPool> pool_;
  bool any_failed_ = false;
  ResidualSummary summary_;
};

// Wall-clock scope for a whole bench run; reports on stderr (stdout tables
// must stay byte-identical across --jobs widths) and into the sidecar.
class BenchWallClock {
 public:
  BenchWallClock() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedSeconds() const {
    std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start_;
    return d.count();
  }

  // Prints "<bench>: wall_seconds=W jobs=N" and records both in `sidecar`.
  void Report(const char* bench, std::size_t jobs,
              MetricsSidecar* sidecar) const {
    double wall = ElapsedSeconds();
    std::fprintf(stderr, "%s: wall_seconds=%.3f jobs=%zu\n", bench, wall,
                 jobs);
    if (sidecar != nullptr) sidecar->SetRun(jobs, wall);
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline ModelOutputs Evaluate(const ModelInputs& in) {
  AnalyticModel model(in);
  auto out = model.Evaluate();
  if (!out.ok()) {
    std::fprintf(stderr, "model error: %s\n",
                 out.status().ToString().c_str());
    return ModelOutputs{};
  }
  return *out;
}

// The paper's five headline algorithms, derived from the canonical list so
// the filter (not a hand-kept copy) defines membership: everything except
// FASTFUZZY (needs a stable tail; fig4b covers it separately) and the
// modern snapshot algorithms (post-paper; fig_modern covers them). Order
// follows kAllAlgorithms, which keeps the fig4 axis order stable.
inline const std::vector<Algorithm>& MainAlgorithms() {
  static const std::vector<Algorithm> kAlgorithms = [] {
    std::vector<Algorithm> out;
    for (Algorithm a : kAllAlgorithms) {
      if (a == Algorithm::kFastFuzzy || a == Algorithm::kZigzag ||
          a == Algorithm::kPingPong || a == Algorithm::kHourglass) {
        continue;
      }
      out.push_back(a);
    }
    return out;
  }();
  return kAlgorithms;
}

}  // namespace bench
}  // namespace mmdb

#endif  // MMDB_BENCH_FIGURE_UTIL_H_
