#ifndef MMDB_BENCH_FIGURE_UTIL_H_
#define MMDB_BENCH_FIGURE_UTIL_H_

// Shared helpers for the figure-regeneration benches: each bench prints the
// paper's series twice — from the reconstructed analytic model at the
// paper's full 256 Mword scale, and measured from the executable engine at
// a scaled-down database (the shapes must agree; see EXPERIMENTS.md).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/workload.h"
#include "env/env.h"
#include "model/analytic_model.h"

namespace mmdb {
namespace bench {

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s - %s\n", figure, what);
  std::printf("================================================================\n");
}

inline void PrintParams(const SystemParams& p) {
  std::printf("params: %s\n", p.ToString().c_str());
}

// Engine-scale defaults for measured series: 1 Mword database (128
// segments of 8192 words, as in the paper's geometry, just fewer of them).
inline EngineOptions MeasuredOptions(Algorithm a, CheckpointMode mode,
                                     bool stable_tail) {
  EngineOptions opt;
  opt.params.db.db_words = 1ull << 20;  // 128 segments of 8192 words
  opt.algorithm = a;
  opt.checkpoint_mode = mode;
  opt.stable_log_tail = stable_tail;
  return opt;
}

struct MeasuredPoint {
  WorkloadResult workload;
  RecoveryStats recovery;
};

// Runs `seconds` of the paper's workload against a fresh engine, then
// crashes and recovers to measure recovery time.
inline StatusOr<MeasuredPoint> MeasureEngine(const EngineOptions& options,
                                             double seconds,
                                             uint64_t seed = 42) {
  std::unique_ptr<Env> env = NewMemEnv();
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                        Engine::Open(options, env.get()));
  WorkloadOptions wopt;
  wopt.duration = seconds;
  wopt.seed = seed;
  WorkloadDriver driver(engine.get(), wopt);
  MeasuredPoint point;
  MMDB_ASSIGN_OR_RETURN(point.workload, driver.Run());
  MMDB_RETURN_IF_ERROR(engine->Crash());
  MMDB_ASSIGN_OR_RETURN(point.recovery, engine->Recover());
  return point;
}

inline ModelOutputs Evaluate(const ModelInputs& in) {
  AnalyticModel model(in);
  auto out = model.Evaluate();
  if (!out.ok()) {
    std::fprintf(stderr, "model error: %s\n",
                 out.status().ToString().c_str());
    return ModelOutputs{};
  }
  return *out;
}

inline const std::vector<Algorithm>& MainAlgorithms() {
  static const std::vector<Algorithm> kAlgorithms = {
      Algorithm::kFuzzyCopy, Algorithm::kTwoColorFlush,
      Algorithm::kTwoColorCopy, Algorithm::kCouFlush, Algorithm::kCouCopy};
  return kAlgorithms;
}

}  // namespace bench
}  // namespace mmdb

#endif  // MMDB_BENCH_FIGURE_UTIL_H_
