// Figure 4e - Processor Overhead with a Stable Log Tail.
//
// With enough stable RAM to hold the in-memory log tail, the
// straightforward fuzzy algorithm (FASTFUZZY) becomes legal: segments are
// flushed in place with no buffering and no LSN bookkeeping, costing only a
// few hundred instructions per transaction. The other algorithms change
// almost nothing — their LSN-synchronization savings are insignificant.

#include <cstdio>

#include "bench/figure_util.h"
#include "util/string_util.h"

namespace mmdb {
namespace bench {
namespace {

std::vector<Algorithm> WithFastFuzzy() {
  std::vector<Algorithm> algorithms = MainAlgorithms();
  algorithms.insert(algorithms.begin(), Algorithm::kFastFuzzy);
  return algorithms;
}

void AnalyticSeries() {
  PrintHeader("Figure 4e (analytic, paper scale)",
              "overhead with a stable log tail vs volatile tail");
  std::printf("%-10s %18s %18s\n", "algorithm", "stable_tail", "volatile");
  for (Algorithm a : WithFastFuzzy()) {
    ModelInputs stable;
    stable.params = SystemParams::PaperDefaults();
    stable.algorithm = a;
    stable.mode = CheckpointMode::kPartial;
    stable.stable_log_tail = true;
    double with_stable = Evaluate(stable).overhead_per_txn;
    double with_volatile = -1.0;
    if (a != Algorithm::kFastFuzzy) {
      ModelInputs v = stable;
      v.stable_log_tail = false;
      with_volatile = Evaluate(v).overhead_per_txn;
    }
    std::printf("%-10s %18.1f %18s\n",
                std::string(AlgorithmName(a)).c_str(), with_stable,
                a == Algorithm::kFastFuzzy
                    ? "(illegal)"
                    : StringPrintf("%.1f", with_volatile).c_str());
  }
}

void MeasuredSeries(SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Figure 4e (measured, engine at 1 Mword scale)",
              "overhead with a stable log tail");
  std::printf("%-10s %14s %9s\n", "algorithm", "overhead/txn", "restarts");
  std::vector<SweepPoint> points;
  for (Algorithm a : WithFastFuzzy()) {
    points.push_back(SweepPoint{
        std::string(AlgorithmName(a)), [a] {
          EngineOptions opt =
              MeasuredOptions(a, CheckpointMode::kPartial, /*stable=*/true);
          return MeasureEngine(opt, /*seconds=*/2.0);
        }});
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("%-10s %14s\n", points[i].label.c_str(), "ERR");
      continue;
    }
    std::printf("%-10s %14.1f %9llu\n", points[i].label.c_str(),
                results[i]->workload.overhead_per_txn,
                static_cast<unsigned long long>(
                    results[i]->workload.color_restarts));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) {
  mmdb::bench::BenchWallClock wall;
  std::size_t jobs = mmdb::bench::ParseJobs(argc, argv);
  mmdb::bench::AnalyticSeries();
  mmdb::MetricsSidecar sidecar("fig4e");
  mmdb::bench::SweepRunner runner(jobs);
  mmdb::bench::MeasuredSeries(&runner, &sidecar);
  runner.ReportValidation(&sidecar);
  wall.Report("fig4e", jobs, &sidecar);
  sidecar.Write();
  return runner.AnyFailed() ? 1 : 0;
}
