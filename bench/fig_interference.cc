// Tail-latency interference under checkpointing: all nine algorithms
// against the paper's uniform load and an adversarial Zipf load.
//
// Each point runs the same SystemParams; the adversarial points add
// Zipf(0.99) key skew (hot ranks cluster in the low segments, colliding
// with the checkpoint sweep), hot-set churn across segments, and a
// read-only fraction. For every point the bench reports the latency tail
// (p50/p90/p99/p999/max) plus the per-cause attribution of total latency:
// quiesce barrier stalls, checkpoint-held segment locks, color-violation
// restart waits, lock-conflict restart waits, and head-of-line queueing
// behind stalled predecessors (the open-loop amplification of a stall).
//
// The driver's virtual-clock identity — the five causes sum to total
// latency — is asserted per point; a violation fails the bench. Engines
// run with the time-series sampler on, so each sidecar entry carries
// counter tracks renderable by mmdb_trace_report.
//
// Expected shape: COUCOPY is the only quiesce-cause algorithm; the
// two-color algorithms shift attribution to color restarts under skew;
// the modern snapshot algorithms (ZIGZAG/PINGPONG/HOURGLASS) keep p999
// closest to the checkpoint-free floor.
//
//   --quick    shorter workload per point (sanitizer lanes)
//   --jobs=N   sweep width (stdout and sidecar are byte-identical at any N)

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench/figure_util.h"
#include "util/string_util.h"

namespace mmdb {
namespace bench {
namespace {

StatusOr<MeasuredPoint> MeasureInterference(Algorithm a, bool zipf,
                                            double seconds) {
  EngineOptions opt = MeasuredOptions(a, CheckpointMode::kPartial,
                                      /*stable=*/a == Algorithm::kFastFuzzy);
  // Sample the interference counters every 50 virtual ms; the ring bound
  // keeps long runs from bloating the sidecar.
  opt.timeseries_epoch = 0.05;
  std::unique_ptr<Env> env = NewMemEnv();
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                        Engine::Open(opt, env.get()));
  WorkloadOptions wopt;
  wopt.duration = seconds;
  wopt.seed = 42;
  if (zipf) {
    wopt.key_dist = WorkloadOptions::KeyDist::kZipf;
    wopt.zipf_theta = 0.99;
    wopt.hot_churn_interval = seconds / 4.0;
    wopt.read_fraction = 0.25;
  }
  WorkloadDriver driver(engine.get(), wopt);
  MeasuredPoint point;
  MMDB_ASSIGN_OR_RETURN(point.workload, driver.Run());
  point.metrics_json = engine->DumpMetricsJson();
  return point;
}

// The six causes must reproduce total latency on the virtual clock (see
// WorkloadResult); tolerance covers float summation order only. The
// recovery-wait cause is zero here (no restart in this figure) but stays in
// the identity so an attribution leak cannot hide behind the extra term.
bool AttributionConsistent(const WorkloadResult& w) {
  const double sum = w.stall_quiesce_seconds + w.stall_ckpt_lock_seconds +
                     w.stall_recovery_wait_seconds +
                     w.backoff_color_seconds + w.backoff_lock_seconds +
                     w.queue_seconds;
  const double tol = 1e-6 * std::max(1.0, w.latency_total_seconds);
  return std::fabs(sum - w.latency_total_seconds) <= tol;
}

void MeasuredSeries(double seconds, SweepRunner* runner,
                    MetricsSidecar* sidecar) {
  PrintHeader("Checkpoint interference (measured, engine at 1 Mword scale)",
              "latency tail and per-cause attribution, uniform vs zipf");
  std::printf("%-18s %8s %8s %8s %8s %8s %8s %7s %7s %7s %7s %7s\n",
              "algorithm/dist", "commits", "p50ms", "p90ms", "p99ms",
              "p999ms", "maxms", "quies%", "cklck%", "color%", "lock%",
              "queue%");
  std::vector<SweepPoint> points;
  for (Algorithm a : kAllAlgorithms) {
    for (bool zipf : {false, true}) {
      points.push_back(SweepPoint{
          std::string(AlgorithmName(a)) + (zipf ? "/zipf" : "/uniform"),
          [a, zipf, seconds] {
            return MeasureInterference(a, zipf, seconds);
          }});
    }
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("%-18s %8s\n", points[i].label.c_str(), "ERR");
      continue;
    }
    const WorkloadResult& w = results[i]->workload;
    const double total = w.latency_total_seconds;
    auto share = [total](double component) {
      return total > 0.0 ? 100.0 * component / total : 0.0;
    };
    std::printf(
        "%-18s %8llu %8.3f %8.3f %8.3f %8.3f %8.3f %7.1f %7.1f %7.1f "
        "%7.1f %7.1f\n",
        points[i].label.c_str(), static_cast<unsigned long long>(w.committed),
        w.latency.Percentile(50) / 1e3, w.latency.Percentile(90) / 1e3,
        w.latency.Percentile(99) / 1e3, w.latency.Percentile(99.9) / 1e3,
        w.latency.max() / 1e3, share(w.stall_quiesce_seconds),
        share(w.stall_ckpt_lock_seconds), share(w.backoff_color_seconds),
        share(w.backoff_lock_seconds), share(w.queue_seconds));
    if (!AttributionConsistent(w)) {
      runner->NoteFailure(
          points[i].label.c_str(),
          InternalError(StringPrintf(
              "latency attribution broken: causes sum to %.9f but "
              "latency_total=%.9f",
              w.stall_quiesce_seconds + w.stall_ckpt_lock_seconds +
                  w.stall_recovery_wait_seconds + w.backoff_color_seconds +
                  w.backoff_lock_seconds + w.queue_seconds,
              total)),
          sidecar);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) {
  mmdb::bench::BenchWallClock wall;
  std::size_t jobs = mmdb::bench::ParseJobs(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  mmdb::MetricsSidecar sidecar("fig_interference");
  mmdb::bench::SweepRunner runner(jobs);
  mmdb::bench::MeasuredSeries(quick ? 0.5 : 2.0, &runner, &sidecar);
  wall.Report("fig_interference", jobs, &sidecar);
  sidecar.Write();
  return runner.AnyFailed() ? 1 : 0;
}
