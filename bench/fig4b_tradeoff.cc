// Figure 4b - Processor Overhead / Recovery Time Trade-off.
//
// Sweeping the checkpoint duration for 2CCOPY and COUCOPY traces a curve
// through (recovery time, overhead) space: longer durations buy lower
// overhead at the price of longer recovery. Doubling the backup bandwidth
// (40 disks instead of 20) extends the curves left (smaller feasible
// durations) and benefits 2CCOPY far more than COUCOPY, because a shorter
// active sweep means fewer two-color restarts.

#include <cstdio>

#include "bench/figure_util.h"

namespace mmdb {
namespace bench {
namespace {

constexpr double kMultipliers[] = {1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 8.0};

void AnalyticSeries() {
  PrintHeader("Figure 4b (analytic, paper scale)",
              "overhead vs recovery as the checkpoint duration varies");
  for (int disks : {20, 40}) {
    for (Algorithm a : {Algorithm::kTwoColorCopy, Algorithm::kCouCopy}) {
      ModelInputs base;
      base.params = SystemParams::PaperDefaults();
      base.params.disk.num_disks = disks;
      base.algorithm = a;
      base.mode = CheckpointMode::kPartial;
      double d_min = Evaluate(base).min_interval;
      std::printf("\n%s, %d disks (D_min=%.2fs)\n",
                  std::string(AlgorithmName(a)).c_str(), disks, d_min);
      std::printf("  %10s %12s %12s %8s\n", "duration_s", "recovery_s",
                  "overhead/txn", "reruns");
      for (double m : kMultipliers) {
        ModelInputs in = base;
        in.checkpoint_interval = m * d_min;
        ModelOutputs out = Evaluate(in);
        std::printf("  %10.2f %12.2f %12.1f %8.3f\n", out.interval,
                    out.recovery_seconds, out.overhead_per_txn,
                    out.expected_reruns);
      }
    }
  }
}

void MeasuredSeries(SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Figure 4b (measured, engine at 1 Mword scale)",
              "three duration points per algorithm, 20 disks");
  const Algorithm algorithms[] = {Algorithm::kTwoColorCopy,
                                  Algorithm::kCouCopy};
  const double intervals[] = {0.0, 1.0, 2.0};
  std::vector<SweepPoint> points;
  for (Algorithm a : algorithms) {
    for (double interval : intervals) {
      points.push_back(SweepPoint{
          std::string(AlgorithmName(a)) + "/interval=" +
              std::to_string(interval),
          [a, interval] {
            EngineOptions opt =
                MeasuredOptions(a, CheckpointMode::kPartial, false);
            opt.checkpoint_interval = interval;
            return MeasureEngine(opt, /*seconds=*/4.0);
          }});
    }
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  std::size_t i = 0;
  for (Algorithm a : algorithms) {
    std::printf("\n%s\n", std::string(AlgorithmName(a)).c_str());
    std::printf("  %12s %12s %12s %9s\n", "interval_s", "recovery_s",
                "overhead/txn", "restarts");
    for (double interval : intervals) {
      (void)interval;
      const StatusOr<MeasuredPoint>& point = results[i++];
      if (!point.ok()) {
        std::printf("  %12s\n", "ERR");
        continue;
      }
      std::printf("  %12.2f %12.3f %12.1f %9llu\n",
                  point->workload.avg_checkpoint_interval,
                  point->recovery.total_seconds,
                  point->workload.overhead_per_txn,
                  static_cast<unsigned long long>(
                      point->workload.color_restarts));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) {
  mmdb::bench::BenchWallClock wall;
  std::size_t jobs = mmdb::bench::ParseJobs(argc, argv);
  mmdb::bench::AnalyticSeries();
  mmdb::MetricsSidecar sidecar("fig4b");
  mmdb::bench::SweepRunner runner(jobs);
  mmdb::bench::MeasuredSeries(&runner, &sidecar);
  runner.ReportValidation(&sidecar);
  wall.Report("fig4b", jobs, &sidecar);
  sidecar.Write();
  return runner.AnyFailed() ? 1 : 0;
}
