// recovery_bench: wall-clock scaling of the parallel recovery pipeline
// (DESIGN.md §14) across --recovery-threads 1/2/4/8 at two database
// sizes.
//
// Every point runs the same deterministic history — workload, crash,
// recover — varying ONLY EngineOptions::recovery_threads, so the modeled
// (virtual-clock) columns on stdout must read bit-identically down each
// size block; the bench itself exits nonzero if they do not. What the
// thread count is allowed to change is real wall time, which is reported
// on stderr and in the sidecar's "recovery.wall" blocks (stripped from
// every determinism comparison by IsWallClockField).
//
// Each size block also carries an "<size>/instant" row (DESIGN.md §19):
// the same crash restarted with EngineOptions::instant_recovery, a probe
// workload served against the half-recovered store, then DrainRecovery().
// Its drained stats feed the same modeled-identity gate — instant
// recovery must land on the blocking rows bit-for-bit — and it fills the
// availability columns: t_first_s (time to first transaction), t_full_s
// (time to full recovery; blocking rows print total_s for both) and the
// p99 per-transaction recovery-latch wait in ms. On the large config the
// bench additionally fails unless t_first_s <= 10% of t_full_s.
//
//   recovery_bench [--jobs=N] [--quick]
//
// --quick: small size and threads {1,2} only — the TSan smoke
// configuration (full-size points under TSan are 10x slower and add no
// new interleavings). Honest speedups want --jobs=1 so concurrent points
// don't steal each other's cores; the check.sh gate runs --jobs=2 and
// ignores wall fields.
//
// Baseline regeneration (the committed bench/baselines/recovery.json):
//   MMDB_TRACE_CAPACITY=64 MMDB_METRICS_SIDECAR=bench/baselines/recovery.json \
//       ./build/bench/recovery_bench --jobs=2 > /dev/null
// (MMDB_RECOVERY_THREADS must be UNSET: it would override every point's
// per-point thread count.)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/figure_util.h"
#include "core/engine.h"
#include "core/workload.h"
#include "env/env.h"
#include "obs/sidecar.h"
#include "parallel/parallel.h"

namespace mmdb {
namespace bench {
namespace {

struct SizeConfig {
  const char* name;
  uint64_t db_words;
  double workload_seconds;
};

struct RecoveryPoint {
  RecoveryStats stats;
  std::string metrics_json;
  double recover_wall = 0.0;  // real seconds around Engine::Recover()
  // Availability columns (virtual clock). Blocking recovery serves its
  // first transaction only when everything is back, so both equal
  // total_seconds there; the instant row reports the real split.
  double time_to_first_txn = 0.0;
  double time_to_full_recovery = 0.0;
  double recwait_p99_ms = 0.0;  // p99 per-txn recovery-latch wait, probe run
};

StatusOr<RecoveryPoint> MeasureRecovery(const SizeConfig& size,
                                        uint32_t threads, bool instant) {
  EngineOptions opt;
  opt.params.db.db_words = size.db_words;
  opt.recovery_threads = threads;
  opt.instant_recovery = instant;
  std::unique_ptr<Env> env = NewMemEnv();
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                        Engine::Open(opt, env.get()));
  // A complete checkpoint first, then a checkpoint-free workload: recovery
  // must reload the whole backup AND replay the whole workload suffix —
  // both pipeline stages carry real work. (Checkpoints mid-workload would
  // make the restore point depend on the size's sweep time.)
  MMDB_RETURN_IF_ERROR(engine->RunCheckpointToCompletion());
  WorkloadOptions wopt;
  wopt.duration = size.workload_seconds;
  wopt.run_checkpoints = false;
  WorkloadDriver driver(engine.get(), wopt);
  MMDB_RETURN_IF_ERROR(driver.Run().status());
  MMDB_RETURN_IF_ERROR(engine->FlushLog());
  MMDB_RETURN_IF_ERROR(engine->AdvanceTime(1.0));
  MMDB_RETURN_IF_ERROR(engine->Crash());
  RecoveryPoint point;
  auto start = std::chrono::steady_clock::now();
  MMDB_ASSIGN_OR_RETURN(point.stats, engine->Recover());
  std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  point.recover_wall = wall.count();
  if (engine->instant_recovery_enabled()) {
    point.time_to_first_txn = engine->time_to_first_txn();
    // Serve a probe workload against the half-recovered store: first
    // touches stall on the per-segment recovery latch (the sixth
    // attribution cause), everything else proceeds — exactly the instant-
    // restart service window the tentpole exists for.
    WorkloadOptions probe;
    probe.duration = size.workload_seconds / 4.0;
    probe.run_checkpoints = false;
    probe.seed = 43;
    WorkloadDriver probe_driver(engine.get(), probe);
    MMDB_RETURN_IF_ERROR(probe_driver.Run().status());
    MMDB_RETURN_IF_ERROR(engine->DrainRecovery());
    // The drained stats are the blocking-equivalence contract: Run() below
    // gates on them matching the t1 blocking row bit-for-bit.
    point.stats = engine->last_recovery();
    point.time_to_full_recovery = engine->time_to_full_recovery();
    if (engine->metrics() != nullptr) {
      point.recwait_p99_ms =
          engine->metrics()
              ->timer("workload.stall_recovery_wait_seconds")
              ->Snapshot()
              .Percentile(99) *
          1e3;
    }
  } else {
    point.time_to_first_txn = point.stats.total_seconds;
    point.time_to_full_recovery = point.stats.total_seconds;
  }
  point.metrics_json = engine->DumpMetricsJson();
  return point;
}

// True when the rows' modeled quantities differ anywhere — the
// parallel-equivalence contract a thread count must never break.
bool ModeledDiffers(const RecoveryStats& a, const RecoveryStats& b) {
  return a.checkpoint_id != b.checkpoint_id || a.copy != b.copy ||
         a.backup_read_seconds != b.backup_read_seconds ||
         a.log_read_seconds != b.log_read_seconds ||
         a.replay_cpu_seconds != b.replay_cpu_seconds ||
         a.total_seconds != b.total_seconds ||
         a.segments_loaded != b.segments_loaded ||
         a.segments_retried != b.segments_retried ||
         a.log_bytes_read != b.log_bytes_read ||
         a.records_scanned != b.records_scanned ||
         a.updates_applied != b.updates_applied ||
         a.txns_redone != b.txns_redone ||
         a.fell_back_to_older_copy != b.fell_back_to_older_copy;
}

int Run(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t jobs = ParseJobs(argc, argv);

  std::vector<SizeConfig> sizes = {
      {"small", 1ull << 20, 0.5},  // 128 segments, 4 MiB
      {"large", 1ull << 25, 1.0},  // 4096 segments, 128 MiB
  };
  std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
  if (quick) {
    sizes.resize(1);
    thread_counts = {1, 2};
  }

  MetricsSidecar sidecar("recovery");
  BenchWallClock bench_wall;
  SweepRunner runner(jobs);

  PrintHeader("recovery_bench",
              "parallel recovery: wall-clock scaling vs recovery_threads");
  std::printf("modeled columns are virtual-clock quantities and must be\n"
              "identical down each size block; wall seconds go to stderr\n");

  int rc = 0;
  for (const SizeConfig& size : sizes) {
    std::vector<std::function<StatusOr<RecoveryPoint>()>> tasks;
    std::vector<std::string> labels;
    for (uint32_t t : thread_counts) {
      labels.push_back(std::string(size.name) + "/t" + std::to_string(t));
      tasks.push_back(
          [size, t]() { return MeasureRecovery(size, t, /*instant=*/false); });
    }
    // Instant-recovery twin of the t1 row: same history, on-demand restart
    // with a probe workload served mid-recovery, drained before its stats
    // are read — so its modeled columns must still match the block.
    labels.push_back(std::string(size.name) + "/instant");
    tasks.push_back(
        [size]() { return MeasureRecovery(size, 1, /*instant=*/true); });
    std::vector<StatusOr<RecoveryPoint>> results =
        RunSweep<RecoveryPoint>(jobs, tasks);

    std::printf("\n%s (%llu words, %.2fs workload)\n", size.name,
                static_cast<unsigned long long>(size.db_words),
                size.workload_seconds);
    std::printf("%-10s %12s %12s %12s %12s %10s %10s %9s %12s %12s %11s\n",
                "point", "total_s", "backup_s", "log_s", "replay_s",
                "segments", "updates", "txns", "t_first_s", "t_full_s",
                "recwait_p99");
    const RecoveryPoint* first_ok = nullptr;
    double t1_wall = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const bool is_instant = i >= thread_counts.size();
      if (!results[i].ok()) {
        runner.NoteFailure(labels[i].c_str(), results[i].status(), &sidecar);
        std::printf("%-10s %12s\n", labels[i].c_str(), "ERR");
        continue;
      }
      const RecoveryPoint& p = *results[i];
      const RecoveryStats& s = p.stats;
      std::printf("%-10s %12.6f %12.6f %12.6f %12.6f %10llu %10llu %9llu "
                  "%12.6f %12.6f %11.4f\n",
                  labels[i].c_str(), s.total_seconds, s.backup_read_seconds,
                  s.log_read_seconds, s.replay_cpu_seconds,
                  static_cast<unsigned long long>(s.segments_loaded),
                  static_cast<unsigned long long>(s.updates_applied),
                  static_cast<unsigned long long>(s.txns_redone),
                  p.time_to_first_txn, p.time_to_full_recovery,
                  p.recwait_p99_ms);
      sidecar.Add(labels[i], std::string(p.metrics_json), std::string());
      if (first_ok == nullptr) {
        first_ok = &p;
      } else if (ModeledDiffers(first_ok->stats, s)) {
        std::fprintf(stderr,
                     "FAIL: %s modeled stats differ from the first row — "
                     "%s broke determinism\n",
                     labels[i].c_str(),
                     is_instant ? "instant recovery (drained)"
                                : "parallel recovery");
        rc = 1;
      }
      if (is_instant) {
        // The availability contract on the large config: the engine is
        // serving transactions within 10% of the full-recovery window.
        if (std::strcmp(size.name, "large") == 0 &&
            p.time_to_first_txn > 0.1 * p.time_to_full_recovery) {
          std::fprintf(stderr,
                       "FAIL: %s time_to_first_txn=%.6fs exceeds 10%% of "
                       "time_to_full_recovery=%.6fs\n",
                       labels[i].c_str(), p.time_to_first_txn,
                       p.time_to_full_recovery);
          rc = 1;
        }
        std::fprintf(stderr,
                     "%s: recover_wall=%.4fs t_first=%.6fs t_full=%.6fs\n",
                     labels[i].c_str(), p.recover_wall, p.time_to_first_txn,
                     p.time_to_full_recovery);
        continue;
      }
      if (thread_counts[i] == 1) t1_wall = p.recover_wall;
      std::fprintf(stderr,
                   "%s: recover_wall=%.4fs (backup=%.4fs scan=%.4fs "
                   "replay=%.4fs threads=%u)%s\n",
                   labels[i].c_str(), p.recover_wall,
                   s.backup_read_wall_seconds, s.log_scan_wall_seconds,
                   s.replay_wall_seconds, s.threads_used,
                   t1_wall > 0.0 && thread_counts[i] != 1
                       ? (" speedup_vs_t1=" +
                          std::to_string(t1_wall / p.recover_wall))
                             .c_str()
                       : "");
    }
  }

  runner.ReportValidation(&sidecar);
  bench_wall.Report("recovery_bench", jobs, &sidecar);
  sidecar.Write();
  if (runner.AnyFailed()) rc = 1;
  return rc;
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) { return mmdb::bench::Run(argc, argv); }
