// Modern consistent-snapshot algorithms vs the paper's six.
//
// Sweeps all nine algorithms (the 1989 six plus ZIGZAG, PINGPONG and
// HOURGLASS) in both checkpoint modes, measuring per-transaction overhead
// and post-crash recovery time from the executable engine. The analytic
// series covers every algorithm the reconstructed model supports;
// HOURGLASS is model-exempt (no closed form for its first-touch record
// footprint), so it appears only in the measured table and its sidecar
// entries carry no validation block.
//
// Expected shape: the modern algorithms match COU's overhead without the
// copy-on-update stall (ZIGZAG), trade memory for wait-free updates
// (PINGPONG: double-write on every update, cheapest sweep), or pay only
// for records actually touched mid-sweep (HOURGLASS). Recovery times stay
// in the same band as the six — the backup format is shared.
//
//   --quick    shorter workload per point (sanitizer lanes)
//   --jobs=N   sweep width (stdout and sidecar are byte-identical at any N)

#include <cstdio>
#include <cstring>

#include "bench/figure_util.h"

namespace mmdb {
namespace bench {
namespace {

void AnalyticSeries() {
  PrintHeader("Modern algorithms (analytic, paper scale)",
              "overhead & recovery, minimum checkpoint duration");
  SystemParams paper = SystemParams::PaperDefaults();
  PrintParams(paper);
  std::printf("%-10s %12s %10s %10s %8s %10s %12s\n", "algorithm",
              "overhead/txn", "sync", "async", "reruns", "recovery_s",
              "ckpt_dur_s");
  for (Algorithm a : kAllAlgorithms) {
    if (!ModelSupportsAlgorithm(a)) continue;  // HOURGLASS: measured only
    ModelInputs in;
    in.params = paper;
    in.algorithm = a;
    in.mode = CheckpointMode::kPartial;
    in.stable_log_tail = a == Algorithm::kFastFuzzy;
    ModelOutputs out = Evaluate(in);
    std::printf("%-10s %12.1f %10.1f %10.1f %8.3f %10.2f %12.2f\n",
                std::string(AlgorithmName(a)).c_str(), out.overhead_per_txn,
                out.sync_per_txn, out.async_per_txn, out.expected_reruns,
                out.recovery_seconds, out.interval);
  }
}

void MeasuredSeries(double seconds, SweepRunner* runner,
                    MetricsSidecar* sidecar) {
  PrintHeader("Modern algorithms (measured, engine at 1 Mword scale)",
              "overhead & recovery from the executable engine, both modes");
  std::printf("%-18s %12s %10s %10s %9s %10s %8s\n", "algorithm/mode",
              "overhead/txn", "sync", "async", "restarts", "recovery_s",
              "commits");
  std::vector<SweepPoint> points;
  for (Algorithm a : kAllAlgorithms) {
    for (CheckpointMode mode :
         {CheckpointMode::kPartial, CheckpointMode::kFull}) {
      const char* mode_name =
          mode == CheckpointMode::kPartial ? "partial" : "full";
      points.push_back(SweepPoint{
          std::string(AlgorithmName(a)) + "/" + mode_name,
          [a, mode, seconds] {
            EngineOptions opt = MeasuredOptions(
                a, mode, /*stable=*/a == Algorithm::kFastFuzzy);
            return MeasureEngine(opt, seconds);
          }});
    }
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("%-18s %12s\n", points[i].label.c_str(), "ERR");
      continue;
    }
    const MeasuredPoint& point = *results[i];
    const WorkloadResult& w = point.workload;
    std::printf("%-18s %12.1f %10.1f %10.1f %9llu %10.3f %8llu\n",
                points[i].label.c_str(), w.overhead_per_txn, w.sync_per_txn,
                w.async_per_txn,
                static_cast<unsigned long long>(w.color_restarts),
                point.recovery.total_seconds,
                static_cast<unsigned long long>(w.committed));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) {
  mmdb::bench::BenchWallClock wall;
  std::size_t jobs = mmdb::bench::ParseJobs(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  mmdb::bench::AnalyticSeries();
  mmdb::MetricsSidecar sidecar("fig_modern");
  mmdb::bench::SweepRunner runner(jobs);
  mmdb::bench::MeasuredSeries(quick ? 0.5 : 2.0, &runner, &sidecar);
  runner.ReportValidation(&sidecar);
  wall.Report("fig_modern", jobs, &sidecar);
  sidecar.Write();
  return runner.AnyFailed() ? 1 : 0;
}
