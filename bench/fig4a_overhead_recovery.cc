// Figure 4a - Processor Overhead and Recovery Time.
//
// The paper's headline comparison: per-transaction checkpoint overhead and
// recovery time for each algorithm, with checkpoints run as fast as
// possible (no delay between them) and partial (dirty-bit) mode. Expected
// shape: the two-color algorithms cost several times the others (dominated
// by transaction reruns); COU matches fuzzy; recovery times are nearly
// identical, two-color very slightly longer.

#include <cstdio>

#include "bench/figure_util.h"

namespace mmdb {
namespace bench {
namespace {

void AnalyticSeries() {
  PrintHeader("Figure 4a (analytic, paper scale)",
              "overhead & recovery, minimum checkpoint duration");
  SystemParams paper = SystemParams::PaperDefaults();
  PrintParams(paper);
  std::printf("%-10s %12s %10s %10s %8s %10s %12s\n", "algorithm",
              "overhead/txn", "sync", "async", "reruns", "recovery_s",
              "ckpt_dur_s");
  for (Algorithm a : MainAlgorithms()) {
    ModelInputs in;
    in.params = paper;
    in.algorithm = a;
    in.mode = CheckpointMode::kPartial;
    ModelOutputs out = Evaluate(in);
    std::printf("%-10s %12.1f %10.1f %10.1f %8.3f %10.2f %12.2f\n",
                std::string(AlgorithmName(a)).c_str(), out.overhead_per_txn,
                out.sync_per_txn, out.async_per_txn, out.expected_reruns,
                out.recovery_seconds, out.interval);
  }
}

void MeasuredSeries(SweepRunner* runner, MetricsSidecar* sidecar) {
  PrintHeader("Figure 4a (measured, engine at 1 Mword scale)",
              "overhead & recovery from the executable engine");
  std::printf("%-10s %12s %10s %10s %9s %10s %12s %8s\n", "algorithm",
              "overhead/txn", "sync", "async", "restarts", "recovery_s",
              "ckpt_dur_s", "commits");
  std::vector<SweepPoint> points;
  for (Algorithm a : MainAlgorithms()) {
    points.push_back(SweepPoint{
        std::string(AlgorithmName(a)), [a] {
          EngineOptions opt =
              MeasuredOptions(a, CheckpointMode::kPartial, /*stable=*/false);
          return MeasureEngine(opt, /*seconds=*/2.0);
        }});
  }
  std::vector<StatusOr<MeasuredPoint>> results =
      runner->Run(points, sidecar);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("%-10s %12s\n", points[i].label.c_str(), "ERR");
      continue;
    }
    const MeasuredPoint& point = *results[i];
    const WorkloadResult& w = point.workload;
    std::printf("%-10s %12.1f %10.1f %10.1f %9llu %10.3f %12.3f %8llu\n",
                points[i].label.c_str(), w.overhead_per_txn, w.sync_per_txn,
                w.async_per_txn,
                static_cast<unsigned long long>(w.color_restarts),
                point.recovery.total_seconds, w.avg_checkpoint_duration,
                static_cast<unsigned long long>(w.committed));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

int main(int argc, char** argv) {
  mmdb::bench::BenchWallClock wall;
  std::size_t jobs = mmdb::bench::ParseJobs(argc, argv);
  mmdb::bench::AnalyticSeries();
  mmdb::MetricsSidecar sidecar("fig4a");
  mmdb::bench::SweepRunner runner(jobs);
  mmdb::bench::MeasuredSeries(&runner, &sidecar);
  runner.ReportValidation(&sidecar);
  wall.Report("fig4a", jobs, &sidecar);
  sidecar.Write();
  return runner.AnyFailed() ? 1 : 0;
}
