#!/usr/bin/env bash
# Builds and tests the tree's pre-merge configurations:
#
#   tools/check.sh            # plain + sanitize + tsan
#   tools/check.sh plain      # just the plain build
#   tools/check.sh sanitize   # just the ASan+UBSan build
#   tools/check.sh tsan       # just the TSan build (--tsan also accepted)
#
# Build trees live in build/ (plain), build-sanitize/, and build-tsan/.
# The TSan gate builds only the parallel subsystem's test plus one figure
# bench and runs the bench at --jobs=2 as a threaded smoke; the engines
# themselves are single-threaded, so the full suite under TSan would just
# re-test serial code at 10x the cost.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
what=${1:-all}
what=${what#--}

run_config() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_tsan() {
  cmake -B build-tsan -S . -DMMDB_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" \
      --target parallel_test fig4a_overhead_recovery
  ctest --test-dir build-tsan --output-on-failure -R '^parallel_test$'
  echo "check.sh: tsan bench smoke (fig4a --jobs=2)"
  MMDB_METRICS_SIDECAR=build-tsan/fig4a_tsan_smoke.json \
      ./build-tsan/bench/fig4a_overhead_recovery --jobs=2 > /dev/null
}

case "$what" in
  plain)
    run_config build
    ;;
  sanitize)
    run_config build-sanitize -DMMDB_SANITIZE=address,undefined \
        -DMMDB_WERROR_UNUSED_RESULT=ON
    ;;
  tsan)
    run_tsan
    ;;
  all)
    run_config build
    run_config build-sanitize -DMMDB_SANITIZE=address,undefined \
        -DMMDB_WERROR_UNUSED_RESULT=ON
    run_tsan
    ;;
  *)
    echo "usage: $0 [plain|sanitize|tsan|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested configurations passed"
