#!/usr/bin/env bash
# Builds and tests the tree's pre-merge configurations:
#
#   tools/check.sh            # plain + sanitize + tsan + bench-smoke
#   tools/check.sh plain      # just the plain build
#   tools/check.sh sanitize   # just the ASan+UBSan build
#   tools/check.sh tsan       # just the TSan build (--tsan also accepted)
#   tools/check.sh bench-smoke  # fig4a vs the committed baseline
#
# Build trees live in build/ (plain), build-sanitize/, and build-tsan/.
# The TSan gate builds only the parallel subsystem's test plus one figure
# bench and runs the bench at --jobs=2 as a threaded smoke; the engines
# themselves are single-threaded, so the full suite under TSan would just
# re-test serial code at 10x the cost.
#
# The bench-smoke gate replays fig4a at --jobs=2 with a shrunken trace
# ring (MMDB_TRACE_CAPACITY=64 — the capacity the committed baseline was
# recorded at; ring drop counts depend on it) and diffs the fresh sidecar
# against bench/baselines/fig4a.json with mmdb_bench_diff: deterministic
# leaves must match exactly, timing leaves within 5%. Regenerate the
# baseline after an intentional engine/model change with
#   MMDB_TRACE_CAPACITY=64 MMDB_METRICS_SIDECAR=bench/baselines/fig4a.json \
#       ./build/bench/fig4a_overhead_recovery --jobs=2 > /dev/null
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
what=${1:-all}
what=${what#--}

run_config() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_tsan() {
  cmake -B build-tsan -S . -DMMDB_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" \
      --target parallel_test fig4a_overhead_recovery
  ctest --test-dir build-tsan --output-on-failure -R '^parallel_test$'
  echo "check.sh: tsan bench smoke (fig4a --jobs=2)"
  MMDB_METRICS_SIDECAR=build-tsan/fig4a_tsan_smoke.json \
      ./build-tsan/bench/fig4a_overhead_recovery --jobs=2 > /dev/null
}

run_bench_smoke() {
  cmake -B build -S .
  cmake --build build -j "$jobs" \
      --target fig4a_overhead_recovery mmdb_bench_diff
  echo "check.sh: bench smoke (fig4a --jobs=2 vs bench/baselines/fig4a.json)"
  MMDB_TRACE_CAPACITY=64 MMDB_METRICS_SIDECAR=build/fig4a_bench_smoke.json \
      ./build/bench/fig4a_overhead_recovery --jobs=2 > /dev/null
  ./build/tools/mmdb_bench_diff bench/baselines/fig4a.json \
      build/fig4a_bench_smoke.json
}

case "$what" in
  plain)
    run_config build
    ;;
  sanitize)
    run_config build-sanitize -DMMDB_SANITIZE=address,undefined \
        -DMMDB_WERROR_UNUSED_RESULT=ON
    ;;
  tsan)
    run_tsan
    ;;
  bench-smoke)
    run_bench_smoke
    ;;
  all)
    run_config build
    run_config build-sanitize -DMMDB_SANITIZE=address,undefined \
        -DMMDB_WERROR_UNUSED_RESULT=ON
    run_tsan
    run_bench_smoke
    ;;
  *)
    echo "usage: $0 [plain|sanitize|tsan|bench-smoke|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested configurations passed"
