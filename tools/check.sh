#!/usr/bin/env bash
# Builds and tests the tree's pre-merge configurations:
#
#   tools/check.sh            # plain + sanitize + tsan + bench-smoke
#   tools/check.sh plain      # just the plain build
#   tools/check.sh sanitize   # just the ASan+UBSan build
#   tools/check.sh tsan       # just the TSan build (--tsan also accepted)
#   tools/check.sh bench-smoke  # fig4a vs the committed baseline
#
# Build trees live in build/ (plain), build-sanitize/, and build-tsan/.
# The TSan gate builds only the parallel subsystem's tests plus the
# figure benches and runs them at --jobs=2 as a threaded smoke; the
# engines themselves are single-threaded, so the full suite under TSan
# would just re-test serial code at 10x the cost. The one exception is
# the MMDB_SHARDS=4 lane: the engine/txn/recovery/torture suites re-run
# under TSan with every engine forced to four shards, exercising the
# striped lock table, the N WAL stream files, and merged-stream recovery
# in the partitioned configuration (DESIGN.md §17).
#
# The sanitize full suite and the MMDB_SHARDS=4 tsan lane both run with
# MMDB_AUDIT_EXPORT_DIR set, so every crash/recovery test exports its
# provenance journal and engine dump; each pair is then re-verified with
# the mmdb_audit binary (DESIGN.md §18), keeping the CLI verifier honest
# against the in-process one.
#
# The sanitize gate also re-runs the crash/recovery suites with
# MMDB_INSTANT_RECOVERY=1, forcing every restart through the on-demand
# instant-recovery path (DESIGN.md §19) under ASan+UBSan, and smokes
# recovery_bench --quick in that lane (its modeled self-gate proves the
# drained instant state bit-identical to blocking recovery).
#
# The bench-smoke gate replays fig4a, fig_modern, fig_interference,
# fig_shard_scaling --quick, and recovery_bench at --jobs=2 with a
# shrunken trace ring
# (MMDB_TRACE_CAPACITY=64 — the capacity the committed baselines were
# recorded at; ring drop counts depend on it) and diffs each fresh
# sidecar against bench/baselines/*.json with mmdb_bench_diff:
# deterministic leaves must match exactly, timing leaves within 5%.
# fig4a, fig_modern, and fig_shard_scaling additionally pin
# MMDB_RECOVERY_THREADS=2 — their engines use the automatic
# (hardware-dependent) recovery width, and the recovery fan-out trace
# event records the thread count, so the baseline must be replayed at
# the width it was recorded at. recovery_bench is the opposite: every
# point sets its own recovery_threads, so the variable must be UNSET
# there (it would override all of them). fig_interference never
# recovers, so the variable is irrelevant to it. fig_shard_scaling
# unsets MMDB_SHARDS itself (the shard count is its swept axis).
# Regenerate the baselines after an intentional engine/model change with
#   MMDB_TRACE_CAPACITY=64 MMDB_RECOVERY_THREADS=2 \
#       MMDB_METRICS_SIDECAR=bench/baselines/fig4a.json \
#       ./build/bench/fig4a_overhead_recovery --jobs=2 > /dev/null
#   MMDB_TRACE_CAPACITY=64 MMDB_RECOVERY_THREADS=2 \
#       MMDB_METRICS_SIDECAR=bench/baselines/modern.json \
#       ./build/bench/fig_modern --jobs=2 > /dev/null
#   MMDB_TRACE_CAPACITY=64 \
#       MMDB_METRICS_SIDECAR=bench/baselines/interference.json \
#       ./build/bench/fig_interference --jobs=2 > /dev/null
#   MMDB_TRACE_CAPACITY=64 MMDB_METRICS_SIDECAR=bench/baselines/recovery.json \
#       ./build/bench/recovery_bench --jobs=2 > /dev/null
#   MMDB_TRACE_CAPACITY=64 MMDB_RECOVERY_THREADS=2 \
#       MMDB_METRICS_SIDECAR=bench/baselines/shard.json \
#       ./build/bench/fig_shard_scaling --quick --jobs=2 > /dev/null
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
what=${1:-all}
what=${what#--}

run_config() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

# Re-verifies every (journal, dump) pair the test suites exported via
# MMDB_AUDIT_EXPORT_DIR with the mmdb_audit binary from $1, so the
# in-process verifier and the CLI can never drift apart (DESIGN.md §18).
verify_audit_exports() {
  local tree=$1 dir=$2 n=0 d
  for d in "$dir"/*/; do
    [ -e "$d/audit.log" ] || continue
    "./$tree/tools/mmdb_audit" verify "$d/audit.log" --dump="$d/dump.json"
    n=$((n + 1))
  done
  if [ "$n" -eq 0 ]; then
    echo "check.sh: no audit journals exported under $dir" >&2
    return 1
  fi
  echo "check.sh: mmdb_audit verified $n exported journals from $dir"
}

run_sanitize() {
  cmake -B build-sanitize -S . -DMMDB_SANITIZE=address,undefined \
      -DMMDB_WERROR_UNUSED_RESULT=ON
  cmake --build build-sanitize -j "$jobs"
  rm -rf build-sanitize/audit-export
  MMDB_AUDIT_EXPORT_DIR="$PWD/build-sanitize/audit-export" \
      ctest --test-dir build-sanitize --output-on-failure -j "$jobs"
  verify_audit_exports build-sanitize build-sanitize/audit-export
  echo "check.sh: sanitize instant-recovery lane (MMDB_INSTANT_RECOVERY=1)"
  MMDB_INSTANT_RECOVERY=1 \
      ctest --test-dir build-sanitize --output-on-failure -j "$jobs" \
      -R '^(recovery_test|recovery_parallel_test|restart_test|consistency_test|sweep_determinism_test|fault_injection_test|audit_test|obs_e2e_test)$'
  echo "check.sh: sanitize bench smoke (recovery_bench --quick --jobs=2, instant lane)"
  env -u MMDB_RECOVERY_THREADS MMDB_INSTANT_RECOVERY=1 \
      MMDB_METRICS_SIDECAR=build-sanitize/recovery_instant_asan_smoke.json \
      ./build-sanitize/bench/recovery_bench --quick --jobs=2 > /dev/null
  echo "check.sh: sanitize bench smoke (fig_modern --quick --jobs=2)"
  MMDB_RECOVERY_THREADS=2 \
      MMDB_METRICS_SIDECAR=build-sanitize/fig_modern_asan_smoke.json \
      ./build-sanitize/bench/fig_modern --quick --jobs=2 > /dev/null
  echo "check.sh: sanitize bench smoke (fig_interference --quick --jobs=2)"
  MMDB_METRICS_SIDECAR=build-sanitize/fig_interference_asan_smoke.json \
      ./build-sanitize/bench/fig_interference --quick --jobs=2 > /dev/null
}

run_tsan() {
  cmake -B build-tsan -S . -DMMDB_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" \
      --target parallel_test recovery_parallel_test engine_test txn_test \
      recovery_test consistency_test restart_test torture_test mmdb_audit \
      fig4a_overhead_recovery \
      fig_modern fig_interference fig_shard_scaling recovery_bench
  ctest --test-dir build-tsan --output-on-failure \
      -R '^(parallel_test|recovery_parallel_test)$'
  echo "check.sh: tsan shard lane (MMDB_SHARDS=4 engine/txn/recovery suites)"
  rm -rf build-tsan/audit-export
  MMDB_SHARDS=4 MMDB_AUDIT_EXPORT_DIR="$PWD/build-tsan/audit-export" \
      ctest --test-dir build-tsan --output-on-failure \
      -R '^(engine_test|txn_test|recovery_test|recovery_parallel_test|consistency_test|restart_test|torture_test)$'
  verify_audit_exports build-tsan build-tsan/audit-export
  echo "check.sh: tsan bench smoke (fig_shard_scaling --quick --jobs=2)"
  MMDB_RECOVERY_THREADS=2 \
      MMDB_METRICS_SIDECAR=build-tsan/fig_shard_tsan_smoke.json \
      ./build-tsan/bench/fig_shard_scaling --quick --jobs=2 > /dev/null
  echo "check.sh: tsan bench smoke (fig4a --jobs=2)"
  MMDB_RECOVERY_THREADS=2 \
      MMDB_METRICS_SIDECAR=build-tsan/fig4a_tsan_smoke.json \
      ./build-tsan/bench/fig4a_overhead_recovery --jobs=2 > /dev/null
  echo "check.sh: tsan bench smoke (fig_modern --quick --jobs=2)"
  MMDB_RECOVERY_THREADS=2 \
      MMDB_METRICS_SIDECAR=build-tsan/fig_modern_tsan_smoke.json \
      ./build-tsan/bench/fig_modern --quick --jobs=2 > /dev/null
  echo "check.sh: tsan bench smoke (fig_interference --quick --jobs=2)"
  MMDB_METRICS_SIDECAR=build-tsan/fig_interference_tsan_smoke.json \
      ./build-tsan/bench/fig_interference --quick --jobs=2 > /dev/null
  echo "check.sh: tsan bench smoke (recovery_bench --quick --jobs=2)"
  env -u MMDB_RECOVERY_THREADS \
      MMDB_METRICS_SIDECAR=build-tsan/recovery_tsan_smoke.json \
      ./build-tsan/bench/recovery_bench --quick --jobs=2 > /dev/null
}

run_bench_smoke() {
  cmake -B build -S .
  cmake --build build -j "$jobs" \
      --target fig4a_overhead_recovery fig_modern fig_interference \
      fig_shard_scaling recovery_bench mmdb_bench_diff
  echo "check.sh: bench smoke (fig4a --jobs=2 vs bench/baselines/fig4a.json)"
  MMDB_TRACE_CAPACITY=64 MMDB_RECOVERY_THREADS=2 \
      MMDB_METRICS_SIDECAR=build/fig4a_bench_smoke.json \
      ./build/bench/fig4a_overhead_recovery --jobs=2 > /dev/null
  ./build/tools/mmdb_bench_diff bench/baselines/fig4a.json \
      build/fig4a_bench_smoke.json
  echo "check.sh: bench smoke (fig_modern --jobs=2 vs bench/baselines/modern.json)"
  MMDB_TRACE_CAPACITY=64 MMDB_RECOVERY_THREADS=2 \
      MMDB_METRICS_SIDECAR=build/fig_modern_bench_smoke.json \
      ./build/bench/fig_modern --jobs=2 > /dev/null
  ./build/tools/mmdb_bench_diff bench/baselines/modern.json \
      build/fig_modern_bench_smoke.json
  echo "check.sh: bench smoke (fig_interference --jobs=2 vs bench/baselines/interference.json)"
  MMDB_TRACE_CAPACITY=64 \
      MMDB_METRICS_SIDECAR=build/fig_interference_bench_smoke.json \
      ./build/bench/fig_interference --jobs=2 > /dev/null
  ./build/tools/mmdb_bench_diff bench/baselines/interference.json \
      build/fig_interference_bench_smoke.json
  echo "check.sh: bench smoke (recovery_bench --jobs=2 vs bench/baselines/recovery.json)"
  env -u MMDB_RECOVERY_THREADS MMDB_TRACE_CAPACITY=64 \
      MMDB_METRICS_SIDECAR=build/recovery_bench_smoke.json \
      ./build/bench/recovery_bench --jobs=2 > /dev/null
  ./build/tools/mmdb_bench_diff bench/baselines/recovery.json \
      build/recovery_bench_smoke.json
  echo "check.sh: bench smoke (fig_shard_scaling --quick --jobs=2 vs bench/baselines/shard.json)"
  MMDB_TRACE_CAPACITY=64 MMDB_RECOVERY_THREADS=2 \
      MMDB_METRICS_SIDECAR=build/fig_shard_bench_smoke.json \
      ./build/bench/fig_shard_scaling --quick --jobs=2 > /dev/null
  ./build/tools/mmdb_bench_diff bench/baselines/shard.json \
      build/fig_shard_bench_smoke.json
}

case "$what" in
  plain)
    run_config build
    ;;
  sanitize)
    run_sanitize
    ;;
  tsan)
    run_tsan
    ;;
  bench-smoke)
    run_bench_smoke
    ;;
  all)
    run_config build
    run_sanitize
    run_tsan
    run_bench_smoke
    ;;
  *)
    echo "usage: $0 [plain|sanitize|tsan|bench-smoke|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested configurations passed"
