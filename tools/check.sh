#!/usr/bin/env bash
# Builds and tests the plain configuration and the ASan+UBSan
# configuration. This is the tree's pre-merge gate:
#
#   tools/check.sh            # both configurations
#   tools/check.sh plain      # just the plain build
#   tools/check.sh sanitize   # just the sanitized build
#
# Build trees live in build/ (plain) and build-sanitize/.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
what=${1:-all}

run_config() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

case "$what" in
  plain)
    run_config build
    ;;
  sanitize)
    run_config build-sanitize -DMMDB_SANITIZE=address,undefined \
        -DMMDB_WERROR_UNUSED_RESULT=ON
    ;;
  all)
    run_config build
    run_config build-sanitize -DMMDB_SANITIZE=address,undefined \
        -DMMDB_WERROR_UNUSED_RESULT=ON
    ;;
  *)
    echo "usage: $0 [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested configurations passed"
