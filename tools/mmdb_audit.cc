// mmdb_audit: inspect and verify the provenance journal (DESIGN.md §18).
//
//   mmdb_audit timeline <audit.log>
//       one line per journal event, in order
//   mmdb_audit explain --segment=S <audit.log>
//       where segment S's recovered bytes came from: the backup copy that
//       supplied it, the checkpoint chain that wrote that copy (including
//       aborted attempts), and the log frames replayed into it
//   mmdb_audit verify <audit.log> [--dump=<metrics.json>]
//       checks per-line CRCs, sequence contiguity, and the event-lifecycle
//       grammar; with --dump, cross-checks the journal's claims against the
//       engine's own account (Engine::DumpMetricsJson). Exits nonzero on
//       any divergence.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "env/env.h"
#include "obs/audit.h"
#include "util/json.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s timeline <audit.log>\n"
               "       %s explain --segment=S <audit.log>\n"
               "       %s verify <audit.log> [--dump=<metrics.json>]\n",
               argv0, argv0, argv0);
  return 2;
}

// Compact payload view: the line object minus the envelope members.
std::string PayloadString(const mmdb::AuditEntry& e) {
  mmdb::JsonWriter w;
  w.BeginObject();
  for (const auto& [key, value] : e.object.object_items()) {
    if (key == "seq" || key == "t" || key == "event" || key == "crc") {
      continue;
    }
    w.Key(key);
    w.RawValue(value.Dump());
  }
  w.EndObject();
  return w.TakeString();
}

int RunTimeline(const std::vector<mmdb::AuditEntry>& entries) {
  for (const mmdb::AuditEntry& e : entries) {
    std::printf("%6llu  %14.6f  %-18s %s\n",
                static_cast<unsigned long long>(e.seq), e.t, e.event.c_str(),
                PayloadString(e).c_str());
  }
  std::printf("%zu entries\n", entries.size());
  return 0;
}

int RunExplain(const std::vector<mmdb::AuditEntry>& entries,
               mmdb::SegmentId segment) {
  mmdb::StatusOr<mmdb::SegmentProvenance> p =
      mmdb::ExplainSegment(entries, segment);
  if (!p.ok()) {
    std::fprintf(stderr, "error: %s\n", p.status().ToString().c_str());
    return 1;
  }
  std::printf("segment %llu\n", static_cast<unsigned long long>(p->segment));
  if (p->lineage.checkpoint_id == 0) {
    std::printf("  restored from: nothing (cold start, empty image)\n");
  } else {
    std::printf("  restored from: checkpoint %llu, copy %u%s\n",
                static_cast<unsigned long long>(p->lineage.checkpoint_id),
                p->lineage.copy,
                p->lineage.retried
                    ? " (re-read from the older copy after a failure)"
                    : "");
  }
  std::printf("  recovered at:  t=%.6f\n", p->recovered_t);
  if (p->checkpoint_in_journal) {
    std::printf("  checkpoint:    %s, begin t=%.6f end t=%.6f",
                p->checkpoint_algorithm.c_str(), p->checkpoint_begin_t,
                p->checkpoint_end_t);
    if (p->checkpoint_aborted_attempts > 0) {
      std::printf(" (%llu aborted attempt%s before completion)",
                  static_cast<unsigned long long>(
                      p->checkpoint_aborted_attempts),
                  p->checkpoint_aborted_attempts == 1 ? "" : "s");
    }
    std::printf("\n");
  } else if (p->lineage.checkpoint_id != 0) {
    std::printf(
        "  checkpoint:    chain not in this journal (predates it or the "
        "journal was truncated)\n");
  }
  if (p->lineage.frames == 0) {
    std::printf("  replay:        no committed records touched it\n");
  } else {
    std::string streams;
    for (uint32_t s : p->lineage.streams) {
      if (!streams.empty()) streams += ",";
      streams += std::to_string(s);
    }
    std::printf("  replay:        %llu committed record%s, LSN %llu..%llu, "
                "stream%s [%s]\n",
                static_cast<unsigned long long>(p->lineage.frames),
                p->lineage.frames == 1 ? "" : "s",
                static_cast<unsigned long long>(p->lineage.first_lsn),
                static_cast<unsigned long long>(p->lineage.last_lsn),
                p->lineage.streams.size() == 1 ? "" : "s", streams.c_str());
  }
  return 0;
}

int RunVerify(const std::string& journal_text, const char* dump_path) {
  mmdb::JsonValue dump;
  const mmdb::JsonValue* dump_ptr = nullptr;
  if (dump_path != nullptr) {
    std::string dump_text;
    mmdb::Status read =
        mmdb::Env::Posix()->ReadFileToString(dump_path, &dump_text);
    if (!read.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", dump_path,
                   read.ToString().c_str());
      return 1;
    }
    mmdb::StatusOr<mmdb::JsonValue> parsed = mmdb::JsonValue::Parse(dump_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error parsing %s: %s\n", dump_path,
                   parsed.status().ToString().c_str());
      return 1;
    }
    dump = std::move(*parsed);
    dump_ptr = &dump;
  }
  mmdb::Status verdict = mmdb::VerifyAuditJournal(journal_text, dump_ptr);
  if (!verdict.ok()) {
    std::fprintf(stderr, "verify FAILED: %s\n", verdict.ToString().c_str());
    return 1;
  }
  std::printf("verify OK%s\n",
              dump_ptr != nullptr ? " (journal + engine cross-check)"
                                  : " (journal structure only)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string mode = argv[1];
  const char* journal_path = nullptr;
  const char* dump_path = nullptr;
  bool have_segment = false;
  uint64_t segment = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--segment=", 10) == 0) {
      segment = std::strtoull(argv[i] + 10, nullptr, 10);
      have_segment = true;
    } else if (std::strncmp(argv[i], "--dump=", 7) == 0) {
      dump_path = argv[i] + 7;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    } else if (journal_path == nullptr) {
      journal_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (journal_path == nullptr) return Usage(argv[0]);

  std::string journal_text;
  mmdb::Status read =
      mmdb::Env::Posix()->ReadFileToString(journal_path, &journal_text);
  if (!read.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", journal_path,
                 read.ToString().c_str());
    return 1;
  }

  if (mode == "verify") return RunVerify(journal_text, dump_path);

  mmdb::StatusOr<std::vector<mmdb::AuditEntry>> entries =
      mmdb::ParseAuditJournal(journal_text);
  if (!entries.ok()) {
    std::fprintf(stderr, "error: %s\n", entries.status().ToString().c_str());
    return 1;
  }
  if (mode == "timeline") return RunTimeline(*entries);
  if (mode == "explain") {
    if (!have_segment) {
      std::fprintf(stderr, "explain requires --segment=S\n");
      return 2;
    }
    return RunExplain(*entries, segment);
  }
  return Usage(argv[0]);
}
