// mmdb_trace_report: convert an engine metrics document into Chrome
// trace_event JSON, loadable in ui.perfetto.dev or chrome://tracing.
//
// Input is JSON produced by Engine::DumpMetricsJson() — directly, a bench
// metrics sidecar ({"bench":...,"points":[...]}, which becomes one trace
// process per measured point, named by its label), or a bare
// Tracer::ToJson document; all three shapes are detected automatically.
//
//   mmdb_trace_report <metrics.json>              write to stdout
//   mmdb_trace_report <metrics.json> -o out.json  write to a file
//   mmdb_trace_report <metrics.json> --shards=4   per-shard checkpoint.io
//                                                 tracks (segment-range
//                                                 partition, DESIGN.md §17)
//
// Exits non-zero when the input is malformed or carries no trace data
// (e.g. the sidecar was produced with tracing disabled).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "env/env.h"
#include "obs/trace_export.h"
#include "util/status.h"

namespace mmdb {
namespace {

int Run(const std::string& in_path, const std::string& out_path,
        uint32_t shards) {
  std::string contents;
  Status read = Env::Posix()->ReadFileToString(in_path, &contents);
  if (!read.ok()) {
    std::fprintf(stderr, "error: %s\n", read.ToString().c_str());
    return 1;
  }
  TraceExportStats stats;
  TraceExportOptions options;
  options.shard_tracks = shards;
  StatusOr<std::string> trace =
      ChromeTraceFromMetricsJson(contents, &stats, options);
  if (!trace.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", in_path.c_str(),
                 trace.status().ToString().c_str());
    return 1;
  }
  if (out_path.empty()) {
    std::printf("%s\n", trace->c_str());
  } else {
    Status written =
        Env::Posix()->WriteStringToFile(out_path, *trace + "\n",
                                        /*sync=*/false);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "trace report: %zu events exported, %zu skipped -> %s\n",
               stats.events_exported, stats.events_skipped,
               out_path.empty() ? "<stdout>" : out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  uint32_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "-o requires a path\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      char* end = nullptr;
      long v = std::strtol(argv[i] + 9, &end, 10);
      if (end == argv[i] + 9 || *end != '\0' || v < 1) {
        std::fprintf(stderr, "--shards requires a positive integer\n");
        return 2;
      }
      shards = static_cast<uint32_t>(v);
    } else if (in_path.empty()) {
      in_path = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (in_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <metrics.json> [-o out.json] [--shards=N]\n",
                 argv[0]);
    return 2;
  }
  return mmdb::Run(in_path, out_path, shards);
}
