// mmdb_backup_inspect: verify and describe a backup directory.
//
//   mmdb_backup_inspect <dir>
//
// Reads the geometry from the copy headers, checks every segment checksum
// in both ping-pong copies, and decodes the checkpoint metadata. Exit
// status 1 if any segment of the copy named by the metadata is corrupt
// (the OTHER copy may legitimately hold torn in-flight writes).

#include <cstdio>
#include <string>

#include "env/env.h"
#include "tools/inspect.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <backup-dir>\n", argv[0]);
    return 2;
  }
  auto result = mmdb::InspectBackup(mmdb::Env::Posix(), argv[1]);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::fputs(result->ToString().c_str(), stdout);
  if (result->has_meta &&
      result->copies[result->meta.copy].corrupt_segments > 0) {
    std::fprintf(stderr,
                 "FAIL: the copy named by the checkpoint metadata has "
                 "corrupt segments\n");
    return 1;
  }
  return 0;
}
