// mmdb_bench_diff: compare a bench metrics sidecar against a committed
// baseline and fail on drift — the repo's bench regression gate.
//
//   mmdb_bench_diff <baseline.json> <current.json> [flags]
//     --rel-tol=R   relative tolerance for timing-valued leaves (0.05)
//     --abs-tol=A   absolute floor for the same comparison (1e-9)
//     --strict      exact equality everywhere (same-binary comparisons)
//
// The top-level "run" member (sweep width + wall clock) is ignored; every
// deterministic leaf must match exactly and timing/model leaves must agree
// within tolerance (see obs/bench_diff.h). Exit codes: 0 = match,
// 1 = drift (mismatches listed on stderr), 2 = usage or unreadable input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "env/env.h"
#include "obs/bench_diff.h"
#include "util/status.h"

namespace mmdb {
namespace {

int Run(const std::string& baseline_path, const std::string& current_path,
        const BenchDiffOptions& options) {
  std::string baseline, current;
  Status read = Env::Posix()->ReadFileToString(baseline_path, &baseline);
  if (!read.ok()) {
    std::fprintf(stderr, "error: %s\n", read.ToString().c_str());
    return 2;
  }
  read = Env::Posix()->ReadFileToString(current_path, &current);
  if (!read.ok()) {
    std::fprintf(stderr, "error: %s\n", read.ToString().c_str());
    return 2;
  }
  StatusOr<BenchDiffResult> result = DiffBenchJson(baseline, current, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 2;
  }
  if (!result->equal()) {
    std::fprintf(stderr,
                 "bench drift: %zu mismatched leaves (of %zu compared) "
                 "between %s and %s\n",
                 result->mismatches, result->leaves_compared,
                 baseline_path.c_str(), current_path.c_str());
    for (const std::string& report : result->reports) {
      std::fprintf(stderr, "  %s\n", report.c_str());
    }
    if (result->mismatches > result->reports.size()) {
      std::fprintf(stderr, "  ... and %zu more\n",
                   result->mismatches - result->reports.size());
    }
    return 1;
  }
  std::fprintf(stderr, "bench match: %zu leaves within tolerance\n",
               result->leaves_compared);
  return 0;
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  mmdb::BenchDiffOptions options;
  std::string baseline_path, current_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rel-tol=", 10) == 0) {
      options.rel_tol = std::strtod(argv[i] + 10, nullptr);
    } else if (std::strncmp(argv[i], "--abs-tol=", 10) == 0) {
      options.abs_tol = std::strtod(argv[i] + 10, nullptr);
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      options.rel_tol = 0;
      options.abs_tol = 0;
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <baseline.json> <current.json> "
                 "[--rel-tol=R] [--abs-tol=A] [--strict]\n",
                 argv[0]);
    return 2;
  }
  return mmdb::Run(baseline_path, current_path, options);
}
