// mmdb_log_dump: print or summarize a REDO log file.
//
//   mmdb_log_dump <wal.log>             one line per record
//   mmdb_log_dump <wal.log> --summary   counts, checkpoints, torn-tail flag
//   mmdb_log_dump <wal.log> --from=N    dump from logical offset N
//   mmdb_log_dump <wal.log> --json      one JSON document (machine-readable)
//
// Sharded logs (wal.log.1, wal.log.2, ... beside the base file) are
// discovered automatically and LSN-merged: each frame then carries its
// owning stream id, stream hand-offs print gang-epoch boundary markers,
// and a torn gang (a group commit torn across streams at crash) is
// reported with the per-stream dropped-frame counts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "env/env.h"
#include "tools/inspect.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <log-file> [--summary] [--from=offset]\n",
                 argv[0]);
    return 2;
  }
  std::string path = argv[1];
  bool summary = false;
  bool json = false;
  uint64_t from = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--summary") == 0) {
      summary = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--from=", 7) == 0) {
      from = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  mmdb::Env* env = mmdb::Env::Posix();
  if (json) {
    if (summary) {
      std::fprintf(stderr, "--json and --summary are mutually exclusive\n");
      return 2;
    }
    std::string out;
    auto emitted = mmdb::DumpLogJson(env, path, from, &out);
    if (!emitted.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   emitted.status().ToString().c_str());
      return 1;
    }
    std::fputs(out.c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (summary) {
    auto result = mmdb::SummarizeLog(env, path);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::fputs(result->ToString().c_str(), stdout);
    return 0;
  }
  auto printed = mmdb::DumpLog(env, path, from, stdout);
  if (!printed.ok()) {
    std::fprintf(stderr, "error: %s\n", printed.status().ToString().c_str());
    return 1;
  }
  return 0;
}
