// mmdb_stats: summarize an engine metrics document for a terminal.
//
// Input is JSON produced by Engine::DumpMetricsJson() — directly, or
// wrapped per measured point inside a bench metrics sidecar
// ({"bench":...,"points":[{"label":...,"engine":{...}}]}); both shapes are
// detected automatically.
//
//   mmdb_stats <metrics.json>            counters, timers, checkpoint phases
//   mmdb_stats <metrics.json> --trace    also print every retained trace event
//   mmdb_stats <metrics.json> --percentiles
//       per-timer tail table (count, p50/p90/p99/p999, max) — the quick way
//       to read an interference sidecar's latency tails per point
//   mmdb_stats <metrics.json> --filter=<prefix>
//       print only matching metric subtrees — "--filter=recovery" the
//       recovery block, "--filter=counters.txn" the txn_* counters,
//       "--filter=audit" the provenance-journal account
//   mmdb_stats <metrics.json> --raw      re-emit the parsed document compactly
//   mmdb_stats <metrics.json> --deterministic
//       re-emit with the sidecar's "run" member stripped
//       (MetricsSidecar::DeterministicView) — the bytes that must be
//       identical across --jobs widths, pipeable straight into diff(1)
//
// Exits non-zero (with a diagnostic) on malformed JSON, so it doubles as a
// validator for the sidecar files.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "env/env.h"
#include "obs/sidecar.h"
#include "util/json.h"
#include "util/status.h"
#include "util/string_util.h"

namespace mmdb {
namespace {

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->number_value() : fallback;
}

// --filter=<prefix> narrows the report to matching subtrees. Paths are
// dotted: a bare section name ("recovery", "audit", "shards") selects a
// whole block, "counters.txn" selects the txn_* counters, "timers.log"
// the log_* timers. Matching is mutual-prefix so "counters.txn" still
// prints the "counters:" heading on the way down. Empty = everything.
std::string g_filter;

bool Selected(std::string_view path) {
  if (g_filter.empty()) return true;
  const size_t n = std::min(g_filter.size(), path.size());
  return std::string_view(g_filter).substr(0, n) == path.substr(0, n);
}

void PrintSection(const JsonValue& doc, const char* key) {
  const JsonValue* section = doc.Find(key);
  if (section == nullptr || !section->is_object()) return;
  if (!Selected(key)) return;
  bool printed_heading = false;
  if (g_filter.empty()) {
    std::printf("%s:\n", key);
    printed_heading = true;
  }
  for (const auto& [name, value] : section->object_items()) {
    if (!Selected(std::string(key) + "." + name)) continue;
    if (!printed_heading) {
      std::printf("%s:\n", key);
      printed_heading = true;
    }
    if (value.is_number()) {
      double n = value.number_value();
      // Counters are integers; keep them out of scientific notation.
      if (n == static_cast<double>(static_cast<long long>(n))) {
        std::printf("  %-32s %lld\n", name.c_str(),
                    static_cast<long long>(n));
      } else {
        std::printf("  %-32s %.6g\n", name.c_str(), n);
      }
    } else if (value.is_object()) {
      // Timer: {count,mean,min,max,p50,p99}.
      std::printf("  %-32s count=%-8.0f mean=%-10.4g p50=%-10.4g "
                  "p99=%-10.4g max=%.4g\n",
                  name.c_str(), NumberOr(value.Find("count"), 0),
                  NumberOr(value.Find("mean"), 0),
                  NumberOr(value.Find("p50"), 0),
                  NumberOr(value.Find("p99"), 0),
                  NumberOr(value.Find("max"), 0));
    }
  }
}

// Tail table across every timer of the metrics section; relies on the
// registry dump's p90/p999 members (Timer::ToJson).
void PrintPercentiles(const JsonValue& metrics) {
  const JsonValue* timers = metrics.Find("timers");
  if (timers == nullptr || !timers->is_object() ||
      timers->object_items().empty() || !Selected("timers")) {
    return;
  }
  std::printf("percentiles:\n");
  std::printf("  %-32s %8s %10s %10s %10s %10s %10s\n", "timer", "count",
              "p50", "p90", "p99", "p999", "max");
  for (const auto& [name, value] : timers->object_items()) {
    if (!value.is_object()) continue;
    if (!Selected("timers." + name)) continue;
    std::printf("  %-32s %8.0f %10.4g %10.4g %10.4g %10.4g %10.4g\n",
                name.c_str(), NumberOr(value.Find("count"), 0),
                NumberOr(value.Find("p50"), 0),
                NumberOr(value.Find("p90"), 0),
                NumberOr(value.Find("p99"), 0),
                NumberOr(value.Find("p999"), 0),
                NumberOr(value.Find("max"), 0));
  }
}

// Time-series sampler summary: ring occupancy plus the sampled series
// names (values live in the dump / Perfetto counter tracks).
void PrintTimeSeries(const JsonValue& engine) {
  const JsonValue* ts = engine.Find("timeseries");
  if (ts == nullptr || !ts->is_object() || !Selected("timeseries")) return;
  std::printf("timeseries: epoch=%.4gs series=%zu recorded=%.0f "
              "dropped=%.0f\n",
              NumberOr(ts->Find("epoch"), 0),
              ts->Find("series") != nullptr && ts->Find("series")->is_array()
                  ? ts->Find("series")->array_items().size()
                  : 0,
              NumberOr(ts->Find("recorded"), 0),
              NumberOr(ts->Find("dropped"), 0));
}

// Last-recovery block: deterministic counters, then the modeled
// (virtual-clock) phase split side by side with the real wall clock so
// the parallel-pipeline speedup is visible at a glance.
void PrintRecovery(const JsonValue& engine) {
  const JsonValue* r = engine.Find("recovery");
  if (r == nullptr || !r->is_object() || !Selected("recovery")) return;
  std::printf("recovery: ckpt=%.0f copy=%.0f loaded=%.0f retried=%.0f "
              "scanned=%.0f applied=%.0f txns=%.0f%s\n",
              NumberOr(r->Find("checkpoint"), 0), NumberOr(r->Find("copy"), 0),
              NumberOr(r->Find("segments_loaded"), 0),
              NumberOr(r->Find("segments_retried"), 0),
              NumberOr(r->Find("records_scanned"), 0),
              NumberOr(r->Find("updates_applied"), 0),
              NumberOr(r->Find("txns_redone"), 0),
              r->Find("fell_back") != nullptr &&
                      r->Find("fell_back")->bool_value()
                  ? " FELL-BACK"
                  : "");
  const JsonValue* modeled = r->Find("modeled");
  if (modeled != nullptr && modeled->is_object()) {
    std::printf("  modeled: backup=%.4fs log=%.4fs replay=%.4fs "
                "total=%.4fs\n",
                NumberOr(modeled->Find("backup_read_seconds"), 0),
                NumberOr(modeled->Find("log_read_seconds"), 0),
                NumberOr(modeled->Find("replay_cpu_seconds"), 0),
                NumberOr(modeled->Find("total_seconds"), 0));
  }
  const JsonValue* wall = r->Find("wall");
  if (wall != nullptr && wall->is_object()) {
    std::printf("  wall:    backup=%.4fs scan=%.4fs replay=%.4fs "
                "threads=%.0f",
                NumberOr(wall->Find("backup_read_seconds"), 0),
                NumberOr(wall->Find("log_scan_seconds"), 0),
                NumberOr(wall->Find("replay_seconds"), 0),
                NumberOr(wall->Find("threads"), 1));
    const JsonValue* busy = wall->Find("thread_busy_seconds");
    if (busy != nullptr && busy->is_array() &&
        !busy->array_items().empty()) {
      std::printf(" busy=[");
      const auto& items = busy->array_items();
      for (std::size_t i = 0; i < items.size(); ++i) {
        std::printf("%s%.4f", i == 0 ? "" : " ",
                    items[i].is_number() ? items[i].number_value() : 0.0);
      }
      std::printf("]");
    }
    std::printf("\n");
  }
}

// Instant-recovery availability block (the dump's "availability" member,
// present only after an instant restart): time-to-first-transaction vs
// time-to-full-recovery, the on-demand/background/forced load split, and —
// when the run carried a workload — the recovery-wait share of total
// transaction latency (sixth attribution cause).
void PrintAvailability(const JsonValue& engine) {
  const JsonValue* a = engine.Find("availability");
  if (a == nullptr || !a->is_object() || !Selected("availability")) return;
  const double t_first = NumberOr(a->Find("time_to_first_txn"), 0);
  const double t_full = NumberOr(a->Find("time_to_full_recovery"), 0);
  std::printf("availability: t_first_txn=%.4fs t_full_recovery=%.4fs%s%s\n",
              t_first, t_full,
              t_full > 0.0
                  ? StringPrintf(" (first/full=%.1f%%)",
                                 100.0 * t_first / t_full)
                        .c_str()
                  : "",
              a->Find("drained") != nullptr &&
                      a->Find("drained")->bool_value()
                  ? ""
                  : " DRAINING");
  const JsonValue* loads = a->Find("loads");
  if (loads != nullptr && loads->is_object()) {
    std::printf("  loads: touch=%.0f background=%.0f force=%.0f pending=%.0f "
                "recovery_wait=%.4fs\n",
                NumberOr(loads->Find("touch"), 0),
                NumberOr(loads->Find("background"), 0),
                NumberOr(loads->Find("force"), 0),
                NumberOr(a->Find("pending_segments"), 0),
                NumberOr(a->Find("stall_recovery_wait_seconds"), 0));
  }
  // Per-cause share: only computable when the workload attribution gauges
  // rode along in the same dump.
  const JsonValue* gauges = engine.FindPath({"metrics", "gauges"});
  if (gauges == nullptr || !gauges->is_object()) return;
  const JsonValue* total_g =
      gauges->Find("workload.attr.latency_total_seconds");
  const JsonValue* wait_g =
      gauges->Find("workload.attr.stall_recovery_wait_seconds");
  if (total_g == nullptr || wait_g == nullptr || !total_g->is_number() ||
      !wait_g->is_number() || total_g->number_value() <= 0.0) {
    return;
  }
  std::printf("  attribution: recovery_wait=%.4fs of %.4fs total latency "
              "(%.1f%%)\n",
              wait_g->number_value(), total_g->number_value(),
              100.0 * wait_g->number_value() / total_g->number_value());
}

// Per-shard breakdown of the partitioned engine (the dump's "shards"
// member): segment-range sizes, home-shard commits, per-stream WAL volume,
// stall attribution, and checkpoint flush counts.
void PrintShards(const JsonValue& engine) {
  const JsonValue* shards = engine.Find("shards");
  if (shards == nullptr || !shards->is_object() || !Selected("shards")) return;
  std::printf("shards: count=%.0f durable_epoch=%.0f\n",
              NumberOr(shards->Find("count"), 1),
              NumberOr(shards->Find("durable_epoch"), 0));
  const JsonValue* per = shards->Find("per_shard");
  if (per == nullptr || !per->is_array()) return;
  std::printf("  %-5s %7s %10s %10s %12s %10s %10s %9s\n", "shard", "segs",
              "commits", "appends", "log_bytes", "quiesce_s", "cklock_s",
              "flushed");
  for (const JsonValue& s : per->array_items()) {
    std::printf("  %-5.0f %7.0f %10.0f %10.0f %12.0f %10.4f %10.4f %9.0f\n",
                NumberOr(s.Find("shard"), 0), NumberOr(s.Find("segments"), 0),
                NumberOr(s.Find("txn_commits"), 0),
                NumberOr(s.Find("log_appends"), 0),
                NumberOr(s.Find("log_bytes"), 0),
                NumberOr(s.Find("stall_quiesce_seconds"), 0),
                NumberOr(s.Find("stall_ckpt_lock_seconds"), 0),
                NumberOr(s.Find("ckpt_segments_flushed"), 0));
  }
}

void PrintCheckpoints(const JsonValue& engine) {
  const JsonValue* ckpts = engine.Find("checkpoints");
  if (ckpts == nullptr || !ckpts->is_object() || !Selected("checkpoints")) {
    return;
  }
  const JsonValue* history = ckpts->Find("history");
  std::printf("checkpoints: cap=%.0f dropped=%.0f retained=%zu\n",
              NumberOr(ckpts->Find("history_cap"), 0),
              NumberOr(ckpts->Find("history_dropped"), 0),
              history != nullptr && history->is_array()
                  ? history->array_items().size()
                  : 0);
  if (history == nullptr || !history->is_array()) return;
  for (const JsonValue& c : history->array_items()) {
    std::printf("  ckpt %-4.0f [%0.3f..%0.3f] flushed=%-5.0f skipped=%-5.0f "
                "lock=%.4fs io=%.4fs log_wait=%.4fs copy=%.4fs\n",
                NumberOr(c.Find("id"), 0), NumberOr(c.Find("begin"), 0),
                NumberOr(c.Find("end"), 0),
                NumberOr(c.Find("segments_flushed"), 0),
                NumberOr(c.Find("segments_skipped"), 0),
                NumberOr(c.Find("lock_held_seconds"), 0),
                NumberOr(c.Find("flush_io_seconds"), 0),
                NumberOr(c.Find("log_wait_seconds"), 0),
                NumberOr(c.Find("copy_seconds"), 0));
  }
}

// Provenance-journal account (the dump's "audit" member, DESIGN.md §18):
// journal traffic counters plus, after a recovery, a lineage digest.
void PrintAudit(const JsonValue& engine) {
  const JsonValue* audit = engine.Find("audit");
  if (audit == nullptr || !audit->is_object() || !Selected("audit")) return;
  const JsonValue* journal = audit->Find("journal");
  if (journal != nullptr && journal->is_object()) {
    std::printf("audit: entries=%.0f bytes=%.0f syncs=%.0f "
                "append_errors=%.0f sync_errors=%.0f\n",
                NumberOr(journal->Find("entries"), 0),
                NumberOr(journal->Find("bytes"), 0),
                NumberOr(journal->Find("syncs"), 0),
                NumberOr(journal->Find("append_errors"), 0),
                NumberOr(journal->Find("sync_errors"), 0));
  }
  const JsonValue* lineage = audit->Find("lineage");
  if (lineage != nullptr && lineage->is_object()) {
    uint64_t retried = 0, replayed = 0;
    const JsonValue* retried_col = lineage->Find("retried");
    if (retried_col != nullptr && retried_col->is_array()) {
      for (const JsonValue& v : retried_col->array_items()) {
        if (v.bool_value()) ++retried;
      }
    }
    const JsonValue* frames_col = lineage->Find("frames");
    if (frames_col != nullptr && frames_col->is_array()) {
      for (const JsonValue& v : frames_col->array_items()) {
        if (v.is_number() && v.number_value() > 0) ++replayed;
      }
    }
    std::printf("  lineage: segments=%.0f retried=%llu touched_by_replay="
                "%llu\n",
                NumberOr(lineage->Find("segments"), 0),
                static_cast<unsigned long long>(retried),
                static_cast<unsigned long long>(replayed));
  }
}

void PrintTrace(const JsonValue& engine, bool events) {
  const JsonValue* trace = engine.Find("trace");
  if (trace == nullptr || !trace->is_object() || !Selected("trace")) return;
  std::printf("trace: recorded=%.0f dropped=%.0f\n",
              NumberOr(trace->Find("recorded"), 0),
              NumberOr(trace->Find("dropped"), 0));
  if (!events) return;
  const JsonValue* list = trace->Find("events");
  if (list == nullptr || !list->is_array()) return;
  for (const JsonValue& e : list->array_items()) {
    const JsonValue* kind = e.Find("kind");
    std::printf("  #%-8.0f t=%-12.6f %-24s %s\n",
                NumberOr(e.Find("seq"), 0), NumberOr(e.Find("t"), 0),
                kind != nullptr && kind->is_string()
                    ? kind->string_value().c_str()
                    : "?",
                e.Dump().c_str());
  }
}

// Model-oracle block: {"metric":{"predicted":..,"measured":..,
// "residual":..},...} per point, or mean/max aggregates for the figure
// summary. A null residual is the predicted==0 sentinel.
void PrintValidation(const JsonValue& validation, const char* title) {
  if (!validation.is_object()) return;
  std::printf("%s:\n", title);
  for (const auto& [metric, block] : validation.object_items()) {
    if (!block.is_object()) {
      if (block.is_number()) {
        std::printf("  %-18s %.6g\n", metric.c_str(), block.number_value());
      }
      continue;
    }
    const JsonValue* residual = block.Find("residual");
    if (residual != nullptr) {
      std::printf("  %-18s predicted=%-12.6g measured=%-12.6g ",
                  metric.c_str(), NumberOr(block.Find("predicted"), 0),
                  NumberOr(block.Find("measured"), 0));
      if (residual->is_number()) {
        std::printf("residual=%+.3f\n", residual->number_value());
      } else {
        std::printf("residual=inf\n");
      }
    } else {
      std::printf("  %-18s mean_abs=%-10.4g max_abs=%.4g\n", metric.c_str(),
                  NumberOr(block.Find("mean_abs_residual"), 0),
                  NumberOr(block.Find("max_abs_residual"), 0));
    }
  }
}

void PrintEngineDoc(const JsonValue& engine, bool events, bool percentiles) {
  const JsonValue* algorithm = engine.Find("algorithm");
  const JsonValue* mode = engine.Find("mode");
  if (algorithm != nullptr && algorithm->is_string()) {
    std::printf("engine: %s/%s at t=%.6f\n",
                algorithm->string_value().c_str(),
                mode != nullptr && mode->is_string()
                    ? mode->string_value().c_str()
                    : "?",
                NumberOr(engine.Find("now"), 0));
  }
  const JsonValue* metrics = engine.Find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    PrintSection(*metrics, "counters");
    PrintSection(*metrics, "gauges");
    PrintSection(*metrics, "timers");
    if (percentiles) PrintPercentiles(*metrics);
  }
  PrintTimeSeries(engine);
  PrintRecovery(engine);
  PrintAvailability(engine);
  PrintShards(engine);
  PrintCheckpoints(engine);
  PrintAudit(engine);
  PrintTrace(engine, events);
}

int Run(const std::string& path, bool events, bool raw, bool deterministic,
        bool percentiles) {
  std::string contents;
  Status read = Env::Posix()->ReadFileToString(path, &contents);
  if (!read.ok()) {
    std::fprintf(stderr, "error: %s\n", read.ToString().c_str());
    return 1;
  }
  if (deterministic) {
    StatusOr<std::string> view = MetricsSidecar::DeterministicView(contents);
    if (!view.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   view.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", view->c_str());
    return 0;
  }
  StatusOr<JsonValue> doc = JsonValue::Parse(contents);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  if (raw) {
    std::printf("%s\n", doc->Dump().c_str());
    return 0;
  }
  const JsonValue* points = doc->Find("points");
  if (points != nullptr && points->is_array()) {
    // Bench sidecar: one engine document per measured point.
    const JsonValue* bench = doc->Find("bench");
    std::printf("sidecar: %s, %zu points\n",
                bench != nullptr && bench->is_string()
                    ? bench->string_value().c_str()
                    : "?",
                points->array_items().size());
    for (const JsonValue& point : points->array_items()) {
      const JsonValue* label = point.Find("label");
      std::printf("\n--- %s ---\n",
                  label != nullptr && label->is_string()
                      ? label->string_value().c_str()
                      : "?");
      const JsonValue* error = point.Find("error");
      if (error != nullptr && error->is_string()) {
        std::printf("ERROR: %s\n", error->string_value().c_str());
        continue;
      }
      const JsonValue* engine = point.Find("engine");
      if (engine != nullptr) PrintEngineDoc(*engine, events, percentiles);
      const JsonValue* validation = point.Find("validation");
      if (validation != nullptr) {
        PrintValidation(*validation, "model validation");
      }
    }
    const JsonValue* summary = doc->Find("validation_summary");
    if (summary != nullptr) {
      std::printf("\n");
      PrintValidation(*summary, "validation summary");
    }
    return 0;
  }
  PrintEngineDoc(*doc, events, percentiles);
  return 0;
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <metrics.json> [--trace] [--percentiles] "
                 "[--filter=prefix] [--raw] [--deterministic]\n",
                 argv[0]);
    return 2;
  }
  bool events = false;
  bool raw = false;
  bool deterministic = false;
  bool percentiles = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      events = true;
    } else if (std::strncmp(argv[i], "--filter=", 9) == 0) {
      mmdb::g_filter = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--raw") == 0) {
      raw = true;
    } else if (std::strcmp(argv[i], "--deterministic") == 0) {
      deterministic = true;
    } else if (std::strcmp(argv[i], "--percentiles") == 0) {
      percentiles = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  return mmdb::Run(argv[1], events, raw, deterministic, percentiles);
}
