#ifndef MMDB_OBS_METERED_ENV_H_
#define MMDB_OBS_METERED_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "env/env.h"
#include "obs/metrics_registry.h"

namespace mmdb {

// Storage device classes an engine directory contains. Classification is
// by path: the write-ahead log ("wal"), the ping-pong backup copies
// ("backup"), and everything else (checkpoint metadata, manifests).
enum class DeviceClass : uint8_t { kLog = 0, kBackup = 1, kMeta = 2 };

std::string_view DeviceClassName(DeviceClass dc);
DeviceClass ClassifyPath(std::string_view path);

// Env decorator that accounts every data-path operation — op counts, bytes
// moved, and real (host) latency — per device class into a MetricsRegistry,
// under names like `env.log.write_bytes` and `env.backup.read_seconds`.
//
// Composition with FaultInjectionEnv: wrap the *base* Env
// (`FaultInjectionEnv(MeteredEnv(base))`) so the meter sees only
// operations that reach the device — injected write errors are counted by
// the fault env, not double-charged here — and so the engine can still
// locate the FaultInjectionEnv as the outermost decorator.
//
// The registry must outlive this Env and every file handle opened through
// it. Like the other Env decorators, thread-compatible rather than
// thread-safe (the registry instruments themselves are thread-safe).
class MeteredEnv : public Env {
 public:
  // Instruments for one device class; hot paths use these cached pointers.
  struct DeviceMetrics {
    Counter* read_ops = nullptr;
    Counter* read_bytes = nullptr;
    Counter* write_ops = nullptr;
    Counter* write_bytes = nullptr;
    Counter* sync_ops = nullptr;
    Counter* errors = nullptr;
    Timer* read_seconds = nullptr;
    Timer* write_seconds = nullptr;
    Timer* sync_seconds = nullptr;
  };

  // `base` and `registry` must outlive this Env.
  MeteredEnv(Env* base, MetricsRegistry* registry);

  Env* base() const { return base_; }

  [[nodiscard]] StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  [[nodiscard]] StatusOr<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  [[nodiscard]] StatusOr<std::unique_ptr<RandomAccessFile>>
  NewRandomAccessFile(const std::string& path) override;
  [[nodiscard]] StatusOr<std::unique_ptr<RandomWriteFile>> NewRandomWriteFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  [[nodiscard]] StatusOr<uint64_t> FileSize(const std::string& path) override;
  [[nodiscard]] Status DeleteFile(const std::string& path) override;
  [[nodiscard]] Status RenameFile(const std::string& from,
                                  const std::string& to) override;
  [[nodiscard]] Status CreateDirIfMissing(const std::string& path) override;
  [[nodiscard]] Status ListDir(const std::string& path,
                               std::vector<std::string>* children) override;

 private:
  DeviceMetrics* metrics_for(const std::string& path) {
    return &devices_[static_cast<size_t>(ClassifyPath(path))];
  }

  Env* base_;
  DeviceMetrics devices_[3];
};

}  // namespace mmdb

#endif  // MMDB_OBS_METERED_ENV_H_
