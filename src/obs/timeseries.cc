#include "obs/timeseries.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace mmdb {

TimeSeriesSampler::TimeSeriesSampler(const Options& options)
    : options_(options) {
  assert(options_.epoch > 0.0);
  assert(options_.capacity > 0);
}

void TimeSeriesSampler::AddCounter(std::string name, const Counter* counter) {
  Source source;
  source.name = std::move(name);
  source.counter = counter;
  sources_.push_back(std::move(source));
}

void TimeSeriesSampler::AddGauge(std::string name, std::function<double()> fn) {
  Source source;
  source.name = std::move(name);
  source.fn = std::move(fn);
  sources_.push_back(std::move(source));
}

void TimeSeriesSampler::Record(double t) {
  Sample sample;
  sample.t = t;
  sample.values.reserve(sources_.size());
  for (const Source& source : sources_) {
    sample.values.push_back(source.counter != nullptr
                                ? static_cast<double>(source.counter->value())
                                : source.fn());
  }
  ++recorded_;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(sample));
  } else {
    // Overwrite the oldest; head_ walks forward so export stays ordered.
    ring_[head_] = std::move(sample);
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
}

void TimeSeriesSampler::SampleUpTo(double now) {
  // Multiplying instead of accumulating the epoch keeps boundaries exact
  // over long runs (no floating-point drift in the sample grid).
  double next = options_.epoch * static_cast<double>(next_epoch_index_);
  if (now < next) return;
  auto wall_start = std::chrono::steady_clock::now();
  while (now >= next) {
    Record(next);
    ++next_epoch_index_;
    next = options_.epoch * static_cast<double>(next_epoch_index_);
  }
  sample_wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
}

void TimeSeriesSampler::ToJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("epoch");
  writer->Double(options_.epoch);
  writer->Key("capacity");
  writer->Uint(options_.capacity);
  writer->Key("series");
  writer->BeginArray();
  for (const Source& source : sources_) writer->String(source.name);
  writer->EndArray();
  writer->Key("samples");
  writer->BeginArray();
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Sample& sample = ring_[(head_ + i) % ring_.size()];
    writer->BeginObject();
    writer->Key("t");
    writer->Double(sample.t);
    writer->Key("v");
    writer->BeginArray();
    for (double v : sample.values) writer->Double(v);
    writer->EndArray();
    writer->EndObject();
  }
  writer->EndArray();
  writer->Key("recorded");
  writer->Uint(recorded_);
  writer->Key("dropped");
  writer->Uint(dropped_);
  writer->Key("wall");
  writer->BeginObject();
  writer->Key("sample_seconds");
  writer->Double(sample_wall_seconds_);
  writer->EndObject();
  writer->EndObject();
}

}  // namespace mmdb
