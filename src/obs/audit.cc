#include "obs/audit.h"

#include <algorithm>
#include <utility>

#include "util/crc32c.h"

namespace mmdb {
namespace {

// Validates one complete journal line (no trailing newline): the crc member
// must be present, must be the literal splice Record() appended, and must
// cover the line with that splice removed.
bool ParseLine(std::string_view line, AuditEntry* out) {
  size_t pos = line.rfind(",\"crc\":");
  if (pos == std::string_view::npos) return false;
  std::string body(line.substr(0, pos));
  body += '}';
  StatusOr<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const JsonValue* crc = parsed->Find("crc");
  const JsonValue* seq = parsed->Find("seq");
  const JsonValue* t = parsed->Find("t");
  const JsonValue* event = parsed->Find("event");
  if (crc == nullptr || !crc->is_number() || seq == nullptr ||
      !seq->is_number() || t == nullptr || !t->is_number() ||
      event == nullptr || !event->is_string()) {
    return false;
  }
  if (crc32c::Value(body) != static_cast<uint32_t>(crc->number_value())) {
    return false;
  }
  out->seq = static_cast<uint64_t>(seq->number_value());
  out->t = t->number_value();
  out->event = event->string_value();
  out->object = std::move(*parsed);
  return true;
}

uint64_t AsU64(const JsonValue& v) {
  return static_cast<uint64_t>(v.number_value());
}

}  // namespace

AuditJournal::AuditJournal(Env* env, std::string path)
    : env_(env), path_(std::move(path)) {}

void AuditJournal::Open(bool fresh) {
  std::string prefix;
  if (!fresh) {
    std::string existing;
    if (env_->ReadFileToString(path_, &existing).ok()) {
      // Keep the longest prefix of complete, CRC-clean, gap-free lines;
      // anything after the first damaged line (a torn append from a crash
      // or an injected fault) is dropped before numbering resumes.
      size_t kept = 0;
      uint64_t last_seq = 0;
      size_t pos = 0;
      while (pos < existing.size()) {
        size_t nl = existing.find('\n', pos);
        if (nl == std::string::npos) break;
        AuditEntry e;
        if (!ParseLine({existing.data() + pos, nl - pos}, &e) ||
            e.seq != last_seq + 1) {
          break;
        }
        last_seq = e.seq;
        kept = nl + 1;
        pos = nl + 1;
      }
      prefix = existing.substr(0, kept);
      next_seq_ = last_seq + 1;
    }
  }
  StatusOr<std::unique_ptr<WritableFile>> file = env_->NewWritableFile(path_);
  if (!file.ok()) {
    ++counters_.append_errors;
    return;
  }
  file_ = std::move(*file);
  if (!prefix.empty() && !file_->Append(prefix).ok()) {
    ++counters_.append_errors;
    file_.reset();
  }
}

void AuditJournal::Record(std::string_view event, double t,
                          const std::function<void(JsonWriter&)>& fields) {
  if (file_ == nullptr) return;
  JsonWriter w;
  w.BeginObject();
  w.Key("seq");
  w.Uint(next_seq_);
  w.Key("t");
  w.Double(t);
  w.Key("event");
  w.String(event);
  if (fields) fields(w);
  w.EndObject();
  std::string line = w.TakeString();
  uint32_t crc = crc32c::Value(line);
  line.pop_back();
  line += ",\"crc\":";
  line += std::to_string(crc);
  line += "}\n";
  if (Status st = file_->Append(line); !st.ok()) {
    // The line may have torn mid-append; nothing may be written after it.
    ++counters_.append_errors;
    file_.reset();
    return;
  }
  ++next_seq_;
  ++counters_.entries;
  counters_.bytes += line.size();
}

void AuditJournal::Sync() {
  if (file_ == nullptr) return;
  ++counters_.syncs;
  if (!file_->Sync().ok()) ++counters_.sync_errors;
}

void WriteLineageJson(const std::vector<SegmentLineage>& lineage,
                      JsonWriter* w) {
  w->BeginObject();
  w->Key("segments");
  w->Uint(lineage.size());
  w->Key("checkpoint");
  w->BeginArray();
  for (const SegmentLineage& l : lineage) w->Uint(l.checkpoint_id);
  w->EndArray();
  w->Key("copy");
  w->BeginArray();
  for (const SegmentLineage& l : lineage) w->Uint(l.copy);
  w->EndArray();
  w->Key("retried");
  w->BeginArray();
  for (const SegmentLineage& l : lineage) w->Bool(l.retried);
  w->EndArray();
  w->Key("frames");
  w->BeginArray();
  for (const SegmentLineage& l : lineage) w->Uint(l.frames);
  w->EndArray();
  w->Key("first_lsn");
  w->BeginArray();
  for (const SegmentLineage& l : lineage) w->Uint(l.first_lsn);
  w->EndArray();
  w->Key("last_lsn");
  w->BeginArray();
  for (const SegmentLineage& l : lineage) w->Uint(l.last_lsn);
  w->EndArray();
  w->Key("streams");
  w->BeginArray();
  for (const SegmentLineage& l : lineage) {
    w->BeginArray();
    for (uint32_t s : l.streams) w->Uint(s);
    w->EndArray();
  }
  w->EndArray();
  w->EndObject();
}

StatusOr<std::vector<AuditEntry>> ParseAuditJournal(std::string_view text) {
  std::vector<AuditEntry> entries;
  size_t pos = 0;
  uint64_t line_no = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) break;  // torn trailing append: legal
    ++line_no;
    AuditEntry e;
    if (!ParseLine(text.substr(pos, nl - pos), &e)) {
      return CorruptionError("audit journal line " + std::to_string(line_no) +
                             ": bad checksum or malformed entry");
    }
    if (e.seq != entries.size() + 1) {
      return CorruptionError(
          "audit journal line " + std::to_string(line_no) + ": sequence " +
          std::to_string(e.seq) + " where " +
          std::to_string(entries.size() + 1) +
          " was expected (lost or reordered entries)");
    }
    entries.push_back(std::move(e));
    pos = nl + 1;
  }
  return entries;
}

namespace {

// Required payload members per event (beyond seq/t/event/crc).
struct EventSpec {
  std::string_view event;
  std::vector<std::string_view> fields;
};

const std::vector<EventSpec>& EventSpecs() {
  static const std::vector<EventSpec>* specs = new std::vector<EventSpec>{
      {"ckpt.begin",
       {"ckpt", "algorithm", "mode", "copy", "begin_lsn", "begin_offset"}},
      {"ckpt.flush", {"ckpt", "segment", "copy", "lsn", "bytes"}},
      {"ckpt.degraded", {"ckpt", "segment"}},
      {"ckpt.end", {"ckpt", "copy", "flushed", "skipped"}},
      {"ckpt.abort", {"ckpt", "cause", "flushed"}},
      {"ckpt.log_cut", {"cut", "reclaimed", "stream_bases"}},
      {"recovery.begin", {"restart"}},
      {"recovery.streams",
       {"valid_bytes", "dropped_frames", "torn_gang", "gap_lsn"}},
      {"recovery.plan", {"checkpoint", "copy", "begin_offset", "source"}},
      {"recovery.fallback",
       {"from_checkpoint", "from_copy", "to_checkpoint", "to_copy", "trigger",
        "failed_segments", "full_reload"}},
      {"recovery.segment_on_demand",
       {"segment", "trigger", "checkpoint", "copy", "retried", "frames",
        "order"}},
      {"recovery.lineage", {"lineage"}},
      {"recovery.end",
       {"checkpoint", "copy", "fell_back", "last_lsn", "applies", "txns"}},
      {"recovery.error", {"error"}},
  };
  return *specs;
}

}  // namespace

Status VerifyAuditStructure(const std::vector<AuditEntry>& entries) {
  bool ckpt_open = false;
  uint64_t ckpt_id = 0;
  bool rec_open = false;
  for (const AuditEntry& e : entries) {
    auto fail = [&e](std::string_view why) {
      return CorruptionError("audit seq " + std::to_string(e.seq) + " (" +
                             e.event + "): " + std::string(why));
    };
    const EventSpec* spec = nullptr;
    for (const EventSpec& s : EventSpecs()) {
      if (s.event == e.event) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) return fail("unknown event");
    for (std::string_view f : spec->fields) {
      if (e.object.Find(f) == nullptr) {
        return fail("missing field '" + std::string(f) + "'");
      }
    }
    bool is_ckpt = e.event.rfind("ckpt.", 0) == 0;
    if (is_ckpt && rec_open) {
      return fail("checkpoint event inside an open recovery chain");
    }
    if (e.event == "ckpt.begin") {
      if (ckpt_open) return fail("nested checkpoint begin");
      ckpt_open = true;
      ckpt_id = AsU64(*e.object.Find("ckpt"));
    } else if (e.event == "ckpt.flush" || e.event == "ckpt.degraded" ||
               e.event == "ckpt.end" || e.event == "ckpt.abort") {
      if (!ckpt_open) return fail("no open checkpoint chain");
      if (AsU64(*e.object.Find("ckpt")) != ckpt_id) {
        return fail("checkpoint id does not match the open chain (" +
                    std::to_string(ckpt_id) + ")");
      }
      if (e.event == "ckpt.end" || e.event == "ckpt.abort") ckpt_open = false;
    } else if (e.event == "ckpt.log_cut") {
      // Runs after the chain committed; legal anywhere outside recovery.
    } else if (e.event == "recovery.begin") {
      // An open recovery chain here is legal: instant recovery serves
      // transactions with its chain still open (recovery.end is only
      // journaled when the on-demand drain completes), and a crash during
      // that window severs the chain just as it severs a checkpoint's.
      ckpt_open = false;
      rec_open = true;
    } else {  // recovery.* other than begin
      if (!rec_open) return fail("recovery event outside a recovery chain");
      if (e.event == "recovery.end" || e.event == "recovery.error") {
        rec_open = false;
      }
    }
  }
  return Status::OK();
}

namespace {

// Dump-side member lookup that reports what was missing instead of
// defaulting: the cross-check must not silently pass on a malformed dump.
StatusOr<const JsonValue*> Member(const JsonValue& obj, std::string_view key,
                                  std::string_view where) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return CorruptionError("dump member " + std::string(where) + "." +
                           std::string(key) + " is missing");
  }
  return v;
}

}  // namespace

Status VerifyAuditAgainstDump(const std::vector<AuditEntry>& entries,
                              const JsonValue& dump) {
  const JsonValue* audit = dump.Find("audit");
  if (audit == nullptr || audit->is_null()) {
    return CorruptionError(
        "dump has no audit member: engine ran without the provenance "
        "journal, nothing to cross-check");
  }
  const JsonValue* next_seq = audit->FindPath({"journal", "next_seq"});
  if (next_seq == nullptr || !next_seq->is_number()) {
    return CorruptionError("dump member audit.journal.next_seq is missing");
  }
  uint64_t last_seq = entries.empty() ? 0 : entries.back().seq;
  if (AsU64(*next_seq) != last_seq + 1) {
    return CorruptionError(
        "journal ends at seq " + std::to_string(last_seq) +
        " but the engine's next sequence is " +
        std::to_string(AsU64(*next_seq)) + ": lost or foreign entries");
  }

  // Locate the last completed recovery chain's claims. Lineage and end
  // events are only journaled on success, so the last of each belongs to
  // the same chain the engine's dump.recovery member describes.
  const AuditEntry* end = nullptr;
  const AuditEntry* lineage = nullptr;
  for (const AuditEntry& e : entries) {
    if (e.event == "recovery.end") end = &e;
    if (e.event == "recovery.lineage") lineage = &e;
  }

  const JsonValue* rec = dump.Find("recovery");
  if (rec == nullptr || rec->is_null()) {
    if (end != nullptr) {
      return CorruptionError(
          "journal claims a completed recovery (seq " +
          std::to_string(end->seq) + ") but the engine has performed none");
    }
    return Status::OK();
  }
  // An instant recovery that is still draining has a legitimately open
  // chain: the lineage and recovery.end land only when the last segment
  // materializes, so the dump's recovery claims cannot be cross-checked
  // yet. Structure verification above still covers the journal itself.
  const JsonValue* pending =
      dump.FindPath({"availability", "pending_segments"});
  if (pending != nullptr && pending->is_number() &&
      pending->number_value() > 0) {
    return Status::OK();
  }
  if (end == nullptr || lineage == nullptr) {
    return CorruptionError(
        "engine recovered but the journal holds no completed recovery "
        "chain (recovery.lineage + recovery.end)");
  }

  // recovery.end vs the engine's own RecoveryStats.
  struct Pair {
    std::string_view journal_key;
    std::string_view dump_key;
  };
  for (Pair p : {Pair{"checkpoint", "checkpoint"}, Pair{"copy", "copy"},
                 Pair{"applies", "updates_applied"},
                 Pair{"txns", "txns_redone"}}) {
    MMDB_ASSIGN_OR_RETURN(const JsonValue* want,
                          Member(*rec, p.dump_key, "recovery"));
    const JsonValue* got = end->object.Find(p.journal_key);
    if (got == nullptr || AsU64(*got) != AsU64(*want)) {
      return CorruptionError(
          "recovery.end." + std::string(p.journal_key) + " = " +
          (got != nullptr ? std::to_string(AsU64(*got)) : "<missing>") +
          " diverges from the engine's " + std::string(p.dump_key) + " = " +
          std::to_string(AsU64(*want)));
    }
  }
  MMDB_ASSIGN_OR_RETURN(const JsonValue* fell_back,
                        Member(*rec, "fell_back", "recovery"));
  const JsonValue* jfb = end->object.Find("fell_back");
  if (jfb == nullptr || jfb->bool_value() != fell_back->bool_value()) {
    return CorruptionError(
        "recovery.end.fell_back diverges from the engine's fallback record");
  }

  // The journal's lineage must be byte-identical (after a parse round
  // trip) to the lineage the engine actually recovered.
  const JsonValue* dump_lineage = audit->Find("lineage");
  if (dump_lineage == nullptr || dump_lineage->is_null()) {
    return CorruptionError(
        "engine recovered but dump member audit.lineage is null");
  }
  const JsonValue* journal_lineage = lineage->object.Find("lineage");
  if (journal_lineage == nullptr ||
      journal_lineage->Dump() != dump_lineage->Dump()) {
    return CorruptionError(
        "recovery.lineage (seq " + std::to_string(lineage->seq) +
        ") diverges from the engine's recovered per-segment lineage");
  }

  // Independent tallies: the lineage's applied-frame total and retry flags
  // are accumulated per segment bucket during replay, while
  // updates_applied / segments_retried are counted by separate code paths.
  const JsonValue* frames = journal_lineage->Find("frames");
  const JsonValue* retried = journal_lineage->Find("retried");
  const JsonValue* last_lsn = journal_lineage->Find("last_lsn");
  if (frames == nullptr || retried == nullptr || last_lsn == nullptr) {
    return CorruptionError("recovery.lineage arrays are incomplete");
  }
  uint64_t frame_total = 0;
  for (const JsonValue& f : frames->array_items()) frame_total += AsU64(f);
  MMDB_ASSIGN_OR_RETURN(const JsonValue* applied,
                        Member(*rec, "updates_applied", "recovery"));
  if (frame_total != AsU64(*applied)) {
    return CorruptionError("lineage claims " + std::to_string(frame_total) +
                           " applied frames but the engine applied " +
                           std::to_string(AsU64(*applied)));
  }
  uint64_t retried_total = 0;
  for (const JsonValue& r : retried->array_items()) {
    if (r.bool_value()) ++retried_total;
  }
  MMDB_ASSIGN_OR_RETURN(const JsonValue* retried_want,
                        Member(*rec, "segments_retried", "recovery"));
  if (retried_total != AsU64(*retried_want)) {
    return CorruptionError("lineage marks " + std::to_string(retried_total) +
                           " segments retried but the engine retried " +
                           std::to_string(AsU64(*retried_want)));
  }
  const JsonValue* end_lsn = end->object.Find("last_lsn");
  for (const JsonValue& l : last_lsn->array_items()) {
    if (AsU64(l) > AsU64(*end_lsn)) {
      return CorruptionError(
          "lineage replays past the recovery's last LSN " +
          std::to_string(AsU64(*end_lsn)));
    }
  }

  // Without a fallback every segment must come from the one restored copy.
  if (!fell_back->bool_value()) {
    const JsonValue* ckpts = journal_lineage->Find("checkpoint");
    const JsonValue* copies = journal_lineage->Find("copy");
    if (ckpts == nullptr || copies == nullptr) {
      return CorruptionError("recovery.lineage arrays are incomplete");
    }
    uint64_t want_ckpt = AsU64(*rec->Find("checkpoint"));
    uint64_t want_copy = AsU64(*rec->Find("copy"));
    for (size_t i = 0; i < ckpts->array_items().size(); ++i) {
      if (AsU64(ckpts->array_items()[i]) != want_ckpt ||
          AsU64(copies->array_items()[i]) != want_copy ||
          retried->array_items()[i].bool_value()) {
        return CorruptionError(
            "segment " + std::to_string(i) +
            " claims a provenance other than the restored checkpoint, but "
            "no fallback was recorded");
      }
    }
  }
  return Status::OK();
}

Status VerifyAuditJournal(std::string_view journal_text,
                          const JsonValue* dump) {
  if (dump != nullptr) {
    const JsonValue* errs =
        dump->FindPath({"audit", "journal", "append_errors"});
    if (errs != nullptr && errs->number_value() > 0) {
      // A fault landed on the journal itself; its tail is untrustworthy by
      // the engine's own admission, so there is nothing sound to verify.
      return Status::OK();
    }
  }
  MMDB_ASSIGN_OR_RETURN(std::vector<AuditEntry> entries,
                        ParseAuditJournal(journal_text));
  MMDB_RETURN_IF_ERROR(VerifyAuditStructure(entries));
  if (dump != nullptr) {
    MMDB_RETURN_IF_ERROR(VerifyAuditAgainstDump(entries, *dump));
  }
  return Status::OK();
}

StatusOr<SegmentProvenance> ExplainSegment(
    const std::vector<AuditEntry>& entries, SegmentId segment) {
  const AuditEntry* lineage = nullptr;
  double chain_begin_t = 0.0;
  double recovered_t = 0.0;
  for (const AuditEntry& e : entries) {
    if (e.event == "recovery.begin") chain_begin_t = e.t;
    if (e.event == "recovery.lineage") {
      lineage = &e;
      recovered_t = chain_begin_t;
    }
  }
  if (lineage == nullptr) {
    return NotFoundError(
        "journal holds no recovery lineage; nothing to explain");
  }
  const JsonValue* l = lineage->object.Find("lineage");
  if (l == nullptr) return CorruptionError("recovery.lineage has no payload");
  const JsonValue* ckpts = l->Find("checkpoint");
  const JsonValue* copies = l->Find("copy");
  const JsonValue* retried = l->Find("retried");
  const JsonValue* frames = l->Find("frames");
  const JsonValue* first_lsn = l->Find("first_lsn");
  const JsonValue* last_lsn = l->Find("last_lsn");
  const JsonValue* streams = l->Find("streams");
  if (ckpts == nullptr || copies == nullptr || retried == nullptr ||
      frames == nullptr || first_lsn == nullptr || last_lsn == nullptr ||
      streams == nullptr) {
    return CorruptionError("recovery.lineage arrays are incomplete");
  }
  if (segment >= ckpts->array_items().size()) {
    return OutOfRangeError("segment " + std::to_string(segment) +
                           " out of range: lineage covers " +
                           std::to_string(ckpts->array_items().size()) +
                           " segments");
  }
  SegmentProvenance p;
  p.segment = segment;
  p.recovered_t = recovered_t;
  p.lineage.checkpoint_id = AsU64(ckpts->array_items()[segment]);
  p.lineage.copy = static_cast<uint32_t>(AsU64(copies->array_items()[segment]));
  p.lineage.retried = retried->array_items()[segment].bool_value();
  p.lineage.frames = AsU64(frames->array_items()[segment]);
  p.lineage.first_lsn = AsU64(first_lsn->array_items()[segment]);
  p.lineage.last_lsn = AsU64(last_lsn->array_items()[segment]);
  for (const JsonValue& s : streams->array_items()[segment].array_items()) {
    p.lineage.streams.push_back(static_cast<uint32_t>(AsU64(s)));
  }

  // Walk back through the journal for the restored checkpoint's own chain:
  // its begin/end times, algorithm, and how many aborted attempts preceded
  // the completed one (retries reuse the id).
  if (p.lineage.checkpoint_id != 0) {
    double begin_t = 0.0;
    std::string algorithm;
    for (const AuditEntry& e : entries) {
      if (e.seq >= lineage->seq) break;
      const JsonValue* id = e.object.Find("ckpt");
      if (id == nullptr || AsU64(*id) != p.lineage.checkpoint_id) continue;
      if (e.event == "ckpt.begin") {
        begin_t = e.t;
        const JsonValue* algo = e.object.Find("algorithm");
        if (algo != nullptr) algorithm = algo->string_value();
      } else if (e.event == "ckpt.abort") {
        ++p.checkpoint_aborted_attempts;
      } else if (e.event == "ckpt.end") {
        p.checkpoint_in_journal = true;
        p.checkpoint_begin_t = begin_t;
        p.checkpoint_end_t = e.t;
        p.checkpoint_algorithm = algorithm;
      }
    }
  }
  return p;
}

}  // namespace mmdb
