#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

// Header-only uses (inline name tables); no link dependency on the
// owning libraries.
#include "checkpoint/checkpointer.h"
#include "env/fault_injection_env.h"
#include "wal/log_record.h"

namespace mmdb {

std::string_view TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kCheckpointBegin:
      return "checkpoint.begin";
    case TraceEventType::kCheckpointSegmentWrite:
      return "checkpoint.segment_write";
    case TraceEventType::kCheckpointEnd:
      return "checkpoint.end";
    case TraceEventType::kCheckpointAbort:
      return "checkpoint.abort";
    case TraceEventType::kLogAppend:
      return "log.append";
    case TraceEventType::kLogFlush:
      return "log.flush";
    case TraceEventType::kLogFlushError:
      return "log.flush_error";
    case TraceEventType::kLockWait:
      return "lock.wait";
    case TraceEventType::kLockConflict:
      return "lock.conflict";
    case TraceEventType::kFaultInjected:
      return "fault.injected";
    case TraceEventType::kRecoveryBegin:
      return "recovery.begin";
    case TraceEventType::kRecoveryPhase:
      return "recovery.phase";
    case TraceEventType::kRecoveryEnd:
      return "recovery.end";
    case TraceEventType::kRecoveryFanout:
      return "recovery.fanout";
    case TraceEventType::kRecoverySegmentOnDemand:
      return "recovery.segment_on_demand";
  }
  return "unknown";
}

std::string_view RecoveryPhaseName(RecoveryPhase phase) {
  switch (phase) {
    case RecoveryPhase::kBackupLoad:
      return "backup_load";
    case RecoveryPhase::kLogRead:
      return "log_read";
    case RecoveryPhase::kReplay:
      return "replay";
  }
  return "unknown";
}

namespace {

// One row per TraceEventType, indexed by the enumerator value. Member
// order within a row is emission order (t2 first, then a, b, c), matching
// the historical switch-based formatter byte for byte.
constexpr TraceEventFields kTraceEventFields[kNumTraceEventTypes] = {
    // kCheckpointBegin: a=id, b=algorithm, c=mode
    {nullptr, false,
     {"checkpoint", TraceFieldCoding::kInt},
     {"algorithm", TraceFieldCoding::kAlgorithm},
     {"mode", TraceFieldCoding::kMode}},
    // kCheckpointSegmentWrite: t2=done, a=segment, b=copy, c=bytes
    {"done", true,
     {"segment", TraceFieldCoding::kInt},
     {"copy", TraceFieldCoding::kInt},
     {"bytes", TraceFieldCoding::kInt}},
    // kCheckpointEnd: a=id, b=segments_flushed, c=segments_skipped
    {nullptr, false,
     {"checkpoint", TraceFieldCoding::kInt},
     {"segments_flushed", TraceFieldCoding::kInt},
     {"segments_skipped", TraceFieldCoding::kInt}},
    // kCheckpointAbort: same shape as kCheckpointEnd
    {nullptr, false,
     {"checkpoint", TraceFieldCoding::kInt},
     {"segments_flushed", TraceFieldCoding::kInt},
     {"segments_skipped", TraceFieldCoding::kInt}},
    // kLogAppend: a=lsn, b=record type, c=frame bytes
    {nullptr, false,
     {"lsn", TraceFieldCoding::kInt},
     {"record_type", TraceFieldCoding::kRecordType},
     {"bytes", TraceFieldCoding::kInt}},
    // kLogFlush: t2=durable at, a=durable lsn, b=bytes
    {"durable_at", true,
     {"durable_lsn", TraceFieldCoding::kInt},
     {"bytes", TraceFieldCoding::kInt},
     {nullptr, TraceFieldCoding::kNone}},
    // kLogFlushError: a=last lsn still volatile
    {nullptr, false,
     {"tail_lsn", TraceFieldCoding::kInt},
     {nullptr, TraceFieldCoding::kNone},
     {nullptr, TraceFieldCoding::kNone}},
    // kLockWait: t2=resume time
    {"until", true,
     {nullptr, TraceFieldCoding::kNone},
     {nullptr, TraceFieldCoding::kNone},
     {nullptr, TraceFieldCoding::kNone}},
    // kLockConflict: a=txn, b=record
    {nullptr, false,
     {"txn", TraceFieldCoding::kInt},
     {"record", TraceFieldCoding::kInt},
     {nullptr, TraceFieldCoding::kNone}},
    // kFaultInjected: a=fault kind, b=op index
    {nullptr, false,
     {"fault", TraceFieldCoding::kFault},
     {"op", TraceFieldCoding::kInt},
     {nullptr, TraceFieldCoding::kNone}},
    // kRecoveryBegin: a=1 if restart
    {nullptr, false,
     {"restart", TraceFieldCoding::kBool},
     {nullptr, TraceFieldCoding::kNone},
     {nullptr, TraceFieldCoding::kNone}},
    // kRecoveryPhase: t2=seconds (a duration), a=phase, b/c=phase counts
    {"seconds", false,
     {"phase", TraceFieldCoding::kPhase},
     {"n1", TraceFieldCoding::kInt},
     {"n2", TraceFieldCoding::kInt}},
    // kRecoveryEnd: t2=total seconds (a duration), a=checkpoint restored
    {"seconds", false,
     {"checkpoint", TraceFieldCoding::kInt},
     {nullptr, TraceFieldCoding::kNone},
     {nullptr, TraceFieldCoding::kNone}},
    // kRecoveryFanout: a=worker threads, b=segments, c=replay buckets
    {nullptr, false,
     {"threads", TraceFieldCoding::kInt},
     {"segments", TraceFieldCoding::kInt},
     {"buckets", TraceFieldCoding::kInt}},
    // kRecoverySegmentOnDemand: t2=availability, a=segment, b=trigger,
    // c=first-materialization ordinal
    {"available_at", true,
     {"segment", TraceFieldCoding::kInt},
     {"trigger", TraceFieldCoding::kInt},
     {"order", TraceFieldCoding::kInt}},
};

}  // namespace

const TraceEventFields& TraceEventFieldsFor(TraceEventType type) {
  size_t index = static_cast<size_t>(type);
  if (index >= kNumTraceEventTypes) index = 0;
  return kTraceEventFields[index];
}

Tracer::Tracer(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

size_t Tracer::ResolveCapacity(size_t configured) {
  const char* env = std::getenv("MMDB_TRACE_CAPACITY");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return configured;
}

void Tracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[recorded_ % capacity_] = event;
  }
  ++recorded_;
}

uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  recorded_ = 0;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (recorded_ <= capacity_) {
    out = ring_;
  } else {
    size_t head = recorded_ % capacity_;  // oldest retained event
    out.insert(out.end(), ring_.begin() + head, ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + head);
  }
  return out;
}

namespace {

// Enum-coded names (AlgorithmName, LogRecordTypeName, ...) are inline in
// their owning headers, so this stays a header-only dependency.
void EmitCodedField(const TraceFieldSpec& spec, int64_t value,
                    JsonWriter* w) {
  if (spec.name == nullptr) return;
  w->Key(spec.name);
  switch (spec.coding) {
    case TraceFieldCoding::kNone:
    case TraceFieldCoding::kInt:
      w->Int(value);
      break;
    case TraceFieldCoding::kBool:
      w->Bool(value != 0);
      break;
    case TraceFieldCoding::kAlgorithm:
      w->String(AlgorithmName(static_cast<Algorithm>(value)));
      break;
    case TraceFieldCoding::kMode:
      w->String(static_cast<CheckpointMode>(value) == CheckpointMode::kFull
                    ? "full"
                    : "partial");
      break;
    case TraceFieldCoding::kRecordType:
      // Shared with LogRecord::AppendJsonTo so the spellings cannot drift.
      w->String(LogRecordTypeName(static_cast<LogRecordType>(value)));
      break;
    case TraceFieldCoding::kFault:
      w->String(FaultKindName(static_cast<FaultKind>(value)));
      break;
    case TraceFieldCoding::kPhase:
      w->String(RecoveryPhaseName(static_cast<RecoveryPhase>(value)));
      break;
  }
}

void EmitFields(const TraceEvent& e, JsonWriter* w) {
  const TraceEventFields& fields = TraceEventFieldsFor(e.type);
  if (fields.t2_name != nullptr) {
    w->Key(fields.t2_name);
    w->Double(e.t2);
  }
  EmitCodedField(fields.a, e.a, w);
  EmitCodedField(fields.b, e.b, w);
  EmitCodedField(fields.c, e.c, w);
}

}  // namespace

void TraceEventToJson(const TraceEvent& event, uint64_t seq,
                      JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("seq");
  writer->Uint(seq);
  writer->Key("kind");
  writer->String(TraceEventTypeName(event.type));
  writer->Key("t");
  writer->Double(event.time);
  EmitFields(event, writer);
  writer->EndObject();
}

void Tracer::ToJson(JsonWriter* writer) const {
  std::vector<TraceEvent> events = Snapshot();
  uint64_t recorded, first_seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recorded = recorded_;
    first_seq = recorded_ - events.size();
  }
  writer->BeginObject();
  writer->Key("recorded");
  writer->Uint(recorded);
  writer->Key("dropped");
  writer->Uint(first_seq);
  writer->Key("events");
  writer->BeginArray();
  for (size_t i = 0; i < events.size(); ++i) {
    TraceEventToJson(events[i], first_seq + i, writer);
  }
  writer->EndArray();
  writer->EndObject();
}

std::string Tracer::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

}  // namespace mmdb
