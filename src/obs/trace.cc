#include "obs/trace.h"

#include <algorithm>

// Header-only uses (inline name tables); no link dependency on the
// owning libraries.
#include "checkpoint/checkpointer.h"
#include "env/fault_injection_env.h"
#include "wal/log_record.h"

namespace mmdb {

std::string_view TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kCheckpointBegin:
      return "checkpoint.begin";
    case TraceEventType::kCheckpointSegmentWrite:
      return "checkpoint.segment_write";
    case TraceEventType::kCheckpointEnd:
      return "checkpoint.end";
    case TraceEventType::kCheckpointAbort:
      return "checkpoint.abort";
    case TraceEventType::kLogAppend:
      return "log.append";
    case TraceEventType::kLogFlush:
      return "log.flush";
    case TraceEventType::kLogFlushError:
      return "log.flush_error";
    case TraceEventType::kLockWait:
      return "lock.wait";
    case TraceEventType::kLockConflict:
      return "lock.conflict";
    case TraceEventType::kFaultInjected:
      return "fault.injected";
    case TraceEventType::kRecoveryBegin:
      return "recovery.begin";
    case TraceEventType::kRecoveryPhase:
      return "recovery.phase";
    case TraceEventType::kRecoveryEnd:
      return "recovery.end";
  }
  return "unknown";
}

std::string_view RecoveryPhaseName(RecoveryPhase phase) {
  switch (phase) {
    case RecoveryPhase::kBackupLoad:
      return "backup_load";
    case RecoveryPhase::kLogRead:
      return "log_read";
    case RecoveryPhase::kReplay:
      return "replay";
  }
  return "unknown";
}

Tracer::Tracer(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

void Tracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[recorded_ % capacity_] = event;
  }
  ++recorded_;
}

uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  recorded_ = 0;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (recorded_ <= capacity_) {
    out = ring_;
  } else {
    size_t head = recorded_ % capacity_;  // oldest retained event
    out.insert(out.end(), ring_.begin() + head, ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + head);
  }
  return out;
}

namespace {

void EmitFields(const TraceEvent& e, JsonWriter* w) {
  switch (e.type) {
    case TraceEventType::kCheckpointBegin:
      w->Key("checkpoint");
      w->Int(e.a);
      w->Key("algorithm");
      w->String(AlgorithmName(static_cast<Algorithm>(e.b)));
      w->Key("mode");
      w->String(static_cast<CheckpointMode>(e.c) == CheckpointMode::kFull
                    ? "full"
                    : "partial");
      break;
    case TraceEventType::kCheckpointSegmentWrite:
      w->Key("done");
      w->Double(e.t2);
      w->Key("segment");
      w->Int(e.a);
      w->Key("copy");
      w->Int(e.b);
      w->Key("bytes");
      w->Int(e.c);
      break;
    case TraceEventType::kCheckpointEnd:
    case TraceEventType::kCheckpointAbort:
      w->Key("checkpoint");
      w->Int(e.a);
      w->Key("segments_flushed");
      w->Int(e.b);
      w->Key("segments_skipped");
      w->Int(e.c);
      break;
    case TraceEventType::kLogAppend:
      w->Key("lsn");
      w->Int(e.a);
      // Shared with LogRecord::AppendJsonTo so the spellings cannot drift.
      w->Key("record_type");
      w->String(LogRecordTypeName(static_cast<LogRecordType>(e.b)));
      w->Key("bytes");
      w->Int(e.c);
      break;
    case TraceEventType::kLogFlush:
      w->Key("durable_at");
      w->Double(e.t2);
      w->Key("durable_lsn");
      w->Int(e.a);
      w->Key("bytes");
      w->Int(e.b);
      break;
    case TraceEventType::kLogFlushError:
      w->Key("tail_lsn");
      w->Int(e.a);
      break;
    case TraceEventType::kLockWait:
      w->Key("until");
      w->Double(e.t2);
      break;
    case TraceEventType::kLockConflict:
      w->Key("txn");
      w->Int(e.a);
      w->Key("record");
      w->Int(e.b);
      break;
    case TraceEventType::kFaultInjected:
      w->Key("fault");
      w->String(FaultKindName(static_cast<FaultKind>(e.a)));
      w->Key("op");
      w->Int(e.b);
      break;
    case TraceEventType::kRecoveryBegin:
      w->Key("restart");
      w->Bool(e.a != 0);
      break;
    case TraceEventType::kRecoveryPhase:
      w->Key("seconds");
      w->Double(e.t2);
      w->Key("phase");
      w->String(RecoveryPhaseName(static_cast<RecoveryPhase>(e.a)));
      w->Key("n1");
      w->Int(e.b);
      w->Key("n2");
      w->Int(e.c);
      break;
    case TraceEventType::kRecoveryEnd:
      w->Key("seconds");
      w->Double(e.t2);
      w->Key("checkpoint");
      w->Int(e.a);
      break;
  }
}

}  // namespace

void TraceEventToJson(const TraceEvent& event, uint64_t seq,
                      JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("seq");
  writer->Uint(seq);
  writer->Key("kind");
  writer->String(TraceEventTypeName(event.type));
  writer->Key("t");
  writer->Double(event.time);
  EmitFields(event, writer);
  writer->EndObject();
}

void Tracer::ToJson(JsonWriter* writer) const {
  std::vector<TraceEvent> events = Snapshot();
  uint64_t recorded, first_seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recorded = recorded_;
    first_seq = recorded_ - events.size();
  }
  writer->BeginObject();
  writer->Key("recorded");
  writer->Uint(recorded);
  writer->Key("dropped");
  writer->Uint(first_seq);
  writer->Key("events");
  writer->BeginArray();
  for (size_t i = 0; i < events.size(); ++i) {
    TraceEventToJson(events[i], first_seq + i, writer);
  }
  writer->EndArray();
  writer->EndObject();
}

std::string Tracer::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

}  // namespace mmdb
