#include "obs/sidecar.h"

#include <cstdio>
#include <cstdlib>

#include "obs/bench_diff.h"
#include "util/json.h"

namespace mmdb {

MetricsSidecar::MetricsSidecar(const char* bench) : bench_(bench) {
  const char* override_path = std::getenv("MMDB_METRICS_SIDECAR");
  path_ = override_path != nullptr ? override_path : bench_ + "_metrics.json";
}

void MetricsSidecar::Add(std::string label, std::string engine_json,
                         std::string validation_json) {
  if (path_.empty() || engine_json.empty()) return;
  points_.push_back(Point{std::move(label), std::move(engine_json),
                          std::move(validation_json), std::string()});
}

void MetricsSidecar::AddError(std::string label, std::string message) {
  if (path_.empty()) return;
  if (message.empty()) message = "unknown error";
  points_.push_back(Point{std::move(label), std::string(), std::string(),
                          std::move(message)});
}

void MetricsSidecar::SetValidationSummary(std::string summary_json) {
  validation_summary_json_ = std::move(summary_json);
}

void MetricsSidecar::SetRun(std::size_t jobs, double wall_seconds) {
  jobs_ = jobs;
  wall_seconds_ = wall_seconds;
}

void MetricsSidecar::Write() const {
  if (path_.empty()) return;
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String(bench_);
  w.Key("points");
  w.BeginArray();
  for (const Point& point : points_) {
    w.BeginObject();
    w.Key("label");
    w.String(point.label);
    if (!point.error.empty()) {
      w.Key("error");
      w.String(point.error);
    } else {
      w.Key("engine");
      w.RawValue(point.engine_json);
      if (!point.validation_json.empty()) {
        w.Key("validation");
        w.RawValue(point.validation_json);
      }
    }
    w.EndObject();
  }
  w.EndArray();
  if (!validation_summary_json_.empty()) {
    w.Key("validation_summary");
    w.RawValue(validation_summary_json_);
  }
  // Aggregate provenance-journal traffic across the sweep's engines —
  // how many audit entries/bytes/syncs the run produced and whether any
  // journal degraded (append/sync errors). bench_diff treats "audit" as
  // sanctioned drift, like "run".
  {
    uint64_t entries = 0, bytes = 0, syncs = 0;
    uint64_t append_errors = 0, sync_errors = 0, journals = 0;
    for (const Point& point : points_) {
      if (point.engine_json.empty()) continue;
      StatusOr<JsonValue> doc = JsonValue::Parse(point.engine_json);
      if (!doc.ok()) continue;
      const JsonValue* journal = doc->FindPath({"audit", "journal"});
      if (journal == nullptr || !journal->is_object()) continue;
      ++journals;
      auto add = [&](const char* key, uint64_t* acc) {
        const JsonValue* v = journal->Find(key);
        if (v != nullptr) *acc += static_cast<uint64_t>(v->number_value());
      };
      add("entries", &entries);
      add("bytes", &bytes);
      add("syncs", &syncs);
      add("append_errors", &append_errors);
      add("sync_errors", &sync_errors);
    }
    w.Key("audit");
    w.BeginObject();
    w.Key("journals");
    w.Uint(journals);
    w.Key("entries");
    w.Uint(entries);
    w.Key("bytes");
    w.Uint(bytes);
    w.Key("syncs");
    w.Uint(syncs);
    w.Key("append_errors");
    w.Uint(append_errors);
    w.Key("sync_errors");
    w.Uint(sync_errors);
    w.EndObject();
  }
  if (jobs_ != 0) {
    w.Key("run");
    w.BeginObject();
    w.Key("jobs");
    w.Uint(jobs_);
    w.Key("wall_seconds");
    w.Double(wall_seconds_);
    w.EndObject();
  }
  w.EndObject();
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics sidecar: cannot open %s\n", path_.c_str());
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  // stderr, like the wall_seconds report: stdout carries only the tables,
  // which must be byte-identical across --jobs widths (DESIGN.md §12).
  std::fprintf(stderr, "metrics sidecar: %s (%zu points)\n", path_.c_str(),
               points_.size());
}

namespace {

// Re-emits `value` minus every wall-clock member (IsWallClockField), at
// any depth — engine dumps now carry a machine-dependent "recovery.wall"
// block that must not participate in cross-width byte comparisons.
void DumpDeterministic(const JsonValue& value, JsonWriter* w) {
  switch (value.type()) {
    case JsonValue::Type::kObject:
      w->BeginObject();
      for (const auto& [key, member] : value.object_items()) {
        if (IsWallClockField(key)) continue;
        w->Key(key);
        DumpDeterministic(member, w);
      }
      w->EndObject();
      break;
    case JsonValue::Type::kArray:
      w->BeginArray();
      for (const JsonValue& item : value.array_items()) {
        DumpDeterministic(item, w);
      }
      w->EndArray();
      break;
    default:
      w->RawValue(value.Dump());
      break;
  }
}

}  // namespace

StatusOr<std::string> MetricsSidecar::DeterministicView(
    std::string_view sidecar_json) {
  MMDB_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(sidecar_json));
  JsonWriter w;
  w.BeginObject();
  for (const auto& [key, value] : doc.object_items()) {
    if (key == "run") continue;
    w.Key(key);
    DumpDeterministic(value, &w);
  }
  w.EndObject();
  return w.TakeString();
}

}  // namespace mmdb
