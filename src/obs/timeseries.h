#ifndef MMDB_OBS_TIMESERIES_H_
#define MMDB_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/json.h"

namespace mmdb {

// Virtual-clock time series of selected instruments. The engine registers
// a fixed set of counters/gauges once at startup, then calls SampleUpTo()
// whenever the virtual clock advances; the sampler snapshots every source
// at each epoch boundary crossed into a bounded ring (oldest samples are
// dropped first, with a drop count, so a long run cannot grow the dump
// without bound).
//
// Sampling is driven by clock advancement, not by time passing "inside"
// the engine: a sample at epoch boundary t carries the instrument values
// observed at the first clock movement that reaches or passes t. Because
// the clock is virtual and every source reads deterministic state, the
// exported series is byte-identical across runs and sweep widths; the only
// nondeterministic field is the wall-clock collection cost, which lives
// under a "wall" member so the sidecar's sanctioned-nondeterminism
// stripping (see obs/bench_diff.h IsWallClockField) removes it.
//
// Not thread-safe: owned and driven by the single engine thread.
class TimeSeriesSampler {
 public:
  struct Options {
    double epoch = 0.1;     // virtual seconds between samples; must be > 0
    size_t capacity = 512;  // max retained samples
  };

  explicit TimeSeriesSampler(const Options& options);

  // Registration order defines the export column order. Sources must
  // outlive the sampler.
  void AddCounter(std::string name, const Counter* counter);
  void AddGauge(std::string name, std::function<double()> fn);

  // Records one sample per epoch boundary in (last sampled, now].
  void SampleUpTo(double now);

  size_t num_samples() const { return ring_.size(); }
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const { return dropped_; }

  // {"epoch":e,"capacity":n,"series":[names...],
  //  "samples":[{"t":t,"v":[values...]}...],"recorded":n,"dropped":n,
  //  "wall":{"sample_seconds":s}}
  void ToJson(JsonWriter* writer) const;

 private:
  struct Source {
    std::string name;
    const Counter* counter = nullptr;  // exactly one of counter/fn is set
    std::function<double()> fn;
  };
  struct Sample {
    double t;
    std::vector<double> values;
  };

  void Record(double t);

  Options options_;
  std::vector<Source> sources_;
  std::vector<Sample> ring_;  // chronological; front dropped when full
  size_t head_ = 0;           // index of oldest sample once the ring wrapped
  uint64_t next_epoch_index_ = 1;  // next boundary is epoch * index
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
  double sample_wall_seconds_ = 0.0;
};

}  // namespace mmdb

#endif  // MMDB_OBS_TIMESERIES_H_
