#include "obs/trace_export.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/shard.h"

namespace mmdb {

namespace {

// One synthetic thread per engine component; slice nesting inside a track
// reflects the virtual-clock intervals the engine modeled.
enum Track : int {
  kTrackCheckpoint = 1,
  kTrackCheckpointIo = 2,
  kTrackLog = 3,
  kTrackLock = 4,
  kTrackFault = 5,
  kTrackRecovery = 6,
  kTrackRecoveryOnDemand = 7,
  // Per-shard checkpoint.io tracks (TraceExportOptions::shard_tracks):
  // shard k's segment writes land on tid kTrackShardIoBase + k.
  kTrackShardIoBase = 100,
};

constexpr struct {
  int tid;
  const char* name;
} kTracks[] = {
    {kTrackCheckpoint, "checkpoint"}, {kTrackCheckpointIo, "checkpoint.io"},
    {kTrackLog, "log"},               {kTrackLock, "lock"},
    {kTrackFault, "fault"},           {kTrackRecovery, "recovery"},
    {kTrackRecoveryOnDemand, "recovery.on_demand"},
};

// Virtual-clock seconds -> trace_event microseconds.
double Micros(double seconds) { return seconds * 1e6; }

// "checkpoint.begin" -> "checkpoint": the component becomes the category.
std::string_view Category(std::string_view kind) {
  size_t dot = kind.find('.');
  return dot == std::string_view::npos ? kind : kind.substr(0, dot);
}

// Resolves the ring's "kind" string back to its enumerator via the name
// table (the exporter's inverse of TraceEventTypeName). npos-style -1 for
// kinds this build does not know.
int KindIndex(std::string_view kind) {
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    if (TraceEventTypeName(static_cast<TraceEventType>(i)) == kind) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

double NumberOr(const JsonValue* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

void AppendThreadName(int pid, int tid, std::string_view name,
                      JsonWriter* w) {
  w->BeginObject();
  w->Key("name");
  w->String("thread_name");
  w->Key("ph");
  w->String("M");
  w->Key("pid");
  w->Int(pid);
  w->Key("tid");
  w->Int(tid);
  w->Key("args");
  w->BeginObject();
  w->Key("name");
  w->String(name);
  w->EndObject();
  w->EndObject();
}

// Copies the event's payload members ("seq" and the table-named fields;
// everything except "kind" and "t") into the trace_event args object, so
// the viewer's detail pane shows exactly what the ring recorded.
void AppendArgs(const JsonValue& event, JsonWriter* w) {
  w->Key("args");
  w->BeginObject();
  for (const auto& [key, value] : event.object_items()) {
    if (key == "kind" || key == "t") continue;
    w->Key(key);
    w->RawValue(value.Dump());
  }
  w->EndObject();
}

// Emits one complete trace_event object. `dur` < 0 means "no dur member"
// (B/E/i phases); `instant` adds the scope member instants require.
void AppendEvent(std::string_view name, std::string_view cat,
                 std::string_view ph, double ts_us, double dur_us, int pid,
                 int tid, bool instant, const JsonValue& event,
                 JsonWriter* w) {
  w->BeginObject();
  w->Key("name");
  w->String(name);
  w->Key("cat");
  w->String(cat);
  w->Key("ph");
  w->String(ph);
  w->Key("ts");
  w->Double(ts_us);
  if (dur_us >= 0) {
    w->Key("dur");
    w->Double(dur_us);
  }
  w->Key("pid");
  w->Int(pid);
  w->Key("tid");
  w->Int(tid);
  if (instant) {
    w->Key("s");
    w->String("t");  // thread-scoped instant
  }
  AppendArgs(event, w);
  w->EndObject();
}

// Perfetto flow events tie each checkpoint span to the recovery spans that
// consumed it: an "s" at the checkpoint's completion instant and an "f"
// (binding point "e": attach to the enclosing slice's end) at each
// recovery that restored it, sharing the checkpoint id. The viewer then
// draws a provenance arrow from the checkpoint to its consumers.
void AppendFlowEvent(std::string_view ph, uint64_t id, double ts_us, int pid,
                     int tid, JsonWriter* w,
                     std::string_view name = "checkpoint_provenance") {
  w->BeginObject();
  w->Key("name");
  w->String(name);
  w->Key("cat");
  w->String("flow");
  w->Key("ph");
  w->String(ph);
  w->Key("id");
  w->Uint(id);
  w->Key("ts");
  w->Double(ts_us);
  w->Key("pid");
  w->Int(pid);
  w->Key("tid");
  w->Int(tid);
  if (ph == "f") {
    w->Key("bp");
    w->String("e");
  }
  w->EndObject();
}

}  // namespace

void AppendProcessName(int pid, std::string_view name, JsonWriter* w) {
  w->BeginObject();
  w->Key("name");
  w->String("process_name");
  w->Key("ph");
  w->String("M");
  w->Key("pid");
  w->Int(pid);
  w->Key("args");
  w->BeginObject();
  w->Key("name");
  w->String(name);
  w->EndObject();
  w->EndObject();
}

Status AppendChromeTraceEvents(const JsonValue& trace_doc, int pid,
                               JsonWriter* writer, TraceExportStats* stats,
                               const TraceExportOptions& options) {
  const JsonValue* events = trace_doc.Find("events");
  if (events == nullptr || !events->is_array()) {
    return InvalidArgumentError(
        "trace document has no \"events\" array (tracing disabled?)");
  }
  // Per-shard checkpoint.io routing: resolve the segment partition the
  // tracks are laid out over. With no dump-provided segment count, infer
  // it from the largest segment id the ring retained (an underestimate if
  // the hottest segments never appear, but a pure viewer aid either way).
  ShardLayout shard_layout;
  bool shard_io = options.shard_tracks > 1;
  if (shard_io) {
    uint64_t num_segments = options.num_segments;
    if (num_segments == 0) {
      for (const JsonValue& event : events->array_items()) {
        const JsonValue* kind = event.Find("kind");
        if (kind == nullptr || !kind->is_string() ||
            kind->string_value() != "checkpoint.segment_write") {
          continue;
        }
        num_segments = std::max(
            num_segments,
            static_cast<uint64_t>(NumberOr(event.Find("segment"), 0)) + 1);
      }
    }
    if (num_segments == 0) {
      shard_io = false;  // no segment-carrying events to route
    } else {
      uint32_t segs = static_cast<uint32_t>(num_segments);
      shard_layout = ShardLayout(std::min(options.shard_tracks, segs), segs);
    }
  }
  for (const auto& track : kTracks) {
    if (shard_io && track.tid == kTrackCheckpointIo) {
      for (uint32_t k = 0; k < shard_layout.shards; ++k) {
        AppendThreadName(pid, kTrackShardIoBase + static_cast<int>(k),
                         "checkpoint.io.shard" + std::to_string(k), writer);
      }
      continue;
    }
    AppendThreadName(pid, track.tid, track.name, writer);
  }
  // Open-slice depth per B/E track, so an E whose B fell out of the ring
  // degrades to an instant instead of corrupting the viewer's slice stack.
  size_t checkpoint_depth = 0;
  size_t recovery_depth = 0;
  // kRecoveryPhase events are recorded at the crash instant with their
  // durations in "seconds"; this cursor lays them end to end.
  double recovery_cursor = 0.0;
  TraceExportStats local;
  for (const JsonValue& event : events->array_items()) {
    const JsonValue* kind_v = event.Find("kind");
    const JsonValue* t_v = event.Find("t");
    int kind_index = -1;
    if (kind_v != nullptr && kind_v->is_string() && t_v != nullptr &&
        t_v->is_number()) {
      kind_index = KindIndex(kind_v->string_value());
    }
    if (kind_index < 0) {
      ++local.events_skipped;
      continue;
    }
    const std::string& kind = kind_v->string_value();
    std::string_view cat = Category(kind);
    double t = t_v->number_value();
    double ts = Micros(t);
    auto type = static_cast<TraceEventType>(kind_index);
    const TraceEventFields& fields = TraceEventFieldsFor(type);
    // For X phases: t2 is either an absolute completion time or already a
    // duration, per the field table.
    double t2 = fields.t2_name != nullptr
                    ? NumberOr(event.Find(fields.t2_name), t)
                    : t;
    double dur = fields.t2_is_end_time ? Micros(t2 - t) : Micros(t2);
    if (dur < 0) dur = 0;
    switch (type) {
      case TraceEventType::kCheckpointBegin:
        ++checkpoint_depth;
        AppendEvent("checkpoint", cat, "B", ts, -1, pid, kTrackCheckpoint,
                    false, event, writer);
        break;
      case TraceEventType::kCheckpointEnd:
      case TraceEventType::kCheckpointAbort:
        if (checkpoint_depth == 0) {
          AppendEvent(kind, cat, "i", ts, -1, pid, kTrackCheckpoint, true,
                      event, writer);
        } else {
          --checkpoint_depth;
          AppendEvent("checkpoint", cat, "E", ts, -1, pid, kTrackCheckpoint,
                      false, event, writer);
        }
        if (type == TraceEventType::kCheckpointEnd) {
          // Completed checkpoints start a provenance flow (aborts never
          // become a recovery source, so they get no flow).
          uint64_t ckpt =
              static_cast<uint64_t>(NumberOr(event.Find("checkpoint"), 0));
          if (ckpt > 0) {
            AppendFlowEvent("s", ckpt, ts, pid, kTrackCheckpoint, writer);
          }
        }
        break;
      case TraceEventType::kCheckpointSegmentWrite: {
        int tid = kTrackCheckpointIo;
        if (shard_io) {
          uint32_t segment =
              static_cast<uint32_t>(NumberOr(event.Find("segment"), 0));
          segment = std::min(segment, shard_layout.num_segments - 1);
          tid = kTrackShardIoBase +
                static_cast<int>(shard_layout.ShardOfSegment(segment));
        }
        AppendEvent(kind, cat, "X", ts, dur, pid, tid, false, event, writer);
        break;
      }
      case TraceEventType::kLogAppend:
      case TraceEventType::kLogFlushError:
        AppendEvent(kind, cat, "i", ts, -1, pid, kTrackLog, true, event,
                    writer);
        break;
      case TraceEventType::kLogFlush:
        AppendEvent(kind, cat, "X", ts, dur, pid, kTrackLog, false, event,
                    writer);
        break;
      case TraceEventType::kLockWait:
        AppendEvent(kind, cat, "X", ts, dur, pid, kTrackLock, false, event,
                    writer);
        break;
      case TraceEventType::kLockConflict:
        AppendEvent(kind, cat, "i", ts, -1, pid, kTrackLock, true, event,
                    writer);
        break;
      case TraceEventType::kFaultInjected:
        AppendEvent(kind, cat, "i", ts, -1, pid, kTrackFault, true, event,
                    writer);
        break;
      case TraceEventType::kRecoveryBegin:
        ++recovery_depth;
        recovery_cursor = t;
        AppendEvent("recovery", cat, "B", ts, -1, pid, kTrackRecovery, false,
                    event, writer);
        break;
      case TraceEventType::kRecoveryPhase: {
        // Phases share the recovery start time; lay them out sequentially.
        if (recovery_depth == 0) recovery_cursor = t;
        double phase_seconds = t2;
        AppendEvent(kind, cat, "X", Micros(recovery_cursor),
                    Micros(phase_seconds), pid, kTrackRecovery, false, event,
                    writer);
        recovery_cursor += phase_seconds;
        break;
      }
      case TraceEventType::kRecoveryEnd: {
        // t2 = total recovery seconds; the slice closes when replay does.
        if (recovery_depth == 0) {
          AppendEvent(kind, cat, "i", Micros(t + t2), -1, pid,
                      kTrackRecovery, true, event, writer);
        } else {
          --recovery_depth;
          AppendEvent("recovery", cat, "E", Micros(t + t2), -1, pid,
                      kTrackRecovery, false, event, writer);
        }
        // Close the provenance flow from the restored checkpoint (0 =
        // cold start, nothing was consumed).
        uint64_t ckpt =
            static_cast<uint64_t>(NumberOr(event.Find("checkpoint"), 0));
        if (ckpt > 0) {
          AppendFlowEvent("f", ckpt, Micros(t + t2), pid, kTrackRecovery,
                          writer);
        }
        break;
      }
      case TraceEventType::kRecoveryFanout:
        AppendEvent(kind, cat, "i", ts, -1, pid, kTrackRecovery, true, event,
                    writer);
        break;
      case TraceEventType::kRecoverySegmentOnDemand: {
        // One span per on-demand materialization: modeled backup-read
        // submission to availability. Touch-triggered loads additionally
        // get a flow arrow from the stalling transaction's slice on the
        // lock track to the recovery span.
        AppendEvent(kind, cat, "X", ts, dur, pid, kTrackRecoveryOnDemand,
                    false, event, writer);
        int64_t trigger =
            static_cast<int64_t>(NumberOr(event.Find("trigger"), -1));
        if (trigger == 0) {
          uint64_t segment =
              static_cast<uint64_t>(NumberOr(event.Find("segment"), 0));
          uint64_t flow_id = 1000000 + segment;
          AppendFlowEvent("s", flow_id, ts, pid, kTrackLock, writer,
                          "recovery_on_demand");
          AppendFlowEvent("f", flow_id, ts + dur, pid, kTrackRecoveryOnDemand,
                          writer, "recovery_on_demand");
        }
        break;
      }
    }
    ++local.events_exported;
  }
  if (stats != nullptr) {
    stats->events_exported += local.events_exported;
    stats->events_skipped += local.events_skipped;
  }
  return Status();
}

Status AppendCounterTrackEvents(const JsonValue& timeseries_doc, int pid,
                                JsonWriter* writer, TraceExportStats* stats) {
  const JsonValue* series = timeseries_doc.Find("series");
  const JsonValue* samples = timeseries_doc.Find("samples");
  if (series == nullptr || !series->is_array() || samples == nullptr ||
      !samples->is_array()) {
    return InvalidArgumentError(
        "timeseries document has no \"series\"/\"samples\" arrays");
  }
  TraceExportStats local;
  for (const JsonValue& sample : samples->array_items()) {
    const JsonValue* t_v = sample.Find("t");
    const JsonValue* values = sample.Find("v");
    if (t_v == nullptr || !t_v->is_number() || values == nullptr ||
        !values->is_array() ||
        values->array_items().size() != series->array_items().size()) {
      ++local.events_skipped;
      continue;
    }
    double ts = Micros(t_v->number_value());
    for (size_t i = 0; i < series->array_items().size(); ++i) {
      const JsonValue& name = series->array_items()[i];
      const JsonValue& value = values->array_items()[i];
      if (!name.is_string() || !value.is_number()) {
        ++local.events_skipped;
        continue;
      }
      writer->BeginObject();
      writer->Key("name");
      writer->String(name.string_value());
      writer->Key("cat");
      writer->String("timeseries");
      writer->Key("ph");
      writer->String("C");
      writer->Key("ts");
      writer->Double(ts);
      writer->Key("pid");
      writer->Int(pid);
      writer->Key("args");
      writer->BeginObject();
      writer->Key("value");
      writer->Double(value.number_value());
      writer->EndObject();
      writer->EndObject();
      ++local.events_exported;
    }
  }
  if (stats != nullptr) {
    stats->events_exported += local.events_exported;
    stats->events_skipped += local.events_skipped;
  }
  return Status();
}

namespace {

// Appends the counter tracks for an engine dump's "timeseries" member when
// present and populated (null when sampling is disabled).
Status MaybeAppendTimeseries(const JsonValue& engine_doc, int pid,
                             JsonWriter* writer, TraceExportStats* stats) {
  const JsonValue* timeseries = engine_doc.Find("timeseries");
  if (timeseries == nullptr || !timeseries->is_object()) return Status();
  return AppendCounterTrackEvents(*timeseries, pid, writer, stats);
}

// Total segment count recorded in an engine dump's "shards" member (the
// sum of the per-shard range sizes), or 0 when the dump predates it.
uint64_t NumSegmentsFromDump(const JsonValue& engine_doc) {
  const JsonValue* per_shard = engine_doc.FindPath({"shards", "per_shard"});
  if (per_shard == nullptr || !per_shard->is_array()) return 0;
  uint64_t total = 0;
  for (const JsonValue& s : per_shard->array_items()) {
    total += static_cast<uint64_t>(NumberOr(s.Find("segments"), 0));
  }
  return total;
}

// Per-engine copy of the export options with num_segments resolved from
// the dump when the caller left it to be inferred.
TraceExportOptions ResolveOptions(const TraceExportOptions& options,
                                  const JsonValue& engine_doc) {
  TraceExportOptions resolved = options;
  if (resolved.shard_tracks > 1 && resolved.num_segments == 0) {
    resolved.num_segments = NumSegmentsFromDump(engine_doc);
  }
  return resolved;
}

// Process name for a single engine dump: "FUZZYCOPY/partial" when the
// document carries its identity, else the fallback.
std::string EngineProcessName(const JsonValue& engine_doc,
                              std::string_view fallback) {
  const JsonValue* algorithm = engine_doc.Find("algorithm");
  const JsonValue* mode = engine_doc.Find("mode");
  if (algorithm != nullptr && algorithm->is_string() && mode != nullptr &&
      mode->is_string()) {
    return algorithm->string_value() + "/" + mode->string_value();
  }
  return std::string(fallback);
}

}  // namespace

StatusOr<std::string> ChromeTraceFromMetricsDoc(
    const JsonValue& doc, TraceExportStats* stats,
    const TraceExportOptions& options) {
  if (!doc.is_object()) {
    return InvalidArgumentError("metrics document is not a JSON object");
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  size_t engines = 0;
  if (const JsonValue* points = doc.Find("points");
      points != nullptr && points->is_array()) {
    // Bench sidecar: one trace process per measured point, named by its
    // label. Error points and trace-less engines are skipped.
    int pid = 0;
    for (const JsonValue& point : points->array_items()) {
      ++pid;
      const JsonValue* trace = point.FindPath({"engine", "trace"});
      if (trace == nullptr || !trace->is_object()) continue;
      const JsonValue* label = point.Find("label");
      std::string name = (label != nullptr && label->is_string())
                             ? label->string_value()
                             : "point " + std::to_string(pid);
      AppendProcessName(pid, name, &w);
      const JsonValue* engine = point.Find("engine");
      MMDB_RETURN_IF_ERROR(AppendChromeTraceEvents(
          *trace, pid, &w, stats,
          engine != nullptr ? ResolveOptions(options, *engine) : options));
      if (engine != nullptr) {
        MMDB_RETURN_IF_ERROR(MaybeAppendTimeseries(*engine, pid, &w, stats));
      }
      ++engines;
    }
  } else if (const JsonValue* trace = doc.Find("trace");
             trace != nullptr && trace->is_object()) {
    // Single Engine::DumpMetricsJson document.
    AppendProcessName(1, EngineProcessName(doc, "engine"), &w);
    MMDB_RETURN_IF_ERROR(AppendChromeTraceEvents(*trace, 1, &w, stats,
                                                 ResolveOptions(options, doc)));
    MMDB_RETURN_IF_ERROR(MaybeAppendTimeseries(doc, 1, &w, stats));
    ++engines;
  } else if (doc.Find("events") != nullptr) {
    // Bare Tracer::ToJson document.
    AppendProcessName(1, "trace", &w);
    MMDB_RETURN_IF_ERROR(AppendChromeTraceEvents(doc, 1, &w, stats, options));
    ++engines;
  }
  if (engines == 0) {
    return InvalidArgumentError(
        "no trace data found: expected an engine metrics dump with a "
        "\"trace\" member, a bench sidecar with \"points\", or a raw trace "
        "document with \"events\"");
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  return w.TakeString();
}

StatusOr<std::string> ChromeTraceFromMetricsJson(
    std::string_view json, TraceExportStats* stats,
    const TraceExportOptions& options) {
  MMDB_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(json));
  return ChromeTraceFromMetricsDoc(doc, stats, options);
}

StatusOr<std::string> ChromeTraceFromTracer(const Tracer& tracer,
                                            std::string_view process_name) {
  MMDB_ASSIGN_OR_RETURN(JsonValue doc,
                        JsonValue::Parse(tracer.ToJsonString()));
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  AppendProcessName(1, process_name, &w);
  MMDB_RETURN_IF_ERROR(AppendChromeTraceEvents(doc, 1, &w, nullptr));
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  return w.TakeString();
}

}  // namespace mmdb
