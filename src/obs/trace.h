#ifndef MMDB_OBS_TRACE_H_
#define MMDB_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace mmdb {

// Structured engine events. Each event is a small POD: a type, the virtual
// time it happened at, an optional second time (completion / release), and
// up to three integer payload fields whose meaning depends on the type
// (the JSON emitter names them; see trace.cc's field tables).
enum class TraceEventType : uint8_t {
  kCheckpointBegin,         // a=id, b=algorithm, c=mode (0 full, 1 partial)
  kCheckpointSegmentWrite,  // t2=done, a=segment, b=copy, c=bytes
  kCheckpointEnd,           // a=id, b=segments_flushed, c=segments_skipped
  kCheckpointAbort,         // a=id, b=segments_flushed so far
  kLogAppend,               // a=lsn, b=record type, c=frame bytes
  kLogFlush,                // t2=durable at, a=durable lsn, b=bytes
  kLogFlushError,           // a=last lsn still volatile
  kLockWait,                // t2=resume time (checkpoint lock / quiesce)
  kLockConflict,            // a=txn, b=record (no-wait lock abort)
  kFaultInjected,           // a=fault kind, b=op index
  kRecoveryBegin,           // a=1 if restart (OpenExisting), else 0
  kRecoveryPhase,           // t2=seconds, a=phase, b/c=phase counts
  kRecoveryEnd,             // t2=total seconds, a=checkpoint id restored
  kRecoveryFanout,          // a=threads, b=segments, c=replay buckets
  // Instant recovery (DESIGN.md §19): one event per on-demand segment
  // materialization. time=modeled submission of the backup read,
  // t2=availability (absolute), a=segment, b=trigger (0 touch,
  // 1 background, 2 force), c=first-materialization ordinal.
  kRecoverySegmentOnDemand,
};

// Number of TraceEventType enumerators, for table-driven iteration (the
// field tables below, the Perfetto exporter's kind map, and the
// completeness tests). Keep in sync with the last enumerator.
inline constexpr size_t kNumTraceEventTypes =
    static_cast<size_t>(TraceEventType::kRecoverySegmentOnDemand) + 1;

std::string_view TraceEventTypeName(TraceEventType type);

// Recovery phases reported via kRecoveryPhase (field `a`).
enum class RecoveryPhase : uint8_t {
  kBackupLoad = 0,  // b=segments loaded, c=copy index
  kLogRead = 1,     // b=log bytes read
  kReplay = 2,      // b=updates applied, c=transactions redone
};

std::string_view RecoveryPhaseName(RecoveryPhase phase);

// How one integer payload field (a/b/c) is rendered in JSON.
enum class TraceFieldCoding : uint8_t {
  kNone,        // field unused by this event type
  kInt,         // plain integer
  kBool,        // true/false
  kAlgorithm,   // AlgorithmName(static_cast<Algorithm>(v))
  kMode,        // "full" / "partial"
  kRecordType,  // LogRecordTypeName(static_cast<LogRecordType>(v))
  kFault,       // FaultKindName(static_cast<FaultKind>(v))
  kPhase,       // RecoveryPhaseName(static_cast<RecoveryPhase>(v))
};

struct TraceFieldSpec {
  const char* name = nullptr;  // JSON member name; null when unused
  TraceFieldCoding coding = TraceFieldCoding::kNone;
};

// Field table for one event type: the JSON names and codings of its t2 and
// a/b/c payload members. Single source of truth shared by the trace-ring
// JSON emitter and the Perfetto exporter, so the spellings cannot drift.
struct TraceEventFields {
  const char* t2_name = nullptr;  // null = type has no t2 member
  // True: t2 is an absolute completion/release time on the virtual
  // timeline (duration = t2 - time). False: t2 is already a duration in
  // seconds (the recovery events).
  bool t2_is_end_time = false;
  TraceFieldSpec a, b, c;
};

const TraceEventFields& TraceEventFieldsFor(TraceEventType type);

struct TraceEvent {
  TraceEventType type = TraceEventType::kLogAppend;
  double time = 0.0;
  double t2 = 0.0;
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
};

// Bounded ring buffer of TraceEvents. When full, the oldest events are
// overwritten and counted as dropped — tracing never blocks or grows
// memory. Record() is a couple of stores under a mutex, cheap enough to
// stay on by default.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  // The capacity an engine should actually use: the MMDB_TRACE_CAPACITY
  // environment variable (a positive event count) when set and parseable,
  // otherwise `configured` (EngineOptions::trace_capacity, default
  // kDefaultCapacity = 8192 events). The override exists so tools like
  // check.sh's bench-smoke gate can shrink every engine's ring without
  // touching bench code.
  static size_t ResolveCapacity(size_t configured);

  void Record(const TraceEvent& event);
  // Convenience for call sites building events inline.
  void Record(TraceEventType type, double time, double t2 = 0.0,
              int64_t a = 0, int64_t b = 0, int64_t c = 0) {
    Record(TraceEvent{type, time, t2, a, b, c});
  }

  size_t capacity() const { return capacity_; }
  // Events recorded since construction (including overwritten ones).
  uint64_t recorded() const;
  // Events lost to ring overwrite.
  uint64_t dropped() const;

  void Clear();

  // Oldest-first copy of the retained events.
  std::vector<TraceEvent> Snapshot() const;

  // {"events":[{"seq":..,"kind":..,"t":..,...}],"recorded":N,"dropped":N}.
  // `seq` is the global record index, so consumers can detect the gap left
  // by dropped events.
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  uint64_t recorded_ = 0;  // next global sequence number
};

// Emits one trace event as a JSON object with type-specific field names.
// Exposed so alternate exporters (the mmdb_stats tool's tests, future
// sinks) format events identically to Tracer::ToJson.
void TraceEventToJson(const TraceEvent& event, uint64_t seq,
                      JsonWriter* writer);

}  // namespace mmdb

#endif  // MMDB_OBS_TRACE_H_
