#include "obs/metrics_registry.h"

#include "util/string_util.h"

namespace mmdb {

namespace {

template <typename Map, typename T>
T* FindOrCreate(std::mutex& mu, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricsRegistry::counter(std::string_view name) {
  return FindOrCreate<decltype(counters_), Counter>(mu_, counters_, name);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  return FindOrCreate<decltype(gauges_), Gauge>(mu_, gauges_, name);
}

Timer* MetricsRegistry::timer(std::string_view name) {
  return FindOrCreate<decltype(timers_), Timer>(mu_, timers_, name);
}

Timer* MetricsRegistry::timer(std::string_view name, double bucket_ratio) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>(bucket_ratio))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::ToJson(JsonWriter* writer) const {
  std::lock_guard<std::mutex> lock(mu_);
  writer->BeginObject();
  writer->Key("counters");
  writer->BeginObject();
  for (const auto& [name, c] : counters_) {
    writer->Key(name);
    writer->Uint(c->value());
  }
  writer->EndObject();
  writer->Key("gauges");
  writer->BeginObject();
  for (const auto& [name, g] : gauges_) {
    writer->Key(name);
    writer->Double(g->value());
  }
  writer->EndObject();
  writer->Key("timers");
  writer->BeginObject();
  for (const auto& [name, t] : timers_) {
    Histogram h = t->Snapshot();
    writer->Key(name);
    writer->BeginObject();
    writer->Key("count");
    writer->Uint(h.count());
    writer->Key("mean");
    writer->Double(h.Mean());
    writer->Key("min");
    writer->Double(h.min());
    writer->Key("max");
    writer->Double(h.max());
    writer->Key("p50");
    writer->Double(h.Percentile(50.0));
    writer->Key("p90");
    writer->Double(h.Percentile(90.0));
    writer->Key("p99");
    writer->Double(h.Percentile(99.0));
    writer->Key("p999");
    writer->Double(h.Percentile(99.9));
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

std::string MetricsRegistry::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StringPrintf("%-40s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StringPrintf("%-40s %g\n", name.c_str(), g->value());
  }
  for (const auto& [name, t] : timers_) {
    out += StringPrintf("%-40s %s\n", name.c_str(),
                        t->Snapshot().ToString().c_str());
  }
  return out;
}

}  // namespace mmdb
