#ifndef MMDB_OBS_BENCH_DIFF_H_
#define MMDB_OBS_BENCH_DIFF_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/statusor.h"

namespace mmdb {

// Structural diff between two bench metrics sidecars (obs/sidecar.h), the
// regression gate behind tools/mmdb_bench_diff and check.sh bench-smoke:
// a fresh sweep is compared against a committed baseline
// (bench/baselines/*.json) and any drift outside tolerance fails the
// build.
//
// Comparison rules:
//   * The top-level "run" member (jobs + wall_seconds) is ignored on both
//     sides, as is any member IsWallClockField names (nested "wall"
//     objects and *wall_seconds / *busy_seconds leaves) — the sidecar's
//     sanctioned nondeterminism (MetricsSidecar::DeterministicView strips
//     the same members).
//   * Leaves whose key names a virtual-clock timing or model quantity
//     (see IsTimingField) compare within max(abs_tol, rel_tol * max(|a|,
//     |b|)) — headroom for cross-toolchain floating-point drift.
//   * Every other leaf — counters, labels, trace kinds, error strings —
//     must match exactly, as must object keys, array lengths, and types.

struct BenchDiffOptions {
  // Relative tolerance for timing-valued leaves. 0 demands exact equality
  // everywhere (same-binary, same-machine comparisons).
  double rel_tol = 0.05;
  // Absolute floor so near-zero timings don't fail on representation
  // noise.
  double abs_tol = 1e-9;
  // Cap on recorded mismatch descriptions (counting continues past it).
  std::size_t max_reports = 25;
};

struct BenchDiffResult {
  std::size_t leaves_compared = 0;
  std::size_t mismatches = 0;
  // Human-readable "path: baseline=... current=..." lines, capped at
  // BenchDiffOptions::max_reports.
  std::vector<std::string> reports;

  bool equal() const { return mismatches == 0; }
};

// True when `key` names a quantity measured in virtual-clock seconds or a
// model-oracle value: tolerance applies. Matches "...seconds"/"..._s"
// suffixes, the trace-ring time members (t/done/durable_at/until/now/
// begin/end), timer summary fields (mean/min/max/p50/p99), and the oracle
// block (predicted/measured/...residual).
bool IsTimingField(std::string_view key);

// True when `key` names REAL wall-clock state — a nested "wall" object or
// a leaf ending in "wall_seconds"/"busy_seconds" (parallel recovery's
// phase breakdown). Unlike timing fields these are machine-dependent, so
// the differ skips them entirely rather than applying a tolerance, and
// MetricsSidecar::DeterministicView strips them recursively.
bool IsWallClockField(std::string_view key);

// Diffs two parsed sidecar documents. The Status is only non-OK for
// structurally unusable inputs (non-object roots); mismatches are
// reported through the result, not the Status.
StatusOr<BenchDiffResult> DiffBenchDocs(const JsonValue& baseline,
                                        const JsonValue& current,
                                        const BenchDiffOptions& options = {});

// Parses then diffs raw sidecar bytes. CORRUPTION on malformed JSON.
StatusOr<BenchDiffResult> DiffBenchJson(std::string_view baseline_json,
                                        std::string_view current_json,
                                        const BenchDiffOptions& options = {});

}  // namespace mmdb

#endif  // MMDB_OBS_BENCH_DIFF_H_
