#ifndef MMDB_OBS_AUDIT_H_
#define MMDB_OBS_AUDIT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "env/env.h"
#include "util/json.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/types.h"

namespace mmdb {

// Provenance journal for the durability path (DESIGN.md §18).
//
// Every checkpoint lifecycle event (begin / per-segment flush / degradation /
// end / abort-and-retry, log cuts) and every recovery decision (which backup
// copy restored each segment, older-copy fallback and its trigger, per-stream
// valid prefixes and torn-gang truncation, the per-segment replay ranges) is
// appended to `audit.log` as one self-checksummed JSON line:
//
//   {"seq":N,"t":<virtual seconds>,"event":"ckpt.begin",...,"crc":C}
//
// where C = crc32c over the line with the ",\"crc\":C" splice removed. The
// journal is an *audit artifact*, not a recovery input: the engine never
// reads it to make decisions, and journal write failures degrade to counters
// instead of failing the engine. It is written through the engine's Env so
// fault injection composes; MeteredEnv exempts audit paths so the metrics
// registry snapshot stays bit-identical with auditing on or off.
//
// Event taxonomy (field names are part of the format, see DESIGN.md §18):
//   ckpt.begin    {ckpt, algorithm, mode, copy, begin_lsn, begin_offset}
//   ckpt.flush    {ckpt, segment, copy, lsn, bytes}
//   ckpt.degraded {ckpt, segment}                 (modern snapshot overlays)
//   ckpt.end      {ckpt, copy, flushed, skipped}              [synced]
//   ckpt.abort    {ckpt, cause, flushed}                      [synced]
//   ckpt.log_cut  {cut, reclaimed, stream_bases[]}
//   recovery.begin    {restart}
//   recovery.streams  {valid_bytes[], dropped_frames[], torn_gang, gap_lsn}
//   recovery.plan     {checkpoint, copy, begin_offset, source}
//   recovery.fallback {from_checkpoint, from_copy, to_checkpoint, to_copy,
//                      trigger, failed_segments[], full_reload}
//   recovery.segment_on_demand {segment, trigger, checkpoint, copy, retried,
//                      frames, order}      (instant recovery, DESIGN.md §19;
//                      one per segment, in first-materialization order)
//   recovery.lineage  {lineage:{...}}     (per-segment arrays, see below)
//   recovery.end      {checkpoint, copy, fell_back, last_lsn, applies, txns}
//                                                             [synced]
//   recovery.error    {error}                                 [synced]
class AuditJournal {
 public:
  // Plain members, deliberately NOT registry instruments: the registry
  // snapshot must be bit-identical with auditing on. Surfaced only in the
  // dump's top-level "audit" member (stripped by bench_diff).
  struct Counters {
    uint64_t entries = 0;        // lines appended by this instance
    uint64_t bytes = 0;          // bytes appended by this instance
    uint64_t syncs = 0;
    uint64_t append_errors = 0;  // first one disables the journal
    uint64_t sync_errors = 0;
  };

  // Does not touch the filesystem; call Open() once before recording.
  AuditJournal(Env* env, std::string path);

  // `fresh` truncates. Otherwise the existing journal is loaded, its valid
  // prefix (complete, CRC-clean lines) is rewritten in place — dropping a
  // line torn by a crash or an injected fault — and sequence numbering
  // resumes after the last surviving entry. Open failure leaves the journal
  // disabled (Record counts append_errors and writes nothing).
  void Open(bool fresh);

  bool enabled() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  uint64_t next_seq() const { return next_seq_; }
  const Counters& counters() const { return counters_; }

  // Appends one event line at virtual time `t`. `fields` (optional) emits
  // the event's payload members into the already-open line object. The
  // first failed append disables the journal for the rest of this
  // instance's life: a torn line must not be followed by more lines.
  void Record(std::string_view event, double t,
              const std::function<void(JsonWriter&)>& fields = nullptr);

  // Durability barrier; called after ckpt.end / ckpt.abort / recovery.end.
  void Sync();

 private:
  Env* env_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
  uint64_t next_seq_ = 1;
  Counters counters_;
};

// --- reading and verification ---------------------------------------------

// One parsed journal line.
struct AuditEntry {
  uint64_t seq = 0;
  double t = 0.0;
  std::string event;
  JsonValue object;  // the whole line, including seq/t/event/crc
};

// Per-segment provenance captured by recovery: where the restored bytes came
// from (checkpoint id + ping-pong copy, whether the older copy had to be
// retried) and which log frames repainted them afterwards. Lives here, below
// the recovery layer, so the journal, the recovery manager and the engine
// dump all share one definition.
struct SegmentLineage {
  CheckpointId checkpoint_id = 0;  // 0: cold start, no checkpoint restored
  uint32_t copy = 0;
  bool retried = false;  // reloaded from the older copy after a failure
  uint64_t frames = 0;   // committed REDO records applied to this segment
  Lsn first_lsn = kInvalidLsn;
  Lsn last_lsn = kInvalidLsn;
  std::vector<uint32_t> streams;  // WAL streams the applied frames came from
};

// Emits {"segments":N,"checkpoint":[...],...,"streams":[[...],...]}.
// Shared by the journal's recovery.lineage event and the engine dump's
// audit.lineage member so the two compare byte-for-byte after a round trip.
void WriteLineageJson(const std::vector<SegmentLineage>& lineage,
                      JsonWriter* w);

// Splits `text` into entries, checking per-line CRCs and that sequence
// numbers run 1,2,3,... without gaps. An incomplete final line (no trailing
// newline — a torn append) is ignored; a complete line that fails its CRC or
// does not parse is CORRUPTION.
StatusOr<std::vector<AuditEntry>> ParseAuditJournal(std::string_view text);

// Structural verification: every event's required fields are present and
// the event stream obeys the lifecycle grammar — ckpt.flush/end/abort only
// inside an open ckpt.begin chain with a matching id, abort-then-begin
// retries reuse the id, recovery.* events only inside an open
// recovery.begin chain, no checkpoint events inside recovery, and a
// recovery.begin implicitly closes a checkpoint chain severed by the crash.
Status VerifyAuditStructure(const std::vector<AuditEntry>& entries);

// Cross-checks the journal's claims against the engine's own account of
// what happened (`dump` = parsed Engine::DumpMetricsJson()): the last
// recovery chain's lineage must match dump.audit.lineage exactly, its
// recovery.end must match dump.recovery's checkpoint/copy/fallback/replay
// counters, the lineage's applied-frame total must equal the independently
// counted updates_applied, and the journal's next sequence number must
// match dump.audit.journal.next_seq.
Status VerifyAuditAgainstDump(const std::vector<AuditEntry>& entries,
                              const JsonValue& dump);

// One-call verification used by `mmdb_audit verify` and the test suites:
// parse + structure + (when `dump` is non-null) dump cross-check. A journal
// that recorded append errors (injected faults landed on the journal
// itself) is reported OK-but-degraded: its tail cannot be trusted, which
// the dump's own append_errors counter already discloses.
Status VerifyAuditJournal(std::string_view journal_text,
                          const JsonValue* dump);

// Answer to "explain segment S": provenance of the most recent recovery,
// plus the matching checkpoint chain from earlier in the same journal.
struct SegmentProvenance {
  SegmentId segment = 0;
  SegmentLineage lineage;
  // Filled when the journal also contains the restored checkpoint's chain.
  bool checkpoint_in_journal = false;
  double checkpoint_begin_t = 0.0;
  double checkpoint_end_t = 0.0;
  std::string checkpoint_algorithm;
  uint64_t checkpoint_aborted_attempts = 0;  // aborts of the same id before
  double recovered_t = 0.0;                  // recovery.begin time
};

// NOT_FOUND when the journal holds no recovery.lineage event;
// OUT_OF_RANGE when `segment` exceeds the recorded lineage.
StatusOr<SegmentProvenance> ExplainSegment(
    const std::vector<AuditEntry>& entries, SegmentId segment);

}  // namespace mmdb

#endif  // MMDB_OBS_AUDIT_H_
