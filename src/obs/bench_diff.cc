#include "obs/bench_diff.h"

#include <cmath>
#include <cstdio>

namespace mmdb {

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

const char* TypeName(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return "bool";
    case JsonValue::Type::kNumber:
      return "number";
    case JsonValue::Type::kString:
      return "string";
    case JsonValue::Type::kArray:
      return "array";
    case JsonValue::Type::kObject:
      return "object";
  }
  return "?";
}

std::string Preview(const JsonValue& v) {
  std::string dump = v.Dump();
  if (dump.size() > 64) {
    dump.resize(61);
    dump += "...";
  }
  return dump;
}

class Differ {
 public:
  Differ(const BenchDiffOptions& options, BenchDiffResult* result)
      : options_(options), result_(result) {}

  void Walk(const std::string& path, std::string_view key,
            const JsonValue& a, const JsonValue& b) {
    if (a.type() != b.type()) {
      Mismatch(path, "type " + std::string(TypeName(a.type())),
               "type " + std::string(TypeName(b.type())));
      return;
    }
    switch (a.type()) {
      case JsonValue::Type::kObject:
        WalkObject(path, a, b);
        break;
      case JsonValue::Type::kArray:
        WalkArray(path, a, b);
        break;
      case JsonValue::Type::kNumber:
        ++result_->leaves_compared;
        if (!NumbersMatch(key, a.number_value(), b.number_value())) {
          Mismatch(path, a.Dump(), b.Dump());
        }
        break;
      case JsonValue::Type::kString:
        ++result_->leaves_compared;
        if (a.string_value() != b.string_value()) {
          Mismatch(path, Preview(a), Preview(b));
        }
        break;
      case JsonValue::Type::kBool:
        ++result_->leaves_compared;
        if (a.bool_value() != b.bool_value()) {
          Mismatch(path, a.Dump(), b.Dump());
        }
        break;
      case JsonValue::Type::kNull:
        ++result_->leaves_compared;  // null == null
        break;
    }
  }

 private:
  void WalkObject(const std::string& path, const JsonValue& a,
                  const JsonValue& b) {
    for (const auto& [key, value] : a.object_items()) {
      if (path.empty() && key == "run") continue;  // sanctioned drift
      if (IsWallClockField(key)) continue;         // machine-dependent
      // Provenance-journal state (any depth: sidecar top level and each
      // point's engine dump): lineage stream sets vary with the shard
      // count and journal volume varies with event history — sanctioned,
      // like "run".
      if (key == "audit") continue;
      std::string child = path.empty() ? key : path + "." + key;
      const JsonValue* other = b.Find(key);
      if (other == nullptr) {
        Mismatch(child, Preview(value), "<missing>");
        continue;
      }
      Walk(child, key, value, *other);
    }
    // Keys only the current run has are drift too (new schema members
    // should land with a refreshed baseline).
    for (const auto& [key, value] : b.object_items()) {
      if (path.empty() && key == "run") continue;
      if (IsWallClockField(key)) continue;
      if (key == "audit") continue;
      if (a.Find(key) == nullptr) {
        std::string child = path.empty() ? key : path + "." + key;
        Mismatch(child, "<missing>", Preview(value));
      }
    }
  }

  void WalkArray(const std::string& path, const JsonValue& a,
                 const JsonValue& b) {
    const auto& items_a = a.array_items();
    const auto& items_b = b.array_items();
    if (items_a.size() != items_b.size()) {
      Mismatch(path, std::to_string(items_a.size()) + " elements",
               std::to_string(items_b.size()) + " elements");
      return;
    }
    for (std::size_t i = 0; i < items_a.size(); ++i) {
      Walk(path + "[" + std::to_string(i) + "]", std::string_view(),
           items_a[i], items_b[i]);
    }
  }

  bool NumbersMatch(std::string_view key, double a, double b) const {
    if (a == b) return true;  // covers exact leaves and shared infinities
    if (!IsTimingField(key) || options_.rel_tol <= 0) return false;
    if (!std::isfinite(a) || !std::isfinite(b)) return false;
    double scale = std::fmax(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <=
           std::fmax(options_.abs_tol, options_.rel_tol * scale);
  }

  void Mismatch(const std::string& path, const std::string& baseline,
                const std::string& current) {
    ++result_->mismatches;
    if (result_->reports.size() < options_.max_reports) {
      result_->reports.push_back(path + ": baseline=" + baseline +
                                 " current=" + current);
    }
  }

  const BenchDiffOptions& options_;
  BenchDiffResult* result_;
};

}  // namespace

bool IsTimingField(std::string_view key) {
  if (EndsWith(key, "seconds") || EndsWith(key, "_s") ||
      EndsWith(key, "residual")) {
    return true;
  }
  // Trace-ring virtual times, timer summaries, and the model oracle.
  static constexpr std::string_view kTimingKeys[] = {
      "t",        "done", "durable_at", "until", "now",      "begin",
      "end",      "mean", "min",        "max",   "p50",      "p90",
      "p99",      "p999", "predicted",  "measured",
  };
  for (std::string_view timing : kTimingKeys) {
    if (key == timing) return true;
  }
  return false;
}

bool IsWallClockField(std::string_view key) {
  return key == "wall" || EndsWith(key, "wall_seconds") ||
         EndsWith(key, "busy_seconds");
}

StatusOr<BenchDiffResult> DiffBenchDocs(const JsonValue& baseline,
                                        const JsonValue& current,
                                        const BenchDiffOptions& options) {
  if (!baseline.is_object() || !current.is_object()) {
    return InvalidArgumentError(
        "bench sidecar documents must be JSON objects");
  }
  BenchDiffResult result;
  Differ differ(options, &result);
  differ.Walk(std::string(), std::string_view(), baseline, current);
  return result;
}

StatusOr<BenchDiffResult> DiffBenchJson(std::string_view baseline_json,
                                        std::string_view current_json,
                                        const BenchDiffOptions& options) {
  MMDB_ASSIGN_OR_RETURN(JsonValue baseline, JsonValue::Parse(baseline_json));
  MMDB_ASSIGN_OR_RETURN(JsonValue current, JsonValue::Parse(current_json));
  return DiffBenchDocs(baseline, current, options);
}

}  // namespace mmdb
