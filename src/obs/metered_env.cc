#include "obs/metered_env.h"

#include <chrono>
#include <utility>

namespace mmdb {

std::string_view DeviceClassName(DeviceClass dc) {
  switch (dc) {
    case DeviceClass::kLog:
      return "log";
    case DeviceClass::kBackup:
      return "backup";
    case DeviceClass::kMeta:
      return "meta";
  }
  return "unknown";
}

DeviceClass ClassifyPath(std::string_view path) {
  if (path.find("wal") != std::string_view::npos) return DeviceClass::kLog;
  if (path.find("backup") != std::string_view::npos) {
    return DeviceClass::kBackup;
  }
  return DeviceClass::kMeta;
}

namespace {

// The provenance journal (audit.log) is exempt from metering: its event
// volume varies with what happened (aborts, fallbacks), and counting its
// I/O would break the guarantee that the registry snapshot is bit-identical
// with auditing on or off. The journal reports its own traffic in the
// dump's "audit" member instead.
bool IsAuditPath(std::string_view path) {
  return path.find("audit") != std::string_view::npos;
}

}  // namespace

namespace {

using DeviceMetrics = MeteredEnv::DeviceMetrics;

// Seconds of host time spent in a delegate call (distinct from the
// engine's virtual clock: this is what the storage stack actually cost).
class OpTimer {
 public:
  explicit OpTimer(Timer* timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~OpTimer() {
    if (timer_ == nullptr) return;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    timer_->Record(elapsed.count());
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

Status CountErrors(DeviceMetrics* m, Status s) {
  if (!s.ok()) m->errors->Increment();
  return s;
}

class MeteredWritableFile : public WritableFile {
 public:
  MeteredWritableFile(std::unique_ptr<WritableFile> base, DeviceMetrics* m)
      : base_(std::move(base)), m_(m) {}

  Status Append(std::string_view data) override {
    m_->write_ops->Increment();
    m_->write_bytes->Increment(data.size());
    OpTimer t(m_->write_seconds);
    return CountErrors(m_, base_->Append(data));
  }

  Status Sync() override {
    m_->sync_ops->Increment();
    OpTimer t(m_->sync_seconds);
    return CountErrors(m_, base_->Sync());
  }

  Status Close() override { return CountErrors(m_, base_->Close()); }
  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<WritableFile> base_;
  DeviceMetrics* m_;
};

class MeteredRandomAccessFile : public RandomAccessFile {
 public:
  MeteredRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                          DeviceMetrics* m)
      : base_(std::move(base)), m_(m) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    m_->read_ops->Increment();
    Status s;
    {
      OpTimer t(m_->read_seconds);
      s = base_->Read(offset, n, out);
    }
    if (s.ok()) m_->read_bytes->Increment(out->size());
    return CountErrors(m_, std::move(s));
  }

  StatusOr<uint64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  DeviceMetrics* m_;
};

class MeteredRandomWriteFile : public RandomWriteFile {
 public:
  MeteredRandomWriteFile(std::unique_ptr<RandomWriteFile> base,
                         DeviceMetrics* m)
      : base_(std::move(base)), m_(m) {}

  Status WriteAt(uint64_t offset, std::string_view data) override {
    m_->write_ops->Increment();
    m_->write_bytes->Increment(data.size());
    OpTimer t(m_->write_seconds);
    return CountErrors(m_, base_->WriteAt(offset, data));
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    m_->read_ops->Increment();
    Status s;
    {
      OpTimer t(m_->read_seconds);
      s = base_->Read(offset, n, out);
    }
    if (s.ok()) m_->read_bytes->Increment(out->size());
    return CountErrors(m_, std::move(s));
  }

  Status Truncate(uint64_t size) override {
    return CountErrors(m_, base_->Truncate(size));
  }

  Status Sync() override {
    m_->sync_ops->Increment();
    OpTimer t(m_->sync_seconds);
    return CountErrors(m_, base_->Sync());
  }

  Status Close() override { return CountErrors(m_, base_->Close()); }

 private:
  std::unique_ptr<RandomWriteFile> base_;
  DeviceMetrics* m_;
};

}  // namespace

MeteredEnv::MeteredEnv(Env* base, MetricsRegistry* registry) : base_(base) {
  for (DeviceClass dc :
       {DeviceClass::kLog, DeviceClass::kBackup, DeviceClass::kMeta}) {
    DeviceMetrics& m = devices_[static_cast<size_t>(dc)];
    std::string prefix = "env." + std::string(DeviceClassName(dc)) + ".";
    m.read_ops = registry->counter(prefix + "read_ops");
    m.read_bytes = registry->counter(prefix + "read_bytes");
    m.write_ops = registry->counter(prefix + "write_ops");
    m.write_bytes = registry->counter(prefix + "write_bytes");
    m.sync_ops = registry->counter(prefix + "sync_ops");
    m.errors = registry->counter(prefix + "errors");
    m.read_seconds = registry->timer(prefix + "read_seconds");
    m.write_seconds = registry->timer(prefix + "write_seconds");
    m.sync_seconds = registry->timer(prefix + "sync_seconds");
  }
}

StatusOr<std::unique_ptr<WritableFile>> MeteredEnv::NewWritableFile(
    const std::string& path) {
  StatusOr<std::unique_ptr<WritableFile>> file = base_->NewWritableFile(path);
  if (IsAuditPath(path)) return file;
  if (!file.ok()) {
    metrics_for(path)->errors->Increment();
    return file.status();
  }
  return {std::make_unique<MeteredWritableFile>(std::move(*file),
                                                metrics_for(path))};
}

StatusOr<std::unique_ptr<WritableFile>> MeteredEnv::NewAppendableFile(
    const std::string& path) {
  StatusOr<std::unique_ptr<WritableFile>> file =
      base_->NewAppendableFile(path);
  if (IsAuditPath(path)) return file;
  if (!file.ok()) {
    metrics_for(path)->errors->Increment();
    return file.status();
  }
  return {std::make_unique<MeteredWritableFile>(std::move(*file),
                                                metrics_for(path))};
}

StatusOr<std::unique_ptr<RandomAccessFile>> MeteredEnv::NewRandomAccessFile(
    const std::string& path) {
  StatusOr<std::unique_ptr<RandomAccessFile>> file =
      base_->NewRandomAccessFile(path);
  if (IsAuditPath(path)) return file;
  if (!file.ok()) {
    metrics_for(path)->errors->Increment();
    return file.status();
  }
  return {std::make_unique<MeteredRandomAccessFile>(std::move(*file),
                                                    metrics_for(path))};
}

StatusOr<std::unique_ptr<RandomWriteFile>> MeteredEnv::NewRandomWriteFile(
    const std::string& path) {
  StatusOr<std::unique_ptr<RandomWriteFile>> file =
      base_->NewRandomWriteFile(path);
  if (IsAuditPath(path)) return file;
  if (!file.ok()) {
    metrics_for(path)->errors->Increment();
    return file.status();
  }
  return {std::make_unique<MeteredRandomWriteFile>(std::move(*file),
                                                   metrics_for(path))};
}

bool MeteredEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

StatusOr<uint64_t> MeteredEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status MeteredEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

Status MeteredEnv::RenameFile(const std::string& from, const std::string& to) {
  return base_->RenameFile(from, to);
}

Status MeteredEnv::CreateDirIfMissing(const std::string& path) {
  return base_->CreateDirIfMissing(path);
}

Status MeteredEnv::ListDir(const std::string& path,
                           std::vector<std::string>* children) {
  return base_->ListDir(path, children);
}

}  // namespace mmdb
