#ifndef MMDB_OBS_TRACE_EXPORT_H_
#define MMDB_OBS_TRACE_EXPORT_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "obs/trace.h"
#include "util/json.h"
#include "util/status.h"
#include "util/statusor.h"

namespace mmdb {

// Perfetto / chrome://tracing exporter: converts the engine's trace ring
// (as serialized by Tracer::ToJson, directly or inside an
// Engine::DumpMetricsJson document or a bench metrics sidecar) into the
// Chrome trace_event JSON object format, loadable by ui.perfetto.dev and
// chrome://tracing.
//
// Mapping (driven off the TraceEventFieldsFor tables, so arg spellings and
// t2 semantics match the trace ring's own JSON):
//   * checkpoint.begin / end / abort   -> B/E slices on the "checkpoint"
//     track (an abort closes the slice; its args mark it aborted)
//   * checkpoint.segment_write         -> X slices on "checkpoint.io"
//     (issue time .. modeled completion)
//   * log.flush                        -> X slices on "log" (request ..
//     durable); log.append / flush_error -> instants on "log"
//   * lock.wait                        -> X slices on "lock" (block ..
//     resume); lock.conflict -> instants on "lock"
//   * fault.injected                   -> instants on "fault"
//   * recovery.begin / end             -> B/E slice on "recovery";
//     recovery.phase -> X slices laid out sequentially inside it (the
//     phases are recorded at the crash instant with durations)
// Timestamps are virtual-clock seconds scaled to microseconds. Each
// engine becomes one trace "process" (pid); a sidecar's points become
// process 1..N named by their labels.

struct TraceExportStats {
  std::size_t events_exported = 0;
  std::size_t events_skipped = 0;  // unknown kind / malformed entries
};

// Optional viewer-side transforms. Default-constructed options reproduce
// the classic single-track-per-component layout byte for byte.
struct TraceExportOptions {
  // When > 1, segment-carrying events (checkpoint.segment_write) are routed
  // onto per-shard "checkpoint.io.shard<k>" tracks instead of the single
  // "checkpoint.io" track, using the same segment-range partition as
  // core/shard.h (ShardLayout) so the viewer's tracks line up with the
  // engine's shard ownership. This is a post-hoc derivation from the
  // events' segment ids — the ring stores no shard/stream index.
  uint32_t shard_tracks = 0;
  // Total segment count the shard partition is over. 0 means infer it
  // from the document: the sum of the dump's shards.per_shard[].segments
  // when present, else max(segment)+1 observed in the events.
  uint64_t num_segments = 0;
};

// Appends trace_event objects (plus thread-name metadata) for one trace
// document ({"events":[...],"recorded":N,"dropped":N}, i.e. the "trace"
// member of an engine dump) to `writer`, which must be inside an open
// JSON array. `pid` is the process id for every emitted event.
Status AppendChromeTraceEvents(const JsonValue& trace_doc, int pid,
                               JsonWriter* writer,
                               TraceExportStats* stats = nullptr,
                               const TraceExportOptions& options = {});

// Emits the process_name metadata event for `pid`.
void AppendProcessName(int pid, std::string_view name, JsonWriter* writer);

// Appends ph:"C" counter-track events for one time-series document (the
// "timeseries" member of an engine dump, in TimeSeriesSampler::ToJson
// shape: {"series":[names...],"samples":[{"t":t,"v":[...]}...]}). Each
// registered series becomes one counter track next to the slice tracks,
// so checkpoint phases can be visually correlated with commit/stall/abort
// rates. `writer` must be inside an open JSON array.
Status AppendCounterTrackEvents(const JsonValue& timeseries_doc, int pid,
                                JsonWriter* writer,
                                TraceExportStats* stats = nullptr);

// Converts a whole metrics document — either one engine dump
// (Engine::DumpMetricsJson) or a bench sidecar ({"bench","points":[...]})
// — into a complete {"traceEvents":[...],"displayTimeUnit":"ms"} document.
// Sidecar points that failed (error entries) or have a null trace
// (metrics disabled) are skipped. INVALID_ARGUMENT if the document holds
// no trace at all.
StatusOr<std::string> ChromeTraceFromMetricsDoc(
    const JsonValue& doc, TraceExportStats* stats = nullptr,
    const TraceExportOptions& options = {});
StatusOr<std::string> ChromeTraceFromMetricsJson(
    std::string_view json, TraceExportStats* stats = nullptr,
    const TraceExportOptions& options = {});

// Convenience for live tracers (tests, in-process sinks): exports the
// ring's current contents as one process named `process_name`.
StatusOr<std::string> ChromeTraceFromTracer(
    const Tracer& tracer, std::string_view process_name = "engine");

}  // namespace mmdb

#endif  // MMDB_OBS_TRACE_EXPORT_H_
