#ifndef MMDB_OBS_SIDECAR_H_
#define MMDB_OBS_SIDECAR_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/statusor.h"

namespace mmdb {

// Machine-readable companion file a bench writes beside its stdout tables:
//   {"bench":"fig4a",
//    "points":[{"label":"FUZZYCOPY","engine":{...},"validation":{...}},
//              {"label":"BAD","error":"INTERNAL: ..."},...],
//    "validation_summary":{"points":5,"overhead_per_txn":{...},...},
//    "run":{"jobs":4,"wall_seconds":1.23}}
//
// Per point, "validation" (when present) holds the model oracle's
// predicted/measured/residual block (src/model/model_oracle.h); a failed
// sweep point is recorded as {"label","error"} so ERR table cells stay
// diagnosable from artifacts alone. "validation_summary" aggregates the
// residuals across the figure. See EXPERIMENTS.md for the full schema.
//
// The destination defaults to "<bench>_metrics.json" in the working
// directory; the MMDB_METRICS_SIDECAR environment variable overrides the
// path, and setting it to the empty string disables the sidecar entirely.
//
// Determinism contract (DESIGN.md §12): "points" is merged in declared
// point order by the sweep runner, never in completion order, so its bytes
// are identical no matter how many workers produced the entries. Only the
// trailing "run" member — the sweep width and the real wall-clock spend,
// kept so BENCH_*.json captures the speedup trajectory — may differ
// between runs; DeterministicView() strips it for byte comparisons.
class MetricsSidecar {
 public:
  // `bench` names the document and the default output file.
  explicit MetricsSidecar(const char* bench);

  // Appends one measured point. Dropped when the sidecar is disabled or
  // `engine_json` is empty. `validation_json` (optional) is the model
  // oracle's predicted/measured/residual block for the point. Not
  // thread-safe: the sweep runner merges results on the coordinating
  // thread after the workers are done.
  void Add(std::string label, std::string engine_json,
           std::string validation_json = std::string());

  // Appends one *failed* point: {"label":...,"error":message}, so an ERR
  // table cell's underlying Status is recorded in the artifact too.
  void AddError(std::string label, std::string message);

  // Sets the figure-level "validation_summary" member (a complete JSON
  // value, typically ResidualSummary::ToJsonString). Empty = omitted.
  void SetValidationSummary(std::string summary_json);

  // Records the sweep width and wall-clock seconds for the "run" member.
  void SetRun(std::size_t jobs, double wall_seconds);

  // Writes the collected document (call once, after the measured series).
  void Write() const;

  const std::string& path() const { return path_; }
  std::size_t num_points() const { return points_.size(); }

  // Returns `sidecar_json` re-serialized with the "run" member removed —
  // the portion of the document that must be byte-identical across
  // --jobs widths. CORRUPTION if the input is not valid JSON.
  [[nodiscard]] static StatusOr<std::string> DeterministicView(
      std::string_view sidecar_json);

 private:
  struct Point {
    std::string label;
    std::string engine_json;      // empty for error points
    std::string validation_json;  // optional model-oracle block
    std::string error;            // non-empty marks a failed point
  };

  std::string bench_;
  std::string path_;
  std::vector<Point> points_;
  std::string validation_summary_json_;
  std::size_t jobs_ = 0;  // 0 = SetRun never called; "run" omitted
  double wall_seconds_ = 0.0;
};

}  // namespace mmdb

#endif  // MMDB_OBS_SIDECAR_H_
