#ifndef MMDB_OBS_METRICS_REGISTRY_H_
#define MMDB_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/histogram.h"
#include "util/json.h"

namespace mmdb {

// Named engine metrics: monotonic counters, point-in-time gauges, and
// Histogram-backed timers. Instruments are created on first use and live
// for the registry's lifetime, so hot paths cache the returned pointer
// once and then pay a single relaxed atomic add per event — cheap enough
// for the registry to stay on by default.
//
// Thread-safety: instrument updates are lock-free (counters, gauges) or
// take a per-instrument mutex (timers); instrument creation and snapshot
// export take the registry mutex. The engine itself is single-threaded,
// but tools and future multi-threaded frontends may read concurrently.

// Monotonically increasing count of events.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins scalar (e.g. a configured cap, a current queue depth).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Distribution of durations (or any non-negative samples).
class Timer {
 public:
  Timer() = default;
  // Finer histogram ratio for tail-sensitive timers (see Histogram).
  explicit Timer(double bucket_ratio) : hist_(bucket_ratio) {}

  void Record(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Add(value);
  }
  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.count();
  }
  // Consistent copy for percentile queries and export.
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The returned pointer is stable for the registry's
  // lifetime; cache it rather than looking it up per event.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Timer* timer(std::string_view name);
  // Find-or-create with a specific histogram bucket ratio. The ratio only
  // applies on creation; an existing timer keeps its original buckets, so
  // the first caller for a name decides its resolution.
  Timer* timer(std::string_view name, double bucket_ratio);

  // {"counters":{name:n}, "gauges":{name:x},
  //  "timers":{name:{count,mean,min,max,p50,p90,p99,p999}}}. Names are
  // emitted in sorted order so output is stable across runs.
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;

  // One "name value" line per instrument, for terminals.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

}  // namespace mmdb

#endif  // MMDB_OBS_METRICS_REGISTRY_H_
