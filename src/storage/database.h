#ifndef MMDB_STORAGE_DATABASE_H_
#define MMDB_STORAGE_DATABASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/cost_model.h"
#include "util/status.h"
#include "util/types.h"

namespace mmdb {

// The primary, memory-resident copy of the database: a flat array of
// fixed-size records grouped into segments (Section 2.4). This is plain
// volatile storage — crash semantics, locking and checkpoint state live in
// higher layers (Engine, SegmentTable).
//
// Layout: record r occupies bytes [r*record_bytes, (r+1)*record_bytes);
// segment s spans records [s*records_per_segment, (s+1)*records_per_segment).
class Database {
 public:
  explicit Database(const DatabaseParams& params);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const DatabaseParams& params() const { return params_; }
  uint64_t num_records() const { return params_.num_records(); }
  uint64_t num_segments() const { return params_.num_segments(); }
  size_t record_bytes() const { return record_bytes_; }
  size_t segment_bytes() const { return segment_bytes_; }

  SegmentId SegmentOf(RecordId record) const {
    return record / params_.records_per_segment();
  }

  // Raw access. Views are invalidated by Clear()/LoadSegment resizing
  // (which never happens after construction — the database is fixed-size).
  std::string_view ReadRecord(RecordId record) const;
  void WriteRecord(RecordId record, std::string_view data);

  std::string_view ReadSegment(SegmentId segment) const;
  // Overwrites a whole segment (used by recovery and by tests).
  void WriteSegment(SegmentId segment, std::string_view data);

  // Zeroes all contents (models the loss of volatile memory at a crash
  // followed by reallocation at restart).
  void Clear();

  // Checksum of the full database image; used by tests to compare states.
  uint32_t Checksum() const;

  // Direct byte access for bulk operations (backup writes, recovery reads).
  const char* data() const { return bytes_.data(); }
  char* mutable_data() { return bytes_.data(); }
  size_t size_bytes() const { return bytes_.size(); }

 private:
  DatabaseParams params_;
  size_t record_bytes_;
  size_t segment_bytes_;
  std::vector<char> bytes_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_DATABASE_H_
