#include "storage/segment_table.h"

namespace mmdb {

SegmentTable::SegmentTable(uint64_t num_segments)
    : entries_(num_segments) {}

uint64_t SegmentTable::CountDirty(uint32_t copy) const {
  uint64_t n = 0;
  for (const Entry& e : entries_) {
    if (e.dirty[copy & 1]) ++n;
  }
  return n;
}

void SegmentTable::MarkAllDirty() {
  for (Entry& e : entries_) {
    e.dirty[0] = true;
    e.dirty[1] = true;
  }
}

void SegmentTable::Reset() {
  for (Entry& e : entries_) e = Entry{};
  black_value_ = true;
}

}  // namespace mmdb
