#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>

namespace mmdb {

BufferPool::BufferPool(size_t buffer_bytes, uint32_t max_buffers)
    : buffer_bytes_(buffer_bytes), max_buffers_(max_buffers) {}

StatusOr<uint32_t> BufferPool::Allocate() {
  if (max_buffers_ != 0 && allocated_ >= max_buffers_) {
    return ResourceExhaustedError("buffer pool at capacity");
  }
  uint32_t handle;
  if (!free_list_.empty()) {
    handle = free_list_.back();
    free_list_.pop_back();
    in_use_[handle] = true;
  } else {
    handle = static_cast<uint32_t>(buffers_.size());
    buffers_.emplace_back(buffer_bytes_, '\0');
    in_use_.push_back(true);
  }
  ++allocated_;
  high_water_ = std::max(high_water_, allocated_);
  return handle;
}

void BufferPool::Free(uint32_t handle) {
  assert(handle < buffers_.size());
  assert(in_use_[handle]);
  in_use_[handle] = false;
  free_list_.push_back(handle);
  assert(allocated_ > 0);
  --allocated_;
}

std::string_view BufferPool::Read(uint32_t handle) const {
  assert(handle < buffers_.size());
  assert(in_use_[handle]);
  return buffers_[handle];
}

void BufferPool::Write(uint32_t handle, std::string_view data) {
  assert(handle < buffers_.size());
  assert(in_use_[handle]);
  assert(data.size() == buffer_bytes_);
  buffers_[handle].assign(data.data(), data.size());
}

void BufferPool::Clear() {
  buffers_.clear();
  free_list_.clear();
  in_use_.clear();
  allocated_ = 0;
}

}  // namespace mmdb
