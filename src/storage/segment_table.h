#ifndef MMDB_STORAGE_SEGMENT_TABLE_H_
#define MMDB_STORAGE_SEGMENT_TABLE_H_

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace mmdb {

// Paint colors for the two-color (Pu) checkpoint algorithms. White segments
// have not yet been included in the current checkpoint; the checkpointer
// paints them black as it processes them. Between checkpoints the colors are
// reinterpreted (the checkpointer flips which bit value means "white")
// instead of rewriting every segment's bit.
enum class PaintColor : uint8_t { kWhite = 0, kBlack = 1 };

// Per-segment control state consulted by transactions and the checkpointer:
//   dirty bit      - set on update, cleared when the segment reaches backup
//                    (drives partial checkpoints);
//   paint bit      - two-color algorithms;
//   update_lsn     - LSN of the latest update applied to the segment (WAL
//                    test for the *FLUSH/*COPY algorithms);
//   timestamp      - tau(S), timestamp of the latest updating transaction
//                    (copy-on-update algorithms);
//   old_copy       - handle of the COU snapshot copy, if one exists;
//   ckpt_lock      - whether the checkpointer currently holds this segment
//                    (2CFLUSH/COUFLUSH hold through the disk I/O).
//
// This is deliberately a passive data holder (plus bulk operations); the
// policy using the fields lives in txn/ and checkpoint/.
class SegmentTable {
 public:
  // Handle of a buffered old segment copy; kNoCopy when absent.
  static constexpr uint32_t kNoCopy = UINT32_MAX;

  explicit SegmentTable(uint64_t num_segments);

  uint64_t num_segments() const { return entries_.size(); }

  // --- dirty bits -------------------------------------------------------
  // One dirty bit per ping-pong backup copy: an update dirties the segment
  // with respect to *both* copies; a checkpoint writing copy c clears only
  // bit c. This is what keeps each copy complete under partial
  // checkpointing even though successive checkpoints alternate copies.
  bool dirty(SegmentId s, uint32_t copy) const {
    return entries_[s].dirty[copy & 1];
  }
  // Dirty with respect to either copy.
  bool dirty_any(SegmentId s) const {
    return entries_[s].dirty[0] || entries_[s].dirty[1];
  }
  void MarkDirty(SegmentId s) {
    entries_[s].dirty[0] = true;
    entries_[s].dirty[1] = true;
  }
  // Re-dirties one copy only. Used by the COU checkpointer after flushing
  // a preserved OLD image: the update that forced the preservation is not
  // in what just reached the backup, so this copy still owes a flush.
  void MarkDirtyCopy(SegmentId s, uint32_t copy) {
    entries_[s].dirty[copy & 1] = true;
  }
  void ClearDirty(SegmentId s, uint32_t copy) {
    entries_[s].dirty[copy & 1] = false;
  }
  uint64_t CountDirty(uint32_t copy) const;
  void MarkAllDirty();

  // --- paint bits (two-color) -------------------------------------------
  PaintColor color(SegmentId s) const {
    return (entries_[s].paint == black_value_) ? PaintColor::kBlack
                                               : PaintColor::kWhite;
  }
  void Paint(SegmentId s, PaintColor c) {
    entries_[s].paint = (c == PaintColor::kBlack) ? black_value_
                                                  : !black_value_;
  }
  // Makes every segment white in O(1) by flipping the meaning of the bit.
  // Requires that every segment is currently black (checkpoint finished).
  void FlipColors() { black_value_ = !black_value_; }

  // --- WAL coupling ------------------------------------------------------
  Lsn update_lsn(SegmentId s) const { return entries_[s].update_lsn; }
  void set_update_lsn(SegmentId s, Lsn lsn) { entries_[s].update_lsn = lsn; }

  // --- COU timestamps & old copies ---------------------------------------
  Timestamp timestamp(SegmentId s) const { return entries_[s].timestamp; }
  void set_timestamp(SegmentId s, Timestamp t) { entries_[s].timestamp = t; }

  bool has_old_copy(SegmentId s) const {
    return entries_[s].old_copy != kNoCopy;
  }
  uint32_t old_copy(SegmentId s) const { return entries_[s].old_copy; }
  void set_old_copy(SegmentId s, uint32_t handle) {
    entries_[s].old_copy = handle;
  }
  void clear_old_copy(SegmentId s) { entries_[s].old_copy = kNoCopy; }

  // --- checkpointer lock shadow ------------------------------------------
  bool ckpt_locked(SegmentId s) const { return entries_[s].ckpt_locked; }
  void set_ckpt_locked(SegmentId s, bool locked) {
    entries_[s].ckpt_locked = locked;
  }

  // Crash/restart: forgets all volatile control state.
  void Reset();

 private:
  struct Entry {
    bool dirty[2] = {false, false};
    bool paint = false;
    bool ckpt_locked = false;
    Lsn update_lsn = kInvalidLsn;
    Timestamp timestamp = 0;
    uint32_t old_copy = kNoCopy;
  };

  std::vector<Entry> entries_;
  bool black_value_ = true;  // which bit value currently means "black"
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_SEGMENT_TABLE_H_
