#include "storage/database.h"

#include <algorithm>
#include <cassert>

#include "util/crc32c.h"

namespace mmdb {

Database::Database(const DatabaseParams& params)
    : params_(params),
      record_bytes_(params.record_bytes()),
      segment_bytes_(params.segment_bytes()),
      bytes_(params.db_words * kWordBytes, '\0') {}

std::string_view Database::ReadRecord(RecordId record) const {
  assert(record < num_records());
  return std::string_view(bytes_.data() + record * record_bytes_,
                          record_bytes_);
}

void Database::WriteRecord(RecordId record, std::string_view data) {
  assert(record < num_records());
  assert(data.size() == record_bytes_);
  std::copy(data.begin(), data.end(),
            bytes_.begin() + record * record_bytes_);
}

std::string_view Database::ReadSegment(SegmentId segment) const {
  assert(segment < num_segments());
  return std::string_view(bytes_.data() + segment * segment_bytes_,
                          segment_bytes_);
}

void Database::WriteSegment(SegmentId segment, std::string_view data) {
  assert(segment < num_segments());
  assert(data.size() == segment_bytes_);
  std::copy(data.begin(), data.end(),
            bytes_.begin() + segment * segment_bytes_);
}

void Database::Clear() { std::fill(bytes_.begin(), bytes_.end(), '\0'); }

uint32_t Database::Checksum() const {
  return crc32c::Value(bytes_.data(), bytes_.size());
}

}  // namespace mmdb
