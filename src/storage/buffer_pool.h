#ifndef MMDB_STORAGE_BUFFER_POOL_H_
#define MMDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace mmdb {

// Pool of segment-sized main-memory buffers. The COU algorithms use it to
// hold old segment copies while a checkpoint runs, and the *COPY algorithms
// use it to stage a segment image between the memory copy and the disk
// flush. Freed buffers are recycled so steady-state allocation is cheap —
// but each logical (de)allocation still costs C_alloc in the model, charged
// by the caller.
//
// Capacity is expressed in buffers; 0 means unbounded. The paper notes the
// COU snapshot "could grow to be as large as the database itself" — a bound
// lets experiments study that footprint.
class BufferPool {
 public:
  // Handle values are dense indices; the special value kInvalid is never
  // returned by Allocate.
  static constexpr uint32_t kInvalid = UINT32_MAX;

  BufferPool(size_t buffer_bytes, uint32_t max_buffers);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t buffer_bytes() const { return buffer_bytes_; }

  // Acquires a buffer; fails with RESOURCE_EXHAUSTED at capacity.
  StatusOr<uint32_t> Allocate();
  void Free(uint32_t handle);

  std::string_view Read(uint32_t handle) const;
  void Write(uint32_t handle, std::string_view data);

  uint32_t allocated() const { return allocated_; }
  uint32_t high_water_mark() const { return high_water_; }

  // Frees everything (crash or end-of-checkpoint cleanup in tests).
  void Clear();

 private:
  size_t buffer_bytes_;
  uint32_t max_buffers_;  // 0 = unbounded
  std::vector<std::string> buffers_;
  std::vector<uint32_t> free_list_;
  std::vector<bool> in_use_;
  uint32_t allocated_ = 0;
  uint32_t high_water_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_BUFFER_POOL_H_
