#ifndef MMDB_WAL_LOG_MANAGER_H_
#define MMDB_WAL_LOG_MANAGER_H_

#include <deque>
#include <memory>
#include <string>

#include "env/env.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/cpu_meter.h"
#include "sim/disk_model.h"
#include "util/status.h"
#include "util/types.h"
#include "wal/log_record.h"

namespace mmdb {

// The REDO log: an in-memory tail buffer plus an append-only file on the
// (simulated) log disks.
//
// Durability model. Append() places a record in the volatile tail and
// assigns its LSN. Flush(now) hands the tail to the log devices, which
// serve flushes as a serial group-commit stream: batches start at least
// `min_flush_spacing` apart and never overlap, and a flush requested while
// the previous batch is still waiting to start simply merges into it
// (exactly how group commit coalesces). Bytes become durable at the
// modeled batch completion time. DurableLsn(now)
// answers the write-ahead tests used by the FUZZYCOPY/2C*/COU* algorithms:
// "have the log records (and commit record) of every update reflected in
// this segment reached the disk yet?"
//
// With `stable_log_tail` (Section 4's stable-RAM scenario) every record is
// durable the moment it is appended, and a crash preserves the tail; this
// is what makes the FASTFUZZY algorithm legal.
//
// Crash semantics: Crash(now) discards whatever would not have survived —
// unflushed tail bytes and flushes whose modeled completion lies after
// `now` — and rewrites the on-Env file to exactly the surviving prefix, so
// recovery reads precisely what a real machine would have found.
class LogManager {
 public:
  // `min_flush_spacing` models the group-commit cadence: successive
  // flushes START at least this many seconds apart (a flush requested
  // early is submitted late), bounding the seek load tiny flushes would
  // otherwise put on the log disks. 0 disables the throttle.
  LogManager(Env* env, std::string path, const SystemParams& params,
             CpuMeter* meter, bool stable_log_tail,
             double min_flush_spacing = 0.0);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // Creates (or truncates) the log file. Must be called before Append.
  Status Open();

  // Reopens an existing log after recovery, keeping the well-formed
  // prefix through logical offset `existing_bytes` (anything beyond it is
  // cut off) and continuing the LSN sequence from `next_lsn`.
  Status OpenExisting(uint64_t existing_bytes, Lsn next_lsn);

  // Drops all frames before logical offset `cut` (typically the begin
  // marker of the newest complete checkpoint, which recovery will never
  // scan past). The file is rewritten with its base offset raised to
  // `cut`, so previously published offsets remain valid. Everything before
  // `cut` must already be durable. Returns the number of bytes reclaimed.
  StatusOr<uint64_t> TruncateBefore(uint64_t cut);

  // Logical offset of the oldest byte still in the file.
  uint64_t BaseOffset() const { return base_offset_; }

  // Appends a record to the tail; assigns and returns its LSN (also stored
  // into record->lsn). Charges log data movement to the CPU meter. `now` is
  // only for the trace timeline (callers without a clock may omit it).
  Lsn Append(LogRecord* record, double now = 0.0);

  // Starts writing all buffered tail bytes to the log disks at time `now`.
  // Returns immediately; the bytes count as durable at the returned
  // completion time. A no-op returning `now` if the tail is empty.
  //
  // On a device error the tail is retained in full (no record is lost from
  // memory and no durability promise is made), the file is remembered as
  // holding trailing garbage, and the error is returned so commit callers
  // see that durability did not advance. The next Flush first rewrites the
  // file back to its known-good prefix, then retries the whole tail.
  StatusOr<double> Flush(double now);

  // Highest LSN durable at time `now` (kInvalidLsn if none).
  Lsn DurableLsn(double now) const;

  // Earliest time at which `lsn` is durable: a past time if already
  // durable, the pending flush's completion if in flight, or +infinity if
  // the record is still sitting in the unflushed tail.
  double WhenDurable(Lsn lsn, double now) const;

  // LSN the next Append will receive.
  Lsn NextLsn() const { return next_lsn_; }
  // LSN of the most recently appended record.
  Lsn LastLsn() const { return next_lsn_ - 1; }

  // Byte offset in the log file at which the *next* appended record's frame
  // will start (file bytes + pending tail bytes). Recorded in checkpoint
  // metadata so recovery can seek straight to a begin-checkpoint marker.
  uint64_t NextOffset() const { return appended_bytes_; }

  uint64_t TailBytes() const { return tail_.size(); }

  // Simulates losing volatile state at time `now`; truncates the on-disk
  // file to the durable prefix. Under stable_log_tail the tail survives and
  // is persisted instead. The LogManager is unusable afterwards except for
  // Crash-time queries; recovery opens the file through LogReader.
  Status Crash(double now);

  // Total words ever appended (for bandwidth accounting).
  uint64_t AppendedWords() const { return appended_bytes_ / kWordBytes; }

  // Number of physical flush batches issued and total seconds the log
  // devices spent serving them (utilization metrics).
  uint64_t FlushCount() const { return flush_count_; }
  double FlushBusySeconds() const { return flush_busy_seconds_; }

  bool stable_log_tail() const { return stable_log_tail_; }

  // Optional observability sinks (either may be null). Instrument pointers
  // are cached here once; the hot paths then pay one atomic add per event.
  void set_obs(MetricsRegistry* registry, Tracer* tracer);

 private:
  // Rewrites the log file atomically (temp file + rename), so a fault
  // mid-rewrite leaves the original — which holds every durable byte —
  // untouched.
  Status PersistRewrite(const std::string& contents);
  // Cuts trailing garbage left by a failed append back to the flushed
  // prefix and reopens the file for appending.
  Status Repair();

  struct PendingFlush {
    Lsn last_lsn;         // highest LSN contained in this flush
    uint64_t bytes_upto;  // file size once this flush lands
    uint64_t words;       // payload size
    double start_time;    // when the devices begin writing it
    double done_time;     // modeled completion time
  };

  // Service time of one flush of `words` striped across the log disks.
  double FlushSeconds(uint64_t words) const {
    return params_.disk.seek_seconds +
           params_.disk.transfer_seconds_per_word *
               static_cast<double>(words) / params_.disk.num_log_disks;
  }

  Env* env_;
  std::string path_;
  SystemParams params_;
  CpuMeter* meter_;
  bool stable_log_tail_;

  std::unique_ptr<WritableFile> file_;

  Lsn next_lsn_ = 1;
  std::string tail_;  // encoded frames not yet handed to a flush
  Lsn tail_last_lsn_ = kInvalidLsn;
  uint64_t written_bytes_ = 0;   // bytes handed to the file (flushes issued)
  uint64_t appended_bytes_ = 0;  // total framed bytes: written + tail
  std::deque<PendingFlush> pending_;
  Lsn flushed_lsn_ = kInvalidLsn;  // highest LSN handed to the file
  uint64_t base_offset_ = 0;       // logical offset of the file's first frame
  uint64_t flush_count_ = 0;
  double flush_busy_seconds_ = 0.0;
  double min_flush_spacing_;
  double last_flush_start_ = -1e300;
  // LSN / byte prefix whose durability predates this LogManager instance
  // (the recovered prefix after OpenExisting).
  Lsn durable_floor_ = kInvalidLsn;
  uint64_t durable_bytes_floor_ = 0;
  // A failed append may have left a partial frame in the file; set until
  // Repair() restores the known-good prefix.
  bool damaged_ = false;

  Tracer* tracer_ = nullptr;
  Counter* m_appends_ = nullptr;
  Counter* m_append_bytes_ = nullptr;
  Counter* m_flush_batches_ = nullptr;
  Counter* m_flush_bytes_ = nullptr;
  Counter* m_flush_errors_ = nullptr;
  Counter* m_group_merges_ = nullptr;
  Timer* m_flush_seconds_ = nullptr;
};

// Framing shared with LogReader: [u32 len][payload][u32 masked-crc][u32 len].
inline constexpr size_t kLogFrameOverhead = 12;

// Log files begin with a fixed header carrying the *base offset*: the
// logical byte offset of the first frame in the file. Truncating the log
// prefix (TruncateBefore) raises the base instead of renumbering, so
// offsets stored in checkpoint metadata stay valid forever.
// Layout: [u32 magic][u32 version][u64 base_offset].
inline constexpr uint32_t kLogFileMagic = 0x4d4d4c47;  // "MMLG"
inline constexpr uint32_t kLogFileVersion = 1;
inline constexpr size_t kLogFileHeaderBytes = 16;

// Appends one framed record to *dst.
void EncodeLogFrame(const LogRecord& record, std::string* dst);

}  // namespace mmdb

#endif  // MMDB_WAL_LOG_MANAGER_H_
