#ifndef MMDB_WAL_LOG_MANAGER_H_
#define MMDB_WAL_LOG_MANAGER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/cpu_meter.h"
#include "sim/disk_model.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/types.h"
#include "wal/log_record.h"

namespace mmdb {

// The REDO log: N per-shard stream files (N == 1 outside sharded engines),
// each with an in-memory tail buffer and an append-only file on the
// (simulated) log disks, sharing ONE global LSN sequence and ONE modeled
// flush schedule.
//
// Sharded layout (DESIGN.md §17). Append(record, now, stream) routes the
// frame to stream `stream`'s tail; LSNs stay globally ordered because the
// engine executes on one virtual clock, so the interleaving of frames
// across streams is by construction LSN-sorted per stream and globally
// mergeable. Flush(now) is an *epoch group commit*: all stream tails are
// handed to the devices as one gang batch, modeled exactly as the legacy
// single-stream batch over the combined byte count — durability (and the
// global durable epoch) always advances across every stream at once, never
// per stream. This is what keeps the modeled flush schedule, and thus
// every modeled stat, bit-identical at any stream count.
//
// Durability model. Append() places a record in a volatile tail and
// assigns its LSN. Flush(now) hands the tails to the log devices, which
// serve flushes as a serial group-commit stream: batches start at least
// `min_flush_spacing` apart and never overlap, and a flush requested while
// the previous batch is still waiting to start simply merges into it
// (exactly how group commit coalesces). Bytes become durable at the
// modeled batch completion time. DurableLsn(now)
// answers the write-ahead tests used by the FUZZYCOPY/2C*/COU* algorithms:
// "have the log records (and commit record) of every update reflected in
// this segment reached the disk yet?"
//
// With `stable_log_tail` (Section 4's stable-RAM scenario) every record is
// durable the moment it is appended, and a crash preserves the tails; this
// is what makes the FASTFUZZY algorithm legal.
//
// Crash semantics: Crash(now) discards whatever would not have survived —
// unflushed tail bytes and gang batches whose modeled completion lies
// after `now` — and rewrites each on-Env stream file to exactly its
// surviving prefix, so recovery reads precisely what a real machine would
// have found.
class LogManager {
 public:
  // `min_flush_spacing` models the group-commit cadence: successive
  // flushes START at least this many seconds apart (a flush requested
  // early is submitted late), bounding the seek load tiny flushes would
  // otherwise put on the log disks. 0 disables the throttle.
  // `num_streams` is the per-shard stream count; stream 0 lives at `path`
  // and stream k > 0 at `path + "." + k` (see StreamPath).
  LogManager(Env* env, std::string path, const SystemParams& params,
             CpuMeter* meter, bool stable_log_tail,
             double min_flush_spacing = 0.0, uint32_t num_streams = 1);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // File path of stream `k` under base path `base`: `base` itself for
  // stream 0 (so single-stream layouts are unchanged on disk), else
  // `base.k`.
  static std::string StreamPath(const std::string& base, uint32_t k);

  // Creates (or truncates) every stream file. Must be called before
  // Append.
  Status Open();

  // Reopens existing streams after recovery, keeping each stream's
  // well-formed prefix through logical offset `stream_valid_bytes[k]`
  // (base-inclusive; anything beyond it is cut off) and continuing the
  // global LSN sequence from `next_lsn`. `stream_valid_bytes` must have
  // one entry per stream.
  Status OpenExisting(const std::vector<uint64_t>& stream_valid_bytes,
                      Lsn next_lsn);

  // Single-stream convenience overload (the pre-shard signature).
  Status OpenExisting(uint64_t existing_bytes, Lsn next_lsn);

  // Drops all frames before *global* logical offset `cut` (typically the
  // begin marker of the newest complete checkpoint, which recovery will
  // never scan past). Each stream file is rewritten with its base offset
  // raised, so previously published offsets remain valid. Everything
  // before `cut` must already be durable. Returns the number of bytes
  // reclaimed. With multiple streams the cut must be an offset captured
  // at a begin-checkpoint append (the per-stream split is snapshotted
  // there); other offsets return 0 reclaimed.
  StatusOr<uint64_t> TruncateBefore(uint64_t cut);

  // Global logical offset of the oldest byte still retained (the sum of
  // the per-stream base offsets).
  uint64_t BaseOffset() const { return base_offset_; }
  // Base offset of stream `k` alone.
  uint64_t StreamBaseOffset(uint32_t k) const {
    return streams_[k].base_offset;
  }

  // Appends a record to stream `stream`'s tail; assigns and returns its
  // globally ordered LSN (also stored into record->lsn). Charges log data
  // movement to the CPU meter. `now` is only for the trace timeline
  // (callers without a clock may omit it).
  Lsn Append(LogRecord* record, double now = 0.0, uint32_t stream = 0);

  // Starts writing all buffered tail bytes — every stream's, as one gang
  // batch — to the log disks at time `now`. Returns immediately; the
  // bytes count as durable at the returned completion time. A no-op
  // returning `now` if all tails are empty.
  //
  // On a device error every tail is retained in full (no record is lost
  // from memory and no durability promise is made — a gang batch either
  // lands entirely or not at all), every stream is remembered as possibly
  // holding trailing garbage, and the error is returned so commit callers
  // see that durability did not advance. The next Flush first rewrites
  // the damaged files back to their known-good prefixes, then retries the
  // whole gang batch.
  StatusOr<double> Flush(double now);

  // Highest LSN durable at time `now` (kInvalidLsn if none).
  Lsn DurableLsn(double now) const;

  // Earliest time at which `lsn` is durable: a past time if already
  // durable, the pending flush's completion if in flight, or +infinity if
  // the record is still sitting in an unflushed tail.
  double WhenDurable(Lsn lsn, double now) const;

  // Epoch group commit: every gang flush batch opens a new epoch, and the
  // epoch becomes durable — across ALL streams at once — at the batch's
  // modeled completion. CurrentEpoch() is the epoch of the next batch;
  // DurableEpoch(now) the newest globally durable one (0 if none).
  uint64_t CurrentEpoch() const { return epoch_seq_ + 1; }
  uint64_t DurableEpoch(double now) const;

  // LSN the next Append will receive.
  Lsn NextLsn() const { return next_lsn_; }
  // LSN of the most recently appended record.
  Lsn LastLsn() const { return next_lsn_ - 1; }

  // Global byte offset at which the *next* appended record's frame will
  // start (file bytes + pending tail bytes, summed over streams).
  // Recorded in checkpoint metadata so recovery can seek straight to a
  // begin-checkpoint marker in the LSN-merged log view.
  uint64_t NextOffset() const { return appended_bytes_; }

  uint64_t TailBytes() const { return tail_bytes_; }

  // Simulates losing volatile state at time `now`; truncates each on-disk
  // stream file to its durable prefix. Under stable_log_tail the tails
  // survive and are persisted instead. The LogManager is unusable
  // afterwards except for Crash-time queries; recovery opens the files
  // through LogReader::OpenStreams.
  Status Crash(double now);

  // Total words ever appended (for bandwidth accounting).
  uint64_t AppendedWords() const { return appended_bytes_ / kWordBytes; }

  // Number of physical gang-flush batches issued and total seconds the
  // log devices spent serving them (utilization metrics).
  uint64_t FlushCount() const { return flush_count_; }
  double FlushBusySeconds() const { return flush_busy_seconds_; }

  bool stable_log_tail() const { return stable_log_tail_; }

  uint32_t num_streams() const {
    return static_cast<uint32_t>(streams_.size());
  }
  // Per-stream append accounting (record count / framed bytes), for the
  // per-shard breakdown in Engine::DumpMetricsJson.
  uint64_t StreamAppends(uint32_t k) const { return streams_[k].appends; }
  uint64_t StreamAppendBytes(uint32_t k) const {
    return streams_[k].append_bytes;
  }

  // Optional observability sinks (either may be null). Instrument pointers
  // are cached here once; the hot paths then pay one atomic add per event.
  void set_obs(MetricsRegistry* registry, Tracer* tracer);

 private:
  // One per-shard stream: its file, volatile tail, and physical byte
  // accounting. All scheduling state (pending batches, LSNs, durability)
  // is global — a stream holds only what is physically its own.
  struct Stream {
    std::string path;
    std::unique_ptr<WritableFile> file;
    std::string tail;            // encoded frames not yet handed to a flush
    uint64_t written_bytes = 0;  // stream bytes handed to the file
    uint64_t appended_bytes = 0;  // stream framed bytes: written + tail
    uint64_t base_offset = 0;     // stream-local logical base
    uint64_t durable_bytes_floor = 0;  // recovered prefix (OpenExisting)
    uint64_t appends = 0;              // records appended to this stream
    uint64_t append_bytes = 0;         // framed bytes ever appended
    // A failed gang append may have left a partial frame in this file;
    // set until Repair() restores the known-good prefix.
    bool damaged = false;
  };

  // Rewrites one stream file atomically (temp file + rename), so a fault
  // mid-rewrite leaves the original — which holds every durable byte —
  // untouched.
  Status PersistRewrite(const std::string& path, const std::string& contents);
  // Cuts trailing garbage left by a failed gang append back to each
  // damaged stream's flushed prefix and reopens the files for appending.
  Status Repair();
  Status RepairStream(Stream* s);
  bool AnyDamaged() const;

  struct PendingFlush {
    Lsn last_lsn;         // highest LSN contained in this flush
    uint64_t bytes_upto;  // global bytes durable once this flush lands
    uint64_t words;       // payload size
    double start_time;    // when the devices begin writing it
    double done_time;     // modeled completion time
    uint64_t epoch;       // gang batch index (group merges share it)
    // Per-stream written_bytes once this flush lands (crash truncation
    // boundary per stream).
    std::vector<uint64_t> stream_bytes;
  };

  // Service time of one flush of `words` striped across the log disks.
  double FlushSeconds(uint64_t words) const {
    return params_.disk.seek_seconds +
           params_.disk.transfer_seconds_per_word *
               static_cast<double>(words) / params_.disk.num_log_disks;
  }

  std::vector<uint64_t> StreamWrittenSnapshot() const;

  Env* env_;
  std::string path_;
  SystemParams params_;
  CpuMeter* meter_;
  bool stable_log_tail_;

  std::vector<Stream> streams_;

  Lsn next_lsn_ = 1;
  Lsn tail_last_lsn_ = kInvalidLsn;
  uint64_t tail_bytes_ = 0;      // unflushed bytes, summed over streams
  uint64_t written_bytes_ = 0;   // bytes handed to files (flushes issued)
  uint64_t appended_bytes_ = 0;  // total framed bytes: written + tails
  std::deque<PendingFlush> pending_;
  Lsn flushed_lsn_ = kInvalidLsn;  // highest LSN handed to a file
  uint64_t base_offset_ = 0;  // sum of per-stream logical base offsets
  uint64_t flush_count_ = 0;
  uint64_t epoch_seq_ = 0;  // gang batches opened so far
  uint64_t epoch_floor_ = 0;  // epochs durable before this instance
  double flush_busy_seconds_ = 0.0;
  double min_flush_spacing_;
  double last_flush_start_ = -1e300;
  // LSN / byte prefix whose durability predates this LogManager instance
  // (the recovered prefix after OpenExisting).
  Lsn durable_floor_ = kInvalidLsn;
  uint64_t durable_bytes_floor_ = 0;

  // Per-stream appended_bytes snapshots taken when a begin-checkpoint
  // marker is appended, keyed by the marker's global offset — the only
  // global offsets TruncateBefore is ever called with. Bounded to the
  // most recent kCheckpointCutsKept entries; maintained only when
  // num_streams > 1 (the single-stream path needs no split).
  static constexpr size_t kCheckpointCutsKept = 8;
  std::map<uint64_t, std::vector<uint64_t>> checkpoint_cuts_;

  Tracer* tracer_ = nullptr;
  Counter* m_appends_ = nullptr;
  Counter* m_append_bytes_ = nullptr;
  Counter* m_flush_batches_ = nullptr;
  Counter* m_flush_bytes_ = nullptr;
  Counter* m_flush_errors_ = nullptr;
  Counter* m_group_merges_ = nullptr;
  Timer* m_flush_seconds_ = nullptr;
};

// Framing shared with LogReader: [u32 len][payload][u32 masked-crc][u32 len].
inline constexpr size_t kLogFrameOverhead = 12;

// Log files begin with a fixed header carrying the *base offset*: the
// logical byte offset of the first frame in the file. Truncating the log
// prefix (TruncateBefore) raises the base instead of renumbering, so
// offsets stored in checkpoint metadata stay valid forever.
// Layout: [u32 magic][u32 version][u64 base_offset].
inline constexpr uint32_t kLogFileMagic = 0x4d4d4c47;  // "MMLG"
inline constexpr uint32_t kLogFileVersion = 1;
inline constexpr size_t kLogFileHeaderBytes = 16;

// Appends one framed record to *dst.
void EncodeLogFrame(const LogRecord& record, std::string* dst);

// The 16-byte log-file header (shared with LogReader::OpenStreams, which
// synthesizes a merged single-log view from N stream files).
std::string EncodeLogFileHeader(uint64_t base_offset);

}  // namespace mmdb

#endif  // MMDB_WAL_LOG_MANAGER_H_
