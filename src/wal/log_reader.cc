#include "wal/log_reader.h"

#include <algorithm>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/string_util.h"
#include "wal/log_manager.h"

namespace mmdb {

LogReader::LogReader(std::string contents) : contents_(std::move(contents)) {
  if (contents_.size() >= kLogFileHeaderBytes &&
      DecodeFixed32(contents_.data()) == kLogFileMagic) {
    base_offset_ = DecodeFixed64(contents_.data() + 8);
    contents_.erase(0, kLogFileHeaderBytes);
  }
  BuildIndex();
}

StatusOr<LogReader> LogReader::Open(Env* env, const std::string& path) {
  if (!env->FileExists(path)) {
    return NotFoundError("no log file at '" + path + "'");
  }
  std::string contents;
  MMDB_RETURN_IF_ERROR(env->ReadFileToString(path, &contents));
  // Engine-written log files always begin with the fixed header; anything
  // else (including a bit flip within the header, which would otherwise
  // silently read as an empty base-0 log) is corruption.
  if (contents.size() < kLogFileHeaderBytes ||
      DecodeFixed32(contents.data()) != kLogFileMagic) {
    return CorruptionError("'" + path +
                           "' is not a log file (bad or missing header)");
  }
  uint32_t version = DecodeFixed32(contents.data() + 4);
  if (version != kLogFileVersion) {
    return CorruptionError(
        StringPrintf("'%s' has unsupported log version %u", path.c_str(),
                     version));
  }
  LogReader reader(std::move(contents));
  MMDB_RETURN_IF_ERROR(reader.status());
  return reader;
}

StatusOr<LogReader> LogReader::OpenStreams(
    Env* env, const std::vector<std::string>& paths,
    std::vector<uint64_t>* stream_valid_bytes) {
  if (paths.empty()) {
    return InvalidArgumentError("OpenStreams: no stream paths");
  }
  if (paths.size() == 1) {
    MMDB_ASSIGN_OR_RETURN(LogReader reader, Open(env, paths[0]));
    if (stream_valid_bytes != nullptr) {
      *stream_valid_bytes = {reader.valid_bytes()};
    }
    return reader;
  }
  if (!env->FileExists(paths[0])) {
    return NotFoundError("no log file at '" + paths[0] + "'");
  }
  std::vector<LogReader> streams;
  streams.reserve(paths.size());
  for (const std::string& path : paths) {
    if (!env->FileExists(path)) {
      // Stream 0 exists but a sibling does not: the directory was written
      // at a different stream count than it is being opened with.
      return CorruptionError("log stream '" + path +
                             "' is missing (shard count mismatch?)");
    }
    MMDB_ASSIGN_OR_RETURN(LogReader reader, Open(env, path));
    streams.push_back(std::move(reader));
  }

  // K-way merge by LSN. Per-stream frames are already LSN-sorted (gang
  // appends assign LSNs in append order), so a cursor per stream and a
  // min-LSN pick per step reconstructs the global sequence; the global
  // sequence must be consecutive, so a gap is a torn gang batch (stop) and
  // anything else out of order is corruption.
  struct Cursor {
    size_t next_frame = 0;
    uint64_t consumed_end = 0;  // stream-local end offset of merged prefix
  };
  std::vector<Cursor> cursors(streams.size());
  auto head_lsn = [&](size_t k, Lsn* lsn) -> Status {
    LogRecordHeader h;
    MMDB_RETURN_IF_ERROR(streams[k].HeaderAt(cursors[k].next_frame, &h));
    *lsn = h.lsn;
    return Status::OK();
  };

  uint64_t merged_base = 0;
  size_t merged_bytes = 0;
  for (const LogReader& s : streams) {
    merged_base += s.base_offset();
    merged_bytes += s.contents_.size();
  }
  std::string merged;
  merged.reserve(kLogFileHeaderBytes + merged_bytes);
  merged += EncodeLogFileHeader(merged_base);

  bool dropped_after_gap = false;
  Lsn prev_lsn = kInvalidLsn;
  std::vector<uint32_t> frame_streams;
  for (;;) {
    size_t pick = streams.size();
    Lsn pick_lsn = kInvalidLsn;
    for (size_t k = 0; k < streams.size(); ++k) {
      if (cursors[k].next_frame >= streams[k].num_frames()) continue;
      Lsn lsn;
      MMDB_RETURN_IF_ERROR(head_lsn(k, &lsn));
      if (pick == streams.size() || lsn < pick_lsn) {
        pick = k;
        pick_lsn = lsn;
      }
    }
    if (pick == streams.size()) break;  // every stream exhausted
    if (prev_lsn != kInvalidLsn) {
      if (pick_lsn <= prev_lsn) {
        return CorruptionError(StringPrintf(
            "log streams carry duplicate or out-of-order LSN %llu",
            static_cast<unsigned long long>(pick_lsn)));
      }
      if (pick_lsn != prev_lsn + 1) {
        // A gap: the gang batch containing prev_lsn+1 never fully landed.
        // Everything at or past the gap was never globally durable.
        dropped_after_gap = true;
        break;
      }
    }
    const LogReader& s = streams[pick];
    const FrameRef& f = s.index_[cursors[pick].next_frame];
    uint64_t frame_end = f.offset + 4 + f.payload_size + 8;
    merged.append(s.contents_, f.offset, frame_end - f.offset);
    frame_streams.push_back(static_cast<uint32_t>(pick));
    cursors[pick].consumed_end = frame_end;
    ++cursors[pick].next_frame;
    prev_lsn = pick_lsn;
  }

  if (stream_valid_bytes != nullptr) {
    stream_valid_bytes->clear();
    for (size_t k = 0; k < streams.size(); ++k) {
      stream_valid_bytes->push_back(streams[k].base_offset() +
                                    cursors[k].consumed_end);
    }
  }
  LogReader reader(std::move(merged));
  MMDB_RETURN_IF_ERROR(reader.status());
  // The merged buffer holds exactly the frames appended above, all
  // CRC-clean, so the fresh index aligns one-to-one with the merge order.
  reader.frame_streams_ = std::move(frame_streams);
  reader.num_streams_ = static_cast<uint32_t>(streams.size());
  if (dropped_after_gap) {
    reader.truncated_tail_ = true;
    reader.torn_gang_ = true;
    reader.torn_gang_lsn_ = prev_lsn + 1;
  }
  reader.stream_dropped_frames_.reserve(streams.size());
  for (size_t k = 0; k < streams.size(); ++k) {
    reader.stream_dropped_frames_.push_back(streams[k].num_frames() -
                                            cursors[k].next_frame);
    if (streams[k].truncated_tail()) reader.truncated_tail_ = true;
  }
  return reader;
}

void LogReader::BuildIndex() {
  uint64_t pos = 0;
  const uint64_t size = contents_.size();
  while (pos + kLogFrameOverhead <= size) {
    uint32_t len = DecodeFixed32(contents_.data() + pos);
    uint64_t frame_end = pos + 4 + len + 8;
    if (frame_end > size) {
      truncated_tail_ = true;
      break;
    }
    const char* payload = contents_.data() + pos + 4;
    uint32_t stored_crc =
        crc32c::Unmask(DecodeFixed32(contents_.data() + pos + 4 + len));
    uint32_t trailer_len = DecodeFixed32(contents_.data() + pos + 4 + len + 4);
    if (trailer_len != len || crc32c::Value(payload, len) != stored_crc) {
      truncated_tail_ = true;
      break;
    }
    index_.push_back(FrameRef{pos, len});
    pos = frame_end;
  }
  if (pos < size && !truncated_tail_) truncated_tail_ = true;
  valid_bytes_ = base_offset_ + (pos <= size ? pos : size);
  if (!index_.empty()) {
    valid_bytes_ = base_offset_ + index_.back().offset + 4 +
                   index_.back().payload_size + 8;
  }
  if (truncated_tail_ && AnyValidFrameAfter(pos)) {
    // Intact frames past the bad one: the log was damaged in place, not
    // torn at the end. Resuming quietly at the last good frame would drop
    // the committed transactions between here and those frames.
    status_ = CorruptionError(StringPrintf(
        "log frame at offset %llu is corrupt but later frames are intact",
        static_cast<unsigned long long>(base_offset_ + pos)));
  }
}

bool LogReader::AnyValidFrameAfter(uint64_t pos) const {
  const uint64_t size = contents_.size();
  for (uint64_t q = pos + 1; q + kLogFrameOverhead <= size; ++q) {
    uint32_t len = DecodeFixed32(contents_.data() + q);
    uint64_t frame_end = q + 4 + len + 8;
    if (frame_end > size) continue;
    // Cheap filters first (trailer length copy), CRC last.
    if (DecodeFixed32(contents_.data() + q + 4 + len + 4) != len) continue;
    uint32_t stored_crc =
        crc32c::Unmask(DecodeFixed32(contents_.data() + q + 4 + len));
    if (crc32c::Value(contents_.data() + q + 4, len) != stored_crc) continue;
    return true;
  }
  return false;
}

StatusOr<LogRecord> LogReader::RecordAt(uint64_t offset) const {
  if (offset < base_offset_) {
    return NotFoundError("offset precedes the log's base (truncated)");
  }
  offset -= base_offset_;
  auto it = std::lower_bound(
      index_.begin(), index_.end(), offset,
      [](const FrameRef& f, uint64_t off) { return f.offset < off; });
  if (it == index_.end() || it->offset != offset) {
    return NotFoundError(
        StringPrintf("no log frame at offset %llu",
                     static_cast<unsigned long long>(offset)));
  }
  LogRecord record;
  MMDB_RETURN_IF_ERROR(LogRecord::DecodeFrom(
      std::string_view(contents_.data() + it->offset + 4, it->payload_size),
      &record));
  return record;
}

StatusOr<size_t> LogReader::FrameIndexAt(uint64_t offset) const {
  if (offset < base_offset_) {
    return InvalidArgumentError(
        "offset precedes the log's base (truncated away)");
  }
  offset -= base_offset_;
  auto it = std::lower_bound(
      index_.begin(), index_.end(), offset,
      [](const FrameRef& f, uint64_t off) { return f.offset < off; });
  if (it == index_.end() || it->offset != offset) {
    return NotFoundError(
        StringPrintf("no log frame at offset %llu",
                     static_cast<unsigned long long>(base_offset_ + offset)));
  }
  return static_cast<size_t>(it - index_.begin());
}

Status LogReader::HeaderAt(size_t i, LogRecordHeader* out) const {
  const FrameRef& f = index_[i];
  return LogRecordHeader::DecodeFrom(
      std::string_view(contents_.data() + f.offset + 4, f.payload_size), out);
}

StatusOr<LogRecord> LogReader::RecordAtIndex(size_t i) const {
  const FrameRef& f = index_[i];
  LogRecord record;
  MMDB_RETURN_IF_ERROR(LogRecord::DecodeFrom(
      std::string_view(contents_.data() + f.offset + 4, f.payload_size),
      &record));
  return record;
}

Status LogReader::ScanForward(
    uint64_t from_offset,
    const std::function<bool(const LogRecord&, uint64_t)>& fn) const {
  if (from_offset < base_offset_) {
    return InvalidArgumentError(
        "scan start precedes the log's base (truncated away)");
  }
  from_offset -= base_offset_;
  auto it = std::lower_bound(
      index_.begin(), index_.end(), from_offset,
      [](const FrameRef& f, uint64_t off) { return f.offset < off; });
  if (it != index_.end() && it->offset != from_offset) {
    return InvalidArgumentError("from_offset is not a frame boundary");
  }
  for (; it != index_.end(); ++it) {
    LogRecord record;
    MMDB_RETURN_IF_ERROR(LogRecord::DecodeFrom(
        std::string_view(contents_.data() + it->offset + 4, it->payload_size),
        &record));
    if (!fn(record, base_offset_ + it->offset)) break;
  }
  return Status::OK();
}

Status LogReader::ScanBackward(
    const std::function<bool(const LogRecord&, uint64_t)>& fn) const {
  for (auto it = index_.rbegin(); it != index_.rend(); ++it) {
    LogRecord record;
    MMDB_RETURN_IF_ERROR(LogRecord::DecodeFrom(
        std::string_view(contents_.data() + it->offset + 4, it->payload_size),
        &record));
    if (!fn(record, base_offset_ + it->offset)) break;
  }
  return Status::OK();
}

StatusOr<LogReader::CheckpointMarker> LogReader::FindLastCompleteCheckpoint()
    const {
  bool found_end = false;
  CheckpointId end_id = 0;
  bool found_begin = false;
  CheckpointMarker marker;
  Status scan = ScanBackward([&](const LogRecord& r, uint64_t offset) {
    if (!found_end) {
      if (r.type == LogRecordType::kEndCheckpoint) {
        found_end = true;
        end_id = r.checkpoint_id;
      }
      return true;  // keep scanning
    }
    if (r.type == LogRecordType::kBeginCheckpoint &&
        r.checkpoint_id == end_id) {
      marker = CheckpointMarker{end_id, offset, r};
      found_begin = true;
      return false;
    }
    return true;
  });
  MMDB_RETURN_IF_ERROR(scan);
  if (!found_end) return NotFoundError("no completed checkpoint in the log");
  if (!found_begin) {
    return CorruptionError(StringPrintf(
        "end-checkpoint %llu has no begin marker",
        static_cast<unsigned long long>(end_id)));
  }
  return marker;
}

}  // namespace mmdb
