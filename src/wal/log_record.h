#ifndef MMDB_WAL_LOG_RECORD_H_
#define MMDB_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace mmdb {

class JsonWriter;

// REDO-only log record kinds (Section 2.6: shadow-copy updates make UNDO
// logging unnecessary — old versions are never overwritten before commit).
enum class LogRecordType : uint8_t {
  kUpdate = 1,           // after-image of one record (physical logging)
  kCommit = 2,           // transaction committed
  kAbort = 3,            // transaction aborted (accounting only; never redone)
  kBeginCheckpoint = 4,  // checkpoint begin marker + active transaction list
  kEndCheckpoint = 5,    // checkpoint completion marker
  // Logical (operation) logging: an 8-byte signed addition at an offset
  // within a record — a fraction of an after-image's bytes, but NOT
  // idempotent, so it is legal only with checkpoints whose backup is an
  // exact snapshot at the replay start point (the COU algorithms). The
  // paper notes this logging style as an advantage of consistent backups
  // (Section 3.2).
  kDelta = 6,
};

// Canonical record-type names, shared by every formatter that renders log
// records (DebugString, `mmdb_log_dump --json`, and the tracer's JSON
// emitter) so the spellings cannot drift apart. Inline so header-only
// users (the obs layer) need no link-time dependency on mmdb_wal.
inline std::string_view LogRecordTypeName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kUpdate:
      return "UPDATE";
    case LogRecordType::kCommit:
      return "COMMIT";
    case LogRecordType::kAbort:
      return "ABORT";
    case LogRecordType::kBeginCheckpoint:
      return "BEGIN_CKPT";
    case LogRecordType::kEndCheckpoint:
      return "END_CKPT";
    case LogRecordType::kDelta:
      return "DELTA";
  }
  return "INVALID";
}

// One entry in a begin-checkpoint marker's active-transaction list. For
// fuzzy checkpoints, recovery must scan back to the earliest active
// transaction's first log record (Section 3.3); `first_lsn` is kInvalidLsn
// when the transaction has not logged anything yet (always the case under
// commit-time logging, where a transaction's records are emitted as one
// contiguous group at commit).
struct ActiveTxnEntry {
  TxnId txn_id = kInvalidTxnId;
  Lsn first_lsn = kInvalidLsn;

  friend bool operator==(const ActiveTxnEntry&, const ActiveTxnEntry&) =
      default;
};

// Shallow view of a record payload: just the fixed prefix every record
// carries (type, lsn, txn) plus record_id for the two data kinds — enough
// for recovery's classification scan (commit set, segment bucketing, max
// lsn) without materializing after-images. Decoding a header does NOT
// fully validate the payload; the full DecodeFrom still runs before any
// bytes are applied to the database.
struct LogRecordHeader {
  LogRecordType type = LogRecordType::kUpdate;
  Lsn lsn = kInvalidLsn;
  TxnId txn_id = kInvalidTxnId;
  RecordId record_id = 0;  // kUpdate / kDelta only; 0 otherwise

  // Parses the common prefix of a payload produced by LogRecord::EncodeTo.
  // Returns CORRUPTION if even the prefix is malformed.
  static Status DecodeFrom(std::string_view payload, LogRecordHeader* out);
};

// In-memory form of a log record. Only the fields relevant to `type` are
// meaningful; the encoder writes exactly those.
struct LogRecord {
  LogRecordType type = LogRecordType::kUpdate;
  Lsn lsn = kInvalidLsn;  // assigned by LogManager::Append
  TxnId txn_id = kInvalidTxnId;

  // kUpdate / kDelta:
  RecordId record_id = 0;
  std::string image;       // kUpdate: after-image, record_bytes long
  uint32_t field_offset = 0;  // kDelta: byte offset of the 8-byte field
  int64_t delta = 0;          // kDelta: signed amount added to the field

  // kBeginCheckpoint / kEndCheckpoint:
  CheckpointId checkpoint_id = 0;
  Timestamp timestamp = 0;                    // tau(CH) for COU checkpoints
  std::vector<ActiveTxnEntry> active_txns;    // kBeginCheckpoint only

  static LogRecord Update(TxnId txn, RecordId record, std::string image);
  static LogRecord Delta(TxnId txn, RecordId record, uint32_t field_offset,
                         int64_t delta);
  static LogRecord Commit(TxnId txn);
  static LogRecord Abort(TxnId txn);
  static LogRecord BeginCheckpoint(CheckpointId id, Timestamp tau,
                                   std::vector<ActiveTxnEntry> active);
  static LogRecord EndCheckpoint(CheckpointId id);

  // Serializes the record payload (without framing) onto *dst.
  void EncodeTo(std::string* dst) const;

  // Parses a payload produced by EncodeTo. Returns CORRUPTION on malformed
  // input.
  static Status DecodeFrom(std::string_view payload, LogRecord* out);

  // Payload size in bytes once encoded. Computed arithmetically (no
  // encoding pass), so it is cheap enough for the append hot path to
  // pre-reserve frames with.
  size_t EncodedSize() const;

  std::string DebugString() const;

  // Emits this record as one JSON object (type name, lsn, and the fields
  // meaningful for `type`) — the formatter behind `mmdb_log_dump --json`.
  void AppendJsonTo(JsonWriter* writer) const;

  friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

}  // namespace mmdb

#endif  // MMDB_WAL_LOG_RECORD_H_
