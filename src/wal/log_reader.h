#ifndef MMDB_WAL_LOG_READER_H_
#define MMDB_WAL_LOG_READER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "env/env.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/types.h"
#include "wal/log_record.h"

namespace mmdb {

// Read-side of the log format (see EncodeLogFrame). The reader indexes every
// well-formed frame on construction; a torn or corrupt tail — the normal
// result of crashing mid-flush — simply ends the log at the last good frame
// (LevelDB-style), which `truncated_tail()` reports.
//
// A bad frame followed by intact frames is a different story: the damage is
// mid-log (a bit flip, an overlong length field), and stopping quietly at
// the last good frame would silently drop committed transactions. That case
// is reported as Corruption through status() — and by Open(), which also
// rejects a file whose magic/version header is unreadable.
//
// Frames carry a trailing length copy, so the reader also supports the
// paper's *backward* scan used at recovery to locate the begin-checkpoint
// marker of the most recent complete checkpoint (Section 3.3).
class LogReader {
 public:
  // Takes ownership of raw log bytes. If they begin with the log-file
  // header (see kLogFileMagic), its base offset is honored; headerless
  // byte strings (tests, hand-built logs) read with base 0. Check status()
  // for mid-log corruption.
  explicit LogReader(std::string contents);

  // Reads `path` via `env` and wraps it. NOT_FOUND if the file does not
  // exist; CORRUPTION if it lacks a valid log-file header (bad magic,
  // unsupported version, bit-flipped header) or has mid-log damage.
  static StatusOr<LogReader> Open(Env* env, const std::string& path);

  // Opens N per-shard stream files (LogManager::StreamPath layout) and
  // k-way merges their frames by LSN into ONE logical log view, exactly
  // as if the engine had written a single stream: the merged base offset
  // is the sum of the per-stream bases, frames appear in global LSN
  // order, and every global offset published in checkpoint metadata
  // resolves because gang flushes preserve "append order == LSN order"
  // per stream. The merge stops at the first LSN gap — a gang batch torn
  // across streams at crash time; frames past the gap in any stream were
  // never globally promised and are dropped (a torn tail, not an error).
  // A duplicate or out-of-order LSN across streams is CORRUPTION, as is a
  // missing stream file when stream 0 exists (e.g. the engine was
  // reopened with a different shard count). NOT_FOUND if stream 0 is
  // missing. If `stream_valid_bytes` is non-null it receives, per
  // stream, the logical end offset (base-inclusive) of that stream's
  // merged prefix — what LogManager::OpenExisting needs to reopen the
  // streams. A single path delegates to Open().
  static StatusOr<LogReader> OpenStreams(
      Env* env, const std::vector<std::string>& paths,
      std::vector<uint64_t>* stream_valid_bytes);

  // OK, or Corruption when frames were damaged mid-log (intact frames
  // exist past the first bad one, so this is not a torn tail).
  const Status& status() const { return status_; }

  // Logical offset of the oldest frame retained (> 0 after truncation).
  uint64_t base_offset() const { return base_offset_; }

  size_t num_records() const { return index_.size(); }
  bool truncated_tail() const { return truncated_tail_; }
  // Logical end offset of the well-formed prefix (base included).
  uint64_t valid_bytes() const { return valid_bytes_; }

  // Decodes the record whose frame starts at byte `offset`.
  StatusOr<LogRecord> RecordAt(uint64_t offset) const;

  // Frame-granular access, the substrate of parallel recovery: workers
  // scan or replay disjoint index ranges [begin, end) concurrently — the
  // reader is immutable after construction, so const access is
  // thread-safe.
  //
  // num_frames() aliases num_records(); frames are addressed by index in
  // log order.
  size_t num_frames() const { return index_.size(); }

  // Logical offset (base included) of frame `i`. i < num_frames().
  uint64_t FrameOffset(size_t i) const { return base_offset_ + index_[i].offset; }

  // Stream file that carried frame `i`, for readers built by the
  // OpenStreams merge; always 0 for single-stream readers. Provenance
  // (which WAL stream each replayed frame came from) and the log-dump
  // tool's per-frame stream column both read this.
  uint32_t FrameStream(size_t i) const {
    return frame_streams_.empty() ? 0 : frame_streams_[i];
  }

  // Stream files merged into this view (1 for Open()).
  uint32_t num_streams() const { return num_streams_; }

  // Whether the merge stopped at a global LSN gap — a gang batch torn
  // across streams at crash time — and the first LSN that never became
  // globally durable. Distinct from a plain torn tail: the dropped frames
  // may be CRC-clean in their own streams.
  bool torn_gang() const { return torn_gang_; }
  Lsn torn_gang_lsn() const { return torn_gang_lsn_; }

  // Per stream, CRC-clean frames dropped beyond the merge frontier (the
  // torn gang's casualties). Empty for single-stream readers.
  const std::vector<uint64_t>& stream_dropped_frames() const {
    return stream_dropped_frames_;
  }

  // Index of the frame starting at logical byte `offset`, or
  // INVALID_ARGUMENT / NOT_FOUND when `offset` is not a frame boundary —
  // how recovery converts a checkpoint marker's saved offset into a replay
  // range.
  StatusOr<size_t> FrameIndexAt(uint64_t offset) const;

  // Shallow header decode of frame `i` (no after-image copy) — the
  // classification scan's fast path.
  Status HeaderAt(size_t i, LogRecordHeader* out) const;

  // Full decode of frame `i`.
  StatusOr<LogRecord> RecordAtIndex(size_t i) const;

  // Invokes `fn(record, frame_offset)` for each record from the frame at
  // `from_offset` (which must be a frame boundary, typically 0 or an offset
  // saved in checkpoint metadata) to the end. `fn` returns false to stop.
  Status ScanForward(
      uint64_t from_offset,
      const std::function<bool(const LogRecord&, uint64_t)>& fn) const;

  // Same, newest-to-oldest over the whole log.
  Status ScanBackward(
      const std::function<bool(const LogRecord&, uint64_t)>& fn) const;

  // Position of the begin-checkpoint marker of the last *complete*
  // checkpoint: scans backward for the newest end-checkpoint record, then
  // for the matching begin marker. Mirrors the paper's rule of skipping a
  // begin marker with no completion (an in-progress checkpoint at crash
  // time). Returns NOT_FOUND if no checkpoint ever completed.
  struct CheckpointMarker {
    CheckpointId checkpoint_id;
    uint64_t begin_offset;
    LogRecord begin_record;
  };
  StatusOr<CheckpointMarker> FindLastCompleteCheckpoint() const;

 private:
  struct FrameRef {
    uint64_t offset;        // of the frame start
    uint32_t payload_size;  // bytes
  };

  void BuildIndex();
  // Whether any well-formed frame starts after byte `pos` (used to tell a
  // torn tail from mid-log corruption).
  bool AnyValidFrameAfter(uint64_t pos) const;

  std::string contents_;   // frames only (file header stripped)
  std::vector<FrameRef> index_;
  uint64_t base_offset_ = 0;
  bool truncated_tail_ = false;
  uint64_t valid_bytes_ = 0;
  Status status_;
  // Stream attribution, populated only by the OpenStreams merge:
  // frame_streams_[i] is the source stream of index_[i] (they are built
  // from the same merge sequence, so they align one-to-one).
  std::vector<uint32_t> frame_streams_;
  uint32_t num_streams_ = 1;
  bool torn_gang_ = false;
  Lsn torn_gang_lsn_ = kInvalidLsn;
  std::vector<uint64_t> stream_dropped_frames_;
};

}  // namespace mmdb

#endif  // MMDB_WAL_LOG_READER_H_
