#include "wal/log_manager.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/coding.h"
#include "util/crc32c.h"

namespace mmdb {

void EncodeLogFrame(const LogRecord& record, std::string* dst) {
  // Encode the payload straight into *dst (the caller's long-lived tail
  // buffer) behind a length placeholder — no per-record scratch string.
  // EncodedSize() is a cheap arithmetic walk, so the reserve costs nothing
  // and the appends below never re-grow.
  dst->reserve(dst->size() + record.EncodedSize() + kLogFrameOverhead);
  const size_t len_pos = dst->size();
  PutFixed32(dst, 0);  // backfilled once the payload size is known
  const size_t payload_pos = dst->size();
  record.EncodeTo(dst);
  const uint32_t payload_size =
      static_cast<uint32_t>(dst->size() - payload_pos);
  EncodeFixed32(dst->data() + len_pos, payload_size);
  uint32_t crc =
      crc32c::Mask(crc32c::Value(dst->data() + payload_pos, payload_size));
  PutFixed32(dst, crc);
  PutFixed32(dst, payload_size);
}

LogManager::LogManager(Env* env, std::string path, const SystemParams& params,
                       CpuMeter* meter, bool stable_log_tail,
                       double min_flush_spacing)
    : env_(env),
      path_(std::move(path)),
      params_(params),
      meter_(meter),
      stable_log_tail_(stable_log_tail),
      min_flush_spacing_(min_flush_spacing) {}

namespace {

std::string EncodeLogFileHeader(uint64_t base_offset) {
  std::string header;
  PutFixed32(&header, kLogFileMagic);
  PutFixed32(&header, kLogFileVersion);
  PutFixed64(&header, base_offset);
  return header;
}

}  // namespace

Status LogManager::Open() {
  MMDB_ASSIGN_OR_RETURN(file_, env_->NewWritableFile(path_));
  base_offset_ = 0;
  return file_->Append(EncodeLogFileHeader(0));
}

Status LogManager::PersistRewrite(const std::string& contents) {
  const std::string tmp = path_ + ".tmp";
  MMDB_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, contents, /*sync=*/true));
  return env_->RenameFile(tmp, path_);
}

Status LogManager::Repair() {
  // A failed append may have deposited an arbitrary prefix of the batch.
  // Close may itself fail on a hosed device; the rewrite supersedes
  // whatever state the handle left behind.
  if (file_ != nullptr) (void)file_->Close();
  file_.reset();
  std::string contents;
  MMDB_RETURN_IF_ERROR(env_->ReadFileToString(path_, &contents));
  uint64_t keep = kLogFileHeaderBytes + (written_bytes_ - base_offset_);
  if (contents.size() < keep) {
    return CorruptionError("log file lost bytes that were already flushed");
  }
  contents.resize(keep);
  Status rewrite = PersistRewrite(contents);
  // Reopen even if the rewrite failed (the original file is intact — temp
  // plus rename) so the manager stays usable; damaged_ then remains set
  // and the next Flush retries the repair.
  MMDB_ASSIGN_OR_RETURN(file_, env_->NewAppendableFile(path_));
  MMDB_RETURN_IF_ERROR(rewrite);
  damaged_ = false;
  return Status::OK();
}

Status LogManager::OpenExisting(uint64_t existing_bytes, Lsn next_lsn) {
  std::string contents;
  MMDB_RETURN_IF_ERROR(env_->ReadFileToString(path_, &contents));
  uint64_t base = 0;
  if (contents.size() >= kLogFileHeaderBytes &&
      DecodeFixed32(contents.data()) == kLogFileMagic) {
    base = DecodeFixed64(contents.data() + 8);
    contents.erase(0, kLogFileHeaderBytes);
  }
  if (base + contents.size() < existing_bytes || existing_bytes < base) {
    return CorruptionError("log file shorter than its valid prefix");
  }
  contents.resize(existing_bytes - base);
  std::string rewritten = EncodeLogFileHeader(base);
  rewritten += contents;
  MMDB_RETURN_IF_ERROR(PersistRewrite(rewritten));
  MMDB_ASSIGN_OR_RETURN(file_, env_->NewAppendableFile(path_));
  base_offset_ = base;
  damaged_ = false;
  written_bytes_ = existing_bytes;
  appended_bytes_ = existing_bytes;
  next_lsn_ = next_lsn;
  tail_.clear();
  tail_last_lsn_ = kInvalidLsn;
  pending_.clear();
  flushed_lsn_ = next_lsn > 0 ? next_lsn - 1 : kInvalidLsn;
  durable_floor_ = flushed_lsn_;
  durable_bytes_floor_ = existing_bytes;
  return Status::OK();
}

void LogManager::set_obs(MetricsRegistry* registry, Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) return;
  m_appends_ = registry->counter("log.appends");
  m_append_bytes_ = registry->counter("log.append_bytes");
  m_flush_batches_ = registry->counter("log.flush_batches");
  m_flush_bytes_ = registry->counter("log.flush_bytes");
  m_flush_errors_ = registry->counter("log.flush_errors");
  m_group_merges_ = registry->counter("log.group_commit_merges");
  m_flush_seconds_ = registry->timer("log.flush_seconds");
}

Lsn LogManager::Append(LogRecord* record, double now) {
  record->lsn = next_lsn_++;
  size_t before = tail_.size();
  EncodeLogFrame(*record, &tail_);
  size_t frame_bytes = tail_.size() - before;
  appended_bytes_ += frame_bytes;
  tail_last_lsn_ = record->lsn;
  // Log creation is data movement into the log buffer: 1 instr/word. This
  // is base logging work, excluded from checkpoint-overhead metrics.
  meter_->Charge(CpuCategory::kLogging,
                 params_.costs.move_per_word *
                     (static_cast<double>(frame_bytes) / kWordBytes));
  if (m_appends_ != nullptr) {
    m_appends_->Increment();
    m_append_bytes_->Increment(frame_bytes);
  }
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventType::kLogAppend, now, 0.0,
                    static_cast<int64_t>(record->lsn),
                    static_cast<int64_t>(record->type),
                    static_cast<int64_t>(frame_bytes));
  }
  return record->lsn;
}

StatusOr<double> LogManager::Flush(double now) {
  if (tail_.empty()) return now;
  if (damaged_) MMDB_RETURN_IF_ERROR(Repair());
  uint64_t words = (tail_.size() + kWordBytes - 1) / kWordBytes;
  uint64_t batch_bytes = tail_.size();

  // The bytes go to the Env file immediately; Crash() rolls back anything
  // whose modeled completion hadn't been reached.
  Status s = file_->Append(tail_);
  if (!s.ok()) {
    // The device may have taken a prefix of the batch. The tail is kept in
    // full — every record stays replayable from memory and no durability
    // promise has been made for it — and the partial frame is cut off by
    // Repair() before the next attempt.
    damaged_ = true;
    if (m_flush_errors_ != nullptr) m_flush_errors_->Increment();
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventType::kLogFlushError, now, 0.0,
                      static_cast<int64_t>(tail_last_lsn_));
    }
    return s;
  }
  written_bytes_ += tail_.size();
  flushed_lsn_ = tail_last_lsn_;
  if (m_flush_bytes_ != nullptr) m_flush_bytes_->Increment(batch_bytes);

  if (!pending_.empty() && pending_.back().start_time > now) {
    // Group commit: the previous batch has not started writing yet; this
    // request coalesces into it rather than issuing another seek. Earlier
    // bytes keep their already-promised completion (they stream to the
    // platter first); the merged bytes become durable when the enlarged
    // batch finishes. Recorded as a new immutable entry so no durability
    // promise ever moves — the write-ahead gates depend on that.
    const PendingFlush& batch = pending_.back();
    uint64_t batch_words = batch.words + words;
    double done = std::max(batch.done_time,
                           batch.start_time + FlushSeconds(batch_words));
    flush_busy_seconds_ += done - batch.done_time;
    pending_.push_back(PendingFlush{tail_last_lsn_, written_bytes_,
                                    batch_words, batch.start_time, done});
    tail_.clear();
    if (m_group_merges_ != nullptr) m_group_merges_->Increment();
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventType::kLogFlush, now, done,
                      static_cast<int64_t>(flushed_lsn_),
                      static_cast<int64_t>(batch_bytes));
    }
    return done;
  }

  // One I/O initiation per physical flush batch.
  meter_->Charge(CpuCategory::kLogging,
                 static_cast<double>(params_.costs.io));
  // Serial stream: a batch starts no sooner than the cadence allows and
  // never before the previous batch finished.
  double start = std::max(now, last_flush_start_ + min_flush_spacing_);
  if (!pending_.empty()) start = std::max(start, pending_.back().done_time);
  last_flush_start_ = start;
  double done = start + FlushSeconds(words);
  flush_busy_seconds_ += done - start;
  ++flush_count_;
  pending_.push_back(
      PendingFlush{tail_last_lsn_, written_bytes_, words, start, done});
  tail_.clear();
  if (m_flush_batches_ != nullptr) {
    m_flush_batches_->Increment();
    m_flush_seconds_->Record(done - start);
  }
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventType::kLogFlush, now, done,
                    static_cast<int64_t>(flushed_lsn_),
                    static_cast<int64_t>(batch_bytes));
  }
  return done;
}

Lsn LogManager::DurableLsn(double now) const {
  if (stable_log_tail_) return LastLsn();
  Lsn durable = durable_floor_;
  for (const PendingFlush& f : pending_) {
    if (f.done_time <= now) durable = f.last_lsn;
  }
  return durable;
}

double LogManager::WhenDurable(Lsn lsn, double now) const {
  if (lsn == kInvalidLsn) return now;
  if (stable_log_tail_) return now;
  if (lsn <= durable_floor_) return now;
  for (const PendingFlush& f : pending_) {
    if (f.last_lsn >= lsn) return std::max(now, f.done_time);
  }
  // Still in the tail (or not yet appended): not durable until a future
  // Flush covers it.
  return std::numeric_limits<double>::infinity();
}

Status LogManager::Crash(double now) {
  uint64_t surviving_bytes = durable_bytes_floor_;
  if (stable_log_tail_) {
    // Stable RAM: both the flushed prefix and the tail survive. Persist the
    // tail so recovery sees it in the file (cutting any garbage a failed
    // append left in between first).
    if (damaged_) MMDB_RETURN_IF_ERROR(Repair());
    if (!tail_.empty()) {
      MMDB_RETURN_IF_ERROR(file_->Append(tail_));
      written_bytes_ += tail_.size();
      tail_.clear();
    }
    surviving_bytes = written_bytes_;
  } else {
    for (const PendingFlush& f : pending_) {
      if (f.done_time <= now) surviving_bytes = f.bytes_upto;
    }
  }
  if (file_ != nullptr) {
    MMDB_RETURN_IF_ERROR(file_->Close());
    file_.reset();
  }

  std::string contents;
  MMDB_RETURN_IF_ERROR(env_->ReadFileToString(path_, &contents));
  uint64_t physical_keep =
      kLogFileHeaderBytes + (surviving_bytes > base_offset_
                                 ? surviving_bytes - base_offset_
                                 : 0);
  if (contents.size() > physical_keep) {
    contents.resize(physical_keep);
    MMDB_RETURN_IF_ERROR(PersistRewrite(contents));
  }
  return Status::OK();
}

StatusOr<uint64_t> LogManager::TruncateBefore(uint64_t cut) {
  if (cut < base_offset_) return uint64_t{0};  // already truncated past it
  if (cut > written_bytes_) {
    return InvalidArgumentError(
        "cannot truncate past the end of the flushed log");
  }
  uint64_t dropped = cut - base_offset_;
  if (dropped == 0) return uint64_t{0};
  // A failed append's trailing garbage must not ride along into the
  // rewritten file.
  if (damaged_) MMDB_RETURN_IF_ERROR(Repair());

  std::string contents;
  MMDB_RETURN_IF_ERROR(env_->ReadFileToString(path_, &contents));
  if (contents.size() < kLogFileHeaderBytes + dropped) {
    return CorruptionError("log file shorter than its truncation point");
  }
  std::string rewritten = EncodeLogFileHeader(cut);
  rewritten.append(contents, kLogFileHeaderBytes + dropped,
                   contents.size() - kLogFileHeaderBytes - dropped);
  MMDB_RETURN_IF_ERROR(file_->Close());
  file_.reset();
  Status rewrite = PersistRewrite(rewritten);
  // On failure the original file is intact (temp + rename); reopen it so
  // the manager stays usable — truncation is only an optimization and the
  // caller may treat the error as non-fatal.
  MMDB_ASSIGN_OR_RETURN(file_, env_->NewAppendableFile(path_));
  MMDB_RETURN_IF_ERROR(rewrite);
  base_offset_ = cut;
  return dropped;
}

}  // namespace mmdb
