#include "wal/log_manager.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/coding.h"
#include "util/crc32c.h"

namespace mmdb {

void EncodeLogFrame(const LogRecord& record, std::string* dst) {
  // Encode the payload straight into *dst (the caller's long-lived tail
  // buffer) behind a length placeholder — no per-record scratch string.
  // EncodedSize() is a cheap arithmetic walk, so the reserve costs nothing
  // and the appends below never re-grow.
  dst->reserve(dst->size() + record.EncodedSize() + kLogFrameOverhead);
  const size_t len_pos = dst->size();
  PutFixed32(dst, 0);  // backfilled once the payload size is known
  const size_t payload_pos = dst->size();
  record.EncodeTo(dst);
  const uint32_t payload_size =
      static_cast<uint32_t>(dst->size() - payload_pos);
  EncodeFixed32(dst->data() + len_pos, payload_size);
  uint32_t crc =
      crc32c::Mask(crc32c::Value(dst->data() + payload_pos, payload_size));
  PutFixed32(dst, crc);
  PutFixed32(dst, payload_size);
}

std::string EncodeLogFileHeader(uint64_t base_offset) {
  std::string header;
  PutFixed32(&header, kLogFileMagic);
  PutFixed32(&header, kLogFileVersion);
  PutFixed64(&header, base_offset);
  return header;
}

std::string LogManager::StreamPath(const std::string& base, uint32_t k) {
  if (k == 0) return base;
  return base + "." + std::to_string(k);
}

LogManager::LogManager(Env* env, std::string path, const SystemParams& params,
                       CpuMeter* meter, bool stable_log_tail,
                       double min_flush_spacing, uint32_t num_streams)
    : env_(env),
      path_(std::move(path)),
      params_(params),
      meter_(meter),
      stable_log_tail_(stable_log_tail),
      min_flush_spacing_(min_flush_spacing) {
  if (num_streams == 0) num_streams = 1;
  streams_.resize(num_streams);
  for (uint32_t k = 0; k < num_streams; ++k) {
    streams_[k].path = StreamPath(path_, k);
  }
}

Status LogManager::Open() {
  for (Stream& s : streams_) {
    MMDB_ASSIGN_OR_RETURN(s.file, env_->NewWritableFile(s.path));
    s.base_offset = 0;
    MMDB_RETURN_IF_ERROR(s.file->Append(EncodeLogFileHeader(0)));
  }
  base_offset_ = 0;
  return Status::OK();
}

Status LogManager::PersistRewrite(const std::string& path,
                                  const std::string& contents) {
  const std::string tmp = path + ".tmp";
  MMDB_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, contents, /*sync=*/true));
  return env_->RenameFile(tmp, path);
}

bool LogManager::AnyDamaged() const {
  for (const Stream& s : streams_) {
    if (s.damaged) return true;
  }
  return false;
}

Status LogManager::RepairStream(Stream* s) {
  // A failed gang append may have deposited an arbitrary prefix of the
  // stream's batch slice. Close may itself fail on a hosed device; the
  // rewrite supersedes whatever state the handle left behind.
  if (s->file != nullptr) (void)s->file->Close();
  s->file.reset();
  std::string contents;
  MMDB_RETURN_IF_ERROR(env_->ReadFileToString(s->path, &contents));
  uint64_t keep = kLogFileHeaderBytes + (s->written_bytes - s->base_offset);
  if (contents.size() < keep) {
    return CorruptionError("log file lost bytes that were already flushed");
  }
  contents.resize(keep);
  Status rewrite = PersistRewrite(s->path, contents);
  // Reopen even if the rewrite failed (the original file is intact — temp
  // plus rename) so the manager stays usable; damaged then remains set
  // and the next Flush retries the repair.
  MMDB_ASSIGN_OR_RETURN(s->file, env_->NewAppendableFile(s->path));
  MMDB_RETURN_IF_ERROR(rewrite);
  s->damaged = false;
  return Status::OK();
}

Status LogManager::Repair() {
  for (Stream& s : streams_) {
    if (s.damaged) MMDB_RETURN_IF_ERROR(RepairStream(&s));
  }
  return Status::OK();
}

Status LogManager::OpenExisting(
    const std::vector<uint64_t>& stream_valid_bytes, Lsn next_lsn) {
  if (stream_valid_bytes.size() != streams_.size()) {
    return InvalidArgumentError(
        "OpenExisting: one valid-bytes entry per stream required");
  }
  uint64_t total_valid = 0;
  uint64_t total_base = 0;
  for (size_t k = 0; k < streams_.size(); ++k) {
    Stream& s = streams_[k];
    const uint64_t valid = stream_valid_bytes[k];
    std::string contents;
    MMDB_RETURN_IF_ERROR(env_->ReadFileToString(s.path, &contents));
    uint64_t base = 0;
    if (contents.size() >= kLogFileHeaderBytes &&
        DecodeFixed32(contents.data()) == kLogFileMagic) {
      base = DecodeFixed64(contents.data() + 8);
      contents.erase(0, kLogFileHeaderBytes);
    }
    if (base + contents.size() < valid || valid < base) {
      return CorruptionError("log file shorter than its valid prefix");
    }
    contents.resize(valid - base);
    std::string rewritten = EncodeLogFileHeader(base);
    rewritten += contents;
    MMDB_RETURN_IF_ERROR(PersistRewrite(s.path, rewritten));
    MMDB_ASSIGN_OR_RETURN(s.file, env_->NewAppendableFile(s.path));
    s.base_offset = base;
    s.damaged = false;
    s.written_bytes = valid;
    s.appended_bytes = valid;
    s.durable_bytes_floor = valid;
    s.tail.clear();
    total_valid += valid;
    total_base += base;
  }
  base_offset_ = total_base;
  written_bytes_ = total_valid;
  appended_bytes_ = total_valid;
  tail_bytes_ = 0;
  next_lsn_ = next_lsn;
  tail_last_lsn_ = kInvalidLsn;
  pending_.clear();
  checkpoint_cuts_.clear();
  flushed_lsn_ = next_lsn > 0 ? next_lsn - 1 : kInvalidLsn;
  durable_floor_ = flushed_lsn_;
  durable_bytes_floor_ = total_valid;
  epoch_floor_ = epoch_seq_;
  return Status::OK();
}

Status LogManager::OpenExisting(uint64_t existing_bytes, Lsn next_lsn) {
  if (streams_.size() != 1) {
    return InvalidArgumentError(
        "single-offset OpenExisting requires a single-stream log");
  }
  return OpenExisting(std::vector<uint64_t>{existing_bytes}, next_lsn);
}

void LogManager::set_obs(MetricsRegistry* registry, Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) return;
  m_appends_ = registry->counter("log.appends");
  m_append_bytes_ = registry->counter("log.append_bytes");
  m_flush_batches_ = registry->counter("log.flush_batches");
  m_flush_bytes_ = registry->counter("log.flush_bytes");
  m_flush_errors_ = registry->counter("log.flush_errors");
  m_group_merges_ = registry->counter("log.group_commit_merges");
  m_flush_seconds_ = registry->timer("log.flush_seconds");
}

Lsn LogManager::Append(LogRecord* record, double now, uint32_t stream) {
  Stream& s = streams_[stream];
  if (streams_.size() > 1 && record->type == LogRecordType::kBeginCheckpoint) {
    // Snapshot the per-stream split at the marker's global offset so a
    // later TruncateBefore(this offset) knows where to cut each stream.
    std::vector<uint64_t> split(streams_.size());
    for (size_t k = 0; k < streams_.size(); ++k) {
      split[k] = streams_[k].appended_bytes;
    }
    checkpoint_cuts_[appended_bytes_] = std::move(split);
    while (checkpoint_cuts_.size() > kCheckpointCutsKept) {
      checkpoint_cuts_.erase(checkpoint_cuts_.begin());
    }
  }
  record->lsn = next_lsn_++;
  size_t before = s.tail.size();
  EncodeLogFrame(*record, &s.tail);
  size_t frame_bytes = s.tail.size() - before;
  appended_bytes_ += frame_bytes;
  tail_bytes_ += frame_bytes;
  s.appended_bytes += frame_bytes;
  ++s.appends;
  s.append_bytes += frame_bytes;
  tail_last_lsn_ = record->lsn;
  // Log creation is data movement into the log buffer: 1 instr/word. This
  // is base logging work, excluded from checkpoint-overhead metrics.
  meter_->Charge(CpuCategory::kLogging,
                 params_.costs.move_per_word *
                     (static_cast<double>(frame_bytes) / kWordBytes));
  if (m_appends_ != nullptr) {
    m_appends_->Increment();
    m_append_bytes_->Increment(frame_bytes);
  }
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventType::kLogAppend, now, 0.0,
                    static_cast<int64_t>(record->lsn),
                    static_cast<int64_t>(record->type),
                    static_cast<int64_t>(frame_bytes));
  }
  return record->lsn;
}

std::vector<uint64_t> LogManager::StreamWrittenSnapshot() const {
  std::vector<uint64_t> snap(streams_.size());
  for (size_t k = 0; k < streams_.size(); ++k) {
    snap[k] = streams_[k].written_bytes;
  }
  return snap;
}

StatusOr<double> LogManager::Flush(double now) {
  if (tail_bytes_ == 0) return now;
  if (AnyDamaged()) MMDB_RETURN_IF_ERROR(Repair());
  // One gang batch over every stream's tail: the modeled flush is sized by
  // the COMBINED byte count (a single ceil, never per-stream sums), which
  // keeps the schedule bit-identical to the single-stream log.
  uint64_t words = (tail_bytes_ + kWordBytes - 1) / kWordBytes;
  uint64_t batch_bytes = tail_bytes_;

  // The bytes go to the Env files immediately; Crash() rolls back anything
  // whose modeled completion hadn't been reached. The gang batch lands
  // atomically from the scheduler's point of view: if any stream's append
  // fails, every stream keeps its tail (no durability promise is made for
  // any of them) and every file is repaired before the retry — bytes an
  // earlier stream did take were never promised and are cut back then.
  for (Stream& s : streams_) {
    if (s.tail.empty()) continue;
    Status st = s.file->Append(s.tail);
    if (!st.ok()) {
      for (Stream& d : streams_) d.damaged = true;
      if (m_flush_errors_ != nullptr) m_flush_errors_->Increment();
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventType::kLogFlushError, now, 0.0,
                        static_cast<int64_t>(tail_last_lsn_));
      }
      return st;
    }
  }
  for (Stream& s : streams_) {
    s.written_bytes += s.tail.size();
    s.tail.clear();
  }
  written_bytes_ += tail_bytes_;
  tail_bytes_ = 0;
  flushed_lsn_ = tail_last_lsn_;
  if (m_flush_bytes_ != nullptr) m_flush_bytes_->Increment(batch_bytes);

  if (!pending_.empty() && pending_.back().start_time > now) {
    // Group commit: the previous batch has not started writing yet; this
    // request coalesces into it rather than issuing another seek. Earlier
    // bytes keep their already-promised completion (they stream to the
    // platter first); the merged bytes become durable when the enlarged
    // batch finishes. Recorded as a new immutable entry so no durability
    // promise ever moves — the write-ahead gates depend on that.
    const PendingFlush& batch = pending_.back();
    uint64_t batch_words = batch.words + words;
    double done = std::max(batch.done_time,
                           batch.start_time + FlushSeconds(batch_words));
    flush_busy_seconds_ += done - batch.done_time;
    pending_.push_back(PendingFlush{tail_last_lsn_, written_bytes_,
                                    batch_words, batch.start_time, done,
                                    batch.epoch, StreamWrittenSnapshot()});
    if (m_group_merges_ != nullptr) m_group_merges_->Increment();
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventType::kLogFlush, now, done,
                      static_cast<int64_t>(flushed_lsn_),
                      static_cast<int64_t>(batch_bytes));
    }
    return done;
  }

  // One I/O initiation per physical flush batch.
  meter_->Charge(CpuCategory::kLogging,
                 static_cast<double>(params_.costs.io));
  // Serial stream: a batch starts no sooner than the cadence allows and
  // never before the previous batch finished.
  double start = std::max(now, last_flush_start_ + min_flush_spacing_);
  if (!pending_.empty()) start = std::max(start, pending_.back().done_time);
  last_flush_start_ = start;
  double done = start + FlushSeconds(words);
  flush_busy_seconds_ += done - start;
  ++flush_count_;
  pending_.push_back(PendingFlush{tail_last_lsn_, written_bytes_, words, start,
                                  done, ++epoch_seq_,
                                  StreamWrittenSnapshot()});
  if (m_flush_batches_ != nullptr) {
    m_flush_batches_->Increment();
    m_flush_seconds_->Record(done - start);
  }
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventType::kLogFlush, now, done,
                    static_cast<int64_t>(flushed_lsn_),
                    static_cast<int64_t>(batch_bytes));
  }
  return done;
}

Lsn LogManager::DurableLsn(double now) const {
  if (stable_log_tail_) return LastLsn();
  Lsn durable = durable_floor_;
  for (const PendingFlush& f : pending_) {
    if (f.done_time <= now) durable = f.last_lsn;
  }
  return durable;
}

double LogManager::WhenDurable(Lsn lsn, double now) const {
  if (lsn == kInvalidLsn) return now;
  if (stable_log_tail_) return now;
  if (lsn <= durable_floor_) return now;
  for (const PendingFlush& f : pending_) {
    if (f.last_lsn >= lsn) return std::max(now, f.done_time);
  }
  // Still in the tail (or not yet appended): not durable until a future
  // Flush covers it.
  return std::numeric_limits<double>::infinity();
}

uint64_t LogManager::DurableEpoch(double now) const {
  if (stable_log_tail_) return epoch_seq_;
  uint64_t durable = epoch_floor_;
  for (const PendingFlush& f : pending_) {
    if (f.done_time <= now) durable = f.epoch;
  }
  return durable;
}

Status LogManager::Crash(double now) {
  std::vector<uint64_t> surviving(streams_.size());
  for (size_t k = 0; k < streams_.size(); ++k) {
    surviving[k] = streams_[k].durable_bytes_floor;
  }
  if (stable_log_tail_) {
    // Stable RAM: both the flushed prefix and the tails survive. Persist
    // the tails so recovery sees them in the files (cutting any garbage a
    // failed append left in between first).
    if (AnyDamaged()) MMDB_RETURN_IF_ERROR(Repair());
    for (size_t k = 0; k < streams_.size(); ++k) {
      Stream& s = streams_[k];
      if (!s.tail.empty()) {
        MMDB_RETURN_IF_ERROR(s.file->Append(s.tail));
        s.written_bytes += s.tail.size();
        written_bytes_ += s.tail.size();
        tail_bytes_ -= s.tail.size();
        s.tail.clear();
      }
      surviving[k] = s.written_bytes;
    }
  } else {
    for (const PendingFlush& f : pending_) {
      if (f.done_time <= now) surviving = f.stream_bytes;
    }
  }
  for (size_t k = 0; k < streams_.size(); ++k) {
    Stream& s = streams_[k];
    if (s.file != nullptr) {
      MMDB_RETURN_IF_ERROR(s.file->Close());
      s.file.reset();
    }
    std::string contents;
    MMDB_RETURN_IF_ERROR(env_->ReadFileToString(s.path, &contents));
    uint64_t physical_keep =
        kLogFileHeaderBytes +
        (surviving[k] > s.base_offset ? surviving[k] - s.base_offset : 0);
    if (contents.size() > physical_keep) {
      contents.resize(physical_keep);
      MMDB_RETURN_IF_ERROR(PersistRewrite(s.path, contents));
    }
  }
  return Status::OK();
}

StatusOr<uint64_t> LogManager::TruncateBefore(uint64_t cut) {
  if (cut < base_offset_) return uint64_t{0};  // already truncated past it
  if (cut > written_bytes_) {
    return InvalidArgumentError(
        "cannot truncate past the end of the flushed log");
  }
  if (cut == base_offset_) return uint64_t{0};

  // Per-stream cut points. Single stream: the global offset IS the stream
  // offset. Multiple streams: only offsets snapshotted at a
  // begin-checkpoint append can be split; any other cut is skipped
  // (truncation is an optimization, not a correctness requirement).
  std::vector<uint64_t> stream_cuts;
  if (streams_.size() == 1) {
    stream_cuts.push_back(cut);
  } else {
    auto it = checkpoint_cuts_.find(cut);
    if (it == checkpoint_cuts_.end()) return uint64_t{0};
    stream_cuts = it->second;
  }

  // A failed append's trailing garbage must not ride along into the
  // rewritten files.
  if (AnyDamaged()) MMDB_RETURN_IF_ERROR(Repair());

  uint64_t total_dropped = 0;
  for (size_t k = 0; k < streams_.size(); ++k) {
    Stream& s = streams_[k];
    if (stream_cuts[k] <= s.base_offset) continue;
    uint64_t dropped = stream_cuts[k] - s.base_offset;
    std::string contents;
    MMDB_RETURN_IF_ERROR(env_->ReadFileToString(s.path, &contents));
    if (contents.size() < kLogFileHeaderBytes + dropped) {
      return CorruptionError("log file shorter than its truncation point");
    }
    std::string rewritten = EncodeLogFileHeader(stream_cuts[k]);
    rewritten.append(contents, kLogFileHeaderBytes + dropped,
                     contents.size() - kLogFileHeaderBytes - dropped);
    MMDB_RETURN_IF_ERROR(s.file->Close());
    s.file.reset();
    Status rewrite = PersistRewrite(s.path, rewritten);
    // On failure the original file is intact (temp + rename); reopen it so
    // the manager stays usable — truncation is only an optimization and
    // the caller may treat the error as non-fatal.
    MMDB_ASSIGN_OR_RETURN(s.file, env_->NewAppendableFile(s.path));
    MMDB_RETURN_IF_ERROR(rewrite);
    s.base_offset = stream_cuts[k];
    total_dropped += dropped;
    base_offset_ += dropped;
  }
  checkpoint_cuts_.erase(checkpoint_cuts_.begin(),
                         checkpoint_cuts_.upper_bound(cut));
  return total_dropped;
}

}  // namespace mmdb
