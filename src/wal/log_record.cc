#include "wal/log_record.h"

#include "util/coding.h"
#include "util/json.h"
#include "util/string_util.h"

namespace mmdb {

LogRecord LogRecord::Update(TxnId txn, RecordId record, std::string image) {
  LogRecord r;
  r.type = LogRecordType::kUpdate;
  r.txn_id = txn;
  r.record_id = record;
  r.image = std::move(image);
  return r;
}

LogRecord LogRecord::Delta(TxnId txn, RecordId record, uint32_t field_offset,
                           int64_t delta) {
  LogRecord r;
  r.type = LogRecordType::kDelta;
  r.txn_id = txn;
  r.record_id = record;
  r.field_offset = field_offset;
  r.delta = delta;
  return r;
}

LogRecord LogRecord::Commit(TxnId txn) {
  LogRecord r;
  r.type = LogRecordType::kCommit;
  r.txn_id = txn;
  return r;
}

LogRecord LogRecord::Abort(TxnId txn) {
  LogRecord r;
  r.type = LogRecordType::kAbort;
  r.txn_id = txn;
  return r;
}

LogRecord LogRecord::BeginCheckpoint(CheckpointId id, Timestamp tau,
                                     std::vector<ActiveTxnEntry> active) {
  LogRecord r;
  r.type = LogRecordType::kBeginCheckpoint;
  r.checkpoint_id = id;
  r.timestamp = tau;
  r.active_txns = std::move(active);
  return r;
}

LogRecord LogRecord::EndCheckpoint(CheckpointId id) {
  LogRecord r;
  r.type = LogRecordType::kEndCheckpoint;
  r.checkpoint_id = id;
  return r;
}

Status LogRecordHeader::DecodeFrom(std::string_view payload,
                                   LogRecordHeader* out) {
  *out = LogRecordHeader();
  if (payload.empty()) return CorruptionError("empty log record payload");
  uint8_t raw_type = static_cast<uint8_t>(payload.front());
  payload.remove_prefix(1);
  if (raw_type < static_cast<uint8_t>(LogRecordType::kUpdate) ||
      raw_type > static_cast<uint8_t>(LogRecordType::kDelta)) {
    return CorruptionError(
        StringPrintf("unknown log record type %u", raw_type));
  }
  out->type = static_cast<LogRecordType>(raw_type);
  if (!GetVarint64(&payload, &out->lsn) ||
      !GetVarint64(&payload, &out->txn_id)) {
    return CorruptionError("truncated log record header");
  }
  if ((out->type == LogRecordType::kUpdate ||
       out->type == LogRecordType::kDelta) &&
      !GetVarint64(&payload, &out->record_id)) {
    return CorruptionError("truncated data record header");
  }
  return Status::OK();
}

void LogRecord::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, lsn);
  PutVarint64(dst, txn_id);
  switch (type) {
    case LogRecordType::kUpdate:
      PutVarint64(dst, record_id);
      PutLengthPrefixed(dst, image);
      break;
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
      break;
    case LogRecordType::kBeginCheckpoint:
      PutVarint64(dst, checkpoint_id);
      PutVarint64(dst, timestamp);
      PutVarint64(dst, active_txns.size());
      for (const ActiveTxnEntry& e : active_txns) {
        PutVarint64(dst, e.txn_id);
        PutVarint64(dst, e.first_lsn);
      }
      break;
    case LogRecordType::kEndCheckpoint:
      PutVarint64(dst, checkpoint_id);
      break;
    case LogRecordType::kDelta:
      PutVarint64(dst, record_id);
      PutVarint32(dst, field_offset);
      PutFixed64(dst, static_cast<uint64_t>(delta));
      break;
  }
}

Status LogRecord::DecodeFrom(std::string_view payload, LogRecord* out) {
  *out = LogRecord();
  if (payload.empty()) return CorruptionError("empty log record payload");
  uint8_t raw_type = static_cast<uint8_t>(payload.front());
  payload.remove_prefix(1);
  if (raw_type < static_cast<uint8_t>(LogRecordType::kUpdate) ||
      raw_type > static_cast<uint8_t>(LogRecordType::kDelta)) {
    return CorruptionError(
        StringPrintf("unknown log record type %u", raw_type));
  }
  out->type = static_cast<LogRecordType>(raw_type);
  if (!GetVarint64(&payload, &out->lsn) ||
      !GetVarint64(&payload, &out->txn_id)) {
    return CorruptionError("truncated log record header");
  }
  switch (out->type) {
    case LogRecordType::kUpdate: {
      std::string_view image;
      if (!GetVarint64(&payload, &out->record_id) ||
          !GetLengthPrefixed(&payload, &image)) {
        return CorruptionError("truncated update record");
      }
      out->image.assign(image.data(), image.size());
      break;
    }
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
      break;
    case LogRecordType::kBeginCheckpoint: {
      uint64_t count;
      if (!GetVarint64(&payload, &out->checkpoint_id) ||
          !GetVarint64(&payload, &out->timestamp) ||
          !GetVarint64(&payload, &count)) {
        return CorruptionError("truncated begin-checkpoint record");
      }
      out->active_txns.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        ActiveTxnEntry e;
        if (!GetVarint64(&payload, &e.txn_id) ||
            !GetVarint64(&payload, &e.first_lsn)) {
          return CorruptionError("truncated active-transaction list");
        }
        out->active_txns.push_back(e);
      }
      break;
    }
    case LogRecordType::kEndCheckpoint:
      if (!GetVarint64(&payload, &out->checkpoint_id)) {
        return CorruptionError("truncated end-checkpoint record");
      }
      break;
    case LogRecordType::kDelta: {
      uint64_t raw_delta;
      if (!GetVarint64(&payload, &out->record_id) ||
          !GetVarint32(&payload, &out->field_offset) ||
          !GetFixed64(&payload, &raw_delta)) {
        return CorruptionError("truncated delta record");
      }
      out->delta = static_cast<int64_t>(raw_delta);
      break;
    }
  }
  if (!payload.empty()) {
    return CorruptionError("trailing bytes after log record payload");
  }
  return Status::OK();
}

size_t LogRecord::EncodedSize() const {
  // Mirrors EncodeTo arithmetically — exact, without materializing the
  // bytes (this runs per Append to pre-reserve the frame).
  size_t size = 1 + VarintLength(lsn) + VarintLength(txn_id);
  switch (type) {
    case LogRecordType::kUpdate:
      size += VarintLength(record_id) + VarintLength(image.size()) +
              image.size();
      break;
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
      break;
    case LogRecordType::kBeginCheckpoint:
      size += VarintLength(checkpoint_id) + VarintLength(timestamp) +
              VarintLength(active_txns.size());
      for (const ActiveTxnEntry& e : active_txns) {
        size += VarintLength(e.txn_id) + VarintLength(e.first_lsn);
      }
      break;
    case LogRecordType::kEndCheckpoint:
      size += VarintLength(checkpoint_id);
      break;
    case LogRecordType::kDelta:
      size += VarintLength(record_id) + VarintLength(field_offset) + 8;
      break;
  }
  return size;
}

std::string LogRecord::DebugString() const {
  switch (type) {
    case LogRecordType::kUpdate:
      return StringPrintf("UPDATE lsn=%llu txn=%llu rec=%llu (%zu bytes)",
                          static_cast<unsigned long long>(lsn),
                          static_cast<unsigned long long>(txn_id),
                          static_cast<unsigned long long>(record_id),
                          image.size());
    case LogRecordType::kCommit:
      return StringPrintf("COMMIT lsn=%llu txn=%llu",
                          static_cast<unsigned long long>(lsn),
                          static_cast<unsigned long long>(txn_id));
    case LogRecordType::kAbort:
      return StringPrintf("ABORT lsn=%llu txn=%llu",
                          static_cast<unsigned long long>(lsn),
                          static_cast<unsigned long long>(txn_id));
    case LogRecordType::kBeginCheckpoint:
      return StringPrintf("BEGIN_CKPT lsn=%llu id=%llu tau=%llu active=%zu",
                          static_cast<unsigned long long>(lsn),
                          static_cast<unsigned long long>(checkpoint_id),
                          static_cast<unsigned long long>(timestamp),
                          active_txns.size());
    case LogRecordType::kEndCheckpoint:
      return StringPrintf("END_CKPT lsn=%llu id=%llu",
                          static_cast<unsigned long long>(lsn),
                          static_cast<unsigned long long>(checkpoint_id));
    case LogRecordType::kDelta:
      return StringPrintf("DELTA lsn=%llu txn=%llu rec=%llu off=%u %+lld",
                          static_cast<unsigned long long>(lsn),
                          static_cast<unsigned long long>(txn_id),
                          static_cast<unsigned long long>(record_id),
                          field_offset, static_cast<long long>(delta));
  }
  return "INVALID";
}

void LogRecord::AppendJsonTo(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("type");
  writer->String(LogRecordTypeName(type));
  writer->Key("lsn");
  writer->Uint(lsn);
  switch (type) {
    case LogRecordType::kUpdate:
      writer->Key("txn");
      writer->Uint(txn_id);
      writer->Key("record");
      writer->Uint(record_id);
      writer->Key("image_bytes");
      writer->Uint(image.size());
      break;
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
      writer->Key("txn");
      writer->Uint(txn_id);
      break;
    case LogRecordType::kBeginCheckpoint:
      writer->Key("checkpoint");
      writer->Uint(checkpoint_id);
      writer->Key("tau");
      writer->Uint(timestamp);
      writer->Key("active_txns");
      writer->BeginArray();
      for (const ActiveTxnEntry& e : active_txns) {
        writer->Uint(e.txn_id);
      }
      writer->EndArray();
      break;
    case LogRecordType::kEndCheckpoint:
      writer->Key("checkpoint");
      writer->Uint(checkpoint_id);
      break;
    case LogRecordType::kDelta:
      writer->Key("txn");
      writer->Uint(txn_id);
      writer->Key("record");
      writer->Uint(record_id);
      writer->Key("field_offset");
      writer->Uint(field_offset);
      writer->Key("delta");
      writer->Int(delta);
      break;
  }
  writer->EndObject();
}

}  // namespace mmdb
