#ifndef MMDB_SIM_COST_MODEL_H_
#define MMDB_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace mmdb {

// Bytes per machine word. The paper's storage parameters are expressed in
// words and assume "four bytes per word" (Section 2.3).
inline constexpr uint32_t kWordBytes = 4;

// Table 2a - Basic Operation Costs (instructions).
struct OperationCosts {
  // Cost of each lock or unlock operation (C_lock).
  uint64_t lock = 20;
  // Cost of dynamically (de)allocating a block of memory (C_alloc).
  uint64_t alloc = 100;
  // Processor cost of initiating a disk I/O (C_io); DMA makes it
  // independent of the transfer size.
  uint64_t io = 1000;
  // Cost of checking or maintaining a log sequence number (C_lsn).
  uint64_t lsn = 20;
  // Data movement: instructions per word moved within primary memory.
  double move_per_word = 1.0;
  // Cost of testing one segment's dirty bit during a partial-checkpoint
  // sweep (not in Table 2a; the paper notes the scan as an overhead of
  // partial checkpoints, we charge one instruction per segment).
  uint64_t dirty_check = 1;
};

// Table 2b - Disk Model Parameters. A disk transfers d words in
// seek_seconds + transfer_seconds_per_word * d; bandwidth scales linearly
// with the number of disks.
struct DiskParams {
  double seek_seconds = 0.03;               // T_seek
  double transfer_seconds_per_word = 3e-6;  // T_trans
  int num_disks = 20;                       // N_bdisks
  // Devices dedicated to the log. The paper notes the backup disks are
  // "used to hold the secondary database copy (and also for logging)" but
  // counts only backup flushes against N_bdisks when sizing checkpoints;
  // we give the log its own small array with the same timing parameters.
  int num_log_disks = 2;

  // Disk parameters for the log array.
  DiskParams LogArray() const {
    DiskParams p = *this;
    p.num_disks = num_log_disks;
    return p;
  }

  // Seconds for one device to transfer `words` in a single request.
  double IoSeconds(uint64_t words) const {
    return seek_seconds + transfer_seconds_per_word * static_cast<double>(words);
  }
  // Seconds for the array to move `n_ios` requests of `words` each,
  // pipelined across all disks (the paper's inverse-proportionality
  // assumption).
  double ArraySeconds(uint64_t n_ios, uint64_t words) const {
    return static_cast<double>(n_ios) * IoSeconds(words) /
           static_cast<double>(num_disks);
  }
};

// Table 2c - Database Model Parameters (in words).
struct DatabaseParams {
  uint64_t db_words = 256ull << 20;  // S_db: 256 Mwords (1 GB)
  uint32_t record_words = 32;        // S_rec
  uint32_t segment_words = 8192;     // S_seg (multiple of S_rec)

  uint64_t num_segments() const { return db_words / segment_words; }
  uint64_t num_records() const { return db_words / record_words; }
  uint32_t records_per_segment() const { return segment_words / record_words; }
  uint64_t record_bytes() const { return uint64_t{record_words} * kWordBytes; }
  uint64_t segment_bytes() const {
    return uint64_t{segment_words} * kWordBytes;
  }
};

// Table 2d - Transaction Model Parameters.
struct TransactionParams {
  double arrival_rate = 1000.0;   // lambda, transactions/second
  uint32_t updates_per_txn = 5;   // N_ru, distinct records updated
  uint64_t instructions = 25000;  // C_trans, cost excluding recovery overhead
};

// Aggregate system parameterization shared by the analytic model and the
// executable engine.
struct SystemParams {
  OperationCosts costs;
  DiskParams disk;
  DatabaseParams db;
  TransactionParams txn;

  // Processor speed used to convert instructions to (virtual) seconds.
  // The paper reports overhead in instructions/transaction and never
  // needs this directly; the engine needs it to interleave CPU work with
  // disk activity on the virtual timeline.
  double cpu_mips = 50.0;

  double InstructionsToSeconds(double instructions) const {
    return instructions / (cpu_mips * 1e6);
  }

  // Per-segment update rate r = lambda * N_ru * S_seg / S_db (uniform
  // record-update probability, Section 2.5): the rate at which updates
  // land in one particular segment.
  double SegmentUpdateRate() const {
    return txn.arrival_rate * txn.updates_per_txn *
           static_cast<double>(db.segment_words) /
           static_cast<double>(db.db_words);
  }

  // Validates internal consistency (segment size a multiple of record
  // size, database a multiple of segment size, positive rates, ...).
  Status Validate() const;

  // Paper defaults at full 256 Mword scale.
  static SystemParams PaperDefaults() { return SystemParams{}; }

  // Scaled-down defaults suitable for unit tests and executable benches:
  // 1 Mword database (128 segments), all cost/disk/txn parameters as in
  // the paper.
  static SystemParams TestDefaults() {
    SystemParams p;
    p.db.db_words = 1ull << 20;
    return p;
  }

  std::string ToString() const;
};

}  // namespace mmdb

#endif  // MMDB_SIM_COST_MODEL_H_
