#include "sim/cpu_meter.h"

#include "util/string_util.h"

namespace mmdb {

std::string_view CpuCategoryName(CpuCategory c) {
  switch (c) {
    case CpuCategory::kTxnLogic:
      return "txn_logic";
    case CpuCategory::kTxnRerun:
      return "txn_rerun";
    case CpuCategory::kSyncLock:
      return "sync_lock";
    case CpuCategory::kSyncLsn:
      return "sync_lsn";
    case CpuCategory::kSyncCopy:
      return "sync_copy";
    case CpuCategory::kSyncQuiesce:
      return "sync_quiesce";
    case CpuCategory::kCkptLock:
      return "ckpt_lock";
    case CpuCategory::kCkptLsn:
      return "ckpt_lsn";
    case CpuCategory::kCkptCopy:
      return "ckpt_copy";
    case CpuCategory::kCkptIo:
      return "ckpt_io";
    case CpuCategory::kCkptScan:
      return "ckpt_scan";
    case CpuCategory::kLogging:
      return "logging";
    case CpuCategory::kRecovery:
      return "recovery";
    case CpuCategory::kNumCategories:
      break;
  }
  return "unknown";
}

double CpuMeter::Total() const {
  double total = 0.0;
  for (double c : counts_) total += c;
  return total;
}

double CpuMeter::SynchronousOverhead() const {
  return Count(CpuCategory::kTxnRerun) + Count(CpuCategory::kSyncLock) +
         Count(CpuCategory::kSyncLsn) + Count(CpuCategory::kSyncCopy) +
         Count(CpuCategory::kSyncQuiesce);
}

double CpuMeter::AsynchronousOverhead() const {
  return Count(CpuCategory::kCkptLock) + Count(CpuCategory::kCkptLsn) +
         Count(CpuCategory::kCkptCopy) + Count(CpuCategory::kCkptIo) +
         Count(CpuCategory::kCkptScan);
}

std::string CpuMeter::ToString() const {
  std::string out;
  for (int i = 0; i < static_cast<int>(CpuCategory::kNumCategories); ++i) {
    if (counts_[i] == 0.0) continue;
    out += StringPrintf("%-13s %.0f\n",
                        std::string(CpuCategoryName(static_cast<CpuCategory>(i)))
                            .c_str(),
                        counts_[i]);
  }
  return out;
}

}  // namespace mmdb
