#include "sim/cost_model.h"

#include "util/string_util.h"

namespace mmdb {

Status SystemParams::Validate() const {
  if (db.record_words == 0 || db.segment_words == 0 || db.db_words == 0) {
    return InvalidArgumentError("database sizes must be positive");
  }
  if (db.segment_words % db.record_words != 0) {
    return InvalidArgumentError(
        "segment size must be a multiple of the record size");
  }
  if (db.db_words % db.segment_words != 0) {
    return InvalidArgumentError(
        "database size must be a multiple of the segment size");
  }
  if (disk.num_disks <= 0) {
    return InvalidArgumentError("need at least one backup disk");
  }
  if (disk.seek_seconds < 0 || disk.transfer_seconds_per_word < 0) {
    return InvalidArgumentError("disk timing parameters must be non-negative");
  }
  if (txn.arrival_rate <= 0) {
    return InvalidArgumentError("transaction arrival rate must be positive");
  }
  if (txn.updates_per_txn == 0) {
    return InvalidArgumentError("transactions must update at least one record");
  }
  if (txn.updates_per_txn > db.num_records()) {
    return InvalidArgumentError(
        "transactions update more distinct records than the database holds");
  }
  if (cpu_mips <= 0) {
    return InvalidArgumentError("cpu_mips must be positive");
  }
  return Status::OK();
}

std::string SystemParams::ToString() const {
  return StringPrintf(
      "SystemParams{db=%lluw seg=%uw rec=%uw | C_lock=%llu C_alloc=%llu "
      "C_io=%llu C_lsn=%llu | T_seek=%.3fs T_trans=%.1fus/w disks=%d | "
      "lambda=%.0f N_ru=%u C_trans=%llu | %.0f MIPS}",
      static_cast<unsigned long long>(db.db_words), db.segment_words,
      db.record_words, static_cast<unsigned long long>(costs.lock),
      static_cast<unsigned long long>(costs.alloc),
      static_cast<unsigned long long>(costs.io),
      static_cast<unsigned long long>(costs.lsn), disk.seek_seconds,
      disk.transfer_seconds_per_word * 1e6, disk.num_disks, txn.arrival_rate,
      txn.updates_per_txn, static_cast<unsigned long long>(txn.instructions),
      cpu_mips);
}

}  // namespace mmdb
