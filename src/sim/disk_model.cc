#include "sim/disk_model.h"

#include <algorithm>
#include <cassert>

namespace mmdb {

DiskArrayModel::DiskArrayModel(const DiskParams& params)
    : params_(params), free_at_(params.num_disks, 0.0) {
  assert(params.num_disks > 0);
}

double DiskArrayModel::Submit(double now, uint64_t words) {
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  double start = std::max(now, *it);
  double done = start + params_.IoSeconds(words);
  busy_seconds_ += done - start;
  ++requests_;
  *it = done;
  return done;
}

double DiskArrayModel::NextAvailable(double now) const {
  double earliest = *std::min_element(free_at_.begin(), free_at_.end());
  return std::max(now, earliest);
}

double DiskArrayModel::AllIdleTime() const {
  return *std::max_element(free_at_.begin(), free_at_.end());
}

bool DiskArrayModel::IdleAt(double now) const {
  return AllIdleTime() <= now;
}

void DiskArrayModel::Reset() {
  std::fill(free_at_.begin(), free_at_.end(), 0.0);
  busy_seconds_ = 0.0;
  requests_ = 0;
}

}  // namespace mmdb
