#ifndef MMDB_SIM_VIRTUAL_CLOCK_H_
#define MMDB_SIM_VIRTUAL_CLOCK_H_

#include <cassert>

namespace mmdb {

// Simulated time in seconds. All engine activity is ordered on this
// timeline; nothing in the library reads wall-clock time, which keeps every
// run deterministic.
class VirtualClock {
 public:
  VirtualClock() : now_(0.0) {}

  double now() const { return now_; }

  // Moves time forward. `t` must not be in the past (events are processed
  // in nondecreasing time order).
  void AdvanceTo(double t) {
    assert(t >= now_);
    now_ = t;
  }

  void AdvanceBy(double dt) {
    assert(dt >= 0.0);
    now_ += dt;
  }

  void Reset() { now_ = 0.0; }

 private:
  double now_;
};

}  // namespace mmdb

#endif  // MMDB_SIM_VIRTUAL_CLOCK_H_
