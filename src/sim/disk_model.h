#ifndef MMDB_SIM_DISK_MODEL_H_
#define MMDB_SIM_DISK_MODEL_H_

#include <cstdint>
#include <vector>

#include "sim/cost_model.h"

namespace mmdb {

// Service-time model of an array of `num_disks` independent devices, each
// transferring d words in T_seek + T_trans * d seconds (Table 2b). Requests
// are assigned to the earliest-available device; per the paper we ignore bus
// contention, so aggregate bandwidth scales linearly with the disk count.
//
// The model answers "when would this I/O complete?" on the virtual
// timeline; the actual bytes move through Env separately.
class DiskArrayModel {
 public:
  explicit DiskArrayModel(const DiskParams& params);

  // Schedules one request of `words` at time `now`; returns its completion
  // time. The chosen device is busy until then.
  double Submit(double now, uint64_t words);

  // Earliest time at which some device can begin a new request at or after
  // `now` (i.e., when the next Submit would start service).
  double NextAvailable(double now) const;

  // Completion time of the latest-finishing request ever submitted.
  double AllIdleTime() const;

  // True if every device is idle at time `now`.
  bool IdleAt(double now) const;

  // Total busy seconds accumulated across all devices.
  double BusySeconds() const { return busy_seconds_; }
  uint64_t RequestCount() const { return requests_; }

  // Drops all in-flight state (used when simulating a crash: pending backup
  // writes are simply abandoned).
  void Reset();

  const DiskParams& params() const { return params_; }

 private:
  DiskParams params_;
  std::vector<double> free_at_;  // per-device next-free time
  double busy_seconds_ = 0.0;
  uint64_t requests_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_SIM_DISK_MODEL_H_
