#ifndef MMDB_SIM_CPU_METER_H_
#define MMDB_SIM_CPU_METER_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace mmdb {

// Where processor instructions were spent. Categories mirror the paper's
// accounting: synchronous overhead is work done on behalf of a particular
// transaction, asynchronous overhead is checkpointer work, and base work
// (transaction logic, logging data movement) is excluded from the reported
// checkpoint overhead exactly as in Section 4.
enum class CpuCategory : int {
  kTxnLogic = 0,      // C_trans per (re)execution attempt - base work
  kTxnRerun,          // C_trans re-spent for checkpoint-induced restarts
  kSyncLock,          // transaction-side locking for checkpoint coordination
  kSyncLsn,           // transaction-side LSN maintenance / color checks
  kSyncCopy,          // transaction-side COU segment copies (incl. alloc)
  kSyncQuiesce,       // work wasted while quiescing for a COU checkpoint
  kCkptLock,          // checkpointer lock/unlock
  kCkptLsn,           // checkpointer LSN checks
  kCkptCopy,          // checkpointer segment copies (incl. alloc)
  kCkptIo,            // checkpointer I/O initiations
  kCkptScan,          // dirty-bit scan for partial checkpoints
  kLogging,           // log data movement + log I/O initiation - base work
  kRecovery,          // REDO replay at restart
  kNumCategories,
};

std::string_view CpuCategoryName(CpuCategory c);

// Accumulates instruction counts by category. One meter per engine; the
// metrics layer snapshots it at checkpoint boundaries to compute
// per-transaction overhead.
class CpuMeter {
 public:
  CpuMeter() { Reset(); }

  void Charge(CpuCategory category, double instructions) {
    counts_[static_cast<int>(category)] += instructions;
  }

  double Count(CpuCategory category) const {
    return counts_[static_cast<int>(category)];
  }

  // Total instructions across every category.
  double Total() const;

  // Synchronous checkpoint-related overhead: work charged to transactions
  // because of the checkpointing algorithm (locks, LSNs, COU copies,
  // quiesce stalls, reruns).
  double SynchronousOverhead() const;

  // Asynchronous overhead: work done by the checkpointer itself.
  double AsynchronousOverhead() const;

  void Reset() { counts_.fill(0.0); }

  // Per-category breakdown, one line per nonzero category.
  std::string ToString() const;

 private:
  std::array<double, static_cast<int>(CpuCategory::kNumCategories)> counts_;
};

}  // namespace mmdb

#endif  // MMDB_SIM_CPU_METER_H_
