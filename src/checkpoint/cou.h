#ifndef MMDB_CHECKPOINT_COU_H_
#define MMDB_CHECKPOINT_COU_H_

#include "checkpoint/checkpointer.h"

namespace mmdb {

// The copy-on-update algorithms of Section 3.2.2 (after DeWitt et al.,
// strengthened to transaction consistency by quiescing). A checkpoint
// begins by quiescing transaction processing, logging the begin marker,
// flushing the log tail, and taking a timestamp tau(CH); the
// transaction-consistent state at that instant is the snapshot the
// checkpointer writes out. Transactions that later update a segment the
// sweep has not reached yet (and whose content still predates the
// checkpoint, tau(S) <= tau(CH)) first preserve the old image in a buffer
// (Figure 3.2) — that synchronous copy is COU's price; in exchange, once
// started, a COU checkpoint never aborts anybody.
//
// Variants, applying to segments that were NOT updated since the
// checkpoint began (updated ones always flush their preserved old copy):
//   COUFLUSH (copy_before_flush=false): flush the segment from database
//     memory, holding its lock through the disk I/O.
//   COUCOPY (copy_before_flush=true): lock, stage into a buffer, unlock,
//     flush the buffer.
//
// No LSN maintenance is needed: every update in the snapshot happened
// before the checkpoint began, so its log records were made durable by the
// begin-marker flush (the paper's observation at the end of Section 3.2.2).
//
// Ping-pong note: Figure 3.3 uses "tau(S) > tau(OLDCH)" as its dirty test;
// with two alternating backup copies that window is too narrow (the copy
// being written was last updated two checkpoints ago), so partial mode uses
// the engine's per-copy dirty bits instead. The tau comparisons still
// decide snapshot preservation exactly as in the paper.
class CouCheckpointer : public Checkpointer {
 public:
  CouCheckpointer(const Context& ctx, CheckpointMode mode,
                  bool copy_before_flush)
      : Checkpointer(ctx, mode), copy_before_flush_(copy_before_flush) {}

  Algorithm algorithm() const override {
    return copy_before_flush_ ? Algorithm::kCouCopy : Algorithm::kCouFlush;
  }

  // Figure 3.2: preserve the pre-update image of a not-yet-dumped,
  // pre-checkpoint segment before a transaction overwrites it.
  void BeforeSegmentUpdate(SegmentId s, RecordId record, Timestamp txn_ts,
                           double now) override;

  // The snapshot needs no log coupling, so transactions maintain
  // timestamps instead of LSNs.
  bool NeedsLsnMaintenance() const override { return false; }
  bool NeedsTimestampMaintenance() const override { return true; }

  void Reset() override;

  // tau(CH) of the in-progress (or last) checkpoint; for tests.
  Timestamp tau_ch() const { return tau_ch_; }

  bool QuiescesTransactions() const override { return true; }

 protected:
  Status OnBegin(double now) override;
  Status ProcessSegment(SegmentId s, double now) override;
  Status OnComplete(double now) override;

 private:
  // Drops every remaining old-copy buffer and pointer.
  void ReleaseOldCopies();

  bool copy_before_flush_;
  Timestamp tau_prev_ = 0;  // tau(OLDCH): timestamp of the last checkpoint
};

}  // namespace mmdb

#endif  // MMDB_CHECKPOINT_COU_H_
