#ifndef MMDB_CHECKPOINT_MODERN_H_
#define MMDB_CHECKPOINT_MODERN_H_

#include <string>
#include <unordered_map>

#include "checkpoint/checkpointer.h"

namespace mmdb {

// The modern consistent-snapshot algorithms (DESIGN.md section 15), from
// the post-1989 literature the paper seeded: Zigzag and Ping-Pong from Cao
// et al.'s frequent-checkpointing work, and an Hourglass/CALC-style
// virtual-point-of-consistency scheme after Ren et al. All three share the
// COU pair's headline property — the backup is an exact, transaction-
// consistent snapshot of the database at the begin-checkpoint marker — but
// none of them quiesces transaction processing or aborts anybody, and none
// needs per-update LSN or timestamp maintenance: the snapshot membership
// test is the begin marker's LSN against the segment's update LSN, both of
// which the engine maintains anyway.
//
// Simulation note: the real algorithms afford their zero-stall begin by
// keeping duplicated state permanently (a second tuple copy for Zigzag, two
// full shadow copies for Ping-Pong, a live/stable version pair per record
// for Hourglass). The engine has one primary Database, so the duplicate is
// *emulated* with the same old-image preservation machinery the COU
// algorithms use — but each algorithm charges its own published cost model
// (bit maintenance for Zigzag, the double write for Ping-Pong, first-touch
// record copies for Hourglass), not COU's synchronous segment copy. The
// preserved bytes exist only so the emulated backup holds exactly what the
// real algorithm's duplicate copy would hold.
//
// Like COU, segment-granularity preservation degrades to a fuzzy segment
// when the snapshot buffer pool is exhausted — recovery stays correct
// under physical (full-image) REDO, and the event is visible in the
// stats. The same logical-logging caveat as COU applies.

// Shared machinery for the segment-granularity pair (Zigzag, Ping-Pong):
// on the first post-marker update of a not-yet-swept segment, preserve the
// pre-update image so the sweep can still write snapshot content. The
// membership test is purely LSN-based — update_lsn(s) < begin marker LSN
// means the content predates the snapshot — so it stays exact even for
// transactions that were active across Begin (updates install atomically
// at commit in this engine).
class ShadowSnapshotCheckpointer : public Checkpointer {
 public:
  void BeforeSegmentUpdate(SegmentId s, RecordId record, Timestamp txn_ts,
                           double now) override;

  // No log coupling beyond the begin-marker flush, and no tau either: the
  // snapshot test rides on update LSNs the engine maintains for free.
  bool NeedsLsnMaintenance() const override { return false; }
  bool NeedsTimestampMaintenance() const override { return false; }

  void Reset() override;

 protected:
  ShadowSnapshotCheckpointer(const Context& ctx, CheckpointMode mode)
      : Checkpointer(ctx, mode) {}

  // The algorithm's constant bookkeeping on every installing update while
  // a sweep is in progress or not (bit flips, double writes).
  virtual void ChargeUpdateBookkeeping() = 0;

  // Flushes `data` as segment `s`'s snapshot image; `preserved` says the
  // bytes came from the emulated shadow (a post-marker update hit the
  // segment) rather than database memory.
  virtual Status FlushSnapshot(SegmentId s, std::string_view data,
                               double now, bool preserved) = 0;

  Status ProcessSegment(SegmentId s, double now) override;
  Status OnComplete(double now) override;

 private:
  void ReleaseOldCopies();
};

// ZIGZAG: two bit arrays per record, MW (which copy updates write) and MR
// (which copy the checkpointer reads). Begin copies MW into MR in one
// bulk bit move — that instant is the virtual point of consistency — and
// every update flips the record's MW bit away from the copy the sweep is
// reading, so writers never stall and the checkpointer never locks.
// Per-update price: two bit operations. Sweep price: the checkpointer
// gathers each segment record-by-record through the MR bits into an I/O
// staging buffer (the two copies interleave in memory), then flushes.
class ZigzagCheckpointer : public ShadowSnapshotCheckpointer {
 public:
  ZigzagCheckpointer(const Context& ctx, CheckpointMode mode)
      : ShadowSnapshotCheckpointer(ctx, mode) {}

  Algorithm algorithm() const override { return Algorithm::kZigzag; }

 protected:
  Status OnBegin(double now) override;
  void ChargeUpdateBookkeeping() override;
  Status FlushSnapshot(SegmentId s, std::string_view data, double now,
                       bool preserved) override;
};

// PINGPONG: besides the primary, two full shadow copies alternate roles
// each checkpoint period; updates are applied to the primary AND the
// currently-active shadow, and Begin just flips which shadow is active —
// an O(1) wait-free pointer swap. The sweep flushes the now-quiescent
// shadow directly: no gather, no copy, no locks; the only recurring price
// is the synchronous double write on every update.
class PingPongCheckpointer : public ShadowSnapshotCheckpointer {
 public:
  PingPongCheckpointer(const Context& ctx, CheckpointMode mode)
      : ShadowSnapshotCheckpointer(ctx, mode) {}

  Algorithm algorithm() const override { return Algorithm::kPingPong; }

 protected:
  void ChargeUpdateBookkeeping() override;
  Status FlushSnapshot(SegmentId s, std::string_view data, double now,
                       bool preserved) override;
};

// HOURGLASS: a CALC-style low-interference snapshot at record granularity.
// Begin is a short atomic phase (a latch pair) establishing the virtual
// point of consistency; afterwards the first post-marker update of each
// record in a not-yet-swept segment copies that record's old image aside
// (the live/stable version split), and the sweep writes each segment's
// current content patched with those preserved records. Preservation is
// per-record, so the synchronous cost scales with the update footprint,
// not with segment size — the cheapest synchronous path of the snapshot-
// consistent algorithms, paid for with per-record checkpointer work.
//
// The record overlays live in checkpointer-owned memory (they are
// record-sized, far below the segment-sized BufferPool granularity), so
// Hourglass never degrades to fuzzy content.
class HourglassCheckpointer : public Checkpointer {
 public:
  HourglassCheckpointer(const Context& ctx, CheckpointMode mode)
      : Checkpointer(ctx, mode) {}

  Algorithm algorithm() const override { return Algorithm::kHourglass; }

  void BeforeSegmentUpdate(SegmentId s, RecordId record, Timestamp txn_ts,
                           double now) override;
  bool NeedsLsnMaintenance() const override { return false; }
  bool NeedsTimestampMaintenance() const override { return false; }

  void Reset() override;

  // Records currently preserved across all segments; for tests.
  size_t preserved_records() const;

 protected:
  Status OnBegin(double now) override;
  Status ProcessSegment(SegmentId s, double now) override;
  Status OnComplete(double now) override;

 private:
  // Pre-update images of records updated after the begin marker while
  // their segment was still unswept, keyed segment -> record -> image.
  // Erased as the sweep consumes them.
  std::unordered_map<SegmentId, std::unordered_map<RecordId, std::string>>
      overlay_;
};

}  // namespace mmdb

#endif  // MMDB_CHECKPOINT_MODERN_H_
