#include "checkpoint/checkpointer.h"

#include <algorithm>
#include <cassert>
#include <cctype>

#include "checkpoint/cou.h"
#include "checkpoint/fuzzy.h"
#include "checkpoint/modern.h"
#include "checkpoint/two_color.h"
#include "util/string_util.h"

namespace mmdb {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<Algorithm> AlgorithmFromName(std::string_view name) {
  for (Algorithm a : kAllAlgorithms) {
    if (EqualsIgnoreCase(AlgorithmName(a), name)) return a;
  }
  std::string valid;
  for (Algorithm a : kAllAlgorithms) {
    if (!valid.empty()) valid += ", ";
    valid += AlgorithmName(a);
  }
  return InvalidArgumentError(StringPrintf(
      "unknown algorithm '%.*s'; valid names (case-insensitive): %s",
      static_cast<int>(name.size()), name.data(), valid.c_str()));
}

bool SupportsLogicalLogging(Algorithm a) {
  switch (a) {
    case Algorithm::kCouFlush:
    case Algorithm::kCouCopy:
    case Algorithm::kZigzag:
    case Algorithm::kPingPong:
    case Algorithm::kHourglass:
      return true;
    case Algorithm::kFuzzyCopy:
    case Algorithm::kFastFuzzy:
    case Algorithm::kTwoColorFlush:
    case Algorithm::kTwoColorCopy:
      return false;
  }
  assert(false && "Algorithm value out of range");
  std::abort();
}

StatusOr<std::unique_ptr<Checkpointer>> Checkpointer::Create(
    Algorithm algorithm, const Context& ctx, CheckpointMode mode) {
  if (ctx.db == nullptr || ctx.segments == nullptr || ctx.buffers == nullptr ||
      ctx.log == nullptr || ctx.backup == nullptr || ctx.txns == nullptr ||
      ctx.timestamps == nullptr || ctx.meter == nullptr) {
    return InvalidArgumentError("checkpointer context has null subsystems");
  }
  switch (algorithm) {
    case Algorithm::kFuzzyCopy:
      return {std::unique_ptr<Checkpointer>(
          new FuzzyCopyCheckpointer(ctx, mode))};
    case Algorithm::kFastFuzzy:
      if (!ctx.log->stable_log_tail()) {
        return FailedPreconditionError(
            "FASTFUZZY requires a stable log tail; without one, flushing "
            "segments in place violates the write-ahead protocol");
      }
      return {std::unique_ptr<Checkpointer>(
          new FastFuzzyCheckpointer(ctx, mode))};
    case Algorithm::kTwoColorFlush:
      return {std::unique_ptr<Checkpointer>(
          new TwoColorCheckpointer(ctx, mode, /*copy_before_flush=*/false))};
    case Algorithm::kTwoColorCopy:
      return {std::unique_ptr<Checkpointer>(
          new TwoColorCheckpointer(ctx, mode, /*copy_before_flush=*/true))};
    case Algorithm::kCouFlush:
      return {std::unique_ptr<Checkpointer>(
          new CouCheckpointer(ctx, mode, /*copy_before_flush=*/false))};
    case Algorithm::kCouCopy:
      return {std::unique_ptr<Checkpointer>(
          new CouCheckpointer(ctx, mode, /*copy_before_flush=*/true))};
    case Algorithm::kZigzag:
      return {std::unique_ptr<Checkpointer>(new ZigzagCheckpointer(ctx, mode))};
    case Algorithm::kPingPong:
      return {std::unique_ptr<Checkpointer>(
          new PingPongCheckpointer(ctx, mode))};
    case Algorithm::kHourglass:
      return {std::unique_ptr<Checkpointer>(
          new HourglassCheckpointer(ctx, mode))};
  }
  return InvalidArgumentError("unknown algorithm");
}

Checkpointer::Checkpointer(const Context& ctx, CheckpointMode mode)
    : ctx_(ctx),
      mode_(mode),
      shard_layout_(ctx.shards,
                    static_cast<uint32_t>(ctx.params.db.num_segments())),
      shard_segments_flushed_(shard_layout_.shards, 0) {
  if (ctx_.metrics != nullptr) {
    MetricsRegistry* r = ctx_.metrics;
    m_completed_ = r->counter("ckpt.completed");
    m_aborted_ = r->counter("ckpt.aborted");
    m_segments_flushed_ = r->counter("ckpt.segments_flushed");
    m_segments_skipped_ = r->counter("ckpt.segments_skipped");
    m_history_dropped_ = r->counter("ckpt.history_dropped");
    m_duration_seconds_ = r->timer("ckpt.duration_seconds");
    m_lock_held_seconds_ = r->timer("ckpt.lock_held_seconds");
    m_flush_io_seconds_ = r->timer("ckpt.flush_io_seconds");
    m_log_wait_seconds_ = r->timer("ckpt.log_wait_seconds");
    m_copy_seconds_ = r->timer("ckpt.copy_seconds");
    m_quiesce_seconds_ = r->timer("ckpt.quiesce_seconds");
    r->gauge("ckpt.history_cap")
        ->Set(static_cast<double>(ctx_.history_cap));
  }
}

Status Checkpointer::Begin(CheckpointId id, double now) {
  if (InProgress()) {
    return FailedPreconditionError("a checkpoint is already in progress");
  }
  if (now < 0.0) {
    // The virtual clock starts at zero; a negative time here is a caller
    // bug. Rejecting it keeps every downstream timestamp (stats_,
    // Abort()'s trace fallback) non-negative by construction.
    return InvalidArgumentError("checkpoint cannot begin at a negative time");
  }
  id_ = id;
  stats_ = CheckpointStats{};
  stats_.id = id;
  stats_.begin_time = now;
  copy_instr_at_begin_ = ctx_.meter->Count(CpuCategory::kCkptCopy) +
                         ctx_.meter->Count(CpuCategory::kSyncCopy);
  if (ctx_.tracer != nullptr) {
    ctx_.tracer->Record(TraceEventType::kCheckpointBegin, now, 0.0,
                        static_cast<int64_t>(id),
                        static_cast<int64_t>(algorithm()),
                        static_cast<int64_t>(mode_));
  }
  cur_seg_ = 0;
  next_due_ = now;
  last_write_done_ = now;
  locked_until_.clear();
  cleared_dirty_.clear();

  // Let the algorithm quiesce / assign tau(CH) before the marker is cut.
  MMDB_RETURN_IF_ERROR(OnBegin(now));

  begin_marker_offset_ = ctx_.log->NextOffset();
  LogRecord marker = LogRecord::BeginCheckpoint(
      id_, tau_ch_, ctx_.txns->ActiveTxnList());
  begin_marker_lsn_ = ctx_.log->Append(&marker, now);

  // The marker (and everything before it) must be durable before the first
  // segment image can land in the backup; gating the whole sweep on the
  // flush keeps every algorithm safe and matches Figure 3.3's "log
  // begin-checkpoint record and flush log tail". A flush failure leaves
  // the state idle; the stray begin marker in the retained tail is
  // harmless (recovery only trusts begin/end pairs).
  MMDB_ASSIGN_OR_RETURN(sweep_start_, ctx_.log->Flush(now));
  if (QuiescesTransactions()) {
    stats_.quiesce_seconds = sweep_start_ - now;
  }
  state_ = State::kSweeping;
  if (ctx_.audit != nullptr) {
    ctx_.audit->Record("ckpt.begin", now, [this](JsonWriter& w) {
      w.Key("ckpt");
      w.Uint(id_);
      w.Key("algorithm");
      w.String(name());
      w.Key("mode");
      w.String(mode_ == CheckpointMode::kFull ? "full" : "partial");
      w.Key("copy");
      w.Uint(copy());
      w.Key("begin_lsn");
      w.Uint(begin_marker_lsn_);
      w.Key("begin_offset");
      w.Uint(begin_marker_offset_);
    });
  }
  return Status::OK();
}

bool Checkpointer::NeedsFlush(SegmentId s) {
  if (mode_ == CheckpointMode::kPartial) {
    ctx_.meter->Charge(CpuCategory::kCkptScan,
                       static_cast<double>(ctx_.params.costs.dirty_check));
    if (!ctx_.segments->dirty(s, copy())) return false;
  }
  return true;
}

StatusOr<double> Checkpointer::SubmitWrite(SegmentId s, std::string_view data,
                                           double now, double earliest,
                                           bool lock_through_io) {
  double issue = std::max(now, earliest);
  stats_.log_wait_seconds += issue - now;
  ctx_.meter->Charge(CpuCategory::kCkptIo,
                     static_cast<double>(ctx_.params.costs.io));
  MMDB_ASSIGN_OR_RETURN(double done,
                        ctx_.backup->WriteSegment(copy(), s, data, issue));
  stats_.flush_io_seconds += done - issue;
  last_write_done_ = std::max(last_write_done_, done);
  ctx_.segments->ClearDirty(s, copy());
  cleared_dirty_.push_back(s);
  ++stats_.segments_flushed;
  ++shard_segments_flushed_[shard_layout_.ShardOfSegment(
      static_cast<uint32_t>(s))];
  if (lock_through_io) {
    stats_.lock_held_seconds += done - now;
    locked_until_[s] = done;
    ctx_.segments->set_ckpt_locked(s, true);
  }
  if (ctx_.tracer != nullptr) {
    ctx_.tracer->Record(TraceEventType::kCheckpointSegmentWrite, now, done,
                        static_cast<int64_t>(s),
                        static_cast<int64_t>(copy()),
                        static_cast<int64_t>(data.size()));
  }
  if (ctx_.audit != nullptr) {
    // The segment's update LSN at flush time tells recovery auditing what
    // log position this backup image reflects (at most).
    const Lsn lsn = ctx_.segments->update_lsn(s);
    const uint64_t bytes = data.size();
    ctx_.audit->Record("ckpt.flush", now, [&](JsonWriter& w) {
      w.Key("ckpt");
      w.Uint(id_);
      w.Key("segment");
      w.Uint(s);
      w.Key("copy");
      w.Uint(copy());
      w.Key("lsn");
      w.Uint(lsn);
      w.Key("bytes");
      w.Uint(bytes);
    });
  }
  return done;
}

StatusOr<double> Checkpointer::WhenLogDurable(Lsn lsn, double now) {
  double t = ctx_.log->WhenDurable(lsn, now);
  if (t == kNever) {
    // The record is still in the volatile tail: wait for the next group
    // flush. Modeled by flushing now — equivalent timing to the engine's
    // group commit running immediately.
    MMDB_RETURN_IF_ERROR(ctx_.log->Flush(now).status());
    t = ctx_.log->WhenDurable(lsn, now);
  }
  return t;
}

void Checkpointer::ChargeCkptLocks(int ops) {
  ctx_.meter->Charge(CpuCategory::kCkptLock,
                     static_cast<double>(ctx_.params.costs.lock) * ops);
}

StatusOr<double> Checkpointer::Step(double now) {
  switch (state_) {
    case State::kIdle:
      return kNever;

    case State::kSweeping: {
      if (now < sweep_start_) return sweep_start_;
      // The sweep is paced by the backup devices: callers may poll Step
      // early (every engine event does), but no work is due yet.
      if (now < next_due_) return next_due_;
      // Release checkpoint locks whose I/O has completed.
      for (auto it = locked_until_.begin(); it != locked_until_.end();) {
        if (it->second <= now) {
          ctx_.segments->set_ckpt_locked(it->first, false);
          it = locked_until_.erase(it);
        } else {
          ++it;
        }
      }
      const uint64_t n = ctx_.segments->num_segments();
      while (cur_seg_ < n) {
        SegmentId s = cur_seg_;
        if (!NeedsFlush(s)) {
          OnSkipSegment(s);
          ++stats_.segments_skipped;
          ++cur_seg_;
          continue;
        }
        MMDB_RETURN_IF_ERROR(ProcessSegment(s, now));
        ++cur_seg_;
        // One write issued; come back when a device can take the next one.
        next_due_ = std::max(now, ctx_.backup->disks()->NextAvailable(now));
        return next_due_;
      }
      state_ = State::kDraining;
      return std::max(now, last_write_done_);
    }

    case State::kDraining: {
      if (now < last_write_done_) return last_write_done_;
      for (auto& [seg, until] : locked_until_) {
        ctx_.segments->set_ckpt_locked(seg, false);
      }
      locked_until_.clear();
      LogRecord end = LogRecord::EndCheckpoint(id_);
      ctx_.log->Append(&end, now);
      MMDB_ASSIGN_OR_RETURN(end_marker_durable_, ctx_.log->Flush(now));
      state_ = State::kFinalizing;
      return end_marker_durable_;
    }

    case State::kFinalizing: {
      if (now < end_marker_durable_) return end_marker_durable_;
      // Past this point the checkpoint IS complete: every segment write
      // has drained and the end marker is durable, so recovery can already
      // restore this copy (the log's backward scan outranks the metadata
      // file). A failure below — the metadata rewrite — therefore finishes
      // the checkpoint and surfaces the error instead of aborting it;
      // aborting would log a second begin marker with this id after its
      // end marker, and the stale pair could certify the half-rewritten
      // copy the retry leaves behind at a crash.
      stats_.end_time = now;
      stats_.copy_seconds = ctx_.params.InstructionsToSeconds(
          ctx_.meter->Count(CpuCategory::kCkptCopy) +
          ctx_.meter->Count(CpuCategory::kSyncCopy) - copy_instr_at_begin_);
      last_stats_ = stats_;
      history_.push_back(stats_);
      while (ctx_.history_cap > 0 && history_.size() > ctx_.history_cap) {
        history_.pop_front();
        ++history_dropped_;
        if (m_history_dropped_ != nullptr) m_history_dropped_->Increment();
      }
      if (m_completed_ != nullptr) {
        m_completed_->Increment();
        m_segments_flushed_->Increment(stats_.segments_flushed);
        m_segments_skipped_->Increment(stats_.segments_skipped);
        m_duration_seconds_->Record(stats_.duration());
        m_lock_held_seconds_->Record(stats_.lock_held_seconds);
        m_flush_io_seconds_->Record(stats_.flush_io_seconds);
        m_log_wait_seconds_->Record(stats_.log_wait_seconds);
        m_copy_seconds_->Record(stats_.copy_seconds);
        m_quiesce_seconds_->Record(stats_.quiesce_seconds);
      }
      if (ctx_.tracer != nullptr) {
        ctx_.tracer->Record(TraceEventType::kCheckpointEnd, now, 0.0,
                            static_cast<int64_t>(id_),
                            static_cast<int64_t>(stats_.segments_flushed),
                            static_cast<int64_t>(stats_.segments_skipped));
      }
      if (ctx_.audit != nullptr) {
        ctx_.audit->Record("ckpt.end", now, [this](JsonWriter& w) {
          w.Key("ckpt");
          w.Uint(id_);
          w.Key("copy");
          w.Uint(copy());
          w.Key("flushed");
          w.Uint(stats_.segments_flushed);
          w.Key("skipped");
          w.Uint(stats_.segments_skipped);
        });
        ctx_.audit->Sync();
      }
      state_ = State::kIdle;
      MMDB_RETURN_IF_ERROR(OnComplete(now));
      CheckpointMeta meta;
      meta.checkpoint_id = id_;
      meta.copy = copy();
      meta.log_offset = begin_marker_offset_;
      meta.begin_lsn = begin_marker_lsn_;
      meta.tau = tau_ch_;
      MMDB_RETURN_IF_ERROR(ctx_.backup->CommitCheckpoint(meta));
      return kNever;
    }
  }
  return InternalError("unreachable checkpoint state");
}

StatusOr<double> Checkpointer::RunToCompletion(CheckpointId id, double now) {
  MMDB_RETURN_IF_ERROR(Begin(id, now));
  double t = now;
  while (InProgress()) {
    MMDB_ASSIGN_OR_RETURN(double next, Step(t));
    if (next == kNever) break;
    t = std::max(t, next);
  }
  return t;
}

Status Checkpointer::OnBegin(double) { return Status::OK(); }
Status Checkpointer::OnComplete(double) { return Status::OK(); }

void Checkpointer::Reset() {
  for (auto& [seg, until] : locked_until_) {
    ctx_.segments->set_ckpt_locked(seg, false);
  }
  locked_until_.clear();
  cleared_dirty_.clear();
  state_ = State::kIdle;
}

void Checkpointer::Abort(double now, std::string_view cause) {
  if (!InProgress()) return;
  // Re-dirty everything this attempt flushed: the copy now holds a mix of
  // this attempt's and stale images, and the retry (same id, same copy)
  // must rewrite all of it even in partial mode.
  for (SegmentId s : cleared_dirty_) {
    ctx_.segments->MarkDirtyCopy(s, copy());
  }
  ++aborted_count_;
  if (m_aborted_ != nullptr) m_aborted_->Increment();
  // Any negative `now` is the "no clock" sentinel; fall back to the
  // begin time, which Begin() guarantees non-negative. The outer clamp
  // keeps the invariant even if stats_ was never populated, so the
  // trace export can never emit a negative timestamp.
  const double when = std::max(0.0, now >= 0.0 ? now : stats_.begin_time);
  if (ctx_.tracer != nullptr) {
    ctx_.tracer->Record(TraceEventType::kCheckpointAbort, when, 0.0,
                        static_cast<int64_t>(id_),
                        static_cast<int64_t>(stats_.segments_flushed),
                        static_cast<int64_t>(stats_.segments_skipped));
  }
  if (ctx_.audit != nullptr) {
    ctx_.audit->Record("ckpt.abort", when, [&](JsonWriter& w) {
      w.Key("ckpt");
      w.Uint(id_);
      w.Key("cause");
      w.String(cause.empty() ? std::string_view("unspecified") : cause);
      w.Key("flushed");
      w.Uint(stats_.segments_flushed);
    });
    ctx_.audit->Sync();
  }
  Reset();
}

double Checkpointer::EarliestExecutionTime(
    const std::vector<SegmentId>& segments, double now) const {
  double t = now;
  if (InProgress() && QuiescesTransactions() && now < sweep_start_) {
    // COU admission barrier: new transactions wait until the checkpoint's
    // begin protocol (quiesce + marker flush) completes.
    t = std::max(t, sweep_start_);
  }
  for (SegmentId s : segments) {
    auto it = locked_until_.find(s);
    if (it != locked_until_.end()) t = std::max(t, it->second);
  }
  return t;
}

Checkpointer::StallCause Checkpointer::ClassifyStall(
    const std::vector<SegmentId>& segments, double now) const {
  // Mirrors EarliestExecutionTime's two delay sources; the one that
  // releases last is the cause the caller is actually waiting on.
  double quiesce_t = now;
  if (InProgress() && QuiescesTransactions() && now < sweep_start_) {
    quiesce_t = sweep_start_;
  }
  double lock_t = now;
  for (SegmentId s : segments) {
    auto it = locked_until_.find(s);
    if (it != locked_until_.end()) lock_t = std::max(lock_t, it->second);
  }
  if (quiesce_t <= now && lock_t <= now) return StallCause::kNone;
  return quiesce_t >= lock_t ? StallCause::kQuiesce
                             : StallCause::kCheckpointLock;
}

bool Checkpointer::AdmitAccess(const std::vector<SegmentId>&, double) {
  return true;
}

void Checkpointer::BeforeSegmentUpdate(SegmentId, RecordId, Timestamp,
                                       double) {}

bool Checkpointer::NeedsLsnMaintenance() const {
  return !ctx_.log->stable_log_tail();
}

}  // namespace mmdb
