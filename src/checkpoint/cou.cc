#include "checkpoint/cou.h"

#include <algorithm>
#include <cassert>

namespace mmdb {

Status CouCheckpointer::OnBegin(double) {
  // Figure 3.3 preamble. The quiesce itself is modeled as the admission
  // barrier in EarliestExecutionTime (transactions execute atomically on
  // the virtual timeline, so there are never half-finished transactions to
  // drain — new arrivals simply wait for sweep_start_).
  tau_prev_ = tau_ch_;
  tau_ch_ = ctx_.timestamps->Next();
  return Status::OK();
}

void CouCheckpointer::BeforeSegmentUpdate(SegmentId s, RecordId record,
                                          Timestamp txn_ts, double now) {
  (void)record;
  (void)txn_ts;
  (void)now;
  // Figure 3.2's lock S / unlock S pair around the test, paid on every
  // update while the COU scheme is in force.
  ctx_.meter->Charge(CpuCategory::kSyncLock,
                     2.0 * static_cast<double>(ctx_.params.costs.lock));
  if (state_ != State::kSweeping) return;
  // (S > CUR_SEG): segments the sweep already handled need no
  // preservation. cur_seg_ is the next segment to visit; the one currently
  // in flight (cur_seg_ - 1) is protected by its checkpoint lock
  // (COUFLUSH) or already staged (COUCOPY).
  if (s < cur_seg_) return;
  // (tau(S) <= tau(CH)): the content still predates the checkpoint.
  if (ctx_.segments->timestamp(s) > tau_ch_) return;
  assert(!ctx_.segments->has_old_copy(s));

  StatusOr<uint32_t> handle = ctx_.buffers->Allocate();
  if (!handle.ok()) {
    // Snapshot buffer exhausted. Degrade by pretending the segment was
    // already dumped: the sweep will flush its *current* content, which
    // sacrifices transaction consistency for this checkpoint rather than
    // stalling commits. Recovery stays correct (REDO replay repairs it,
    // as with a fuzzy checkpoint); the event is visible in the stats.
    return;
  }
  ctx_.meter->Charge(CpuCategory::kSyncCopy,
                     static_cast<double>(ctx_.params.costs.alloc) +
                         ctx_.params.costs.move_per_word *
                             ctx_.params.db.segment_words);
  ctx_.buffers->Write(*handle, ctx_.db->ReadSegment(s));
  ctx_.segments->set_old_copy(s, *handle);
  ++stats_.cou_copies;
}

Status CouCheckpointer::ProcessSegment(SegmentId s, double now) {
  if (ctx_.segments->timestamp(s) > tau_ch_) {
    // Updated since the checkpoint began: flush the preserved old image.
    ChargeCkptLocks(2);  // lock to follow p(S), unlock
    if (!ctx_.segments->has_old_copy(s)) {
      // Preservation was skipped (buffer exhaustion); fall back to the
      // current content — fuzzy for this segment, see BeforeSegmentUpdate.
      return SubmitWrite(s, ctx_.db->ReadSegment(s), now, sweep_start_,
                         /*lock_through_io=*/false)
          .status();
    }
    uint32_t handle = ctx_.segments->old_copy(s);
    Status st = SubmitWrite(s, ctx_.buffers->Read(handle), now, sweep_start_,
                            /*lock_through_io=*/false)
                    .status();
    // What just went to the backup is the PRE-update image: the update that
    // forced the preservation is covered by log replay only while THIS
    // checkpoint is the newest. Re-dirty the segment for this copy so the
    // next checkpoint that writes it flushes the post-update content —
    // otherwise a cold segment would keep the stale image forever.
    ctx_.segments->MarkDirtyCopy(s, copy());
    // Deallocation of the snapshot buffer.
    ctx_.meter->Charge(CpuCategory::kCkptCopy,
                       static_cast<double>(ctx_.params.costs.alloc));
    ctx_.buffers->Free(handle);
    ctx_.segments->clear_old_copy(s);
    return st;
  }

  // Not updated since the checkpoint began: the current content IS the
  // snapshot content. No LSN test is needed — everything reflected here
  // was durable by sweep_start_ (the begin-marker log flush).
  if (copy_before_flush_) {
    // COUCOPY: lock, stage, unlock, flush the buffer.
    ChargeCkptLocks(2);
    ctx_.meter->Charge(CpuCategory::kCkptCopy,
                       2.0 * static_cast<double>(ctx_.params.costs.alloc) +
                           ctx_.params.costs.move_per_word *
                               ctx_.params.db.segment_words);
    ++stats_.checkpointer_copies;
    return SubmitWrite(s, ctx_.db->ReadSegment(s), now, sweep_start_,
                       /*lock_through_io=*/false)
        .status();
  }
  // COUFLUSH: flush from database memory, lock held through the I/O.
  ChargeCkptLocks(2);
  return SubmitWrite(s, ctx_.db->ReadSegment(s), now, sweep_start_,
                     /*lock_through_io=*/true)
      .status();
}

Status CouCheckpointer::OnComplete(double) {
  // Every preserved copy was flushed when the sweep visited its segment;
  // release any stragglers defensively (e.g., if a future mode skipped
  // them) so buffers never leak across checkpoints.
  ReleaseOldCopies();
  return Status::OK();
}

void CouCheckpointer::ReleaseOldCopies() {
  for (SegmentId s = 0; s < ctx_.segments->num_segments(); ++s) {
    if (ctx_.segments->has_old_copy(s)) {
      ctx_.buffers->Free(ctx_.segments->old_copy(s));
      ctx_.segments->clear_old_copy(s);
    }
  }
}

void CouCheckpointer::Reset() {
  ReleaseOldCopies();
  Checkpointer::Reset();
}

}  // namespace mmdb
