#include "checkpoint/two_color.h"

#include <algorithm>

namespace mmdb {

Status TwoColorCheckpointer::ProcessSegment(SegmentId s, double now) {
  // Either variant checks the segment's LSN to satisfy the write-ahead
  // protocol before the image reaches the backup disks.
  ctx_.meter->Charge(CpuCategory::kCkptLsn,
                     static_cast<double>(ctx_.params.costs.lsn));
  Lsn required = std::max(ctx_.segments->update_lsn(s), begin_marker_lsn_);

  if (copy_before_flush_) {
    // 2CCOPY: lock, stage into a buffer, unlock, then flush the buffer.
    ChargeCkptLocks(2);
    ctx_.meter->Charge(CpuCategory::kCkptCopy,
                       2.0 * static_cast<double>(ctx_.params.costs.alloc) +
                           ctx_.params.costs.move_per_word *
                               ctx_.params.db.segment_words);
    ++stats_.checkpointer_copies;
    ctx_.segments->Paint(s, PaintColor::kBlack);
    MMDB_ASSIGN_OR_RETURN(double durable_at, WhenLogDurable(required, now));
    double earliest = std::max(sweep_start_, durable_at);
    return SubmitWrite(s, ctx_.db->ReadSegment(s), now, earliest,
                       /*lock_through_io=*/false)
        .status();
  }

  // 2CFLUSH: lock and hold through the disk I/O (and through any LSN
  // delay); the image goes straight from database memory to disk.
  ChargeCkptLocks(2);
  ctx_.segments->Paint(s, PaintColor::kBlack);
  MMDB_ASSIGN_OR_RETURN(double durable_at, WhenLogDurable(required, now));
  double earliest = std::max(sweep_start_, durable_at);
  return SubmitWrite(s, ctx_.db->ReadSegment(s), now, earliest,
                     /*lock_through_io=*/true)
      .status();
}

void TwoColorCheckpointer::OnSkipSegment(SegmentId s) {
  // A clean segment is trivially "in" the checkpoint (the backup copy
  // already holds its current contents) but must still turn black so the
  // color constraint keeps seeing a single advancing boundary.
  ctx_.segments->Paint(s, PaintColor::kBlack);
}

bool TwoColorCheckpointer::AdmitAccess(
    const std::vector<SegmentId>& segments, double) {
  if (state_ != State::kSweeping) return true;  // colors are uniform
  bool white = false;
  bool black = false;
  for (SegmentId s : segments) {
    if (ctx_.segments->color(s) == PaintColor::kBlack) {
      black = true;
    } else {
      white = true;
    }
  }
  return !(white && black);
}

Status TwoColorCheckpointer::OnComplete(double) {
  // Every segment is black now; O(1)-flip them all back to white for the
  // next checkpoint.
  ctx_.segments->FlipColors();
  return Status::OK();
}

void TwoColorCheckpointer::Reset() {
  // A crash mid-checkpoint leaves a mix of colors; repaint everything
  // white so the next checkpoint starts from a clean slate.
  for (SegmentId s = 0; s < ctx_.segments->num_segments(); ++s) {
    ctx_.segments->Paint(s, PaintColor::kWhite);
  }
  Checkpointer::Reset();
}

}  // namespace mmdb
