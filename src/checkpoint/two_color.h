#ifndef MMDB_CHECKPOINT_TWO_COLOR_H_
#define MMDB_CHECKPOINT_TWO_COLOR_H_

#include "checkpoint/checkpointer.h"

namespace mmdb {

// The two-color (paint-bit) algorithms of Section 3.2.1, after Pu's
// on-the-fly consistent-reading scheme. Every segment starts a checkpoint
// white; the checkpointer takes each segment, processes it, and paints it
// black. Transaction-consistency comes from the admission rule enforced
// through AdmitAccess: no transaction may touch both white and black data
// while the checkpoint runs — violators abort and rerun, which is the
// dominant cost of this family in the paper's results.
//
// Variants:
//   2CFLUSH (copy_before_flush=false): the segment stays read-locked for
//     the whole disk I/O (plus any write-ahead LSN delay). No data is ever
//     copied in memory — the cheapest algorithm per segment, but updates to
//     the segment stall for tens of milliseconds.
//   2CCOPY (copy_before_flush=true): the segment is locked only long
//     enough to stage it into a buffer; the flush happens from the buffer.
//     Costs C_alloc + a segment move per segment, releases locks quickly.
class TwoColorCheckpointer : public Checkpointer {
 public:
  TwoColorCheckpointer(const Context& ctx, CheckpointMode mode,
                       bool copy_before_flush)
      : Checkpointer(ctx, mode), copy_before_flush_(copy_before_flush) {}

  Algorithm algorithm() const override {
    return copy_before_flush_ ? Algorithm::kTwoColorCopy
                              : Algorithm::kTwoColorFlush;
  }

  // Pu's constraint: reject access sets spanning the color boundary while
  // the sweep is active.
  bool AdmitAccess(const std::vector<SegmentId>& segments,
                   double now) override;

  void Reset() override;

 protected:
  Status ProcessSegment(SegmentId s, double now) override;
  void OnSkipSegment(SegmentId s) override;
  Status OnComplete(double now) override;

 private:
  bool copy_before_flush_;
};

}  // namespace mmdb

#endif  // MMDB_CHECKPOINT_TWO_COLOR_H_
