#include "checkpoint/fuzzy.h"

#include <algorithm>

namespace mmdb {

Status FuzzyCopyCheckpointer::ProcessSegment(SegmentId s, double now) {
  // Check the segment's LSN to learn when its image may be flushed.
  ctx_.meter->Charge(CpuCategory::kCkptLsn,
                     static_cast<double>(ctx_.params.costs.lsn));
  // Copy into an I/O buffer: allocate + move S_seg words + free. The copy
  // is captured now; the disk write may start later without seeing
  // subsequent updates (that is the point of the buffer).
  ctx_.meter->Charge(CpuCategory::kCkptCopy,
                     2.0 * static_cast<double>(ctx_.params.costs.alloc) +
                         ctx_.params.costs.move_per_word *
                             ctx_.params.db.segment_words);
  ++stats_.checkpointer_copies;

  Lsn required = std::max(ctx_.segments->update_lsn(s), begin_marker_lsn_);
  MMDB_ASSIGN_OR_RETURN(double durable_at, WhenLogDurable(required, now));
  double earliest = std::max(sweep_start_, durable_at);
  return SubmitWrite(s, ctx_.db->ReadSegment(s), now, earliest,
                     /*lock_through_io=*/false)
      .status();
}

Status FastFuzzyCheckpointer::ProcessSegment(SegmentId s, double now) {
  // Direct flush out of database memory: only the I/O initiation costs
  // anything. (SubmitWrite captures the image at issue time; a real DMA
  // could additionally tear across an in-flight update, which REDO replay
  // repairs — the stable tail guarantees the log covers everything.)
  return SubmitWrite(s, ctx_.db->ReadSegment(s), now, sweep_start_,
                     /*lock_through_io=*/false)
      .status();
}

}  // namespace mmdb
