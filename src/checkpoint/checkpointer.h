#ifndef MMDB_CHECKPOINT_CHECKPOINTER_H_
#define MMDB_CHECKPOINT_CHECKPOINTER_H_

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "backup/backup_store.h"
#include "core/shard.h"
#include "obs/audit.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/cpu_meter.h"
#include "sim/disk_model.h"
#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/segment_table.h"
#include "txn/checkpoint_hooks.h"
#include "txn/timestamps.h"
#include "txn/txn_manager.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/types.h"
#include "wal/log_manager.h"

namespace mmdb {

// The six checkpointing algorithms of the paper (Section 3), plus three
// modern consistent-snapshot designs from the follow-on literature (Li et
// al.'s comparative study; see DESIGN.md section 15).
enum class Algorithm : uint8_t {
  kFuzzyCopy,      // FUZZYCOPY: buffer, then flush once the log catches up
  kFastFuzzy,      // FASTFUZZY: direct flush; requires a stable log tail
  kTwoColorFlush,  // 2CFLUSH: Pu's paint bits, lock held through the I/O
  kTwoColorCopy,   // 2CCOPY: paint bits, lock held only for the copy
  kCouFlush,       // COUFLUSH: copy-on-update snapshot, flush under lock
  kCouCopy,        // COUCOPY: copy-on-update snapshot, copy then flush
  kZigzag,         // ZIGZAG: ping-pong bit arrays, no copy-on-update stall
  kPingPong,       // PINGPONG: two full shadow copies, wait-free flip
  kHourglass,      // HOURGLASS: CALC-style record-granularity snapshot
};

// Canonical list of every algorithm, in enum order. All enumeration —
// AlgorithmFromName, bench axis arrays, test parameterizations — routes
// through this span, so adding an enum value without extending it here is
// caught by the exhaustive switch in AlgorithmName (compiled with
// -Werror=switch) rather than silently skipping a site.
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kFuzzyCopy,     Algorithm::kFastFuzzy,
    Algorithm::kTwoColorFlush, Algorithm::kTwoColorCopy,
    Algorithm::kCouFlush,      Algorithm::kCouCopy,
    Algorithm::kZigzag,        Algorithm::kPingPong,
    Algorithm::kHourglass,
};
inline constexpr size_t kNumAlgorithms =
    sizeof(kAllAlgorithms) / sizeof(kAllAlgorithms[0]);

// Canonical algorithm names (the papers' spellings). Inline so header-only
// users (the obs layer's trace formatter) need no link-time dependency on
// mmdb_checkpoint.
inline std::string_view AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kFuzzyCopy:
      return "FUZZYCOPY";
    case Algorithm::kFastFuzzy:
      return "FASTFUZZY";
    case Algorithm::kTwoColorFlush:
      return "2CFLUSH";
    case Algorithm::kTwoColorCopy:
      return "2CCOPY";
    case Algorithm::kCouFlush:
      return "COUFLUSH";
    case Algorithm::kCouCopy:
      return "COUCOPY";
    case Algorithm::kZigzag:
      return "ZIGZAG";
    case Algorithm::kPingPong:
      return "PINGPONG";
    case Algorithm::kHourglass:
      return "HOURGLASS";
  }
  // Only reachable with a value outside the enum — a corrupt options file,
  // a stale sidecar, or a bad cast. Returning a placeholder here once let
  // such values flow into metrics and traces unnoticed; crash at the
  // source instead.
  assert(false && "Algorithm value out of range");
  std::abort();
}

// Parses a canonical algorithm name, case-insensitively. The
// InvalidArgumentError lists every valid spelling so CLI typos
// (mmdb_stats, bench --algorithm) are actionable.
StatusOr<Algorithm> AlgorithmFromName(std::string_view name);

// True for the algorithms whose backup is an exact snapshot of the
// database at the begin-checkpoint marker — the property that makes
// non-idempotent (logical/delta) REDO records safe to replay from that
// marker. Holds for the copy-on-update pair and the modern snapshot
// algorithms (Zigzag, Ping-Pong, Hourglass): fuzzy backups are not
// consistent at all, and a two-color backup is consistent at the color
// boundary rather than at any log position.
bool SupportsLogicalLogging(Algorithm a);

// Full checkpoints write every segment; partial checkpoints test dirty bits
// and write only segments updated since this ping-pong copy was last
// written (Section 3).
enum class CheckpointMode : uint8_t { kFull, kPartial };

// Outcome of one checkpoint, for the metrics layer and the figure benches.
struct CheckpointStats {
  CheckpointId id = 0;
  double begin_time = 0.0;
  double end_time = 0.0;       // when the checkpoint became recoverable
  uint64_t segments_flushed = 0;
  uint64_t segments_skipped = 0;  // clean segments under partial mode
  uint64_t checkpointer_copies = 0;  // *COPY staging copies
  uint64_t cou_copies = 0;           // transaction-side old-image copies
  double quiesce_seconds = 0.0;      // COU admission stall window
  // Per-phase breakdown (all in simulated seconds):
  double lock_held_seconds = 0.0;  // segment-seconds held through backup I/O
  double flush_io_seconds = 0.0;   // backup-device service time, summed
  double log_wait_seconds = 0.0;   // write-ahead gate stalls before issuing
  double copy_seconds = 0.0;       // CPU time spent copying (ckpt + COU side)
  double duration() const { return end_time - begin_time; }
};

// Base of all checkpointers: owns the common sweep state machine, the
// write-ahead (LSN) gating, the ping-pong bookkeeping, and the
// begin/end-marker protocol; subclasses decide what to do with each
// segment. Also implements CheckpointHooks so TxnManager coordinates with
// whichever algorithm is active.
//
// Driving model: Begin(id, now) starts a checkpoint; Step(now) performs all
// work due at `now` and returns the next time the checkpointer needs
// service (+infinity once idle). The caller — engine simulator or the
// interactive facade — owns the clock.
class Checkpointer : public CheckpointHooks {
 public:
  // Shared subsystem handles. All pointers must outlive the checkpointer.
  struct Context {
    Database* db = nullptr;
    SegmentTable* segments = nullptr;
    BufferPool* buffers = nullptr;
    LogManager* log = nullptr;
    BackupStore* backup = nullptr;
    TxnManager* txns = nullptr;
    TimestampOracle* timestamps = nullptr;
    CpuMeter* meter = nullptr;
    SystemParams params;
    // Optional observability sinks (any may stay null).
    MetricsRegistry* metrics = nullptr;
    Tracer* tracer = nullptr;
    // Provenance journal (DESIGN.md §18): begin/flush/degraded/end/abort
    // events are appended for every checkpoint attempt.
    AuditJournal* audit = nullptr;
    // Completed-checkpoint stats retained by history(); older entries are
    // discarded once the cap is exceeded (0 = unbounded).
    size_t history_cap = 256;
    // Engine shard count (segment-range partitioning; DESIGN.md §17).
    // The sweep itself is shard-oblivious — it walks segments in order,
    // which IS shard order under range partitioning — but per-shard flush
    // tallies are kept for the dump's breakdown.
    uint32_t shards = 1;
  };

  // Builds the requested algorithm. Fails (FAILED_PRECONDITION) for
  // kFastFuzzy without a stable log tail, which would violate the
  // write-ahead protocol (Section 3.1).
  static StatusOr<std::unique_ptr<Checkpointer>> Create(
      Algorithm algorithm, const Context& ctx, CheckpointMode mode);

  ~Checkpointer() override = default;

  virtual Algorithm algorithm() const = 0;
  std::string_view name() const { return AlgorithmName(algorithm()); }
  CheckpointMode mode() const { return mode_; }

  // Starts checkpoint `id` (writes ping-pong copy id%2): logs the begin
  // marker (with the active-transaction list), flushes the log tail, and
  // arms the sweep. FAILED_PRECONDITION if one is already in progress.
  Status Begin(CheckpointId id, double now);

  // Performs work due at `now`. Returns the next service time, or
  // +infinity when idle. Monotonically nondecreasing `now` across calls.
  StatusOr<double> Step(double now);

  // Runs Begin-to-completion, advancing an internal notion of time from
  // `now`; returns the completion time. Convenience for the facade, tests
  // and recovery-free workloads (no transactions interleave).
  StatusOr<double> RunToCompletion(CheckpointId id, double now);

  bool InProgress() const { return state_ != State::kIdle; }
  CheckpointId current_id() const { return id_; }
  // Next segment the sweep will visit (== num_segments once the sweep is
  // done); exposed for monitoring and tests.
  SegmentId SweepPosition() const { return cur_seg_; }

  const CheckpointStats& last_stats() const { return last_stats_; }
  // Most recent completed checkpoints, oldest first, bounded by
  // Context::history_cap. Callers that index relative to a remembered
  // position must use history_dropped() to translate absolute checkpoint
  // ordinals (dropped + index) back into deque positions.
  const std::deque<CheckpointStats>& history() const { return history_; }
  // Entries discarded from the front of history() to honor the cap.
  uint64_t history_dropped() const { return history_dropped_; }
  size_t history_cap() const { return ctx_.history_cap; }

  // Abandons any in-progress checkpoint and volatile state (crash path).
  virtual void Reset();

  // Aborts an in-progress checkpoint after an I/O failure: releases locks
  // and algorithm state (via Reset) and re-marks the dirty bits of every
  // segment this attempt had cleared, so the next attempt — which reuses
  // the same id and therefore the same ping-pong copy — rewrites them.
  // The previous complete copy is never touched by a failed attempt, so a
  // readable backup exists throughout. No-op when idle. `now` is only for
  // the trace timeline; callers without a clock may omit it (the event is
  // then stamped with the checkpoint's begin time). `cause` (the failing
  // Status, rendered) is journaled with the ckpt.abort provenance event so
  // an abort/retry chain explains *why* each attempt died.
  void Abort(double now = -1.0, std::string_view cause = {});
  // Checkpoints abandoned via Abort() since construction.
  uint64_t aborted_count() const { return aborted_count_; }

  // Whether Begin stalls new transactions until the sweep starts — the COU
  // quiesce of Section 3.2.2. Public so the engine can enforce the
  // "no active transactions at Begin" precondition for any quiescing
  // algorithm without hard-coding the list.
  virtual bool QuiescesTransactions() const { return false; }

  // Which condition is delaying admission at `now` for this access set —
  // the COU quiesce barrier or a checkpoint-held segment lock. kNone when
  // the set can execute immediately (EarliestExecutionTime == now). When
  // both apply, the later-releasing condition wins: it is the one that
  // determines the admission time the engine actually waits for. The
  // engine uses this to attribute admission stalls to their cause in the
  // per-transaction latency breakdown.
  enum class StallCause : uint8_t { kNone, kQuiesce, kCheckpointLock };
  StallCause ClassifyStall(const std::vector<SegmentId>& segments,
                           double now) const;

  // Cumulative backup segment writes per shard across every checkpoint
  // (one entry per Context::shards shard).
  const std::vector<uint64_t>& shard_segments_flushed() const {
    return shard_segments_flushed_;
  }

  // --- CheckpointHooks (defaults; subclasses refine) ---------------------
  double EarliestExecutionTime(const std::vector<SegmentId>& segments,
                               double now) const override;
  bool AdmitAccess(const std::vector<SegmentId>& segments,
                   double now) override;
  void BeforeSegmentUpdate(SegmentId s, RecordId record, Timestamp txn_ts,
                           double now) override;
  bool NeedsLsnMaintenance() const override;
  bool NeedsTimestampMaintenance() const override { return false; }

 protected:
  enum class State : uint8_t {
    kIdle,
    kSweeping,    // processing segments in order
    kDraining,    // sweep done; waiting for outstanding segment writes
    kFinalizing,  // end marker logged; waiting for it to become durable
  };

  Checkpointer(const Context& ctx, CheckpointMode mode);

  // Subclass policy: handle segment `s` at time `now` (issue its write,
  // stage a copy, or skip). Dirty-bit skipping is handled by the base.
  virtual Status ProcessSegment(SegmentId s, double now) = 0;

  // Subclass notifications.
  virtual Status OnBegin(double now);
  virtual Status OnComplete(double now);

  // Called for segments the partial-mode dirty test skips (the two-color
  // algorithms still paint them black).
  virtual void OnSkipSegment(SegmentId s) { (void)s; }

  // True if `s` must be written in this checkpoint (mode/dirty test). The
  // base charges the dirty-bit scan cost.
  bool NeedsFlush(SegmentId s);

  // Issues the backup write of `data` for segment `s`, no earlier than
  // `earliest` (write-ahead gate). Returns the completion time. Charges
  // C_io. If `lock_through_io`, the segment stays checkpoint-locked until
  // the returned time.
  StatusOr<double> SubmitWrite(SegmentId s, std::string_view data,
                               double now, double earliest,
                               bool lock_through_io);

  // Time at which the log is durable through `lsn`, flushing the tail if
  // the record is still buffered (models waiting for the next group
  // flush). Surfaces the flush's device error, which fails the checkpoint
  // (the write-ahead gate cannot be satisfied).
  StatusOr<double> WhenLogDurable(Lsn lsn, double now);

  // Charges c * C_lock to the checkpointer lock category.
  void ChargeCkptLocks(int ops);

  uint32_t copy() const { return BackupStore::CopyFor(id_); }

  Context ctx_;
  CheckpointMode mode_;
  ShardLayout shard_layout_;
  std::vector<uint64_t> shard_segments_flushed_;

  State state_ = State::kIdle;
  CheckpointId id_ = 0;
  Lsn begin_marker_lsn_ = kInvalidLsn;
  uint64_t begin_marker_offset_ = 0;
  Timestamp tau_ch_ = 0;       // tau(CH), COU algorithms
  double sweep_start_ = 0.0;   // no segment write may be issued before this
  double next_due_ = 0.0;      // sweep pacing: Step is a no-op before this
  SegmentId cur_seg_ = 0;      // next segment the sweep will visit
  double last_write_done_ = 0.0;
  double end_marker_durable_ = 0.0;

  // Segments the checkpointer holds locked through an in-flight disk I/O,
  // mapped to the lock release (I/O completion) time.
  std::unordered_map<SegmentId, double> locked_until_;

  // Segments whose dirty bit this attempt cleared; Abort() restores them.
  std::vector<SegmentId> cleared_dirty_;
  uint64_t aborted_count_ = 0;

  CheckpointStats stats_;       // in-progress
  CheckpointStats last_stats_;  // most recently completed
  std::deque<CheckpointStats> history_;
  uint64_t history_dropped_ = 0;

  // CPU-copy instruction counts at Begin, for stats_.copy_seconds.
  double copy_instr_at_begin_ = 0.0;

  // Cached registry instruments (all null when Context::metrics is null).
  Counter* m_completed_ = nullptr;
  Counter* m_aborted_ = nullptr;
  Counter* m_segments_flushed_ = nullptr;
  Counter* m_segments_skipped_ = nullptr;
  Counter* m_history_dropped_ = nullptr;
  Timer* m_duration_seconds_ = nullptr;
  Timer* m_lock_held_seconds_ = nullptr;
  Timer* m_flush_io_seconds_ = nullptr;
  Timer* m_log_wait_seconds_ = nullptr;
  Timer* m_copy_seconds_ = nullptr;
  Timer* m_quiesce_seconds_ = nullptr;

  static constexpr double kNever = std::numeric_limits<double>::infinity();
};

}  // namespace mmdb

#endif  // MMDB_CHECKPOINT_CHECKPOINTER_H_
