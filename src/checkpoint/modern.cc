#include "checkpoint/modern.h"

#include <algorithm>

namespace mmdb {

// --- ShadowSnapshotCheckpointer (Zigzag / Ping-Pong common) --------------

void ShadowSnapshotCheckpointer::BeforeSegmentUpdate(SegmentId s,
                                                     RecordId record,
                                                     Timestamp txn_ts,
                                                     double now) {
  (void)record;
  (void)txn_ts;
  (void)now;
  ChargeUpdateBookkeeping();
  if (state_ != State::kSweeping) return;
  // Segments the sweep already handled (or has in flight) need no
  // preservation: their snapshot image reached the backup, captured at
  // SubmitWrite time.
  if (s < cur_seg_) return;
  if (ctx_.segments->has_old_copy(s)) return;
  // The content only postdates the begin marker if an earlier post-marker
  // update hit this segment without preserving (buffer exhaustion below);
  // preserving NOW would capture a non-snapshot image, so stay degraded.
  if (ctx_.segments->update_lsn(s) >= begin_marker_lsn_) return;

  StatusOr<uint32_t> handle = ctx_.buffers->Allocate();
  if (!handle.ok()) {
    // Emulation buffer exhausted: degrade to fuzzy content for this
    // segment, exactly like COU under the same pressure. Recovery stays
    // correct under full-image REDO replay.
    if (ctx_.audit != nullptr) {
      ctx_.audit->Record("ckpt.degraded", now, [&](JsonWriter& w) {
        w.Key("ckpt");
        w.Uint(id_);
        w.Key("segment");
        w.Uint(s);
      });
    }
    return;
  }
  // No CPU charge: in the real algorithm this image already exists (the
  // other tuple copy / the quiescent shadow); the copy here only feeds the
  // emulation. The algorithms' genuine recurring price is charged in
  // ChargeUpdateBookkeeping.
  ctx_.buffers->Write(*handle, ctx_.db->ReadSegment(s));
  ctx_.segments->set_old_copy(s, *handle);
  ++stats_.cou_copies;
}

Status ShadowSnapshotCheckpointer::ProcessSegment(SegmentId s, double now) {
  if (ctx_.segments->has_old_copy(s)) {
    uint32_t handle = ctx_.segments->old_copy(s);
    Status st = FlushSnapshot(s, ctx_.buffers->Read(handle), now,
                              /*preserved=*/true);
    // The backup got the PRE-update image: the update that forced the
    // preservation is covered by log replay only while THIS checkpoint is
    // the newest. Re-dirty the segment for this copy so the next
    // checkpoint that writes it flushes the post-update content (the same
    // cold-segment invariant as COU).
    ctx_.segments->MarkDirtyCopy(s, copy());
    ctx_.buffers->Free(handle);
    ctx_.segments->clear_old_copy(s);
    return st;
  }
  // Never updated since the begin marker: current content IS the snapshot
  // content, and everything in it was made durable by the marker flush.
  return FlushSnapshot(s, ctx_.db->ReadSegment(s), now, /*preserved=*/false);
}

Status ShadowSnapshotCheckpointer::OnComplete(double) {
  // Every preserved image was consumed when the sweep visited its segment;
  // release stragglers defensively so buffers never leak.
  ReleaseOldCopies();
  return Status::OK();
}

void ShadowSnapshotCheckpointer::ReleaseOldCopies() {
  for (SegmentId s = 0; s < ctx_.segments->num_segments(); ++s) {
    if (ctx_.segments->has_old_copy(s)) {
      ctx_.buffers->Free(ctx_.segments->old_copy(s));
      ctx_.segments->clear_old_copy(s);
    }
  }
}

void ShadowSnapshotCheckpointer::Reset() {
  ReleaseOldCopies();
  Checkpointer::Reset();
}

// --- ZIGZAG --------------------------------------------------------------

Status ZigzagCheckpointer::OnBegin(double) {
  // MR := MW for every record, one bulk word-wide bit-array copy; the
  // instant of that copy is the snapshot's point of consistency. No
  // quiesce, no transaction ever waits.
  const double bit_words =
      static_cast<double>(ctx_.db->num_records()) / 64.0;
  ctx_.meter->Charge(CpuCategory::kCkptScan,
                     ctx_.params.costs.move_per_word * bit_words);
  return Status::OK();
}

void ZigzagCheckpointer::ChargeUpdateBookkeeping() {
  // Point MW[r] away from the copy the checkpointer reads and flag the
  // record: two bit operations per installed update.
  ctx_.meter->Charge(
      CpuCategory::kSyncLsn,
      2.0 * static_cast<double>(ctx_.params.costs.dirty_check));
}

Status ZigzagCheckpointer::FlushSnapshot(SegmentId s, std::string_view data,
                                         double now, bool preserved) {
  (void)preserved;
  // The two tuple copies interleave in memory, so the checkpointer gathers
  // the MR-side images into an I/O staging buffer: one bit consult per
  // record plus a segment of data movement. No locks anywhere.
  ctx_.meter->Charge(
      CpuCategory::kCkptLsn,
      static_cast<double>(ctx_.params.db.records_per_segment()) *
          static_cast<double>(ctx_.params.costs.dirty_check));
  ctx_.meter->Charge(CpuCategory::kCkptCopy,
                     2.0 * static_cast<double>(ctx_.params.costs.alloc) +
                         ctx_.params.costs.move_per_word *
                             ctx_.params.db.segment_words);
  ++stats_.checkpointer_copies;
  return SubmitWrite(s, data, now, sweep_start_, /*lock_through_io=*/false)
      .status();
}

// --- PINGPONG ------------------------------------------------------------

void PingPongCheckpointer::ChargeUpdateBookkeeping() {
  // The double write: every update lands in the primary and again in the
  // active shadow copy. That is Ping-Pong's entire synchronous price.
  ctx_.meter->Charge(CpuCategory::kSyncCopy,
                     ctx_.params.costs.move_per_word *
                         static_cast<double>(ctx_.params.db.record_words));
}

Status PingPongCheckpointer::FlushSnapshot(SegmentId s, std::string_view data,
                                           double now, bool preserved) {
  (void)preserved;
  // Begin flipped the active shadow in O(1); the quiescent shadow is
  // contiguous and already consistent, so the sweep flushes it directly —
  // no gather, no staging copy, no locks (FASTFUZZY's I/O profile with a
  // consistent image and no stable-tail requirement).
  return SubmitWrite(s, data, now, sweep_start_, /*lock_through_io=*/false)
      .status();
}

// --- HOURGLASS -----------------------------------------------------------

Status HourglassCheckpointer::OnBegin(double) {
  // The short atomic phase: acquire and release the commit latch to cut
  // the virtual point of consistency. Everything else is asynchronous.
  ChargeCkptLocks(2);
  return Status::OK();
}

void HourglassCheckpointer::BeforeSegmentUpdate(SegmentId s, RecordId record,
                                                Timestamp txn_ts,
                                                double now) {
  (void)txn_ts;
  (void)now;
  // The stable-version test on every installed update.
  ctx_.meter->Charge(CpuCategory::kSyncLsn,
                     static_cast<double>(ctx_.params.costs.dirty_check));
  if (state_ != State::kSweeping) return;
  if (s < cur_seg_) return;
  auto& seg_overlay = overlay_[s];
  // Overlay membership IS the "updated since the marker" predicate: every
  // post-marker first touch of an unswept record lands here, so a missing
  // entry means the record's current image still predates the snapshot.
  if (seg_overlay.count(record) > 0) return;
  seg_overlay.emplace(record, std::string(ctx_.db->ReadRecord(record)));
  // First post-marker touch copies the record's old image aside — the
  // live/stable version split, priced at one record of data movement.
  ctx_.meter->Charge(CpuCategory::kSyncCopy,
                     ctx_.params.costs.move_per_word *
                         static_cast<double>(ctx_.params.db.record_words));
  ++stats_.cou_copies;
}

Status HourglassCheckpointer::ProcessSegment(SegmentId s, double now) {
  // Per-segment latch pair, then one stable-version consult per record as
  // the checkpointer assembles the segment's snapshot image.
  ChargeCkptLocks(2);
  ctx_.meter->Charge(
      CpuCategory::kCkptLsn,
      static_cast<double>(ctx_.params.db.records_per_segment()) *
          static_cast<double>(ctx_.params.costs.dirty_check));

  auto it = overlay_.find(s);
  if (it == overlay_.end() || it->second.empty()) {
    if (it != overlay_.end()) overlay_.erase(it);
    // No post-marker updates: current content is the snapshot content.
    return SubmitWrite(s, ctx_.db->ReadSegment(s), now, sweep_start_,
                       /*lock_through_io=*/false)
        .status();
  }

  // Patch the preserved old records over the current content in a staging
  // buffer, then flush the reconstructed snapshot image.
  std::string staged(ctx_.db->ReadSegment(s));
  const size_t rec_bytes = ctx_.db->record_bytes();
  const uint64_t base =
      static_cast<uint64_t>(s) * ctx_.params.db.records_per_segment();
  for (const auto& [record, image] : it->second) {
    staged.replace(static_cast<size_t>(record - base) * rec_bytes, rec_bytes,
                   image);
  }
  ctx_.meter->Charge(CpuCategory::kCkptCopy,
                     2.0 * static_cast<double>(ctx_.params.costs.alloc) +
                         ctx_.params.costs.move_per_word *
                             ctx_.params.db.segment_words);
  ++stats_.checkpointer_copies;
  Status st = SubmitWrite(s, staged, now, sweep_start_,
                          /*lock_through_io=*/false)
                  .status();
  // Snapshot (pre-update) images went out: re-dirty for this copy so the
  // next checkpoint that writes it flushes the post-update content.
  ctx_.segments->MarkDirtyCopy(s, copy());
  overlay_.erase(it);
  return st;
}

Status HourglassCheckpointer::OnComplete(double) {
  overlay_.clear();  // consumed by the sweep; defensive
  return Status::OK();
}

void HourglassCheckpointer::Reset() {
  overlay_.clear();
  Checkpointer::Reset();
}

size_t HourglassCheckpointer::preserved_records() const {
  size_t n = 0;
  for (const auto& [seg, records] : overlay_) n += records.size();
  return n;
}

}  // namespace mmdb
