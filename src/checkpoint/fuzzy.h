#ifndef MMDB_CHECKPOINT_FUZZY_H_
#define MMDB_CHECKPOINT_FUZZY_H_

#include "checkpoint/checkpointer.h"

namespace mmdb {

// FUZZYCOPY (Section 3.1): no synchronization with transactions at all. The
// checkpointer copies each (dirty) segment into a main-memory I/O buffer and
// flushes the buffered image once the log is durable through the segment's
// last installing commit — the LSN test that keeps the write-ahead protocol
// intact without stable RAM. The resulting backup is fuzzy: it need not
// reflect any single consistent instant, and recovery repairs it by REDO
// replay from the begin-checkpoint marker.
class FuzzyCopyCheckpointer : public Checkpointer {
 public:
  FuzzyCopyCheckpointer(const Context& ctx, CheckpointMode mode)
      : Checkpointer(ctx, mode) {}

  Algorithm algorithm() const override { return Algorithm::kFuzzyCopy; }

 protected:
  Status ProcessSegment(SegmentId s, double now) override;
};

// FASTFUZZY (Section 4): the straightforward fuzzy checkpoint — flush
// segments in place with no buffer copy and no LSN bookkeeping. Legal only
// when the log tail lives in stable RAM (every appended record is durable
// immediately), otherwise a flushed image could reach the backup before the
// log records covering it. Checkpointer::Create enforces that requirement.
class FastFuzzyCheckpointer : public Checkpointer {
 public:
  FastFuzzyCheckpointer(const Context& ctx, CheckpointMode mode)
      : Checkpointer(ctx, mode) {}

  Algorithm algorithm() const override { return Algorithm::kFastFuzzy; }

  // With a stable tail there is nothing to maintain.
  bool NeedsLsnMaintenance() const override { return false; }

 protected:
  Status ProcessSegment(SegmentId s, double now) override;
};

}  // namespace mmdb

#endif  // MMDB_CHECKPOINT_FUZZY_H_
