#ifndef MMDB_CHECKPOINT_SCHEDULER_H_
#define MMDB_CHECKPOINT_SCHEDULER_H_

#include <algorithm>

#include "util/types.h"

namespace mmdb {

// Decides when successive checkpoints begin. The checkpoint duration — the
// time from one begin to the next (Section 4) — is the paper's main tuning
// knob: it can be as short as the backup bandwidth allows ("as fast as
// possible", target_interval = 0) or stretched by inserting a delay, which
// trades recovery time for processor overhead (Figure 4b).
class CheckpointScheduler {
 public:
  // `target_interval` is the desired begin-to-begin spacing in seconds;
  // 0 means back-to-back checkpoints.
  explicit CheckpointScheduler(double target_interval)
      : target_interval_(target_interval) {}

  double target_interval() const { return target_interval_; }
  void set_target_interval(double interval) { target_interval_ = interval; }

  // Identifier the next checkpoint should use (starts at 1; the ping-pong
  // copy is id % 2).
  CheckpointId NextId() const { return completed_ + 1; }

  // Earliest time the next checkpoint may begin, given that the previous
  // one began at `last_begin` and completed at `last_end` (the actual
  // interval can never undercut the completion).
  double NextBeginTime() const {
    if (completed_ == 0) return 0.0;
    return std::max(last_end_, last_begin_ + target_interval_);
  }

  void OnBegin(double t) { last_begin_ = t; }
  void OnComplete(double t) {
    last_end_ = t;
    ++completed_;
  }

  // Resumes numbering after a restart: `completed` is the id of the last
  // checkpoint known complete (from the recovered metadata), so the next
  // checkpoint continues the ping-pong alternation.
  void Restore(uint64_t completed, double now) {
    completed_ = completed;
    last_begin_ = now;
    last_end_ = now;
  }

  uint64_t completed() const { return completed_; }

 private:
  double target_interval_;
  double last_begin_ = 0.0;
  double last_end_ = 0.0;
  uint64_t completed_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_CHECKPOINT_SCHEDULER_H_
