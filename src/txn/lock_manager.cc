#include "txn/lock_manager.h"

#include <algorithm>

#include "util/string_util.h"

namespace mmdb {

LockManager::LockManager(uint32_t stripes, uint64_t records_per_segment)
    : records_per_segment_(records_per_segment) {
  if (stripes == 0) stripes = 1;
  stripes_.reserve(stripes);
  for (uint32_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

Status LockManager::Acquire(TxnId txn, RecordId record, Mode mode) {
  Stripe& stripe = StripeOf(record);
  Status s;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    s = AcquireImpl(stripe, txn, record, mode);
  }
  if (m_acquires_ != nullptr) {
    if (s.ok()) {
      m_acquires_->Increment();
    } else {
      m_conflicts_->Increment();
    }
  }
  return s;
}

Status LockManager::AcquireImpl(Stripe& stripe, TxnId txn, RecordId record,
                                Mode mode) {
  Entry& e = stripe.table[record];
  const bool held_shared =
      std::find(e.shared.begin(), e.shared.end(), txn) != e.shared.end();
  if (mode == Mode::kShared) {
    if (e.exclusive != kInvalidTxnId && e.exclusive != txn) {
      return AbortedError(StringPrintf(
          "record %llu exclusively locked by txn %llu",
          static_cast<unsigned long long>(record),
          static_cast<unsigned long long>(e.exclusive)));
    }
    if (e.exclusive == txn) return Status::OK();  // Already stronger.
    if (!held_shared) e.shared.push_back(txn);
    return Status::OK();
  }
  // Exclusive request.
  if (e.exclusive != kInvalidTxnId) {
    if (e.exclusive == txn) return Status::OK();
    return AbortedError(StringPrintf(
        "record %llu exclusively locked by txn %llu",
        static_cast<unsigned long long>(record),
        static_cast<unsigned long long>(e.exclusive)));
  }
  // Upgrade allowed only if this txn is the sole sharer.
  if (!e.shared.empty() && !(e.shared.size() == 1 && held_shared)) {
    return AbortedError(StringPrintf(
        "record %llu share-locked by another transaction",
        static_cast<unsigned long long>(record)));
  }
  e.shared.clear();
  e.exclusive = txn;
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn, const std::vector<RecordId>& records) {
  for (RecordId r : records) {
    Stripe& stripe = StripeOf(r);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.table.find(r);
    if (it == stripe.table.end()) continue;
    Entry& e = it->second;
    if (e.exclusive == txn) e.exclusive = kInvalidTxnId;
    std::erase(e.shared, txn);
    if (e.exclusive == kInvalidTxnId && e.shared.empty()) {
      stripe.table.erase(it);
    }
  }
}

bool LockManager::IsLocked(RecordId record) const {
  const Stripe& stripe = StripeOf(record);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.table.count(record) > 0;
}

bool LockManager::Holds(TxnId txn, RecordId record, Mode mode) const {
  const Stripe& stripe = StripeOf(record);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.table.find(record);
  if (it == stripe.table.end()) return false;
  const Entry& e = it->second;
  if (e.exclusive == txn) return true;
  if (mode == Mode::kShared) {
    return std::find(e.shared.begin(), e.shared.end(), txn) != e.shared.end();
  }
  return false;
}

size_t LockManager::num_locked_records() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->table.size();
  }
  return total;
}

void LockManager::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->table.clear();
  }
}

}  // namespace mmdb
