#include "txn/lock_manager.h"

#include <algorithm>

#include "util/string_util.h"

namespace mmdb {

Status LockManager::Acquire(TxnId txn, RecordId record, Mode mode) {
  Status s = AcquireImpl(txn, record, mode);
  if (m_acquires_ != nullptr) {
    if (s.ok()) {
      m_acquires_->Increment();
    } else {
      m_conflicts_->Increment();
    }
  }
  return s;
}

Status LockManager::AcquireImpl(TxnId txn, RecordId record, Mode mode) {
  Entry& e = table_[record];
  const bool held_shared =
      std::find(e.shared.begin(), e.shared.end(), txn) != e.shared.end();
  if (mode == Mode::kShared) {
    if (e.exclusive != kInvalidTxnId && e.exclusive != txn) {
      return AbortedError(StringPrintf(
          "record %llu exclusively locked by txn %llu",
          static_cast<unsigned long long>(record),
          static_cast<unsigned long long>(e.exclusive)));
    }
    if (e.exclusive == txn) return Status::OK();  // Already stronger.
    if (!held_shared) e.shared.push_back(txn);
    return Status::OK();
  }
  // Exclusive request.
  if (e.exclusive != kInvalidTxnId) {
    if (e.exclusive == txn) return Status::OK();
    return AbortedError(StringPrintf(
        "record %llu exclusively locked by txn %llu",
        static_cast<unsigned long long>(record),
        static_cast<unsigned long long>(e.exclusive)));
  }
  // Upgrade allowed only if this txn is the sole sharer.
  if (!e.shared.empty() && !(e.shared.size() == 1 && held_shared)) {
    return AbortedError(StringPrintf(
        "record %llu share-locked by another transaction",
        static_cast<unsigned long long>(record)));
  }
  e.shared.clear();
  e.exclusive = txn;
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn, const std::vector<RecordId>& records) {
  for (RecordId r : records) {
    auto it = table_.find(r);
    if (it == table_.end()) continue;
    Entry& e = it->second;
    if (e.exclusive == txn) e.exclusive = kInvalidTxnId;
    std::erase(e.shared, txn);
    if (e.exclusive == kInvalidTxnId && e.shared.empty()) table_.erase(it);
  }
}

bool LockManager::IsLocked(RecordId record) const {
  return table_.count(record) > 0;
}

bool LockManager::Holds(TxnId txn, RecordId record, Mode mode) const {
  auto it = table_.find(record);
  if (it == table_.end()) return false;
  const Entry& e = it->second;
  if (e.exclusive == txn) return true;
  if (mode == Mode::kShared) {
    return std::find(e.shared.begin(), e.shared.end(), txn) != e.shared.end();
  }
  return false;
}

}  // namespace mmdb
