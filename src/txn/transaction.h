#ifndef MMDB_TXN_TRANSACTION_H_
#define MMDB_TXN_TRANSACTION_H_

#include <cstdint>
#include <map>
#include <utility>
#include <string>
#include <vector>

#include "util/types.h"

namespace mmdb {

enum class TxnState : uint8_t {
  kActive,
  kCommitted,
  kAborted,
};

// Why the last ABORTED status was returned for this transaction. Lock
// conflicts and two-color violations surface as the same ABORTED Status
// code, so the TxnManager tags the transaction at the failure point and
// retry drivers read the tag to attribute the retry latency to its cause.
enum class TxnAbortCause : uint8_t {
  kNone,
  kLockConflict,    // no-wait lock table conflict
  kColorViolation,  // two-color constraint (checkpoint-induced)
};

// A transaction under the paper's shadow-copy update scheme (Section 2.6):
// writes are buffered privately in `pending` and installed into the primary
// database only at commit, so no UNDO information is ever needed. REDO log
// records for the updates plus a commit record are emitted as one group at
// commit time.
//
// Created by TxnManager::Begin and owned by the TxnManager until Commit or
// Abort retires it.
struct Transaction {
  TxnId id = kInvalidTxnId;
  Timestamp start_ts = 0;  // tau(T)
  TxnState state = TxnState::kActive;
  double begin_time = 0.0;

  // Deferred updates, keyed by record so a rewrite replaces the image.
  std::map<RecordId, std::string> pending;

  // Deferred logical (delta) operations: accumulated signed additions to
  // 8-byte fields, keyed by (record, byte offset). Logged as compact
  // kDelta records instead of after-images. A record may not receive both
  // a full-image write and deltas within one transaction.
  std::map<std::pair<RecordId, uint32_t>, int64_t> pending_deltas;

  // Records read or written, for lock release.
  std::vector<RecordId> locked_records;

  // Distinct segments read or written, in first-touch order. The two-color
  // admission test evaluates this set against the current paint bits.
  std::vector<SegmentId> touched_segments;

  // 1 on the first execution attempt; incremented by checkpoint-induced
  // restarts (simulation path).
  int attempt = 1;

  // Set by the TxnManager when Read/Write/WriteDelta return ABORTED.
  TxnAbortCause abort_cause = TxnAbortCause::kNone;

  size_t num_updates() const { return pending.size() + pending_deltas.size(); }
};

}  // namespace mmdb

#endif  // MMDB_TXN_TRANSACTION_H_
