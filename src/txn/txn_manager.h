#ifndef MMDB_TXN_TXN_MANAGER_H_
#define MMDB_TXN_TXN_MANAGER_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/shard.h"
#include "sim/cost_model.h"
#include "sim/cpu_meter.h"
#include "storage/database.h"
#include "storage/segment_table.h"
#include "txn/checkpoint_hooks.h"
#include "txn/lock_manager.h"
#include "txn/timestamps.h"
#include "txn/transaction.h"
#include "util/status.h"
#include "util/statusor.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace mmdb {

// Why a transaction was aborted; selects the cost accounting (only
// checkpoint-induced restarts are the paper's "rerun" overhead).
enum class AbortReason : uint8_t {
  kUser,               // client called Abort
  kLockConflict,       // no-wait lock table conflict
  kColorViolation,     // two-color constraint (checkpoint-induced)
};

// Executes transactions against the primary database using the paper's
// scheme (Section 2.6): deferred (shadow-copy) updates installed at commit,
// REDO-only logging with the update group and commit record appended
// together at commit time, and asynchronous group log flushes handled by
// the engine.
//
// The active checkpointer plugs in through CheckpointHooks: two-color
// admission, copy-on-update image preservation, and per-update LSN /
// timestamp maintenance charges.
class TxnManager {
 public:
  // `timestamps` is the engine-wide oracle, shared with the COU
  // checkpointer so tau(T) and tau(CH) draw from one sequence. `shards`
  // (optional) is the engine's segment-range shard layout: it selects the
  // WAL stream each REDO record is routed to and the lock-table stripe
  // count; null behaves as a single shard (the pre-shard layout).
  TxnManager(Database* db, SegmentTable* segments, LogManager* log,
             TimestampOracle* timestamps, CpuMeter* meter,
             const SystemParams& params,
             const ShardLayout* shards = nullptr);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  // Installs the hooks of the active checkpoint algorithm; nullptr restores
  // the no-op hooks.
  void set_hooks(CheckpointHooks* hooks);
  CheckpointHooks* hooks() const { return hooks_; }

  // Starts a transaction. The returned pointer stays valid until Commit or
  // Abort retires it.
  Transaction* Begin(double now);

  // Reads a record (reads-your-writes within the transaction). May return
  // ABORTED on a lock conflict or a two-color violation, in which case the
  // caller must Abort the transaction and retry it.
  Status Read(Transaction* txn, RecordId record, std::string* out,
              double now);

  // Buffers an update; `image` must be exactly record_bytes long. Same
  // ABORTED contract as Read.
  Status Write(Transaction* txn, RecordId record, std::string_view image,
               double now);

  // Buffers a logical operation: add `delta` to the little-endian 8-byte
  // field at `field_offset` within `record`. Logged as a compact kDelta
  // record; the caller (Engine) is responsible for ensuring the active
  // checkpointing algorithm makes logical REDO safe. A record written with
  // a full image in the same transaction cannot also take deltas (and
  // vice versa). Same ABORTED contract as Read.
  Status WriteDelta(Transaction* txn, RecordId record, uint32_t field_offset,
                    int64_t delta, double now);

  // Installs updates, emits the REDO group + commit record, releases locks,
  // and retires the transaction. Returns the commit record's LSN.
  // The commit is durable only once the log flushes past that LSN.
  StatusOr<Lsn> Commit(Transaction* txn, double now);

  // Releases locks and retires the transaction without installing anything
  // (shadow updates are simply dropped). An abort record is logged for
  // accounting; REDO recovery never replays aborted transactions.
  void Abort(Transaction* txn, AbortReason reason, double now);

  // Snapshot of active transactions for a begin-checkpoint marker. Under
  // commit-time logging active transactions have no log records yet, so
  // first_lsn is kInvalidLsn for each.
  std::vector<ActiveTxnEntry> ActiveTxnList() const;

  size_t num_active() const { return active_.size(); }

  // --- statistics --------------------------------------------------------
  uint64_t commits() const { return commits_; }
  uint64_t user_aborts() const { return user_aborts_; }
  uint64_t lock_aborts() const { return lock_aborts_; }
  uint64_t color_aborts() const { return color_aborts_; }

  // Commits tallied by home shard (the shard whose WAL stream took the
  // commit record); one entry per shard.
  const std::vector<uint64_t>& shard_commits() const {
    return shard_commits_;
  }

  const LockManager& locks() const { return locks_; }

  // Optional observability sinks (either may be null); also wires the
  // embedded LockManager's counters.
  void set_obs(MetricsRegistry* registry, Tracer* tracer);

  // Forgets all volatile transaction state (crash).
  void Reset();

 private:
  // Incremental two-color admission for `txn` after touching `record`.
  Status CheckColors(Transaction* txn, SegmentId segment, double now);

  // Acquire + conflict tracing.
  Status AcquireLock(Transaction* txn, RecordId record, LockManager::Mode mode,
                     double now);

  Database* db_;
  SegmentTable* segments_;
  LogManager* log_;
  CpuMeter* meter_;
  SystemParams params_;
  CheckpointHooks* hooks_;
  NullCheckpointHooks null_hooks_;

  ShardLayout shards_;
  LockManager locks_;
  TimestampOracle* timestamps_;
  TxnId next_txn_id_ = 1;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> active_;

  uint64_t commits_ = 0;
  std::vector<uint64_t> shard_commits_;
  uint64_t user_aborts_ = 0;
  uint64_t lock_aborts_ = 0;
  uint64_t color_aborts_ = 0;

  Tracer* tracer_ = nullptr;
  Counter* m_commits_ = nullptr;
  Counter* m_user_aborts_ = nullptr;
  Counter* m_lock_aborts_ = nullptr;
  Counter* m_color_aborts_ = nullptr;
};

}  // namespace mmdb

#endif  // MMDB_TXN_TXN_MANAGER_H_
