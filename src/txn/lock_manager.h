#ifndef MMDB_TXN_LOCK_MANAGER_H_
#define MMDB_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/status.h"
#include "util/types.h"

namespace mmdb {

// Record-granularity shared/exclusive lock table with no-wait conflict
// resolution: a conflicting request fails immediately with ABORTED instead
// of blocking, which keeps the single-threaded engine deadlock-free. The
// caller (TxnManager) retries the whole transaction, mirroring how the
// paper's model treats transaction restarts.
//
// Cost note: record locking is part of the transaction's base cost C_trans
// in the paper's model, so LockManager charges no instructions; only
// checkpoint-induced synchronization is metered (by the checkpointers).
class LockManager {
 public:
  enum class Mode : uint8_t { kShared, kExclusive };

  LockManager() = default;

  // Grants or upgrades a lock for `txn`; ABORTED on conflict with another
  // transaction. Re-acquiring an already-held lock (same or weaker mode)
  // succeeds.
  Status Acquire(TxnId txn, RecordId record, Mode mode);

  // Releases every lock `txn` holds on `records` (missing entries are
  // ignored, so callers can pass their full access list).
  void ReleaseAll(TxnId txn, const std::vector<RecordId>& records);

  // True if any transaction holds a lock on `record`.
  bool IsLocked(RecordId record) const;
  // True if `txn` holds at least `mode` on `record`.
  bool Holds(TxnId txn, RecordId record, Mode mode) const;

  size_t num_locked_records() const { return table_.size(); }

  void Clear() { table_.clear(); }

  // Optional metrics sink (may be null): counts grants and no-wait
  // conflicts.
  void set_obs(MetricsRegistry* registry) {
    if (registry == nullptr) return;
    m_acquires_ = registry->counter("lock.acquires");
    m_conflicts_ = registry->counter("lock.conflicts");
  }

 private:
  Status AcquireImpl(TxnId txn, RecordId record, Mode mode);

  struct Entry {
    // Exclusive holder, or kInvalidTxnId if the lock is shared/free.
    TxnId exclusive = kInvalidTxnId;
    std::vector<TxnId> shared;
  };

  std::unordered_map<RecordId, Entry> table_;
  Counter* m_acquires_ = nullptr;
  Counter* m_conflicts_ = nullptr;
};

}  // namespace mmdb

#endif  // MMDB_TXN_LOCK_MANAGER_H_
