#ifndef MMDB_TXN_LOCK_MANAGER_H_
#define MMDB_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/status.h"
#include "util/types.h"

namespace mmdb {

// Record-granularity shared/exclusive lock table with no-wait conflict
// resolution: a conflicting request fails immediately with ABORTED instead
// of blocking, which keeps the single-threaded engine deadlock-free. The
// caller (TxnManager) retries the whole transaction, mirroring how the
// paper's model treats transaction restarts.
//
// Striping (DESIGN.md §17). The table is split into `stripes` independent
// hash tables, each under its own mutex, keyed by segment
// (record / records_per_segment) so each engine shard's segment range maps
// to its own stripe set and shards>1 never funnels through one lock. The
// default single stripe takes the same uncontended-mutex fast path; the
// lock protocol, grant/conflict outcomes, and metrics are identical at any
// stripe count, so the modeled engine is stripe-count-invariant.
//
// Cost note: record locking is part of the transaction's base cost C_trans
// in the paper's model, so LockManager charges no instructions; only
// checkpoint-induced synchronization is metered (by the checkpointers).
class LockManager {
 public:
  enum class Mode : uint8_t { kShared, kExclusive };

  // `stripes` internal partitions (>= 1); `records_per_segment` maps a
  // record to its segment for stripe selection (0 stripes by raw record
  // id — only sensible in unit tests).
  explicit LockManager(uint32_t stripes = 1,
                       uint64_t records_per_segment = 0);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Grants or upgrades a lock for `txn`; ABORTED on conflict with another
  // transaction. Re-acquiring an already-held lock (same or weaker mode)
  // succeeds.
  Status Acquire(TxnId txn, RecordId record, Mode mode);

  // Releases every lock `txn` holds on `records` (missing entries are
  // ignored, so callers can pass their full access list).
  void ReleaseAll(TxnId txn, const std::vector<RecordId>& records);

  // True if any transaction holds a lock on `record`.
  bool IsLocked(RecordId record) const;
  // True if `txn` holds at least `mode` on `record`.
  bool Holds(TxnId txn, RecordId record, Mode mode) const;

  size_t num_locked_records() const;

  uint32_t num_stripes() const {
    return static_cast<uint32_t>(stripes_.size());
  }

  void Clear();

  // Optional metrics sink (may be null): counts grants and no-wait
  // conflicts.
  void set_obs(MetricsRegistry* registry) {
    if (registry == nullptr) return;
    m_acquires_ = registry->counter("lock.acquires");
    m_conflicts_ = registry->counter("lock.conflicts");
  }

 private:
  struct Entry {
    // Exclusive holder, or kInvalidTxnId if the lock is shared/free.
    TxnId exclusive = kInvalidTxnId;
    std::vector<TxnId> shared;
  };

  // One independently locked partition of the table. unique_ptr keeps the
  // stripe array stable (mutex is neither movable nor copyable).
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<RecordId, Entry> table;
  };

  Stripe& StripeOf(RecordId record) {
    return *stripes_[StripeIndex(record)];
  }
  const Stripe& StripeOf(RecordId record) const {
    return *stripes_[StripeIndex(record)];
  }
  size_t StripeIndex(RecordId record) const {
    uint64_t key = records_per_segment_ != 0
                       ? record / records_per_segment_
                       : record;
    return static_cast<size_t>(key % stripes_.size());
  }

  static Status AcquireImpl(Stripe& stripe, TxnId txn, RecordId record,
                            Mode mode);

  std::vector<std::unique_ptr<Stripe>> stripes_;
  uint64_t records_per_segment_;
  Counter* m_acquires_ = nullptr;
  Counter* m_conflicts_ = nullptr;
};

}  // namespace mmdb

#endif  // MMDB_TXN_LOCK_MANAGER_H_
