#ifndef MMDB_TXN_CHECKPOINT_HOOKS_H_
#define MMDB_TXN_CHECKPOINT_HOOKS_H_

#include <vector>

#include "util/types.h"

namespace mmdb {

// The coupling points between transaction processing and an in-progress
// checkpoint. Each checkpoint algorithm implements these; TxnManager calls
// them without knowing which algorithm is active, which keeps txn/ free of
// a dependency on checkpoint/.
//
// All hooks take the current virtual time so implementations can reason
// about in-flight disk operations.
class CheckpointHooks {
 public:
  virtual ~CheckpointHooks() = default;

  // Earliest virtual time >= now at which a transaction touching
  // `segments` may execute: respects segments the checkpointer holds
  // locked through a disk I/O (2CFLUSH / COUFLUSH) and the COU quiesce
  // barrier at checkpoint start. Used by the simulation driver; the
  // interactive facade treats a future time as "spin the checkpointer
  // until then".
  virtual double EarliestExecutionTime(const std::vector<SegmentId>& segments,
                                       double now) const = 0;

  // Two-color admission test (Pu's constraint): false means the access set
  // spans both white and black data and the transaction must abort and
  // restart. Non-two-color algorithms always return true.
  virtual bool AdmitAccess(const std::vector<SegmentId>& segments,
                           double now) = 0;

  // Called immediately before a committing transaction with timestamp
  // `txn_ts` overwrites record `record` in segment `s`: the COU algorithms
  // preserve the pre-update segment image here (Figure 3.2); the Hourglass
  // algorithm preserves at record granularity. Charges the copy-on-update
  // work to the synchronous overhead categories.
  virtual void BeforeSegmentUpdate(SegmentId s, RecordId record,
                                   Timestamp txn_ts, double now) = 0;

  // Whether transactions must maintain log sequence numbers on update
  // (costs C_lsn per updated record): true for the LSN-based algorithms
  // (FUZZYCOPY and the two-color pair without a stable log tail).
  virtual bool NeedsLsnMaintenance() const = 0;

  // Whether transactions must maintain segment timestamps tau(S) on update
  // (the COU algorithms; costs C_lsn per updated record in our model).
  virtual bool NeedsTimestampMaintenance() const = 0;
};

// Hooks for an engine with checkpointing disabled: no waits, no aborts, no
// extra bookkeeping.
class NullCheckpointHooks : public CheckpointHooks {
 public:
  double EarliestExecutionTime(const std::vector<SegmentId>&,
                               double now) const override {
    return now;
  }
  bool AdmitAccess(const std::vector<SegmentId>&, double) override {
    return true;
  }
  void BeforeSegmentUpdate(SegmentId, RecordId, Timestamp, double) override {}
  bool NeedsLsnMaintenance() const override { return false; }
  bool NeedsTimestampMaintenance() const override { return false; }
};

}  // namespace mmdb

#endif  // MMDB_TXN_CHECKPOINT_HOOKS_H_
