#include "txn/txn_manager.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"
#include "util/string_util.h"

namespace mmdb {

TxnManager::TxnManager(Database* db, SegmentTable* segments, LogManager* log,
                       TimestampOracle* timestamps, CpuMeter* meter,
                       const SystemParams& params, const ShardLayout* shards)
    : db_(db),
      segments_(segments),
      log_(log),
      meter_(meter),
      params_(params),
      hooks_(&null_hooks_),
      shards_(shards != nullptr
                  ? *shards
                  : ShardLayout(1, static_cast<uint32_t>(
                                       params.db.num_segments()))),
      locks_(shards_.shards, params.db.records_per_segment()),
      timestamps_(timestamps),
      shard_commits_(shards_.shards, 0) {}

void TxnManager::set_hooks(CheckpointHooks* hooks) {
  hooks_ = hooks != nullptr ? hooks : &null_hooks_;
}

void TxnManager::set_obs(MetricsRegistry* registry, Tracer* tracer) {
  tracer_ = tracer;
  locks_.set_obs(registry);
  if (registry == nullptr) return;
  m_commits_ = registry->counter("txn.commits");
  m_user_aborts_ = registry->counter("txn.user_aborts");
  m_lock_aborts_ = registry->counter("txn.lock_aborts");
  m_color_aborts_ = registry->counter("txn.color_aborts");
}

Status TxnManager::AcquireLock(Transaction* txn, RecordId record,
                               LockManager::Mode mode, double now) {
  Status lock = locks_.Acquire(txn->id, record, mode);
  if (!lock.ok()) {
    txn->abort_cause = TxnAbortCause::kLockConflict;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventType::kLockConflict, now, 0.0,
                      static_cast<int64_t>(txn->id),
                      static_cast<int64_t>(record));
    }
  }
  return lock;
}

Transaction* TxnManager::Begin(double now) {
  auto txn = std::make_unique<Transaction>();
  txn->id = next_txn_id_++;
  txn->start_ts = timestamps_->Next();
  txn->begin_time = now;
  Transaction* raw = txn.get();
  active_[raw->id] = std::move(txn);
  return raw;
}

Status TxnManager::CheckColors(Transaction* txn, SegmentId segment,
                               double now) {
  if (std::find(txn->touched_segments.begin(), txn->touched_segments.end(),
                segment) == txn->touched_segments.end()) {
    txn->touched_segments.push_back(segment);
  }
  if (!hooks_->AdmitAccess(txn->touched_segments, now)) {
    txn->abort_cause = TxnAbortCause::kColorViolation;
    return AbortedError(StringPrintf(
        "txn %llu violates the two-color constraint",
        static_cast<unsigned long long>(txn->id)));
  }
  return Status::OK();
}

Status TxnManager::Read(Transaction* txn, RecordId record, std::string* out,
                        double now) {
  assert(txn->state == TxnState::kActive);
  if (record >= db_->num_records()) {
    return OutOfRangeError("record id out of range");
  }
  Status lock = AcquireLock(txn, record, LockManager::Mode::kShared, now);
  if (!lock.ok()) return lock;
  txn->locked_records.push_back(record);
  MMDB_RETURN_IF_ERROR(CheckColors(txn, db_->SegmentOf(record), now));

  auto it = txn->pending.find(record);
  if (it != txn->pending.end()) {
    *out = it->second;  // read-your-writes
  } else {
    std::string_view v = db_->ReadRecord(record);
    out->assign(v.data(), v.size());
    // Read-your-deltas: overlay this transaction's pending additions.
    for (const auto& [key, delta] : txn->pending_deltas) {
      if (key.first != record) continue;
      uint64_t field = DecodeFixed64(out->data() + key.second);
      EncodeFixed64(out->data() + key.second,
                    field + static_cast<uint64_t>(delta));
    }
  }
  return Status::OK();
}

Status TxnManager::Write(Transaction* txn, RecordId record,
                         std::string_view image, double now) {
  assert(txn->state == TxnState::kActive);
  if (record >= db_->num_records()) {
    return OutOfRangeError("record id out of range");
  }
  if (image.size() != db_->record_bytes()) {
    return InvalidArgumentError(StringPrintf(
        "record image must be %zu bytes, got %zu", db_->record_bytes(),
        image.size()));
  }
  for (const auto& [key, d] : txn->pending_deltas) {
    if (key.first == record) {
      return FailedPreconditionError(
          "record already has delta operations in this transaction");
    }
  }
  Status lock = AcquireLock(txn, record, LockManager::Mode::kExclusive, now);
  if (!lock.ok()) return lock;
  txn->locked_records.push_back(record);
  MMDB_RETURN_IF_ERROR(CheckColors(txn, db_->SegmentOf(record), now));

  txn->pending[record] = std::string(image);
  return Status::OK();
}

Status TxnManager::WriteDelta(Transaction* txn, RecordId record,
                              uint32_t field_offset, int64_t delta,
                              double now) {
  assert(txn->state == TxnState::kActive);
  if (record >= db_->num_records()) {
    return OutOfRangeError("record id out of range");
  }
  if (field_offset + 8 > db_->record_bytes()) {
    return InvalidArgumentError(
        "delta field does not fit within the record");
  }
  if (txn->pending.count(record) > 0) {
    return FailedPreconditionError(
        "record already has a full-image write in this transaction");
  }
  Status lock = AcquireLock(txn, record, LockManager::Mode::kExclusive, now);
  if (!lock.ok()) return lock;
  txn->locked_records.push_back(record);
  MMDB_RETURN_IF_ERROR(CheckColors(txn, db_->SegmentOf(record), now));

  txn->pending_deltas[{record, field_offset}] += delta;
  return Status::OK();
}

StatusOr<Lsn> TxnManager::Commit(Transaction* txn, double now) {
  assert(txn->state == TxnState::kActive);

  // Emit the REDO group: update records followed by the commit record, as
  // one contiguous block (commit-time logging under the shadow-copy
  // scheme). Each update frame goes to the WAL stream of its segment's
  // shard; the commit record lands on the transaction's home shard — the
  // shard of its first emitted update — so replay finds it behind every
  // frame it covers on that stream, and cross-shard frames resolve
  // through the global LSN order.
  uint32_t home_shard = 0;
  bool home_set = false;
  for (const auto& [record, image] : txn->pending) {
    uint32_t shard = shards_.ShardOfSegment(db_->SegmentOf(record));
    if (!home_set) {
      home_shard = shard;
      home_set = true;
    }
    LogRecord update = LogRecord::Update(txn->id, record, image);
    log_->Append(&update, now, shard);
  }
  for (const auto& [key, delta] : txn->pending_deltas) {
    uint32_t shard = shards_.ShardOfSegment(db_->SegmentOf(key.first));
    if (!home_set) {
      home_shard = shard;
      home_set = true;
    }
    LogRecord op = LogRecord::Delta(txn->id, key.first, key.second, delta);
    log_->Append(&op, now, shard);
  }
  LogRecord commit = LogRecord::Commit(txn->id);
  Lsn commit_lsn = log_->Append(&commit, now, home_shard);

  // Install the shadow copies. BeforeSegmentUpdate lets a running COU
  // checkpoint preserve the pre-update image (Figure 3.2). The write-ahead
  // requirement is carried by update_lsn = commit_lsn: a checkpointer may
  // flush the segment only once the commit record is durable, so no
  // uncommitted or non-redoable state can reach the backup.
  const bool lsn_cost = hooks_->NeedsLsnMaintenance();
  const bool ts_cost = hooks_->NeedsTimestampMaintenance();
  for (const auto& [record, image] : txn->pending) {
    SegmentId seg = db_->SegmentOf(record);
    hooks_->BeforeSegmentUpdate(seg, record, txn->start_ts, now);
    db_->WriteRecord(record, image);
    segments_->MarkDirty(seg);
    segments_->set_timestamp(seg, txn->start_ts);
    segments_->set_update_lsn(seg, commit_lsn);
    if (lsn_cost) {
      meter_->Charge(CpuCategory::kSyncLsn,
                     static_cast<double>(params_.costs.lsn));
    }
    if (ts_cost) {
      meter_->Charge(CpuCategory::kSyncLsn,
                     static_cast<double>(params_.costs.lsn));
    }
  }

  for (const auto& [key, delta] : txn->pending_deltas) {
    const auto& [record, field_offset] = key;
    SegmentId seg = db_->SegmentOf(record);
    hooks_->BeforeSegmentUpdate(seg, record, txn->start_ts, now);
    std::string image(db_->ReadRecord(record));
    uint64_t field = DecodeFixed64(image.data() + field_offset);
    EncodeFixed64(image.data() + field_offset,
                  field + static_cast<uint64_t>(delta));
    db_->WriteRecord(record, image);
    segments_->MarkDirty(seg);
    segments_->set_timestamp(seg, txn->start_ts);
    segments_->set_update_lsn(seg, commit_lsn);
    if (lsn_cost) {
      meter_->Charge(CpuCategory::kSyncLsn,
                     static_cast<double>(params_.costs.lsn));
    }
    if (ts_cost) {
      meter_->Charge(CpuCategory::kSyncLsn,
                     static_cast<double>(params_.costs.lsn));
    }
  }

  meter_->Charge(CpuCategory::kTxnLogic,
                 static_cast<double>(params_.txn.instructions));

  locks_.ReleaseAll(txn->id, txn->locked_records);
  txn->state = TxnState::kCommitted;
  ++commits_;
  ++shard_commits_[home_shard];
  if (m_commits_ != nullptr) m_commits_->Increment();
  active_.erase(txn->id);
  return commit_lsn;
}

void TxnManager::Abort(Transaction* txn, AbortReason reason, double now) {
  assert(txn->state == TxnState::kActive);
  LogRecord abort = LogRecord::Abort(txn->id);
  log_->Append(&abort, now);

  switch (reason) {
    case AbortReason::kUser:
      meter_->Charge(CpuCategory::kTxnLogic,
                     static_cast<double>(params_.txn.instructions));
      ++user_aborts_;
      if (m_user_aborts_ != nullptr) m_user_aborts_->Increment();
      break;
    case AbortReason::kLockConflict:
      meter_->Charge(CpuCategory::kTxnLogic,
                     static_cast<double>(params_.txn.instructions));
      ++lock_aborts_;
      if (m_lock_aborts_ != nullptr) m_lock_aborts_->Increment();
      break;
    case AbortReason::kColorViolation:
      // The paper's dominant two-color cost: the attempt's work is wasted
      // and the transaction reruns from scratch.
      meter_->Charge(CpuCategory::kTxnRerun,
                     static_cast<double>(params_.txn.instructions));
      ++color_aborts_;
      if (m_color_aborts_ != nullptr) m_color_aborts_->Increment();
      break;
  }

  locks_.ReleaseAll(txn->id, txn->locked_records);
  txn->state = TxnState::kAborted;
  active_.erase(txn->id);
}

std::vector<ActiveTxnEntry> TxnManager::ActiveTxnList() const {
  std::vector<ActiveTxnEntry> list;
  list.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    list.push_back(ActiveTxnEntry{id, kInvalidLsn});
  }
  std::sort(list.begin(), list.end(),
            [](const ActiveTxnEntry& a, const ActiveTxnEntry& b) {
              return a.txn_id < b.txn_id;
            });
  return list;
}

void TxnManager::Reset() {
  active_.clear();
  locks_.Clear();
}

}  // namespace mmdb
