#ifndef MMDB_TXN_TIMESTAMPS_H_
#define MMDB_TXN_TIMESTAMPS_H_

#include "util/types.h"

namespace mmdb {

// Dense logical timestamp source. Transactions draw tau(T) at Begin and
// COU checkpoints draw tau(CH) when they start (Section 3.2.2); comparing
// these decides when a segment's pre-checkpoint image must be preserved.
class TimestampOracle {
 public:
  TimestampOracle() : next_(1) {}

  // Returns a fresh timestamp, strictly greater than all earlier ones.
  Timestamp Next() { return next_++; }

  // Largest timestamp issued so far (0 if none).
  Timestamp Current() const { return next_ - 1; }

  void Reset() { next_ = 1; }

 private:
  Timestamp next_;
};

}  // namespace mmdb

#endif  // MMDB_TXN_TIMESTAMPS_H_
