#ifndef MMDB_RECOVERY_RECOVERY_MANAGER_H_
#define MMDB_RECOVERY_RECOVERY_MANAGER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "backup/backup_store.h"
#include "env/env.h"
#include "obs/audit.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "sim/cost_model.h"
#include "sim/cpu_meter.h"
#include "storage/database.h"
#include "storage/segment_table.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/types.h"
#include "wal/log_reader.h"

namespace mmdb {

// What system-failure recovery did and how long each phase took on the
// modeled hardware. `total_seconds` is the paper's recovery-time metric:
// read the backup database into memory plus read (and replay) the needed
// portion of the log (Section 4).
//
// Two clocks coexist here. The modeled fields (backup_read_seconds,
// log_read_seconds, replay_cpu_seconds, total_seconds) are virtual-clock
// quantities computed from the cost model and are BIT-IDENTICAL for any
// recovery_threads setting — parallelizing the real work does not change
// what the simulated 1989 hardware would have done. The wall fields
// (`*_wall_seconds`, `thread_busy_seconds`) measure the real CPU doing
// that work and are the quantity recovery_bench sweeps; they are
// machine-dependent and excluded from every determinism comparison
// (IsWallClockField in obs/bench_diff.h).
struct RecoveryStats {
  CheckpointId checkpoint_id = 0;  // checkpoint restored (0 = cold start)
  uint32_t copy = 0;

  double backup_read_seconds = 0.0;
  double log_read_seconds = 0.0;
  double replay_cpu_seconds = 0.0;
  double total_seconds = 0.0;

  // Successful segment reads applied to the database, across BOTH load
  // attempts when recovery fell back (first-attempt survivors plus every
  // segment re-read from the older copy) — a sum, so it is identical for
  // any thread count.
  uint64_t segments_loaded = 0;
  // Segments re-read from the older copy after the newest copy failed
  // (num_segments when delta records forced a full reload; the failed-set
  // size otherwise). 0 when no fallback occurred.
  uint64_t segments_retried = 0;
  uint64_t log_bytes_read = 0;
  uint64_t records_scanned = 0;
  uint64_t updates_applied = 0;
  uint64_t txns_redone = 0;

  // The newest backup copy had an unreadable or CRC-bad segment and the
  // previous checkpoint's copy was restored instead (replaying the longer
  // log suffix).
  bool fell_back_to_older_copy = false;

  // --- real wall clock (machine-dependent; see the struct comment) ------
  uint32_t threads_used = 1;           // 1 = exact legacy serial path
  double backup_read_wall_seconds = 0.0;
  double log_scan_wall_seconds = 0.0;  // classification scan (pass 1)
  double replay_wall_seconds = 0.0;    // partitioned REDO apply (pass 2)
  // Per-thread busy time summed across the three phases: slot i is pool
  // worker i (serial path: one slot, the calling thread).
  std::vector<double> thread_busy_seconds;
};

// Outputs the engine needs to resume normal processing after recovery.
struct RecoveryResult {
  RecoveryStats stats;
  Lsn last_lsn = kInvalidLsn;      // highest LSN found in the log
  uint64_t log_valid_bytes = 0;    // well-formed log prefix length
  // Per-stream logical end offsets of the merged prefix (one entry per
  // log stream; see LogReader::OpenStreams) — what LogManager needs to
  // reopen the stream files after recovery.
  std::vector<uint64_t> stream_valid_bytes;
  // Id of the newest end-checkpoint marker in the log (0 if none). Equals
  // stats.checkpoint_id except when recovery fell back to the older copy;
  // the engine must then skip past this id so a stale end marker is never
  // paired with a half-overwritten backup copy.
  CheckpointId newest_end_id = 0;
  // Per-segment provenance of the restored image (DESIGN.md §18): which
  // checkpoint/copy supplied each segment's bytes, whether it was re-read
  // from the older copy, and the frames/LSNs/streams replayed into it.
  // Sized num_segments; empty only when recovery itself failed.
  std::vector<SegmentLineage> lineage;
};

// Everything instant recovery (DESIGN.md §19) needs to serve transactions
// before a single segment byte has been reloaded: the merged immutable log
// snapshot, the committed set, the per-segment REDO frame buckets, the
// restore decision, and a RecoveryResult whose modeled stats and lineage
// already equal what blocking recovery would have produced on the clean
// path (the closed-form quantities need no segment bytes). Produced by
// RecoveryManager::PlanInstant and consumed by InstantRecovery, which
// materializes segments on demand against this plan.
struct InstantRecoveryPlan {
  // Fully populated clean-path outputs: modeled stats, last LSN, stream
  // offsets, newest end id, and per-segment lineage. A mid-service
  // older-copy fallback later refines stats and the failed segment's
  // lineage entry (exactly as blocking recovery's fallback would).
  RecoveryResult result;

  // Placeholder-initialized (an empty log) until PlanInstantImpl moves
  // the merged stream view in; LogReader has no default constructor.
  LogReader reader{std::string()};
  bool have_checkpoint = false;
  CheckpointId restore_id = 0;
  uint32_t restore_copy = 0;
  uint64_t replay_from_offset = 0;
  // Frame index of replay_from_offset in `reader` (0 when the log is
  // empty) — the start of the main replay suffix.
  std::size_t start_frame = 0;
  // Transactions with a commit record in the replay suffix.
  std::unordered_set<TxnId> committed;
  // Per-segment frame indices of the suffix's UPDATE/DELTA records in log
  // order, plus one overflow bucket (index num_segments) that eager
  // validation has proven holds only uncommitted frames.
  std::vector<std::vector<std::size_t>> buckets;
  // Non-empty bucket count (the blocking path's replay fan-out width),
  // recorded in the kRecoveryFanout trace event at finalization.
  uint64_t replay_buckets = 0;
};

// Rebuilds the primary (memory-resident) database after a system failure
// (Section 3.3): loads the last complete backup copy named by the
// checkpoint metadata, then REDO-replays the log forward from that
// checkpoint's begin marker, applying the updates of committed
// transactions only. Works identically for every checkpoint algorithm —
// fuzzy backups are repaired by the same replay that rolls consistent
// backups forward.
//
// Cold start: if no checkpoint ever completed, the database is rebuilt
// from an empty image by replaying the entire log.
//
// Parallel pipeline (DESIGN.md §14): when constructed with a ThreadPool
// the three data-heavy stages fan out — segment reloads are chunked
// across workers (segments are independent byte ranges), the
// classification scan decodes disjoint frame ranges concurrently, and
// REDO replay is partitioned by segment id (updates to one segment stay
// in log order, so the restored bytes are identical to sequential
// replay). The serial path (null pool) runs the SAME algorithm inline
// over the same chunk decomposition, which is why every deterministic
// stat is bit-identical across thread counts.
class RecoveryManager {
 public:
  // `metrics` and `tracer` are optional sinks for the phase breakdown
  // (backup reload vs log read vs replay); either may be null. `pool` is
  // an optional worker pool for the parallel pipeline — null selects the
  // serial path. The pool is borrowed, not owned, and may serve many
  // recoveries.
  RecoveryManager(Env* env, const SystemParams& params, CpuMeter* meter,
                  MetricsRegistry* metrics = nullptr, Tracer* tracer = nullptr,
                  ThreadPool* pool = nullptr);

  // `backup` must be Open()ed; `db`/`segments` are overwritten. `now` is
  // the virtual time at which recovery starts (the crash instant).
  // `log_paths` is the per-shard stream file list (one path = the classic
  // single log); the streams are LSN-merged into one logical log before
  // the usual three-phase replay, so every downstream step — marker
  // reconciliation, offset arithmetic, partitioned REDO — is stream-count
  // agnostic.
  StatusOr<RecoveryResult> Recover(BackupStore* backup,
                                   const std::vector<std::string>& log_paths,
                                   Database* db, SegmentTable* segments,
                                   double now);

  // Single-stream convenience overload (the pre-shard signature).
  StatusOr<RecoveryResult> Recover(BackupStore* backup,
                                   const std::string& log_path, Database* db,
                                   SegmentTable* segments, double now) {
    return Recover(backup, std::vector<std::string>{log_path}, db, segments,
                   now);
  }

  // Instant-recovery entry point (DESIGN.md §19): runs phase 1 (stream
  // merge, metadata/log reconciliation) plus the classification scan and
  // an eager validation pass over every bucketed frame, but reads NO
  // segment bytes and applies NO update. The returned plan's modeled
  // stats are bit-identical to what Recover() computes on the clean path
  // — phase costs are closed-form in the cost model — and the recovery
  // CPU is charged to the meter here, once. `segments` is reset to the
  // conservative post-recovery control state (all dirty). On failure the
  // same recovery.error event Recover() would journal is journaled; on
  // success the audit chain is left OPEN — the engine journals the
  // lineage and recovery.end when the on-demand drain completes.
  StatusOr<InstantRecoveryPlan> PlanInstant(
      BackupStore* backup, const std::vector<std::string>& log_paths,
      Database* db, SegmentTable* segments, double now);

  // Optional provenance journal (DESIGN.md §18). When set, Recover()
  // journals the stream merge outcome, the restore plan, any older-copy
  // fallback, the per-segment lineage, and the final outcome (or error).
  // Journaling never changes modeled stats or the recovered bytes.
  void set_audit(AuditJournal* audit) { audit_ = audit; }

  // Registry counters/timers and trace events for a finished recovery
  // (blocking: called at the end of Recover; instant: called once by the
  // engine when the on-demand drain completes, with the crash-time `now`
  // so the trace timeline matches the blocking path's).
  static void Publish(MetricsRegistry* metrics, Tracer* tracer,
                      const RecoveryStats& stats, double now,
                      uint64_t replay_buckets);

  // The worker count recovery should use: the MMDB_RECOVERY_THREADS
  // environment variable (a positive count) when set and parseable,
  // otherwise `configured` (EngineOptions::recovery_threads), with 0
  // meaning hardware concurrency. Always >= 1; 1 = serial path.
  static uint32_t ResolveThreads(uint32_t configured);

 private:
  // Phase-1 outcome shared by the blocking and instant paths: the merged
  // reader plus the restore decision (which checkpoint/copy, where replay
  // starts). BuildRestorePlan also clears the primary, journals the
  // recovery.streams / recovery.plan events, repairs lagging metadata,
  // and seeds `result`'s lineage.
  struct RestorePlan {
    LogReader reader;
    bool have_checkpoint = false;
    CheckpointId restore_id = 0;
    uint32_t restore_copy = 0;
    uint64_t replay_from_offset = 0;
  };
  StatusOr<RestorePlan> BuildRestorePlan(
      BackupStore* backup, const std::vector<std::string>& log_paths,
      Database* db, double now, RecoveryResult* result);
  // The three-phase body; Recover() wraps it to journal the outcome
  // (recovery.lineage + recovery.end on success, recovery.error on
  // failure) exactly once per attempt.
  StatusOr<RecoveryResult> RecoverImpl(
      BackupStore* backup, const std::vector<std::string>& log_paths,
      Database* db, SegmentTable* segments, double now);
  StatusOr<InstantRecoveryPlan> PlanInstantImpl(
      BackupStore* backup, const std::vector<std::string>& log_paths,
      Database* db, SegmentTable* segments, double now);

  Env* env_;
  SystemParams params_;
  CpuMeter* meter_;
  MetricsRegistry* metrics_;
  Tracer* tracer_;
  ThreadPool* pool_;
  AuditJournal* audit_ = nullptr;
};

}  // namespace mmdb

#endif  // MMDB_RECOVERY_RECOVERY_MANAGER_H_
