#ifndef MMDB_RECOVERY_RECOVERY_MANAGER_H_
#define MMDB_RECOVERY_RECOVERY_MANAGER_H_

#include <string>

#include "backup/backup_store.h"
#include "env/env.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/cpu_meter.h"
#include "storage/database.h"
#include "storage/segment_table.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/types.h"

namespace mmdb {

// What system-failure recovery did and how long each phase took on the
// modeled hardware. `total_seconds` is the paper's recovery-time metric:
// read the backup database into memory plus read (and replay) the needed
// portion of the log (Section 4).
struct RecoveryStats {
  CheckpointId checkpoint_id = 0;  // checkpoint restored (0 = cold start)
  uint32_t copy = 0;

  double backup_read_seconds = 0.0;
  double log_read_seconds = 0.0;
  double replay_cpu_seconds = 0.0;
  double total_seconds = 0.0;

  uint64_t segments_loaded = 0;
  uint64_t log_bytes_read = 0;
  uint64_t records_scanned = 0;
  uint64_t updates_applied = 0;
  uint64_t txns_redone = 0;

  // The newest backup copy had an unreadable or CRC-bad segment and the
  // previous checkpoint's copy was restored instead (replaying the longer
  // log suffix).
  bool fell_back_to_older_copy = false;
};

// Outputs the engine needs to resume normal processing after recovery.
struct RecoveryResult {
  RecoveryStats stats;
  Lsn last_lsn = kInvalidLsn;      // highest LSN found in the log
  uint64_t log_valid_bytes = 0;    // well-formed log prefix length
  // Id of the newest end-checkpoint marker in the log (0 if none). Equals
  // stats.checkpoint_id except when recovery fell back to the older copy;
  // the engine must then skip past this id so a stale end marker is never
  // paired with a half-overwritten backup copy.
  CheckpointId newest_end_id = 0;
};

// Rebuilds the primary (memory-resident) database after a system failure
// (Section 3.3): loads the last complete backup copy named by the
// checkpoint metadata, then REDO-replays the log forward from that
// checkpoint's begin marker, applying the updates of committed
// transactions only. Works identically for every checkpoint algorithm —
// fuzzy backups are repaired by the same replay that rolls consistent
// backups forward.
//
// Cold start: if no checkpoint ever completed, the database is rebuilt
// from an empty image by replaying the entire log.
class RecoveryManager {
 public:
  // `metrics` and `tracer` are optional sinks for the phase breakdown
  // (backup reload vs log read vs replay); either may be null.
  RecoveryManager(Env* env, const SystemParams& params, CpuMeter* meter,
                  MetricsRegistry* metrics = nullptr,
                  Tracer* tracer = nullptr);

  // `backup` must be Open()ed; `db`/`segments` are overwritten. `now` is
  // the virtual time at which recovery starts (the crash instant).
  StatusOr<RecoveryResult> Recover(BackupStore* backup,
                                   const std::string& log_path, Database* db,
                                   SegmentTable* segments, double now);

 private:
  void Publish(const RecoveryStats& stats, double now);

  Env* env_;
  SystemParams params_;
  CpuMeter* meter_;
  MetricsRegistry* metrics_;
  Tracer* tracer_;
};

}  // namespace mmdb

#endif  // MMDB_RECOVERY_RECOVERY_MANAGER_H_
