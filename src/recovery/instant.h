#ifndef MMDB_RECOVERY_INSTANT_H_
#define MMDB_RECOVERY_INSTANT_H_

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "backup/backup_store.h"
#include "obs/audit.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "recovery/recovery_manager.h"
#include "sim/cost_model.h"
#include "sim/cpu_meter.h"
#include "sim/disk_model.h"
#include "storage/database.h"
#include "util/status.h"
#include "util/types.h"

namespace mmdb {

// On-demand segment recovery against an InstantRecoveryPlan (DESIGN.md
// §19). Owns the modeled backup disk array for the restart and decides,
// per segment, WHEN its backup reload completes on the virtual timeline
// (the schedule) and WHAT bytes it holds afterwards (materialization:
// backup read + bucketed REDO replay, including the segment-granular
// older-copy fallback). The two are deliberately orthogonal:
//
//   - The SCHEDULE is pure virtual-clock arithmetic on the same disk
//     array blocking recovery would have used: StartClock submits the
//     first `num_disks` segment reads at the restart instant, and each
//     completion immediately submits the next pending segment in
//     access-priority order (observed touch count descending, then
//     ascending segment id). Touch() queue-jumps an unsubmitted segment
//     to the front. Because every device is kept busy until the pending
//     set drains, the LAST completion lands exactly at
//     restart + backup_read_seconds regardless of the order in between —
//     which is why time_to_full_recovery equals the blocking path's
//     backup phase and the modeled stats stay bit-identical.
//
//   - MATERIALIZATION moves the actual bytes (Env reads + WriteRecord)
//     and consumes no virtual time: the plan already charged the replay
//     CPU and computed the phase durations in closed form. Materialize
//     is idempotent per segment and safe in any order — buckets are
//     per-segment log-order frame lists, so one segment's replay never
//     depends on another's.
//
// The engine drives both: transaction admission calls Touch (advancing
// its clock to the availability time = the recovery_wait stall), the
// post-AdvanceTime sweep calls MaterializeDue for segments whose
// background reload has completed, and DrainRecovery calls
// CompleteSchedule + MaterializeDue to finish the restart.
class InstantRecovery {
 public:
  // Why a segment is being materialized, journaled per segment in the
  // recovery.segment_on_demand audit event and the trace.
  enum class LoadTrigger : uint8_t {
    kTouch = 0,       // a transaction touched it (admission stall)
    kBackground = 1,  // its scheduled background reload completed
    kForce = 2,       // diagnostic raw read (no clock movement)
  };

  // All pointers are borrowed and must outlive this object. `metrics`,
  // `tracer` and `audit` may be null.
  InstantRecovery(InstantRecoveryPlan plan, const SystemParams& params,
                  BackupStore* backup, Database* db, CpuMeter* meter,
                  MetricsRegistry* metrics, Tracer* tracer,
                  AuditJournal* audit);

  // Starts the restart schedule at virtual time `now` (the clock position
  // right after OpenExisting returns): submits the first window of
  // background reloads. Cold start (no checkpoint) makes every segment
  // available immediately at `now`.
  void StartClock(double now);

  // Records a transaction touch of `s` (raising its background priority)
  // and returns the virtual time at which the segment's bytes are
  // available: `now` if already recovered (or cold start), otherwise the
  // completion time of its backup read — queue-jump submitted at `now`
  // if the schedule had not reached it yet. The caller stalls the
  // transaction until the returned time (the recovery_wait cause) and
  // then calls Materialize.
  double Touch(SegmentId s, double now);

  // Loads segment `s` NOW (backup read + REDO replay of its bucket),
  // falling back to the older copy on CRC/IO damage exactly as blocking
  // recovery does — refining stats and lineage identically. Idempotent;
  // `now` is only journaled. Errors are fatal to the restart (neither
  // copy readable, or the log was damaged since planning).
  Status Materialize(SegmentId s, double now, LoadTrigger trigger);

  // Materializes every segment whose scheduled background reload has
  // completed by `now`. Called from the engine's AdvanceTime sweep.
  Status MaterializeDue(double now);

  // Runs the remaining schedule to completion and returns the virtual
  // time of the last reload (== start + backup_read_seconds). Does NOT
  // materialize; the caller advances its clock there and then calls
  // MaterializeDue. Idempotent.
  double CompleteSchedule();

  bool AllLoaded() const { return loaded_count_ == num_segments_; }
  uint64_t pending_segments() const { return num_segments_ - loaded_count_; }
  bool fell_back() const { return fallback_prepared_; }
  double start_time() const { return start_; }

  // Live views of the plan's result; fallback refines stats/lineage.
  const RecoveryResult& result() const { return plan_.result; }
  const RecoveryStats& stats() const { return plan_.result.stats; }

  // On-demand load counters for the engine's availability accounting.
  uint64_t touch_loads() const { return touch_loads_; }
  uint64_t background_loads() const { return background_loads_; }
  uint64_t force_loads() const { return force_loads_; }

  // Registry counters/timers and trace events for the finished recovery,
  // with the same shapes and the crash-time `now` the blocking path uses.
  // Call once, after AllLoaded().
  void PublishFinal(double crash_now);

 private:
  // Pops schedule completions up to `t`, refilling each freed device with
  // the highest-priority pending segment.
  void AdvanceScheduleTo(double t);
  // Submits segment `s`'s backup read at `at`; records its availability.
  void SubmitSegment(SegmentId s, double at);
  // Highest-priority unsubmitted segment (touch count desc, id asc), or
  // num_segments_ when none remain.
  SegmentId PickNextPending() const;

  // First newest-copy failure: locate the previous checkpoint's begin
  // marker, scan/validate the extension frames into per-segment buckets,
  // and refine the modeled stats exactly as blocking recovery's fallback
  // would (longer log suffix, extended scan counts). Once per restart.
  Status PrepareFallback(const Status& trigger_status, SegmentId s,
                         double now);

  struct ApplyStats {
    uint64_t full_applies = 0;
    uint64_t delta_applies = 0;
    Lsn first_lsn = kInvalidLsn;
    Lsn last_lsn = kInvalidLsn;
    std::vector<uint32_t> streams;
  };
  // REDO-replays `frames` (log order) into the primary. `use_ext_committed`
  // additionally honors commits found in the fallback extension.
  Status ReplayFrames(const std::vector<std::size_t>& frames,
                      bool use_ext_committed, ApplyStats* out);

  InstantRecoveryPlan plan_;
  SystemParams params_;
  BackupStore* backup_;
  Database* db_;
  CpuMeter* meter_;
  MetricsRegistry* metrics_;
  Tracer* tracer_;
  AuditJournal* audit_;

  SegmentId num_segments_ = 0;
  double start_ = 0.0;
  bool clock_started_ = false;
  bool schedule_complete_ = false;
  double last_completion_ = 0.0;  // max availability ever scheduled

  // The restart's backup array: same parameters, fresh state — exactly
  // the array blocking recovery's phase 2 would have used.
  DiskArrayModel disks_;

  // Per-segment state. availability_ < 0 = not yet submitted.
  std::vector<double> availability_;
  std::vector<double> submit_time_;
  std::vector<uint64_t> touch_count_;
  std::vector<bool> loaded_;
  SegmentId loaded_count_ = 0;
  uint64_t unsubmitted_ = 0;

  // Min-heap of (completion time, segment) for in-flight reloads.
  using Inflight = std::pair<double, SegmentId>;
  std::priority_queue<Inflight, std::vector<Inflight>, std::greater<Inflight>>
      inflight_;
  // Segments whose reload completed (or was queue-jumped) but which may
  // not be materialized yet — MaterializeDue's work list.
  std::vector<SegmentId> due_;

  // Older-copy fallback state (lazy; see PrepareFallback).
  bool fallback_prepared_ = false;
  // DELTA records in the longer suffix forced a full reload from the
  // previous copy (every segment's provenance switches).
  bool full_reload_ = false;
  CheckpointId fallback_prev_id_ = 0;
  uint32_t fallback_prev_copy_ = 0;
  // Extension [prev begin marker, main begin marker): per-segment frame
  // buckets, the commits found there (unioned with the plan's set when
  // replaying extension frames), and the per-segment apply tallies the
  // eager validation pass computed.
  std::vector<std::vector<std::size_t>> ext_buckets_;
  std::unordered_set<TxnId> ext_committed_;
  std::vector<ApplyStats> ext_stats_;

  // Whether a segment's first materialization has been journaled/traced —
  // fallback re-materializations must not re-announce.
  std::vector<bool> announced_;

  uint64_t load_order_ = 0;  // materialization ordinal (first-touch order)
  uint64_t touch_loads_ = 0;
  uint64_t background_loads_ = 0;
  uint64_t force_loads_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_RECOVERY_INSTANT_H_
