#include "recovery/recovery_manager.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_set>
#include <utility>

#include "parallel/parallel.h"
#include "sim/disk_model.h"
#include "util/coding.h"
#include "util/string_util.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace mmdb {

namespace {

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

// Chunk size targeting ~4 chunks per worker: coarse enough that enqueue
// overhead is amortized, fine enough that a straggler chunk cannot idle
// the rest of the pool for long. The chunk DECOMPOSITION never affects
// results — every merge below is by index or a commutative reduction — so
// this is purely a scheduling knob.
std::size_t ChunkFor(std::size_t n, uint32_t threads) {
  std::size_t target = static_cast<std::size_t>(threads) * 4;
  return std::max<std::size_t>(1, (n + target - 1) / target);
}

// Per-thread busy-time sink for the wall-clock breakdown. Nanosecond
// integer accumulators (not atomic<double>) so concurrent adds stay
// lock-free and exact.
class BusyMeter {
 public:
  explicit BusyMeter(uint32_t threads) : ns_(threads) {}

  // Charges the elapsed time since `start` to the calling thread's slot.
  void Charge(WallClock::time_point start) {
    int w = ThreadPool::CurrentWorkerIndex();
    std::size_t slot = w < 0 ? 0 : static_cast<std::size_t>(w);
    if (slot >= ns_.size()) slot = 0;
    auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
        WallClock::now() - start);
    ns_[slot].fetch_add(static_cast<uint64_t>(d.count()),
                        std::memory_order_relaxed);
  }

  std::vector<double> Seconds() const {
    std::vector<double> out;
    out.reserve(ns_.size());
    for (const auto& v : ns_) {
      out.push_back(static_cast<double>(v.load(std::memory_order_relaxed)) *
                    1e-9);
    }
    return out;
  }

 private:
  std::vector<std::atomic<uint64_t>> ns_;
};

}  // namespace

RecoveryManager::RecoveryManager(Env* env, const SystemParams& params,
                                 CpuMeter* meter, MetricsRegistry* metrics,
                                 Tracer* tracer, ThreadPool* pool)
    : env_(env),
      params_(params),
      meter_(meter),
      metrics_(metrics),
      tracer_(tracer),
      pool_(pool) {}

uint32_t RecoveryManager::ResolveThreads(uint32_t configured) {
  const char* env = std::getenv("MMDB_RECOVERY_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      return static_cast<uint32_t>(parsed);
    }
  }
  if (configured != 0) return configured;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

void RecoveryManager::Publish(MetricsRegistry* metrics, Tracer* tracer,
                              const RecoveryStats& stats, double now,
                              uint64_t replay_buckets) {
  if (metrics != nullptr) {
    metrics->counter("recovery.runs")->Increment();
    metrics->counter("recovery.segments_loaded")
        ->Increment(stats.segments_loaded);
    metrics->counter("recovery.segments_retried")
        ->Increment(stats.segments_retried);
    metrics->counter("recovery.log_bytes_read")
        ->Increment(stats.log_bytes_read);
    metrics->counter("recovery.updates_applied")
        ->Increment(stats.updates_applied);
    metrics->counter("recovery.txns_redone")->Increment(stats.txns_redone);
    if (stats.fell_back_to_older_copy) {
      metrics->counter("recovery.copy_fallbacks")->Increment();
    }
    metrics->timer("recovery.backup_read_seconds")
        ->Record(stats.backup_read_seconds);
    metrics->timer("recovery.log_read_seconds")
        ->Record(stats.log_read_seconds);
    metrics->timer("recovery.replay_cpu_seconds")
        ->Record(stats.replay_cpu_seconds);
    metrics->timer("recovery.total_seconds")->Record(stats.total_seconds);
  }
  if (tracer != nullptr) {
    tracer->Record(
        TraceEventType::kRecoveryPhase, now, stats.backup_read_seconds,
        static_cast<int64_t>(RecoveryPhase::kBackupLoad),
        static_cast<int64_t>(stats.segments_loaded),
        static_cast<int64_t>(stats.copy));
    tracer->Record(TraceEventType::kRecoveryPhase, now,
                   stats.log_read_seconds,
                   static_cast<int64_t>(RecoveryPhase::kLogRead),
                   static_cast<int64_t>(stats.log_bytes_read));
    tracer->Record(TraceEventType::kRecoveryPhase, now,
                   stats.replay_cpu_seconds,
                   static_cast<int64_t>(RecoveryPhase::kReplay),
                   static_cast<int64_t>(stats.updates_applied),
                   static_cast<int64_t>(stats.txns_redone));
    tracer->Record(TraceEventType::kRecoveryFanout, now, 0.0,
                   static_cast<int64_t>(stats.threads_used),
                   static_cast<int64_t>(stats.segments_loaded),
                   static_cast<int64_t>(replay_buckets));
    tracer->Record(TraceEventType::kRecoveryEnd, now, stats.total_seconds,
                   static_cast<int64_t>(stats.checkpoint_id));
  }
}

StatusOr<RecoveryResult> RecoveryManager::Recover(
    BackupStore* backup, const std::vector<std::string>& log_paths,
    Database* db, SegmentTable* segments, double now) {
  StatusOr<RecoveryResult> result =
      RecoverImpl(backup, log_paths, db, segments, now);
  if (audit_ != nullptr) {
    if (!result.ok()) {
      const std::string error = result.status().ToString();
      audit_->Record("recovery.error", now, [&](JsonWriter& w) {
        w.Key("error");
        w.String(error);
      });
      audit_->Sync();
    } else {
      const RecoveryResult& r = *result;
      audit_->Record("recovery.lineage", now, [&](JsonWriter& w) {
        w.Key("lineage");
        WriteLineageJson(r.lineage, &w);
      });
      audit_->Record("recovery.end", now, [&](JsonWriter& w) {
        w.Key("checkpoint");
        w.Uint(r.stats.checkpoint_id);
        w.Key("copy");
        w.Uint(r.stats.copy);
        w.Key("fell_back");
        w.Bool(r.stats.fell_back_to_older_copy);
        w.Key("last_lsn");
        w.Uint(r.last_lsn);
        w.Key("applies");
        w.Uint(r.stats.updates_applied);
        w.Key("txns");
        w.Uint(r.stats.txns_redone);
      });
      audit_->Sync();
    }
  }
  return result;
}

StatusOr<RecoveryManager::RestorePlan> RecoveryManager::BuildRestorePlan(
    BackupStore* backup, const std::vector<std::string>& log_paths,
    Database* db, double now, RecoveryResult* result) {
  // --- Phase 1: decide which checkpoint to restore ----------------------
  // Two sources name the last complete checkpoint: the metadata file
  // (renamed into place after the end marker is durable) and the log's own
  // backward scan for an end-checkpoint marker (the paper's rule). The
  // metadata may legitimately lag: a crash can land after the end marker
  // reached stable storage but before the metadata rename, and failed
  // metadata rewrites degrade gracefully (the checkpoint still counts), so
  // the lag can span several checkpoints. The log is then ahead, and the
  // newer checkpoint IS complete (its segment writes all finished before
  // its end marker was cut), so the log wins. Metadata NEWER than the
  // log's last end marker is corruption.
  db->Clear();
  MMDB_ASSIGN_OR_RETURN(
      LogReader reader,
      LogReader::OpenStreams(env_, log_paths, &result->stream_valid_bytes));
  result->log_valid_bytes = reader.valid_bytes();
  if (audit_ != nullptr) {
    // What the stream merge salvaged: the valid prefix per stream, the
    // CRC-clean frames each stream lost past the merge frontier, and
    // whether a gang batch was torn across streams at crash time.
    audit_->Record("recovery.streams", now, [&](JsonWriter& w) {
      w.Key("valid_bytes");
      w.BeginArray();
      for (uint64_t v : result->stream_valid_bytes) w.Uint(v);
      w.EndArray();
      w.Key("dropped_frames");
      w.BeginArray();
      for (uint64_t v : reader.stream_dropped_frames()) w.Uint(v);
      w.EndArray();
      w.Key("torn_gang");
      w.Bool(reader.torn_gang());
      w.Key("gap_lsn");
      w.Uint(reader.torn_gang_lsn());
    });
  }

  StatusOr<CheckpointMeta> meta = backup->ReadMeta();
  if (!meta.ok() && !meta.status().IsNotFound()) return meta.status();
  StatusOr<LogReader::CheckpointMarker> marker =
      reader.FindLastCompleteCheckpoint();
  if (!marker.ok() && !marker.status().IsNotFound()) return marker.status();

  bool have_checkpoint = false;
  CheckpointId restore_id = 0;
  uint32_t restore_copy = 0;
  uint64_t replay_from_offset = 0;
  // Which source named the restored checkpoint: "meta" when metadata and
  // log agree, "log" when the log's end marker overruled lagging/missing
  // metadata, "none" for a cold start.
  const char* plan_source = "none";
  if (marker.ok()) {
    if (meta.ok() && meta->checkpoint_id == marker->checkpoint_id) {
      if (meta->log_offset != marker->begin_offset) {
        return CorruptionError(StringPrintf(
            "checkpoint metadata offset %llu disagrees with the log's "
            "begin marker at %llu for checkpoint %llu",
            static_cast<unsigned long long>(meta->log_offset),
            static_cast<unsigned long long>(marker->begin_offset),
            static_cast<unsigned long long>(meta->checkpoint_id)));
      }
      restore_copy = meta->copy;
      plan_source = "meta";
    } else if (!meta.ok() || meta->checkpoint_id < marker->checkpoint_id) {
      // Metadata lags the log (or is missing for the very first
      // checkpoint): a crash can land after the end marker reached stable
      // storage but before the metadata rename, and with graceful
      // degradation of failed metadata rewrites the lag can exceed one
      // checkpoint. The end marker always certifies a complete copy, so
      // trust the log and repair the metadata so later restarts (and log
      // truncation) see a consistent pair.
      restore_copy = BackupStore::CopyFor(marker->checkpoint_id);
      CheckpointMeta repaired;
      repaired.checkpoint_id = marker->checkpoint_id;
      repaired.copy = restore_copy;
      repaired.log_offset = marker->begin_offset;
      repaired.begin_lsn = marker->begin_record.lsn;
      repaired.tau = marker->begin_record.timestamp;
      MMDB_RETURN_IF_ERROR(backup->CommitCheckpoint(repaired));
      plan_source = "log";
    } else {
      return CorruptionError(StringPrintf(
          "checkpoint metadata (id=%llu) and log (id=%llu) are "
          "irreconcilable",
          static_cast<unsigned long long>(
              meta.ok() ? meta->checkpoint_id : 0),
          static_cast<unsigned long long>(marker->checkpoint_id)));
    }
    have_checkpoint = true;
    restore_id = marker->checkpoint_id;
    replay_from_offset = marker->begin_offset;
    result->newest_end_id = marker->checkpoint_id;
    // Fuzzy checkpoints may require scanning back to the earliest
    // transaction active at the marker. Under commit-time logging an
    // active transaction has no log records yet, so the extension is
    // always empty; verify that invariant.
    for (const ActiveTxnEntry& e : marker->begin_record.active_txns) {
      if (e.first_lsn != kInvalidLsn) {
        return NotSupportedError(
            "active transaction with pre-marker log records; update-time "
            "logging is not used by this engine");
      }
    }
  } else if (meta.ok()) {
    // The metadata survived but the log lost the completion marker the
    // rename was ordered after: impossible without corruption.
    return CorruptionError(
        "checkpoint metadata names a checkpoint but the log has no "
        "completed checkpoint");
  }
  if (audit_ != nullptr) {
    audit_->Record("recovery.plan", now, [&](JsonWriter& w) {
      w.Key("checkpoint");
      w.Uint(restore_id);
      w.Key("copy");
      w.Uint(restore_copy);
      w.Key("begin_offset");
      w.Uint(replay_from_offset);
      w.Key("source");
      w.String(plan_source);
    });
  }

  // Seed every segment's lineage with the plan; the fallback protocol and
  // REDO replay refine individual entries.
  result->lineage.assign(db->num_segments(), SegmentLineage{});
  if (have_checkpoint) {
    for (SegmentLineage& l : result->lineage) {
      l.checkpoint_id = restore_id;
      l.copy = restore_copy;
    }
  }

  RestorePlan plan{std::move(reader)};
  plan.have_checkpoint = have_checkpoint;
  plan.restore_id = restore_id;
  plan.restore_copy = restore_copy;
  plan.replay_from_offset = replay_from_offset;
  return plan;
}

StatusOr<RecoveryResult> RecoveryManager::RecoverImpl(
    BackupStore* backup, const std::vector<std::string>& log_paths,
    Database* db, SegmentTable* segments, double now) {
  RecoveryResult result;
  RecoveryStats& stats = result.stats;
  const uint32_t threads =
      pool_ != nullptr ? static_cast<uint32_t>(pool_->num_threads()) : 1;
  stats.threads_used = threads;
  BusyMeter busy(threads);

  // Fresh disk service state: the array restarts with the machine.
  DiskArrayModel backup_disks(params_.disk);
  DiskArrayModel log_disks(params_.disk.LogArray());

  MMDB_ASSIGN_OR_RETURN(RestorePlan plan, BuildRestorePlan(backup, log_paths,
                                                           db, now, &result));
  LogReader& reader = plan.reader;
  const bool have_checkpoint = plan.have_checkpoint;
  CheckpointId restore_id = plan.restore_id;
  uint32_t restore_copy = plan.restore_copy;
  uint64_t replay_from_offset = plan.replay_from_offset;

  // --- Phase 2: load the chosen backup copy -----------------------------
  // Segments are independent byte ranges of both the copy file and the
  // primary, so the reads+CRC checks fan out across the pool in chunks.
  // Per-segment failures are COLLECTED (not fail-fast): the fallback
  // protocol needs the complete failed set, and collecting makes the
  // outcome independent of worker scheduling. Modeled disk submissions
  // happen serially afterwards, one per successful read at time `now` —
  // exactly the sequence the serial path issued, so the modeled
  // backup_read_seconds is bit-identical for any thread count.
  WallClock::time_point backup_wall_start = WallClock::now();
  double backup_done = now;
  if (have_checkpoint) {
    // Reads segments `ids` of `copy_idx`, applying each success to the
    // primary. Failures land in `failures` ordered by segment id.
    struct SegmentFailure {
      SegmentId segment;
      Status status;
    };
    auto load_segments = [&](uint32_t copy_idx,
                             const std::vector<SegmentId>& ids,
                             std::vector<SegmentFailure>* failures)
        -> Status {
      std::vector<Status> seg_status(ids.size());
      Status fan = ParallelFor(
          pool_, ids.size(), ChunkFor(ids.size(), threads),
          [&](std::size_t begin, std::size_t end) -> Status {
            WallClock::time_point start = WallClock::now();
            std::string image;
            for (std::size_t i = begin; i < end; ++i) {
              seg_status[i] = backup->ReadSegment(copy_idx, ids[i], &image);
              if (seg_status[i].ok()) db->WriteSegment(ids[i], image);
            }
            busy.Charge(start);
            return Status::OK();
          });
      MMDB_RETURN_IF_ERROR(fan);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (seg_status[i].ok()) {
          backup_disks.Submit(now, params_.db.segment_words);
          ++stats.segments_loaded;
        } else {
          failures->push_back(SegmentFailure{ids[i], seg_status[i]});
        }
      }
      return Status::OK();
    };

    std::vector<SegmentId> all_segments(db->num_segments());
    for (SegmentId s = 0; s < db->num_segments(); ++s) all_segments[s] = s;
    std::vector<SegmentFailure> failures;
    MMDB_RETURN_IF_ERROR(load_segments(restore_copy, all_segments, &failures));
    for (const SegmentFailure& f : failures) {
      // Only CRC damage and device faults are survivable via the older
      // copy; anything else (bad geometry, programming error) is fatal.
      if (!f.status.IsCorruption() && !f.status.IsIoError()) {
        return f.status;
      }
    }
    if (!failures.empty()) {
      // The newest copy has CRC-bad or unreadable segments (a torn
      // checkpoint tail, scribbled in-flight slots, or device faults).
      // The ping-pong protocol guarantees the PREVIOUS checkpoint's copy
      // was complete before this one started overwriting the other file,
      // so fall back to it and replay the longer log suffix from its
      // begin marker — which must still be in the log, since truncation
      // only ever cuts before the newest complete checkpoint's marker.
      CheckpointId prev_id = restore_id - 1;
      bool found_prev = false;
      uint64_t prev_begin_offset = 0;
      LogRecord prev_begin_record;
      if (prev_id >= 1) {
        MMDB_RETURN_IF_ERROR(
            reader.ScanBackward([&](const LogRecord& r, uint64_t offset) {
              if (r.type == LogRecordType::kBeginCheckpoint &&
                  r.checkpoint_id == prev_id) {
                prev_begin_offset = offset;
                prev_begin_record = r;
                found_prev = true;
                return false;
              }
              return true;
            }));
      }
      if (!found_prev) {
        return CorruptionError(StringPrintf(
            "backup copy %u of checkpoint %llu is unreadable (%s) and no "
            "older complete checkpoint is reachable in the log",
            restore_copy, static_cast<unsigned long long>(restore_id),
            failures.front().status.message().c_str()));
      }
      for (const ActiveTxnEntry& e : prev_begin_record.active_txns) {
        if (e.first_lsn != kInvalidLsn) {
          return NotSupportedError(
              "active transaction with pre-marker log records; update-time "
              "logging is not used by this engine");
        }
      }
      // Retry protocol (DESIGN.md §14): with full-image (UPDATE) replay
      // only, re-reading JUST the failed segments from the previous copy
      // is sound — commit-time logging puts every post-prev-marker update
      // in the replay suffix, and full images are idempotent, so the
      // mixed-copy state converges to the same bytes. DELTA records are
      // logical additions and demand an exact snapshot at the replay
      // start point, so their presence in the suffix forces a full
      // reload of the previous copy.
      bool suffix_has_delta = false;
      MMDB_RETURN_IF_ERROR(reader.ScanForward(
          prev_begin_offset, [&](const LogRecord& r, uint64_t) {
            if (r.type == LogRecordType::kDelta) {
              suffix_has_delta = true;
              return false;
            }
            return true;
          }));
      std::vector<SegmentId> retry_ids;
      if (suffix_has_delta) {
        db->Clear();
        retry_ids = all_segments;
      } else {
        retry_ids.reserve(failures.size());
        for (const SegmentFailure& f : failures) {
          retry_ids.push_back(f.segment);
        }
      }
      if (audit_ != nullptr) {
        const std::string trigger = failures.front().status.ToString();
        audit_->Record("recovery.fallback", now, [&](JsonWriter& w) {
          w.Key("from_checkpoint");
          w.Uint(restore_id);
          w.Key("from_copy");
          w.Uint(restore_copy);
          w.Key("to_checkpoint");
          w.Uint(prev_id);
          w.Key("to_copy");
          w.Uint(BackupStore::CopyFor(prev_id));
          w.Key("trigger");
          w.String(trigger);
          w.Key("failed_segments");
          w.BeginArray();
          for (const SegmentFailure& f : failures) w.Uint(f.segment);
          w.EndArray();
          w.Key("full_reload");
          w.Bool(suffix_has_delta);
        });
      }
      // Every retried segment's bytes now come from the previous copy
      // (mixed-copy provenance when the retry set is partial).
      for (SegmentId s : retry_ids) {
        SegmentLineage& l = result.lineage[s];
        l.checkpoint_id = prev_id;
        l.copy = BackupStore::CopyFor(prev_id);
        l.retried = true;
      }
      restore_id = prev_id;
      restore_copy = BackupStore::CopyFor(prev_id);
      replay_from_offset = prev_begin_offset;
      stats.fell_back_to_older_copy = true;
      stats.segments_retried = retry_ids.size();
      // A failure here means neither copy is readable: fatal.
      std::vector<SegmentFailure> retry_failures;
      MMDB_RETURN_IF_ERROR(
          load_segments(restore_copy, retry_ids, &retry_failures));
      if (!retry_failures.empty()) return retry_failures.front().status;
    }
    stats.checkpoint_id = restore_id;
    stats.copy = restore_copy;
    backup_done = std::max(now, backup_disks.AllIdleTime());
  }
  stats.backup_read_seconds = backup_done - now;
  stats.backup_read_wall_seconds = SecondsSince(backup_wall_start);

  // The read is sequential from the marker to the end of the log, in large
  // striped chunks across the log disks.
  uint64_t log_bytes = result.log_valid_bytes > replay_from_offset
                           ? result.log_valid_bytes - replay_from_offset
                           : 0;
  stats.log_bytes_read = log_bytes;
  constexpr uint64_t kChunkWords = 64 * 1024;  // 256 KiB per device request
  uint64_t log_words = (log_bytes + kWordBytes - 1) / kWordBytes;
  double log_done = backup_done;
  for (uint64_t w = 0; w < log_words; w += kChunkWords) {
    log_done = log_disks.Submit(backup_done, std::min(kChunkWords,
                                                      log_words - w));
  }
  log_done = std::max(log_disks.AllIdleTime(), backup_done);
  stats.log_read_seconds = log_done - backup_done;

  // --- Phase 3: REDO replay ---------------------------------------------
  // Pass 1 — classification scan: shallow-decode every frame in the
  // replay suffix to find the committed set, the max LSN, and the
  // per-segment buckets for partitioned replay. Frame ranges are disjoint
  // and the reader is immutable, so chunks decode concurrently; chunk
  // results merge in chunk order, making every output identical to the
  // serial scan.
  WallClock::time_point scan_wall_start = WallClock::now();
  std::size_t start_frame = 0;
  if (reader.num_frames() > 0) {
    MMDB_ASSIGN_OR_RETURN(start_frame,
                          reader.FrameIndexAt(replay_from_offset));
  }
  const std::size_t suffix_frames = reader.num_frames() - start_frame;

  struct ScanChunk {
    uint64_t records = 0;
    Lsn max_lsn = kInvalidLsn;
    std::vector<TxnId> commits;
    // (record_id, absolute frame index) of each UPDATE/DELTA, frame order.
    std::vector<std::pair<RecordId, std::size_t>> data;
  };
  const std::size_t scan_chunk = ChunkFor(suffix_frames, threads);
  const std::size_t num_scan_chunks =
      suffix_frames == 0 ? 0 : (suffix_frames + scan_chunk - 1) / scan_chunk;
  std::vector<ScanChunk> scan_chunks(num_scan_chunks);
  MMDB_RETURN_IF_ERROR(ParallelFor(
      pool_, suffix_frames, scan_chunk,
      [&](std::size_t begin, std::size_t end) -> Status {
        WallClock::time_point start = WallClock::now();
        ScanChunk& out = scan_chunks[begin / scan_chunk];
        for (std::size_t i = begin; i < end; ++i) {
          std::size_t frame = start_frame + i;
          LogRecordHeader h;
          MMDB_RETURN_IF_ERROR(reader.HeaderAt(frame, &h));
          ++out.records;
          if (out.max_lsn == kInvalidLsn || h.lsn > out.max_lsn) {
            out.max_lsn = h.lsn;
          }
          if (h.type == LogRecordType::kCommit) {
            out.commits.push_back(h.txn_id);
          } else if (h.type == LogRecordType::kUpdate ||
                     h.type == LogRecordType::kDelta) {
            out.data.emplace_back(h.record_id, frame);
          }
        }
        busy.Charge(start);
        return Status::OK();
      }));

  // Merge pass (serial, chunk order): commit set, counters, and the
  // per-segment frame lists. Appending chunk by chunk preserves global
  // frame order within every bucket — the invariant partitioned replay
  // relies on. Out-of-range record ids are parked in an overflow bucket
  // whose replay reports the malformed record.
  std::unordered_set<TxnId> committed;
  Lsn last_lsn = kInvalidLsn;
  const std::size_t num_buckets =
      static_cast<std::size_t>(db->num_segments()) + 1;
  const std::size_t overflow_bucket = num_buckets - 1;
  std::vector<std::vector<std::size_t>> buckets(num_buckets);
  const uint64_t records_per_segment = params_.db.records_per_segment();
  for (const ScanChunk& c : scan_chunks) {
    stats.records_scanned += c.records;
    if (c.max_lsn != kInvalidLsn &&
        (last_lsn == kInvalidLsn || c.max_lsn > last_lsn)) {
      last_lsn = c.max_lsn;
    }
    for (TxnId t : c.commits) committed.insert(t);
    for (const auto& [record_id, frame] : c.data) {
      std::size_t b = static_cast<std::size_t>(
          std::min<uint64_t>(record_id / records_per_segment,
                             overflow_bucket));
      buckets[b].push_back(frame);
    }
  }
  // The tail beyond the marker may still contain older LSNs? No: LSNs are
  // monotone in file order, but records before the marker can carry higher
  // ids after a previous recovery reopened the log. Take the global max.
  MMDB_RETURN_IF_ERROR(
      reader.ScanBackward([&](const LogRecord& r, uint64_t) {
        if (last_lsn == kInvalidLsn || r.lsn > last_lsn) last_lsn = r.lsn;
        return false;  // only the newest record is needed
      }));
  result.last_lsn = last_lsn;
  stats.log_scan_wall_seconds = SecondsSince(scan_wall_start);

  // Pass 2 — partitioned REDO: each bucket holds one segment's data
  // records in log order, buckets touch disjoint byte ranges of the
  // primary, and the committed set is now read-only, so buckets replay
  // concurrently and the restored bytes are identical to the sequential
  // pass. Workers full-decode their own frames (the decode work rides the
  // replay fan-out instead of a serial feeder pass). Errors are collected
  // per bucket and the one at the smallest frame index wins — the same
  // record the serial scan would have died on.
  WallClock::time_point replay_wall_start = WallClock::now();
  std::vector<std::size_t> active_buckets;
  for (std::size_t b = 0; b < num_buckets; ++b) {
    if (!buckets[b].empty()) active_buckets.push_back(b);
  }
  struct BucketResult {
    uint64_t full_applies = 0;
    uint64_t delta_applies = 0;
    // Replay lineage for this segment's bucket: applied-record count,
    // LSN span, and source streams in first-touch (log) order. Frames
    // within a bucket replay in log order on whichever worker owns the
    // bucket, so these are identical for any thread count.
    Lsn first_lsn = kInvalidLsn;
    Lsn last_lsn = kInvalidLsn;
    std::vector<uint32_t> streams;
    std::size_t error_frame = SIZE_MAX;
    Status status;
  };
  std::vector<BucketResult> bucket_results(active_buckets.size());
  MMDB_RETURN_IF_ERROR(ParallelFor(
      pool_, active_buckets.size(), ChunkFor(active_buckets.size(), threads),
      [&](std::size_t begin, std::size_t end) -> Status {
        WallClock::time_point start = WallClock::now();
        for (std::size_t bi = begin; bi < end; ++bi) {
          BucketResult& out = bucket_results[bi];
          for (std::size_t frame : buckets[active_buckets[bi]]) {
            StatusOr<LogRecord> decoded = reader.RecordAtIndex(frame);
            if (!decoded.ok()) {
              out.status = decoded.status();
              out.error_frame = frame;
              break;
            }
            const LogRecord& r = *decoded;
            if (committed.count(r.txn_id) == 0) continue;
            bool applied = false;
            if (r.type == LogRecordType::kUpdate) {
              if (r.record_id >= db->num_records() ||
                  r.image.size() != db->record_bytes()) {
                out.status = CorruptionError(StringPrintf(
                    "update record for txn %llu is malformed",
                    static_cast<unsigned long long>(r.txn_id)));
                out.error_frame = frame;
                break;
              }
              db->WriteRecord(r.record_id, r.image);
              ++out.full_applies;
              applied = true;
            } else if (r.type == LogRecordType::kDelta) {
              // Logical REDO: NOT idempotent — correct exactly because
              // the restored backup is the snapshot at the replay start
              // point (enforced at write time; see Engine::WriteDelta).
              if (r.record_id >= db->num_records() ||
                  r.field_offset + 8 > db->record_bytes()) {
                out.status = CorruptionError(StringPrintf(
                    "delta record for txn %llu is malformed",
                    static_cast<unsigned long long>(r.txn_id)));
                out.error_frame = frame;
                break;
              }
              std::string image(db->ReadRecord(r.record_id));
              uint64_t field = DecodeFixed64(image.data() + r.field_offset);
              EncodeFixed64(image.data() + r.field_offset,
                            field + static_cast<uint64_t>(r.delta));
              db->WriteRecord(r.record_id, image);
              ++out.delta_applies;
              applied = true;
            }
            if (applied) {
              if (out.first_lsn == kInvalidLsn) out.first_lsn = r.lsn;
              out.last_lsn = r.lsn;
              const uint32_t stream = reader.FrameStream(frame);
              if (std::find(out.streams.begin(), out.streams.end(),
                            stream) == out.streams.end()) {
                out.streams.push_back(stream);
              }
            }
          }
        }
        busy.Charge(start);
        return Status::OK();
      }));
  uint64_t full_applies = 0;
  uint64_t delta_applies = 0;
  std::size_t first_error_frame = SIZE_MAX;
  Status apply_status;
  for (const BucketResult& br : bucket_results) {
    full_applies += br.full_applies;
    delta_applies += br.delta_applies;
    if (!br.status.ok() && br.error_frame < first_error_frame) {
      first_error_frame = br.error_frame;
      apply_status = br.status;
    }
  }
  MMDB_RETURN_IF_ERROR(apply_status);
  for (std::size_t bi = 0; bi < active_buckets.size(); ++bi) {
    const std::size_t b = active_buckets[bi];
    if (b >= result.lineage.size()) continue;  // overflow bucket
    const BucketResult& br = bucket_results[bi];
    SegmentLineage& l = result.lineage[b];
    l.frames = br.full_applies + br.delta_applies;
    l.first_lsn = br.first_lsn;
    l.last_lsn = br.last_lsn;
    l.streams = br.streams;
  }
  stats.updates_applied = full_applies + delta_applies;
  stats.txns_redone = committed.size();
  stats.replay_wall_seconds = SecondsSince(replay_wall_start);
  stats.thread_busy_seconds = busy.Seconds();

  // Closed-form instruction count from the integer apply tallies —
  // deliberately NOT accumulated per record, so the modeled CPU charge
  // cannot pick up floating-point ordering noise from the fan-out.
  double replay_instructions =
      params_.costs.move_per_word *
          static_cast<double>(params_.db.record_words) *
          static_cast<double>(full_applies) +
      (8.0 / kWordBytes) * static_cast<double>(delta_applies);
  meter_->Charge(CpuCategory::kRecovery, replay_instructions);
  stats.replay_cpu_seconds =
      params_.InstructionsToSeconds(replay_instructions);

  // Control state restarts conservatively: everything dirty (the next two
  // checkpoints will rewrite both copies in partial mode), colors white,
  // no old copies, no LSNs.
  segments->Reset();
  segments->MarkAllDirty();

  stats.total_seconds = (log_done - now) + stats.replay_cpu_seconds;
  Publish(metrics_, tracer_, stats, now, active_buckets.size());
  return result;
}

StatusOr<InstantRecoveryPlan> RecoveryManager::PlanInstant(
    BackupStore* backup, const std::vector<std::string>& log_paths,
    Database* db, SegmentTable* segments, double now) {
  StatusOr<InstantRecoveryPlan> plan =
      PlanInstantImpl(backup, log_paths, db, segments, now);
  if (!plan.ok() && audit_ != nullptr) {
    const std::string error = plan.status().ToString();
    audit_->Record("recovery.error", now, [&](JsonWriter& w) {
      w.Key("error");
      w.String(error);
    });
    audit_->Sync();
  }
  // Success leaves the audit chain OPEN: the engine journals the lineage
  // and recovery.end once every segment has materialized.
  return plan;
}

StatusOr<InstantRecoveryPlan> RecoveryManager::PlanInstantImpl(
    BackupStore* backup, const std::vector<std::string>& log_paths,
    Database* db, SegmentTable* segments, double now) {
  InstantRecoveryPlan out;
  RecoveryResult& result = out.result;
  RecoveryStats& stats = result.stats;
  const uint32_t threads =
      pool_ != nullptr ? static_cast<uint32_t>(pool_->num_threads()) : 1;
  stats.threads_used = threads;
  BusyMeter busy(threads);

  MMDB_ASSIGN_OR_RETURN(RestorePlan plan, BuildRestorePlan(backup, log_paths,
                                                           db, now, &result));
  out.have_checkpoint = plan.have_checkpoint;
  out.restore_id = plan.restore_id;
  out.restore_copy = plan.restore_copy;
  out.replay_from_offset = plan.replay_from_offset;
  LogReader& reader = plan.reader;

  // Modeled phase costs, closed-form. Blocking recovery submits one
  // backup-array request per segment at the crash instant and then streams
  // the log suffix in fixed chunks starting where the backup reads
  // finished. Replaying the SAME submissions at the SAME absolute times
  // against scratch arrays reproduces the blocking path's
  // backup_read_seconds / log_read_seconds bit-for-bit — the anchors
  // matter because float subtraction is not translation-invariant, and
  // the instant-off/on equivalence gates compare these exactly.
  double backup_done = now;
  if (plan.have_checkpoint) {
    DiskArrayModel backup_disks(params_.disk);
    for (uint64_t s = 0; s < db->num_segments(); ++s) {
      backup_disks.Submit(now, params_.db.segment_words);
    }
    backup_done = std::max(now, backup_disks.AllIdleTime());
    stats.backup_read_seconds = backup_done - now;
    stats.segments_loaded = db->num_segments();
    stats.checkpoint_id = plan.restore_id;
    stats.copy = plan.restore_copy;
  }
  uint64_t log_bytes = result.log_valid_bytes > plan.replay_from_offset
                           ? result.log_valid_bytes - plan.replay_from_offset
                           : 0;
  stats.log_bytes_read = log_bytes;
  constexpr uint64_t kChunkWords = 64 * 1024;  // 256 KiB per device request
  uint64_t log_words = (log_bytes + kWordBytes - 1) / kWordBytes;
  double log_done_abs = backup_done;
  {
    DiskArrayModel log_disks(params_.disk.LogArray());
    for (uint64_t w = 0; w < log_words; w += kChunkWords) {
      log_disks.Submit(backup_done, std::min(kChunkWords, log_words - w));
    }
    log_done_abs = std::max(log_disks.AllIdleTime(), backup_done);
    stats.log_read_seconds = log_done_abs - backup_done;
  }

  // Classification scan — identical to the blocking path's pass 1: the
  // committed set, the max LSN, and the per-segment frame buckets.
  WallClock::time_point scan_wall_start = WallClock::now();
  std::size_t start_frame = 0;
  if (reader.num_frames() > 0) {
    MMDB_ASSIGN_OR_RETURN(start_frame,
                          reader.FrameIndexAt(plan.replay_from_offset));
  }
  out.start_frame = start_frame;
  const std::size_t suffix_frames = reader.num_frames() - start_frame;

  struct ScanChunk {
    uint64_t records = 0;
    Lsn max_lsn = kInvalidLsn;
    std::vector<TxnId> commits;
    std::vector<std::pair<RecordId, std::size_t>> data;
  };
  const std::size_t scan_chunk = ChunkFor(suffix_frames, threads);
  const std::size_t num_scan_chunks =
      suffix_frames == 0 ? 0 : (suffix_frames + scan_chunk - 1) / scan_chunk;
  std::vector<ScanChunk> scan_chunks(num_scan_chunks);
  MMDB_RETURN_IF_ERROR(ParallelFor(
      pool_, suffix_frames, scan_chunk,
      [&](std::size_t begin, std::size_t end) -> Status {
        WallClock::time_point start = WallClock::now();
        ScanChunk& chunk = scan_chunks[begin / scan_chunk];
        for (std::size_t i = begin; i < end; ++i) {
          std::size_t frame = start_frame + i;
          LogRecordHeader h;
          MMDB_RETURN_IF_ERROR(reader.HeaderAt(frame, &h));
          ++chunk.records;
          if (chunk.max_lsn == kInvalidLsn || h.lsn > chunk.max_lsn) {
            chunk.max_lsn = h.lsn;
          }
          if (h.type == LogRecordType::kCommit) {
            chunk.commits.push_back(h.txn_id);
          } else if (h.type == LogRecordType::kUpdate ||
                     h.type == LogRecordType::kDelta) {
            chunk.data.emplace_back(h.record_id, frame);
          }
        }
        busy.Charge(start);
        return Status::OK();
      }));

  Lsn last_lsn = kInvalidLsn;
  const std::size_t num_buckets =
      static_cast<std::size_t>(db->num_segments()) + 1;
  const std::size_t overflow_bucket = num_buckets - 1;
  out.buckets.assign(num_buckets, {});
  const uint64_t records_per_segment = params_.db.records_per_segment();
  for (const ScanChunk& c : scan_chunks) {
    stats.records_scanned += c.records;
    if (c.max_lsn != kInvalidLsn &&
        (last_lsn == kInvalidLsn || c.max_lsn > last_lsn)) {
      last_lsn = c.max_lsn;
    }
    for (TxnId t : c.commits) out.committed.insert(t);
    for (const auto& [record_id, frame] : c.data) {
      std::size_t b = static_cast<std::size_t>(std::min<uint64_t>(
          record_id / records_per_segment, overflow_bucket));
      out.buckets[b].push_back(frame);
    }
  }
  MMDB_RETURN_IF_ERROR(
      reader.ScanBackward([&](const LogRecord& r, uint64_t) {
        if (last_lsn == kInvalidLsn || r.lsn > last_lsn) last_lsn = r.lsn;
        return false;  // only the newest record is needed
      }));
  result.last_lsn = last_lsn;
  stats.log_scan_wall_seconds = SecondsSince(scan_wall_start);

  // Eager validation + per-segment replay accounting. This full-decodes
  // every bucketed frame exactly as the blocking path's partitioned REDO
  // would — same decode errors, same malformed-record checks on committed
  // frames, same smallest-frame-wins rule — but applies nothing, so a log
  // that would have failed blocking recovery fails the plan here instead
  // of surfacing mid-service. The per-bucket apply tallies double as the
  // clean-path lineage and the closed-form replay CPU charge.
  WallClock::time_point replay_wall_start = WallClock::now();
  std::vector<std::size_t> active_buckets;
  for (std::size_t b = 0; b < num_buckets; ++b) {
    if (!out.buckets[b].empty()) active_buckets.push_back(b);
  }
  out.replay_buckets = active_buckets.size();
  struct BucketResult {
    uint64_t full_applies = 0;
    uint64_t delta_applies = 0;
    Lsn first_lsn = kInvalidLsn;
    Lsn last_lsn = kInvalidLsn;
    std::vector<uint32_t> streams;
    std::size_t error_frame = SIZE_MAX;
    Status status;
  };
  std::vector<BucketResult> bucket_results(active_buckets.size());
  MMDB_RETURN_IF_ERROR(ParallelFor(
      pool_, active_buckets.size(), ChunkFor(active_buckets.size(), threads),
      [&](std::size_t begin, std::size_t end) -> Status {
        WallClock::time_point start = WallClock::now();
        for (std::size_t bi = begin; bi < end; ++bi) {
          BucketResult& br = bucket_results[bi];
          for (std::size_t frame : out.buckets[active_buckets[bi]]) {
            StatusOr<LogRecord> decoded = reader.RecordAtIndex(frame);
            if (!decoded.ok()) {
              br.status = decoded.status();
              br.error_frame = frame;
              break;
            }
            const LogRecord& r = *decoded;
            if (out.committed.count(r.txn_id) == 0) continue;
            bool applied = false;
            if (r.type == LogRecordType::kUpdate) {
              if (r.record_id >= db->num_records() ||
                  r.image.size() != db->record_bytes()) {
                br.status = CorruptionError(StringPrintf(
                    "update record for txn %llu is malformed",
                    static_cast<unsigned long long>(r.txn_id)));
                br.error_frame = frame;
                break;
              }
              ++br.full_applies;
              applied = true;
            } else if (r.type == LogRecordType::kDelta) {
              if (r.record_id >= db->num_records() ||
                  r.field_offset + 8 > db->record_bytes()) {
                br.status = CorruptionError(StringPrintf(
                    "delta record for txn %llu is malformed",
                    static_cast<unsigned long long>(r.txn_id)));
                br.error_frame = frame;
                break;
              }
              ++br.delta_applies;
              applied = true;
            }
            if (applied) {
              if (br.first_lsn == kInvalidLsn) br.first_lsn = r.lsn;
              br.last_lsn = r.lsn;
              const uint32_t stream = reader.FrameStream(frame);
              if (std::find(br.streams.begin(), br.streams.end(), stream) ==
                  br.streams.end()) {
                br.streams.push_back(stream);
              }
            }
          }
        }
        busy.Charge(start);
        return Status::OK();
      }));
  uint64_t full_applies = 0;
  uint64_t delta_applies = 0;
  std::size_t first_error_frame = SIZE_MAX;
  Status apply_status;
  for (const BucketResult& br : bucket_results) {
    full_applies += br.full_applies;
    delta_applies += br.delta_applies;
    if (!br.status.ok() && br.error_frame < first_error_frame) {
      first_error_frame = br.error_frame;
      apply_status = br.status;
    }
  }
  MMDB_RETURN_IF_ERROR(apply_status);
  for (std::size_t bi = 0; bi < active_buckets.size(); ++bi) {
    const std::size_t b = active_buckets[bi];
    if (b >= result.lineage.size()) continue;  // overflow bucket
    const BucketResult& br = bucket_results[bi];
    SegmentLineage& l = result.lineage[b];
    l.frames = br.full_applies + br.delta_applies;
    l.first_lsn = br.first_lsn;
    l.last_lsn = br.last_lsn;
    l.streams = br.streams;
  }
  stats.updates_applied = full_applies + delta_applies;
  stats.txns_redone = out.committed.size();
  stats.replay_wall_seconds = SecondsSince(replay_wall_start);
  stats.thread_busy_seconds = busy.Seconds();

  // The recovery CPU is charged once, here, from the same closed-form
  // instruction count as the blocking path — materialization later moves
  // the same bytes but must not re-charge.
  double replay_instructions =
      params_.costs.move_per_word *
          static_cast<double>(params_.db.record_words) *
          static_cast<double>(full_applies) +
      (8.0 / kWordBytes) * static_cast<double>(delta_applies);
  meter_->Charge(CpuCategory::kRecovery, replay_instructions);
  stats.replay_cpu_seconds =
      params_.InstructionsToSeconds(replay_instructions);

  // Control state restarts conservatively, exactly as after a blocking
  // recovery: everything dirty, colors white, no old copies, no LSNs.
  segments->Reset();
  segments->MarkAllDirty();

  // Same grouping as the blocking path's `(log_done - now) + replay`:
  // three-way summation is not associative in float and the off/on
  // equivalence gates compare total_seconds exactly.
  stats.total_seconds = (log_done_abs - now) + stats.replay_cpu_seconds;
  out.reader = std::move(plan.reader);
  return out;
}

}  // namespace mmdb
