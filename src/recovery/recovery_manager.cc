#include "recovery/recovery_manager.h"

#include <algorithm>
#include <unordered_set>

#include "sim/disk_model.h"
#include "util/coding.h"
#include "util/string_util.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace mmdb {

RecoveryManager::RecoveryManager(Env* env, const SystemParams& params,
                                 CpuMeter* meter, MetricsRegistry* metrics,
                                 Tracer* tracer)
    : env_(env),
      params_(params),
      meter_(meter),
      metrics_(metrics),
      tracer_(tracer) {}

void RecoveryManager::Publish(const RecoveryStats& stats, double now) {
  if (metrics_ != nullptr) {
    metrics_->counter("recovery.runs")->Increment();
    metrics_->counter("recovery.segments_loaded")
        ->Increment(stats.segments_loaded);
    metrics_->counter("recovery.log_bytes_read")
        ->Increment(stats.log_bytes_read);
    metrics_->counter("recovery.updates_applied")
        ->Increment(stats.updates_applied);
    metrics_->counter("recovery.txns_redone")->Increment(stats.txns_redone);
    if (stats.fell_back_to_older_copy) {
      metrics_->counter("recovery.copy_fallbacks")->Increment();
    }
    metrics_->timer("recovery.backup_read_seconds")
        ->Record(stats.backup_read_seconds);
    metrics_->timer("recovery.log_read_seconds")
        ->Record(stats.log_read_seconds);
    metrics_->timer("recovery.replay_cpu_seconds")
        ->Record(stats.replay_cpu_seconds);
    metrics_->timer("recovery.total_seconds")->Record(stats.total_seconds);
  }
  if (tracer_ != nullptr) {
    tracer_->Record(
        TraceEventType::kRecoveryPhase, now, stats.backup_read_seconds,
        static_cast<int64_t>(RecoveryPhase::kBackupLoad),
        static_cast<int64_t>(stats.segments_loaded),
        static_cast<int64_t>(stats.copy));
    tracer_->Record(TraceEventType::kRecoveryPhase, now,
                    stats.log_read_seconds,
                    static_cast<int64_t>(RecoveryPhase::kLogRead),
                    static_cast<int64_t>(stats.log_bytes_read));
    tracer_->Record(TraceEventType::kRecoveryPhase, now,
                    stats.replay_cpu_seconds,
                    static_cast<int64_t>(RecoveryPhase::kReplay),
                    static_cast<int64_t>(stats.updates_applied),
                    static_cast<int64_t>(stats.txns_redone));
    tracer_->Record(TraceEventType::kRecoveryEnd, now, stats.total_seconds,
                    static_cast<int64_t>(stats.checkpoint_id));
  }
}

StatusOr<RecoveryResult> RecoveryManager::Recover(BackupStore* backup,
                                                  const std::string& log_path,
                                                  Database* db,
                                                  SegmentTable* segments,
                                                  double now) {
  RecoveryResult result;
  RecoveryStats& stats = result.stats;

  // Fresh disk service state: the array restarts with the machine.
  DiskArrayModel backup_disks(params_.disk);
  DiskArrayModel log_disks(params_.disk.LogArray());

  // --- Phase 1: decide which checkpoint to restore ----------------------
  // Two sources name the last complete checkpoint: the metadata file
  // (renamed into place after the end marker is durable) and the log's own
  // backward scan for an end-checkpoint marker (the paper's rule). The
  // metadata may legitimately lag: a crash can land after the end marker
  // reached stable storage but before the metadata rename, and failed
  // metadata rewrites degrade gracefully (the checkpoint still counts), so
  // the lag can span several checkpoints. The log is then ahead, and the
  // newer checkpoint IS complete (its segment writes all finished before
  // its end marker was cut), so the log wins. Metadata NEWER than the
  // log's last end marker is corruption.
  db->Clear();
  MMDB_ASSIGN_OR_RETURN(LogReader reader, LogReader::Open(env_, log_path));
  result.log_valid_bytes = reader.valid_bytes();

  StatusOr<CheckpointMeta> meta = backup->ReadMeta();
  if (!meta.ok() && !meta.status().IsNotFound()) return meta.status();
  StatusOr<LogReader::CheckpointMarker> marker =
      reader.FindLastCompleteCheckpoint();
  if (!marker.ok() && !marker.status().IsNotFound()) return marker.status();

  bool have_checkpoint = false;
  CheckpointId restore_id = 0;
  uint32_t restore_copy = 0;
  uint64_t replay_from_offset = 0;
  if (marker.ok()) {
    if (meta.ok() && meta->checkpoint_id == marker->checkpoint_id) {
      if (meta->log_offset != marker->begin_offset) {
        return CorruptionError(StringPrintf(
            "checkpoint metadata offset %llu disagrees with the log's "
            "begin marker at %llu for checkpoint %llu",
            static_cast<unsigned long long>(meta->log_offset),
            static_cast<unsigned long long>(marker->begin_offset),
            static_cast<unsigned long long>(meta->checkpoint_id)));
      }
      restore_copy = meta->copy;
    } else if (!meta.ok() || meta->checkpoint_id < marker->checkpoint_id) {
      // Metadata lags the log (or is missing for the very first
      // checkpoint): a crash can land after the end marker reached stable
      // storage but before the metadata rename, and with graceful
      // degradation of failed metadata rewrites the lag can exceed one
      // checkpoint. The end marker always certifies a complete copy, so
      // trust the log and repair the metadata so later restarts (and log
      // truncation) see a consistent pair.
      restore_copy = BackupStore::CopyFor(marker->checkpoint_id);
      CheckpointMeta repaired;
      repaired.checkpoint_id = marker->checkpoint_id;
      repaired.copy = restore_copy;
      repaired.log_offset = marker->begin_offset;
      repaired.begin_lsn = marker->begin_record.lsn;
      repaired.tau = marker->begin_record.timestamp;
      MMDB_RETURN_IF_ERROR(backup->CommitCheckpoint(repaired));
    } else {
      return CorruptionError(StringPrintf(
          "checkpoint metadata (id=%llu) and log (id=%llu) are "
          "irreconcilable",
          static_cast<unsigned long long>(
              meta.ok() ? meta->checkpoint_id : 0),
          static_cast<unsigned long long>(marker->checkpoint_id)));
    }
    have_checkpoint = true;
    restore_id = marker->checkpoint_id;
    replay_from_offset = marker->begin_offset;
    result.newest_end_id = marker->checkpoint_id;
    // Fuzzy checkpoints may require scanning back to the earliest
    // transaction active at the marker. Under commit-time logging an
    // active transaction has no log records yet, so the extension is
    // always empty; verify that invariant.
    for (const ActiveTxnEntry& e : marker->begin_record.active_txns) {
      if (e.first_lsn != kInvalidLsn) {
        return NotSupportedError(
            "active transaction with pre-marker log records; update-time "
            "logging is not used by this engine");
      }
    }
  } else if (meta.ok()) {
    // The metadata survived but the log lost the completion marker the
    // rename was ordered after: impossible without corruption.
    return CorruptionError(
        "checkpoint metadata names a checkpoint but the log has no "
        "completed checkpoint");
  }

  // --- Phase 2: load the chosen backup copy -----------------------------
  double backup_done = now;
  if (have_checkpoint) {
    auto load_copy = [&](uint32_t copy_idx) -> Status {
      db->Clear();
      std::string image;
      for (SegmentId s = 0; s < db->num_segments(); ++s) {
        MMDB_RETURN_IF_ERROR(backup->ReadSegment(copy_idx, s, &image));
        db->WriteSegment(s, image);
        backup_disks.Submit(now, params_.db.segment_words);
        ++stats.segments_loaded;
      }
      return Status::OK();
    };
    Status load = load_copy(restore_copy);
    if (load.IsCorruption() || load.IsIoError()) {
      // The newest copy has a CRC-bad or unreadable segment (a torn
      // checkpoint tail, a scribbled in-flight slot, or a device fault).
      // The ping-pong protocol guarantees the PREVIOUS checkpoint's copy
      // was complete before this one started overwriting the other file,
      // so fall back to it and replay the longer log suffix from its
      // begin marker — which must still be in the log, since truncation
      // only ever cuts before the newest complete checkpoint's marker.
      CheckpointId prev_id = restore_id - 1;
      bool found_prev = false;
      uint64_t prev_begin_offset = 0;
      LogRecord prev_begin_record;
      if (prev_id >= 1) {
        MMDB_RETURN_IF_ERROR(
            reader.ScanBackward([&](const LogRecord& r, uint64_t offset) {
              if (r.type == LogRecordType::kBeginCheckpoint &&
                  r.checkpoint_id == prev_id) {
                prev_begin_offset = offset;
                prev_begin_record = r;
                found_prev = true;
                return false;
              }
              return true;
            }));
      }
      if (!found_prev) {
        return CorruptionError(StringPrintf(
            "backup copy %u of checkpoint %llu is unreadable (%s) and no "
            "older complete checkpoint is reachable in the log",
            restore_copy, static_cast<unsigned long long>(restore_id),
            load.message().c_str()));
      }
      for (const ActiveTxnEntry& e : prev_begin_record.active_txns) {
        if (e.first_lsn != kInvalidLsn) {
          return NotSupportedError(
              "active transaction with pre-marker log records; update-time "
              "logging is not used by this engine");
        }
      }
      restore_id = prev_id;
      restore_copy = BackupStore::CopyFor(prev_id);
      replay_from_offset = prev_begin_offset;
      stats.fell_back_to_older_copy = true;
      // A second failure means neither copy is readable: fatal.
      load = load_copy(restore_copy);
    }
    MMDB_RETURN_IF_ERROR(load);
    stats.checkpoint_id = restore_id;
    stats.copy = restore_copy;
    backup_done = std::max(now, backup_disks.AllIdleTime());
  }
  stats.backup_read_seconds = backup_done - now;

  // The read is sequential from the marker to the end of the log, in large
  // striped chunks across the log disks.
  uint64_t log_bytes = result.log_valid_bytes > replay_from_offset
                           ? result.log_valid_bytes - replay_from_offset
                           : 0;
  stats.log_bytes_read = log_bytes;
  constexpr uint64_t kChunkWords = 64 * 1024;  // 256 KiB per device request
  uint64_t log_words = (log_bytes + kWordBytes - 1) / kWordBytes;
  double log_done = backup_done;
  for (uint64_t w = 0; w < log_words; w += kChunkWords) {
    log_done = log_disks.Submit(backup_done, std::min(kChunkWords,
                                                      log_words - w));
  }
  log_done = std::max(log_disks.AllIdleTime(), backup_done);
  stats.log_read_seconds = log_done - backup_done;

  // --- Phase 3: REDO replay ---------------------------------------------
  // Pass 1: which transactions committed at or after the marker?
  std::unordered_set<TxnId> committed;
  Lsn last_lsn = kInvalidLsn;
  MMDB_RETURN_IF_ERROR(reader.ScanForward(
      replay_from_offset, [&](const LogRecord& r, uint64_t) {
        last_lsn = std::max(last_lsn, r.lsn);
        ++stats.records_scanned;
        if (r.type == LogRecordType::kCommit) committed.insert(r.txn_id);
        return true;
      }));
  // The tail beyond the marker may still contain older LSNs? No: LSNs are
  // monotone in file order, but records before the marker can carry higher
  // ids after a previous recovery reopened the log. Take the global max.
  MMDB_RETURN_IF_ERROR(
      reader.ScanBackward([&](const LogRecord& r, uint64_t) {
        last_lsn = std::max(last_lsn, r.lsn);
        return false;  // only the newest record is needed
      }));
  result.last_lsn = last_lsn;

  // Pass 2: apply committed transactions' after-images in log order.
  double replay_instructions = 0.0;
  Status apply_status = Status::OK();
  MMDB_RETURN_IF_ERROR(reader.ScanForward(
      replay_from_offset, [&](const LogRecord& r, uint64_t) {
        if (committed.count(r.txn_id) == 0) return true;
        if (r.type == LogRecordType::kUpdate) {
          if (r.record_id >= db->num_records() ||
              r.image.size() != db->record_bytes()) {
            apply_status = CorruptionError(StringPrintf(
                "update record for txn %llu is malformed",
                static_cast<unsigned long long>(r.txn_id)));
            return false;
          }
          db->WriteRecord(r.record_id, r.image);
          replay_instructions +=
              params_.costs.move_per_word *
              static_cast<double>(params_.db.record_words);
          ++stats.updates_applied;
        } else if (r.type == LogRecordType::kDelta) {
          // Logical REDO: NOT idempotent — correct exactly because the
          // restored backup is the snapshot at the replay start point
          // (enforced at write time; see Engine::WriteDelta).
          if (r.record_id >= db->num_records() ||
              r.field_offset + 8 > db->record_bytes()) {
            apply_status = CorruptionError(StringPrintf(
                "delta record for txn %llu is malformed",
                static_cast<unsigned long long>(r.txn_id)));
            return false;
          }
          std::string image(db->ReadRecord(r.record_id));
          uint64_t field = DecodeFixed64(image.data() + r.field_offset);
          EncodeFixed64(image.data() + r.field_offset,
                        field + static_cast<uint64_t>(r.delta));
          db->WriteRecord(r.record_id, image);
          replay_instructions += 8.0 / kWordBytes;
          ++stats.updates_applied;
        }
        return true;
      }));
  MMDB_RETURN_IF_ERROR(apply_status);
  stats.txns_redone = committed.size();
  meter_->Charge(CpuCategory::kRecovery, replay_instructions);
  stats.replay_cpu_seconds =
      params_.InstructionsToSeconds(replay_instructions);

  // Control state restarts conservatively: everything dirty (the next two
  // checkpoints will rewrite both copies in partial mode), colors white,
  // no old copies, no LSNs.
  segments->Reset();
  segments->MarkAllDirty();

  stats.total_seconds = (log_done - now) + stats.replay_cpu_seconds;
  Publish(stats, now);
  return result;
}

}  // namespace mmdb
