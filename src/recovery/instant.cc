#include "recovery/instant.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/coding.h"
#include "util/string_util.h"
#include "wal/log_record.h"

namespace mmdb {

namespace {

const char* TriggerName(InstantRecovery::LoadTrigger trigger) {
  switch (trigger) {
    case InstantRecovery::LoadTrigger::kTouch:
      return "touch";
    case InstantRecovery::LoadTrigger::kBackground:
      return "background";
    case InstantRecovery::LoadTrigger::kForce:
      return "force";
  }
  return "unknown";
}

}  // namespace

InstantRecovery::InstantRecovery(InstantRecoveryPlan plan,
                                 const SystemParams& params,
                                 BackupStore* backup, Database* db,
                                 CpuMeter* meter, MetricsRegistry* metrics,
                                 Tracer* tracer, AuditJournal* audit)
    : plan_(std::move(plan)),
      params_(params),
      backup_(backup),
      db_(db),
      meter_(meter),
      metrics_(metrics),
      tracer_(tracer),
      audit_(audit),
      num_segments_(db->num_segments()),
      disks_(params.disk) {
  availability_.assign(num_segments_, -1.0);
  submit_time_.assign(num_segments_, 0.0);
  touch_count_.assign(num_segments_, 0);
  loaded_.assign(num_segments_, false);
  announced_.assign(num_segments_, false);
  unsubmitted_ = plan_.have_checkpoint ? num_segments_ : 0;
}

void InstantRecovery::StartClock(double now) {
  if (clock_started_) return;
  clock_started_ = true;
  start_ = now;
  last_completion_ = now;
  if (!plan_.have_checkpoint) {
    // Cold start: there is no backup to read, so every segment is
    // "available" the instant the plan is — only its REDO replay remains.
    for (SegmentId s = 0; s < num_segments_; ++s) {
      availability_[s] = now;
      submit_time_[s] = now;
      due_.push_back(s);
    }
    schedule_complete_ = true;
    return;
  }
  // Prime one request per device; every completion refills from the
  // pending set, so the array never idles until the schedule drains.
  const uint64_t window = std::min<uint64_t>(
      params_.disk.num_disks, static_cast<uint64_t>(num_segments_));
  for (uint64_t i = 0; i < window; ++i) {
    SubmitSegment(PickNextPending(), now);
  }
}

SegmentId InstantRecovery::PickNextPending() const {
  SegmentId best = num_segments_;
  uint64_t best_touches = 0;
  for (SegmentId s = 0; s < num_segments_; ++s) {
    if (availability_[s] >= 0.0) continue;  // already submitted
    if (best == num_segments_ || touch_count_[s] > best_touches) {
      best = s;
      best_touches = touch_count_[s];
    }
  }
  return best;
}

void InstantRecovery::SubmitSegment(SegmentId s, double at) {
  availability_[s] = disks_.Submit(at, params_.db.segment_words);
  submit_time_[s] = at;
  if (availability_[s] > last_completion_) {
    last_completion_ = availability_[s];
  }
  inflight_.push(Inflight{availability_[s], s});
  --unsubmitted_;
}

void InstantRecovery::AdvanceScheduleTo(double t) {
  while (!inflight_.empty() && inflight_.top().first <= t) {
    const SegmentId s = inflight_.top().second;
    const double done = inflight_.top().first;
    inflight_.pop();
    due_.push_back(s);
    if (unsubmitted_ > 0) {
      // Refill the freed device with the hottest pending segment.
      SubmitSegment(PickNextPending(), done);
    }
  }
  if (inflight_.empty() && unsubmitted_ == 0) schedule_complete_ = true;
}

double InstantRecovery::Touch(SegmentId s, double now) {
  AdvanceScheduleTo(now);
  if (s < num_segments_) ++touch_count_[s];
  if (s >= num_segments_ || loaded_[s]) return now;
  if (availability_[s] < 0.0) {
    // The schedule had not reached this segment: jump it to the front
    // (the earliest-available device picks it up next).
    SubmitSegment(s, now);
  }
  return std::max(availability_[s], now);
}

double InstantRecovery::CompleteSchedule() {
  AdvanceScheduleTo(std::numeric_limits<double>::infinity());
  return last_completion_;
}

Status InstantRecovery::MaterializeDue(double now) {
  AdvanceScheduleTo(now);
  // Swap out the work list first: a fallback inside Materialize may
  // re-materialize other segments, and due entries must not be lost.
  std::vector<SegmentId> work;
  work.swap(due_);
  for (SegmentId s : work) {
    if (loaded_[s]) continue;
    MMDB_RETURN_IF_ERROR(Materialize(s, now, LoadTrigger::kBackground));
  }
  return Status::OK();
}

Status InstantRecovery::ReplayFrames(const std::vector<std::size_t>& frames,
                                     bool use_ext_committed,
                                     ApplyStats* out) {
  const LogReader& reader = plan_.reader;
  for (std::size_t frame : frames) {
    MMDB_ASSIGN_OR_RETURN(LogRecord r, reader.RecordAtIndex(frame));
    const bool committed =
        plan_.committed.count(r.txn_id) != 0 ||
        (use_ext_committed && ext_committed_.count(r.txn_id) != 0);
    if (!committed) continue;
    bool applied = false;
    if (r.type == LogRecordType::kUpdate) {
      if (r.record_id >= db_->num_records() ||
          r.image.size() != db_->record_bytes()) {
        return CorruptionError(StringPrintf(
            "update record for txn %llu is malformed",
            static_cast<unsigned long long>(r.txn_id)));
      }
      db_->WriteRecord(r.record_id, r.image);
      ++out->full_applies;
      applied = true;
    } else if (r.type == LogRecordType::kDelta) {
      if (r.record_id >= db_->num_records() ||
          r.field_offset + 8 > db_->record_bytes()) {
        return CorruptionError(StringPrintf(
            "delta record for txn %llu is malformed",
            static_cast<unsigned long long>(r.txn_id)));
      }
      std::string image(db_->ReadRecord(r.record_id));
      uint64_t field = DecodeFixed64(image.data() + r.field_offset);
      EncodeFixed64(image.data() + r.field_offset,
                    field + static_cast<uint64_t>(r.delta));
      db_->WriteRecord(r.record_id, image);
      ++out->delta_applies;
      applied = true;
    }
    if (applied) {
      if (out->first_lsn == kInvalidLsn) out->first_lsn = r.lsn;
      out->last_lsn = r.lsn;
      const uint32_t stream = reader.FrameStream(frame);
      if (std::find(out->streams.begin(), out->streams.end(), stream) ==
          out->streams.end()) {
        out->streams.push_back(stream);
      }
    }
  }
  return Status::OK();
}

Status InstantRecovery::PrepareFallback(const Status& trigger_status,
                                        SegmentId s, double now) {
  LogReader& reader = plan_.reader;
  RecoveryResult& result = plan_.result;
  RecoveryStats& stats = result.stats;

  // Locate the previous checkpoint's begin marker — the ping-pong
  // protocol guarantees its copy was complete before the newest one
  // started overwriting the other file.
  const CheckpointId prev_id = plan_.restore_id - 1;
  bool found_prev = false;
  uint64_t prev_begin_offset = 0;
  LogRecord prev_begin_record;
  if (prev_id >= 1) {
    MMDB_RETURN_IF_ERROR(
        reader.ScanBackward([&](const LogRecord& r, uint64_t offset) {
          if (r.type == LogRecordType::kBeginCheckpoint &&
              r.checkpoint_id == prev_id) {
            prev_begin_offset = offset;
            prev_begin_record = r;
            found_prev = true;
            return false;
          }
          return true;
        }));
  }
  if (!found_prev) {
    return CorruptionError(StringPrintf(
        "backup copy %u of checkpoint %llu is unreadable (%s) and no "
        "older complete checkpoint is reachable in the log",
        plan_.restore_copy, static_cast<unsigned long long>(plan_.restore_id),
        trigger_status.message().c_str()));
  }
  for (const ActiveTxnEntry& e : prev_begin_record.active_txns) {
    if (e.first_lsn != kInvalidLsn) {
      return NotSupportedError(
          "active transaction with pre-marker log records; update-time "
          "logging is not used by this engine");
    }
  }

  // DELTA records anywhere in the longer suffix force a full reload from
  // the previous copy (logical REDO demands an exact snapshot at the
  // replay start point) — the same rule as blocking recovery.
  bool suffix_has_delta = false;
  MMDB_RETURN_IF_ERROR(
      reader.ScanForward(prev_begin_offset, [&](const LogRecord& r, uint64_t) {
        if (r.type == LogRecordType::kDelta) {
          suffix_has_delta = true;
          return false;
        }
        return true;
      }));

  // Scan the extension [prev begin marker, newest begin marker) into
  // per-segment buckets plus the overflow bucket, and collect its
  // commits. Extension data frames may belong to transactions whose
  // commit record lies in the MAIN suffix, so extension replay honors
  // the union of both committed sets; main frames never need the
  // extension's commits (a commit is a transaction's last record, so a
  // main-suffix data frame's commit is also in the main suffix).
  MMDB_ASSIGN_OR_RETURN(std::size_t prev_start_frame,
                        reader.FrameIndexAt(prev_begin_offset));
  const std::size_t num_buckets = static_cast<std::size_t>(num_segments_) + 1;
  const std::size_t overflow_bucket = num_buckets - 1;
  ext_buckets_.assign(num_buckets, {});
  const uint64_t records_per_segment = params_.db.records_per_segment();
  uint64_t ext_frames = 0;
  for (std::size_t frame = prev_start_frame; frame < plan_.start_frame;
       ++frame) {
    LogRecordHeader h;
    MMDB_RETURN_IF_ERROR(reader.HeaderAt(frame, &h));
    ++ext_frames;
    if (h.type == LogRecordType::kCommit) {
      ext_committed_.insert(h.txn_id);
    } else if (h.type == LogRecordType::kUpdate ||
               h.type == LogRecordType::kDelta) {
      std::size_t b = static_cast<std::size_t>(std::min<uint64_t>(
          h.record_id / records_per_segment, overflow_bucket));
      ext_buckets_[b].push_back(frame);
    }
  }

  // Validate every extension frame exactly as blocking recovery's replay
  // would (decode errors, malformed checks on committed frames) and
  // tally the per-segment applies — the lineage/stat refinements the
  // longer suffix adds to EVERY segment, not just the failed one.
  ext_stats_.assign(num_buckets, ApplyStats{});
  uint64_t ext_full = 0;
  uint64_t ext_delta = 0;
  for (std::size_t b = 0; b < num_buckets; ++b) {
    ApplyStats& es = ext_stats_[b];
    for (std::size_t frame : ext_buckets_[b]) {
      MMDB_ASSIGN_OR_RETURN(LogRecord r, reader.RecordAtIndex(frame));
      const bool committed = plan_.committed.count(r.txn_id) != 0 ||
                             ext_committed_.count(r.txn_id) != 0;
      if (!committed) continue;
      if (r.type == LogRecordType::kUpdate) {
        if (r.record_id >= db_->num_records() ||
            r.image.size() != db_->record_bytes()) {
          return CorruptionError(StringPrintf(
              "update record for txn %llu is malformed",
              static_cast<unsigned long long>(r.txn_id)));
        }
        ++es.full_applies;
      } else if (r.type == LogRecordType::kDelta) {
        if (r.record_id >= db_->num_records() ||
            r.field_offset + 8 > db_->record_bytes()) {
          return CorruptionError(StringPrintf(
              "delta record for txn %llu is malformed",
              static_cast<unsigned long long>(r.txn_id)));
        }
        ++es.delta_applies;
      } else {
        continue;
      }
      if (es.first_lsn == kInvalidLsn) es.first_lsn = r.lsn;
      es.last_lsn = r.lsn;
      const uint32_t stream = reader.FrameStream(frame);
      if (std::find(es.streams.begin(), es.streams.end(), stream) ==
          es.streams.end()) {
        es.streams.push_back(stream);
      }
      if (b != overflow_bucket) {
        ext_full += r.type == LogRecordType::kUpdate ? 1 : 0;
        ext_delta += r.type == LogRecordType::kDelta ? 1 : 0;
      }
    }
  }

  if (audit_ != nullptr) {
    const std::string trigger = trigger_status.ToString();
    audit_->Record("recovery.fallback", now, [&](JsonWriter& w) {
      w.Key("from_checkpoint");
      w.Uint(plan_.restore_id);
      w.Key("from_copy");
      w.Uint(plan_.restore_copy);
      w.Key("to_checkpoint");
      w.Uint(prev_id);
      w.Key("to_copy");
      w.Uint(BackupStore::CopyFor(prev_id));
      w.Key("trigger");
      w.String(trigger);
      w.Key("failed_segments");
      w.BeginArray();
      w.Uint(s);
      w.EndArray();
      w.Key("full_reload");
      w.Bool(suffix_has_delta);
    });
  }

  // Refine the modeled stats to the longer suffix, exactly as blocking
  // recovery computes them. The backup-phase duration only changes on a
  // full reload: blocking submits one modeled read per SUCCESSFUL
  // segment read, and a partial retry re-reads each failed segment once,
  // so the submission count stays num_segments.
  fallback_prev_id_ = prev_id;
  fallback_prev_copy_ = BackupStore::CopyFor(prev_id);
  stats.checkpoint_id = prev_id;
  stats.copy = fallback_prev_copy_;
  stats.fell_back_to_older_copy = true;
  stats.log_bytes_read = result.log_valid_bytes > prev_begin_offset
                             ? result.log_valid_bytes - prev_begin_offset
                             : 0;
  {
    DiskArrayModel log_disks(params_.disk.LogArray());
    constexpr uint64_t kChunkWords = 64 * 1024;
    uint64_t log_words =
        (stats.log_bytes_read + kWordBytes - 1) / kWordBytes;
    for (uint64_t w = 0; w < log_words; w += kChunkWords) {
      log_disks.Submit(0.0, std::min(kChunkWords, log_words - w));
    }
    stats.log_read_seconds = std::max(log_disks.AllIdleTime(), 0.0);
  }
  stats.records_scanned += ext_frames;
  stats.txns_redone = 0;
  {
    std::unordered_set<TxnId> all_committed = plan_.committed;
    for (TxnId t : ext_committed_) all_committed.insert(t);
    stats.txns_redone = all_committed.size();
  }
  stats.updates_applied += ext_full + ext_delta;
  const double ext_instructions =
      params_.costs.move_per_word *
          static_cast<double>(params_.db.record_words) *
          static_cast<double>(ext_full) +
      (8.0 / kWordBytes) * static_cast<double>(ext_delta);
  meter_->Charge(CpuCategory::kRecovery, ext_instructions);
  stats.replay_cpu_seconds += params_.InstructionsToSeconds(ext_instructions);

  // The replay fan-out now spans every bucket with main OR extension
  // frames (what blocking's longer-suffix pass 2 would have seen).
  uint64_t fanout = 0;
  for (std::size_t b = 0; b < num_buckets; ++b) {
    if (!plan_.buckets[b].empty() || !ext_buckets_[b].empty()) ++fanout;
  }
  plan_.replay_buckets = fanout;

  // Fold the extension applies into every touched segment's lineage:
  // extension frames replay BEFORE the main suffix, so they supply the
  // first LSN and lead the stream order.
  for (std::size_t b = 0; b < static_cast<std::size_t>(num_segments_); ++b) {
    const ApplyStats& es = ext_stats_[b];
    if (es.full_applies + es.delta_applies == 0) continue;
    SegmentLineage& l = result.lineage[b];
    l.frames += es.full_applies + es.delta_applies;
    if (es.first_lsn != kInvalidLsn) l.first_lsn = es.first_lsn;
    if (l.last_lsn == kInvalidLsn) l.last_lsn = es.last_lsn;
    std::vector<uint32_t> streams = es.streams;
    for (uint32_t st : l.streams) {
      if (std::find(streams.begin(), streams.end(), st) == streams.end()) {
        streams.push_back(st);
      }
    }
    l.streams = std::move(streams);
  }

  fallback_prepared_ = true;
  full_reload_ = suffix_has_delta;

  if (full_reload_) {
    // Blocking recovery probes every newest-copy segment before deciding,
    // counts each successful read, then reloads ALL segments from the
    // previous copy: 2N - failures modeled submissions and loads.
    uint64_t first_pass_failures = 0;
    std::string scratch;
    for (SegmentId i = 0; i < num_segments_; ++i) {
      Status st = i == s ? trigger_status
                         : backup_->ReadSegment(plan_.restore_copy, i,
                                                &scratch);
      if (st.ok()) continue;
      if (!st.IsCorruption() && !st.IsIoError()) return st;
      ++first_pass_failures;
    }
    stats.segments_loaded =
        2 * static_cast<uint64_t>(num_segments_) - first_pass_failures;
    stats.segments_retried = num_segments_;
    {
      DiskArrayModel backup_disks(params_.disk);
      for (uint64_t i = 0; i < stats.segments_loaded; ++i) {
        backup_disks.Submit(0.0, params_.db.segment_words);
      }
      stats.backup_read_seconds = std::max(backup_disks.AllIdleTime(), 0.0);
    }
    for (SegmentId i = 0; i < num_segments_; ++i) {
      SegmentLineage& l = result.lineage[i];
      l.checkpoint_id = prev_id;
      l.copy = fallback_prev_copy_;
      l.retried = true;
    }
  }

  stats.total_seconds = stats.backup_read_seconds + stats.log_read_seconds +
                        stats.replay_cpu_seconds;

  // Segments already served their main-suffix replay without the
  // extension; re-materialize them so their bytes match the longer
  // suffix (extension first, then main — log order). With full images
  // this re-run is idempotent-converging; with deltas every segment
  // reloads from the previous snapshot first, so it is exact.
  for (SegmentId i = 0; i < num_segments_; ++i) {
    if (!loaded_[i]) continue;
    loaded_[i] = false;
    --loaded_count_;
    MMDB_RETURN_IF_ERROR(Materialize(i, now, LoadTrigger::kBackground));
  }
  if (full_reload_) {
    // The previous snapshot must be in place for every segment before
    // any further delta replay; load the rest of the database now.
    for (SegmentId i = 0; i < num_segments_; ++i) {
      if (loaded_[i] || i == s) continue;
      MMDB_RETURN_IF_ERROR(Materialize(i, now, LoadTrigger::kBackground));
    }
  }
  return Status::OK();
}

Status InstantRecovery::Materialize(SegmentId s, double now,
                                    LoadTrigger trigger) {
  if (s >= num_segments_) {
    return InvalidArgumentError("segment out of range");
  }
  if (loaded_[s]) return Status::OK();
  bool retried = false;
  if (plan_.have_checkpoint) {
    std::string image;
    if (full_reload_) {
      MMDB_RETURN_IF_ERROR(
          backup_->ReadSegment(fallback_prev_copy_, s, &image));
      retried = true;
    } else {
      Status st = backup_->ReadSegment(plan_.restore_copy, s, &image);
      if (!st.ok()) {
        // Only CRC damage and device faults are survivable via the
        // older copy; anything else is fatal.
        if (!st.IsCorruption() && !st.IsIoError()) return st;
        if (!fallback_prepared_) {
          MMDB_RETURN_IF_ERROR(PrepareFallback(st, s, now));
          // A full reload materialized everything, this segment included.
          if (loaded_[s]) return Status::OK();
        }
        Status st2 = backup_->ReadSegment(
            full_reload_ ? fallback_prev_copy_
                         : BackupStore::CopyFor(fallback_prev_id_),
            s, &image);
        if (!st2.ok()) return st2;  // neither copy readable: fatal
        retried = true;
      }
    }
    db_->WriteSegment(s, image);
    if (retried && !full_reload_) {
      RecoveryStats& stats = plan_.result.stats;
      SegmentLineage& l = plan_.result.lineage[s];
      if (!l.retried) {
        l.checkpoint_id = fallback_prev_id_;
        l.copy = fallback_prev_copy_;
        l.retried = true;
        ++stats.segments_retried;
      }
    }
  }
  if (fallback_prepared_) {
    ApplyStats ignored;
    MMDB_RETURN_IF_ERROR(
        ReplayFrames(ext_buckets_[s], /*use_ext_committed=*/true, &ignored));
  }
  ApplyStats main_applies;
  MMDB_RETURN_IF_ERROR(
      ReplayFrames(plan_.buckets[s], /*use_ext_committed=*/false,
                   &main_applies));
  loaded_[s] = true;
  ++loaded_count_;

  if (!announced_[s]) {
    announced_[s] = true;
    const uint64_t order = load_order_++;
    switch (trigger) {
      case LoadTrigger::kTouch:
        ++touch_loads_;
        break;
      case LoadTrigger::kBackground:
        ++background_loads_;
        break;
      case LoadTrigger::kForce:
        ++force_loads_;
        break;
    }
    const SegmentLineage& l = plan_.result.lineage[s];
    if (audit_ != nullptr) {
      audit_->Record("recovery.segment_on_demand", now, [&](JsonWriter& w) {
        w.Key("segment");
        w.Uint(s);
        w.Key("trigger");
        w.String(TriggerName(trigger));
        w.Key("checkpoint");
        w.Uint(l.checkpoint_id);
        w.Key("copy");
        w.Uint(l.copy);
        w.Key("retried");
        w.Bool(l.retried);
        w.Key("frames");
        w.Uint(l.frames);
        w.Key("order");
        w.Uint(order);
      });
    }
    if (tracer_ != nullptr) {
      const bool scheduled = availability_[s] >= 0.0;
      const double submit = scheduled ? submit_time_[s] : now;
      const double avail =
          scheduled ? std::max(availability_[s], submit) : now;
      tracer_->Record(TraceEventType::kRecoverySegmentOnDemand, submit, avail,
                      static_cast<int64_t>(s),
                      static_cast<int64_t>(trigger),
                      static_cast<int64_t>(order));
    }
    if (metrics_ != nullptr) {
      metrics_->counter("recovery.segments_on_demand")->Increment();
    }
  }
  (void)main_applies;
  return Status::OK();
}

void InstantRecovery::PublishFinal(double crash_now) {
  RecoveryManager::Publish(metrics_, tracer_, plan_.result.stats, crash_now,
                           plan_.replay_buckets);
}

}  // namespace mmdb
